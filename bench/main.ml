(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (sections E1..E9 below, indexed in DESIGN.md) and finishes
   with a bechamel micro-benchmark suite of the building blocks.

   Usage: main.exe [--jobs N] [section ...]
   Sections: netchar fig2 latency fig8 fig9 fig10 fig11 sec2_2 lan
             ablation batching protocols metrics engine runtime shards
             service faults micro (default: all).

   [--jobs N] (or CI_JOBS) fans the independent simulation runs inside
   each section out over N domains; the printed figures are
   byte-identical at any N. With N > 1 the figure sections are re-timed
   at jobs=1 (output suppressed) and a per-section wall-clock
   comparison table is printed at the end. *)

module E = Ci_workload.Experiments
module Pool = Ci_workload.Pool
module Sim_time = Ci_engine.Sim_time

(* Wall-clock per section, collected for BENCH_engine.json. The sink is
   swapped when re-timing sections at jobs=1. *)
let section_walls : (string * float) list ref = ref []
let section_walls_j1 : (string * float) list ref = ref []
let walls_sink = ref section_walls

let section name paper_note f =
  Format.printf "@.======================================================================@.";
  Format.printf "%s@." name;
  Format.printf "  paper: %s@." paper_note;
  Format.printf "======================================================================@.";
  let t0 = Unix.gettimeofday () in
  f ();
  let wall = Unix.gettimeofday () -. t0 in
  !walls_sink := (name, wall) :: !(!walls_sink);
  Format.printf "[section wall-clock: %.2fs]@." wall;
  Format.print_flush ()

(* Run [f] with formatter output discarded — used to re-time a section
   at jobs=1 without printing its (byte-identical) figures twice. *)
let quietly f =
  Format.print_flush ();
  let old = Format.get_formatter_out_functions () in
  Format.set_formatter_out_functions
    {
      Format.out_string = (fun _ _ _ -> ());
      out_flush = ignore;
      out_newline = ignore;
      out_spaces = ignore;
      out_indent = ignore;
    };
  Fun.protect
    ~finally:(fun () ->
      Format.print_flush ();
      Format.set_formatter_out_functions old)
    f

let netchar ~jobs =
  section "E1. Network characteristics (Section 3)"
    "multicore: trans 0.5us, prop 0.55us, ratio ~1; LAN: 2us / 135us, ratio ~0.015"
    (fun () -> Format.printf "%a" E.pp_netchar (E.netchar ~jobs ()))

let fig2 ~jobs =
  section "E2. Figure 2: Multi-Paxos scalability, LAN vs multicore"
    "LAN keeps improving up to ~100 clients; multicore saturates after ~3 clients"
    (fun () -> Format.printf "%a" E.pp_series (E.fig2 ~jobs ()))

let latency ~jobs =
  section "E4. Section 7.2: single-client commit latency"
    "1Paxos 16us < Multi-Paxos 19.6us < 2PC 21.4us"
    (fun () -> Format.printf "%a" E.pp_latency_table (E.latency_table ~jobs ()))

let fig8 ~jobs =
  section "E5. Figure 8: latency vs throughput, 1..45 clients, 3 replicas"
    "1Paxos scales ~2x from 1 client and peaks ~2x Multi-Paxos (52%) and 2PC (48%)"
    (fun () -> Format.printf "%a" E.pp_series (E.fig8 ~jobs ()))

let fig9 ~jobs =
  section "E6. Figure 9: joint deployment, throughput vs number of replicas"
    "1Paxos-Joint grows ~linearly to 47 nodes; others peak ~20 nodes then decline"
    (fun () -> Format.printf "%a" E.pp_series (E.fig9 ~jobs ()))

let fig10 ~jobs =
  section "E7. Figure 10: 2PC-Joint read mixes vs 1Paxos"
    "2PC-Joint improves with read share; at 75% reads 3 clients it rivals 1Paxos, \
     but more clients erode it"
    (fun () -> Format.printf "%a" E.pp_bars (E.fig10 ~jobs ()))

let fig11 ~jobs =
  section "E8. Figure 11: 1Paxos throughput while the leader becomes slow"
    "throughput dips during the leader change, then recovers to the same level"
    (fun () -> Format.printf "%a" E.pp_timelines (E.fig11 ~jobs ()))

let sec2_2 ~jobs =
  section "E3. Section 2.2: 2PC throughput while the coordinator becomes slow"
    "after the coordinator slows down, throughput drops to ~zero and stays there"
    (fun () -> Format.printf "%a" E.pp_timelines (E.sec2_2 ~jobs ()))

let lan ~jobs =
  section "E9. Section 8: 1Paxos vs Multi-Paxos over an IP network"
    "1Paxos improved throughput by a factor of ~2.88 over Multi-Paxos"
    (fun () ->
      let series = E.lan_1paxos ~jobs () in
      Format.printf "%a" E.pp_series series;
      match series with
      | [ mp; op ] ->
        let peak s =
          List.fold_left (fun m (p : E.point) -> Float.max m p.E.throughput) 0. s.E.points
        in
        Format.printf "peak ratio (1Paxos / Multi-Paxos): %.2f@." (peak op /. peak mp)
      | _ -> ())

let protocols ~jobs =
  section "A4. Related protocols (Section 8): all five on one machine"
    "Mencius spreads the leader load; Cheap Paxos needs 6 msgs/commit, 1Paxos 5"
    (fun () -> Format.printf "%a" E.pp_series (E.protocol_comparison ~jobs ()));
  section "A5. The same five protocols on rack-scale RDMA (Section 9 outlook)"
    "no inter-machine cache coherence; 1Paxos as the software coherence layer"
    (fun () ->
      Format.printf "%a" E.pp_series
        (E.protocol_comparison ~jobs ~params:Ci_machine.Net_params.rdma ()))

let ablation ~jobs =
  section "A1. Ablation: acceptor placement under a slow leader (Section 5.4)"
    "colocating leader and acceptor couples their failure domains"
    (fun () -> Format.printf "%a" E.pp_series (E.ablation_placement ~jobs ()));
  section "A2. Ablation: channel slot count (Section 6.1: QC-libtask uses 7)"
    "single-slot queues serialize on the head pointer round trip"
    (fun () -> Format.printf "%a" E.pp_series (E.ablation_slots ~jobs ()));
  section "A3. Ablation: 1Paxos advantage as propagation grows towards IP delays"
    "the message-count saving is a transmission-delay phenomenon"
    (fun () -> Format.printf "%a" E.pp_series (E.ablation_ratio ~jobs ()))

let batching ~jobs =
  section "A6. Ablation: leader batching (1Paxos and Multi-Paxos, 44 clients)"
    "this reproduction's addition: one consensus instance per batch amortizes \
     the leader's per-message transmission cost"
    (fun () ->
      let series = E.ablation_batch ~jobs () in
      Format.printf "%a" E.pp_series series;
      let peak_of (s : E.series) =
        List.fold_left (fun m (p : E.point) -> Float.max m p.E.throughput) 0. s.E.points
      in
      let base_of (s : E.series) =
        match s.E.points with p :: _ -> p.E.throughput | [] -> 1.
      in
      List.iter
        (fun (s : E.series) ->
          Format.printf "%s: batch>=8 peak / batch=1 baseline = %.2fx@." s.E.label
            (peak_of s /. base_of s))
        series);
  section "A7. Ablation: pipeline depth (batch 8, coalesce 16)"
    "depth 1 is stop-and-wait per batch; a small window hides the accept round trip"
    (fun () -> Format.printf "%a" E.pp_series (E.ablation_pipeline ~jobs ()));
  section "A8. Ablation: receive coalescing budget (batch 8, pipeline 8)"
    "draining k queued messages per reception charge models vectored reads"
    (fun () -> Format.printf "%a" E.pp_series (E.ablation_coalesce ~jobs ()))

(* ----- engine self-benchmark --------------------------------------------- *)

type engine_stats = {
  evq_mops : float;  (* event-queue push+pop pairs per second, millions *)
  run_wall_s : float;
  run_sim_events : int;
  run_events_per_sec : float;
  run_alloc_words : float;
  run_throughput : float;
  jobs : int;
  batch_wall_j1 : float;  (* fixed 8-run batch at jobs=1 *)
  batch_wall_jn : float;  (* the same batch at jobs=N *)
  parallel_speedup : float;
}

let engine_stats : engine_stats option ref = ref None

let alloc_words () =
  let s = Gc.quick_stat () in
  s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words

let engine ~jobs =
  section "Engine self-benchmark"
    "host-side speed of the simulation engine itself (not simulated time)"
    (fun () ->
      (* Event-queue micro: push/pop pairs through a live heap. *)
      let n = 100_000 and rounds = 20 in
      let q = Ci_engine.Event_queue.create () in
      let t0 = Unix.gettimeofday () in
      for r = 0 to rounds - 1 do
        for i = 0 to n - 1 do
          Ci_engine.Event_queue.push q ~time:(((i * 7919) + r) mod 4096) i
        done;
        while not (Ci_engine.Event_queue.is_empty q) do
          ignore (Ci_engine.Event_queue.pop q)
        done
      done;
      let evq_wall = Unix.gettimeofday () -. t0 in
      let evq_mops = float_of_int (n * rounds) /. evq_wall /. 1e6 in
      Format.printf "event queue: %.1f M push+pop pairs/s@." evq_mops;
      (* Standard run: wall-clock and allocation for a default 1Paxos
         experiment, plus the engine's events/sec on it. *)
      let module Runner = Ci_workload.Runner in
      let spec =
        Runner.default_spec ~protocol:Runner.Onepaxos
          ~placement:(Runner.Dedicated { n_replicas = 3; n_clients = 13 })
      in
      let w0 = alloc_words () in
      let t0 = Unix.gettimeofday () in
      let r = Runner.run spec in
      let run_wall_s = Unix.gettimeofday () -. t0 in
      let run_alloc_words = alloc_words () -. w0 in
      let run_events_per_sec = float_of_int r.Runner.sim_events /. run_wall_s in
      Format.printf
        "1paxos 3r/13c 50ms run: wall %.2fs, %d events (%.0f events/s), \
         %.1f M words allocated, simulated %.0f op/s@."
        run_wall_s r.Runner.sim_events run_events_per_sec
        (run_alloc_words /. 1e6) r.Runner.throughput;
      Format.printf "allocation: %.1f words/event@."
        (run_alloc_words /. float_of_int r.Runner.sim_events);
      (* Parallel batch: the same experiment shape at 8 different seeds,
         once on one domain and once on [jobs] — the controlled speedup
         measurement behind BENCH_engine.json's parallel_speedup. *)
      let specs =
        Array.init 8 (fun i ->
            {
              (Runner.default_spec ~protocol:Runner.Onepaxos
                 ~placement:(Runner.Dedicated { n_replicas = 3; n_clients = 13 }))
              with
              Runner.seed = 42 + i;
            })
      in
      let fingerprint (r : Runner.result) =
        (r.Runner.sim_events, r.Runner.commits, r.Runner.throughput)
      in
      let timed f =
        let t0 = Unix.gettimeofday () in
        let r = f () in
        (r, Unix.gettimeofday () -. t0)
      in
      let r1, batch_wall_j1 =
        timed (fun () -> Pool.parallel_map ~jobs:1 Runner.run specs)
      in
      let rn, batch_wall_jn =
        timed (fun () -> Pool.parallel_map ~jobs Runner.run specs)
      in
      if Array.map fingerprint r1 <> Array.map fingerprint rn then
        failwith "engine: parallel batch results differ across jobs";
      let parallel_speedup = batch_wall_j1 /. batch_wall_jn in
      Format.printf
        "parallel batch (8 seeds): jobs=1 %.2fs, jobs=%d %.2fs, speedup \
         %.2fx, results identical@."
        batch_wall_j1 jobs batch_wall_jn parallel_speedup;
      engine_stats :=
        Some
          {
            evq_mops;
            run_wall_s;
            run_sim_events = r.Runner.sim_events;
            run_events_per_sec;
            run_alloc_words;
            run_throughput = r.Runner.throughput;
            jobs;
            batch_wall_j1;
            batch_wall_jn;
            parallel_speedup;
          })

(* ----- live runtime benchmark -------------------------------------------- *)

(* One row per protocol x replica count, collected for
   BENCH_runtime.json. Unlike every section above, these numbers are
   real wall-clock throughput of the protocol cores on this host's
   domains, not simulated time. *)
type runtime_row = {
  rt_protocol : string;
  rt_transport : string;
  rt_replicas : int;
  rt_ops : int;
  rt_throughput : float;
  rt_p50_us : float;
  rt_p99_us : float;
  rt_retries : int;
  rt_q_blocked : int;
  rt_full_ring : int array;  (* per-node full-ring sends *)
  rt_alloc_words_per_op : float;
  rt_consistent : bool;
}

type runtime_stats = { rt_cores : int; rt_rows : runtime_row list }

let runtime_stats : runtime_stats option ref = ref None

let runtime ~jobs:_ =
  section "R1. Live runtime: the same cores on real domains (Section 6)"
    "wall-clock op/s of 1Paxos vs Multi-Paxos over byte rings and sockets"
    (fun () ->
      let module Live = Ci_runtime.Live in
      let cores = Domain.recommended_domain_count () in
      let row protocol transport n_replicas =
        let spec =
          {
            (Live.default_spec ~protocol) with
            Live.n_replicas;
            n_clients = 2;
            transport;
            duration_s = 1.0;
            drain_s = 0.2;
          }
        in
        let r = Live.run spec in
        {
          rt_protocol = Live.protocol_name protocol;
          rt_transport = Live.transport_name transport;
          rt_replicas = n_replicas;
          rt_ops = r.Live.ops;
          rt_throughput = r.Live.throughput;
          rt_p50_us = float_of_int r.Live.latency.Ci_stats.Summary.p50 /. 1e3;
          rt_p99_us = float_of_int r.Live.latency.Ci_stats.Summary.p99 /. 1e3;
          rt_retries = r.Live.retries;
          rt_q_blocked = r.Live.queues.Live.q_blocked;
          rt_full_ring = r.Live.full_ring_sends;
          rt_alloc_words_per_op = r.Live.alloc_words_per_op;
          rt_consistent = Ci_rsm.Consistency.ok r.Live.consistency;
        }
      in
      (* Socket rows first: Unix.fork is refused once this process has
         ever spawned a domain, and the spsc rows spawn plenty. Skipped
         (not failed) when fork or socketpairs are unavailable — e.g.
         when an earlier section already went multicore. *)
      let socket_rows =
        match
          [
            row Live.Onepaxos Live.Socket 3;
            row Live.Multipaxos Live.Socket 3;
          ]
        with
        | rows -> rows
        | exception Unix.Unix_error (e, fn, _) ->
          Format.printf "socket transport unavailable (%s: %s); skipping@." fn
            (Unix.error_message e);
          []
        | exception Failure m when String.length m >= 9 && String.sub m 0 9 = "Unix.fork" ->
          Format.printf "socket transport unavailable (%s); skipping@." m;
          []
      in
      let spsc_rows =
        List.concat_map
          (fun n ->
            [ row Live.Onepaxos Live.Spsc n; row Live.Multipaxos Live.Spsc n ])
          [ 3; 5 ]
      in
      let rows = spsc_rows @ socket_rows in
      Format.printf "%d cores, 2 client domains, 1.0s measured per cell@." cores;
      Format.printf "%-12s %-9s %9s %12s %10s %10s %10s %12s@." "protocol"
        "transport" "replicas" "op/s" "p50(us)" "p99(us)" "alloc w/op"
        "consistent";
      List.iter
        (fun r ->
          Format.printf "%-12s %-9s %9d %12.0f %10.1f %10.1f %10.0f %12s@."
            r.rt_protocol r.rt_transport r.rt_replicas r.rt_throughput
            r.rt_p50_us r.rt_p99_us r.rt_alloc_words_per_op
            (if r.rt_consistent then "yes" else "NO");
          if not r.rt_consistent then
            failwith
              (Printf.sprintf "runtime: %s/%s with %d replicas was inconsistent"
                 r.rt_protocol r.rt_transport r.rt_replicas))
        rows;
      runtime_stats := Some { rt_cores = cores; rt_rows = rows })

let write_runtime_json () =
  match !runtime_stats with
  | None -> ()
  | Some s ->
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{\n";
    Buffer.add_string buf (Printf.sprintf "  \"cores\": %d,\n" s.rt_cores);
    Buffer.add_string buf "  \"rows\": [\n";
    List.iteri
      (fun i r ->
        Buffer.add_string buf
          (Printf.sprintf
             "    {\"protocol\": \"%s\", \"transport\": \"%s\", \
              \"replicas\": %d, \"ops\": %d, \
              \"throughput_ops\": %.0f, \"p50_us\": %.1f, \"p99_us\": %.1f, \
              \"retries\": %d, \"full_ring_sends\": %d, \
              \"full_ring_sends_per_node\": [%s], \
              \"alloc_words_per_op\": %.0f, \"consistent\": %b}%s\n"
             r.rt_protocol r.rt_transport r.rt_replicas r.rt_ops
             r.rt_throughput r.rt_p50_us r.rt_p99_us r.rt_retries r.rt_q_blocked
             (String.concat ", "
                (Array.to_list (Array.map string_of_int r.rt_full_ring)))
             r.rt_alloc_words_per_op r.rt_consistent
             (if i = List.length s.rt_rows - 1 then "" else ",")))
      s.rt_rows;
    Buffer.add_string buf "  ]\n}\n";
    let oc = open_out "BENCH_runtime.json" in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (Buffer.contents buf));
    Format.printf "@.wrote BENCH_runtime.json@."

(* ----- wire codec benchmark ----------------------------------------------- *)

(* Per-message encode/decode cost of the fixed-slot wire codec, plus a
   single-threaded slot-size sweep of the byte ring it feeds — the
   numbers behind the default [slot_size]. Collected for
   BENCH_codec.json. *)
type codec_msg_row = {
  cd_name : string;
  cd_bytes : int;
  cd_encode_ns : float;
  cd_decode_ns : float;
}

type codec_sweep_row = {
  cd_slot : int;
  cd_ns_per_msg : float;  (* encode + ring push + pop + decode *)
  cd_spilled : bool;  (* did the batch message span slots? *)
}

type codec_stats = {
  cd_msgs : codec_msg_row list;
  cd_sweep : codec_sweep_row list;
}

let codec_stats : codec_stats option ref = ref None

let codec ~jobs:_ =
  section "C1. Wire codec: fixed-slot encode/decode + ring slot-size sweep"
    "ns per message through the zero-copy codec and the byte-slot SPSC ring"
    (fun () ->
      let module Wire = Ci_consensus.Wire in
      let module Codec = Ci_consensus.Codec in
      let module Command = Ci_rsm.Command in
      let module Pn = Ci_consensus.Pn in
      let module Clock = Ci_runtime.Clock in
      let value client req_id =
        { Wire.client; req_id; cmd = Command.Put { key = 7; data = 123456 } }
      in
      let pn = Pn.make ~round:3 ~owner:1 in
      (* The protocols' hot-path vocabulary plus one spilling batch. *)
      let mix =
        [
          ("Request", Wire.Request { req_id = 42; cmd = Command.Put { key = 7; data = 99 }; relaxed_read = false });
          ("Reply", Wire.Reply { req_id = 42; result = Command.Done });
          ("Op_accept_request", Wire.Op_accept_request { inst = 1000; pn; v = value 5 42 });
          ("Op_learn", Wire.Op_learn { inst = 1000; v = value 5 42 });
          ("Mp_accept", Wire.Mp_accept { inst = 1000; pn; v = value 5 42 });
          ("Mp_learn", Wire.Mp_learn { inst = 1000; pn; v = value 5 42 });
          ( "Op_accept_batch(8)",
            Wire.Op_accept_batch
              { base = 1000; pn; vs = Array.init 8 (fun i -> value 5 (100 + i)) } );
        ]
      in
      let buf = Bytes.create 4096 in
      let iters = 200_000 in
      let time f =
        for _ = 1 to 10_000 do f () done;
        let t0 = Clock.now_ns () in
        for _ = 1 to iters do f () done;
        float_of_int (Clock.now_ns () - t0) /. float_of_int iters
      in
      let msg_rows =
        List.map
          (fun (name, msg) ->
            let len = Codec.encode msg buf ~pos:0 in
            {
              cd_name = name;
              cd_bytes = len;
              cd_encode_ns = time (fun () -> ignore (Codec.encode msg buf ~pos:0));
              cd_decode_ns =
                time (fun () -> ignore (Codec.decode buf ~pos:0 ~len));
            })
          mix
      in
      Format.printf "%-22s %8s %12s %12s@." "message" "bytes" "encode(ns)"
        "decode(ns)";
      List.iter
        (fun r ->
          Format.printf "%-22s %8d %12.0f %12.0f@." r.cd_name r.cd_bytes
            r.cd_encode_ns r.cd_decode_ns)
        msg_rows;
      (* Slot-size sweep: the full mix round-trips through one ring,
         single-threaded — encode+push+pop+decode per message. Small
         slots make the batch spill across several; big slots waste
         bytes but never spill. *)
      let module Sb = Ci_runtime.Spsc_bytes in
      let sweep_rows =
        List.map
          (fun slot_size ->
            let q = Sb.create ~slots:64 ~slot_size in
            let msgs = Array.of_list (List.map snd mix) in
            let n_mix = Array.length msgs in
            let step i =
              let m = msgs.(i mod n_mix) in
              if not (Sb.try_push q m) then failwith "codec sweep: ring full";
              match Sb.try_pop q with
              | Some _ -> ()
              | None -> failwith "codec sweep: ring empty"
            in
            let i = ref 0 in
            let ns =
              time (fun () ->
                  step !i;
                  incr i)
            in
            let batch_bytes = Codec.encoded_size (List.assoc "Op_accept_batch(8)" mix) in
            { cd_slot = slot_size; cd_ns_per_msg = ns; cd_spilled = batch_bytes > slot_size })
          [ 64; 128; 256; 512 ]
      in
      Format.printf "@.%-10s %14s %10s@." "slot_size" "ns/msg (ring)" "spills";
      List.iter
        (fun r ->
          Format.printf "%-10d %14.0f %10s@." r.cd_slot r.cd_ns_per_msg
            (if r.cd_spilled then "yes" else "no"))
        sweep_rows;
      codec_stats := Some { cd_msgs = msg_rows; cd_sweep = sweep_rows })

let write_codec_json () =
  match !codec_stats with
  | None -> ()
  | Some s ->
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{\n  \"messages\": [\n";
    List.iteri
      (fun i r ->
        Buffer.add_string buf
          (Printf.sprintf
             "    {\"message\": \"%s\", \"bytes\": %d, \"encode_ns\": %.0f, \
              \"decode_ns\": %.0f}%s\n"
             r.cd_name r.cd_bytes r.cd_encode_ns r.cd_decode_ns
             (if i = List.length s.cd_msgs - 1 then "" else ",")))
      s.cd_msgs;
    Buffer.add_string buf "  ],\n  \"slot_sweep\": [\n";
    List.iteri
      (fun i r ->
        Buffer.add_string buf
          (Printf.sprintf
             "    {\"slot_size\": %d, \"ns_per_msg\": %.0f, \"batch_spills\": %b}%s\n"
             r.cd_slot r.cd_ns_per_msg r.cd_spilled
             (if i = List.length s.cd_sweep - 1 then "" else ",")))
      s.cd_sweep;
    Buffer.add_string buf "  ]\n}\n";
    let oc = open_out "BENCH_codec.json" in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (Buffer.contents buf));
    Format.printf "@.wrote BENCH_codec.json@."

(* ----- sharded scaling benchmark ------------------------------------------ *)

(* One row per protocol x group count, collected for BENCH_shards.json:
   live wall-clock throughput as the keyspace is sharded over more
   independent consensus groups (ISSUE 7's tentpole). On hosts with
   enough cores the curve should grow near-linearly in the group count;
   on an oversubscribed host it stays honest and flat — either way every
   point must be consistent per group and atomic across groups. *)
type shards_row = {
  sh_protocol : string;
  sh_groups : int;
  sh_ops : int;
  sh_throughput : float;
  sh_cross_committed : int;
  sh_cross_aborted : int;
  sh_alloc_words_per_op : float;
  sh_consistent : bool;
  sh_atomic : bool;
}

type shards_stats = { sh_cores : int; sh_rows : shards_row list }

let shards_stats : shards_stats option ref = ref None

let shards ~jobs:_ =
  section "S1. Sharded multi-group scaling (live, 2 clients, 0.5s per cell)"
    "this reproduction's addition: hash-partition the keyspace over N \
     1Paxos/Multi-Paxos groups on distinct cores, 2PC for cross-shard writes"
    (fun () ->
      let module Live = Ci_runtime.Live in
      let cores = Domain.recommended_domain_count () in
      let row protocol groups =
        let spec =
          {
            (Live.default_spec ~protocol) with
            Live.n_replicas = 3;
            n_clients = 2;
            groups;
            cross_shard_ratio = (if groups = 1 then 0. else 0.05);
            duration_s = 0.5;
            drain_s = 0.2;
          }
        in
        let r = Live.run spec in
        let committed, aborted =
          match r.Live.atomicity with
          | Some a -> (a.Ci_rsm.Atomicity.committed, a.Ci_rsm.Atomicity.aborted)
          | None -> (0, 0)
        in
        {
          sh_protocol = Live.protocol_name protocol;
          sh_groups = groups;
          sh_ops = r.Live.ops;
          sh_throughput = r.Live.throughput;
          sh_cross_committed = committed;
          sh_cross_aborted = aborted;
          sh_alloc_words_per_op = r.Live.alloc_words_per_op;
          sh_consistent = Ci_rsm.Consistency.ok r.Live.consistency;
          sh_atomic =
            (match r.Live.atomicity with
            | Some a -> Ci_rsm.Atomicity.ok a
            | None -> true);
        }
      in
      let rows =
        List.concat_map
          (fun p -> List.map (row p) [ 1; 2; 4 ])
          [ Live.Onepaxos; Live.Multipaxos ]
      in
      Format.printf "%d cores; 3 replicas/group, 5%% cross-shard above 1 group@."
        cores;
      Format.printf "%-12s %7s %12s %11s %9s %11s %8s@." "protocol" "groups"
        "op/s" "2pc-commit" "2pc-abort" "consistent" "atomic";
      List.iter
        (fun r ->
          Format.printf "%-12s %7d %12.0f %11d %9d %11s %8s@." r.sh_protocol
            r.sh_groups r.sh_throughput r.sh_cross_committed r.sh_cross_aborted
            (if r.sh_consistent then "yes" else "NO")
            (if r.sh_atomic then "yes" else "NO");
          if not r.sh_consistent then
            failwith
              (Printf.sprintf "shards: %s with %d groups was inconsistent"
                 r.sh_protocol r.sh_groups);
          if not r.sh_atomic then
            failwith
              (Printf.sprintf
                 "shards: %s with %d groups violated cross-shard atomicity"
                 r.sh_protocol r.sh_groups))
        rows;
      shards_stats := Some { sh_cores = cores; sh_rows = rows })

let write_shards_json () =
  match !shards_stats with
  | None -> ()
  | Some s ->
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{\n";
    Buffer.add_string buf (Printf.sprintf "  \"cores\": %d,\n" s.sh_cores);
    Buffer.add_string buf "  \"rows\": [\n";
    List.iteri
      (fun i r ->
        Buffer.add_string buf
          (Printf.sprintf
             "    {\"protocol\": \"%s\", \"groups\": %d, \"ops\": %d, \
              \"throughput_ops\": %.0f, \"cross_shard_committed\": %d, \
              \"cross_shard_aborted\": %d, \"alloc_words_per_op\": %.1f, \
              \"consistent\": %b, \"atomic\": %b}%s\n"
             r.sh_protocol r.sh_groups r.sh_ops r.sh_throughput
             r.sh_cross_committed r.sh_cross_aborted r.sh_alloc_words_per_op
             r.sh_consistent r.sh_atomic
             (if i = List.length s.sh_rows - 1 then "" else ",")))
      s.sh_rows;
    Buffer.add_string buf "  ]\n}\n";
    let oc = open_out "BENCH_shards.json" in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (Buffer.contents buf));
    Format.printf "@.wrote BENCH_shards.json@."

(* ----- open-loop service benchmark ---------------------------------------- *)

(* One row per backend x curve x offered load, collected for
   BENCH_service.json: the ISSUE 9 service curves — p50/p99/p999 charged
   from each request's *intended* arrival (coordinated-omission aware)
   as the open-loop driver sweeps the offered rate past saturation, with
   and without leader leases at a 90%-read mix. The knee is flagged on
   each p99 curve. *)
type service_row = {
  sv_backend : string; (* "sim" | "live" *)
  sv_label : string; (* "1paxos", "multipaxos +lease", ... *)
  sv_offered : float;
  sv_achieved : float;
  sv_p50_us : float;
  sv_p99_us : float;
  sv_p999_us : float;
  sv_service_p99_us : float;
  sv_lease_reads : int;
  sv_knee : bool;
}

type service_stats = { sv_cores : int; sv_rows : service_row list }

let service_stats : service_stats option ref = ref None

let service ~jobs =
  section "S2. Open-loop service curves (sim + live, 90% reads)"
    "this reproduction's addition: latency-vs-offered-load under an \
     open-loop driver, leader leases vs consensus reads"
    (fun () ->
      let module Live = Ci_runtime.Live in
      let module Runner = Ci_workload.Runner in
      let module LS = Ci_load.Load_stats in
      let cores = Domain.recommended_domain_count () in
      let of_load_row backend (r : E.load_row) =
        {
          sv_backend = backend;
          sv_label = r.E.l_label;
          sv_offered = r.E.l_offered;
          sv_achieved = r.E.l_achieved;
          sv_p50_us = r.E.l_p50_us;
          sv_p99_us = r.E.l_p99_us;
          sv_p999_us = r.E.l_p999_us;
          sv_service_p99_us = r.E.l_service_p99_us;
          sv_lease_reads = r.E.l_lease_reads;
          sv_knee = r.E.l_knee;
        }
      in
      let sim_rows =
        List.map (of_load_row "sim")
          (E.load_curve ~jobs () @ E.load_curve ~jobs ~lease:(Sim_time.ms 2) ())
      in
      (* Live sweep: same driver, wall clock instead of virtual time.
         Rates are per driver (2 drivers), chosen to straddle what a
         1-core CI host can absorb so the top points show queueing. *)
      let live_rates = [ 5_000.; 10_000.; 20_000.; 40_000. ] in
      let n_clients = 2 in
      let live_row protocol ~lease rate =
        let spec =
          {
            (Live.default_spec ~protocol) with
            Live.n_replicas = 3;
            n_clients;
            duration_s = 0.25;
            drain_s = 0.1;
            lease;
            lease_skew = (if lease > 0 then lease / 100 else 0);
            open_loop =
              Some
                {
                  Runner.default_open_loop with
                  Runner.arrival = Ci_load.Arrival.Fixed rate;
                  mix =
                    {
                      Ci_load.Open_client.reads = 0.9;
                      cas = 0.02;
                      ranges = 0.02;
                    };
                };
          }
        in
        let r = Live.run spec in
        let label =
          Live.protocol_name protocol ^ if lease > 0 then " +lease" else ""
        in
        if not (Ci_rsm.Consistency.ok r.Live.consistency) then
          failwith
            (Printf.sprintf "service: live %s at %.0f op/s was inconsistent"
               label rate);
        let s = Option.get r.Live.load in
        if LS.stale_reads s > 0 then
          failwith
            (Printf.sprintf "service: live %s served %d stale session reads"
               label (LS.stale_reads s));
        let lp = LS.latency_percentiles s in
        let sp = LS.service_percentiles s in
        let us v = float_of_int v /. 1e3 in
        {
          sv_backend = "live";
          sv_label = label;
          sv_offered = rate *. float_of_int n_clients;
          sv_achieved = LS.throughput s;
          sv_p50_us = us lp.LS.p50;
          sv_p99_us = us lp.LS.p99;
          sv_p999_us = us lp.LS.p999;
          sv_service_p99_us = us sp.LS.p99;
          sv_lease_reads = r.Live.lease_reads;
          sv_knee = false;
        }
      in
      let flag_knee rows =
        let pts =
          Array.of_list (List.map (fun r -> (r.sv_offered, r.sv_p99_us)) rows)
        in
        match Ci_load.Knee.detect pts with
        | Some k ->
          List.mapi
            (fun j r -> if j = k then { r with sv_knee = true } else r)
            rows
        | None -> rows
      in
      let live_rows =
        List.concat_map
          (fun protocol ->
            List.concat_map
              (fun lease ->
                flag_knee (List.map (live_row protocol ~lease) live_rates))
              [ 0; 20_000_000 ])
          [ Live.Onepaxos; Live.Multipaxos ]
      in
      let rows = sim_rows @ live_rows in
      Format.printf "%d cores; 3 replicas, 2 open-loop drivers, 90%% reads@."
        cores;
      Format.printf "%-7s %-20s %10s %10s %9s %9s %9s %9s %7s %5s@." "backend"
        "curve" "offered" "achieved" "p50(us)" "p99(us)" "p999(us)" "svc99"
        "lease" "knee";
      List.iter
        (fun r ->
          Format.printf "%-7s %-20s %10.0f %10.0f %9.1f %9.1f %9.1f %9.1f %7d %5s@."
            r.sv_backend r.sv_label r.sv_offered r.sv_achieved r.sv_p50_us
            r.sv_p99_us r.sv_p999_us r.sv_service_p99_us r.sv_lease_reads
            (if r.sv_knee then "<-" else ""))
        rows;
      (* Lease pay-off at the lightest load point of each backend/protocol
         pair: local reads should undercut the consensus round trip. *)
      List.iter
        (fun backend ->
          List.iter
            (fun proto ->
              let first label =
                List.find_opt
                  (fun r -> r.sv_backend = backend && r.sv_label = label)
                  rows
              in
              match (first proto, first (proto ^ " +lease")) with
              | Some plain, Some leased ->
                Format.printf
                  "%s %s: lease p50 %.1fus vs consensus p50 %.1fus (%.1fx)@."
                  backend proto leased.sv_p50_us plain.sv_p50_us
                  (plain.sv_p50_us /. Float.max leased.sv_p50_us 0.001)
              | _ -> ())
            [ "1paxos"; "multipaxos" ])
        [ "sim"; "live" ];
      service_stats := Some { sv_cores = cores; sv_rows = rows })

let write_service_json () =
  match !service_stats with
  | None -> ()
  | Some s ->
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "{\n";
    Buffer.add_string buf (Printf.sprintf "  \"cores\": %d,\n" s.sv_cores);
    Buffer.add_string buf "  \"rows\": [\n";
    List.iteri
      (fun i r ->
        Buffer.add_string buf
          (Printf.sprintf
             "    {\"backend\": \"%s\", \"curve\": \"%s\", \"offered_ops\": \
              %.1f, \"achieved_ops\": %.1f, \"p50_us\": %.2f, \"p99_us\": \
              %.2f, \"p999_us\": %.2f, \"service_p99_us\": %.2f, \
              \"lease_reads\": %d, \"knee\": %b}%s\n"
             r.sv_backend r.sv_label r.sv_offered r.sv_achieved r.sv_p50_us
             r.sv_p99_us r.sv_p999_us r.sv_service_p99_us r.sv_lease_reads
             r.sv_knee
             (if i = List.length s.sv_rows - 1 then "" else ",")))
      s.sv_rows;
    Buffer.add_string buf "  ]\n}\n";
    let oc = open_out "BENCH_service.json" in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (Buffer.contents buf));
    Format.printf "@.wrote BENCH_service.json@."

(* ----- fault-injection benchmark ------------------------------------------ *)

(* One row per backend x protocol x crash scenario, collected for
   BENCH_faults.json: the recovery numbers behind Figure 11 — how long
   until the first post-fault commit, the worst completion-free gap,
   and throughput on each side of the crash. *)
type faults_row = {
  f_backend : string;
  f_protocol : string;
  f_scenario : string;
  f_ttf_ms : float option;  (* None: never committed again *)
  f_unavail_ms : float;
  f_rate_before : float;
  f_rate_after : float;
  f_ops_after : int;
  f_consistent : bool;
}

let faults_stats : faults_row list option ref = ref None

let faults ~jobs:_ =
  section "F1. Failover under the nemesis (Section 7.6 / Figure 11)"
    "crash the active acceptor resp. the leader mid-run on both backends; \
     the run must stay consistent and resume committing"
    (fun () ->
      let module Runner = Ci_workload.Runner in
      let module Live = Ci_runtime.Live in
      let ms = Sim_time.ms in
      let sched ~at ~down node =
        {
          Ci_faults.seed = 42;
          faults = [ Ci_faults.Crash { node; at; down_for = Some down } ];
        }
      in
      let row ~backend ~protocol ~scenario ~consistent = function
        | None ->
          failwith
            (Printf.sprintf "faults: %s %s %s: fault onset outside the run"
               backend protocol scenario)
        | Some (f : Ci_obs.Failover.t) ->
          {
            f_backend = backend;
            f_protocol = protocol;
            f_scenario = scenario;
            f_ttf_ms =
              Option.map
                (fun t -> float_of_int t /. 1e6)
                f.Ci_obs.Failover.time_to_failover;
            f_unavail_ms = float_of_int f.Ci_obs.Failover.unavailable_ns /. 1e6;
            f_rate_before = f.Ci_obs.Failover.rate_before;
            f_rate_after = f.Ci_obs.Failover.rate_after;
            f_ops_after = f.Ci_obs.Failover.completions_after;
            f_consistent = consistent;
          }
      in
      let sim protocol scenario node =
        let spec =
          {
            (Runner.default_spec ~protocol
               ~placement:(Runner.Dedicated { n_replicas = 3; n_clients = 5 }))
            with
            Runner.duration = ms 150;
            nemesis = sched ~at:(ms 60) ~down:(ms 45) node;
          }
        in
        let r = Runner.run spec in
        row ~backend:"sim" ~protocol:(Runner.protocol_name protocol) ~scenario
          ~consistent:(Ci_rsm.Consistency.ok r.Runner.consistency)
          r.Runner.failover
      in
      let live protocol scenario node =
        let spec =
          {
            (Live.default_spec ~protocol) with
            Live.duration_s = 1.2;
            drain_s = 0.3;
            nemesis = sched ~at:(ms 480) ~down:(ms 360) node;
          }
        in
        let r = Live.run spec in
        row ~backend:"live" ~protocol:(Live.protocol_name protocol) ~scenario
          ~consistent:(Ci_rsm.Consistency.ok r.Live.consistency)
          r.Live.failover
      in
      let rows =
        [
          sim Runner.Onepaxos "crash-acceptor" 1;
          sim Runner.Onepaxos "crash-leader" 0;
          sim Runner.Multipaxos "crash-leader" 0;
          live Live.Onepaxos "crash-acceptor" 1;
          live Live.Onepaxos "crash-leader" 0;
          live Live.Multipaxos "crash-leader" 0;
        ]
      in
      Format.printf "%-8s %-12s %-16s %10s %12s %11s %11s %11s@." "backend"
        "protocol" "scenario" "ttf(ms)" "outage(ms)" "pre(op/s)" "post(op/s)"
        "consistent";
      List.iter
        (fun r ->
          Format.printf "%-8s %-12s %-16s %10s %12.1f %11.0f %11.0f %11s@."
            r.f_backend r.f_protocol r.f_scenario
            (match r.f_ttf_ms with
             | Some t -> Printf.sprintf "%.2f" t
             | None -> "never")
            r.f_unavail_ms r.f_rate_before r.f_rate_after
            (if r.f_consistent then "yes" else "NO"))
        rows;
      List.iter
        (fun r ->
          let cell =
            Printf.sprintf "%s %s %s" r.f_backend r.f_protocol r.f_scenario
          in
          if not r.f_consistent then
            failwith (Printf.sprintf "faults: %s was inconsistent" cell);
          if r.f_ttf_ms = None || r.f_ops_after = 0 then
            failwith
              (Printf.sprintf "faults: %s never committed again after the crash"
                 cell))
        rows;
      faults_stats := Some rows)

let write_faults_json () =
  match !faults_stats with
  | None -> ()
  | Some rows ->
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{\n  \"rows\": [\n";
    List.iteri
      (fun i r ->
        Buffer.add_string buf
          (Printf.sprintf
             "    {\"backend\": \"%s\", \"protocol\": \"%s\", \"scenario\": \
              \"%s\", \"time_to_failover_ms\": %s, \"unavailable_ms\": %.2f, \
              \"rate_before_ops\": %.0f, \"rate_after_ops\": %.0f, \
              \"ops_after\": %d, \"consistent\": %b}%s\n"
             r.f_backend r.f_protocol r.f_scenario
             (match r.f_ttf_ms with
              | Some t -> Printf.sprintf "%.3f" t
              | None -> "null")
             r.f_unavail_ms r.f_rate_before r.f_rate_after r.f_ops_after
             r.f_consistent
             (if i = List.length rows - 1 then "" else ",")))
      rows;
    Buffer.add_string buf "  ]\n}\n";
    let oc = open_out "BENCH_faults.json" in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (Buffer.contents buf));
    Format.printf "@.wrote BENCH_faults.json@."

(* ----- model-checker benchmark -------------------------------------------- *)

(* One row per protocol, collected for BENCH_explore.json: the bounded
   model checker's verdict on a 3-replica world with one crash allowed
   anywhere, and how hard the reduction machinery works for it — the
   share of prefixes cut by the visited table, the share of enabled
   choices the sleep sets never descend into, and the stateless
   re-execution rate. Crash-tolerant protocols must exhaust the space;
   2PC must be convicted of its blocking livelock and shrunk to the
   single-crash counterexample. Mencius is deliberately absent: its
   skip-message flood makes each liveness closure quadratic, so the
   search runs for minutes (the unit suite convicts it by replaying
   the known one-choice counterexample instead). *)
type explore_row = {
  ex_protocol : string;
  ex_outcome : string;
  ex_states : int;
  ex_executions : int;
  ex_choices_applied : int;
  ex_dedup_ratio : float;  (* dedup hits / states reached *)
  ex_sleep_ratio : float;  (* sleep skips / (branches + sleep skips) *)
  ex_states_per_s : float;
  ex_wall_s : float;
  ex_trace_len : int;  (* -1 when the space was clean *)
  ex_shrunk_len : int;
}

let explore_stats : explore_row list option ref = ref None

let explore ~jobs:_ =
  section "X1. Bounded model checker (schedules x one crash, 3 replicas)"
    "this reproduction's addition: exhaustive delivery-order and fault \
     exploration with digest dedup, sleep sets and trace shrinking"
    (fun () ->
      let module Trace = Ci_explore.Trace in
      let module Search = Ci_explore.Search in
      let row ?(commands = 2) protocol expect =
        let cfg =
          {
            (Trace.default_config ~protocol) with
            Trace.crash_budget = 1;
            fire_budget = 0;
            n_commands = commands;
          }
        in
        let bounds =
          { Search.default_bounds with Search.max_depth = 48; max_states = 200_000 }
        in
        let t0 = Unix.gettimeofday () in
        let r = Search.explore ~bounds cfg in
        let wall = Unix.gettimeofday () -. t0 in
        let name = Trace.protocol_name protocol in
        let outcome, trace_len, shrunk_len =
          match r.Search.outcome with
          | Search.Exhausted -> ("exhausted", -1, -1)
          | Search.Bounded -> ("bounded", -1, -1)
          | Search.Violated { trace; shrunk; _ } ->
            ("violated", List.length trace, List.length shrunk)
        in
        (match (expect, r.Search.outcome) with
        | `Exhaust, Search.Exhausted | `Violate, Search.Violated _ -> ()
        | `Exhaust, _ ->
          failwith
            (Printf.sprintf "explore: %s did not exhaust (%s)" name outcome)
        | `Violate, _ ->
          failwith
            (Printf.sprintf "explore: %s escaped its known violation (%s)" name
               outcome));
        let s = r.Search.stats in
        let ratio num den = if den = 0 then 0. else float_of_int num /. float_of_int den in
        {
          ex_protocol = name;
          ex_outcome = outcome;
          ex_states = s.Search.states;
          ex_executions = s.Search.executions;
          ex_choices_applied = s.Search.choices_applied;
          ex_dedup_ratio = ratio s.Search.dedup_hits (s.Search.states + s.Search.dedup_hits);
          ex_sleep_ratio = ratio s.Search.sleep_skips (s.Search.branches + s.Search.sleep_skips);
          ex_states_per_s = (if wall > 0. then float_of_int s.Search.states /. wall else 0.);
          ex_wall_s = wall;
          ex_trace_len = trace_len;
          ex_shrunk_len = shrunk_len;
        }
      in
      let rows =
        [
          row Trace.Onepaxos `Exhaust;
          row ~commands:1 Trace.Multipaxos `Exhaust;
          row Trace.Twopc `Violate;
        ]
      in
      Format.printf "%-12s %10s %9s %10s %8s %8s %10s %7s@." "protocol"
        "outcome" "states" "states/s" "dedup" "sleep" "trace" "shrunk";
      List.iter
        (fun r ->
          Format.printf "%-12s %10s %9d %10.0f %7.0f%% %7.0f%% %10s %7s@."
            r.ex_protocol r.ex_outcome r.ex_states r.ex_states_per_s
            (100. *. r.ex_dedup_ratio) (100. *. r.ex_sleep_ratio)
            (if r.ex_trace_len < 0 then "-" else string_of_int r.ex_trace_len)
            (if r.ex_shrunk_len < 0 then "-" else string_of_int r.ex_shrunk_len))
        rows;
      explore_stats := Some rows)

let write_explore_json () =
  match !explore_stats with
  | None -> ()
  | Some rows ->
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{\n  \"rows\": [\n";
    List.iteri
      (fun i r ->
        Buffer.add_string buf
          (Printf.sprintf
             "    {\"protocol\": \"%s\", \"outcome\": \"%s\", \"states\": %d, \
              \"executions\": %d, \"choices_applied\": %d, \"dedup_ratio\": \
              %.4f, \"sleep_ratio\": %.4f, \"states_per_s\": %.0f, \
              \"wall_s\": %.3f, \"trace_len\": %d, \"shrunk_len\": %d}%s\n"
             r.ex_protocol r.ex_outcome r.ex_states r.ex_executions
             r.ex_choices_applied r.ex_dedup_ratio r.ex_sleep_ratio
             r.ex_states_per_s r.ex_wall_s r.ex_trace_len r.ex_shrunk_len
             (if i = List.length rows - 1 then "" else ",")))
      rows;
    Buffer.add_string buf "  ]\n}\n";
    let oc = open_out "BENCH_explore.json" in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (Buffer.contents buf));
    Format.printf "@.wrote BENCH_explore.json@."

let json_escape name =
  String.concat ""
    (List.map
       (function '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
       (List.init (String.length name) (String.get name)))

let write_bench_json () =
  match !engine_stats with
  | None -> ()
  | Some s ->
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{\n";
    Buffer.add_string buf
      (Printf.sprintf "  \"event_queue_mops\": %.3f,\n" s.evq_mops);
    Buffer.add_string buf
      (Printf.sprintf "  \"run_wall_s\": %.4f,\n" s.run_wall_s);
    Buffer.add_string buf
      (Printf.sprintf "  \"run_sim_events\": %d,\n" s.run_sim_events);
    Buffer.add_string buf
      (Printf.sprintf "  \"run_events_per_sec\": %.0f,\n" s.run_events_per_sec);
    Buffer.add_string buf
      (Printf.sprintf "  \"run_alloc_words\": %.0f,\n" s.run_alloc_words);
    Buffer.add_string buf
      (Printf.sprintf "  \"alloc_words_per_event\": %.2f,\n"
         (s.run_alloc_words /. float_of_int s.run_sim_events));
    Buffer.add_string buf
      (Printf.sprintf "  \"run_throughput_ops\": %.0f,\n" s.run_throughput);
    Buffer.add_string buf (Printf.sprintf "  \"jobs\": %d,\n" s.jobs);
    Buffer.add_string buf
      (Printf.sprintf "  \"batch_wall_s_jobs1\": %.4f,\n" s.batch_wall_j1);
    Buffer.add_string buf
      (Printf.sprintf "  \"batch_wall_s_jobsN\": %.4f,\n" s.batch_wall_jn);
    Buffer.add_string buf
      (Printf.sprintf "  \"parallel_speedup\": %.3f,\n" s.parallel_speedup);
    let wall_map key walls close =
      Buffer.add_string buf (Printf.sprintf "  \"%s\": {\n" key);
      List.iteri
        (fun i (name, wall) ->
          Buffer.add_string buf
            (Printf.sprintf "    \"%s\": %.4f%s\n" (json_escape name) wall
               (if i = List.length walls - 1 then "" else ",")))
        walls;
      Buffer.add_string buf (Printf.sprintf "  }%s\n" close)
    in
    let j1 = List.rev !section_walls_j1 in
    wall_map "section_wall_s"
      (List.rev !section_walls)
      (if j1 = [] then "" else ",");
    if j1 <> [] then wall_map "section_wall_s_jobs1" j1 "";
    Buffer.add_string buf "}\n";
    let oc = open_out "BENCH_engine.json" in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (Buffer.contents buf));
    Format.printf "@.wrote BENCH_engine.json@."

let metrics ~jobs:_ =
  section "M1. Metrics registry: one instrumented 1Paxos run (Section 4.3)"
    "per-window message counts, per-core utilization and channel back-pressure"
    (fun () ->
      let module Runner = Ci_workload.Runner in
      let spec =
        Runner.default_spec ~protocol:Runner.Onepaxos
          ~placement:(Runner.Dedicated { n_replicas = 3; n_clients = 5 })
      in
      let r = Runner.run spec in
      Format.printf "windows: warmup  %a@." Runner.pp_window r.Runner.windows.Runner.warmup_w;
      Format.printf "         measure %a@." Runner.pp_window r.Runner.windows.Runner.measure_w;
      Format.printf "         drain   %a@." Runner.pp_window r.Runner.windows.Runner.drain_w;
      Format.printf "msgs/commit (measure window): %.2f@."
        (float_of_int r.Runner.messages /. float_of_int (max 1 r.Runner.commits));
      List.iter
        (fun (u : Runner.core_usage) ->
          Format.printf "core %2d: util %.2f busy %dns queue-peak %d@."
            u.Runner.u_core u.Runner.u_util u.Runner.u_busy_ns u.Runner.u_queue_peak)
        r.Runner.cores;
      Format.printf "%a" Ci_obs.Metrics.pp r.Runner.metrics)

(* ----- bechamel micro-benchmarks ----------------------------------------- *)

let micro ~jobs:_ =
  section "Micro-benchmarks (bechamel)"
    "real-time cost of the simulator building blocks on this host"
    (fun () ->
      let open Bechamel in
      let open Toolkit in
      let evq_test =
        Test.make ~name:"event_queue push+pop x100"
          (Staged.stage (fun () ->
               let q = Ci_engine.Event_queue.create () in
               for i = 0 to 99 do
                 Ci_engine.Event_queue.push q ~time:((i * 7919) mod 100) i
               done;
               while not (Ci_engine.Event_queue.is_empty q) do
                 ignore (Ci_engine.Event_queue.pop q)
               done))
      in
      let rng_test =
        let rng = Ci_engine.Rng.create ~seed:1 in
        Test.make ~name:"rng int x100"
          (Staged.stage (fun () ->
               for _ = 0 to 99 do
                 ignore (Ci_engine.Rng.int rng 1000)
               done))
      in
      let sim_test =
        Test.make ~name:"sim schedule+run x100"
          (Staged.stage (fun () ->
               let sim = Ci_engine.Sim.create () in
               for i = 0 to 99 do
                 Ci_engine.Sim.schedule sim ~delay:i (fun () -> ())
               done;
               Ci_engine.Sim.run sim))
      in
      let onepaxos_test =
        Test.make ~name:"1paxos 1ms sim (3 replicas, 3 clients)"
          (Staged.stage (fun () ->
               let spec =
                 {
                   (Ci_workload.Runner.default_spec ~protocol:Ci_workload.Runner.Onepaxos
                      ~placement:
                        (Ci_workload.Runner.Dedicated { n_replicas = 3; n_clients = 3 }))
                   with
                   Ci_workload.Runner.duration = Sim_time.ms 1;
                   warmup = 0;
                   drain = 0;
                 }
               in
               ignore (Ci_workload.Runner.run spec)))
      in
      let tests =
        Test.make_grouped ~name:"consensus_inside"
          [ evq_test; rng_test; sim_test; onepaxos_test ]
      in
      let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
      let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
      let ols =
        Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
      in
      let results = Analyze.all ols Instance.monotonic_clock raw in
      Format.printf "%-55s %16s@." "benchmark" "time/run";
      Hashtbl.iter
        (fun name ols_result ->
          let time =
            match Analyze.OLS.estimates ols_result with
            | Some (t :: _) -> Printf.sprintf "%.1f ns" t
            | Some [] | None -> "n/a"
          in
          Format.printf "%-55s %16s@." name time)
        results)

let sections =
  [
    ("netchar", netchar);
    ("fig2", fig2);
    ("latency", latency);
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig10", fig10);
    ("fig11", fig11);
    ("sec2_2", sec2_2);
    ("lan", lan);
    ("ablation", ablation);
    ("batching", batching);
    ("protocols", protocols);
    ("metrics", metrics);
    ("engine", engine);
    ("runtime", runtime);
    ("codec", codec);
    ("shards", shards);
    ("service", service);
    ("faults", faults);
    ("explore", explore);
    ("micro", micro);
  ]

(* Sections whose runs are fanned out over the pool — the ones worth
   re-timing at jobs=1 for the comparison table. metrics/engine/micro
   time themselves differently (single runs or self-calibrating). *)
let serial_only =
  [
    "metrics"; "engine"; "runtime"; "codec"; "shards"; "service"; "faults";
    "explore"; "micro";
  ]

let print_jobs_table ~jobs =
  let j1 = List.rev !section_walls_j1 in
  if j1 <> [] then begin
    let jn = List.rev !section_walls in
    Format.printf "@.Per-section wall-clock, jobs=1 vs jobs=%d:@." jobs;
    Format.printf "%-55s %10s %10s %9s@." "section" "jobs=1(s)"
      (Printf.sprintf "jobs=%d(s)" jobs)
      "speedup";
    List.iter
      (fun (name, w1) ->
        match List.assoc_opt name jn with
        | Some wn ->
          Format.printf "%-55s %10.2f %10.2f %8.2fx@." name w1 wn (w1 /. wn)
        | None -> ())
      j1;
    let total_j1 = List.fold_left (fun a (_, w) -> a +. w) 0. j1 in
    let total_jn =
      List.fold_left
        (fun a (n, w) -> if List.mem_assoc n j1 then a +. w else a)
        0. jn
    in
    Format.printf "%-55s %10.2f %10.2f %8.2fx@." "TOTAL" total_j1 total_jn
      (total_j1 /. total_jn)
  end

let () =
  let jobs = ref (Pool.default_jobs ()) in
  let rec parse acc = function
    | [] -> List.rev acc
    | ("--jobs" | "-j") :: n :: rest ->
      (match int_of_string_opt n with
       | Some j when j >= 1 -> jobs := j
       | _ ->
         Format.eprintf "--jobs: expected a positive integer, got %S@." n;
         exit 1);
      parse acc rest
    | s :: rest when String.length s > 7 && String.sub s 0 7 = "--jobs=" ->
      (match int_of_string_opt (String.sub s 7 (String.length s - 7)) with
       | Some j when j >= 1 -> jobs := j
       | _ ->
         Format.eprintf "--jobs: expected a positive integer, got %S@." s;
         exit 1);
      parse acc rest
    | s :: rest -> parse (s :: acc) rest
  in
  let requested =
    match parse [] (List.tl (Array.to_list Sys.argv)) with
    | [] -> List.map fst sections
    | names -> names
  in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f -> f ~jobs:!jobs
      | None ->
        Format.eprintf "unknown section %S; available: %s@." name
          (String.concat " " (List.map fst sections));
        exit 1)
    requested;
  if !jobs > 1 then begin
    (* Second, silent pass at jobs=1 over the pool-driven sections for
       the comparison table (figures are byte-identical, so only the
       timing is interesting). *)
    walls_sink := section_walls_j1;
    List.iter
      (fun name ->
        if not (List.mem name serial_only) then
          match List.assoc_opt name sections with
          | Some f -> quietly (fun () -> f ~jobs:1)
          | None -> ())
      requested;
    walls_sink := section_walls;
    print_jobs_table ~jobs:!jobs
  end;
  write_bench_json ();
  write_runtime_json ();
  write_codec_json ();
  write_shards_json ();
  write_service_json ();
  write_faults_json ();
  write_explore_json ()

#!/bin/sh
# Developer pre-flight: clean build (warnings fatal), quick tests, and
# the engine self-benchmark. The full adversarial suite is `dune runtest`.
set -eu
cd "$(dirname "$0")/.."

echo "== build (warnings are errors under the dev profile) =="
dune build

echo "== quick tests (dune build @runtest-quick) =="
dune build @runtest-quick

echo "== engine self-benchmark (writes BENCH_engine.json) =="
dune exec bench/main.exe -- engine

echo "== OK =="

#!/bin/sh
# Developer pre-flight: clean build (warnings fatal), quick tests, the
# engine self-benchmark, and the single- vs multi-domain paths of the
# parallel experiment runner. The full adversarial suite is `dune runtest`.
set -eu
cd "$(dirname "$0")/.."

echo "== build (warnings are errors under the dev profile) =="
dune build

echo "== quick tests (dune build @runtest-quick) =="
dune build @runtest-quick

echo "== engine self-benchmark, jobs=2 (writes BENCH_engine.json) =="
# --jobs 2 makes the engine section's fixed batch take both the
# single-domain (jobs=1) and multi-domain (jobs=2) paths and assert
# the results are identical.
dune exec bench/main.exe -- engine --jobs 2

echo "== figures byte-identity across --jobs (1 vs 3) =="
tmp1=$(mktemp) && tmp3=$(mktemp)
trap 'rm -f "$tmp1" "$tmp3"' EXIT
dune exec bin/consensus_sim.exe -- figures latency --jobs 1 > "$tmp1"
dune exec bin/consensus_sim.exe -- figures latency --jobs 3 > "$tmp3"
cmp "$tmp1" "$tmp3"

echo "== OK =="

#!/bin/sh
# Developer pre-flight: clean build (warnings fatal), quick tests, the
# engine self-benchmark, and the single- vs multi-domain paths of the
# parallel experiment runner. The full adversarial suite is `dune runtest`.
set -eu
cd "$(dirname "$0")/.."

echo "== build (warnings are errors under the dev profile) =="
dune build

echo "== quick tests (dune build @runtest-quick) =="
dune build @runtest-quick

echo "== engine self-benchmark, jobs=2 (writes BENCH_engine.json) =="
# --jobs 2 makes the engine section's fixed batch take both the
# single-domain (jobs=1) and multi-domain (jobs=2) paths and assert
# the results are identical.
dune exec bench/main.exe -- engine --jobs 2

echo "== figures byte-identity across --jobs (1 vs 3) =="
tmp1=$(mktemp) && tmp3=$(mktemp)
trap 'rm -f "$tmp1" "$tmp3"' EXIT
dune exec bin/consensus_sim.exe -- figures latency --jobs 1 > "$tmp1"
dune exec bin/consensus_sim.exe -- figures latency --jobs 3 > "$tmp3"
cmp "$tmp1" "$tmp3"

echo "== live runtime smoke (3 replicas, both protocols; exits 1 on violation) =="
# Short real-domain runs: ~0.6s measured + drain per protocol, well
# under the 2s budget. `live` exits non-zero if the post-run
# consistency check over the joined replica views finds a violation.
dune exec bin/consensus_sim.exe -- live --protocol onepaxos \
  --replicas 3 --clients 2 --duration-s 0.5 --drain-s 0.1
dune exec bin/consensus_sim.exe -- live --protocol multipaxos \
  --replicas 3 --clients 2 --duration-s 0.5 --drain-s 0.1

echo "== codec round-trip smoke (full wire vocabulary, qcheck + zero-alloc) =="
# The codec suite re-encodes every Wire.t constructor through the
# fixed-slot binary codec: bijection, truncation/garbage rejection,
# and the zero-allocation encode guarantee.
dune exec test/test_main.exe -- test codec -q -c

echo "== socket-transport live smoke (3 replicas, both protocols, <=2s) =="
# The same cores as separate processes over stream sockets, codec as
# the wire format. Exit 3 means this host cannot provide
# sockets/processes — skip, don't fail.
for proto in onepaxos multipaxos; do
  rc=0
  dune exec bin/consensus_sim.exe -- live --protocol "$proto" \
    --transport socket --replicas 3 --clients 2 \
    --duration-s 0.5 --drain-s 0.1 || rc=$?
  if [ "$rc" -eq 3 ]; then
    echo "sockets unavailable on this host; skipping"
    break
  elif [ "$rc" -ne 0 ]; then
    exit "$rc"
  fi
done

echo "== live shard smoke (2 groups, cross-shard 2PC, both protocols) =="
# Sharded real-domain runs: 2 consensus groups of 2 replicas plus a
# router per group, 30% of commands cross-shard multi-puts. ~0.5s
# measured + drain per protocol, within the 2s budget. `live` exits
# non-zero on a per-group consistency violation OR a cross-shard
# atomicity violation, so both checks gate the pre-flight.
dune exec bin/consensus_sim.exe -- live --protocol onepaxos \
  --groups 2 --replicas 2 --clients 2 --cross-shard-ratio 0.3 \
  --duration-s 0.4 --drain-s 0.1
dune exec bin/consensus_sim.exe -- live --protocol multipaxos \
  --groups 2 --replicas 2 --clients 2 --cross-shard-ratio 0.3 \
  --duration-s 0.4 --drain-s 0.1

echo "== sim byte-identity at groups=1 (sharding off leaves output untouched) =="
# Passing --groups 1 explicitly must be byte-identical to the default
# sim run: at one group there are no routers, no 2PC participants, no
# extra rng draws — the shard layer must leave the trace untouched.
tmpd=$(mktemp) && tmpg=$(mktemp)
trap 'rm -f "$tmp1" "$tmp3" "$tmpd" "$tmpg"' EXIT
dune exec bin/consensus_sim.exe -- run --protocol 1paxos \
  --replicas 3 --clients 5 --duration-ms 30 > "$tmpd"
dune exec bin/consensus_sim.exe -- run --protocol 1paxos \
  --replicas 3 --clients 5 --duration-ms 30 \
  --groups 1 --cross-shard-ratio 0 > "$tmpg"
cmp "$tmpd" "$tmpg"

echo "== nemesis smoke: crash the active acceptor mid-run on the live runtime =="
# Replica 1 hosts the initial active acceptor; it is killed 0.25s into
# a 0.8s measured phase (volatile state lost) and restarted 0.3s later
# through the protocol's own recover path. `nemesis` exits non-zero if
# the post-run consistency check fails or no commit lands after the
# crash, so a broken failover path fails the pre-flight.
dune exec bin/consensus_sim.exe -- nemesis --backend live --protocol 1paxos \
  --replicas 3 --clients 2 --duration-ms 800 --crash 1:250:300

echo "== open-loop load smoke (both backends, <=2s) =="
# Open-loop driver with leader leases on the simulator (deterministic,
# virtual time) and without on real domains. `load` exits non-zero on a
# consistency violation OR any stale session read, so the lease
# read-floor barrier and the read-your-writes checker both gate the
# pre-flight.
dune exec bin/consensus_sim.exe -- load -p 1paxos -d 20 --rate 20000 \
  --key-dist zipf:0.99 --reads 0.9 --lease-us 2000 --lease-skew-us 20
dune exec bin/consensus_sim.exe -- load --backend live -p multipaxos \
  -d 300 --rate 5000 --poisson

echo "== model-checker smoke (exhaustive, one crash, <=2s) =="
# The bounded explorer must fully exhaust the acceptance configs from
# ISSUE 10 — 3 replicas, crash budget 1, no timer nondeterminism — and
# say so. `explore` exits 1 on any safety or liveness violation, so a
# regression that re-opens a counterexample fails the pre-flight; the
# grep additionally rejects a silent downgrade to outcome=bounded.
dune exec bin/consensus_sim.exe -- explore -p 1paxos \
  --fires 0 --crashes 1 --commands 2 --max-depth 48 \
  | grep -q '^outcome=exhausted$'
dune exec bin/consensus_sim.exe -- explore -p multipaxos \
  --fires 0 --crashes 1 --commands 1 --max-depth 48 \
  | grep -q '^outcome=exhausted$'

echo "== BENCH_explore.json sanity (committed artifact of 'bench explore') =="
# Regenerated by `dune exec bench/main.exe -- explore`; here we only
# check the committed artifact parses and has the promised shape: the
# two crash-tolerant protocols exhausted with nonzero reduction ratios,
# and 2PC convicted and shrunk to the single-crash counterexample.
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF'
import json
rows = json.load(open("BENCH_explore.json"))["rows"]
keys = ["protocol", "outcome", "states", "executions", "choices_applied",
        "dedup_ratio", "sleep_ratio", "states_per_s", "trace_len", "shrunk_len"]
by = {r["protocol"]: r for r in rows}
for k in keys:
    assert all(k in r for r in rows), f"missing key {k}"
for p in ("1paxos", "multipaxos"):
    assert by[p]["outcome"] == "exhausted", f"{p} did not exhaust"
    assert by[p]["dedup_ratio"] > 0, f"{p}: dedup never pruned"
    assert by[p]["sleep_ratio"] > 0, f"{p}: sleep sets never pruned"
assert by["2pc"]["outcome"] == "violated", "2pc escaped its known violation"
assert by["2pc"]["shrunk_len"] == 1, "2pc counterexample not 1-minimal"
print(f"BENCH_explore.json: {len(rows)} rows, ok")
EOF
else
  echo "python3 unavailable; skipping JSON validation"
fi

echo "== BENCH_service.json sanity (committed artifact of 'bench service') =="
# The service curves are regenerated by `dune exec bench/main.exe --
# service`; here we only check the committed artifact parses and has
# the promised shape: >=4 load points per backend x curve, both
# backends, at least one flagged knee.
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF'
import collections, json
rows = json.load(open("BENCH_service.json"))["rows"]
keys = ["backend", "curve", "offered_ops", "achieved_ops", "p50_us",
        "p99_us", "p999_us", "service_p99_us", "lease_reads", "knee"]
assert rows, "no rows"
for k in keys:
    assert all(k in r for r in rows), f"missing key {k}"
assert {r["backend"] for r in rows} == {"sim", "live"}, "need both backends"
points = collections.Counter((r["backend"], r["curve"]) for r in rows)
assert all(v >= 4 for v in points.values()), f"need >=4 points/curve: {points}"
assert any(r["knee"] for r in rows), "no knee flagged"
print(f"BENCH_service.json: {len(rows)} rows over {len(points)} curves, ok")
EOF
else
  echo "python3 unavailable; skipping JSON validation"
fi

echo "== OK =="

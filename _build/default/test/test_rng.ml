module Rng = Ci_engine.Rng

let test_determinism () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:8 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "different seeds diverge" true (!same < 4)

let test_copy_independent () =
  let a = Rng.create ~seed:3 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 b);
  ignore (Rng.bits64 a);
  (* advancing a does not advance b *)
  let a' = Rng.bits64 a and b' = Rng.bits64 b in
  Alcotest.(check bool) "streams diverge after unequal draws" true (a' <> b')

let test_split () =
  let a = Rng.create ~seed:3 in
  let c = Rng.split a in
  let overlaps = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 c then incr overlaps
  done;
  Alcotest.(check bool) "split stream is distinct" true (!overlaps < 4)

let test_int_bounds () =
  let r = Rng.create ~seed:11 in
  for _ = 1 to 10_000 do
    let v = Rng.int r 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of range: %d" v
  done

let test_int_covers_range () =
  let r = Rng.create ~seed:5 in
  let seen = Array.make 8 false in
  for _ = 1 to 1_000 do
    seen.(Rng.int r 8) <- true
  done;
  Array.iteri
    (fun i b -> Alcotest.(check bool) (Printf.sprintf "value %d drawn" i) true b)
    seen

let test_int_in () =
  let r = Rng.create ~seed:13 in
  for _ = 1 to 1_000 do
    let v = Rng.int_in r 5 9 in
    if v < 5 || v > 9 then Alcotest.failf "int_in out of range: %d" v
  done;
  Alcotest.(check int) "degenerate range" 4 (Rng.int_in r 4 4)

let test_float_bounds () =
  let r = Rng.create ~seed:17 in
  for _ = 1 to 10_000 do
    let v = Rng.float r 2.5 in
    if v < 0. || v >= 2.5 then Alcotest.failf "float out of range: %f" v
  done

let test_chance_extremes () =
  let r = Rng.create ~seed:19 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 never" false (Rng.chance r 0.);
    Alcotest.(check bool) "p=1 always" true (Rng.chance r 1.)
  done

let test_chance_proportion () =
  let r = Rng.create ~seed:23 in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Rng.chance r 0.3 then incr hits
  done;
  let p = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) (Printf.sprintf "p≈0.3 (got %.3f)" p) true
    (p > 0.27 && p < 0.33)

let test_exponential_mean () =
  let r = Rng.create ~seed:29 in
  let n = 50_000 in
  let total = ref 0. in
  for _ = 1 to n do
    let v = Rng.exponential r ~mean:10. in
    if v < 0. then Alcotest.fail "negative exponential";
    total := !total +. v
  done;
  let mean = !total /. float_of_int n in
  Alcotest.(check bool) (Printf.sprintf "mean≈10 (got %.2f)" mean) true
    (mean > 9.5 && mean < 10.5)

let test_shuffle_permutes () =
  let r = Rng.create ~seed:31 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 (fun i -> i)) sorted;
  Alcotest.(check bool) "actually moved something" true
    (a <> Array.init 50 (fun i -> i))

let test_pick () =
  let r = Rng.create ~seed:37 in
  let a = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    let v = Rng.pick r a in
    Alcotest.(check bool) "member" true (Array.exists (fun x -> x = v) a)
  done

let suite =
  ( "rng",
    [
      Alcotest.test_case "determinism" `Quick test_determinism;
      Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
      Alcotest.test_case "copy independence" `Quick test_copy_independent;
      Alcotest.test_case "split independence" `Quick test_split;
      Alcotest.test_case "int bounds" `Quick test_int_bounds;
      Alcotest.test_case "int covers range" `Quick test_int_covers_range;
      Alcotest.test_case "int_in bounds" `Quick test_int_in;
      Alcotest.test_case "float bounds" `Quick test_float_bounds;
      Alcotest.test_case "chance extremes" `Quick test_chance_extremes;
      Alcotest.test_case "chance proportion" `Quick test_chance_proportion;
      Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
      Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutes;
      Alcotest.test_case "pick membership" `Quick test_pick;
    ] )

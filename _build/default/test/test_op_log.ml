module Op_log = Ci_rsm.Op_log

let test_in_order () =
  let l = Op_log.create () in
  Alcotest.(check int) "gap at 0" 0 (Op_log.first_gap l);
  (match Op_log.decide l ~inst:0 "a" with `New -> () | _ -> Alcotest.fail "new");
  (match Op_log.decide l ~inst:1 "b" with `New -> () | _ -> Alcotest.fail "new");
  Alcotest.(check int) "gap moves" 2 (Op_log.first_gap l);
  Alcotest.(check int) "count" 2 (Op_log.decided_count l);
  Alcotest.(check (option int)) "highest" (Some 1) (Op_log.highest_decided l);
  Alcotest.(check (option string)) "lookup" (Some "b") (Op_log.get l ~inst:1)

let test_out_of_order_gap () =
  let l = Op_log.create () in
  ignore (Op_log.decide l ~inst:2 "c");
  Alcotest.(check int) "gap stays at 0" 0 (Op_log.first_gap l);
  Alcotest.(check (option int)) "highest jumps" (Some 2) (Op_log.highest_decided l);
  ignore (Op_log.decide l ~inst:0 "a");
  Alcotest.(check int) "gap at 1" 1 (Op_log.first_gap l);
  ignore (Op_log.decide l ~inst:1 "b");
  Alcotest.(check int) "gap closes through 2" 3 (Op_log.first_gap l)

let test_duplicate () =
  let l = Op_log.create () in
  ignore (Op_log.decide l ~inst:0 "a");
  (match Op_log.decide l ~inst:0 "a" with
   | `Duplicate -> ()
   | `New | `Conflict _ -> Alcotest.fail "expected Duplicate");
  Alcotest.(check int) "count unchanged" 1 (Op_log.decided_count l)

let test_conflict () =
  let l = Op_log.create () in
  ignore (Op_log.decide l ~inst:0 "a");
  (match Op_log.decide l ~inst:0 "b" with
   | `Conflict prev -> Alcotest.(check string) "previous value" "a" prev
   | `New | `Duplicate -> Alcotest.fail "expected Conflict");
  Alcotest.(check (option string)) "first write wins" (Some "a") (Op_log.get l ~inst:0);
  Alcotest.(check int) "conflict recorded" 1 (List.length (Op_log.conflicts l))

let test_custom_equal () =
  let l = Op_log.create ~equal:(fun a b -> String.lowercase_ascii a = String.lowercase_ascii b) () in
  ignore (Op_log.decide l ~inst:0 "Hello");
  (match Op_log.decide l ~inst:0 "HELLO" with
   | `Duplicate -> ()
   | `New | `Conflict _ -> Alcotest.fail "custom equal ignored")

let test_to_list_sorted () =
  let l = Op_log.create () in
  List.iter (fun (i, v) -> ignore (Op_log.decide l ~inst:i v))
    [ (3, "d"); (0, "a"); (2, "c"); (1, "b") ];
  Alcotest.(check (list (pair int string)))
    "sorted"
    [ (0, "a"); (1, "b"); (2, "c"); (3, "d") ]
    (Op_log.to_list l)

let test_iter_prefix () =
  let l = Op_log.create () in
  List.iter (fun i -> ignore (Op_log.decide l ~inst:i i)) [ 0; 1; 2; 4; 5 ];
  let seen = ref [] in
  let next = Op_log.iter_prefix l ~from_:0 (fun i _ -> seen := i :: !seen) in
  Alcotest.(check (list int)) "contiguous prefix" [ 0; 1; 2 ] (List.rev !seen);
  Alcotest.(check int) "stops at gap" 3 next;
  ignore (Op_log.decide l ~inst:3 3);
  let seen2 = ref [] in
  let next2 = Op_log.iter_prefix l ~from_:next (fun i _ -> seen2 := i :: !seen2) in
  Alcotest.(check (list int)) "resumes" [ 3; 4; 5 ] (List.rev !seen2);
  Alcotest.(check int) "new gap" 6 next2

let test_negative_instance () =
  let l = Op_log.create () in
  try
    ignore (Op_log.decide l ~inst:(-1) "x");
    Alcotest.fail "negative instance accepted"
  with Invalid_argument _ -> ()

(* Property: for any insertion order of distinct instances, first_gap is
   the smallest missing natural and to_list is sorted. *)
let prop_gap_correct =
  QCheck.Test.make ~name:"first_gap = mex of decided set" ~count:200
    QCheck.(list (int_bound 30))
    (fun insts ->
      let l = Op_log.create () in
      List.iter (fun i -> ignore (Op_log.decide l ~inst:i i)) insts;
      let decided = List.sort_uniq compare insts in
      let rec mex n = if List.mem n decided then mex (n + 1) else n in
      Op_log.first_gap l = mex 0
      && Op_log.to_list l = List.map (fun i -> (i, i)) decided)

let suite =
  ( "op_log",
    [
      Alcotest.test_case "in-order decisions" `Quick test_in_order;
      Alcotest.test_case "out-of-order gaps" `Quick test_out_of_order_gap;
      Alcotest.test_case "duplicate decision" `Quick test_duplicate;
      Alcotest.test_case "conflicting decision" `Quick test_conflict;
      Alcotest.test_case "custom equality" `Quick test_custom_equal;
      Alcotest.test_case "to_list sorted" `Quick test_to_list_sorted;
      Alcotest.test_case "iter_prefix" `Quick test_iter_prefix;
      Alcotest.test_case "negative instance rejected" `Quick test_negative_instance;
      QCheck_alcotest.to_alcotest prop_gap_correct;
    ] )

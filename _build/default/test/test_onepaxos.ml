(* 1Paxos protocol behaviour: the failure-free fast path, acceptor
   switch, leader switch, freshness defence, and the paper's message
   count and availability claims. *)

open Test_util
module Onepaxos = Ci_consensus.Onepaxos
module Command = Ci_rsm.Command

let test_failure_free_commit () =
  let h = onepaxos_cluster () in
  send h ~req_id:0 (Command.Put { key = 1; data = 5 });
  run_ms h 5;
  (match h.replies with
   | [ (0, Command.Done, _) ] -> ()
   | _ -> Alcotest.failf "expected one Done reply, got %d" (List.length h.replies));
  check_safety ~cores:(onepaxos_cores h) h;
  Alcotest.(check bool) "replica 0 leads" true (Onepaxos.is_leader h.replicas.(0));
  Alcotest.(check (option int)) "acceptor is replica 1"
    (Some h.replica_ids.(1))
    (Onepaxos.active_acceptor h.replicas.(0))

let test_all_learners_learn () =
  let h = onepaxos_cluster () in
  for i = 0 to 9 do
    send h ~req_id:i (Command.Put { key = i; data = i })
  done;
  run_ms h 10;
  Alcotest.(check int) "all replies" 10 (List.length h.replies);
  Array.iter
    (fun core ->
      Alcotest.(check int) "every learner executed all 10" 10
        (Ci_consensus.Replica_core.commits core))
    (onepaxos_cores h);
  check_safety ~cores:(onepaxos_cores h) h

let test_message_count_per_commit () =
  (* Figure 3's claim: five boundary-crossing messages per command on
     three replicas (request, accept, two remote learns, reply). *)
  let h = onepaxos_cluster () in
  send h ~req_id:0 Command.Nop;
  run_ms h 5;
  let warm = Machine.total_messages h.machine in
  let reqs = 50 in
  let next = ref 1 in
  let pump () =
    if !next <= reqs then begin
      let r = !next in
      incr next;
      send h ~req_id:r Command.Nop
    end
  in
  (* Closed loop via the reply hook. *)
  Machine.set_handler h.client (fun ~src:_ msg ->
      match msg with
      | Wire.Reply { req_id; result; _ } ->
        h.replies <- (req_id, result, Machine.now h.machine) :: h.replies;
        pump ()
      | _ -> ());
  pump ();
  run_ms h 50;
  let total = Machine.total_messages h.machine - warm in
  let per_commit = float_of_int total /. float_of_int reqs in
  Alcotest.(check bool)
    (Printf.sprintf "5 messages per commit (got %.2f)" per_commit)
    true
    (per_commit > 4.9 && per_commit < 5.1)

let test_duplicate_request_replied_from_cache () =
  let h = onepaxos_cluster () in
  send h ~req_id:0 (Command.Put { key = 1; data = 7 });
  run_ms h 5;
  send h ~req_id:0 (Command.Put { key = 1; data = 7 });
  run_ms h 10;
  Alcotest.(check int) "two replies" 2 (List.length h.replies);
  (* But only one log instance. *)
  let core = (onepaxos_cores h).(0) in
  Alcotest.(check int) "single instance" 1 (Ci_consensus.Replica_core.commits core)

let test_pipelining () =
  (* A burst of requests is proposed without waiting for prior commits:
     total time must be far below n * single-request latency. *)
  let h = onepaxos_cluster () in
  for i = 0 to 19 do
    send h ~req_id:i Command.Nop
  done;
  run_ms h 2;
  Alcotest.(check int) "20 commits within 2ms" 20 (List.length h.replies)

let test_relaxed_read_local () =
  let h = onepaxos_cluster ~tweak:(fun c -> { c with Onepaxos.relaxed_reads = true }) () in
  send h ~req_id:0 (Command.Put { key = 1; data = 42 });
  run_ms h 5;
  (* A relaxed read at a non-leader replica is answered locally. *)
  let before = Machine.total_messages h.machine in
  send h ~dst:2 ~relaxed:true ~req_id:1 (Command.Get { key = 1 });
  run_ms h 10;
  (match h.replies with
   | (1, Command.Found (Some 42), _) :: _ -> ()
   | _ -> Alcotest.fail "relaxed read lost or stale beyond the write");
  let cost = Machine.total_messages h.machine - before in
  Alcotest.(check int) "request + reply only" 2 cost;
  Alcotest.(check bool) "no leader change triggered" true
    (not (Onepaxos.is_leader h.replicas.(2)))

let test_acceptor_switch_on_slow_acceptor () =
  let h = onepaxos_cluster () in
  send h ~req_id:0 Command.Nop;
  run_ms h 5;
  (* Starve the acceptor's core (replica 1 on core 1). *)
  slow_core h ~core:1 ~from_ms:5 ~until_ms:100 ~factor:1e9;
  for i = 1 to 5 do
    send h ~req_id:i (Command.Put { key = i; data = i })
  done;
  run_ms h 60;
  Alcotest.(check int) "all commit after the switch" 6 (List.length h.replies);
  Alcotest.(check (option int)) "acceptor moved to replica 2"
    (Some h.replica_ids.(2))
    (Onepaxos.active_acceptor h.replicas.(0));
  Alcotest.(check bool) "an acceptor change happened" true
    (Onepaxos.acceptor_changes h.replicas.(0) >= 1);
  Alcotest.(check bool) "leadership retained" true (Onepaxos.is_leader h.replicas.(0));
  check_safety ~cores:(onepaxos_cores h) h

let test_uncommitted_proposals_survive_acceptor_switch () =
  (* Lemma 2a's scenario: proposals accepted (or in flight) at a slow
     acceptor are carried through the AcceptorChange and committed with
     their original values and instances. *)
  let h = onepaxos_cluster () in
  send h ~req_id:0 Command.Nop;
  run_ms h 5;
  slow_core h ~core:1 ~from_ms:5 ~until_ms:200 ~factor:1e9;
  (* These land at the leader while the acceptor is dead. *)
  for i = 1 to 4 do
    send h ~req_id:i (Command.Put { key = i; data = i * 10 })
  done;
  run_ms h 80;
  Alcotest.(check int) "all five replies" 5 (List.length h.replies);
  check_safety ~cores:(onepaxos_cores h) h;
  (* Values must appear exactly once each in the log. *)
  let core = (onepaxos_cores h).(0) in
  Alcotest.(check int) "five instances" 5 (Ci_consensus.Replica_core.commits core)

let test_leader_switch_on_client_failover () =
  let h = onepaxos_cluster () in
  send h ~req_id:0 Command.Nop;
  run_ms h 5;
  (* Leader's core starved; the client, as the paper prescribes, sends
     to another node, which takes over through PaxosUtility. *)
  slow_core h ~core:0 ~from_ms:5 ~until_ms:200 ~factor:1e9;
  send h ~dst:2 ~req_id:1 (Command.Put { key = 9; data = 9 });
  run_ms h 100;
  Alcotest.(check bool) "new reply arrived" true
    (List.exists (fun (r, _, _) -> r = 1) h.replies);
  Alcotest.(check bool) "replica 2 is now leader" true
    (Onepaxos.is_leader h.replicas.(2));
  Alcotest.(check bool) "a leader change was applied" true
    (Onepaxos.leader_changes h.replicas.(2) >= 1);
  check_safety ~cores:(onepaxos_cores h) h

let test_acceptor_takes_over_leadership () =
  (* The failed-over client may hit the acceptor node itself: it must
     become leader and relocate the acceptor role off itself. *)
  let h = onepaxos_cluster () in
  send h ~req_id:0 Command.Nop;
  run_ms h 5;
  slow_core h ~core:0 ~from_ms:5 ~until_ms:200 ~factor:1e9;
  send h ~dst:1 ~req_id:1 Command.Nop;
  run_ms h 100;
  Alcotest.(check bool) "reply arrived" true
    (List.exists (fun (r, _, _) -> r = 1) h.replies);
  Alcotest.(check bool) "replica 1 leads" true (Onepaxos.is_leader h.replicas.(1));
  (match Onepaxos.active_acceptor h.replicas.(1) with
   | Some a ->
     Alcotest.(check bool) "acceptor moved off the leader" true
       (a <> h.replica_ids.(1))
   | None -> Alcotest.fail "no active acceptor");
  check_safety ~cores:(onepaxos_cores h) h

let test_blocks_when_leader_and_acceptor_both_slow () =
  (* Section 5.4: with leader and acceptor both unresponsive, 1Paxos
     stalls (safety intact), and resumes when one of them returns. *)
  let h = onepaxos_cluster () in
  send h ~req_id:0 Command.Nop;
  run_ms h 5;
  slow_core h ~core:0 ~from_ms:5 ~until_ms:60 ~factor:1e9;
  slow_core h ~core:1 ~from_ms:5 ~until_ms:60 ~factor:1e9;
  send h ~dst:2 ~req_id:1 Command.Nop;
  run_ms h 40;
  Alcotest.(check int) "stalled while both are down" 1 (List.length h.replies);
  run_ms h 150;
  Alcotest.(check bool) "resumes when they return" true
    (List.exists (fun (r, _, _) -> r = 1) h.replies);
  check_safety ~cores:(onepaxos_cores h) h

let test_acceptor_reset_detected () =
  (* The freshness defence: a silently rebooted acceptor (lost promise
     and accepted proposals) must never be adopted as if intact; the
     last leader replaces it. *)
  let h = onepaxos_cluster () in
  send h ~req_id:0 Command.Nop;
  run_ms h 5;
  Onepaxos.inject_acceptor_reset h.replicas.(1);
  for i = 1 to 3 do
    send h ~req_id:i (Command.Put { key = i; data = i })
  done;
  run_ms h 100;
  Alcotest.(check int) "all commits despite the reset" 4 (List.length h.replies);
  Alcotest.(check bool) "acceptor was replaced" true
    (Onepaxos.acceptor_changes h.replicas.(0) >= 1);
  check_safety ~cores:(onepaxos_cores h) h

let test_five_replicas () =
  let h = onepaxos_cluster ~n:5 () in
  for i = 0 to 9 do
    send h ~req_id:i (Command.Put { key = i; data = i })
  done;
  run_ms h 10;
  Alcotest.(check int) "commits on five replicas" 10 (List.length h.replies);
  check_safety ~cores:(onepaxos_cores h) h

let test_five_replicas_tolerate_non_critical_slowdowns () =
  (* With N=5, any node that is neither leader nor active acceptor can
     be arbitrarily slow without stalling anything. *)
  let h = onepaxos_cluster ~n:5 () in
  slow_core h ~core:3 ~from_ms:0 ~until_ms:100 ~factor:1e9;
  slow_core h ~core:4 ~from_ms:0 ~until_ms:100 ~factor:1e9;
  for i = 0 to 9 do
    send h ~req_id:i Command.Nop
  done;
  run_ms h 20;
  Alcotest.(check int) "progress with 2 of 5 slow" 10 (List.length h.replies);
  check_safety ~cores:(onepaxos_cores h) h

let test_deterministic_replay () =
  let run seed =
    let h = onepaxos_cluster ~seed () in
    for i = 0 to 9 do
      send h ~req_id:i Command.Nop
    done;
    run_ms h 10;
    List.map (fun (r, _, t) -> (r, t)) h.replies
  in
  Alcotest.(check (list (pair int int))) "same seed, same trace" (run 7) (run 7);
  ignore (run 8)

let suite =
  ( "onepaxos",
    [
      Alcotest.test_case "failure-free commit" `Quick test_failure_free_commit;
      Alcotest.test_case "all learners learn" `Quick test_all_learners_learn;
      Alcotest.test_case "5 messages per commit (Figure 3)" `Quick
        test_message_count_per_commit;
      Alcotest.test_case "duplicate request served from cache" `Quick
        test_duplicate_request_replied_from_cache;
      Alcotest.test_case "instance pipelining" `Quick test_pipelining;
      Alcotest.test_case "relaxed local read (7.5)" `Quick test_relaxed_read_local;
      Alcotest.test_case "acceptor switch (5.2)" `Quick
        test_acceptor_switch_on_slow_acceptor;
      Alcotest.test_case "carried proposals survive switch (Lemma 2a)" `Quick
        test_uncommitted_proposals_survive_acceptor_switch;
      Alcotest.test_case "leader switch (5.3)" `Quick
        test_leader_switch_on_client_failover;
      Alcotest.test_case "acceptor node takes leadership (5.4)" `Quick
        test_acceptor_takes_over_leadership;
      Alcotest.test_case "blocks only with leader+acceptor both slow (5.4)" `Quick
        test_blocks_when_leader_and_acceptor_both_slow;
      Alcotest.test_case "silent acceptor reset detected (freshness)" `Quick
        test_acceptor_reset_detected;
      Alcotest.test_case "five replicas" `Quick test_five_replicas;
      Alcotest.test_case "N=5 tolerates non-critical slowdowns" `Quick
        test_five_replicas_tolerate_non_critical_slowdowns;
      Alcotest.test_case "deterministic replay" `Quick test_deterministic_replay;
    ] )

module Sim = Ci_engine.Sim
module Cpu = Ci_machine.Cpu

let test_single_exec () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~id:0 in
  let done_at = ref (-1) in
  Cpu.exec cpu ~cost:100 (fun () -> done_at := Sim.now sim);
  Sim.run sim;
  Alcotest.(check int) "completion time" 100 !done_at;
  Alcotest.(check int) "busy accounted" 100 (Cpu.busy_total cpu)

let test_serialization () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~id:0 in
  let finishes = ref [] in
  for _ = 1 to 3 do
    Cpu.exec cpu ~cost:50 (fun () -> finishes := Sim.now sim :: !finishes)
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "back to back" [ 50; 100; 150 ] (List.rev !finishes)

let test_work_after_idle () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~id:0 in
  let finish = ref 0 in
  Sim.schedule sim ~delay:500 (fun () ->
      Cpu.exec cpu ~cost:10 (fun () -> finish := Sim.now sim));
  Sim.run sim;
  Alcotest.(check int) "starts at request time when idle" 510 !finish;
  Alcotest.(check int) "busy excludes idle gap" 10 (Cpu.busy_total cpu)

let test_zero_cost () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~id:0 in
  let ran = ref false in
  Cpu.exec cpu ~cost:0 (fun () -> ran := true);
  Sim.run sim;
  Alcotest.(check bool) "zero-cost work runs" true !ran;
  Alcotest.(check int) "at time zero" 0 (Sim.now sim)

let test_slowdown_factor_at () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~id:0 in
  Cpu.add_slowdown cpu ~from_:100 ~until_:200 ~factor:4.;
  Alcotest.(check (float 0.001)) "before" 1. (Cpu.factor_at cpu 50);
  Alcotest.(check (float 0.001)) "inside" 4. (Cpu.factor_at cpu 150);
  Alcotest.(check (float 0.001)) "at start (inclusive)" 4. (Cpu.factor_at cpu 100);
  Alcotest.(check (float 0.001)) "at end (exclusive)" 1. (Cpu.factor_at cpu 200)

let test_overlapping_windows_max () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~id:0 in
  Cpu.add_slowdown cpu ~from_:0 ~until_:100 ~factor:2.;
  Cpu.add_slowdown cpu ~from_:50 ~until_:150 ~factor:8.;
  Alcotest.(check (float 0.001)) "max wins" 8. (Cpu.factor_at cpu 75)

let test_slowdown_stretches_work () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~id:0 in
  Cpu.add_slowdown cpu ~from_:0 ~until_:1_000_000 ~factor:3.;
  let finish = ref 0 in
  Cpu.exec cpu ~cost:100 (fun () -> finish := Sim.now sim);
  Sim.run sim;
  Alcotest.(check int) "3x stretch" 300 !finish

let test_work_spanning_boundary () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~id:0 in
  (* 100 units of work start at 0; the first 50 instants are slowed 2x,
     accomplishing 25 units; the remaining 75 run at full speed. *)
  Cpu.add_slowdown cpu ~from_:0 ~until_:50 ~factor:2.;
  let finish = ref 0 in
  Cpu.exec cpu ~cost:100 (fun () -> finish := Sim.now sim);
  Sim.run sim;
  Alcotest.(check int) "piecewise integration" 125 !finish

let test_crash_window_resumes () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~id:0 in
  Cpu.add_slowdown cpu ~from_:10 ~until_:500 ~factor:infinity;
  let finish = ref 0 in
  (* 20 units: 10 complete before the crash, the rest only after it. *)
  Cpu.exec cpu ~cost:20 (fun () -> finish := Sim.now sim);
  Sim.run sim;
  Alcotest.(check int) "finishes after the window" 510 !finish

let test_queue_delay () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~id:0 in
  Alcotest.(check int) "idle" 0 (Cpu.queue_delay cpu);
  Cpu.exec cpu ~cost:100 (fun () -> ());
  Cpu.exec cpu ~cost:100 (fun () -> ());
  Alcotest.(check int) "backlog visible" 200 (Cpu.queue_delay cpu)

let test_invalid_windows () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~id:0 in
  (try
     Cpu.add_slowdown cpu ~from_:10 ~until_:10 ~factor:2.;
     Alcotest.fail "empty window accepted"
   with Invalid_argument _ -> ());
  try
    Cpu.add_slowdown cpu ~from_:0 ~until_:10 ~factor:0.5;
    Alcotest.fail "speed-up accepted"
  with Invalid_argument _ -> ()

let suite =
  ( "cpu",
    [
      Alcotest.test_case "single exec" `Quick test_single_exec;
      Alcotest.test_case "serialization" `Quick test_serialization;
      Alcotest.test_case "idle start" `Quick test_work_after_idle;
      Alcotest.test_case "zero cost" `Quick test_zero_cost;
      Alcotest.test_case "factor_at windows" `Quick test_slowdown_factor_at;
      Alcotest.test_case "overlapping windows" `Quick test_overlapping_windows_max;
      Alcotest.test_case "slowdown stretches work" `Quick test_slowdown_stretches_work;
      Alcotest.test_case "work spanning boundary" `Quick test_work_spanning_boundary;
      Alcotest.test_case "crash window resumes" `Quick test_crash_window_resumes;
      Alcotest.test_case "queue delay" `Quick test_queue_delay;
      Alcotest.test_case "invalid windows" `Quick test_invalid_windows;
    ] )

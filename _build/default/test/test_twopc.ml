(* 2PC in its Barrelfish agreement form: correct ordering, and blocking
   behaviour under any slow replica. *)

open Test_util
module Twopc = Ci_consensus.Twopc
module Command = Ci_rsm.Command

let test_commit () =
  let h = twopc_cluster () in
  send h ~req_id:0 (Command.Put { key = 1; data = 5 });
  run_ms h 5;
  (match h.replies with
   | [ (0, Command.Done, _) ] -> ()
   | _ -> Alcotest.failf "expected one reply, got %d" (List.length h.replies));
  Alcotest.(check bool) "replica 0 coordinates" true
    (Twopc.is_coordinator h.replicas.(0));
  check_safety ~cores:(twopc_cores h) h

let test_all_replicas_apply () =
  let h = twopc_cluster () in
  for i = 0 to 9 do
    send h ~req_id:i (Command.Put { key = i; data = i })
  done;
  run_ms h 10;
  Alcotest.(check int) "all replies" 10 (List.length h.replies);
  Array.iter
    (fun core ->
      Alcotest.(check int) "replica applied all" 10
        (Ci_consensus.Replica_core.commits core))
    (twopc_cores h);
  check_safety ~cores:(twopc_cores h) h

let test_message_count_per_commit () =
  let h = twopc_cluster () in
  send h ~req_id:0 Command.Nop;
  run_ms h 5;
  let warm = Machine.total_messages h.machine in
  let reqs = 50 in
  let next = ref 1 in
  let pump () =
    if !next <= reqs then begin
      let r = !next in
      incr next;
      send h ~req_id:r Command.Nop
    end
  in
  Machine.set_handler h.client (fun ~src:_ msg ->
      match msg with
      | Wire.Reply { req_id; result; _ } ->
        h.replies <- (req_id, result, Machine.now h.machine) :: h.replies;
        pump ()
      | _ -> ());
  pump ();
  run_ms h 50;
  let per_commit =
    float_of_int (Machine.total_messages h.machine - warm) /. float_of_int reqs
  in
  Alcotest.(check bool)
    (Printf.sprintf "10 messages per commit (got %.2f)" per_commit)
    true
    (per_commit > 9.9 && per_commit < 10.1)

let test_blocks_on_any_slow_replica () =
  (* The blocking property: 2PC needs answers from ALL replicas, so even
     a slow non-coordinator stalls every update (Section 2.2). *)
  let h = twopc_cluster () in
  send h ~req_id:0 Command.Nop;
  run_ms h 5;
  slow_core h ~core:2 ~from_ms:5 ~until_ms:50 ~factor:1e9;
  send h ~req_id:1 Command.Nop;
  run_ms h 40;
  Alcotest.(check int) "stalled while one replica is slow" 1 (List.length h.replies);
  run_ms h 100;
  Alcotest.(check int) "commits once it recovers" 2 (List.length h.replies);
  check_safety ~cores:(twopc_cores h) h

let test_blocks_on_slow_coordinator () =
  let h = twopc_cluster () in
  send h ~req_id:0 Command.Nop;
  run_ms h 5;
  slow_core h ~core:0 ~from_ms:5 ~until_ms:80 ~factor:1e9;
  send h ~req_id:1 Command.Nop;
  run_ms h 60;
  Alcotest.(check int) "no recovery path" 1 (List.length h.replies);
  check_safety ~cores:(twopc_cores h) h

let test_forwarding () =
  (* A request reaching a participant is forwarded to the coordinator. *)
  let h = twopc_cluster () in
  send h ~dst:2 ~req_id:0 (Command.Put { key = 1; data = 9 });
  run_ms h 5;
  Alcotest.(check int) "committed via forwarding" 1 (List.length h.replies);
  check_safety ~cores:(twopc_cores h) h

let test_local_read_quiescent () =
  let h = twopc_cluster ~tweak:(fun c -> { c with Twopc.local_reads = true }) () in
  send h ~req_id:0 (Command.Put { key = 1; data = 3 });
  run_ms h 5;
  let before = Machine.total_messages h.machine in
  send h ~dst:1 ~req_id:1 (Command.Get { key = 1 });
  run_ms h 10;
  (match h.replies with
   | (1, Command.Found (Some 3), _) :: _ -> ()
   | _ -> Alcotest.fail "local read failed");
  Alcotest.(check int) "request + reply only" 2
    (Machine.total_messages h.machine - before);
  Alcotest.(check int) "counted as local" 1 (Twopc.local_read_count h.replicas.(1))

let test_local_read_blocked_by_prepared_key () =
  let h = twopc_cluster ~tweak:(fun c -> { c with Twopc.local_reads = true }) () in
  (* Freeze participant 2: the coordinator's prepare reaches replica 1,
     which locks the key, but replica 2 never acknowledges, so the
     commit is never issued and the lock is held. *)
  send h ~req_id:0 (Command.Put { key = 7; data = 1 });
  run_ms h 5;
  slow_core h ~core:2 ~from_ms:5 ~until_ms:50 ~factor:1e9;
  send h ~req_id:1 (Command.Put { key = 7; data = 2 });
  run_ms h 10;
  Alcotest.(check int) "replica 1 holds a lock" 1 (Twopc.prepared_count h.replicas.(1));
  send h ~dst:1 ~req_id:2 (Command.Get { key = 7 });
  run_ms h 20;
  Alcotest.(check int) "read on locked key not served locally" 0
    (Twopc.local_read_count h.replicas.(1));
  (* A read on a different key is served. *)
  send h ~dst:1 ~req_id:3 (Command.Get { key = 8 });
  run_ms h 30;
  Alcotest.(check int) "unrelated key served locally" 1
    (Twopc.local_read_count h.replicas.(1))

let test_single_node_degenerate () =
  let h = twopc_cluster ~n:1 () in
  send h ~req_id:0 (Command.Put { key = 1; data = 1 });
  run_ms h 5;
  Alcotest.(check int) "single node commits alone" 1 (List.length h.replies)

let suite =
  ( "twopc",
    [
      Alcotest.test_case "commit" `Quick test_commit;
      Alcotest.test_case "all replicas apply" `Quick test_all_replicas_apply;
      Alcotest.test_case "10 messages per commit (Figure 3)" `Quick
        test_message_count_per_commit;
      Alcotest.test_case "blocks on any slow replica (2.2)" `Quick
        test_blocks_on_any_slow_replica;
      Alcotest.test_case "blocks on slow coordinator (2.2)" `Quick
        test_blocks_on_slow_coordinator;
      Alcotest.test_case "participant forwards to coordinator" `Quick test_forwarding;
      Alcotest.test_case "quiescent local read (7.5)" `Quick test_local_read_quiescent;
      Alcotest.test_case "locked key blocks local read (7.5)" `Quick
        test_local_read_blocked_by_prepared_key;
      Alcotest.test_case "single-node degenerate case" `Quick test_single_node_degenerate;
    ] )

test/test_report.ml: Alcotest Ci_workload Filename List String Sys

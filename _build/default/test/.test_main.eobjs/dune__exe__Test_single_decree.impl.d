test/test_single_decree.ml: Alcotest Array Ci_consensus Ci_engine Ci_machine Ci_rsm List Option QCheck QCheck_alcotest

test/test_experiments.ml: Alcotest Array Ci_engine Ci_workload Float List Printf

test/test_sim.ml: Alcotest Ci_engine List

test/test_props.ml: Array Ci_engine Ci_machine Ci_rsm Ci_workload Format Gen List Printf QCheck QCheck_alcotest

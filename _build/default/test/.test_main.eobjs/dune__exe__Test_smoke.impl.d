test/test_smoke.ml: Alcotest Ci_engine Ci_rsm Ci_workload Format

test/test_client.ml: Alcotest Ci_consensus Ci_engine Ci_machine Ci_rsm Ci_workload List Printf

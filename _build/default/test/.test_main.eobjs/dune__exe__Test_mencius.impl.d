test/test_mencius.ml: Alcotest Array Ci_consensus Ci_rsm List Printf Test_util Wire

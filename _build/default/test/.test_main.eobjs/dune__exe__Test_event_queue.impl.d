test/test_event_queue.ml: Alcotest Ci_engine List QCheck QCheck_alcotest

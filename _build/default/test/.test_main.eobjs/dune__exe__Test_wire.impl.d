test/test_wire.ml: Alcotest Ci_consensus Ci_rsm Format List String

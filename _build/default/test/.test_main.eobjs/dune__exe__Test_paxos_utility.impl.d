test/test_paxos_utility.ml: Alcotest Array Ci_consensus Ci_engine Ci_machine List Printf

test/test_cpu.ml: Alcotest Ci_engine Ci_machine List

test/test_channel.ml: Alcotest Ci_engine Ci_machine List Printf

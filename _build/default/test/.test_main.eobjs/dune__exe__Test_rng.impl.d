test/test_rng.ml: Alcotest Array Ci_engine Printf

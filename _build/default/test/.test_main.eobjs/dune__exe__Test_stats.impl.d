test/test_stats.ml: Alcotest Array Ci_stats Gen List QCheck QCheck_alcotest

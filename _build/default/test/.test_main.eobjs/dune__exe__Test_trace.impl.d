test/test_trace.ml: Alcotest Ci_engine Format String

test/test_sim_time.ml: Alcotest Ci_engine Format

test/test_machine.ml: Alcotest Ci_engine Ci_machine List Printf String

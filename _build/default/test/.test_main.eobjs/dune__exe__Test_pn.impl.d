test/test_pn.ml: Alcotest Ci_consensus Format

test/test_op_log.ml: Alcotest Ci_rsm List QCheck QCheck_alcotest String

test/test_consistency.ml: Alcotest Ci_rsm Format List String

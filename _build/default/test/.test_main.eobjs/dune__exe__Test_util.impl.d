test/test_util.ml: Alcotest Array Ci_consensus Ci_engine Ci_machine Ci_rsm Hashtbl List

test/test_topology.ml: Alcotest Ci_machine Format

test/test_command.ml: Alcotest Ci_rsm Format

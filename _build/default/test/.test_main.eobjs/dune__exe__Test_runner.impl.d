test/test_runner.ml: Alcotest Array Ci_engine Ci_machine Ci_rsm Ci_stats Ci_workload Printf

test/test_onepaxos.ml: Alcotest Array Ci_consensus Ci_rsm List Machine Printf Test_util Wire

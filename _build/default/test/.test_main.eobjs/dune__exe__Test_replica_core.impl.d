test/test_replica_core.ml: Alcotest Ci_consensus Ci_rsm List

test/test_session_table.ml: Alcotest Ci_rsm

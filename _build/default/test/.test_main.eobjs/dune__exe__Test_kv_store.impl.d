test/test_kv_store.ml: Alcotest Ci_rsm List QCheck QCheck_alcotest

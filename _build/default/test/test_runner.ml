(* The experiment runner: placements, measurement windows, faults. *)

module Runner = Ci_workload.Runner
module Fault_plan = Ci_workload.Fault_plan
module Sim_time = Ci_engine.Sim_time
module Topology = Ci_machine.Topology

let quick_spec ?(protocol = Runner.Onepaxos) ?(placement = Runner.Dedicated { n_replicas = 3; n_clients = 3 }) () =
  {
    (Runner.default_spec ~protocol ~placement) with
    Runner.duration = Sim_time.ms 10;
    warmup = Sim_time.ms 2;
    drain = Sim_time.ms 2;
  }

let test_throughput_consistent_with_commits () =
  let r = Runner.run (quick_spec ()) in
  let expected = float_of_int r.Runner.commits /. 0.010 in
  Alcotest.(check (float 1.0)) "throughput = commits / duration" expected
    r.Runner.throughput;
  Alcotest.(check bool) "window excludes warmup+drain replies" true
    (r.Runner.total_replies > r.Runner.commits)

let test_latency_summary_populated () =
  let r = Runner.run (quick_spec ()) in
  Alcotest.(check int) "one sample per commit" r.Runner.commits
    r.Runner.latency.Ci_stats.Summary.count;
  Alcotest.(check bool) "plausible latency" true
    (r.Runner.latency.Ci_stats.Summary.mean > 1_000.
     && r.Runner.latency.Ci_stats.Summary.mean < 1_000_000.)

let test_deterministic () =
  let r1 = Runner.run (quick_spec ()) in
  let r2 = Runner.run (quick_spec ()) in
  Alcotest.(check int) "same seed, same commits" r1.Runner.commits r2.Runner.commits;
  Alcotest.(check int) "same messages" r1.Runner.messages r2.Runner.messages;
  let r3 = Runner.run { (quick_spec ()) with Runner.seed = 99 } in
  ignore r3

let test_joint_placement () =
  let r =
    Runner.run (quick_spec ~placement:(Runner.Joint { n_nodes = 5 }) ())
  in
  Alcotest.(check bool) "joint commits" true (r.Runner.commits > 0);
  Alcotest.(check bool) "consistent" true (Ci_rsm.Consistency.ok r.Runner.consistency);
  Alcotest.(check int) "five replica views" 5
    r.Runner.consistency.Ci_rsm.Consistency.checked_replicas

let test_fault_applied () =
  let base = quick_spec ~protocol:Runner.Twopc () in
  let faulty =
    {
      base with
      Runner.faults =
        [
          Fault_plan.Slow_core
            { core = 0; from_ = Sim_time.ms 2; until_ = Sim_time.ms 20; factor = 1e9 };
        ];
    }
  in
  let healthy = Runner.run base and broken = Runner.run faulty in
  Alcotest.(check bool)
    (Printf.sprintf "slow coordinator kills 2PC (%d vs %d)" broken.Runner.commits
       healthy.Runner.commits)
    true
    (broken.Runner.commits * 10 < healthy.Runner.commits)

let test_crash_core_fault () =
  let r =
    Runner.run
      {
        (quick_spec ())
        with
        Runner.faults =
          [ Fault_plan.Crash_core { core = 1; from_ = Sim_time.ms 2; until_ = Sim_time.s 1 } ];
      }
  in
  (* Crashing the acceptor: 1Paxos replaces it and keeps committing. *)
  Alcotest.(check bool) "progress despite crashed acceptor" true (r.Runner.commits > 0);
  Alcotest.(check bool) "acceptor change recorded" true (r.Runner.acceptor_changes >= 1);
  Alcotest.(check bool) "consistent" true (Ci_rsm.Consistency.ok r.Runner.consistency)

let test_timeline_length () =
  let r = Runner.run (quick_spec ()) in
  (* window = 2ms warmup + 10ms duration + 2ms drain, bucket 10ms →
     ceil(14/10) + partial coverage: at least one bucket. *)
  Alcotest.(check bool) "timeline covers the run" true (Array.length r.Runner.timeline >= 1)

let test_invalid_placements () =
  let check_invalid name spec =
    try
      ignore (Runner.run spec);
      Alcotest.failf "%s accepted" name
    with Invalid_argument _ -> ()
  in
  check_invalid "zero replicas"
    (quick_spec ~placement:(Runner.Dedicated { n_replicas = 0; n_clients = 1 }) ());
  check_invalid "zero clients"
    (quick_spec ~placement:(Runner.Dedicated { n_replicas = 3; n_clients = 0 }) ());
  check_invalid "too many replicas"
    {
      (quick_spec ~placement:(Runner.Dedicated { n_replicas = 10; n_clients = 1 }) ())
      with
      Runner.topology = Topology.opteron_8;
    }

let test_colocated_acceptor_option () =
  let r = Runner.run { (quick_spec ()) with Runner.colocate_acceptor = true } in
  Alcotest.(check bool) "colocated config still commits" true (r.Runner.commits > 0);
  Alcotest.(check bool) "consistent" true (Ci_rsm.Consistency.ok r.Runner.consistency)

let test_protocol_names () =
  Alcotest.(check string) "1paxos" "1paxos" (Runner.protocol_name Runner.Onepaxos);
  Alcotest.(check string) "multipaxos" "multipaxos"
    (Runner.protocol_name Runner.Multipaxos);
  Alcotest.(check string) "2pc" "2pc" (Runner.protocol_name Runner.Twopc)

let suite =
  ( "runner",
    [
      Alcotest.test_case "throughput arithmetic" `Quick
        test_throughput_consistent_with_commits;
      Alcotest.test_case "latency summary" `Quick test_latency_summary_populated;
      Alcotest.test_case "determinism" `Quick test_deterministic;
      Alcotest.test_case "joint placement" `Quick test_joint_placement;
      Alcotest.test_case "slow-core fault applied" `Quick test_fault_applied;
      Alcotest.test_case "crash-core fault" `Quick test_crash_core_fault;
      Alcotest.test_case "timeline present" `Quick test_timeline_length;
      Alcotest.test_case "invalid placements rejected" `Quick test_invalid_placements;
      Alcotest.test_case "colocated acceptor option" `Quick test_colocated_acceptor_option;
      Alcotest.test_case "protocol names" `Quick test_protocol_names;
    ] )

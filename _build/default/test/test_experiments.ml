(* Shape assertions over scaled-down versions of every reproduced
   figure/table: the paper's qualitative claims must hold on each run. *)

module E = Ci_workload.Experiments
module Sim_time = Ci_engine.Sim_time

let dur = Sim_time.ms 15

let peak (s : E.series) =
  List.fold_left (fun m (p : E.point) -> Float.max m p.E.throughput) 0. s.E.points

let find_series label series =
  match List.find_opt (fun (s : E.series) -> s.E.label = label) series with
  | Some s -> s
  | None -> Alcotest.failf "series %S missing" label

let test_netchar_shapes () =
  let rows = E.netchar () in
  Alcotest.(check int) "three rows" 3 (List.length rows);
  let row name = List.find (fun (r : E.netchar_row) -> r.E.setting = name) rows in
  let mc = row "mc-shared-llc" and cross = row "mc-cross-socket" and lan = row "lan" in
  (* Section 3's headline: the trans/prop ratio is ~1 on the many-core
     and ~0.015 on the LAN — at least two orders of magnitude apart. *)
  Alcotest.(check bool) "multicore ratio near 1" true (mc.E.ratio > 0.5 && mc.E.ratio < 3.);
  Alcotest.(check bool) "lan ratio ~ 0.015" true (lan.E.ratio < 0.03);
  Alcotest.(check bool) "two orders of magnitude" true (mc.E.ratio /. lan.E.ratio > 50.);
  (* Figure 1: cross-socket propagation exceeds shared-LLC. *)
  Alcotest.(check bool) "non-uniform latency" true (cross.E.prop_us > mc.E.prop_us);
  (* Measured transmission matches the calibrated 0.5us / 2us. *)
  Alcotest.(check (float 0.05)) "mc trans" 0.5 mc.E.trans_us;
  Alcotest.(check (float 0.2)) "lan trans" 2.0 lan.E.trans_us

let test_latency_table_ordering () =
  let rows = E.latency_table ~duration:dur () in
  match rows with
  | [ op; mp; tp ] ->
    Alcotest.(check string) "order" "1paxos" op.E.protocol;
    Alcotest.(check bool) "1paxos < multipaxos" true (op.E.latency_us < mp.E.latency_us);
    Alcotest.(check bool) "multipaxos < 2pc" true (mp.E.latency_us < tp.E.latency_us);
    (* Within 40% of the paper's absolute numbers. *)
    List.iter
      (fun (r : E.latency_row) ->
        let ratio = r.E.latency_us /. r.E.paper_latency_us in
        Alcotest.(check bool)
          (Printf.sprintf "%s within 40%% of paper (%.1f vs %.1f)" r.E.protocol
             r.E.latency_us r.E.paper_latency_us)
          true
          (ratio > 0.6 && ratio < 1.4))
      rows
  | _ -> Alcotest.fail "expected three rows"

let test_fig8_shapes () =
  let series = E.fig8 ~clients:[ 1; 3; 8; 16 ] ~duration:dur () in
  let op = find_series "1paxos" series
  and mp = find_series "multipaxos" series
  and tp = find_series "2pc" series in
  (* 1Paxos peak roughly doubles Multi-Paxos's (paper: 52%). *)
  let r_mp = peak mp /. peak op and r_tp = peak tp /. peak op in
  Alcotest.(check bool) (Printf.sprintf "multipaxos/1paxos = %.2f" r_mp) true
    (r_mp > 0.3 && r_mp < 0.7);
  Alcotest.(check bool) (Printf.sprintf "2pc/1paxos = %.2f" r_tp) true
    (r_tp > 0.25 && r_tp < 0.65);
  (* 1Paxos keeps improving past the point where Multi-Paxos is flat. *)
  let at s x =
    (List.find (fun (p : E.point) -> p.E.x = x) s.E.points).E.throughput
  in
  Alcotest.(check bool) "1paxos grows 1 -> 8 clients by ~2x" true
    (at op 8 /. at op 1 > 1.7);
  Alcotest.(check bool) "multipaxos flat after 3 clients" true
    (at mp 8 /. at mp 3 < 1.15)

let test_fig9_shapes () =
  let series = E.fig9 ~nodes:[ 3; 9; 21; 33 ] ~duration:(Sim_time.ms 80) () in
  let op = find_series "1paxos-joint" series
  and mp = find_series "multipaxos-joint" series
  and tp = find_series "2pc-joint" series in
  let at (s : E.series) x =
    (List.find (fun (p : E.point) -> p.E.x = x) s.E.points).E.throughput
  in
  (* 1Paxos-Joint grows monotonically through 33 nodes... *)
  Alcotest.(check bool) "1paxos-joint grows to 33" true
    (at op 33 > at op 21 && at op 21 > at op 9);
  (* ... while the others have declined from their peaks by then. *)
  Alcotest.(check bool) "multipaxos-joint declines" true (at mp 33 < peak mp);
  Alcotest.(check bool) "2pc-joint declines" true (at tp 33 < peak tp);
  Alcotest.(check bool) "1paxos-joint highest at 33" true
    (at op 33 > at mp 33 && at op 33 > at tp 33)

let test_fig10_shapes () =
  let bars = E.fig10 ~duration:dur () in
  let get label clients =
    match
      List.find_opt (fun (b : E.bar) -> b.E.label = label && b.E.clients = clients) bars
    with
    | Some b -> b.E.throughput
    | None -> Alcotest.failf "bar %s/%d missing" label clients
  in
  (* Read share helps 2PC-Joint at 3 clients. *)
  Alcotest.(check bool) "75% read > 0% read (3 clients)" true
    (get "2PC-Joint - 75% read" 3 > get "2PC-Joint - 0% read" 3);
  (* At 75% reads and 3 clients it rivals 1Paxos (within 2x). *)
  Alcotest.(check bool) "75% read rivals 1Paxos at 3 clients" true
    (get "2PC-Joint - 75% read" 3 > 0.5 *. get "1Paxos - 0% read" 3);
  (* More clients erode the 2PC-Joint advantage. *)
  Alcotest.(check bool) "5 clients worse than 3 for 2PC-Joint 75%" true
    (get "2PC-Joint - 75% read" 5 < get "2PC-Joint - 75% read" 3);
  (* Without reads, 1Paxos dominates everywhere. *)
  Alcotest.(check bool) "1Paxos > 2PC-Joint at 0% reads" true
    (get "1Paxos - 0% read" 5 > get "2PC-Joint - 0% read" 5)

let test_fig11_recovery () =
  match E.fig11 ~duration:(Sim_time.ms 120) () with
  | [ faulty; baseline ] ->
    Alcotest.(check bool) "a leader change happened" true
      (faulty.E.leader_changes >= 1);
    let n = Array.length faulty.E.rates in
    let last_rate = faulty.E.rates.(n - 2) in
    let base_last = baseline.E.rates.(Array.length baseline.E.rates - 2) in
    Alcotest.(check bool)
      (Printf.sprintf "recovers to baseline (%.0f vs %.0f)" last_rate base_last)
      true
      (last_rate > 0.9 *. base_last);
    (* The fault bucket (t=40ms, index 4) dips below baseline. *)
    Alcotest.(check bool) "dip at the fault" true
      (faulty.E.rates.(4) < 0.9 *. baseline.E.rates.(4))
  | _ -> Alcotest.fail "expected two timelines"

let test_sec2_2_blocking () =
  match E.sec2_2 ~duration:(Sim_time.ms 120) () with
  | [ faulty; baseline ] ->
    let n = Array.length faulty.E.rates in
    (* After the fault at 40ms, 2PC throughput stays near zero. *)
    let tail_max = ref 0. in
    for i = 5 to n - 2 do
      tail_max := Float.max !tail_max faulty.E.rates.(i)
    done;
    let base = baseline.E.rates.(2) in
    Alcotest.(check bool)
      (Printf.sprintf "2PC stays near zero (%.0f vs baseline %.0f)" !tail_max base)
      true
      (!tail_max < 0.05 *. base)
  | _ -> Alcotest.fail "expected two timelines"

let test_ablation_placement_coupling () =
  match E.ablation_placement ~duration:(Sim_time.ms 80) () with
  | [ colocated; separate ] ->
    let thr (s : E.series) =
      match s.E.points with [ p ] -> p.E.throughput | _ -> Alcotest.fail "one point"
    in
    Alcotest.(check bool)
      (Printf.sprintf "separate placement survives the fault better (%.0f vs %.0f)"
         (thr separate) (thr colocated))
      true
      (thr separate > 2. *. thr colocated)
  | _ -> Alcotest.fail "expected two cases"

let suite =
  ( "experiments",
    [
      Alcotest.test_case "E1 netchar ratios (Section 3)" `Quick test_netchar_shapes;
      Alcotest.test_case "E4 latency ordering (7.2)" `Quick test_latency_table_ordering;
      Alcotest.test_case "E5 figure 8 shapes" `Quick test_fig8_shapes;
      Alcotest.test_case "E6 figure 9 shapes" `Slow test_fig9_shapes;
      Alcotest.test_case "E7 figure 10 shapes" `Quick test_fig10_shapes;
      Alcotest.test_case "E8 figure 11 recovery" `Quick test_fig11_recovery;
      Alcotest.test_case "E3 section 2.2 blocking" `Quick test_sec2_2_blocking;
      Alcotest.test_case "A1 placement coupling" `Quick test_ablation_placement_coupling;
    ] )

module Pn = Ci_consensus.Pn

let test_bottom_least () =
  let p = Pn.make ~round:0 ~owner:0 in
  Alcotest.(check bool) "bottom < any" true Pn.(bottom < p);
  Alcotest.(check bool) "not >" false Pn.(bottom > p);
  Alcotest.(check bool) "bottom = bottom" true (Pn.equal Pn.bottom Pn.bottom)

let test_order () =
  let a = Pn.make ~round:1 ~owner:5 in
  let b = Pn.make ~round:2 ~owner:0 in
  let c = Pn.make ~round:1 ~owner:6 in
  Alcotest.(check bool) "round dominates" true Pn.(a < b);
  Alcotest.(check bool) "owner breaks ties" true Pn.(a < c);
  Alcotest.(check bool) "le reflexive" true Pn.(a <= a);
  Alcotest.(check bool) "ge" true Pn.(b >= c)

let test_uniqueness () =
  (* Two distinct owners can never produce equal numbers. *)
  let a = Pn.make ~round:3 ~owner:1 and b = Pn.make ~round:3 ~owner:2 in
  Alcotest.(check bool) "distinct" false (Pn.equal a b)

let test_succ () =
  let a = Pn.make ~round:3 ~owner:1 in
  let s = Pn.succ a ~owner:2 in
  Alcotest.(check bool) "strictly greater" true Pn.(s > a);
  Alcotest.(check int) "round bumped" 4 s.Pn.round;
  Alcotest.(check int) "owner set" 2 s.Pn.owner;
  let s0 = Pn.succ Pn.bottom ~owner:0 in
  Alcotest.(check bool) "succ bottom valid" true Pn.(s0 > Pn.bottom)

let test_max () =
  let a = Pn.make ~round:1 ~owner:9 and b = Pn.make ~round:2 ~owner:0 in
  Alcotest.(check bool) "max picks larger" true (Pn.equal (Pn.max a b) b);
  Alcotest.(check bool) "symmetric" true (Pn.equal (Pn.max b a) b)

let test_invalid () =
  try
    ignore (Pn.make ~round:(-1) ~owner:0);
    Alcotest.fail "negative round accepted"
  with Invalid_argument _ -> ()

let test_pp () =
  Alcotest.(check string) "bottom" "-inf" (Format.asprintf "%a" Pn.pp Pn.bottom);
  Alcotest.(check string) "pair" "3.7"
    (Format.asprintf "%a" Pn.pp (Pn.make ~round:3 ~owner:7))

let suite =
  ( "pn",
    [
      Alcotest.test_case "bottom is least" `Quick test_bottom_least;
      Alcotest.test_case "lexicographic order" `Quick test_order;
      Alcotest.test_case "owner uniqueness" `Quick test_uniqueness;
      Alcotest.test_case "succ" `Quick test_succ;
      Alcotest.test_case "max" `Quick test_max;
      Alcotest.test_case "invalid round" `Quick test_invalid;
      Alcotest.test_case "pretty printing" `Quick test_pp;
    ] )

module Sim_time = Ci_engine.Sim_time

let check = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

let test_units () =
  check "ns" 7 (Sim_time.ns 7);
  check "us" 3_000 (Sim_time.us 3);
  check "ms" 5_000_000 (Sim_time.ms 5);
  check "s" 2_000_000_000 (Sim_time.s 2)

let test_unit_composition () =
  check "1s = 1000ms" (Sim_time.s 1) (Sim_time.ms 1000);
  check "1ms = 1000us" (Sim_time.ms 1) (Sim_time.us 1000);
  check "1us = 1000ns" (Sim_time.us 1) (Sim_time.ns 1000)

let test_of_us_float () =
  check "rounds up" 1_500 (Sim_time.of_us_float 1.5);
  check "rounds nearest" 1_234 (Sim_time.of_us_float 1.2341);
  check "negative" (-2_500) (Sim_time.of_us_float (-2.5))

let test_to_float () =
  checkf "to_us" 1.5 (Sim_time.to_us_float 1_500);
  checkf "to_ms" 2.5 (Sim_time.to_ms_float 2_500_000);
  checkf "to_s" 0.75 (Sim_time.to_s_float 750_000_000)

let test_pp () =
  let s t = Format.asprintf "%a" Sim_time.pp t in
  Alcotest.(check string) "ns range" "999ns" (s 999);
  Alcotest.(check string) "us range" "1.50us" (s 1_500);
  Alcotest.(check string) "ms range" "2.10ms" (s 2_100_000);
  Alcotest.(check string) "s range" "1.500s" (s 1_500_000_000)

let suite =
  ( "sim_time",
    [
      Alcotest.test_case "unit constructors" `Quick test_units;
      Alcotest.test_case "unit composition" `Quick test_unit_composition;
      Alcotest.test_case "of_us_float rounding" `Quick test_of_us_float;
      Alcotest.test_case "float conversions" `Quick test_to_float;
      Alcotest.test_case "adaptive printing" `Quick test_pp;
    ] )

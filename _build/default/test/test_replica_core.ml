module Replica_core = Ci_consensus.Replica_core
module Wire = Ci_consensus.Wire
module Command = Ci_rsm.Command

let v ?(client = 1) ?(req_id = 0) cmd = { Wire.client; req_id; cmd }

let test_in_order_execution () =
  let t = Replica_core.create ~replica:0 in
  let e0 = Replica_core.learn t ~inst:0 (v ~req_id:0 (Put { key = 1; data = 10 })) in
  Alcotest.(check int) "one executed" 1 (List.length e0);
  let e1 = Replica_core.learn t ~inst:1 (v ~req_id:1 (Get { key = 1 })) in
  (match e1 with
   | [ { Replica_core.result = Command.Found (Some 10); inst = 1; _ } ] -> ()
   | _ -> Alcotest.fail "read saw the prior write");
  Alcotest.(check int) "commits" 2 (Replica_core.commits t)

let test_gap_defers_execution () =
  let t = Replica_core.create ~replica:0 in
  let e2 = Replica_core.learn t ~inst:2 (v ~req_id:2 Command.Nop) in
  Alcotest.(check int) "nothing executable yet" 0 (List.length e2);
  Alcotest.(check bool) "decided though" true (Replica_core.is_decided t ~inst:2);
  let e0 = Replica_core.learn t ~inst:0 (v ~req_id:0 Command.Nop) in
  Alcotest.(check int) "only instance 0 runs" 1 (List.length e0);
  let e1 = Replica_core.learn t ~inst:1 (v ~req_id:1 Command.Nop) in
  Alcotest.(check (list int)) "1 and 2 run together" [ 1; 2 ]
    (List.map (fun e -> e.Replica_core.inst) e1);
  Alcotest.(check int) "first gap" 3 (Replica_core.first_gap t)

let test_duplicate_learn_noop () =
  let t = Replica_core.create ~replica:0 in
  let value = v (Put { key = 1; data = 1 }) in
  ignore (Replica_core.learn t ~inst:0 value);
  Alcotest.(check int) "re-learn executes nothing" 0
    (List.length (Replica_core.learn t ~inst:0 value))

let test_session_dedup () =
  let t = Replica_core.create ~replica:0 in
  (* The same client request decided at two instances (a retry during a
     leader change): the second execution must not reapply. *)
  let value = v ~client:9 ~req_id:5 (Put { key = 1; data = 1 }) in
  ignore (Replica_core.learn t ~inst:0 value);
  ignore (Replica_core.learn t ~inst:1 (v ~client:0 ~req_id:0 (Put { key = 1; data = 2 })));
  let e = Replica_core.learn t ~inst:2 value in
  (match e with
   | [ { Replica_core.result = Command.Done; _ } ] -> ()
   | _ -> Alcotest.fail "duplicate still reports a result");
  (* If the duplicate had re-applied, k1 would be 1 again. *)
  Alcotest.(check (option int)) "no double apply" (Some 2) (Replica_core.local_get t ~key:1)

let test_cached_result () =
  let t = Replica_core.create ~replica:0 in
  Alcotest.(check bool) "miss" true
    (Replica_core.cached_result t ~client:1 ~req_id:0 = None);
  ignore (Replica_core.learn t ~inst:0 (v ~client:1 ~req_id:0 (Put { key = 3; data = 4 })));
  (match Replica_core.cached_result t ~client:1 ~req_id:0 with
   | Some Command.Done -> ()
   | _ -> Alcotest.fail "result not cached");
  (* Undecided request still misses. *)
  Alcotest.(check bool) "other request misses" true
    (Replica_core.cached_result t ~client:1 ~req_id:1 = None)

let test_decisions_from () =
  let t = Replica_core.create ~replica:0 in
  for i = 0 to 4 do
    ignore (Replica_core.learn t ~inst:i (v ~req_id:i Command.Nop))
  done;
  Alcotest.(check (list int)) "suffix" [ 2; 3; 4 ]
    (List.map fst (Replica_core.decisions_from t ~from_:2))

let test_view () =
  let t = Replica_core.create ~replica:7 in
  ignore (Replica_core.learn t ~inst:0 (v (Put { key = 1; data = 1 })));
  let view = Replica_core.view t in
  Alcotest.(check int) "replica id" 7 view.Ci_rsm.Consistency.replica;
  Alcotest.(check int) "prefix" 1 view.Ci_rsm.Consistency.executed_prefix;
  Alcotest.(check int) "decisions" 1 (List.length view.Ci_rsm.Consistency.decisions)

let test_two_replicas_converge () =
  let a = Replica_core.create ~replica:0 and b = Replica_core.create ~replica:1 in
  let values =
    List.init 20 (fun i -> (i, v ~req_id:i (Command.Put { key = i mod 3; data = i })))
  in
  (* a learns in order; b learns in reverse: same final state. *)
  List.iter (fun (i, value) -> ignore (Replica_core.learn a ~inst:i value)) values;
  List.iter (fun (i, value) -> ignore (Replica_core.learn b ~inst:i value)) (List.rev values);
  let va = Replica_core.view a and vb = Replica_core.view b in
  Alcotest.(check int) "same prefix" va.Ci_rsm.Consistency.executed_prefix
    vb.Ci_rsm.Consistency.executed_prefix;
  Alcotest.(check int) "same fingerprint" va.Ci_rsm.Consistency.fingerprint
    vb.Ci_rsm.Consistency.fingerprint

let suite =
  ( "replica_core",
    [
      Alcotest.test_case "in-order execution" `Quick test_in_order_execution;
      Alcotest.test_case "gaps defer execution" `Quick test_gap_defers_execution;
      Alcotest.test_case "duplicate learn is no-op" `Quick test_duplicate_learn_noop;
      Alcotest.test_case "session dedup across instances" `Quick test_session_dedup;
      Alcotest.test_case "cached result" `Quick test_cached_result;
      Alcotest.test_case "decisions_from" `Quick test_decisions_from;
      Alcotest.test_case "consistency view" `Quick test_view;
      Alcotest.test_case "replicas converge regardless of learn order" `Quick
        test_two_replicas_converge;
    ] )

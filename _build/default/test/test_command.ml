module Command = Ci_rsm.Command

let test_is_read () =
  Alcotest.(check bool) "get" true (Command.is_read (Get { key = 1 }));
  Alcotest.(check bool) "put" false (Command.is_read (Put { key = 1; data = 2 }));
  Alcotest.(check bool) "cas" false
    (Command.is_read (Cas { key = 1; expect = 0; data = 2 }));
  Alcotest.(check bool) "nop" false (Command.is_read Nop)

let test_key_of () =
  Alcotest.(check (option int)) "get" (Some 3) (Command.key_of (Get { key = 3 }));
  Alcotest.(check (option int)) "put" (Some 4)
    (Command.key_of (Put { key = 4; data = 0 }));
  Alcotest.(check (option int)) "cas" (Some 5)
    (Command.key_of (Cas { key = 5; expect = 0; data = 1 }));
  Alcotest.(check (option int)) "nop" None (Command.key_of Nop)

let test_equal () =
  let p = Command.Put { key = 1; data = 2 } in
  Alcotest.(check bool) "same put" true (Command.equal p (Put { key = 1; data = 2 }));
  Alcotest.(check bool) "different data" false
    (Command.equal p (Put { key = 1; data = 3 }));
  Alcotest.(check bool) "different constructor" false (Command.equal p Nop);
  Alcotest.(check bool) "nop = nop" true (Command.equal Nop Nop);
  Alcotest.(check bool) "cas full compare" false
    (Command.equal
       (Cas { key = 1; expect = 2; data = 3 })
       (Cas { key = 1; expect = 9; data = 3 }))

let test_equal_result () =
  Alcotest.(check bool) "done" true (Command.equal_result Done Done);
  Alcotest.(check bool) "found none/some" false
    (Command.equal_result (Found None) (Found (Some 1)));
  Alcotest.(check bool) "found same" true
    (Command.equal_result (Found (Some 1)) (Found (Some 1)));
  Alcotest.(check bool) "swapped" false
    (Command.equal_result (Swapped true) (Swapped false));
  Alcotest.(check bool) "cross-kind" false (Command.equal_result Done (Swapped true))

let test_pp () =
  let s c = Format.asprintf "%a" Command.pp c in
  Alcotest.(check string) "put" "put k3=7" (s (Put { key = 3; data = 7 }));
  Alcotest.(check string) "get" "get k3" (s (Get { key = 3 }));
  Alcotest.(check string) "cas" "cas k3 1->2" (s (Cas { key = 3; expect = 1; data = 2 }));
  Alcotest.(check string) "nop" "nop" (s Nop);
  let r x = Format.asprintf "%a" Command.pp_result x in
  Alcotest.(check string) "done" "done" (r Done);
  Alcotest.(check string) "found none" "found -" (r (Found None));
  Alcotest.(check string) "found some" "found 9" (r (Found (Some 9)));
  Alcotest.(check string) "swapped" "swapped true" (r (Swapped true))

let suite =
  ( "command",
    [
      Alcotest.test_case "is_read" `Quick test_is_read;
      Alcotest.test_case "key_of" `Quick test_key_of;
      Alcotest.test_case "equal" `Quick test_equal;
      Alcotest.test_case "equal_result" `Quick test_equal_result;
      Alcotest.test_case "pretty printing" `Quick test_pp;
    ] )

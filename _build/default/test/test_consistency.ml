module Consistency = Ci_rsm.Consistency

let view replica decisions fingerprint executed_prefix =
  { Consistency.replica; decisions; fingerprint; executed_prefix }

let check_all ?(proposed = fun _ -> true) ?(acked = []) views =
  Consistency.check ~equal:String.equal ~proposed ~acked
    ~key_of:(fun v -> (String.length v, 0))
    views

let test_clean () =
  let r =
    check_all
      [
        view 0 [ (0, "a"); (1, "b") ] 42 2;
        view 1 [ (0, "a"); (1, "b") ] 42 2;
      ]
  in
  Alcotest.(check bool) "ok" true (Consistency.ok r);
  Alcotest.(check int) "instances" 2 r.Consistency.checked_instances;
  Alcotest.(check int) "replicas" 2 r.Consistency.checked_replicas

let test_disagreement () =
  let r =
    check_all [ view 0 [ (0, "a") ] 1 1; view 1 [ (0, "DIFFERENT") ] 2 1 ]
  in
  Alcotest.(check bool) "not ok" false (Consistency.ok r);
  match r.Consistency.violations with
  | [ Consistency.Disagreement { inst = 0; a = 0; b = 1 }; _ ] | [ Consistency.Disagreement { inst = 0; a = 0; b = 1 } ] -> ()
  | v -> Alcotest.failf "unexpected violations (%d)" (List.length v)

let test_partial_views_ok () =
  (* A replica that learned fewer instances is not a violation. *)
  let r =
    check_all
      [ view 0 [ (0, "a"); (1, "b"); (2, "c") ] 1 3; view 1 [ (0, "a") ] 2 1 ]
  in
  Alcotest.(check bool) "lagging learner fine" true (Consistency.ok r)

let test_unproposed () =
  let r = check_all ~proposed:(fun v -> v <> "evil") [ view 0 [ (0, "evil") ] 1 1 ] in
  match r.Consistency.violations with
  | [ Consistency.Unproposed { replica = 0; inst = 0 } ] -> ()
  | _ -> Alcotest.fail "expected Unproposed"

let test_fingerprint_mismatch () =
  let r =
    check_all [ view 0 [ (0, "a") ] 111 1; view 1 [ (0, "a") ] 222 1 ]
  in
  match r.Consistency.violations with
  | [ Consistency.Fingerprint_mismatch { prefix = 1; _ } ] -> ()
  | _ -> Alcotest.fail "expected Fingerprint_mismatch"

let test_different_prefixes_not_compared () =
  let r = check_all [ view 0 [ (0, "a") ] 111 1; view 1 [] 222 0 ] in
  Alcotest.(check bool) "no cross-prefix comparison" true (Consistency.ok r)

let test_lost_ack () =
  let r = check_all ~acked:[ (1, 0); (9, 9) ] [ view 0 [ (0, "x") ] 1 1 ] in
  (* "x" has key (1,0); the (9,9) ack was never learned. *)
  match r.Consistency.violations with
  | [ Consistency.Lost_ack { client = 9; req_id = 9 } ] -> ()
  | _ -> Alcotest.fail "expected exactly the lost ack"

let test_pp () =
  let r = check_all [ view 0 [ (0, "a") ] 1 1; view 1 [ (0, "b") ] 1 1 ] in
  let s = Format.asprintf "%a" Consistency.pp r in
  Alcotest.(check bool) "mentions disagreement" true
    (String.length s > 0 && not (Consistency.ok r))

let suite =
  ( "consistency",
    [
      Alcotest.test_case "clean report" `Quick test_clean;
      Alcotest.test_case "disagreement detected" `Quick test_disagreement;
      Alcotest.test_case "lagging learner accepted" `Quick test_partial_views_ok;
      Alcotest.test_case "unproposed value detected" `Quick test_unproposed;
      Alcotest.test_case "state divergence detected" `Quick test_fingerprint_mismatch;
      Alcotest.test_case "different prefixes not compared" `Quick
        test_different_prefixes_not_compared;
      Alcotest.test_case "lost ack detected" `Quick test_lost_ack;
      Alcotest.test_case "report printing" `Quick test_pp;
    ] )

module Kv_store = Ci_rsm.Kv_store
module Command = Ci_rsm.Command

let result = Alcotest.testable Command.pp_result Command.equal_result

let test_put_get () =
  let s = Kv_store.create () in
  Alcotest.check result "miss" (Found None) (Kv_store.apply s (Get { key = 1 }));
  Alcotest.check result "put" Done (Kv_store.apply s (Put { key = 1; data = 10 }));
  Alcotest.check result "hit" (Found (Some 10)) (Kv_store.apply s (Get { key = 1 }));
  Alcotest.check result "overwrite" Done (Kv_store.apply s (Put { key = 1; data = 20 }));
  Alcotest.check result "new value" (Found (Some 20)) (Kv_store.apply s (Get { key = 1 }))

let test_cas () =
  let s = Kv_store.create () in
  Alcotest.check result "cas on missing key fails" (Swapped false)
    (Kv_store.apply s (Cas { key = 1; expect = 0; data = 5 }));
  ignore (Kv_store.apply s (Put { key = 1; data = 5 }));
  Alcotest.check result "wrong expectation fails" (Swapped false)
    (Kv_store.apply s (Cas { key = 1; expect = 4; data = 9 }));
  Alcotest.(check (option int)) "value unchanged" (Some 5) (Kv_store.get s 1);
  Alcotest.check result "matching cas succeeds" (Swapped true)
    (Kv_store.apply s (Cas { key = 1; expect = 5; data = 9 }));
  Alcotest.(check (option int)) "value updated" (Some 9) (Kv_store.get s 1)

let test_nop () =
  let s = Kv_store.create () in
  Alcotest.check result "nop" Done (Kv_store.apply s Nop);
  Alcotest.(check int) "no keys created" 0 (Kv_store.size s)

let test_fingerprint_converges () =
  let a = Kv_store.create () and b = Kv_store.create () in
  let cmds =
    [
      Command.Put { key = 1; data = 10 };
      Put { key = 2; data = 20 };
      Cas { key = 1; expect = 10; data = 11 };
      Put { key = 3; data = 30 };
    ]
  in
  List.iter (fun c -> ignore (Kv_store.apply a c)) cmds;
  List.iter (fun c -> ignore (Kv_store.apply b c)) cmds;
  Alcotest.(check int) "same history, same fingerprint" (Kv_store.fingerprint a)
    (Kv_store.fingerprint b);
  ignore (Kv_store.apply b (Put { key = 1; data = 999 }));
  Alcotest.(check bool) "divergence changes fingerprint" true
    (Kv_store.fingerprint a <> Kv_store.fingerprint b)

let test_snapshot_sorted () =
  let s = Kv_store.create () in
  List.iter
    (fun (k, v) -> ignore (Kv_store.apply s (Put { key = k; data = v })))
    [ (5, 50); (1, 10); (3, 30) ];
  Alcotest.(check (list (pair int int))) "sorted by key"
    [ (1, 10); (3, 30); (5, 50) ]
    (Kv_store.snapshot s);
  Alcotest.(check int) "size" 3 (Kv_store.size s)

(* Property: order-sensitive commands detect order divergence — two
   stores that apply the same multiset of Cas-heavy commands in
   different orders rarely agree, but identical orders always do. *)
let prop_fingerprint_order =
  QCheck.Test.make ~name:"identical command sequences converge" ~count:100
    QCheck.(list (pair (int_bound 8) (int_bound 100)))
    (fun pairs ->
      let a = Kv_store.create () and b = Kv_store.create () in
      List.iter
        (fun (k, v) ->
          let c = Command.Put { key = k; data = v } in
          ignore (Kv_store.apply a c);
          ignore (Kv_store.apply b c))
        pairs;
      Kv_store.fingerprint a = Kv_store.fingerprint b)

let suite =
  ( "kv_store",
    [
      Alcotest.test_case "put/get" `Quick test_put_get;
      Alcotest.test_case "cas semantics" `Quick test_cas;
      Alcotest.test_case "nop" `Quick test_nop;
      Alcotest.test_case "fingerprint convergence" `Quick test_fingerprint_converges;
      Alcotest.test_case "snapshot sorted" `Quick test_snapshot_sorted;
      QCheck_alcotest.to_alcotest prop_fingerprint_order;
    ] )

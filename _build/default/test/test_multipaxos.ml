(* Collapsed Multi-Paxos: fast path, majority progress, elections. *)

open Test_util
module Multipaxos = Ci_consensus.Multipaxos
module Command = Ci_rsm.Command

let test_failure_free_commit () =
  let h = multipaxos_cluster () in
  send h ~req_id:0 (Command.Put { key = 1; data = 5 });
  run_ms h 5;
  (match h.replies with
   | [ (0, Command.Done, _) ] -> ()
   | _ -> Alcotest.failf "expected one reply, got %d" (List.length h.replies));
  Alcotest.(check bool) "initial leader elected" true
    (Multipaxos.is_leader h.replicas.(0));
  check_safety ~cores:(multipaxos_cores h) h

let test_all_learners_learn () =
  let h = multipaxos_cluster () in
  for i = 0 to 9 do
    send h ~req_id:i (Command.Put { key = i; data = i })
  done;
  run_ms h 10;
  Alcotest.(check int) "all replies" 10 (List.length h.replies);
  Array.iter
    (fun core ->
      Alcotest.(check int) "learner executed all" 10
        (Ci_consensus.Replica_core.commits core))
    (multipaxos_cores h);
  check_safety ~cores:(multipaxos_cores h) h

let test_message_count_per_commit () =
  (* Figure 3: ten boundary-crossing messages per command on three
     collapsed replicas. *)
  let h = multipaxos_cluster () in
  send h ~req_id:0 Command.Nop;
  run_ms h 5;
  let warm = Machine.total_messages h.machine in
  let reqs = 50 in
  let next = ref 1 in
  let pump () =
    if !next <= reqs then begin
      let r = !next in
      incr next;
      send h ~req_id:r Command.Nop
    end
  in
  Machine.set_handler h.client (fun ~src:_ msg ->
      match msg with
      | Wire.Reply { req_id; result; _ } ->
        h.replies <- (req_id, result, Machine.now h.machine) :: h.replies;
        pump ()
      | _ -> ());
  pump ();
  run_ms h 50;
  let per_commit =
    float_of_int (Machine.total_messages h.machine - warm) /. float_of_int reqs
  in
  Alcotest.(check bool)
    (Printf.sprintf "10 messages per commit (got %.2f)" per_commit)
    true
    (per_commit > 9.9 && per_commit < 10.1)

let test_progress_with_slow_follower () =
  (* Non-blocking: majority suffices. Contrast with the 2PC test. *)
  let h = multipaxos_cluster () in
  send h ~req_id:0 Command.Nop;
  run_ms h 5;
  slow_core h ~core:2 ~from_ms:5 ~until_ms:100 ~factor:1e9;
  for i = 1 to 10 do
    send h ~req_id:i Command.Nop
  done;
  run_ms h 20;
  Alcotest.(check int) "commits continue with a slow follower" 11
    (List.length h.replies);
  check_safety ~cores:(multipaxos_cores h) h

let test_leader_election_on_failover () =
  let h = multipaxos_cluster () in
  send h ~req_id:0 Command.Nop;
  run_ms h 5;
  slow_core h ~core:0 ~from_ms:5 ~until_ms:200 ~factor:1e9;
  send h ~dst:1 ~req_id:1 (Command.Put { key = 3; data = 3 });
  run_ms h 100;
  Alcotest.(check bool) "reply after takeover" true
    (List.exists (fun (r, _, _) -> r = 1) h.replies);
  Alcotest.(check bool) "replica 1 leads" true (Multipaxos.is_leader h.replicas.(1));
  Alcotest.(check bool) "it ran an election" true (Multipaxos.elections h.replicas.(1) >= 1);
  check_safety ~cores:(multipaxos_cores h) h

let test_deposed_leader_steps_down () =
  let h = multipaxos_cluster () in
  send h ~req_id:0 Command.Nop;
  run_ms h 5;
  slow_core h ~core:0 ~from_ms:5 ~until_ms:30 ~factor:1e9;
  send h ~dst:1 ~req_id:1 Command.Nop;
  run_ms h 100;
  (* The old leader recovered at 30ms; once it observes the higher
     proposal number it must not consider itself leader. *)
  Alcotest.(check bool) "old leader stepped down" false
    (Multipaxos.is_leader h.replicas.(0));
  check_safety ~cores:(multipaxos_cores h) h

let test_in_flight_values_survive_election () =
  (* Accepted-but-unlearned values must be re-proposed by the next
     leader with the same values (the promise/adoption rule). *)
  let h = multipaxos_cluster () in
  send h ~req_id:0 Command.Nop;
  run_ms h 5;
  slow_core h ~core:0 ~from_ms:5 ~until_ms:300 ~factor:1e9;
  for i = 1 to 4 do
    send h ~dst:0 ~req_id:i (Command.Put { key = i; data = i })
  done;
  run_ms h 10;
  (* Requests are stuck at the slow leader; the client retries them at
     replica 1, which takes over. *)
  for i = 1 to 4 do
    send h ~dst:1 ~req_id:i (Command.Put { key = i; data = i })
  done;
  run_ms h 200;
  Alcotest.(check bool) "all retried requests answered" true
    (List.for_all
       (fun i -> List.exists (fun (r, _, _) -> r = i) h.replies)
       [ 1; 2; 3; 4 ]);
  check_safety ~cores:(multipaxos_cores h) h

let test_five_replicas_two_slow () =
  let h = multipaxos_cluster ~n:5 () in
  send h ~req_id:0 Command.Nop;
  run_ms h 5;
  slow_core h ~core:3 ~from_ms:5 ~until_ms:100 ~factor:1e9;
  slow_core h ~core:4 ~from_ms:5 ~until_ms:100 ~factor:1e9;
  for i = 1 to 10 do
    send h ~req_id:i Command.Nop
  done;
  run_ms h 30;
  Alcotest.(check int) "majority of 5 progresses" 11 (List.length h.replies);
  check_safety ~cores:(multipaxos_cores h) h

let test_relaxed_read () =
  let h =
    multipaxos_cluster ~tweak:(fun c -> { c with Multipaxos.relaxed_reads = true }) ()
  in
  send h ~req_id:0 (Command.Put { key = 1; data = 77 });
  run_ms h 5;
  send h ~dst:1 ~relaxed:true ~req_id:1 (Command.Get { key = 1 });
  run_ms h 10;
  match h.replies with
  | (1, Command.Found (Some 77), _) :: _ -> ()
  | _ -> Alcotest.fail "local read failed"

let suite =
  ( "multipaxos",
    [
      Alcotest.test_case "failure-free commit" `Quick test_failure_free_commit;
      Alcotest.test_case "all learners learn" `Quick test_all_learners_learn;
      Alcotest.test_case "10 messages per commit (Figure 3)" `Quick
        test_message_count_per_commit;
      Alcotest.test_case "progress with slow follower" `Quick
        test_progress_with_slow_follower;
      Alcotest.test_case "leader election on failover" `Quick
        test_leader_election_on_failover;
      Alcotest.test_case "deposed leader steps down" `Quick
        test_deposed_leader_steps_down;
      Alcotest.test_case "in-flight values survive election" `Quick
        test_in_flight_values_survive_election;
      Alcotest.test_case "five replicas, two slow" `Quick test_five_replicas_two_slow;
      Alcotest.test_case "relaxed local read" `Quick test_relaxed_read;
    ] )

module Session_table = Ci_rsm.Session_table
module Command = Ci_rsm.Command

let test_find_missing () =
  let t = Session_table.create () in
  Alcotest.(check bool) "not executed" false (Session_table.executed t ~client:1 ~req_id:1);
  Alcotest.(check bool) "find none" true
    (Session_table.find t ~client:1 ~req_id:1 = None)

let test_record_and_find () =
  let t = Session_table.create () in
  Session_table.record t ~client:1 ~req_id:1 Command.Done;
  Alcotest.(check bool) "executed" true (Session_table.executed t ~client:1 ~req_id:1);
  (match Session_table.find t ~client:1 ~req_id:1 with
   | Some Command.Done -> ()
   | _ -> Alcotest.fail "cached result lost");
  Alcotest.(check int) "size" 1 (Session_table.size t)

let test_clients_isolated () =
  let t = Session_table.create () in
  Session_table.record t ~client:1 ~req_id:7 (Command.Found (Some 1));
  Alcotest.(check bool) "other client's req 7 not executed" false
    (Session_table.executed t ~client:2 ~req_id:7);
  Session_table.record t ~client:2 ~req_id:7 (Command.Found (Some 2));
  (match Session_table.find t ~client:1 ~req_id:7, Session_table.find t ~client:2 ~req_id:7 with
   | Some (Command.Found (Some 1)), Some (Command.Found (Some 2)) -> ()
   | _ -> Alcotest.fail "per-client results mixed up")

let test_double_record_asserts () =
  let t = Session_table.create () in
  Session_table.record t ~client:1 ~req_id:1 Command.Done;
  try
    Session_table.record t ~client:1 ~req_id:1 Command.Done;
    Alcotest.fail "double record accepted"
  with Assert_failure _ -> ()

let suite =
  ( "session_table",
    [
      Alcotest.test_case "missing lookups" `Quick test_find_missing;
      Alcotest.test_case "record and find" `Quick test_record_and_find;
      Alcotest.test_case "clients isolated" `Quick test_clients_isolated;
      Alcotest.test_case "double record rejected" `Quick test_double_record_asserts;
    ] )

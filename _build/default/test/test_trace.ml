module Trace = Ci_engine.Trace

let test_record_and_read () =
  let t = Trace.create () in
  Trace.record t ~time:10 "first";
  Trace.record t ~time:20 "second";
  Alcotest.(check int) "length" 2 (Trace.length t);
  Alcotest.(check (list (pair int string)))
    "entries in order"
    [ (10, "first"); (20, "second") ]
    (Trace.entries t)

let test_capacity_eviction () =
  let t = Trace.create ~capacity:3 () in
  for i = 1 to 5 do
    Trace.record t ~time:i (string_of_int i)
  done;
  Alcotest.(check int) "bounded" 3 (Trace.length t);
  Alcotest.(check int) "evictions counted" 2 (Trace.dropped t);
  Alcotest.(check (list (pair int string)))
    "oldest evicted"
    [ (3, "3"); (4, "4"); (5, "5") ]
    (Trace.entries t)

let test_disable () =
  let t = Trace.create () in
  Trace.set_enabled t false;
  Alcotest.(check bool) "disabled" false (Trace.enabled t);
  Trace.record t ~time:1 "dropped";
  Trace.recordf t ~time:2 "also %s" "dropped";
  Alcotest.(check int) "nothing recorded" 0 (Trace.length t);
  Trace.set_enabled t true;
  Trace.record t ~time:3 "kept";
  Alcotest.(check int) "recording resumes" 1 (Trace.length t)

let test_recordf () =
  let t = Trace.create () in
  Trace.recordf t ~time:5 "x=%d y=%s" 42 "hi";
  Alcotest.(check (list (pair int string))) "formatted" [ (5, "x=42 y=hi") ]
    (Trace.entries t)

let test_clear () =
  let t = Trace.create ~capacity:2 () in
  for i = 1 to 4 do
    Trace.record t ~time:i "x"
  done;
  Trace.clear t;
  Alcotest.(check int) "empty" 0 (Trace.length t);
  Alcotest.(check int) "dropped reset" 0 (Trace.dropped t)

(* Minimal substring check without extra dependencies. *)
let contains haystack needle =
  let h = String.length haystack and n = String.length needle in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_pp () =
  let t = Trace.create () in
  Trace.record t ~time:1000 "hello";
  let s = Format.asprintf "%a" Trace.pp t in
  Alcotest.(check bool) "mentions entry" true (contains s "hello")

let suite =
  ( "trace",
    [
      Alcotest.test_case "record and read" `Quick test_record_and_read;
      Alcotest.test_case "capacity eviction" `Quick test_capacity_eviction;
      Alcotest.test_case "disable/enable" `Quick test_disable;
      Alcotest.test_case "recordf formatting" `Quick test_recordf;
      Alcotest.test_case "clear" `Quick test_clear;
      Alcotest.test_case "pretty printing" `Quick test_pp;
    ] )

(* Mencius: multi-leader ordering, skips, load distribution (§8). *)

open Test_util
module Mencius = Ci_consensus.Mencius
module Command = Ci_rsm.Command

let test_single_owner_commits () =
  let h = mencius_cluster () in
  send h ~dst:0 ~req_id:0 (Command.Put { key = 1; data = 5 });
  run_ms h 5;
  (match h.replies with
   | [ (0, Command.Done, _) ] -> ()
   | _ -> Alcotest.failf "expected one reply, got %d" (List.length h.replies));
  check_safety ~cores:(mencius_cores h) h

let test_any_replica_serves () =
  (* Every replica is a leader for its own slots: requests sent to any
     of the three commit without forwarding. *)
  let h = mencius_cluster () in
  send h ~dst:0 ~req_id:0 (Command.Put { key = 0; data = 0 });
  send h ~dst:1 ~req_id:1 (Command.Put { key = 1; data = 1 });
  send h ~dst:2 ~req_id:2 (Command.Put { key = 2; data = 2 });
  run_ms h 5;
  Alcotest.(check (list int)) "all three served" [ 0; 1; 2 ]
    (List.sort compare (reply_ids h));
  check_safety ~cores:(mencius_cores h) h

let test_skips_fill_idle_slots () =
  (* Only replica 0 has traffic: replicas 1 and 2 must cede their slots
     so the log executes past them. *)
  let h = mencius_cluster () in
  for i = 0 to 9 do
    send h ~dst:0 ~req_id:i (Command.Put { key = i; data = i })
  done;
  run_ms h 10;
  Alcotest.(check int) "all commits despite idle owners" 10 (List.length h.replies);
  Alcotest.(check bool) "replica 1 skipped slots" true
    (Mencius.skips_proposed h.replicas.(1) > 0);
  Alcotest.(check bool) "replica 2 skipped slots" true
    (Mencius.skips_proposed h.replicas.(2) > 0);
  Alcotest.(check int) "replica 0 never skips its own used slots" 10
    (Mencius.owned_used h.replicas.(0));
  check_safety ~cores:(mencius_cores h) h

let test_interleaved_owners () =
  let h = mencius_cluster () in
  for i = 0 to 29 do
    send h ~dst:(i mod 3) ~req_id:i (Command.Put { key = i; data = i })
  done;
  run_ms h 10;
  Alcotest.(check int) "all commits" 30 (List.length h.replies);
  (* Balanced load: no skips needed once everyone proposes. *)
  let total_skips =
    Array.fold_left (fun acc r -> acc + Mencius.skips_proposed r) 0 h.replicas
  in
  Alcotest.(check bool)
    (Printf.sprintf "few skips under balanced load (%d)" total_skips)
    true (total_skips <= 6);
  check_safety ~cores:(mencius_cores h) h

let test_logs_identical_across_replicas () =
  let h = mencius_cluster () in
  for i = 0 to 19 do
    send h ~dst:(i mod 3) ~req_id:i (Command.Put { key = i mod 4; data = i })
  done;
  run_ms h 10;
  let views =
    Array.to_list (mencius_cores h) |> List.map Ci_consensus.Replica_core.view
  in
  (match views with
   | v :: rest ->
     List.iter
       (fun v' ->
         Alcotest.(check int) "same fingerprint"
           v.Ci_rsm.Consistency.fingerprint v'.Ci_rsm.Consistency.fingerprint)
       rest
   | [] -> assert false);
  check_safety ~cores:(mencius_cores h) h

let test_skip_value_identification () =
  Alcotest.(check bool) "skip detected" true
    (Mencius.is_skip_value { Wire.client = -1; req_id = 7; cmd = Command.Nop });
  Alcotest.(check bool) "client value not a skip" false
    (Mencius.is_skip_value { Wire.client = 3; req_id = 7; cmd = Command.Nop });
  Alcotest.(check bool) "non-nop not a skip" false
    (Mencius.is_skip_value
       { Wire.client = -1; req_id = 7; cmd = Command.Put { key = 1; data = 1 } })

let test_duplicate_request_cached () =
  let h = mencius_cluster () in
  send h ~dst:1 ~req_id:0 (Command.Put { key = 1; data = 1 });
  run_ms h 5;
  send h ~dst:1 ~req_id:0 (Command.Put { key = 1; data = 1 });
  run_ms h 10;
  Alcotest.(check int) "both replied" 2 (List.length h.replies);
  check_safety ~cores:(mencius_cores h) h

let test_five_replicas () =
  let h = mencius_cluster ~n:5 () in
  for i = 0 to 24 do
    send h ~dst:(i mod 5) ~req_id:i (Command.Put { key = i; data = i })
  done;
  run_ms h 10;
  Alcotest.(check int) "all commits on 5 owners" 25 (List.length h.replies);
  check_safety ~cores:(mencius_cores h) h

let suite =
  ( "mencius",
    [
      Alcotest.test_case "single owner commits" `Quick test_single_owner_commits;
      Alcotest.test_case "any replica serves its clients" `Quick test_any_replica_serves;
      Alcotest.test_case "skips fill idle owners' slots" `Quick test_skips_fill_idle_slots;
      Alcotest.test_case "interleaved owners, few skips" `Quick test_interleaved_owners;
      Alcotest.test_case "identical logs across replicas" `Quick
        test_logs_identical_across_replicas;
      Alcotest.test_case "skip value identification" `Quick test_skip_value_identification;
      Alcotest.test_case "duplicate request cached" `Quick test_duplicate_request_cached;
      Alcotest.test_case "five owners" `Quick test_five_replicas;
    ] )

(* Cheap Paxos: reduced active set, epoch reconfiguration, and the §8
   liveness contrast with 1Paxos. *)

open Test_util
module Cheap_paxos = Ci_consensus.Cheap_paxos
module Onepaxos = Ci_consensus.Onepaxos
module Command = Ci_rsm.Command

let test_commit () =
  let h = cheap_cluster () in
  send h ~req_id:0 (Command.Put { key = 1; data = 5 });
  run_ms h 5;
  (match h.replies with
   | [ (0, Command.Done, _) ] -> ()
   | _ -> Alcotest.failf "expected one reply, got %d" (List.length h.replies));
  Alcotest.(check bool) "replica 0 leads" true (Cheap_paxos.is_leader h.replicas.(0));
  Alcotest.(check (list int)) "two actives of three"
    [ h.replica_ids.(0); h.replica_ids.(1) ]
    (Cheap_paxos.actives h.replicas.(0));
  check_safety ~cores:(cheap_cores h) h

let test_message_count_per_commit () =
  (* Leader + one active: request, accept, accepted, two learns, reply
     = six boundary-crossing messages — between 1Paxos's five and
     Multi-Paxos's ten. *)
  let h = cheap_cluster () in
  send h ~req_id:0 Command.Nop;
  run_ms h 5;
  let warm = Machine.total_messages h.machine in
  let reqs = 50 in
  let next = ref 1 in
  let pump () =
    if !next <= reqs then begin
      let r = !next in
      incr next;
      send h ~req_id:r Command.Nop
    end
  in
  Machine.set_handler h.client (fun ~src:_ msg ->
      match msg with
      | Wire.Reply { req_id; result; _ } ->
        h.replies <- (req_id, result, Machine.now h.machine) :: h.replies;
        pump ()
      | _ -> ());
  pump ();
  run_ms h 50;
  let per_commit =
    float_of_int (Machine.total_messages h.machine - warm) /. float_of_int reqs
  in
  Alcotest.(check bool)
    (Printf.sprintf "6 messages per commit (got %.2f)" per_commit)
    true
    (per_commit > 5.9 && per_commit < 6.1)

let test_auxiliary_idle () =
  (* The third replica is auxiliary: it learns but transmits nothing in
     the failure-free path. *)
  let h = cheap_cluster () in
  for i = 0 to 9 do
    send h ~req_id:i (Command.Put { key = i; data = i })
  done;
  run_ms h 10;
  Alcotest.(check int) "auxiliary sent nothing" 0
    (Machine.messages_sent h.machine ~node:h.replica_ids.(2));
  Array.iter
    (fun core ->
      Alcotest.(check int) "but learned everything" 10
        (Ci_consensus.Replica_core.commits core))
    (cheap_cores h);
  check_safety ~cores:(cheap_cores h) h

let test_drops_slow_active () =
  let h = cheap_cluster () in
  send h ~req_id:0 Command.Nop;
  run_ms h 5;
  slow_core h ~core:1 ~from_ms:5 ~until_ms:100 ~factor:1e9;
  for i = 1 to 5 do
    send h ~req_id:i (Command.Put { key = i; data = i })
  done;
  run_ms h 60;
  Alcotest.(check int) "commits continue after dropping the active" 6
    (List.length h.replies);
  Alcotest.(check (list int)) "actives shrank to the leader"
    [ h.replica_ids.(0) ]
    (Cheap_paxos.actives h.replicas.(0));
  Alcotest.(check bool) "an epoch change happened" true
    (Cheap_paxos.reconfigs h.replicas.(0) >= 1);
  check_safety ~cores:(cheap_cores h) h

let test_takeover_via_state_pull () =
  (* Leader fails while another active survives: a non-active replica
     pulls the state from it and takes over. *)
  let h = cheap_cluster () in
  send h ~req_id:0 Command.Nop;
  run_ms h 5;
  slow_core h ~core:0 ~from_ms:5 ~until_ms:200 ~factor:1e9;
  send h ~dst:2 ~req_id:1 (Command.Put { key = 9; data = 9 });
  run_ms h 100;
  Alcotest.(check bool) "committed after takeover" true
    (List.exists (fun (r, _, _) -> r = 1) h.replies);
  Alcotest.(check bool) "replica 2 leads" true (Cheap_paxos.is_leader h.replicas.(2));
  check_safety ~cores:(cheap_cores h) h

(* The §8 scenario. Timeline:
     t=5ms   r1 (active) becomes unresponsive
             -> leader r0 shrinks the actives to {r0}; commits continue
     t=30ms  r0 becomes unresponsive too; r1 recovers at t=60ms
             -> Cheap Paxos: r1 and r2 are alive (a majority!) but
                neither holds epoch-2 state; the takeover loops on
                state pulls from {r0}. Blocked.
     t=150ms r0 recovers -> unblocked.
   1Paxos under the same schedule progresses from t=60ms: two of three
   replicas responding is all it ever needs. *)
let cheap_scenario () =
  let h = cheap_cluster () in
  send h ~req_id:0 Command.Nop;
  run_ms h 5;
  slow_core h ~core:1 ~from_ms:5 ~until_ms:60 ~factor:1e9;
  for i = 1 to 3 do
    send h ~req_id:i (Command.Put { key = i; data = i })
  done;
  run_ms h 30;
  Alcotest.(check int) "progress with shrunken actives" 4 (List.length h.replies);
  slow_core h ~core:0 ~from_ms:30 ~until_ms:150 ~factor:1e9;
  send h ~dst:2 ~req_id:4 (Command.Put { key = 4; data = 4 });
  h

let test_blocked_until_state_holder_returns () =
  let h = cheap_scenario () in
  (* r1 is back from t=60ms; run far beyond every timeout. *)
  run_ms h 140;
  Alcotest.(check int)
    "still blocked although two replicas are alive (r0 holds the state)" 4
    (List.length h.replies);
  (* r0 returns at 150ms: now the state pull succeeds. *)
  run_ms h 250;
  Alcotest.(check bool) "recovers once the state holder is back" true
    (List.exists (fun (r, _, _) -> r = 4) h.replies);
  check_safety ~cores:(cheap_cores h) h

let test_onepaxos_progresses_in_same_scenario () =
  (* The § 8 contrast: "1Paxos progresses as soon as either r1 or r2
     starts responding". Same fault schedule, 1Paxos cluster. *)
  let h = onepaxos_cluster () in
  send h ~req_id:0 Command.Nop;
  run_ms h 5;
  slow_core h ~core:1 ~from_ms:5 ~until_ms:60 ~factor:1e9;
  for i = 1 to 3 do
    send h ~req_id:i (Command.Put { key = i; data = i })
  done;
  run_ms h 30;
  Alcotest.(check int) "1paxos progressed with r1 slow" 4 (List.length h.replies);
  slow_core h ~core:0 ~from_ms:30 ~until_ms:150 ~factor:1e9;
  send h ~dst:2 ~req_id:4 (Command.Put { key = 4; data = 4 });
  (* r1 recovers at 60ms: replicas 1 and 2 form a majority; 1Paxos
     commits well before r0 ever returns. *)
  run_ms h 140;
  Alcotest.(check bool) "1paxos already recovered with r0 still down" true
    (List.exists (fun (r, _, _) -> r = 4) h.replies);
  check_safety ~cores:(onepaxos_cores h) h

let test_five_replicas_three_active () =
  let h = cheap_cluster ~n:5 () in
  Alcotest.(check int) "f+1 = 3 actives" 3
    (List.length (Cheap_paxos.actives h.replicas.(0)));
  for i = 0 to 9 do
    send h ~req_id:i Command.Nop
  done;
  run_ms h 10;
  Alcotest.(check int) "commits" 10 (List.length h.replies);
  Alcotest.(check int) "auxiliaries idle" 0
    (Machine.messages_sent h.machine ~node:h.replica_ids.(4));
  check_safety ~cores:(cheap_cores h) h

let suite =
  ( "cheap_paxos",
    [
      Alcotest.test_case "commit with reduced active set" `Quick test_commit;
      Alcotest.test_case "6 messages per commit" `Quick test_message_count_per_commit;
      Alcotest.test_case "auxiliaries transmit nothing" `Quick test_auxiliary_idle;
      Alcotest.test_case "drops a slow active and continues" `Quick
        test_drops_slow_active;
      Alcotest.test_case "takeover via state pull" `Quick test_takeover_via_state_pull;
      Alcotest.test_case "blocked until the state holder returns (8)" `Quick
        test_blocked_until_state_holder_returns;
      Alcotest.test_case "1paxos progresses in the same scenario (8)" `Quick
        test_onepaxos_progresses_in_same_scenario;
      Alcotest.test_case "five replicas, three active" `Quick
        test_five_replicas_three_active;
    ] )

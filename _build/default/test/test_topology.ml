module Topology = Ci_machine.Topology

let test_counts () =
  let t = Topology.create ~sockets:4 ~cores_per_socket:6 in
  Alcotest.(check int) "cores" 24 (Topology.n_cores t);
  Alcotest.(check int) "sockets" 4 (Topology.n_sockets t)

let test_presets () =
  Alcotest.(check int) "opteron_48" 48 (Topology.n_cores Topology.opteron_48);
  Alcotest.(check int) "opteron_48 sockets" 8 (Topology.n_sockets Topology.opteron_48);
  Alcotest.(check int) "opteron_8" 8 (Topology.n_cores Topology.opteron_8);
  Alcotest.(check int) "single_socket" 16 (Topology.n_cores (Topology.single_socket 16))

let test_socket_of () =
  let t = Topology.opteron_48 in
  Alcotest.(check int) "core 0" 0 (Topology.socket_of t 0);
  Alcotest.(check int) "core 5" 0 (Topology.socket_of t 5);
  Alcotest.(check int) "core 6" 1 (Topology.socket_of t 6);
  Alcotest.(check int) "core 47" 7 (Topology.socket_of t 47)

let test_same_socket () =
  let t = Topology.opteron_48 in
  Alcotest.(check bool) "0 and 1" true (Topology.same_socket t 0 1);
  Alcotest.(check bool) "0 and 5" true (Topology.same_socket t 0 5);
  Alcotest.(check bool) "0 and 6" false (Topology.same_socket t 0 6);
  Alcotest.(check bool) "reflexive" true (Topology.same_socket t 3 3)

let test_invalid () =
  Alcotest.check_raises "zero sockets" (Invalid_argument
    "Topology.create: sockets and cores_per_socket must be positive")
    (fun () -> ignore (Topology.create ~sockets:0 ~cores_per_socket:4));
  let t = Topology.opteron_8 in
  (try
     ignore (Topology.socket_of t 8);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ());
  try
    ignore (Topology.socket_of t (-1));
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_pp () =
  let s = Format.asprintf "%a" Topology.pp Topology.opteron_48 in
  Alcotest.(check string) "rendering" "8x6 (48 cores)" s

let suite =
  ( "topology",
    [
      Alcotest.test_case "counts" `Quick test_counts;
      Alcotest.test_case "presets" `Quick test_presets;
      Alcotest.test_case "socket_of" `Quick test_socket_of;
      Alcotest.test_case "same_socket" `Quick test_same_socket;
      Alcotest.test_case "invalid arguments" `Quick test_invalid;
      Alcotest.test_case "pretty printing" `Quick test_pp;
    ] )

module Summary = Ci_stats.Summary
module Timeseries = Ci_stats.Timeseries
module Histogram = Ci_stats.Histogram

let test_summary_empty () =
  let s = Summary.of_samples [||] in
  Alcotest.(check int) "count" 0 s.Summary.count;
  Alcotest.(check (float 0.)) "mean" 0. s.Summary.mean

let test_summary_basics () =
  let s = Summary.of_samples [| 10; 20; 30; 40; 50 |] in
  Alcotest.(check int) "count" 5 s.Summary.count;
  Alcotest.(check (float 0.001)) "mean" 30. s.Summary.mean;
  Alcotest.(check int) "min" 10 s.Summary.min;
  Alcotest.(check int) "max" 50 s.Summary.max;
  Alcotest.(check int) "median" 30 s.Summary.p50;
  Alcotest.(check (float 0.01)) "stddev" (sqrt 200.) s.Summary.stddev

let test_summary_unsorted_input () =
  let s1 = Summary.of_samples [| 5; 1; 4; 2; 3 |] in
  let s2 = Summary.of_samples [| 1; 2; 3; 4; 5 |] in
  Alcotest.(check int) "p50 order-insensitive" s2.Summary.p50 s1.Summary.p50;
  Alcotest.(check int) "p99 order-insensitive" s2.Summary.p99 s1.Summary.p99

let test_summary_does_not_mutate () =
  let a = [| 3; 1; 2 |] in
  ignore (Summary.of_samples a);
  Alcotest.(check (array int)) "input untouched" [| 3; 1; 2 |] a

let test_quantile_nearest_rank () =
  let sorted = Array.init 100 (fun i -> i + 1) in
  Alcotest.(check int) "p50 of 1..100" 50 (Summary.quantile sorted 0.5);
  Alcotest.(check int) "p99" 99 (Summary.quantile sorted 0.99);
  Alcotest.(check int) "p100 clamps" 100 (Summary.quantile sorted 1.0);
  Alcotest.(check int) "p0 clamps" 1 (Summary.quantile sorted 0.0)

let prop_quantiles_member =
  QCheck.Test.make ~name:"quantiles are sample members" ~count:200
    QCheck.(pair (list_of_size Gen.(int_range 1 50) (int_bound 10_000)) (float_range 0.0 1.0))
    (fun (samples, q) ->
      let sorted = Array.of_list (List.sort compare samples) in
      let v = Summary.quantile sorted q in
      Array.exists (fun x -> x = v) sorted)

let test_timeseries_buckets () =
  let t = Timeseries.create ~bucket:10 in
  List.iter (fun time -> Timeseries.add t ~time) [ 0; 5; 9; 10; 25; 25 ];
  Alcotest.(check (array int)) "counts" [| 3; 1; 2 |] (Timeseries.counts t ~upto:30);
  Alcotest.(check int) "total" 6 (Timeseries.total t)

let test_timeseries_zero_fill () =
  let t = Timeseries.create ~bucket:10 in
  Timeseries.add t ~time:35;
  Alcotest.(check (array int)) "gaps zero-filled" [| 0; 0; 0; 1 |]
    (Timeseries.counts t ~upto:40)

let test_timeseries_rates () =
  let t = Timeseries.create ~bucket:1_000_000 (* 1 ms *) in
  for _ = 1 to 500 do
    Timeseries.add t ~time:100
  done;
  let rates = Timeseries.rates_per_sec t ~upto:1_000_000 in
  Alcotest.(check (float 0.1)) "500 per ms = 500k/s" 500_000. rates.(0)

let test_timeseries_invalid () =
  (try
     ignore (Timeseries.create ~bucket:0);
     Alcotest.fail "bucket 0 accepted"
   with Invalid_argument _ -> ());
  let t = Timeseries.create ~bucket:10 in
  try
    Timeseries.add t ~time:(-1);
    Alcotest.fail "negative time accepted"
  with Invalid_argument _ -> ()

let test_histogram () =
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 0; 1; 1; 3; 900; 1000 ];
  Alcotest.(check int) "count" 6 (Histogram.count h);
  let buckets = Histogram.buckets h in
  Alcotest.(check bool) "non-empty buckets in order" true
    (List.for_all2
       (fun (lo1, _, _) (lo2, _, _) -> lo1 < lo2)
       (List.filteri (fun i _ -> i < List.length buckets - 1) buckets)
       (List.tl buckets));
  let total = List.fold_left (fun acc (_, _, c) -> acc + c) 0 buckets in
  Alcotest.(check int) "buckets cover all samples" 6 total

let test_histogram_bounds () =
  let h = Histogram.create () in
  Histogram.add h 5;
  (match Histogram.buckets h with
   | [ (lo, hi, 1) ] ->
     Alcotest.(check bool) "5 in [lo,hi)" true (lo <= 5 && 5 < hi)
   | _ -> Alcotest.fail "expected one bucket");
  try
    Histogram.add h (-1);
    Alcotest.fail "negative sample accepted"
  with Invalid_argument _ -> ()

let suite =
  ( "stats",
    [
      Alcotest.test_case "summary of empty" `Quick test_summary_empty;
      Alcotest.test_case "summary basics" `Quick test_summary_basics;
      Alcotest.test_case "summary input order" `Quick test_summary_unsorted_input;
      Alcotest.test_case "summary does not mutate" `Quick test_summary_does_not_mutate;
      Alcotest.test_case "nearest-rank quantiles" `Quick test_quantile_nearest_rank;
      QCheck_alcotest.to_alcotest prop_quantiles_member;
      Alcotest.test_case "timeseries buckets" `Quick test_timeseries_buckets;
      Alcotest.test_case "timeseries zero fill" `Quick test_timeseries_zero_fill;
      Alcotest.test_case "timeseries rates" `Quick test_timeseries_rates;
      Alcotest.test_case "timeseries validation" `Quick test_timeseries_invalid;
      Alcotest.test_case "histogram" `Quick test_histogram;
      Alcotest.test_case "histogram bounds" `Quick test_histogram_bounds;
    ] )

(* End-to-end smoke checks: a small run of each protocol commits
   requests and stays consistent. *)

module Runner = Ci_workload.Runner
module Sim_time = Ci_engine.Sim_time

let small_spec protocol =
  {
    (Runner.default_spec ~protocol
       ~placement:(Runner.Dedicated { n_replicas = 3; n_clients = 3 }))
    with
    Runner.duration = Sim_time.ms 10;
    warmup = Sim_time.ms 2;
    drain = Sim_time.ms 3;
  }

let check_protocol protocol () =
  let r = Runner.run (small_spec protocol) in
  Alcotest.(check bool)
    (Format.asprintf "consistent: %a" Ci_rsm.Consistency.pp r.Runner.consistency)
    true
    (Ci_rsm.Consistency.ok r.Runner.consistency);
  if r.Runner.commits <= 0 then
    Alcotest.failf "no commits (%d replies total)" r.Runner.total_replies

let suites =
  [
    ( "smoke",
      [
        Alcotest.test_case "1paxos commits and is consistent" `Quick
          (check_protocol Runner.Onepaxos);
        Alcotest.test_case "multipaxos commits and is consistent" `Quick
          (check_protocol Runner.Multipaxos);
        Alcotest.test_case "2pc commits and is consistent" `Quick
          (check_protocol Runner.Twopc);
      ] );
  ]

type 'v t = {
  equal : 'v -> 'v -> bool;
  table : (int, 'v) Hashtbl.t;
  mutable gap : int; (* smallest possibly-undecided instance *)
  mutable highest : int option;
  mutable bad : (int * 'v * 'v) list;
}

let create ?(equal = ( = )) () =
  { equal; table = Hashtbl.create 256; gap = 0; highest = None; bad = [] }

let advance_gap t =
  while Hashtbl.mem t.table t.gap do
    t.gap <- t.gap + 1
  done

let decide t ~inst v =
  if inst < 0 then invalid_arg "Op_log.decide: negative instance";
  match Hashtbl.find_opt t.table inst with
  | Some prev ->
    if t.equal prev v then `Duplicate
    else begin
      t.bad <- (inst, prev, v) :: t.bad;
      `Conflict prev
    end
  | None ->
    Hashtbl.add t.table inst v;
    (match t.highest with
     | Some h when h >= inst -> ()
     | Some _ | None -> t.highest <- Some inst);
    if inst = t.gap then advance_gap t;
    `New

let get t ~inst = Hashtbl.find_opt t.table inst
let is_decided t ~inst = Hashtbl.mem t.table inst
let first_gap t = t.gap
let highest_decided t = t.highest
let decided_count t = Hashtbl.length t.table
let conflicts t = List.rev t.bad

let to_list t =
  Hashtbl.fold (fun i v acc -> (i, v) :: acc) t.table []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let iter_prefix t ~from_ f =
  let i = ref from_ in
  let continue = ref true in
  while !continue do
    match Hashtbl.find_opt t.table !i with
    | Some v ->
      f !i v;
      incr i
    | None -> continue := false
  done;
  !i

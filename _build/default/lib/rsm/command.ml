type t =
  | Put of { key : int; data : int }
  | Get of { key : int }
  | Cas of { key : int; expect : int; data : int }
  | Nop

type result = Done | Found of int option | Swapped of bool

let is_read = function Get _ -> true | Put _ | Cas _ | Nop -> false

let key_of = function
  | Put { key; _ } | Get { key } | Cas { key; _ } -> Some key
  | Nop -> None

let equal a b =
  match a, b with
  | Put x, Put y -> x.key = y.key && x.data = y.data
  | Get x, Get y -> x.key = y.key
  | Cas x, Cas y -> x.key = y.key && x.expect = y.expect && x.data = y.data
  | Nop, Nop -> true
  | (Put _ | Get _ | Cas _ | Nop), _ -> false

let equal_result a b =
  match a, b with
  | Done, Done -> true
  | Found x, Found y -> x = y
  | Swapped x, Swapped y -> x = y
  | (Done | Found _ | Swapped _), _ -> false

let pp fmt = function
  | Put { key; data } -> Format.fprintf fmt "put k%d=%d" key data
  | Get { key } -> Format.fprintf fmt "get k%d" key
  | Cas { key; expect; data } ->
    Format.fprintf fmt "cas k%d %d->%d" key expect data
  | Nop -> Format.pp_print_string fmt "nop"

let pp_result fmt = function
  | Done -> Format.pp_print_string fmt "done"
  | Found None -> Format.pp_print_string fmt "found -"
  | Found (Some v) -> Format.fprintf fmt "found %d" v
  | Swapped b -> Format.fprintf fmt "swapped %b" b

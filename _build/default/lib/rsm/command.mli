(** Commands of the replicated state machine.

    The paper's agreement protocols order opaque client commands; the
    motivating use is replicated kernel/application state à la
    Barrelfish (capability tables, configuration). We use a small
    key-value command language rich enough to exercise ordering bugs
    (blind writes, reads, compare-and-swap). *)

type t =
  | Put of { key : int; data : int }  (** Blind write. *)
  | Get of { key : int }  (** Read. *)
  | Cas of { key : int; expect : int; data : int }
      (** Conditional write: succeeds iff the key currently holds
          [expect]. Order-sensitive, so it catches divergent logs. *)
  | Nop  (** The paper's no-payload benchmark request. *)

type result =
  | Done  (** A write (or [Nop]) was applied. *)
  | Found of int option  (** A read's answer. *)
  | Swapped of bool  (** Whether a [Cas] succeeded. *)

val is_read : t -> bool
(** [is_read c] is whether [c] leaves the store unchanged. *)

val key_of : t -> int option
(** [key_of c] is the datum [c] touches ([None] for [Nop]). *)

val equal : t -> t -> bool
(** Structural equality. *)

val equal_result : result -> result -> bool
(** Structural equality on results. *)

val pp : Format.formatter -> t -> unit
(** Prints a command, e.g. [put k3=7]. *)

val pp_result : Format.formatter -> result -> unit
(** Prints a result. *)

type 'v replica_view = {
  replica : int;
  decisions : (int * 'v) list;
  fingerprint : int;
  executed_prefix : int;
}

type violation =
  | Disagreement of { inst : int; a : int; b : int }
  | Unproposed of { replica : int; inst : int }
  | Fingerprint_mismatch of { a : int; b : int; prefix : int }
  | Lost_ack of { client : int; req_id : int }

type report = {
  violations : violation list;
  checked_instances : int;
  checked_replicas : int;
}

let ok r = r.violations = []

let check ~equal ~proposed ~acked ~key_of views =
  let violations = ref [] in
  let add v = violations := v :: !violations in
  (* Agreement: first decider of an instance sets the reference. *)
  let reference : (int, int * 'v) Hashtbl.t = Hashtbl.create 1024 in
  List.iter
    (fun view ->
      List.iter
        (fun (inst, v) ->
          match Hashtbl.find_opt reference inst with
          | None -> Hashtbl.add reference inst (view.replica, v)
          | Some (owner, v0) ->
            if not (equal v0 v) then
              add (Disagreement { inst; a = owner; b = view.replica }))
        view.decisions)
    views;
  (* Non-triviality. *)
  List.iter
    (fun view ->
      List.iter
        (fun (inst, v) ->
          if not (proposed v) then add (Unproposed { replica = view.replica; inst }))
        view.decisions)
    views;
  (* State convergence among replicas with equal executed prefixes. *)
  let by_prefix = Hashtbl.create 16 in
  List.iter
    (fun view ->
      match Hashtbl.find_opt by_prefix view.executed_prefix with
      | None -> Hashtbl.add by_prefix view.executed_prefix view
      | Some other ->
        if other.fingerprint <> view.fingerprint then
          add
            (Fingerprint_mismatch
               { a = other.replica; b = view.replica; prefix = view.executed_prefix }))
    views;
  (* Session integrity: every acked request was learned somewhere. *)
  let learned_keys = Hashtbl.create 1024 in
  List.iter
    (fun view ->
      List.iter
        (fun (_, v) -> Hashtbl.replace learned_keys (key_of v) ())
        view.decisions)
    views;
  List.iter
    (fun (client, req_id) ->
      if not (Hashtbl.mem learned_keys (client, req_id)) then
        add (Lost_ack { client; req_id }))
    acked;
  {
    violations = List.rev !violations;
    checked_instances = Hashtbl.length reference;
    checked_replicas = List.length views;
  }

let pp_violation fmt = function
  | Disagreement { inst; a; b } ->
    Format.fprintf fmt "disagreement at instance %d between replicas %d and %d"
      inst a b
  | Unproposed { replica; inst } ->
    Format.fprintf fmt "replica %d learned an unproposed value at instance %d"
      replica inst
  | Fingerprint_mismatch { a; b; prefix } ->
    Format.fprintf fmt
      "replicas %d and %d diverge in state after executing %d instances" a b
      prefix
  | Lost_ack { client; req_id } ->
    Format.fprintf fmt "client %d request %d was acknowledged but never learned"
      client req_id

let pp fmt r =
  if ok r then
    Format.fprintf fmt "consistent (%d instances across %d replicas)"
      r.checked_instances r.checked_replicas
  else begin
    Format.fprintf fmt "%d violation(s):@." (List.length r.violations);
    List.iter (fun v -> Format.fprintf fmt "  - %a@." pp_violation v) r.violations
  end

type t = (int, int) Hashtbl.t

let create () = Hashtbl.create 64

let apply t (c : Command.t) : Command.result =
  match c with
  | Put { key; data } ->
    Hashtbl.replace t key data;
    Done
  | Get { key } -> Found (Hashtbl.find_opt t key)
  | Cas { key; expect; data } ->
    (match Hashtbl.find_opt t key with
     | Some v when v = expect ->
       Hashtbl.replace t key data;
       Swapped true
     | Some _ | None -> Swapped false)
  | Nop -> Done

let get t key = Hashtbl.find_opt t key

let size t = Hashtbl.length t

let fingerprint t =
  Hashtbl.fold (fun k v acc -> acc lxor Hashtbl.hash (k, v, 0x9e3779b9)) t 0

let snapshot t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(** Ordered, possibly gappy, decided-command log.

    Consensus decides a value per instance number, but instances may be
    decided out of order (e.g. during a leader change). The log records
    decisions as they arrive and exposes the executable prefix: the
    maximal contiguous run of decided instances starting at 0. *)

type 'v t
(** A log of decided values of type ['v]. *)

val create : ?equal:('v -> 'v -> bool) -> unit -> 'v t
(** [create ~equal ()] is an empty log. [equal] (default [( = )])
    detects conflicting re-decisions. *)

val decide : 'v t -> inst:int -> 'v -> [ `New | `Duplicate | `Conflict of 'v ]
(** [decide t ~inst v] records that instance [inst] decided [v].
    [`Duplicate] means the same value was already recorded;
    [`Conflict prev] means a {e different} value was recorded before —
    a consensus safety violation, recorded and reported but not
    overwritten. Requires [inst >= 0]. *)

val get : 'v t -> inst:int -> 'v option
(** [get t ~inst] is the decided value, if any. *)

val is_decided : 'v t -> inst:int -> bool
(** [is_decided t ~inst] is whether the instance has a decision. *)

val first_gap : 'v t -> int
(** [first_gap t] is the smallest undecided instance number. *)

val highest_decided : 'v t -> int option
(** [highest_decided t] is the largest decided instance number. *)

val decided_count : 'v t -> int
(** [decided_count t] is the number of decided instances. *)

val conflicts : 'v t -> (int * 'v * 'v) list
(** [conflicts t] lists observed re-decisions with different values as
    [(inst, first, offender)]. *)

val to_list : 'v t -> (int * 'v) list
(** [to_list t] is all decisions sorted by instance. *)

val iter_prefix : 'v t -> from_:int -> (int -> 'v -> unit) -> int
(** [iter_prefix t ~from_ f] calls [f] on decided instances [from_,
    from_+1, ...] until the first gap and returns the next unexecuted
    instance (i.e. the gap position). *)

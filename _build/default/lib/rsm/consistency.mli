(** End-of-run consistency checker.

    Encodes the paper's two safety properties for consensus
    (Section 2.3) plus state-machine-level checks, evaluated over the
    logs every replica accumulated during a run:

    - {b consistency} (agreement): no two learners learn different
      values for the same instance;
    - {b non-triviality}: only proposed values are learned;
    - {b state convergence}: replicas that executed the same prefix have
      identical store fingerprints;
    - {b session integrity}: every acknowledged client request was
      learned at least once. *)

type 'v replica_view = {
  replica : int;  (** Replica identifier (for reporting). *)
  decisions : (int * 'v) list;  (** Learned [(instance, value)] pairs. *)
  fingerprint : int;  (** Store fingerprint after execution. *)
  executed_prefix : int;  (** First unexecuted instance. *)
}

type violation =
  | Disagreement of { inst : int; a : int; b : int }
      (** Replicas [a] and [b] learned different values at [inst]. *)
  | Unproposed of { replica : int; inst : int }
      (** A learned value was never proposed. *)
  | Fingerprint_mismatch of { a : int; b : int; prefix : int }
      (** Same executed prefix, different state. *)
  | Lost_ack of { client : int; req_id : int }
      (** A client got a reply but no replica learned the request. *)

type report = {
  violations : violation list;
  checked_instances : int;  (** Distinct instances examined. *)
  checked_replicas : int;
}

val ok : report -> bool
(** [ok r] is whether no violation was found. *)

val check :
  equal:('v -> 'v -> bool) ->
  proposed:('v -> bool) ->
  acked:(int * int) list ->
  key_of:('v -> int * int) ->
  'v replica_view list ->
  report
(** [check ~equal ~proposed ~acked ~key_of views] evaluates all
    properties. [proposed v] says whether [v] was ever proposed by a
    client; [acked] lists [(client, req_id)] pairs that received
    replies; [key_of v] extracts the [(client, req_id)] identity of a
    value. *)

val pp_violation : Format.formatter -> violation -> unit
(** Prints one violation. *)

val pp : Format.formatter -> report -> unit
(** Prints a summary, listing violations if any. *)

type t = (int * int, Command.result) Hashtbl.t

let create () = Hashtbl.create 256

let find t ~client ~req_id = Hashtbl.find_opt t (client, req_id)

let record t ~client ~req_id r =
  assert (not (Hashtbl.mem t (client, req_id)));
  Hashtbl.add t (client, req_id) r

let executed t ~client ~req_id = Hashtbl.mem t (client, req_id)

let size t = Hashtbl.length t

(** The replicated application state: an integer key-value store. *)

type t
(** A mutable store. *)

val create : unit -> t
(** [create ()] is an empty store. *)

val apply : t -> Command.t -> Command.result
(** [apply t c] executes [c] against the store and returns its
    result. *)

val get : t -> int -> int option
(** [get t key] is a direct read (used for relaxed local reads). *)

val size : t -> int
(** [size t] is the number of live keys. *)

val fingerprint : t -> int
(** [fingerprint t] is an order-insensitive hash of the store contents;
    two replicas that applied the same command sequence have equal
    fingerprints. *)

val snapshot : t -> (int * int) list
(** [snapshot t] is the contents sorted by key. *)

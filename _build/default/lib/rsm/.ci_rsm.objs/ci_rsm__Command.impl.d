lib/rsm/command.ml: Format

lib/rsm/session_table.mli: Command

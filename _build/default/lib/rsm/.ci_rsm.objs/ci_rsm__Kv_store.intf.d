lib/rsm/kv_store.mli: Command

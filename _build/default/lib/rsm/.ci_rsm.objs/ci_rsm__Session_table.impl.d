lib/rsm/session_table.ml: Command Hashtbl

lib/rsm/consistency.mli: Format

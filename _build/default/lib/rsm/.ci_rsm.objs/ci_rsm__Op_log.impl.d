lib/rsm/op_log.ml: Hashtbl List

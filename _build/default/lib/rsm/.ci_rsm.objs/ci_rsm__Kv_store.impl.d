lib/rsm/kv_store.ml: Command Hashtbl List

lib/rsm/command.mli: Format

lib/rsm/op_log.mli:

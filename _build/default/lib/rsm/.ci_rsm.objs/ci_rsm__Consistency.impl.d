lib/rsm/consistency.ml: Format Hashtbl List

(** Client-session deduplication.

    A retried client request may be ordered twice (the client timed out
    on a slow leader and resubmitted to a new one). The session table
    gives the state machine at-most-once semantics: the first execution
    of a [(client, request)] pair records its result; later occurrences
    are skipped and answered from the cache. *)

type t
(** A mutable session table. *)

val create : unit -> t
(** [create ()] is an empty table. *)

val find : t -> client:int -> req_id:int -> Command.result option
(** [find t ~client ~req_id] is the cached result if the request was
    already executed. *)

val record : t -> client:int -> req_id:int -> Command.result -> unit
(** [record t ~client ~req_id r] marks the request executed with result
    [r]. Recording an already-present pair is an error ([assert]). *)

val executed : t -> client:int -> req_id:int -> bool
(** [executed t ~client ~req_id] is whether the pair was recorded. *)

val size : t -> int
(** [size t] is the number of recorded requests. *)

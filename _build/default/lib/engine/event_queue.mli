(** Priority queue of timestamped events.

    A binary min-heap ordered by [(time, sequence)]. The sequence number
    is assigned at insertion, so events scheduled for the same instant
    are delivered in insertion order (FIFO tie-break) — a property the
    machine model relies on for per-channel ordering. *)

type 'a t
(** A heap of events carrying payloads of type ['a]. *)

val create : unit -> 'a t
(** [create ()] is an empty queue. *)

val length : 'a t -> int
(** [length q] is the number of pending events. *)

val is_empty : 'a t -> bool
(** [is_empty q] is [length q = 0]. *)

val push : 'a t -> time:int -> 'a -> unit
(** [push q ~time payload] inserts an event. [time] may be in the past
    relative to previously popped events; ordering is the caller's
    concern. *)

val pop : 'a t -> (int * 'a) option
(** [pop q] removes and returns the earliest event as [(time, payload)],
    or [None] when empty. Among equal times, insertion order wins. *)

val peek_time : 'a t -> int option
(** [peek_time q] is the timestamp of the earliest event, without
    removing it. *)

val clear : 'a t -> unit
(** [clear q] discards all pending events. *)

type 'a cell = { time : int; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a cell array;
  mutable size : int;
  mutable next_seq : int;
  mutable dummy : 'a cell option; (* retained for array slot filler *)
}

let create () = { heap = [||]; size = 0; next_seq = 0; dummy = None }

let length q = q.size
let is_empty q = q.size = 0

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow q cell =
  let cap = Array.length q.heap in
  let new_cap = if cap = 0 then 16 else cap * 2 in
  let fresh = Array.make new_cap cell in
  Array.blit q.heap 0 fresh 0 q.size;
  q.heap <- fresh

let push q ~time payload =
  let cell = { time; seq = q.next_seq; payload } in
  q.next_seq <- q.next_seq + 1;
  if q.dummy = None then q.dummy <- Some cell;
  if q.size = Array.length q.heap then grow q cell;
  (* Sift up from the new leaf. *)
  let i = ref q.size in
  q.size <- q.size + 1;
  q.heap.(!i) <- cell;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if before cell q.heap.(parent) then begin
      q.heap.(!i) <- q.heap.(parent);
      q.heap.(parent) <- cell;
      i := parent
    end
    else continue := false
  done

let pop q =
  if q.size = 0 then None
  else begin
    let top = q.heap.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      let last = q.heap.(q.size) in
      q.heap.(0) <- last;
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < q.size && before q.heap.(l) q.heap.(!smallest) then smallest := l;
        if r < q.size && before q.heap.(r) q.heap.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = q.heap.(!i) in
          q.heap.(!i) <- q.heap.(!smallest);
          q.heap.(!smallest) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some (top.time, top.payload)
  end

let peek_time q = if q.size = 0 then None else Some q.heap.(0).time

let clear q =
  q.size <- 0;
  q.heap <- [||]

(** Deterministic pseudo-random number generator.

    A self-contained SplitMix64 generator. Experiments must be exactly
    reproducible from a seed, independently of anything else that uses
    the stdlib [Random] state, so the simulator carries its own
    generator. *)

type t
(** A mutable generator. *)

val create : seed:int -> t
(** [create ~seed] is a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] is a generator with the same state as [t]; the two then
    evolve independently. *)

val split : t -> t
(** [split t] derives a new, statistically independent generator from
    [t], advancing [t]. Use it to give each actor its own stream so that
    adding an actor does not perturb the draws of the others. *)

val bits64 : t -> int64
(** [bits64 t] is the next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be
    positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. Requires
    [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** [bool t] is a fair coin flip. *)

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p] (clamped to
    [\[0, 1\]]). *)

val exponential : t -> mean:float -> float
(** [exponential t ~mean] draws from an exponential distribution with
    the given mean. Used for randomized request inter-arrival times. *)

val shuffle : t -> 'a array -> unit
(** [shuffle t a] permutes [a] in place, uniformly (Fisher–Yates). *)

val pick : t -> 'a array -> 'a
(** [pick t a] is a uniformly chosen element of the non-empty array
    [a]. *)

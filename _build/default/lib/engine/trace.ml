type t = {
  capacity : int;
  mutable items : (Sim_time.t * string) array;
  mutable start : int; (* index of oldest *)
  mutable count : int;
  mutable evicted : int;
  mutable on : bool;
}

let create ?(capacity = 4096) () =
  assert (capacity > 0);
  { capacity; items = [||]; start = 0; count = 0; evicted = 0; on = true }

let enabled t = t.on
let set_enabled t b = t.on <- b

let record t ~time line =
  if t.on then begin
    if Array.length t.items = 0 then t.items <- Array.make t.capacity (0, "");
    if t.count < t.capacity then begin
      t.items.((t.start + t.count) mod t.capacity) <- (time, line);
      t.count <- t.count + 1
    end
    else begin
      t.items.(t.start) <- (time, line);
      t.start <- (t.start + 1) mod t.capacity;
      t.evicted <- t.evicted + 1
    end
  end

let recordf t ~time fmt =
  if t.on then Format.kasprintf (fun line -> record t ~time line) fmt
  else Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let entries t =
  List.init t.count (fun i -> t.items.((t.start + i) mod t.capacity))

let length t = t.count
let dropped t = t.evicted

let clear t =
  t.start <- 0;
  t.count <- 0;
  t.evicted <- 0

let pp fmt t =
  List.iter
    (fun (time, line) ->
      Format.fprintf fmt "[%a] %s@." Sim_time.pp time line)
    (entries t)

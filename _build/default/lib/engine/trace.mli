(** Bounded in-memory event trace.

    A lightweight ring buffer of timestamped strings used by tests and
    by the CLI's [--trace] mode to inspect what a simulation did without
    paying for unbounded accumulation. *)

type t
(** A trace buffer. *)

val create : ?capacity:int -> unit -> t
(** [create ~capacity ()] is an empty trace retaining at most
    [capacity] entries (default 4096); older entries are dropped. *)

val enabled : t -> bool
(** [enabled t] is whether [record] currently stores entries. *)

val set_enabled : t -> bool -> unit
(** [set_enabled t b] switches recording on or off. *)

val record : t -> time:Sim_time.t -> string -> unit
(** [record t ~time line] appends an entry if recording is enabled. *)

val recordf :
  t -> time:Sim_time.t -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** [recordf t ~time fmt ...] formats and records an entry. The format
    arguments are evaluated only when recording is enabled. *)

val entries : t -> (Sim_time.t * string) list
(** [entries t] is the retained entries, oldest first. *)

val length : t -> int
(** [length t] is the number of retained entries. *)

val dropped : t -> int
(** [dropped t] is how many entries were evicted due to capacity. *)

val clear : t -> unit
(** [clear t] discards all entries and resets the dropped counter. *)

val pp : Format.formatter -> t -> unit
(** [pp fmt t] prints one line per retained entry. *)

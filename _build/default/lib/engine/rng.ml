type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

(* SplitMix64 output function (Steele, Lea, Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = bits64 t in
  { state = mix seed }

let int t bound =
  assert (bound > 0);
  (* Keep 62 bits so the value fits OCaml's 63-bit native int. *)
  let raw = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  raw mod bound

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 random bits mapped to [0, 1). *)
  let raw = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  raw /. 9007199254740992. *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let chance t p =
  if p <= 0. then false
  else if p >= 1. then true
  else float t 1. < p

let exponential t ~mean =
  let u = float t 1. in
  (* Avoid log 0; 1 - u is in (0, 1]. *)
  -.mean *. log (1. -. u)

let shuffle t a =
  let n = Array.length a in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

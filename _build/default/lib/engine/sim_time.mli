(** Simulated time.

    All simulated durations and instants are integer nanoseconds. Using a
    plain [int] keeps arithmetic total and fast; on a 64-bit platform the
    range covers about 292 years of simulated time, far beyond any
    experiment in this repository. *)

type t = int
(** An instant or a duration, in nanoseconds. *)

val ns : int -> t
(** [ns n] is [n] nanoseconds. *)

val us : int -> t
(** [us n] is [n] microseconds. *)

val ms : int -> t
(** [ms n] is [n] milliseconds. *)

val s : int -> t
(** [s n] is [n] seconds. *)

val of_us_float : float -> t
(** [of_us_float x] is [x] microseconds rounded to the nearest
    nanosecond. *)

val to_us_float : t -> float
(** [to_us_float t] is [t] expressed in microseconds. *)

val to_ms_float : t -> float
(** [to_ms_float t] is [t] expressed in milliseconds. *)

val to_s_float : t -> float
(** [to_s_float t] is [t] expressed in seconds. *)

val pp : Format.formatter -> t -> unit
(** [pp fmt t] prints [t] with an adaptive unit (ns, us, ms or s). *)

type t = int

let ns n = n
let us n = n * 1_000
let ms n = n * 1_000_000
let s n = n * 1_000_000_000

let of_us_float x =
  let v = x *. 1_000. in
  int_of_float (if v >= 0. then v +. 0.5 else v -. 0.5)

let to_us_float t = float_of_int t /. 1_000.
let to_ms_float t = float_of_int t /. 1_000_000.
let to_s_float t = float_of_int t /. 1_000_000_000.

let pp fmt t =
  let a = abs t in
  if a < 1_000 then Format.fprintf fmt "%dns" t
  else if a < 1_000_000 then Format.fprintf fmt "%.2fus" (to_us_float t)
  else if a < 1_000_000_000 then Format.fprintf fmt "%.2fms" (to_ms_float t)
  else Format.fprintf fmt "%.3fs" (to_s_float t)

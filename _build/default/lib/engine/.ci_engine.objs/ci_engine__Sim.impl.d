lib/engine/sim.ml: Event_queue Sim_time

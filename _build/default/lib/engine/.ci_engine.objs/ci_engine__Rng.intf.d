lib/engine/rng.mli:

lib/engine/sim_time.ml: Format

lib/engine/trace.ml: Array Format List Sim_time

lib/core/multipaxos.mli: Ci_engine Ci_machine Replica_core Wire

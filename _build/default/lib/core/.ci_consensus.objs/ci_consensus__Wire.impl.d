lib/core/wire.ml: Ci_rsm Format List Pn String

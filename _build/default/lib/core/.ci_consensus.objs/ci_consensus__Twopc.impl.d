lib/core/twopc.ml: Array Ci_machine Ci_rsm Hashtbl List Replica_core Wire

lib/core/mencius.mli: Ci_machine Replica_core Wire

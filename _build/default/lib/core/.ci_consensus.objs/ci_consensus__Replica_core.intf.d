lib/core/replica_core.mli: Ci_rsm Wire

lib/core/single_decree.ml: Array Ci_engine Ci_machine Hashtbl List Pn Wire

lib/core/wire.mli: Ci_rsm Format Pn

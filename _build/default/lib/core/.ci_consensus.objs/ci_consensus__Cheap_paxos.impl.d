lib/core/cheap_paxos.ml: Array Ci_engine Ci_machine Ci_rsm Hashtbl List Paxos_utility Queue Replica_core Wire

lib/core/twopc.mli: Ci_machine Replica_core Wire

lib/core/single_decree.mli: Ci_engine Ci_machine Wire

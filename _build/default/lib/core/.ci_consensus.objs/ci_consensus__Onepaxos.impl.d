lib/core/onepaxos.ml: Array Ci_engine Ci_machine Ci_rsm Hashtbl List Paxos_utility Pn Queue Replica_core Wire

lib/core/cheap_paxos.mli: Ci_engine Ci_machine Replica_core Wire

lib/core/paxos_utility.mli: Ci_engine Ci_machine Wire

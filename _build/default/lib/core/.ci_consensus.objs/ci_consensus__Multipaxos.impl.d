lib/core/multipaxos.ml: Array Ci_engine Ci_machine Ci_rsm Hashtbl List Pn Queue Replica_core Wire

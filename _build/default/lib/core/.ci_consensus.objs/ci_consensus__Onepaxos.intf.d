lib/core/onepaxos.mli: Ci_engine Ci_machine Replica_core Wire

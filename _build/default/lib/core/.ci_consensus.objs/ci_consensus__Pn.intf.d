lib/core/pn.mli: Format

lib/core/replica_core.ml: Ci_rsm List Wire

lib/core/paxos_utility.ml: Array Ci_engine Ci_machine Ci_rsm Hashtbl List Pn Wire

lib/core/pn.ml: Format Stdlib

type t = { round : int; owner : int }

let bottom = { round = -1; owner = -1 }

let make ~round ~owner =
  if round < 0 then invalid_arg "Pn.make: negative round";
  { round; owner }

let succ t ~owner = { round = t.round + 1; owner }

let compare a b =
  match Stdlib.compare a.round b.round with
  | 0 -> Stdlib.compare a.owner b.owner
  | c -> c

let equal a b = compare a b = 0
let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0
let max a b = if Stdlib.( >= ) (compare a b) 0 then a else b

let pp fmt t =
  if equal t bottom then Format.pp_print_string fmt "-inf"
  else Format.fprintf fmt "%d.%d" t.round t.owner

(** Paxos proposal numbers.

    A proposal number pairs a round with the proposing node's id, making
    numbers totally ordered and globally unique: two proposers can never
    issue the same number, so an acceptor's promise is unambiguous. *)

type t = { round : int; owner : int }
(** [round] dominates the order; [owner] breaks ties. *)

val bottom : t
(** [bottom] is smaller than every number a proposer can issue (the
    paper's initial highest-promised value, −∞). *)

val make : round:int -> owner:int -> t
(** [make ~round ~owner] is a proposal number. [round] must be
    non-negative. *)

val succ : t -> owner:int -> t
(** [succ t ~owner] is the smallest number greater than [t] that
    [owner] can issue. *)

val compare : t -> t -> int
(** Total order: by round, then owner. *)

val equal : t -> t -> bool
(** [equal a b] is [compare a b = 0]. *)

val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool

val max : t -> t -> t
(** [max a b] is the larger of the two. *)

val pp : Format.formatter -> t -> unit
(** Prints as [round.owner], or [-inf] for [bottom]. *)

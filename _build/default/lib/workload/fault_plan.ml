module Machine = Ci_machine.Machine
module Sim_time = Ci_engine.Sim_time

type t =
  | Slow_core of { core : int; from_ : int; until_ : int; factor : float }
  | Crash_core of { core : int; from_ : int; until_ : int }

let paper_slowdown = 9.

let apply fault machine =
  match fault with
  | Slow_core { core; from_; until_; factor } ->
    Machine.slow_core machine ~core ~from_ ~until_ ~factor
  | Crash_core { core; from_; until_ } ->
    Machine.slow_core machine ~core ~from_ ~until_ ~factor:infinity

let pp fmt = function
  | Slow_core { core; from_; until_; factor } ->
    Format.fprintf fmt "slow core %d x%.1f during [%a, %a]" core factor
      Sim_time.pp from_ Sim_time.pp until_
  | Crash_core { core; from_; until_ } ->
    Format.fprintf fmt "crash core %d during [%a, %a]" core Sim_time.pp from_
      Sim_time.pp until_

(** Experiment runner: build a machine, deploy a protocol and clients,
    inject faults, run, measure, and check consistency.

    Two deployments mirror the paper's:
    - {b Dedicated} (§7.1–7.3): replicas on cores [0..R-1], each client
      on its own core after them, requests to the leader (core 0), with
      fail-over on timeout;
    - {b Joint} (§7.4–7.5): every node is both replica and client; all
      commands are forwarded to the leader. *)

type protocol = Onepaxos | Multipaxos | Twopc | Mencius | Cheappaxos

val protocol_name : protocol -> string
(** Short lowercase name ("1paxos", "multipaxos", "2pc", "mencius",
    "cheappaxos"). *)

type placement =
  | Dedicated of { n_replicas : int; n_clients : int }
  | Joint of { n_nodes : int }

type spec = {
  protocol : protocol;
  placement : placement;
  topology : Ci_machine.Topology.t;
  params : Ci_machine.Net_params.t;
  duration : int;  (** Measurement window length (ns). *)
  warmup : int;  (** Discarded start-up period (ns). *)
  drain : int;  (** Extra time simulated after the window (ns). *)
  seed : int;
  read_ratio : float;
  relaxed_reads : bool;  (** 1Paxos/Multi-Paxos relaxed local reads. *)
  local_reads : bool;  (** 2PC-Joint quiescent local reads. *)
  think : int;  (** Client think time (ns). *)
  timeout : int;  (** Client retry timeout (ns). *)
  max_requests : int option;  (** Per-client request budget. *)
  faults : Fault_plan.t list;
  bucket : int;  (** Throughput time-series bucket (ns). *)
  colocate_acceptor : bool;
      (** 1Paxos only: place the initial active acceptor on the leader's
          node instead of a separate one (violating Section 5.4's
          placement rule) — used by the placement ablation. *)
}

val default_spec : protocol:protocol -> placement:placement -> spec
(** Multicore parameters on the 48-core topology, 50 ms window after
    5 ms warm-up, write-only workload, no faults. *)

type result = {
  commits : int;  (** Replies inside the measurement window. *)
  total_replies : int;  (** Replies over the whole run. *)
  throughput : float;  (** Commits per second inside the window. *)
  latency : Ci_stats.Summary.t;  (** Latency summary inside the window. *)
  timeline : float array;  (** Commit rate per bucket over the run. *)
  messages : int;  (** Boundary-crossing messages delivered. *)
  retries : int;  (** Client timeouts over the run. *)
  leader_changes : int;
  acceptor_changes : int;
  consistency : Ci_rsm.Consistency.report;
}

val run : spec -> result
(** [run spec] executes the experiment and returns its measurements.
    Raises [Invalid_argument] on nonsensical placements (more replicas
    than cores, joint with fewer than two nodes, ...). *)

val pp_result : Format.formatter -> result -> unit
(** One-paragraph human-readable rendering. *)

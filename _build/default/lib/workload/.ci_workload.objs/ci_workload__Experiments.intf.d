lib/workload/experiments.mli: Ci_machine Format

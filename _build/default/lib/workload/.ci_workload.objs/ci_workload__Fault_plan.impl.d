lib/workload/fault_plan.ml: Ci_engine Ci_machine Format

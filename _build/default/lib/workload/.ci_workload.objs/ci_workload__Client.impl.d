lib/workload/client.ml: Array Ci_consensus Ci_engine Ci_machine Ci_rsm List Run_stats

lib/workload/report.ml: Array Buffer Experiments Filename Fun List Printf String Sys

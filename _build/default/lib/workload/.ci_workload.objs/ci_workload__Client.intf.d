lib/workload/client.mli: Ci_consensus Ci_machine Ci_rsm Run_stats

lib/workload/runner.mli: Ci_machine Ci_rsm Ci_stats Fault_plan Format

lib/workload/fault_plan.mli: Ci_machine Format

lib/workload/report.mli: Experiments

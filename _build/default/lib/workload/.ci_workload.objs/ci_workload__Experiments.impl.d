lib/workload/experiments.ml: Array Ci_engine Ci_machine Ci_rsm Ci_stats Fault_plan Float Format List Printf Runner

lib/workload/run_stats.mli: Ci_stats

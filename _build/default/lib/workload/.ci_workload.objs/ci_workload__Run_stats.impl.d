lib/workload/run_stats.ml: Array Ci_stats List

lib/workload/runner.ml: Array Ci_consensus Ci_engine Ci_machine Ci_rsm Ci_stats Client Fault_plan Format Hashtbl List Run_stats

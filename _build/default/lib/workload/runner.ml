module Machine = Ci_machine.Machine
module Topology = Ci_machine.Topology
module Net_params = Ci_machine.Net_params
module Sim_time = Ci_engine.Sim_time
module Command = Ci_rsm.Command
module Consistency = Ci_rsm.Consistency
module Onepaxos = Ci_consensus.Onepaxos
module Multipaxos = Ci_consensus.Multipaxos
module Twopc = Ci_consensus.Twopc
module Replica_core = Ci_consensus.Replica_core
module Wire = Ci_consensus.Wire

type protocol = Onepaxos | Multipaxos | Twopc | Mencius | Cheappaxos

let protocol_name = function
  | Onepaxos -> "1paxos"
  | Multipaxos -> "multipaxos"
  | Twopc -> "2pc"
  | Mencius -> "mencius"
  | Cheappaxos -> "cheappaxos"

type placement =
  | Dedicated of { n_replicas : int; n_clients : int }
  | Joint of { n_nodes : int }

type spec = {
  protocol : protocol;
  placement : placement;
  topology : Topology.t;
  params : Net_params.t;
  duration : int;
  warmup : int;
  drain : int;
  seed : int;
  read_ratio : float;
  relaxed_reads : bool;
  local_reads : bool;
  think : int;
  timeout : int;
  max_requests : int option;
  faults : Fault_plan.t list;
  bucket : int;
  colocate_acceptor : bool;
}

let default_spec ~protocol ~placement =
  {
    protocol;
    placement;
    topology = Topology.opteron_48;
    params = Net_params.multicore;
    duration = Sim_time.ms 50;
    warmup = Sim_time.ms 5;
    drain = Sim_time.ms 5;
    seed = 42;
    read_ratio = 0.;
    relaxed_reads = false;
    local_reads = false;
    think = 0;
    timeout = Sim_time.ms 2;
    max_requests = None;
    faults = [];
    bucket = Sim_time.ms 10;
    colocate_acceptor = false;
  }

type result = {
  commits : int;
  total_replies : int;
  throughput : float;
  latency : Ci_stats.Summary.t;
  timeline : float array;
  messages : int;
  retries : int;
  leader_changes : int;
  acceptor_changes : int;
  consistency : Consistency.report;
}

(* A protocol replica, uniformly. *)
type replica =
  | Op of Ci_consensus.Onepaxos.t
  | Mp of Ci_consensus.Multipaxos.t
  | Tp of Ci_consensus.Twopc.t
  | Mn of Ci_consensus.Mencius.t
  | Cp of Ci_consensus.Cheap_paxos.t

let replica_handle r ~src msg =
  match r with
  | Op x -> Ci_consensus.Onepaxos.handle x ~src msg
  | Mp x -> Ci_consensus.Multipaxos.handle x ~src msg
  | Tp x -> Ci_consensus.Twopc.handle x ~src msg
  | Mn x -> Ci_consensus.Mencius.handle x ~src msg
  | Cp x -> Ci_consensus.Cheap_paxos.handle x ~src msg

let replica_start = function
  | Op x -> Ci_consensus.Onepaxos.start x
  | Mp x -> Ci_consensus.Multipaxos.start x
  | Cp x -> Ci_consensus.Cheap_paxos.start x
  | Tp _ | Mn _ -> ()

let replica_core = function
  | Op x -> Ci_consensus.Onepaxos.replica_core x
  | Mp x -> Ci_consensus.Multipaxos.replica_core x
  | Tp x -> Ci_consensus.Twopc.replica_core x
  | Mn x -> Ci_consensus.Mencius.replica_core x
  | Cp x -> Ci_consensus.Cheap_paxos.replica_core x

let leader_changes_of = function
  | Op x -> Ci_consensus.Onepaxos.leader_changes x
  | Mp x -> Ci_consensus.Multipaxos.elections x
  | Cp x -> Ci_consensus.Cheap_paxos.reconfigs x
  | Tp _ | Mn _ -> 0

let acceptor_changes_of = function
  | Op x -> Ci_consensus.Onepaxos.acceptor_changes x
  | Mp _ | Tp _ | Mn _ | Cp _ -> 0

let run spec =
  let n_cores = Topology.n_cores spec.topology in
  let n_replicas, n_clients, joint =
    match spec.placement with
    | Dedicated { n_replicas; n_clients } -> (n_replicas, n_clients, false)
    | Joint { n_nodes } -> (n_nodes, n_nodes, true)
  in
  if n_replicas < 1 then invalid_arg "Runner.run: need at least one replica";
  if n_replicas > n_cores then invalid_arg "Runner.run: more replicas than cores";
  if (not joint) && n_clients < 1 then invalid_arg "Runner.run: need clients";
  let machine =
    Machine.create ~seed:spec.seed ~topology:spec.topology ~params:spec.params ()
  in
  (* Replicas occupy cores 0..R-1, like the paper's taskset layout. *)
  let replica_nodes =
    Array.init n_replicas (fun i -> Machine.add_node machine ~core:i)
  in
  let replica_ids = Array.map Machine.node_id replica_nodes in
  (* Failure-detection and retry timeouts must exceed the network round
     trip: the multicore defaults would make LAN deployments suspect
     healthy peers forever. One hop costs send + prop + recv + handler. *)
  let hop =
    spec.params.Net_params.send_cost + spec.params.Net_params.prop_inter
    + spec.params.Net_params.recv_cost + spec.params.Net_params.handler_cost
  in
  let rtt = 2 * hop in
  let make_replica node =
    match spec.protocol with
    | Onepaxos ->
      let d = Ci_consensus.Onepaxos.default_config ~replicas:replica_ids in
      let cfg =
        {
          d with
          Ci_consensus.Onepaxos.relaxed_reads = spec.relaxed_reads;
          initial_acceptor =
            (if spec.colocate_acceptor then replica_ids.(0)
             else replica_ids.(1 mod Array.length replica_ids));
          acceptor_timeout = max d.Ci_consensus.Onepaxos.acceptor_timeout (4 * rtt);
          prepare_timeout = max d.Ci_consensus.Onepaxos.prepare_timeout (4 * rtt);
          check_period = max d.Ci_consensus.Onepaxos.check_period rtt;
          pu_timeout = max d.Ci_consensus.Onepaxos.pu_timeout (3 * rtt);
        }
      in
      Op (Ci_consensus.Onepaxos.create ~node ~config:cfg)
    | Multipaxos ->
      let d = Ci_consensus.Multipaxos.default_config ~replicas:replica_ids in
      let cfg =
        {
          d with
          Ci_consensus.Multipaxos.relaxed_reads = spec.relaxed_reads;
          election_timeout = max d.Ci_consensus.Multipaxos.election_timeout (3 * rtt);
        }
      in
      Mp (Ci_consensus.Multipaxos.create ~node ~config:cfg)
    | Twopc ->
      let cfg =
        {
          (Ci_consensus.Twopc.default_config ~replicas:replica_ids) with
          local_reads = spec.local_reads;
        }
      in
      Tp (Ci_consensus.Twopc.create ~node ~config:cfg)
    | Mencius ->
      let cfg =
        {
          (Ci_consensus.Mencius.default_config ~replicas:replica_ids) with
          relaxed_reads = spec.relaxed_reads;
        }
      in
      Mn (Ci_consensus.Mencius.create ~node ~config:cfg)
    | Cheappaxos ->
      let d = Ci_consensus.Cheap_paxos.default_config ~replicas:replica_ids in
      let cfg =
        {
          d with
          Ci_consensus.Cheap_paxos.acceptor_timeout =
            max d.Ci_consensus.Cheap_paxos.acceptor_timeout (4 * rtt);
          check_period = max d.Ci_consensus.Cheap_paxos.check_period rtt;
          reconfig_timeout = max d.Ci_consensus.Cheap_paxos.reconfig_timeout (4 * rtt);
        }
      in
      Cp (Ci_consensus.Cheap_paxos.create ~node ~config:cfg)
  in
  let replicas = Array.map make_replica replica_nodes in
  (* Clients: their own cores after the replicas, or embedded (joint). *)
  let client_nodes =
    if joint then replica_nodes
    else begin
      let client_cores = n_cores - n_replicas in
      if client_cores < 1 then invalid_arg "Runner.run: no cores left for clients";
      Array.init n_clients (fun i ->
          Machine.add_node machine ~core:(n_replicas + (i mod client_cores)))
    end
  in
  let stats = Run_stats.create ~bucket:spec.bucket in
  let policy =
    {
      (Client.default_policy ~targets:replica_ids) with
      Client.failover = spec.protocol <> Twopc;
      timeout = spec.timeout;
      think = spec.think;
      read_ratio = spec.read_ratio;
      relaxed_reads = spec.relaxed_reads;
      read_own_node = joint && (spec.local_reads || spec.relaxed_reads);
      max_requests = spec.max_requests;
    }
  in
  let clients =
    Array.mapi
      (fun i node ->
        (* Mencius distributes load by design: spread the clients over
           the leaders instead of pointing everyone at replica 0. *)
        let policy =
          if spec.protocol = Mencius then
            { policy with Client.primary = i mod n_replicas }
          else policy
        in
        Client.create ~node ~policy ~stats)
      client_nodes
  in
  (* Handler wiring: replies go to the client half, everything else to
     the replica half (joint nodes host both). *)
  Array.iteri
    (fun i node ->
      let r = replicas.(i) in
      if joint then
        let c = clients.(i) in
        Machine.set_handler node (fun ~src msg ->
            match msg with
            | Wire.Reply _ -> Client.handle c ~src msg
            | _ -> replica_handle r ~src msg)
      else
        Machine.set_handler node (fun ~src msg -> replica_handle r ~src msg))
    replica_nodes;
  if not joint then
    Array.iteri
      (fun i node ->
        let c = clients.(i) in
        Machine.set_handler node (fun ~src msg -> Client.handle c ~src msg))
      client_nodes;
  (* Faults, protocol bootstrap, load. *)
  List.iter (fun f -> Fault_plan.apply f machine) spec.faults;
  Array.iter replica_start replicas;
  Array.iter Client.start clients;
  let horizon = spec.warmup + spec.duration + spec.drain in
  Machine.run_until machine ~time:horizon;
  (* Measurements. *)
  let w0 = spec.warmup and w1 = spec.warmup + spec.duration in
  let lat = Run_stats.latencies_in stats ~from_:w0 ~until_:w1 in
  let commits = Run_stats.completed_in stats ~from_:w0 ~until_:w1 in
  let throughput =
    float_of_int commits /. Sim_time.to_s_float spec.duration
  in
  (* Consistency. *)
  let proposed_tbl = Hashtbl.create 4096 in
  Array.iter
    (fun c ->
      let id = Client.node_id c in
      List.iter
        (fun (req_id, cmd) -> Hashtbl.replace proposed_tbl (id, req_id) cmd)
        (Client.issued c))
    clients;
  let proposed (v : Wire.value) =
    (* Mencius skip placeholders are protocol no-ops, not client input. *)
    Ci_consensus.Mencius.is_skip_value v
    ||
    match Hashtbl.find_opt proposed_tbl (v.Wire.client, v.Wire.req_id) with
    | Some cmd -> Command.equal cmd v.Wire.cmd
    | None -> false
  in
  let acked =
    Array.to_list clients |> List.concat_map Client.acked_writes
  in
  let views =
    Array.to_list (Array.map (fun r -> Replica_core.view (replica_core r)) replicas)
  in
  let consistency =
    Consistency.check ~equal:Wire.value_equal ~proposed ~acked
      ~key_of:Wire.value_key views
  in
  {
    commits;
    total_replies = Run_stats.completed stats;
    throughput;
    latency = Ci_stats.Summary.of_samples lat;
    timeline = Ci_stats.Timeseries.rates_per_sec (Run_stats.timeline stats) ~upto:(w1 + spec.drain);
    messages = Machine.total_messages machine;
    retries = Array.fold_left (fun acc c -> acc + Client.retries c) 0 clients;
    leader_changes =
      Array.fold_left (fun acc r -> max acc (leader_changes_of r)) 0 replicas;
    acceptor_changes =
      Array.fold_left (fun acc r -> max acc (acceptor_changes_of r)) 0 replicas;
    consistency;
  }

let pp_result fmt r =
  Format.fprintf fmt
    "commits=%d throughput=%.0f op/s latency: %a; msgs=%d retries=%d lc=%d ac=%d; %a"
    r.commits r.throughput Ci_stats.Summary.pp r.latency r.messages r.retries
    r.leader_changes r.acceptor_changes Consistency.pp r.consistency

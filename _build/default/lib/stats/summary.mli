(** Summary statistics over integer samples (latencies in ns). *)

type t = {
  count : int;
  mean : float;
  stddev : float;
  min : int;
  max : int;
  p25 : int;
  p50 : int;
  p90 : int;
  p99 : int;
}

val empty : t
(** [empty] is the summary of zero samples (all fields zero). *)

val of_samples : int array -> t
(** [of_samples a] computes the summary. [a] is not modified. Quantiles
    use the nearest-rank method. *)

val quantile : int array -> float -> int
(** [quantile sorted q] is the nearest-rank [q]-quantile ([0 <= q <= 1])
    of a {e sorted} non-empty array. *)

val pp : Format.formatter -> t -> unit
(** Prints a one-line rendering with microsecond units. *)

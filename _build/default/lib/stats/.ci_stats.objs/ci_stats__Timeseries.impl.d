lib/stats/timeseries.ml: Array Hashtbl

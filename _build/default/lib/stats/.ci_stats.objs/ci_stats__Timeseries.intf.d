lib/stats/timeseries.mli:

(** Logarithmic latency histogram.

    Power-of-two buckets over nanosecond samples; cheap to fill during a
    run and compact to print. *)

type t
(** A mutable histogram. *)

val create : unit -> t
(** [create ()] is an empty histogram. *)

val add : t -> int -> unit
(** [add t sample] records a non-negative sample. *)

val count : t -> int
(** [count t] is the number of recorded samples. *)

val buckets : t -> (int * int * int) list
(** [buckets t] is the non-empty buckets as [(lo, hi, count)] with
    [lo <= sample < hi], in increasing order. *)

val pp : Format.formatter -> t -> unit
(** Prints one line per non-empty bucket with a proportional bar. *)

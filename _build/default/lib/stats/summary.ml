type t = {
  count : int;
  mean : float;
  stddev : float;
  min : int;
  max : int;
  p25 : int;
  p50 : int;
  p90 : int;
  p99 : int;
}

let empty =
  { count = 0; mean = 0.; stddev = 0.; min = 0; max = 0; p25 = 0; p50 = 0; p90 = 0; p99 = 0 }

let quantile sorted q =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Summary.quantile: empty array";
  let q = Float.max 0. (Float.min 1. q) in
  let rank = int_of_float (ceil (q *. float_of_int n)) in
  sorted.(Stdlib.max 0 (Stdlib.min (n - 1) (rank - 1)))

let of_samples a =
  let n = Array.length a in
  if n = 0 then empty
  else begin
    let sorted = Array.copy a in
    Array.sort compare sorted;
    let total = Array.fold_left (fun acc x -> acc +. float_of_int x) 0. sorted in
    let mean = total /. float_of_int n in
    let var =
      Array.fold_left
        (fun acc x ->
          let d = float_of_int x -. mean in
          acc +. (d *. d))
        0. sorted
      /. float_of_int n
    in
    {
      count = n;
      mean;
      stddev = sqrt var;
      min = sorted.(0);
      max = sorted.(n - 1);
      p25 = quantile sorted 0.25;
      p50 = quantile sorted 0.50;
      p90 = quantile sorted 0.90;
      p99 = quantile sorted 0.99;
    }
  end

let pp fmt t =
  if t.count = 0 then Format.pp_print_string fmt "no samples"
  else
    Format.fprintf fmt
      "n=%d mean=%.1fus p50=%.1fus p90=%.1fus p99=%.1fus max=%.1fus" t.count
      (t.mean /. 1000.)
      (float_of_int t.p50 /. 1000.)
      (float_of_int t.p90 /. 1000.)
      (float_of_int t.p99 /. 1000.)
      (float_of_int t.max /. 1000.)

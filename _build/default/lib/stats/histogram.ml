type t = { slots : int array; mutable n : int }

let n_slots = 63

let create () = { slots = Array.make n_slots 0; n = 0 }

let slot_of sample =
  if sample <= 0 then 0
  else
    let rec go v acc = if v = 0 then acc else go (v lsr 1) (acc + 1) in
    min (n_slots - 1) (go sample 0)

let add t sample =
  if sample < 0 then invalid_arg "Histogram.add: negative sample";
  let s = slot_of sample in
  t.slots.(s) <- t.slots.(s) + 1;
  t.n <- t.n + 1

let count t = t.n

let bounds slot =
  if slot = 0 then (0, 1) else (1 lsl (slot - 1), 1 lsl slot)

let buckets t =
  let acc = ref [] in
  for i = n_slots - 1 downto 0 do
    if t.slots.(i) > 0 then begin
      let lo, hi = bounds i in
      acc := (lo, hi, t.slots.(i)) :: !acc
    end
  done;
  !acc

let pp fmt t =
  let bs = buckets t in
  let maxc = List.fold_left (fun m (_, _, c) -> max m c) 1 bs in
  List.iter
    (fun (lo, hi, c) ->
      let bar = String.make (max 1 (c * 40 / maxc)) '#' in
      Format.fprintf fmt "%10d..%-10d %8d %s@." lo hi c bar)
    bs

(** Fixed-width time-bucketed event counter.

    Used to plot throughput over time (Figure 11: commits per 10 ms
    bucket while a leader is slowed and replaced). *)

type t
(** A mutable bucketed counter. *)

val create : bucket:int -> t
(** [create ~bucket] counts events into consecutive windows of [bucket]
    nanoseconds starting at time 0. [bucket] must be positive. *)

val add : t -> time:int -> unit
(** [add t ~time] counts one event at [time] (>= 0). *)

val bucket_width : t -> int
(** [bucket_width t] is the configured width. *)

val counts : t -> upto:int -> int array
(** [counts t ~upto] is the per-bucket event counts covering time
    [0 .. upto) (zero-filled where nothing happened). *)

val rates_per_sec : t -> upto:int -> float array
(** [rates_per_sec t ~upto] is [counts] scaled to events per second. *)

val total : t -> int
(** [total t] is the number of events recorded. *)

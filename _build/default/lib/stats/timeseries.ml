type t = {
  bucket : int;
  tbl : (int, int ref) Hashtbl.t;
  mutable n : int;
}

let create ~bucket =
  if bucket <= 0 then invalid_arg "Timeseries.create: bucket must be positive";
  { bucket; tbl = Hashtbl.create 256; n = 0 }

let add t ~time =
  if time < 0 then invalid_arg "Timeseries.add: negative time";
  let idx = time / t.bucket in
  (match Hashtbl.find_opt t.tbl idx with
   | Some r -> incr r
   | None -> Hashtbl.add t.tbl idx (ref 1));
  t.n <- t.n + 1

let bucket_width t = t.bucket

let counts t ~upto =
  let n_buckets = (upto + t.bucket - 1) / t.bucket in
  Array.init n_buckets (fun i ->
      match Hashtbl.find_opt t.tbl i with Some r -> !r | None -> 0)

let rates_per_sec t ~upto =
  let scale = 1e9 /. float_of_int t.bucket in
  Array.map (fun c -> float_of_int c *. scale) (counts t ~upto)

let total t = t.n

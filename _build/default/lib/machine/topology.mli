(** Many-core machine topology.

    Models the non-uniform communication structure of Figure 1 in the
    paper: cores on the same socket share a last-level cache and
    communicate faster than cores on different sockets, which must cross
    the interconnect. *)

type t
(** A topology: a number of sockets, each with the same core count. *)

val create : sockets:int -> cores_per_socket:int -> t
(** [create ~sockets ~cores_per_socket] is a machine with
    [sockets * cores_per_socket] cores, numbered [0 ..] socket by
    socket. Both arguments must be positive. *)

val opteron_48 : t
(** The paper's main evaluation machine: eight six-core AMD Opteron
    processors, 48 cores. *)

val opteron_8 : t
(** The paper's fault-injection machine (Section 2.2 and Figure 11):
    four dual-core AMD Opterons, 8 cores. *)

val single_socket : int -> t
(** [single_socket n] is a uniform [n]-core machine (one socket). *)

val n_cores : t -> int
(** [n_cores t] is the total core count. *)

val n_sockets : t -> int
(** [n_sockets t] is the socket count. *)

val socket_of : t -> int -> int
(** [socket_of t core] is the socket hosting [core]. Raises
    [Invalid_argument] if [core] is out of range. *)

val same_socket : t -> int -> int -> bool
(** [same_socket t a b] is whether cores [a] and [b] share a last-level
    cache. *)

val pp : Format.formatter -> t -> unit
(** [pp fmt t] prints a short description such as ["8x6 (48 cores)"]. *)

module Sim = Ci_engine.Sim

type window = { from_ : int; until_ : int; factor : float }

type t = {
  sim : Sim.t;
  core_id : int;
  mutable windows : window list; (* sorted by from_ *)
  mutable free : int;
  mutable busy : int;
}

let create sim ~id = { sim; core_id = id; windows = []; free = 0; busy = 0 }

let id t = t.core_id

let add_slowdown t ~from_ ~until_ ~factor =
  if from_ >= until_ then invalid_arg "Cpu.add_slowdown: empty window";
  if factor < 1. then invalid_arg "Cpu.add_slowdown: factor must be >= 1";
  let w = { from_; until_; factor } in
  t.windows <-
    List.sort (fun a b -> compare a.from_ b.from_) (w :: t.windows)

let factor_at t time =
  List.fold_left
    (fun acc w ->
      if time >= w.from_ && time < w.until_ then Float.max acc w.factor
      else acc)
    1. t.windows

(* The next instant after [time] at which the slowdown factor may
   change: the nearest window boundary strictly beyond [time]. *)
let next_boundary t time =
  List.fold_left
    (fun acc w ->
      let candidates = [ w.from_; w.until_ ] in
      List.fold_left
        (fun acc b ->
          if b > time then match acc with None -> Some b | Some a -> Some (min a b)
          else acc)
        acc candidates)
    None t.windows

(* Completion instant of [cost] units of work starting at [start],
   integrating piecewise through slowdown windows. *)
let finish_time t ~start ~cost =
  let rec go time remaining =
    if remaining <= 0. then time
    else
      let f = factor_at t time in
      match next_boundary t time with
      | None ->
        if Float.is_finite f then time + int_of_float (ceil (remaining *. f))
        else max_int / 2 (* crashed with no recovery boundary: never *)
      | Some b ->
        let span = float_of_int (b - time) in
        let capacity = if Float.is_finite f then span /. f else 0. in
        if capacity >= remaining then time + int_of_float (ceil (remaining *. f))
        else go b (remaining -. capacity)
  in
  go start (float_of_int cost)

let exec t ~cost k =
  let cost = if cost < 0 then 0 else cost in
  let start = max (Sim.now t.sim) t.free in
  let finish = finish_time t ~start ~cost in
  t.busy <- t.busy + (finish - start);
  t.free <- finish;
  Sim.schedule_at t.sim ~time:finish k

let free_at t = t.free
let busy_total t = t.busy

let queue_delay t =
  let d = t.free - Sim.now t.sim in
  if d > 0 then d else 0

lib/machine/net_params.ml: Ci_engine Format

lib/machine/machine.mli: Ci_engine Cpu Net_params Topology

lib/machine/channel.ml: Ci_engine Cpu Queue

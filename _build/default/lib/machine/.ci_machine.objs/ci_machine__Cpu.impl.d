lib/machine/cpu.ml: Ci_engine Float List

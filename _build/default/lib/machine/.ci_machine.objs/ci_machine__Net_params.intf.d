lib/machine/net_params.mli: Ci_engine Format

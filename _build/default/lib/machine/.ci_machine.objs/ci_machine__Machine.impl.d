lib/machine/machine.ml: Array Channel Ci_engine Cpu Hashtbl List Net_params Printf Topology

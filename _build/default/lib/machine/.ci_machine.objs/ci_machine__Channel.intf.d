lib/machine/channel.mli: Ci_engine Cpu

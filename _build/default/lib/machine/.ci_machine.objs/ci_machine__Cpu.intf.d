lib/machine/cpu.mli: Ci_engine

type t = { sockets : int; cores_per_socket : int }

let create ~sockets ~cores_per_socket =
  if sockets <= 0 || cores_per_socket <= 0 then
    invalid_arg "Topology.create: sockets and cores_per_socket must be positive";
  { sockets; cores_per_socket }

let opteron_48 = create ~sockets:8 ~cores_per_socket:6
let opteron_8 = create ~sockets:4 ~cores_per_socket:2
let single_socket n = create ~sockets:1 ~cores_per_socket:n

let n_cores t = t.sockets * t.cores_per_socket
let n_sockets t = t.sockets

let socket_of t core =
  if core < 0 || core >= n_cores t then
    invalid_arg (Printf.sprintf "Topology.socket_of: core %d out of range" core);
  core / t.cores_per_socket

let same_socket t a b = socket_of t a = socket_of t b

let pp fmt t =
  Format.fprintf fmt "%dx%d (%d cores)" t.sockets t.cores_per_socket (n_cores t)

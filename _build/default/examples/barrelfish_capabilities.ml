(* The workload that motivates the paper: Barrelfish-style replicated
   kernel state. Each core's kernel holds a replica of a capability
   table; grants, revocations and transfers must be applied in the same
   order everywhere, while lookups dominate the traffic.

   We model capabilities as keys (capability id -> rights word) and run
   the mix through 1Paxos on a joint deployment (every kernel node is
   both replica and client), with relaxed local reads for lookups —
   the configuration the paper recommends for read-heavy shared state.

   Run with: dune exec examples/barrelfish_capabilities.exe *)

module Runner = Ci_workload.Runner
module Sim_time = Ci_engine.Sim_time

let () =
  Format.printf
    "Replicated capability table on 8 kernel nodes (1Paxos, joint),@.";
  Format.printf "90%% lookups served locally, 10%% grants/revocations ordered@.";
  Format.printf "through consensus.@.@.";
  List.iter
    (fun (label, relaxed) ->
      let spec =
        {
          (Runner.default_spec ~protocol:Runner.Onepaxos
             ~placement:(Runner.Joint { n_nodes = 8 }))
          with
          Runner.topology = Ci_machine.Topology.opteron_48;
          duration = Sim_time.ms 40;
          warmup = Sim_time.ms 5;
          read_ratio = 0.9;
          relaxed_reads = relaxed;
        }
      in
      let r = Runner.run spec in
      Format.printf "%-38s %9.0f op/s, mean latency %6.1f us, %s@." label
        r.Runner.throughput
        (r.Runner.latency.Ci_stats.Summary.mean /. 1000.)
        (if Ci_rsm.Consistency.ok r.Runner.consistency then "consistent"
         else "INCONSISTENT"))
    [
      ("lookups through consensus (strict)", false);
      ("lookups from local replica (relaxed)", true);
    ];
  Format.printf
    "@.Relaxed lookups trade freshness for a large throughput win —@.";
  Format.printf "the trade-off Section 7.5 of the paper discusses.@."

(* Section 3 in miniature: the network inside a many-core is not a small
   LAN. Transmission (core cycles per message) dominates on the
   many-core (trans/prop ~ 1) while propagation dominates on a LAN
   (trans/prop ~ 0.015) — so protocol design must minimize message
   count, not round trips. This example prints the measured channel
   characteristics and then shows what they do to Multi-Paxos.

   Run with: dune exec examples/lan_vs_multicore.exe *)

module E = Ci_workload.Experiments
module Runner = Ci_workload.Runner
module Sim_time = Ci_engine.Sim_time

let () =
  Format.printf "Raw channel characteristics (cf. paper Section 3):@.@.";
  Format.printf "%a@." E.pp_netchar (E.netchar ());
  Format.printf
    "Multi-Paxos on both networks, 3 replicas (cf. Figure 2):@.@.";
  Format.printf "%a@."
    E.pp_series
    (E.fig2 ~clients:[ 1; 3; 10; 35; 100 ] ());
  Format.printf
    "On the LAN, adding clients keeps paying off (propagation overlaps);@.";
  Format.printf
    "inside the many-core the cores saturate after a couple of clients —@.";
  Format.printf
    "which is why 1Paxos halves the message count instead of the round trips.@."

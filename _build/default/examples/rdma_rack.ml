(* The paper's concluding outlook (Section 9): rack-scale systems where
   machines share an address space over RDMA but have no inter-machine
   cache coherence — "1Paxos could represent a solution for ensuring
   coherence (where needed) at a software-level".

   We model the rack with the [rdma] network preset (cheap one-sided
   transmission, ~2 us cross-machine propagation) and compare all five
   protocols keeping a piece of shared rack state consistent.

   Run with: dune exec examples/rdma_rack.exe *)

module Runner = Ci_workload.Runner
module Sim_time = Ci_engine.Sim_time

let () =
  Format.printf
    "A rack of 8 machines x 6 cores, RDMA interconnect, 3 state replicas,@.";
  Format.printf "13 writer processes updating shared rack metadata.@.@.";
  Format.printf "%-12s %12s %14s %16s@." "protocol" "op/s" "latency(us)"
    "msgs/commit";
  List.iter
    (fun proto ->
      let spec =
        {
          (Runner.default_spec ~protocol:proto
             ~placement:(Runner.Dedicated { n_replicas = 3; n_clients = 13 }))
          with
          Runner.params = Ci_machine.Net_params.rdma;
          duration = Sim_time.ms 30;
        }
      in
      let r = Runner.run spec in
      assert (Ci_rsm.Consistency.ok r.Runner.consistency);
      Format.printf "%-12s %12.0f %14.1f %16.2f@."
        (Runner.protocol_name proto) r.Runner.throughput
        (r.Runner.latency.Ci_stats.Summary.mean /. 1000.)
        (float_of_int r.Runner.messages /. float_of_int (max 1 r.Runner.total_replies)))
    [ Runner.Twopc; Runner.Multipaxos; Runner.Mencius; Runner.Cheappaxos; Runner.Onepaxos ];
  Format.printf
    "@.The fewer messages an agreement needs, the better it survives the@.";
  Format.printf
    "transmission-bound regime — which is the many-core story all over@.";
  Format.printf "again, one level up the hierarchy.@."

(* The paper's headline fault story (Figure 11): the 1Paxos leader's
   core becomes slow mid-run; clients time out, fail over to another
   replica, which takes leadership through PaxosUtility — throughput
   dips briefly and recovers to the pre-fault level. The same fault
   under 2PC stalls the system for as long as the coordinator is slow.

   Run with: dune exec examples/slow_leader_failover.exe *)

module Runner = Ci_workload.Runner
module Sim_time = Ci_engine.Sim_time
module Fault_plan = Ci_workload.Fault_plan

let timeline protocol =
  let spec =
    {
      (Runner.default_spec ~protocol
         ~placement:(Runner.Dedicated { n_replicas = 3; n_clients = 5 }))
      with
      Runner.topology = Ci_machine.Topology.opteron_8;
      duration = Sim_time.ms 120;
      warmup = Sim_time.ms 10;
      drain = Sim_time.ms 10;
      faults =
        [
          Fault_plan.Slow_core
            {
              core = 0;
              from_ = Sim_time.ms 40;
              until_ = Sim_time.ms 150;
              factor = 60.;
            };
        ];
    }
  in
  Runner.run spec

let bar rate peak =
  let width = int_of_float (rate /. peak *. 40.) in
  String.make (max 0 width) '#'

let () =
  Format.printf
    "Five clients, three replicas on the paper's 8-core machine.@.";
  Format.printf "At t=40ms, core 0 (initial leader) is starved (x60).@.@.";
  List.iter
    (fun (name, protocol) ->
      let r = timeline protocol in
      let peak = Array.fold_left Float.max 1. r.Runner.timeline in
      Format.printf "--- %s (leader changes: %d, acceptor changes: %d) ---@."
        name r.Runner.leader_changes r.Runner.acceptor_changes;
      Array.iteri
        (fun i rate ->
          Format.printf "  %4d ms %9.0f op/s %s@." (i * 10) rate (bar rate peak))
        r.Runner.timeline;
      Format.printf "@.")
    [ ("1Paxos", Runner.Onepaxos); ("2PC", Runner.Twopc) ];
  Format.printf
    "1Paxos replaces the leader and returns to full speed; 2PC blocks@.";
  Format.printf "for as long as any node is unresponsive (Section 2.2).@."

examples/rdma_rack.mli:

examples/barrelfish_capabilities.mli:

examples/slow_leader_failover.ml: Array Ci_engine Ci_machine Ci_workload Float Format List String

examples/lan_vs_multicore.ml: Ci_engine Ci_workload Format

examples/slow_leader_failover.mli:

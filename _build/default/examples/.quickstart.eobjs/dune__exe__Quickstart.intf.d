examples/quickstart.mli:

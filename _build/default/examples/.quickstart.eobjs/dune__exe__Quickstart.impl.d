examples/quickstart.ml: Array Ci_consensus Ci_engine Ci_machine Ci_rsm Format

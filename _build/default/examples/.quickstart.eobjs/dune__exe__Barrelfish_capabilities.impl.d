examples/barrelfish_capabilities.ml: Ci_engine Ci_machine Ci_rsm Ci_stats Ci_workload Format List

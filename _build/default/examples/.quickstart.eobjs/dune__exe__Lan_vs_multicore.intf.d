examples/lan_vs_multicore.mli:

(* Quickstart: a three-replica 1Paxos cluster on a simulated many-core,
   driven directly through the library API (no experiment runner).

   Run with: dune exec examples/quickstart.exe *)

module Machine = Ci_machine.Machine
module Topology = Ci_machine.Topology
module Net_params = Ci_machine.Net_params
module Sim_time = Ci_engine.Sim_time
module Onepaxos = Ci_consensus.Onepaxos
module Wire = Ci_consensus.Wire
module Command = Ci_rsm.Command

let () =
  (* A 48-core machine with the paper's cost calibration. *)
  let machine : Wire.t Machine.t =
    Machine.create ~topology:Topology.opteron_48 ~params:Net_params.multicore ()
  in

  (* Three replicas pinned to cores 0..2 (the paper's taskset layout). *)
  let replica_nodes = Array.init 3 (fun core -> Machine.add_node machine ~core) in
  let replica_ids = Array.map Machine.node_id replica_nodes in
  let config = Onepaxos.default_config ~replicas:replica_ids in
  let replicas =
    Array.map
      (fun node -> Onepaxos.create ~env:(Machine.env node) ~config)
      replica_nodes
  in
  Array.iteri
    (fun i node ->
      let r = replicas.(i) in
      Machine.set_handler node (fun ~src msg -> Onepaxos.handle r ~src msg))
    replica_nodes;

  (* One client on core 3 that sends a few commands to the leader and
     prints the replies. *)
  let client = Machine.add_node machine ~core:3 in
  let commands =
    [
      Command.Put { key = 1; data = 100 };
      Command.Put { key = 2; data = 200 };
      Command.Cas { key = 1; expect = 100; data = 111 };
      Command.Cas { key = 1; expect = 100; data = 999 };
      (* fails: k1 is 111 *)
      Command.Get { key = 1 };
    ]
  in
  let remaining = ref commands in
  let next_req = ref 0 in
  let send_next () =
    match !remaining with
    | [] -> ()
    | cmd :: rest ->
      remaining := rest;
      let req_id = !next_req in
      incr next_req;
      Format.printf "[%a] client -> leader: %a@." Sim_time.pp (Machine.now machine)
        Command.pp cmd;
      Machine.send client ~dst:replica_ids.(0)
        (Wire.Request { req_id; cmd; relaxed_read = false })
  in
  Machine.set_handler client (fun ~src:_ msg ->
      match msg with
      | Wire.Reply { req_id; result } ->
        Format.printf "[%a] reply #%d: %a@." Sim_time.pp (Machine.now machine)
          req_id Command.pp_result result;
        send_next ()
      | _ -> ());

  Array.iter Onepaxos.start replicas;
  send_next ();
  Machine.run_until machine ~time:(Sim_time.ms 10);

  (* Every replica executed the same log: the stores agree. *)
  Format.printf "@.replica stores after the run:@.";
  Array.iter
    (fun r ->
      let core = Onepaxos.replica_core r in
      let view = Ci_consensus.Replica_core.view core in
      Format.printf "  replica %d: %d commands applied, fingerprint %08x@."
        view.Ci_rsm.Consistency.replica view.Ci_rsm.Consistency.executed_prefix
        (view.Ci_rsm.Consistency.fingerprint land 0xFFFFFFFF))
    replicas;
  Format.printf "total boundary-crossing messages: %d@."
    (Machine.total_messages machine)

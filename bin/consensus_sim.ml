(* consensus_sim: command-line front-end to the simulator.

   [run] executes one experiment with explicit parameters; [figures]
   regenerates any of the paper's tables/figures (same sections as
   bench/main.exe). *)

open Cmdliner
module Runner = Ci_workload.Runner
module E = Ci_workload.Experiments
module Sim_time = Ci_engine.Sim_time
module Topology = Ci_machine.Topology
module Net_params = Ci_machine.Net_params
module Fault_plan = Ci_workload.Fault_plan

(* ----- shared argument parsing ----------------------------------------- *)

let protocol_conv =
  let parse = function
    | "1paxos" -> Ok Runner.Onepaxos
    | "multipaxos" -> Ok Runner.Multipaxos
    | "2pc" -> Ok Runner.Twopc
    | "mencius" -> Ok Runner.Mencius
    | "cheappaxos" -> Ok Runner.Cheappaxos
    | s ->
      Error
        (`Msg
           (Printf.sprintf
              "unknown protocol %S (1paxos|multipaxos|2pc|mencius|cheappaxos)" s))
  in
  let print fmt p = Format.pp_print_string fmt (Runner.protocol_name p) in
  Arg.conv (parse, print)

let topology_conv =
  let parse s =
    match s with
    | "48" | "opteron48" -> Ok Topology.opteron_48
    | "8" | "opteron8" -> Ok Topology.opteron_8
    | s ->
      (match String.split_on_char 'x' s with
       | [ a; b ] ->
         (try Ok (Topology.create ~sockets:(int_of_string a) ~cores_per_socket:(int_of_string b))
          with _ -> Error (`Msg "topology: expected 48, 8 or SOCKETSxCORES"))
       | _ -> Error (`Msg "topology: expected 48, 8 or SOCKETSxCORES"))
  in
  Arg.conv (parse, Topology.pp)

let net_conv =
  let parse = function
    | "multicore" -> Ok Net_params.multicore
    | "lan" -> Ok Net_params.lan
    | "lan-wide" -> Ok Net_params.lan_wide
    | "rdma" -> Ok Net_params.rdma
    | s ->
      Error
        (`Msg (Printf.sprintf "unknown network %S (multicore|lan|lan-wide|rdma)" s))
  in
  Arg.conv (parse, Net_params.pp)

let fault_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ core; from_; until_; factor ] ->
      (try
         Ok
           (Fault_plan.Slow_core
              {
                core = int_of_string core;
                from_ = Sim_time.ms (int_of_string from_);
                until_ = Sim_time.ms (int_of_string until_);
                factor = float_of_string factor;
              })
       with _ -> Error (`Msg "fault: expected CORE:FROM_MS:UNTIL_MS:FACTOR"))
    | _ -> Error (`Msg "fault: expected CORE:FROM_MS:UNTIL_MS:FACTOR")
  in
  Arg.conv (parse, Fault_plan.pp)

(* Nemesis flag parsers: each flag value is one [Ci_faults.fault] in a
   colon-separated format (times in ms from the start of the run). *)
let nem_conv ~expect parse =
  let parse s =
    match parse (String.split_on_char ':' s) with
    | Some f -> Ok f
    | None -> Error (`Msg ("expected " ^ expect))
    | exception _ -> Error (`Msg ("expected " ^ expect))
  in
  Arg.conv (parse, Ci_faults.pp_fault)

let crash_conv =
  nem_conv ~expect:"NODE:AT_MS[:DOWN_MS]" (function
    | [ node; at ] ->
      Some
        (Ci_faults.Crash
           {
             node = int_of_string node;
             at = Sim_time.ms (int_of_string at);
             down_for = None;
           })
    | [ node; at; down ] ->
      Some
        (Ci_faults.Crash
           {
             node = int_of_string node;
             at = Sim_time.ms (int_of_string at);
             down_for = Some (Sim_time.ms (int_of_string down));
           })
    | _ -> None)

let pause_conv =
  nem_conv ~expect:"NODE:FROM_MS:UNTIL_MS" (function
    | [ node; from_; until_ ] ->
      Some
        (Ci_faults.Pause
           {
             node = int_of_string node;
             from_ = Sim_time.ms (int_of_string from_);
             until_ = Sim_time.ms (int_of_string until_);
           })
    | _ -> None)

let link_p_conv kind =
  nem_conv ~expect:"SRC:DST:FROM_MS:UNTIL_MS:P" (function
    | [ src; dst; from_; until_; p ] ->
      let src = int_of_string src and dst = int_of_string dst in
      let from_ = Sim_time.ms (int_of_string from_)
      and until_ = Sim_time.ms (int_of_string until_) in
      let p = float_of_string p in
      Some
        (match kind with
         | `Drop -> Ci_faults.Drop { src; dst; from_; until_; p }
         | `Dup -> Ci_faults.Duplicate { src; dst; from_; until_; p })
    | _ -> None)

let delay_conv =
  nem_conv ~expect:"SRC:DST:FROM_MS:UNTIL_MS:EXTRA_US" (function
    | [ src; dst; from_; until_; extra ] ->
      Some
        (Ci_faults.Delay
           {
             src = int_of_string src;
             dst = int_of_string dst;
             from_ = Sim_time.ms (int_of_string from_);
             until_ = Sim_time.ms (int_of_string until_);
             extra = Sim_time.us (int_of_string extra);
           })
    | _ -> None)

let partition_conv =
  nem_conv ~expect:"FROM_MS:UNTIL_MS:GROUPS (e.g. 10:20:0/1,2)" (function
    | [ from_; until_; groups ] ->
      let group g = List.map int_of_string (String.split_on_char ',' g) in
      Some
        (Ci_faults.Partition
           {
             groups = List.map group (String.split_on_char '/' groups);
             from_ = Sim_time.ms (int_of_string from_);
             until_ = Sim_time.ms (int_of_string until_);
           })
    | _ -> None)

let slow_nem_conv =
  nem_conv ~expect:"CORE:FROM_MS:UNTIL_MS:FACTOR" (function
    | [ core; from_; until_; factor ] ->
      Some
        (Ci_faults.Slow
           {
             core = int_of_string core;
             from_ = Sim_time.ms (int_of_string from_);
             until_ = Sim_time.ms (int_of_string until_);
             factor = float_of_string factor;
           })
    | _ -> None)

(* ----- run ---------------------------------------------------------------- *)

let run_cmd =
  let protocol =
    Arg.(value & opt protocol_conv Runner.Onepaxos & info [ "p"; "protocol" ] ~doc:"Protocol: 1paxos, multipaxos or 2pc.")
  in
  let replicas = Arg.(value & opt int 3 & info [ "r"; "replicas" ] ~doc:"Replica count (per group when $(b,--groups) > 1).") in
  let clients = Arg.(value & opt int 5 & info [ "c"; "clients" ] ~doc:"Client count (dedicated mode).") in
  let groups = Arg.(value & opt int 1 & info [ "g"; "groups" ] ~doc:"Independent consensus groups the keyspace is sharded over (1paxos/multipaxos, dedicated mode).") in
  let cross_shard = Arg.(value & opt float 0. & info [ "cross-shard-ratio" ] ~doc:"Fraction of commands that are cross-shard multi-puts (2PC over the owning groups).") in
  let joint = Arg.(value & flag & info [ "joint" ] ~doc:"Joint deployment: every node is replica and client; $(b,--replicas) sets the node count.") in
  let duration = Arg.(value & opt int 50 & info [ "d"; "duration-ms" ] ~doc:"Measurement window (ms).") in
  let warmup = Arg.(value & opt int 5 & info [ "warmup-ms" ] ~doc:"Warm-up before measuring (ms).") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  let read_ratio = Arg.(value & opt float 0. & info [ "read-ratio" ] ~doc:"Fraction of read commands.") in
  let think = Arg.(value & opt int 0 & info [ "think-us" ] ~doc:"Client think time (us).") in
  let timeout = Arg.(value & opt int 2000 & info [ "timeout-us" ] ~doc:"Client retry timeout (us).") in
  let topology = Arg.(value & opt topology_conv Topology.opteron_48 & info [ "topology" ] ~doc:"Machine: 48, 8 or SOCKETSxCORES.") in
  let net = Arg.(value & opt net_conv Net_params.multicore & info [ "net" ] ~doc:"Network preset: multicore, lan or lan-wide.") in
  let relaxed = Arg.(value & flag & info [ "relaxed-reads" ] ~doc:"Serve marked reads from local learner state (stale allowed).") in
  let local_reads = Arg.(value & flag & info [ "local-reads" ] ~doc:"2PC-Joint: serve unlocked reads locally.") in
  let colocate = Arg.(value & flag & info [ "colocate-acceptor" ] ~doc:"1Paxos: put the initial acceptor on the leader's node.") in
  let batch = Arg.(value & opt int 1 & info [ "batch" ] ~doc:"1Paxos/Multi-Paxos: commands per batched consensus instance (1 = the paper's protocol).") in
  let batch_delay = Arg.(value & opt int 5 & info [ "batch-delay-us" ] ~doc:"How long the leader holds a partial batch (us).") in
  let pipeline = Arg.(value & opt int 0 & info [ "pipeline" ] ~doc:"Max batches in flight at the leader (0 = unbounded, as in the paper).") in
  let coalesce = Arg.(value & opt int 1 & info [ "coalesce" ] ~doc:"Receive-coalescing budget: messages drained per reception charge (1 = uncoalesced).") in
  let faults = Arg.(value & opt_all fault_conv [] & info [ "slow-core" ] ~doc:"Inject a slowdown, CORE:FROM_MS:UNTIL_MS:FACTOR (repeatable).") in
  let timeline = Arg.(value & flag & info [ "timeline" ] ~doc:"Also print per-10ms commit rates.") in
  let trace_out = Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc:"Record typed trace events and write them to $(docv).") in
  let trace_format =
    let fmt_conv = Arg.enum [ ("chrome", `Chrome); ("jsonl", `Jsonl) ] in
    Arg.(value & opt fmt_conv `Chrome & info [ "trace-format" ] ~docv:"FMT" ~doc:"Trace format: $(b,chrome) (load in ui.perfetto.dev) or $(b,jsonl) (one JSON object per line).")
  in
  let metrics_out = Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc:"Write the run's metrics registry as a flat JSON object to $(docv).") in
  let run protocol replicas clients groups cross_shard joint duration warmup
      seed read_ratio think timeout topology net relaxed local_reads colocate
      batch batch_delay pipeline coalesce faults timeline trace_out
      trace_format metrics_out =
    let invalid fmt = Format.kasprintf (fun m -> Format.eprintf "%s@." m; Some 1) fmt in
    let bad =
      if replicas < 1 then invalid "--replicas must be >= 1"
      else if (not joint) && clients < 1 then invalid "--clients must be >= 1"
      else if groups < 1 then invalid "--groups must be >= 1"
      else if cross_shard < 0. || cross_shard > 1. then
        invalid "--cross-shard-ratio must be in [0, 1]"
      else if duration < 1 then invalid "--duration-ms must be >= 1"
      else if warmup < 0 then invalid "--warmup-ms must be >= 0"
      else if timeout < 1 then invalid "--timeout-us must be >= 1"
      else if think < 0 then invalid "--think-us must be >= 0"
      else if read_ratio < 0. || read_ratio > 1. then
        invalid "--read-ratio must be in [0, 1]"
      else if batch < 1 then invalid "--batch must be >= 1"
      else if batch_delay < 0 then invalid "--batch-delay-us must be >= 0"
      else if pipeline < 0 then invalid "--pipeline must be >= 0 (0 = unbounded)"
      else if coalesce < 1 then invalid "--coalesce must be >= 1"
      else None
    in
    match bad with
    | Some code -> code
    | None ->
    let placement =
      if joint then Runner.Joint { n_nodes = replicas }
      else Runner.Dedicated { n_replicas = replicas; n_clients = clients }
    in
    let ring =
      match trace_out with
      | Some _ -> Some (Ci_obs.Event.create_ring ())
      | None -> None
    in
    let spec =
      {
        (Runner.default_spec ~protocol ~placement) with
        Runner.groups = groups;
        cross_shard_ratio = cross_shard;
        duration = Sim_time.ms duration;
        warmup = Sim_time.ms warmup;
        seed;
        read_ratio;
        think = Sim_time.us think;
        timeout = Sim_time.us timeout;
        topology;
        params = { net with Net_params.coalesce };
        relaxed_reads = relaxed;
        local_reads;
        colocate_acceptor = colocate;
        batch;
        batch_delay = Sim_time.us batch_delay;
        pipeline;
        faults;
        trace = ring;
      }
    in
    let r = Runner.run spec in
    Format.printf "%a@." Runner.pp_result r;
    (match r.Runner.atomicity with
     | Some a -> Format.printf "atomicity: %a@." Ci_rsm.Atomicity.pp a
     | None -> ());
    if timeline then begin
      Format.printf "timeline (op/s per 10ms bucket):@.";
      Array.iteri (fun i x -> Format.printf "  %4dms %10.0f@." (i * 10) x) r.Runner.timeline
    end;
    let write_file path contents =
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc contents);
      Format.printf "wrote %s@." path
    in
    (match (trace_out, ring) with
     | Some path, Some ring ->
       let contents =
         match trace_format with
         | `Chrome -> Ci_obs.Event.to_chrome ring
         | `Jsonl -> Ci_obs.Event.to_jsonl ring
       in
       write_file path contents;
       if Ci_obs.Event.dropped ring > 0 then
         Format.printf "note: ring capacity exceeded, %d oldest events dropped@."
           (Ci_obs.Event.dropped ring)
     | _ -> ());
    (match metrics_out with
     | Some path -> write_file path (Ci_obs.Metrics.to_json r.Runner.metrics)
     | None -> ());
    if
      Ci_rsm.Consistency.ok r.Runner.consistency
      && (match r.Runner.atomicity with
         | Some a -> Ci_rsm.Atomicity.ok a
         | None -> true)
    then 0
    else 1
  in
  let term =
    Term.(
      const run $ protocol $ replicas $ clients $ groups $ cross_shard $ joint
      $ duration $ warmup $ seed $ read_ratio $ think $ timeout $ topology
      $ net $ relaxed $ local_reads $ colocate $ batch $ batch_delay
      $ pipeline $ coalesce $ faults $ timeline $ trace_out $ trace_format
      $ metrics_out)
  in
  Cmd.v (Cmd.info "run" ~doc:"Run one experiment and print its measurements.") term

(* ----- live ---------------------------------------------------------------- *)

let live_cmd =
  let module Live = Ci_runtime.Live in
  let live_protocol_conv =
    let parse s =
      match Live.protocol_of_string s with
      | Some p -> Ok p
      | None ->
        Error (`Msg (Printf.sprintf "unknown protocol %S (onepaxos|multipaxos)" s))
    in
    let print fmt p = Format.pp_print_string fmt (Live.protocol_name p) in
    Arg.conv (parse, print)
  in
  let protocol =
    Arg.(value & opt live_protocol_conv Live.Onepaxos & info [ "p"; "protocol" ] ~doc:"Protocol: onepaxos (1paxos) or multipaxos.")
  in
  let live_transport_conv =
    let parse s =
      match Live.transport_of_string s with
      | Some t -> Ok t
      | None -> Error (`Msg (Printf.sprintf "unknown transport %S (spsc|socket)" s))
    in
    let print fmt t = Format.pp_print_string fmt (Live.transport_name t) in
    Arg.conv (parse, print)
  in
  let transport =
    Arg.(value & opt live_transport_conv Live.Spsc & info [ "transport" ] ~doc:"Transport: $(b,spsc) (domains over shared-memory byte rings, the default) or $(b,socket) (one process per node over stream sockets).")
  in
  let replicas = Arg.(value & opt int 3 & info [ "r"; "replicas" ] ~doc:"Replica domains (per group when $(b,--groups) > 1).") in
  let clients = Arg.(value & opt int 2 & info [ "c"; "clients" ] ~doc:"Client domains.") in
  let groups = Arg.(value & opt int 1 & info [ "g"; "groups" ] ~doc:"Independent consensus groups the keyspace is sharded over; each gets its own replica domains plus a router domain.") in
  let cross_shard = Arg.(value & opt float 0. & info [ "cross-shard-ratio" ] ~doc:"Fraction of commands that are cross-shard multi-puts (2PC over the owning groups).") in
  let duration = Arg.(value & opt float 1.0 & info [ "d"; "duration-s" ] ~doc:"Measured wall-clock phase (seconds).") in
  let drain = Arg.(value & opt float 0.2 & info [ "drain-s" ] ~doc:"Quiesce phase before stopping the domains (seconds).") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed (per-node streams derive from it).") in
  let slots = Arg.(value & opt int 64 & info [ "ring-cap"; "queue-slots" ] ~doc:"Ring capacity per ordered node pair, in slots. Raising it relieves full-ring back-pressure (see the per-node full-ring sends the run prints).") in
  let slot_size = Arg.(value & opt int 128 & info [ "slot-size" ] ~doc:"Bytes per ring slot — a power of two, at least 32. Every non-batch message fits one 128-byte slot; batch messages spill over consecutive slots.") in
  let timeout = Arg.(value & opt int 150 & info [ "timeout-ms" ] ~doc:"Client retry timeout (ms). Keep generous on oversubscribed hosts.") in
  let read_ratio = Arg.(value & opt float 0. & info [ "read-ratio" ] ~doc:"Fraction of read commands.") in
  let think = Arg.(value & opt int 0 & info [ "think-us" ] ~doc:"Client think time between requests (us).") in
  let metrics_out = Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc:"Write the run's metrics registry as a flat JSON object to $(docv).") in
  let run protocol transport replicas clients groups cross_shard duration drain
      seed slots slot_size timeout read_ratio think metrics_out =
    let invalid fmt = Format.kasprintf (fun m -> Format.eprintf "%s@." m; Some 1) fmt in
    let bad =
      if replicas < 2 then invalid "--replicas must be >= 2"
      else if clients < 1 then invalid "--clients must be >= 1"
      else if groups < 1 then invalid "--groups must be >= 1"
      else if cross_shard < 0. || cross_shard > 1. then
        invalid "--cross-shard-ratio must be in [0, 1]"
      else if duration <= 0. then invalid "--duration-s must be > 0"
      else if drain < 0. then invalid "--drain-s must be >= 0"
      else if slots < 1 then invalid "--ring-cap must be >= 1"
      else if
        slot_size < Ci_runtime.Spsc_bytes.min_slot_size
        || slot_size land (slot_size - 1) <> 0
      then
        invalid "--slot-size must be a power of two >= %d"
          Ci_runtime.Spsc_bytes.min_slot_size
      else if transport = Live.Socket && groups > 1 then
        invalid "--transport socket does not shard yet (--groups must be 1)"
      else if timeout < 1 then invalid "--timeout-ms must be >= 1"
      else if read_ratio < 0. || read_ratio > 1. then
        invalid "--read-ratio must be in [0, 1]"
      else if think < 0 then invalid "--think-us must be >= 0"
      else None
    in
    match bad with
    | Some code -> code
    | None ->
      let spec =
        {
          (Live.default_spec ~protocol) with
          Live.n_replicas = replicas;
          n_clients = clients;
          groups;
          cross_shard_ratio = cross_shard;
          duration_s = duration;
          drain_s = drain;
          transport;
          seed;
          queue_slots = slots;
          slot_size;
          client_timeout = timeout * 1_000_000;
          think = think * 1_000;
          read_ratio;
        }
      in
      match Live.run spec with
      | exception Unix.Unix_error (e, fn, _)
        when transport = Live.Socket
             && (match e with
                | Unix.EPERM | Unix.EACCES | Unix.ENOSYS | Unix.EAFNOSUPPORT
                | Unix.EPROTONOSUPPORT | Unix.EMFILE | Unix.ENFILE | Unix.EAGAIN
                | Unix.ENOMEM ->
                  true
                | _ -> false) ->
        Format.eprintf
          "live: socket transport unavailable on this host (%s: %s); skipping@."
          fn (Unix.error_message e);
        3
      | r ->
      let n_routers = if groups = 1 then 0 else groups in
      Format.printf
        "live %s (%s): %d replica + %d router + %d client %s on %d cores@."
        (Live.protocol_name protocol)
        (Live.transport_name transport)
        (groups * replicas) n_routers clients
        (match transport with Live.Spsc -> "domains" | Live.Socket -> "processes")
        r.Live.cores;
      Format.printf "  measured %.3fs  ops %d  throughput %.0f op/s@."
        r.Live.wall_s r.Live.ops r.Live.throughput;
      Format.printf "  latency %a@." Ci_stats.Summary.pp r.Live.latency;
      Format.printf "  retries %d  leader-changes %d  acceptor-changes %d@."
        r.Live.retries r.Live.leader_changes r.Live.acceptor_changes;
      let q = r.Live.queues in
      Format.printf "  queues %d  msgs %d  full-ring sends %d  occupancy-peak %d/%d@."
        q.Live.q_count q.Live.q_msgs q.Live.q_blocked q.Live.q_occupancy_peak
        slots;
      Format.printf "  full-ring sends per node: %s@."
        (String.concat " "
           (Array.to_list
              (Array.mapi (fun i b -> Printf.sprintf "n%d:%d" i b)
                 r.Live.full_ring_sends)));
      Format.printf "  alloc %.0f words/op (replica+router domains)@."
        r.Live.alloc_words_per_op;
      Format.printf "%a@." Ci_rsm.Consistency.pp r.Live.consistency;
      (match r.Live.atomicity with
       | Some a -> Format.printf "atomicity: %a@." Ci_rsm.Atomicity.pp a
       | None -> ());
      (match metrics_out with
       | Some path ->
         let oc = open_out path in
         Fun.protect
           ~finally:(fun () -> close_out oc)
           (fun () -> output_string oc (Ci_obs.Metrics.to_json r.Live.metrics));
         Format.printf "wrote %s@." path
       | None -> ());
      if
        Ci_rsm.Consistency.ok r.Live.consistency
        && (match r.Live.atomicity with
           | Some a -> Ci_rsm.Atomicity.ok a
           | None -> true)
      then 0
      else 1
  in
  let term =
    Term.(
      const run $ protocol $ transport $ replicas $ clients $ groups
      $ cross_shard $ duration $ drain $ seed $ slots $ slot_size $ timeout
      $ read_ratio $ think $ metrics_out)
  in
  Cmd.v
    (Cmd.info "live"
       ~doc:"Run the protocol cores for real: OCaml 5 domains over shared-memory byte rings, or one process per node over sockets ($(b,--transport socket)).")
    term

(* ----- load ----------------------------------------------------------------- *)

let load_cmd =
  let module Live = Ci_runtime.Live in
  let module LS = Ci_load.Load_stats in
  let backend_conv = Arg.enum [ ("sim", `Sim); ("live", `Live) ] in
  let backend =
    Arg.(value & opt backend_conv `Sim & info [ "backend" ] ~doc:"Backend: $(b,sim) (discrete-event simulator, deterministic) or $(b,live) (OCaml 5 domains over shared-memory byte rings).")
  in
  let protocol =
    Arg.(value & opt protocol_conv Runner.Onepaxos & info [ "p"; "protocol" ] ~doc:"Protocol under load (any simulator protocol; $(b,--backend live) supports 1paxos and multipaxos).")
  in
  let replicas = Arg.(value & opt int 3 & info [ "r"; "replicas" ] ~doc:"Replica count.") in
  let clients = Arg.(value & opt int 2 & info [ "c"; "clients" ] ~doc:"Driver count: one open-loop driver per client node; total offered load is $(b,--rate) times this.") in
  let rate = Arg.(value & opt float 50_000. & info [ "rate" ] ~doc:"Offered rate per driver (requests/second).") in
  let poisson = Arg.(value & flag & info [ "poisson" ] ~doc:"Poisson arrivals (exponential gaps) instead of the fixed-rate metronome.") in
  let key_dist_conv =
    let parse s =
      match String.split_on_char ':' s with
      | [ "uniform" ] -> Ok Ci_load.Key_dist.Uniform
      | [ "zipf"; theta ] ->
        (try Ok (Ci_load.Key_dist.Zipf (float_of_string theta))
         with _ -> Error (`Msg "key-dist: expected zipf:THETA"))
      | [ "hotkey"; hot; spread ] ->
        (try
           Ok
             (Ci_load.Key_dist.Hotkey
                { hot = float_of_string hot; spread = float_of_string spread })
         with _ -> Error (`Msg "key-dist: expected hotkey:HOT:SPREAD"))
      | _ ->
        Error
          (`Msg
             (Printf.sprintf
                "unknown key distribution %S (uniform|zipf:THETA|hotkey:HOT:SPREAD)"
                s))
    in
    Arg.conv (parse, Ci_load.Key_dist.pp_spec)
  in
  let key_dist =
    Arg.(value & opt key_dist_conv Ci_load.Key_dist.Uniform & info [ "key-dist" ] ~doc:"Key popularity: $(b,uniform), $(b,zipf:THETA) (0.99 is the YCSB default skew) or $(b,hotkey:HOT:SPREAD).")
  in
  let key_space = Arg.(value & opt int 65_536 & info [ "key-space" ] ~doc:"Keys drawn from [0, key-space).") in
  let reads = Arg.(value & opt float 0.9 & info [ "reads" ] ~doc:"Fraction of Get commands.") in
  let cas = Arg.(value & opt float 0. & info [ "cas" ] ~doc:"Fraction of compare-and-swap commands.") in
  let ranges = Arg.(value & opt float 0. & info [ "ranges" ] ~doc:"Fraction of single-shard Range commands.") in
  let range_span = Arg.(value & opt int 16 & info [ "range-span" ] ~doc:"Keys per Range command.") in
  let population = Arg.(value & opt int 100_000 & info [ "population" ] ~doc:"Logical clients multiplexed over the sessions (read-your-writes is tracked per logical client).") in
  let sessions = Arg.(value & opt int 16 & info [ "sessions" ] ~doc:"Concurrent in-flight sessions per driver.") in
  let lease_us = Arg.(value & opt int 0 & info [ "lease-us" ] ~doc:"Leader-lease duration (us): serve linearizable reads from the leader's local store while a majority's grants are unexpired. 0 disables leases (all reads go through consensus).") in
  let lease_skew_us = Arg.(value & opt int 0 & info [ "lease-skew-us" ] ~doc:"Clock-rate-skew margin (us) subtracted from every grant's validity at the leader; must be < $(b,--lease-us).") in
  let duration = Arg.(value & opt int 50 & info [ "d"; "duration-ms" ] ~doc:"Measurement window (ms).") in
  let warmup = Arg.(value & opt int 5 & info [ "warmup-ms" ] ~doc:"Warm-up before measuring (ms; simulator backend only).") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed (arrival gaps and key draws derive from it).") in
  let print_sink ~offered ~lease ~lease_reads (sink : LS.t) =
    let us ns = float_of_int ns /. 1e3 in
    let lp = LS.latency_percentiles sink in
    let sp = LS.service_percentiles sink in
    Format.printf "  offered %.0f op/s  issued %d  completed %d  achieved %.0f op/s@."
      offered (LS.issued sink) (LS.completed sink) (LS.throughput sink);
    Format.printf
      "  latency from intended arrival: p50 %.1fus  p99 %.1fus  p99.9 %.1fus@."
      (us lp.LS.p50) (us lp.LS.p99) (us lp.LS.p999);
    Format.printf
      "  latency from first send:       p50 %.1fus  p99 %.1fus  p99.9 %.1fus@."
      (us sp.LS.p50) (us sp.LS.p99) (us sp.LS.p999);
    Format.printf "  retries %d  rejected %d  max-backlog %d  stale session reads %d@."
      (LS.retries sink) (LS.rejected sink) (LS.max_backlog sink)
      (LS.stale_reads sink);
    if lease > 0 then
      Format.printf "  lease reads %d (leader-local, linearizable)@." lease_reads
  in
  let run backend protocol replicas clients rate poisson key_dist key_space
      reads cas ranges range_span population sessions lease_us lease_skew_us
      duration warmup seed =
    let invalid fmt = Format.kasprintf (fun m -> Format.eprintf "%s@." m; Some 1) fmt in
    let live_protocol =
      match protocol with
      | Runner.Onepaxos -> Some Live.Onepaxos
      | Runner.Multipaxos -> Some Live.Multipaxos
      | _ -> None
    in
    let bad =
      if replicas < 2 then invalid "--replicas must be >= 2"
      else if clients < 1 then invalid "--clients must be >= 1"
      else if rate <= 0. then invalid "--rate must be > 0"
      else if key_space < 1 then invalid "--key-space must be >= 1"
      else if reads < 0. || cas < 0. || ranges < 0. || reads +. cas +. ranges > 1.
      then invalid "--reads/--cas/--ranges must be >= 0 and sum to <= 1"
      else if range_span < 1 then invalid "--range-span must be >= 1"
      else if population < 1 then invalid "--population must be >= 1"
      else if sessions < 1 then invalid "--sessions must be >= 1"
      else if lease_us < 0 then invalid "--lease-us must be >= 0"
      else if lease_us > 0 && lease_skew_us >= lease_us then
        invalid "--lease-skew-us must be < --lease-us"
      else if
        lease_us > 0
        && (match protocol with
           | Runner.Onepaxos | Runner.Multipaxos -> false
           | _ -> true)
      then invalid "--lease-us requires 1paxos or multipaxos"
      else if duration < 1 then invalid "--duration-ms must be >= 1"
      else if warmup < 0 then invalid "--warmup-ms must be >= 0"
      else if backend = `Live && live_protocol = None then
        invalid "--backend live supports 1paxos and multipaxos only"
      else None
    in
    match bad with
    | Some code -> code
    | None ->
      let arrival =
        if poisson then Ci_load.Arrival.Poisson rate else Ci_load.Arrival.Fixed rate
      in
      let open_loop =
        {
          Runner.arrival;
          key_dist;
          key_space;
          mix = { Ci_load.Open_client.reads; cas; ranges };
          range_span;
          population;
          sessions;
        }
      in
      let offered = rate *. float_of_int clients in
      (match backend with
       | `Sim ->
         let spec =
           {
             (Runner.default_spec ~protocol
                ~placement:
                  (Runner.Dedicated { n_replicas = replicas; n_clients = clients }))
             with
             Runner.duration = Sim_time.ms duration;
             warmup = Sim_time.ms warmup;
             seed;
             lease = Sim_time.us lease_us;
             lease_skew = Sim_time.us lease_skew_us;
             open_loop = Some open_loop;
           }
         in
         let r = Runner.run spec in
         Format.printf "load %s (sim): %d replicas, %d drivers@."
           (Runner.protocol_name protocol) replicas clients;
         let sink = Option.get r.Runner.load in
         print_sink ~offered ~lease:lease_us ~lease_reads:r.Runner.lease_reads sink;
         Format.printf "%a@." Ci_rsm.Consistency.pp r.Runner.consistency;
         if Ci_rsm.Consistency.ok r.Runner.consistency && LS.stale_reads sink = 0
         then 0
         else 1
       | `Live ->
         let protocol = Option.get live_protocol in
         let spec =
           {
             (Live.default_spec ~protocol) with
             Live.n_replicas = replicas;
             n_clients = clients;
             duration_s = float_of_int duration /. 1000.;
             seed;
             lease = lease_us * 1_000;
             lease_skew = lease_skew_us * 1_000;
             open_loop = Some open_loop;
           }
         in
         let r = Live.run spec in
         Format.printf "load %s (live): %d replica + %d driver domains on %d cores@."
           (Live.protocol_name protocol) replicas clients r.Live.cores;
         let sink = Option.get r.Live.load in
         print_sink ~offered ~lease:lease_us ~lease_reads:r.Live.lease_reads sink;
         Format.printf "%a@." Ci_rsm.Consistency.pp r.Live.consistency;
         if Ci_rsm.Consistency.ok r.Live.consistency && LS.stale_reads sink = 0
         then 0
         else 1)
  in
  let term =
    Term.(
      const run $ backend $ protocol $ replicas $ clients $ rate $ poisson
      $ key_dist $ key_space $ reads $ cas $ ranges $ range_span $ population
      $ sessions $ lease_us $ lease_skew_us $ duration $ warmup $ seed)
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:"Drive open-loop load at the service: arrivals follow the offered schedule regardless of how the system keeps up, and latency is charged from each request's intended arrival (coordinated-omission aware).")
    term

(* ----- nemesis -------------------------------------------------------------- *)

(* Shared tail of a nemesis run: print the failover analysis and turn
   (consistency, recovery) into an exit code. "Recovered" means the
   failover window saw at least one commit after the fault onset. *)
let nemesis_verdict ~consistent (failover : Ci_obs.Failover.t option) =
  (match failover with
   | Some f -> Format.printf "failover: %a@." Ci_obs.Failover.pp f
   | None ->
     Format.printf "failover: n/a (first fault onset outside the measured window)@.");
  let recovered =
    match failover with
    | None -> true
    | Some f ->
      f.Ci_obs.Failover.time_to_failover <> None
      && f.Ci_obs.Failover.completions_after > 0
  in
  if not consistent then begin
    Format.eprintf "FAIL: consistency violation@.";
    1
  end
  else if not recovered then begin
    Format.eprintf "FAIL: the run never committed again after the fault@.";
    1
  end
  else 0

let nemesis_cmd =
  let module Live = Ci_runtime.Live in
  let backend =
    Arg.(
      value
      & opt (enum [ ("sim", `Sim); ("live", `Live) ]) `Sim
      & info [ "backend" ]
          ~doc:"Backend: $(b,sim) (virtual time) or $(b,live) (real domains).")
  in
  let protocol =
    Arg.(
      value & opt protocol_conv Runner.Onepaxos
      & info [ "p"; "protocol" ]
          ~doc:
            "Protocol: 1paxos, multipaxos, 2pc, mencius or cheappaxos \
             ($(b,--backend live): 1paxos or multipaxos only).")
  in
  let replicas =
    Arg.(
      value & opt int 3
      & info [ "r"; "replicas" ]
          ~doc:"Replica count (per group when $(b,--groups) > 1).")
  in
  let clients =
    Arg.(
      value & opt (some int) None
      & info [ "c"; "clients" ] ~doc:"Client count (default: 5 sim, 2 live).")
  in
  let groups =
    Arg.(
      value & opt int 1
      & info [ "g"; "groups" ]
          ~doc:
            "Consensus groups the keyspace is sharded over; fault node indices \
             then range over $(b,groups * replicas) group-major replicas.")
  in
  let cross_shard =
    Arg.(
      value & opt float 0.
      & info [ "cross-shard-ratio" ]
          ~doc:"Fraction of commands that are cross-shard 2PC multi-puts.")
  in
  let duration =
    Arg.(
      value & opt (some int) None
      & info [ "d"; "duration-ms" ]
          ~doc:"Measurement window in ms (default: 50 sim, 1200 live).")
  in
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ]
          ~doc:"Random seed; also feeds the schedule's drop/duplicate coin flips.")
  in
  let scenario =
    Arg.(
      value
      & opt (some (enum [ ("crash-acceptor", `Acceptor); ("crash-leader", `Leader) ])) None
      & info [ "scenario" ]
          ~doc:
            "Preset: crash the initial active acceptor (node 1) or the leader \
             (node 0) at 40% of the window and restart it 30% later.")
  in
  let crashes =
    Arg.(
      value & opt_all crash_conv []
      & info [ "crash" ] ~docv:"NODE:AT_MS[:DOWN_MS]"
          ~doc:
            "Crash $(i,NODE) at $(i,AT_MS), losing all volatile state; restart \
             it $(i,DOWN_MS) later through the protocol's recover path \
             (omitted: stays down). Repeatable.")
  in
  let pauses =
    Arg.(
      value & opt_all pause_conv []
      & info [ "pause" ] ~docv:"NODE:FROM_MS:UNTIL_MS"
          ~doc:"SIGSTOP/SIGCONT $(i,NODE) for the window; no state is lost. Repeatable.")
  in
  let drops =
    Arg.(
      value & opt_all (link_p_conv `Drop) []
      & info [ "drop" ] ~docv:"SRC:DST:FROM_MS:UNTIL_MS:P"
          ~doc:"Lose each $(i,SRC)->$(i,DST) message with probability $(i,P). Repeatable.")
  in
  let dups =
    Arg.(
      value & opt_all (link_p_conv `Dup) []
      & info [ "duplicate" ] ~docv:"SRC:DST:FROM_MS:UNTIL_MS:P"
          ~doc:"Deliver each $(i,SRC)->$(i,DST) message twice with probability $(i,P). Repeatable.")
  in
  let delays =
    Arg.(
      value & opt_all delay_conv []
      & info [ "delay" ] ~docv:"SRC:DST:FROM_MS:UNTIL_MS:EXTRA_US"
          ~doc:"Add $(i,EXTRA_US) of propagation to each $(i,SRC)->$(i,DST) message. Repeatable.")
  in
  let partitions =
    Arg.(
      value & opt_all partition_conv []
      & info [ "partition" ] ~docv:"FROM_MS:UNTIL_MS:GROUPS"
          ~doc:
            "Cut every link between nodes in different groups for the window; \
             groups are /-separated lists, e.g. $(b,10:20:0/1,2). Repeatable.")
  in
  let slows =
    Arg.(
      value & opt_all slow_nem_conv []
      & info [ "slow-core" ] ~docv:"CORE:FROM_MS:UNTIL_MS:FACTOR"
          ~doc:"Slow a core by $(i,FACTOR) (simulator only). Repeatable.")
  in
  let run backend protocol replicas clients groups cross_shard duration seed
      scenario crashes pauses drops dups delays partitions slows =
    let fail fmt = Format.kasprintf (fun m -> Format.eprintf "%s@." m; 1) fmt in
    let dur_ms =
      match duration with
      | Some d -> d
      | None -> (match backend with `Sim -> 50 | `Live -> 1200)
    in
    let clients =
      match clients with
      | Some c -> c
      | None -> (match backend with `Sim -> 5 | `Live -> 2)
    in
    if replicas < 2 then fail "--replicas must be >= 2"
    else if clients < 1 then fail "--clients must be >= 1"
    else if groups < 1 then fail "--groups must be >= 1"
    else if cross_shard < 0. || cross_shard > 1. then
      fail "--cross-shard-ratio must be in [0, 1]"
    else if dur_ms < 1 then fail "--duration-ms must be >= 1"
    else begin
      let scen =
        match scenario with
        | None -> []
        | Some which ->
          let node = match which with `Acceptor -> 1 | `Leader -> 0 in
          [
            Ci_faults.Crash
              {
                node;
                at = Sim_time.ms (dur_ms * 2 / 5);
                down_for = Some (Sim_time.ms (max 1 (dur_ms * 3 / 10)));
              };
          ]
      in
      let faults =
        scen @ crashes @ pauses @ drops @ dups @ delays @ partitions @ slows
      in
      let sched = { Ci_faults.seed; faults } in
      if faults = [] then
        fail
          "empty fault schedule: pass --scenario or at least one of \
           --crash/--pause/--drop/--duplicate/--delay/--partition/--slow-core"
      else
        match Ci_faults.validate ~n_nodes:(groups * replicas) sched with
        | Error m -> fail "invalid fault schedule: %s" m
        | Ok () ->
          (match backend with
           | `Sim ->
             let spec =
               {
                 (Runner.default_spec ~protocol
                    ~placement:
                      (Runner.Dedicated { n_replicas = replicas; n_clients = clients }))
                 with
                 Runner.duration = Sim_time.ms dur_ms;
                 seed;
                 groups;
                 cross_shard_ratio = cross_shard;
                 nemesis = sched;
               }
             in
             (try
                let r = Runner.run spec in
                Format.printf "%a@." Runner.pp_result r;
                (match r.Runner.atomicity with
                 | Some a -> Format.printf "atomicity: %a@." Ci_rsm.Atomicity.pp a
                 | None -> ());
                nemesis_verdict
                  ~consistent:
                    (Ci_rsm.Consistency.ok r.Runner.consistency
                    && (match r.Runner.atomicity with
                       | Some a -> Ci_rsm.Atomicity.ok a
                       | None -> true))
                  r.Runner.failover
              with Invalid_argument m -> fail "%s" m)
           | `Live ->
             (match protocol with
              | Runner.Onepaxos | Runner.Multipaxos ->
                let protocol =
                  match protocol with
                  | Runner.Onepaxos -> Live.Onepaxos
                  | _ -> Live.Multipaxos
                in
                let spec =
                  {
                    (Live.default_spec ~protocol) with
                    Live.n_replicas = replicas;
                    n_clients = clients;
                    groups;
                    cross_shard_ratio = cross_shard;
                    duration_s = float_of_int dur_ms /. 1000.;
                    seed;
                    nemesis = sched;
                  }
                in
                (try
                   let r = Live.run spec in
                   Format.printf
                     "live %s: %d ops, %.0f op/s, retries %d, leader-changes \
                      %d, acceptor-changes %d@."
                     (Live.protocol_name protocol) r.Live.ops r.Live.throughput
                     r.Live.retries r.Live.leader_changes
                     r.Live.acceptor_changes;
                   Format.printf "%a@." Ci_rsm.Consistency.pp r.Live.consistency;
                   (match r.Live.atomicity with
                    | Some a ->
                      Format.printf "atomicity: %a@." Ci_rsm.Atomicity.pp a
                    | None -> ());
                   nemesis_verdict
                     ~consistent:
                       (Ci_rsm.Consistency.ok r.Live.consistency
                       && (match r.Live.atomicity with
                          | Some a -> Ci_rsm.Atomicity.ok a
                          | None -> true))
                     r.Live.failover
                 with Invalid_argument m -> fail "%s" m)
              | p ->
                fail "--backend live supports 1paxos and multipaxos (got %s)"
                  (Runner.protocol_name p)))
    end
  in
  let term =
    Term.(
      const run $ backend $ protocol $ replicas $ clients $ groups
      $ cross_shard $ duration $ seed $ scenario $ crashes $ pauses $ drops
      $ dups $ delays $ partitions $ slows)
  in
  Cmd.v
    (Cmd.info "nemesis"
       ~doc:
         "Run one experiment under a declarative fault schedule (crash, pause, \
          drop, duplicate, delay, partition, slow core) on either backend and \
          report the failover analysis; exits 1 on a consistency violation or \
          if commits never resume after the fault.")
    term

(* ----- figures -------------------------------------------------------------- *)

(* Live-backend twin of [E.failover]: the same crash-restart schedule on
   real domains, with wall-clock 100 ms buckets. *)
let live_failover_timelines () =
  let module Live = Ci_runtime.Live in
  let base =
    {
      (Live.default_spec ~protocol:Live.Onepaxos) with
      Live.duration_s = 1.2;
      drain_s = 0.3;
    }
  in
  let crash node =
    {
      base with
      Live.nemesis =
        {
          Ci_faults.seed = 42;
          faults =
            [
              Ci_faults.Crash
                { node; at = Sim_time.ms 400; down_for = Some (Sim_time.ms 300) };
            ];
        };
    }
  in
  let case label spec =
    let r = Live.run spec in
    if not (Ci_rsm.Consistency.ok r.Live.consistency) then
      failwith (label ^ ": consistency violation");
    {
      E.label;
      bucket_ms = 100.;
      rates = r.Live.timeline;
      leader_changes = r.Live.leader_changes;
      acceptor_changes = r.Live.acceptor_changes;
    }
  in
  [
    case "1Paxos live - crashed acceptor" (crash 1);
    case "1Paxos live - crashed leader" (crash 0);
    case "1Paxos live - no failure" base;
  ]

let figures_cmd =
  let sections :
      (string * (jobs:int ->
        [ `Series of E.series list
        | `Bars of E.bar list
        | `Timelines of E.timeline list
        | `Netchar of E.netchar_row list
        | `Latency of E.latency_row list
        | `Load of E.load_row list ])) list =
    [
      ("netchar", fun ~jobs -> `Netchar (E.netchar ~jobs ()));
      ("fig2", fun ~jobs -> `Series (E.fig2 ~jobs ()));
      ("latency", fun ~jobs -> `Latency (E.latency_table ~jobs ()));
      ("fig8", fun ~jobs -> `Series (E.fig8 ~jobs ()));
      ("fig9", fun ~jobs -> `Series (E.fig9 ~jobs ()));
      ("fig10", fun ~jobs -> `Bars (E.fig10 ~jobs ()));
      ("fig11", fun ~jobs -> `Timelines (E.fig11 ~jobs ()));
      ("sec2_2", fun ~jobs -> `Timelines (E.sec2_2 ~jobs ()));
      ("lan", fun ~jobs -> `Series (E.lan_1paxos ~jobs ()));
      ("ablation-placement", fun ~jobs -> `Series (E.ablation_placement ~jobs ()));
      ("ablation-slots", fun ~jobs -> `Series (E.ablation_slots ~jobs ()));
      ("ablation-ratio", fun ~jobs -> `Series (E.ablation_ratio ~jobs ()));
      ("ablation-batch", fun ~jobs -> `Series (E.ablation_batch ~jobs ()));
      ("ablation-pipeline", fun ~jobs -> `Series (E.ablation_pipeline ~jobs ()));
      ("ablation-coalesce", fun ~jobs -> `Series (E.ablation_coalesce ~jobs ()));
      ("protocols", fun ~jobs -> `Series (E.protocol_comparison ~jobs ()));
      ( "protocols-rdma",
        fun ~jobs -> `Series (E.protocol_comparison ~jobs ~params:Net_params.rdma ()) );
      ("failover", fun ~jobs -> `Timelines (E.failover ~jobs ()));
      ("failover-live", fun ~jobs:_ -> `Timelines (live_failover_timelines ()));
      ("shards", fun ~jobs -> `Series (E.shards ~jobs ()));
      ("load", fun ~jobs -> `Load (E.load_curve ~jobs ()));
    ]
  in
  (* The fault-injecting sections are opt-in: the default set must stay
     byte-identical run-to-run (and to pre-nemesis baselines), a promise
     wall-clock live runs cannot make. [shards] is opt-in too so the
     default figure set stays byte-identical to pre-sharding baselines,
     and [load] (ISSUE 9's open-loop service curves) likewise. *)
  let opt_in = [ "failover"; "failover-live"; "shards"; "load" ] in
  let default_names =
    List.filter (fun n -> not (List.mem n opt_in)) (List.map fst sections)
  in
  let which =
    Arg.(
      value & pos_all string default_names
      & info [] ~docv:"SECTION"
          ~doc:
            (Printf.sprintf
               "Sections to regenerate (default: all except the opt-in fault \
                sections %s): %s."
               (String.concat ", " opt_in)
               (String.concat ", " (List.map fst sections))))
  in
  let out_dir =
    Arg.(
      value & opt (some string) None
      & info [ "out" ] ~docv:"DIR"
          ~doc:"Also write each section as CSV (plus a gnuplot script) into $(docv).")
  in
  let jobs =
    Arg.(
      value
      & opt int (Ci_workload.Pool.default_jobs ())
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains for a section's independent simulation runs \
             (default: $(b,CI_JOBS) if set, else the core count). Output is \
             byte-identical at any value.")
  in
  let emit name out result =
    (match result with
     | `Series series -> Format.printf "%a" E.pp_series series
     | `Bars bars -> Format.printf "%a" E.pp_bars bars
     | `Timelines ts -> Format.printf "%a" E.pp_timelines ts
     | `Netchar rows -> Format.printf "%a" E.pp_netchar rows
     | `Latency rows -> Format.printf "%a" E.pp_latency_table rows
     | `Load rows -> Format.printf "%a" E.pp_load_table rows);
    match out with
    | None -> ()
    | Some dir ->
      let module R = Ci_workload.Report in
      let csv_name = name ^ ".csv" in
      let paths =
        match result with
        | `Series series ->
          let p = R.write_file ~dir ~name:csv_name (R.series_csv series) in
          let gp =
            R.write_file ~dir ~name:(name ^ ".gp")
              (R.gnuplot_series ~title:name ~xlabel:"clients / replicas"
                 ~csv:csv_name series)
          in
          [ p; gp ]
        | `Timelines ts ->
          let p = R.write_file ~dir ~name:csv_name (R.timelines_csv ts) in
          let gp =
            R.write_file ~dir ~name:(name ^ ".gp")
              (R.gnuplot_timelines ~title:name ~csv:csv_name ts)
          in
          [ p; gp ]
        | `Bars bars -> [ R.write_file ~dir ~name:csv_name (R.bars_csv bars) ]
        | `Netchar rows -> [ R.write_file ~dir ~name:csv_name (R.netchar_csv rows) ]
        | `Latency rows -> [ R.write_file ~dir ~name:csv_name (R.latency_csv rows) ]
        | `Load rows -> [ R.write_file ~dir ~name:csv_name (R.load_csv rows) ]
      in
      List.iter (Format.printf "wrote %s@.") paths
  in
  let run which out jobs =
    if jobs < 1 then begin
      Format.eprintf "--jobs must be >= 1@.";
      exit 1
    end;
    List.fold_left
      (fun code name ->
        match List.assoc_opt name sections with
        | Some f ->
          Format.printf "== %s ==@." name;
          emit name out (f ~jobs);
          code
        | None ->
          Format.eprintf "unknown section %S@." name;
          1)
      0 which
  in
  let term = Term.(const run $ which $ out_dir $ jobs) in
  Cmd.v (Cmd.info "figures" ~doc:"Regenerate the paper's tables and figures.") term

(* ----- explore: bounded model checking --------------------------------- *)

let explore_cmd =
  let module Trace = Ci_explore.Trace in
  let module Search = Ci_explore.Search in
  let protocol_conv =
    let parse s =
      match Trace.protocol_of_name s with
      | Some p -> Ok p
      | None ->
        Error
          (`Msg
             (Printf.sprintf
                "unknown protocol %S (1paxos|multipaxos|2pc|mencius|cheappaxos)"
                s))
    in
    Arg.conv (parse, fun fmt p -> Format.pp_print_string fmt (Trace.protocol_name p))
  in
  let protocol =
    Arg.(
      value & opt protocol_conv Trace.Onepaxos
      & info [ "p"; "protocol" ]
          ~doc:"Protocol to check: 1paxos, multipaxos, 2pc, mencius or cheappaxos.")
  in
  let replicas =
    Arg.(value & opt int 3 & info [ "replicas" ] ~doc:"Replica count (2-7).")
  in
  let clients =
    Arg.(value & opt int 1 & info [ "clients" ] ~doc:"Client count (1-4).")
  in
  let commands =
    Arg.(value & opt int 2 & info [ "commands" ] ~doc:"Commands per client (1-8).")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Per-node RNG seed.") in
  let drops =
    Arg.(value & opt int 0 & info [ "drops" ] ~doc:"Message-drop fault budget.")
  in
  let crashes =
    Arg.(
      value & opt int 0
      & info [ "crashes" ]
          ~doc:"Crash fault budget (majority-preserving crashes only).")
  in
  let fires =
    Arg.(
      value & opt int 4
      & info [ "fires" ] ~doc:"Timer-fire budget per node per execution.")
  in
  let max_depth =
    Arg.(
      value & opt int Search.default_bounds.Search.max_depth
      & info [ "max-depth" ] ~doc:"Deepest choice prefix explored.")
  in
  let max_states =
    Arg.(
      value & opt int Search.default_bounds.Search.max_states
      & info [ "max-states" ] ~doc:"State budget before giving up.")
  in
  let stale_adoption =
    Arg.(
      value & flag
      & info [ "stale-adoption" ]
          ~doc:
            "Re-seed the historical 1Paxos stale-adoption split-brain (test \
             fixture; the checker should find it).")
  in
  let trace_out =
    Arg.(
      value & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:"Write the shrunk counterexample trace to $(docv).")
  in
  let events_out =
    Arg.(
      value & opt (some string) None
      & info [ "events-out" ] ~docv:"FILE"
          ~doc:
            "Write the typed event log (JSON lines) of the replayed \
             counterexample, or of the $(b,--replay) execution, to $(docv).")
  in
  let replay_file =
    Arg.(
      value & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:
            "Replay a trace written by $(b,--trace-out) instead of exploring; \
             all bound/config flags are ignored (the trace header wins).")
  in
  let write_file path contents =
    let oc = open_out path in
    output_string oc contents;
    close_out oc;
    Format.printf "wrote %s@." path
  in
  let events_sidecar events_out cfg choices =
    match events_out with
    | None -> ()
    | Some path ->
      let ring = Ci_obs.Event.create_ring () in
      ignore (Search.replay ~ring cfg choices);
      write_file path (Ci_obs.Event.to_jsonl ring)
  in
  let print_stats (s : Search.stats) =
    let ratio num den = if den = 0 then 0. else float_of_int num /. float_of_int den in
    Format.printf
      "states=%d executions=%d choices=%d branches=%d dedup_hits=%d \
       dedup_ratio=%.3f sleep_skips=%d sleep_ratio=%.3f rounds=%d closures=%d@."
      s.Search.states s.Search.executions s.Search.choices_applied
      s.Search.branches s.Search.dedup_hits
      (ratio s.Search.dedup_hits (s.Search.dedup_hits + s.Search.states))
      s.Search.sleep_skips
      (ratio s.Search.sleep_skips (s.Search.sleep_skips + s.Search.branches))
      s.Search.deepening_rounds s.Search.closures
  in
  let run protocol replicas clients commands seed drops crashes fires max_depth
      max_states stale_adoption trace_out events_out replay_file =
    match replay_file with
    | Some path -> (
      let contents =
        let ic = open_in path in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
      in
      match Trace.of_string contents with
      | Error msg ->
        Format.eprintf "unreadable trace %s: %s@." path msg;
        2
      | Ok (cfg, choices) -> (
        Format.printf "%s@." (Trace.config_to_line cfg);
        Format.printf "trace-hash=%s choices=%d@." (Trace.hash_hex choices)
          (List.length choices);
        events_sidecar events_out cfg choices;
        match Search.replay cfg choices with
        | Error msg ->
          Format.eprintf "replay diverged: %s@." msg;
          2
        | Ok None ->
          Format.printf "verdict=live@.";
          0
        | Ok (Some v) ->
          Format.printf "verdict=violation@.%a@." Search.pp_violation v;
          1))
    | None -> (
      let cfg =
        {
          Trace.protocol;
          n_replicas = replicas;
          n_clients = clients;
          n_commands = commands;
          seed;
          drop_budget = drops;
          crash_budget = crashes;
          fire_budget = fires;
          unsafe_stale_adoption = stale_adoption;
        }
      in
      match Trace.validate_config cfg with
      | Error msg ->
        Format.eprintf "bad config: %s@." msg;
        2
      | Ok () -> (
        let bounds =
          { Search.default_bounds with Search.max_depth; max_states }
        in
        Format.printf "%s@." (Trace.config_to_line cfg);
        let { Search.outcome; stats } = Search.explore ~bounds cfg in
        print_stats stats;
        match outcome with
        | Search.Exhausted ->
          Format.printf "outcome=exhausted@.";
          0
        | Search.Bounded ->
          Format.printf "outcome=bounded@.";
          0
        | Search.Violated { trace; violation = _; shrunk; shrunk_violation } ->
          Format.printf "outcome=violation@.%a@." Search.pp_violation
            shrunk_violation;
          Format.printf
            "counterexample: %d choices (shrunk from %d), trace-hash=%s@."
            (List.length shrunk) (List.length trace) (Trace.hash_hex shrunk);
          List.iter
            (fun c -> Format.printf "  %s@." (Trace.choice_to_line c))
            shrunk;
          (match trace_out with
          | Some path -> write_file path (Trace.to_string ~config:cfg shrunk)
          | None -> ());
          events_sidecar events_out cfg shrunk;
          1))
  in
  let term =
    Term.(
      const run $ protocol $ replicas $ clients $ commands $ seed $ drops
      $ crashes $ fires $ max_depth $ max_states $ stale_adoption $ trace_out
      $ events_out $ replay_file)
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Bounded model checking: exhaust delivery orderings and fault \
          placements of a small configuration, checking consistency at every \
          state and liveness at quiescent ones; shrink any counterexample to \
          a minimal replayable trace. Exits 1 on violation.")
    term

let () =
  let info =
    Cmd.info "consensus_sim" ~version:"1.0.0"
      ~doc:"Consensus Inside (Middleware 2014) reproduction: 1Paxos, Multi-Paxos and 2PC on a simulated many-core."
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ run_cmd; live_cmd; load_cmd; nemesis_cmd; figures_cmd; explore_cmd ]))

(* The binary codec must be a bijection over the full Wire.t vocabulary
   (decode ∘ encode = id), reject malformed input with Codec.Error only,
   and encode without allocating — the property the byte transports rely
   on for their zero-copy hot path. *)

module Codec = Ci_consensus.Codec
module Wire = Ci_consensus.Wire
module Pn = Ci_consensus.Pn
module Command = Ci_rsm.Command

let v ?(client = 1) ?(req_id = 2) cmd = { Wire.client; req_id; cmd }

(* ---------- generators ---------- *)

(* Integers must survive the 8-byte round trip across the whole 63-bit
   range, including the negatives Pn.bottom carries. *)
let int_gen =
  QCheck.Gen.(
    frequency
      [
        (5, int_bound 100_000);
        (2, map (fun n -> -n) (int_bound 100_000));
        (1, oneofl [ 0; 1; -1; max_int; min_int; 0xFFFF_FFFF; -0xFFFF_FFFF ]);
      ])

let cmd_gen =
  QCheck.Gen.(
    let* tag = int_bound 7 in
    let* a = int_gen and* b = int_gen and* c = int_gen and* d = int_gen in
    let* flag = bool in
    return
      (match tag with
      | 0 -> Command.Put { key = a; data = b }
      | 1 -> Command.Get { key = a }
      | 2 -> Command.Cas { key = a; expect = b; data = c }
      | 3 -> Command.Nop
      | 4 -> Command.Mput { k1 = a; d1 = b; k2 = c; d2 = d }
      | 5 -> Command.Prep { txn = a; key = b; data = c }
      | 6 -> Command.Range { lo = a; hi = b }
      | _ -> Command.Fin { txn = a; key = b; commit = flag }))

let result_gen =
  QCheck.Gen.(
    let* x = int_gen and* flag = bool in
    let* kvs = list_size (int_bound 5) (pair int_gen int_gen) in
    oneofl
      [ Command.Done; Command.Found None; Command.Found (Some x);
        Command.Swapped flag; Command.Vals kvs; Command.Rejected ])

let value_gen =
  QCheck.Gen.(
    let* client = int_gen and* req_id = int_gen and* cmd = cmd_gen in
    return { Wire.client; req_id; cmd })

let pn_gen =
  QCheck.Gen.(
    frequency
      [
        ( 4,
          let* round = int_bound 100_000 and* owner = int_bound 1_000 in
          return (Pn.make ~round ~owner) );
        (1, return Pn.bottom);
      ])

let entry_gen =
  QCheck.Gen.(
    let* tag = int_bound 2 in
    match tag with
    | 0 ->
      let* leader = int_gen and* acceptor = int_gen in
      return (Wire.Leader_change { leader; acceptor })
    | 1 ->
      let* acceptor = int_gen in
      let* carried =
        list_size (int_bound 4) (pair int_gen value_gen)
      in
      return (Wire.Acceptor_change { acceptor; carried })
    | _ ->
      let* actives = list_size (int_bound 6) int_gen in
      return (Wire.Epoch_change { actives }))

let iv_list_gen = QCheck.Gen.(list_size (int_bound 5) (pair int_gen value_gen))

let ipnv_list_gen =
  QCheck.Gen.(list_size (int_bound 5) (pair int_gen (pair pn_gen value_gen)))

let ie_list_gen = QCheck.Gen.(list_size (int_bound 5) (pair int_gen entry_gen))

let varr_gen =
  QCheck.Gen.(
    let* n = int_bound 9 in
    let* vs = list_repeat n value_gen in
    return (Array.of_list vs))

(* One generator per constructor, so shrink-free random sampling still
   exercises the complete vocabulary with high probability. *)
let msg_gen =
  QCheck.Gen.(
    let open Wire in
    let* inst = int_gen
    and* epoch = int_gen
    and* base = int_gen
    and* cseq = int_gen
    and* token = int_gen
    and* from_ = int_gen
    and* req_id = int_gen
    and* low = int_gen
    and* flag = bool
    and* pn = pn_gen
    and* apn = pn_gen
    and* value = value_gen
    and* opt_v = option value_gen
    and* cmd = cmd_gen
    and* result = result_gen
    and* entry = entry_gen
    and* iv = iv_list_gen
    and* ipnv = ipnv_list_gen
    and* ie = ie_list_gen
    and* vs = varr_gen in
    let accepted_pe = if flag then Some (apn, entry) else None in
    let accepted_pv = if flag then Some (apn, value) else None in
    oneofl
      [
        Request { req_id; cmd; relaxed_read = flag };
        Reply { req_id; result };
        Forward { v = value };
        Op_prepare_request { pn; must_be_fresh = flag };
        Op_prepare_response { pn; accepted = ipnv };
        Op_abandon { hpn = pn };
        Op_accept_request { inst; pn; v = value };
        Op_learn { inst; v = value };
        Op_accept_batch { base; pn; vs };
        Op_learn_batch { base; vs };
        Pu_prepare { cseq; pn };
        Pu_promise { cseq; pn; accepted = accepted_pe; chosen_suffix = ie };
        Pu_reject { cseq; pn; chosen_suffix = ie };
        Pu_accept { cseq; pn; entry };
        Pu_accepted { cseq; pn };
        Pu_nack { cseq; pn };
        Pu_learn { cseq; entry };
        Pu_read { token; from_ };
        Pu_read_reply { token; chosen_suffix = ie };
        Ls_req { token; from_ };
        Ls_reply { token; decisions = iv };
        Bp_prepare { inst; pn };
        Bp_promise { inst; pn; accepted = accepted_pv };
        Bp_reject { inst; pn };
        Bp_accept { inst; pn; v = value };
        Bp_learn { inst; pn; v = value };
        Mp_prepare { pn; low };
        Mp_promise { pn; accepted = ipnv };
        Mp_reject { pn };
        Mp_accept { inst; pn; v = value };
        Mp_learn { inst; pn; v = value };
        Mp_accept_batch { base; pn; vs };
        Mp_learn_batch { base; pn; vs };
        Mn_accept { inst; v = opt_v };
        Mn_learn { inst; v = opt_v };
        Cp_accept { epoch; inst; v = value };
        Cp_accepted { epoch; inst; v = value };
        Cp_learn { epoch; inst; v = value };
        Cp_state { epoch; accepted = iv };
        Tp_prepare { inst; v = value };
        Tp_ack { inst };
        Tp_commit { inst; v = value };
        Tp_commit_ack { inst };
        Tp_rollback { inst };
        Tp_nack { inst };
        Le_renew { pn; sent = inst };
        Le_grant { pn; sent = inst };
      ])

let msg_arb =
  QCheck.make ~print:(fun m -> Format.asprintf "%a" Wire.pp m) msg_gen

(* Deterministic sample hitting all 45 constructors, including the
   shapes qcheck rarely draws (empty batch, Pn.bottom, big lists). *)
let vocabulary =
  let pn = Pn.make ~round:3 ~owner:1 in
  let value = v (Command.Mput { k1 = 1; d1 = 2; k2 = 3; d2 = 4 }) in
  let entry =
    Wire.Acceptor_change { acceptor = 2; carried = [ (7, v Command.Nop) ] }
  in
  let ie = [ (0, entry); (1, Wire.Epoch_change { actives = [ 0; 1; 2 ] }) ] in
  let iv = [ (0, value); (1, v (Command.Get { key = 9 })) ] in
  let ipnv = [ (4, (pn, value)); (5, (Pn.bottom, v Command.Nop)) ] in
  let vs = Array.init 8 (fun i -> v ~req_id:i (Command.Put { key = i; data = i })) in
  [
    Wire.Request { req_id = 1; cmd = Command.Cas { key = 1; expect = 2; data = 3 }; relaxed_read = true };
    Reply { req_id = 2; result = Command.Found (Some max_int) };
    Forward { v = value };
    Op_prepare_request { pn = Pn.bottom; must_be_fresh = false };
    Op_prepare_response { pn; accepted = ipnv };
    Op_abandon { hpn = pn };
    Op_accept_request { inst = 42; pn; v = value };
    Op_learn { inst = 0; v = value };
    Op_accept_batch { base = 100; pn; vs };
    Op_learn_batch { base = 7; vs = [||] };
    Pu_prepare { cseq = 0; pn };
    Pu_promise { cseq = 1; pn; accepted = Some (Pn.bottom, entry); chosen_suffix = ie };
    Pu_reject { cseq = 2; pn; chosen_suffix = ie };
    Pu_accept { cseq = 3; pn; entry };
    Pu_accepted { cseq = 4; pn };
    Pu_nack { cseq = 5; pn };
    Pu_learn { cseq = 6; entry = Wire.Leader_change { leader = 1; acceptor = 2 } };
    Pu_read { token = 7; from_ = 1 };
    Pu_read_reply { token = 8; chosen_suffix = [] };
    Ls_req { token = 9; from_ = 2 };
    Ls_reply { token = 10; decisions = iv };
    Bp_prepare { inst = 1; pn };
    Bp_promise { inst = 2; pn; accepted = Some (pn, value) };
    Bp_reject { inst = 3; pn };
    Bp_accept { inst = 4; pn; v = value };
    Bp_learn { inst = 5; pn; v = value };
    Mp_prepare { pn; low = -1 };
    Mp_promise { pn; accepted = ipnv };
    Mp_reject { pn };
    Mp_accept { inst = 6; pn; v = value };
    Mp_learn { inst = 7; pn; v = value };
    Mp_accept_batch { base = 11; pn; vs };
    Mp_learn_batch { base = 12; pn; vs };
    Mn_accept { inst = 8; v = Some value };
    Mn_learn { inst = 9; v = None };
    Cp_accept { epoch = 1; inst = 10; v = value };
    Cp_accepted { epoch = 2; inst = 11; v = value };
    Cp_learn { epoch = 3; inst = 12; v = value };
    Cp_state { epoch = 4; accepted = iv };
    Tp_prepare { inst = 13; v = value };
    Tp_ack { inst = 14 };
    Tp_commit { inst = 15; v = value };
    Tp_commit_ack { inst = 16 };
    Tp_rollback { inst = 17 };
    Tp_nack { inst = min_int };
    Le_renew { pn; sent = 1234 };
    Le_grant { pn; sent = max_int };
  ]

(* Shapes the kind-distinct vocabulary above cannot carry twice: the
   Range command and its Vals / Rejected results ride inside Request
   and Reply, whose slots are already taken. *)
let vocabulary_extras =
  [
    Wire.Request
      { req_id = 3; cmd = Command.Range { lo = 2; hi = 9 }; relaxed_read = false };
    Reply { req_id = 4; result = Command.Vals [ (2, 20); (5, 50) ] };
    Reply { req_id = 5; result = Command.Vals [] };
    Reply { req_id = 6; result = Command.Rejected };
  ]

let roundtrip m =
  let size = Codec.encoded_size m in
  let buf = Bytes.create (size + 16) in
  let written = Codec.encode m buf ~pos:5 in
  if written <> size then
    Alcotest.failf "encode wrote %d, encoded_size said %d" written size;
  Codec.decode buf ~pos:5 ~len:size

let test_vocabulary_roundtrip () =
  Alcotest.(check int) "all constructors present" 47 (List.length vocabulary);
  Alcotest.(check int) "kinds distinct" 47
    (List.length (List.sort_uniq compare (List.map Wire.kind vocabulary)));
  List.iter
    (fun m ->
      let m' = roundtrip m in
      if m' <> m then
        Alcotest.failf "round trip changed %a into %a" Wire.pp m Wire.pp m')
    (vocabulary @ vocabulary_extras)

let roundtrip_prop =
  QCheck.Test.make ~name:"decode (encode m) = m" ~count:2000 msg_arb (fun m ->
      roundtrip m = m)

(* Every truncation of a valid encoding must raise Codec.Error — never
   succeed, never escape with a different exception. *)
let test_truncation () =
  List.iter
    (fun m ->
      let size = Codec.encoded_size m in
      let buf = Bytes.create size in
      ignore (Codec.encode m buf ~pos:0);
      for len = 0 to size - 1 do
        match Codec.decode buf ~pos:0 ~len with
        | _ -> Alcotest.failf "truncated %a at %d decoded" Wire.pp m len
        | exception Codec.Error _ -> ()
      done;
      (* Trailing bytes are also a framing error. *)
      let padded = Bytes.make (size + 1) '\x00' in
      ignore (Codec.encode m padded ~pos:0);
      match Codec.decode padded ~pos:0 ~len:(size + 1) with
      | _ -> Alcotest.failf "%a with trailing byte decoded" Wire.pp m
      | exception Codec.Error _ -> ())
    (vocabulary @ vocabulary_extras)

let garbage_prop =
  QCheck.Test.make ~name:"garbage decode errors, never crashes" ~count:2000
    QCheck.(string_of_size Gen.(int_bound 80))
    (fun s ->
      let buf = Bytes.of_string s in
      match Codec.decode buf ~pos:0 ~len:(Bytes.length buf) with
      | _ -> true
      | exception Codec.Error _ -> true)

let corruption_prop =
  QCheck.Test.make ~name:"corrupted encodings error or decode" ~count:1000
    QCheck.(pair msg_arb (pair small_nat small_nat))
    (fun (m, (off, delta)) ->
      let size = Codec.encoded_size m in
      let buf = Bytes.create size in
      ignore (Codec.encode m buf ~pos:0);
      let i = off mod size in
      Bytes.set buf i
        (Char.chr ((Char.code (Bytes.get buf i) + 1 + delta) land 0xff));
      match Codec.decode buf ~pos:0 ~len:size with
      | _ -> true
      | exception Codec.Error _ -> true)

let test_encode_bounds () =
  let m = List.hd vocabulary in
  let size = Codec.encoded_size m in
  let buf = Bytes.create size in
  (match Codec.encode m buf ~pos:1 with
  | _ -> Alcotest.fail "encode past end succeeded"
  | exception Codec.Error _ -> ());
  match Codec.encode m buf ~pos:(-1) with
  | _ -> Alcotest.fail "encode at negative pos succeeded"
  | exception Codec.Error _ -> ()

(* The transports size their fixed slots from max_fixed_size: it must
   bound every constructor that carries no list or array. *)
let test_max_fixed_size () =
  List.iter
    (fun m ->
      let has_variable =
        match m with
        | Wire.Op_prepare_response _ | Op_accept_batch _ | Op_learn_batch _
        | Pu_promise _ | Pu_reject _ | Pu_read_reply _ | Ls_reply _
        | Mp_promise _ | Mp_accept_batch _ | Mp_learn_batch _ | Cp_state _
        | Pu_accept _ | Pu_learn _ ->
          true
        | _ -> false
      in
      if not has_variable then
        let size = Codec.encoded_size m in
        if size > Codec.max_fixed_size then
          Alcotest.failf "%a is %d bytes > max_fixed_size %d" Wire.pp m size
            Codec.max_fixed_size)
    vocabulary

(* The zero-allocation claim, asserted: a thousand encodes of every
   constructor in the vocabulary must not allocate. The two
   Gc.allocated_bytes calls themselves box a float each, hence the
   one-word-per-iteration slack. *)
let test_encode_no_alloc () =
  let buf = Bytes.create 4096 in
  List.iter
    (fun m ->
      ignore (Codec.encode m buf ~pos:0);
      let before = Gc.allocated_bytes () in
      for _ = 1 to 1000 do
        ignore (Codec.encode m buf ~pos:0)
      done;
      let after = Gc.allocated_bytes () in
      let per_op = (after -. before) /. 1000. in
      if per_op > 1.0 then
        Alcotest.failf "encode of %s allocates %.1f bytes/op" (Wire.kind m)
          per_op)
    vocabulary

let test_encoded_size_no_alloc () =
  List.iter
    (fun m ->
      ignore (Codec.encoded_size m);
      let before = Gc.allocated_bytes () in
      for _ = 1 to 1000 do
        ignore (Codec.encoded_size m)
      done;
      let after = Gc.allocated_bytes () in
      let per_op = (after -. before) /. 1000. in
      if per_op > 1.0 then
        Alcotest.failf "encoded_size of %s allocates %.1f bytes/op"
          (Wire.kind m) per_op)
    vocabulary

let suite =
  ( "codec",
    [
      Alcotest.test_case "full vocabulary round trip" `Quick
        test_vocabulary_roundtrip;
      Alcotest.test_case "truncation always errors" `Quick test_truncation;
      Alcotest.test_case "encode bounds checked" `Quick test_encode_bounds;
      Alcotest.test_case "max_fixed_size bounds fixed messages" `Quick
        test_max_fixed_size;
      Alcotest.test_case "encode allocates nothing" `Quick test_encode_no_alloc;
      Alcotest.test_case "encoded_size allocates nothing" `Quick
        test_encoded_size_no_alloc;
      QCheck_alcotest.to_alcotest roundtrip_prop;
      QCheck_alcotest.to_alcotest garbage_prop;
      QCheck_alcotest.to_alcotest corruption_prop;
    ] )

(* The observability layer: typed event ring, exporters, metrics
   registry. The exporters are validated with a small JSON parser so a
   malformed escape or a trailing comma fails here, not in Perfetto. *)

module Event = Ci_obs.Event
module Metrics = Ci_obs.Metrics

(* ----- a minimal JSON reader (validation only) --------------------------- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let next () =
    if !pos >= n then raise (Bad "eof");
    let c = s.[!pos] in
    incr pos;
    c
  in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    if next () <> c then raise (Bad (Printf.sprintf "expected %c at %d" c !pos))
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let string_body () =
    let b = Buffer.create 16 in
    let rec go () =
      match next () with
      | '"' -> Buffer.contents b
      | '\\' ->
        (match next () with
         | '"' -> Buffer.add_char b '"'
         | '\\' -> Buffer.add_char b '\\'
         | '/' -> Buffer.add_char b '/'
         | 'n' -> Buffer.add_char b '\n'
         | 't' -> Buffer.add_char b '\t'
         | 'r' -> Buffer.add_char b '\r'
         | 'b' -> Buffer.add_char b '\b'
         | 'f' -> Buffer.add_char b '\012'
         | 'u' ->
           let h = String.init 4 (fun _ -> next ()) in
           Buffer.add_string b (Printf.sprintf "\\u%s" h)
         | c -> raise (Bad (Printf.sprintf "bad escape \\%c" c)));
        go ()
      | c when Char.code c < 0x20 -> raise (Bad "raw control char in string")
      | c ->
        Buffer.add_char b c;
        go ()
    in
    go ()
  in
  let number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      incr pos
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> raise (Bad "bad number")
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      expect '{';
      skip_ws ();
      if peek () = Some '}' then (incr pos; Obj [])
      else
        let rec members acc =
          skip_ws ();
          expect '"';
          let key = string_body () in
          skip_ws ();
          expect ':';
          let v = value () in
          skip_ws ();
          match next () with
          | ',' -> members ((key, v) :: acc)
          | '}' -> Obj (List.rev ((key, v) :: acc))
          | c -> raise (Bad (Printf.sprintf "bad object separator %c" c))
        in
        members []
    | Some '[' ->
      expect '[';
      skip_ws ();
      if peek () = Some ']' then (incr pos; Arr [])
      else
        let rec elements acc =
          let v = value () in
          skip_ws ();
          match next () with
          | ',' -> elements (v :: acc)
          | ']' -> Arr (List.rev (v :: acc))
          | c -> raise (Bad (Printf.sprintf "bad array separator %c" c))
        in
        elements []
    | Some '"' ->
      expect '"';
      Str (string_body ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> number ()
    | None -> raise (Bad "empty input")
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then raise (Bad "trailing garbage");
  v

let parse s =
  try parse_json s
  with Bad msg -> Alcotest.failf "invalid JSON (%s): %s" msg s

let obj_field j key =
  match j with
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let obj_str j key =
  match obj_field j key with Some (Str s) -> Some s | _ -> None

(* ----- event ring -------------------------------------------------------- *)

let ev ?(core = 0) ?(label = "") time kind = { Event.time; core; label; kind }

let test_ring_fifo () =
  let r = Event.create_ring ~capacity:10 () in
  Alcotest.(check int) "empty" 0 (Event.length r);
  for i = 1 to 3 do
    Event.emit r (ev i (Event.Timer { node = i }))
  done;
  Alcotest.(check int) "three retained" 3 (Event.length r);
  Alcotest.(check int) "none dropped" 0 (Event.dropped r);
  Alcotest.(check (list int)) "oldest first" [ 1; 2; 3 ]
    (List.map (fun (e : Event.t) -> e.Event.time) (Event.events r))

let test_ring_eviction () =
  let r = Event.create_ring ~capacity:4 () in
  for i = 1 to 10 do
    Event.emit r (ev i (Event.Timer { node = 0 }))
  done;
  Alcotest.(check int) "capacity bound" 4 (Event.length r);
  Alcotest.(check int) "evictions counted" 6 (Event.dropped r);
  Alcotest.(check (list int)) "newest survive" [ 7; 8; 9; 10 ]
    (List.map (fun (e : Event.t) -> e.Event.time) (Event.events r));
  Event.clear r;
  Alcotest.(check int) "cleared" 0 (Event.length r);
  Alcotest.(check int) "dropped reset" 0 (Event.dropped r)

let test_ring_invalid_capacity () =
  try
    ignore (Event.create_ring ~capacity:0 ());
    Alcotest.fail "capacity 0 accepted"
  with Invalid_argument _ -> ()

let test_kind_names () =
  let name k = Event.kind_name (ev 0 k) in
  Alcotest.(check string) "send" "send" (name (Event.Send { src = 0; dst = 1; seq = 7 }));
  Alcotest.(check string) "recv" "recv" (name (Event.Recv { src = 0; dst = 1; seq = 7 }));
  Alcotest.(check string) "self" "self" (name (Event.Self_deliver { node = 2 }));
  Alcotest.(check string) "timer" "timer" (name (Event.Timer { node = 2 }));
  Alcotest.(check string) "busy" "busy" (name (Event.Cpu_busy { dur = 5 }));
  Alcotest.(check string) "phase" "phase" (name (Event.Phase { node = 1; phase = "x" }))

(* ----- exporters --------------------------------------------------------- *)

let sample_ring () =
  let r = Event.create_ring ~capacity:64 () in
  Event.emit r (ev ~core:0 ~label:"Request" 100 (Event.Send { src = 0; dst = 1; seq = 1 }));
  Event.emit r (ev ~core:1 ~label:"Request" 140 (Event.Recv { src = 0; dst = 1; seq = 1 }));
  Event.emit r (ev ~core:1 250 (Event.Self_deliver { node = 1 }));
  Event.emit r (ev ~core:0 300 (Event.Timer { node = 0 }));
  Event.emit r (ev ~core:1 140 (Event.Cpu_busy { dur = 60 }));
  Event.emit r (ev ~core:1 ~label:"1paxos:adopted \"acc\"\n" 400
                  (Event.Phase { node = 1; phase = "1paxos:adopted \"acc\"\n" }));
  r

let test_jsonl_export () =
  let r = sample_ring () in
  let lines =
    Event.to_jsonl r |> String.split_on_char '\n'
    |> List.filter (fun l -> String.trim l <> "")
  in
  Alcotest.(check int) "one line per event" (Event.length r) (List.length lines);
  List.iter
    (fun line ->
      match parse line with
      | Obj _ -> ()
      | _ -> Alcotest.failf "line is not an object: %s" line)
    lines;
  (* The escaped phase label must survive a JSON round trip. *)
  let phase_line = List.nth lines 5 in
  match obj_str (parse phase_line) "label" with
  | Some label -> Alcotest.(check string) "escaping round-trips" "1paxos:adopted \"acc\"\n" label
  | None -> Alcotest.fail "phase line lost its label"

let test_chrome_export () =
  let r = sample_ring () in
  let doc = parse (Event.to_chrome r) in
  let entries = match doc with Arr l -> l | _ -> Alcotest.fail "not a JSON array" in
  let phases = List.filter_map (fun e -> obj_str e "ph") entries in
  let count p = List.length (List.filter (String.equal p) phases) in
  Alcotest.(check bool) "thread-name metadata present" true
    (List.exists
       (fun e -> obj_str e "ph" = Some "M" && obj_str e "name" = Some "thread_name")
       entries);
  Alcotest.(check int) "one complete span per busy event" 1 (count "X");
  Alcotest.(check bool) "flow arrows link send to recv" true
    (count "s" = 1 && count "f" = 1);
  (* Timestamps are microseconds: the send at 100 ns appears as 0.1. *)
  let send_entry =
    List.find_opt
      (fun e -> obj_str e "ph" = Some "i" && obj_str e "cat" = Some "send")
      entries
  in
  match send_entry with
  | Some e ->
    (match obj_field e "ts" with
     | Some (Num ts) -> Alcotest.(check (float 1e-6)) "ns -> us" 0.1 ts
     | _ -> Alcotest.fail "send instant has no ts")
  | None -> Alcotest.fail "no send instant in chrome export"

(* ----- metrics registry -------------------------------------------------- *)

let test_metrics_basics () =
  let m = Metrics.create () in
  Alcotest.(check int) "empty" 0 (Metrics.length m);
  Metrics.set_int m "a" 1;
  Metrics.set_float m "b" 2.5;
  Metrics.set_int m "c" 3;
  Metrics.set_int m "b" 9;
  (* overwrite keeps position *)
  Alcotest.(check int) "three keys" 3 (Metrics.length m);
  Alcotest.(check (list string)) "insertion order stable" [ "a"; "b"; "c" ]
    (List.map fst (Metrics.to_list m));
  Alcotest.(check int) "get_int" 9 (Metrics.get_int m "b");
  Alcotest.(check int) "unbound is 0" 0 (Metrics.get_int m "zzz");
  Alcotest.(check bool) "find" true (Metrics.find m "a" = Some (Metrics.Int 1))

let test_metrics_json () =
  let m = Metrics.create () in
  Metrics.set_int m "node0.sent" 42;
  Metrics.set_float m "core0.util" 0.75;
  let doc = parse (Metrics.to_json m) in
  (match obj_field doc "node0.sent" with
   | Some (Num f) -> Alcotest.(check (float 0.)) "int field" 42. f
   | _ -> Alcotest.fail "node0.sent missing");
  match obj_field doc "core0.util" with
  | Some (Num f) -> Alcotest.(check (float 1e-9)) "float field" 0.75 f
  | _ -> Alcotest.fail "core0.util missing"

let suite =
  ( "obs",
    [
      Alcotest.test_case "ring FIFO" `Quick test_ring_fifo;
      Alcotest.test_case "ring eviction and clear" `Quick test_ring_eviction;
      Alcotest.test_case "ring invalid capacity" `Quick test_ring_invalid_capacity;
      Alcotest.test_case "kind names" `Quick test_kind_names;
      Alcotest.test_case "jsonl export is valid JSON" `Quick test_jsonl_export;
      Alcotest.test_case "chrome export structure" `Quick test_chrome_export;
      Alcotest.test_case "metrics registry" `Quick test_metrics_basics;
      Alcotest.test_case "metrics JSON" `Quick test_metrics_json;
    ] )

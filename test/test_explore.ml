(* The bounded model checker: exhaustion on crash-tolerant protocols,
   genuine blocking counterexamples on crash-intolerant ones, trace
   round-trips, shrinking, and replay determinism. *)

module Trace = Ci_explore.Trace
module Search = Ci_explore.Search
module World = Ci_explore.World

let cfg ?(protocol = Trace.Onepaxos) ?(crashes = 0) ?(drops = 0) ?(fires = 4)
    ?(commands = 2) ?(stale = false) () =
  {
    (Trace.default_config ~protocol) with
    Trace.crash_budget = crashes;
    drop_budget = drops;
    fire_budget = fires;
    n_commands = commands;
    unsafe_stale_adoption = stale;
  }

let bounds ?(max_depth = 48) ?(max_states = 200_000) () =
  { Search.default_bounds with Search.max_depth; max_states }

(* ----- trace serialization ---------------------------------------------- *)

let trace_round_trips () =
  let config = cfg ~crashes:1 ~drops:2 () in
  let choices =
    [
      Trace.Deliver { src = 0; dst = 1 };
      Trace.Fire { node = 2 };
      Trace.Drop { src = 1; dst = 3 };
      Trace.Crash { node = 1 };
    ]
  in
  let s = Trace.to_string ~config choices in
  match Trace.of_string s with
  | Error e -> Alcotest.failf "round trip failed: %s" e
  | Ok (config', choices') ->
    Alcotest.(check bool) "config survives" true (config = config');
    Alcotest.(check bool) "choices survive" true (choices = choices');
    Alcotest.(check string) "hash stable" (Trace.hash_hex choices)
      (Trace.hash_hex choices')

let trace_rejects_garbage () =
  (match Trace.of_string "deliver 0 1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted trace without header");
  let config = cfg () in
  let s = Trace.to_string ~config [] ^ "teleport 3 4\n" in
  match Trace.of_string s with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted unknown choice"

(* ----- exhaustive runs on crash-tolerant protocols ----------------------- *)

(* The acceptance config from the issue: 3 replicas, 1 client, 2
   commands, one crash anywhere — 1Paxos must survive every schedule.
   With no timer nondeterminism the space is small enough to exhaust
   outright, so [Exhausted] here is a real verification result. *)
let onepaxos_exhausts_with_a_crash () =
  let r = Search.explore ~bounds:(bounds ()) (cfg ~crashes:1 ~fires:0 ()) in
  (match r.Search.outcome with
  | Search.Exhausted -> ()
  | Search.Bounded -> Alcotest.fail "expected exhaustion, hit budget"
  | Search.Violated { violation; _ } ->
    Alcotest.failf "unexpected violation: %a" Search.pp_violation violation);
  Alcotest.(check bool) "explored a real space" true (r.Search.stats.states > 100);
  Alcotest.(check bool) "dedup pruned something" true
    (r.Search.stats.dedup_hits > 0);
  Alcotest.(check bool) "sleep sets pruned something" true
    (r.Search.stats.sleep_skips > 0)

let multipaxos_exhausts_with_a_crash () =
  let r =
    Search.explore ~bounds:(bounds ())
      (cfg ~protocol:Trace.Multipaxos ~crashes:1 ~fires:0 ~commands:1 ())
  in
  match r.Search.outcome with
  | Search.Exhausted -> ()
  | Search.Bounded -> Alcotest.fail "expected exhaustion, hit budget"
  | Search.Violated { violation; _ } ->
    Alcotest.failf "unexpected violation: %a" Search.pp_violation violation

(* ----- genuine liveness counterexamples --------------------------------- *)

(* 2PC's defining weakness: it blocks if any participant fails, since
   commit needs every ack. The checker must find the one-step
   counterexample — crash a node — and shrinking must reduce whatever
   schedule found it first to exactly that single choice. *)
let twopc_blocks_on_any_crash () =
  let r =
    Search.explore ~bounds:(bounds ())
      (cfg ~protocol:Trace.Twopc ~crashes:1 ~fires:0 ())
  in
  match r.Search.outcome with
  | Search.Violated { shrunk; shrunk_violation; _ } ->
    (match shrunk_violation with
    | Search.Livelock { missing } ->
      Alcotest.(check bool) "some command is stuck" true (missing <> [])
    | Search.Safety _ -> Alcotest.fail "expected a livelock, got safety");
    (match shrunk with
    | [ Trace.Crash { node = _ } ] -> ()
    | other ->
      Alcotest.failf "expected 1-choice counterexample, got %d: %s"
        (List.length other)
        (String.concat "; " (List.map Trace.choice_to_line other)))
  | Search.Exhausted | Search.Bounded ->
    Alcotest.fail "2pc survived a crash it cannot survive"

(* Mencius without revocation has the same shape: every replica owns an
   instance sequence, so a dead owner stalls the log. The full search
   takes minutes (Mencius floods skip messages, and the livelock only
   shows at deep quiescent states), so replay the known one-step
   counterexample the explorer shrinks to — crash node 0 — and check
   the liveness closure still convicts it. A modest step cap keeps the
   closure cheap without changing the verdict: the stalled command can
   never be acknowledged at any cap. *)
let mencius_blocks_on_any_crash () =
  let config = cfg ~protocol:Trace.Mencius ~crashes:1 ~fires:0 ~commands:1 () in
  match Search.replay ~closure_steps:2_000 config [ Trace.Crash { node = 0 } ] with
  | Error e -> Alcotest.failf "replay failed: %s" e
  | Ok None -> Alcotest.fail "mencius survived an owner crash without revocation"
  | Ok (Some (Search.Livelock { missing })) ->
    Alcotest.(check bool) "the client's command is stuck" true (missing <> [])
  | Ok (Some (Search.Safety _)) -> Alcotest.fail "expected a livelock, got safety"

(* ----- the seeded split-brain regression --------------------------------- *)

(* A genuine safety bug this checker surfaced in [Onepaxos], since
   fixed: when the acceptor role relocated, the deposed acceptor kept
   honoring its stale promise, so a takeover whose prepare never
   reached it could decide one value at a fresh acceptor while the old
   leader's withheld accept later landed at the stale one — replicas
   diverge at instance 0. The fix retires an acceptor the moment the
   config log moves the role away from it; [unsafe_stale_adoption]
   disables retirement so the bug stays available as a seeded
   regression target. This 36-choice witness (no drops, no crashes,
   one timer fire) is the schedule the fix was derived from; DESIGN.md
   §14 walks through it choice by choice. *)
let split_brain_trace =
  {|# consensus-explore trace v1
config proto=1paxos replicas=3 clients=2 commands=1 seed=1 drops=0 crashes=0 fires=1 stale_adoption=false
deliver 0 1
deliver 1 0
deliver 3 0
fire 4
deliver 4 1
deliver 1 2
deliver 2 1
deliver 1 2
deliver 2 1
deliver 1 2
deliver 2 1
deliver 1 2
deliver 1 2
deliver 2 1
deliver 1 2
deliver 2 1
deliver 1 2
deliver 2 1
deliver 1 2
deliver 2 1
deliver 1 2
deliver 1 2
deliver 2 1
deliver 1 2
deliver 2 1
deliver 0 1
deliver 1 0
deliver 1 0
deliver 1 0
deliver 1 0
deliver 1 0
deliver 1 0
deliver 1 0
deliver 1 0
deliver 1 0
deliver 1 0
|}

let parse_split_brain () =
  match Trace.of_string split_brain_trace with
  | Error e -> Alcotest.failf "fixture parse: %s" e
  | Ok (config, choices) -> (config, choices)

(* Both directions of the regression: the fixed protocol survives the
   witness schedule, and re-opening the hole reproduces the
   disagreement on the very same schedule. *)
let split_brain_is_fixed () =
  let config, choices = parse_split_brain () in
  (match Search.replay config choices with
  | Error e -> Alcotest.failf "replay: %s" e
  | Ok None -> ()
  | Ok (Some v) ->
    Alcotest.failf "fixed protocol still violates: %a" Search.pp_violation v);
  let unsafe = { config with Trace.unsafe_stale_adoption = true } in
  match Search.replay unsafe choices with
  | Error e -> Alcotest.failf "unsafe replay: %s" e
  | Ok (Some (Search.Safety _)) -> ()
  | Ok None -> Alcotest.fail "seeded bug did not reproduce"
  | Ok (Some (Search.Livelock _)) ->
    Alcotest.fail "expected disagreement, got livelock"

(* The explorer finds the seeded bug itself. The full 36-choice space
   is beyond a unit-test budget, so guide the search with the witness's
   first 26 choices (through the takeover's decision) and let the DFS
   discover the violating completion; the shrunk result must replay to
   the same disagreement from a fresh world. *)
let explorer_finds_seeded_split_brain () =
  let config, choices = parse_split_brain () in
  let unsafe = { config with Trace.unsafe_stale_adoption = true } in
  let prefix = List.filteri (fun i _ -> i < 26) choices in
  let r =
    Search.explore
      ~bounds:{ (bounds ~max_depth:16 ~max_states:20_000 ()) with
                Search.closure_steps = 2_000 }
      ~prefix unsafe
  in
  match r.Search.outcome with
  | Search.Violated { trace; violation; shrunk; shrunk_violation } ->
    (match (violation, shrunk_violation) with
    | Search.Safety _, Search.Safety _ -> ()
    | _ -> Alcotest.failf "expected disagreement, got %a" Search.pp_violation violation);
    Alcotest.(check bool) "shrinking never grows the trace" true
      (List.length shrunk <= List.length trace);
    (match Search.replay unsafe shrunk with
    | Ok (Some (Search.Safety _)) -> ()
    | Ok (Some (Search.Livelock _)) | Ok None | Error _ ->
      Alcotest.fail "shrunk counterexample does not replay to disagreement")
  | Search.Exhausted -> Alcotest.fail "seeded bug not found: exhausted"
  | Search.Bounded -> Alcotest.fail "seeded bug not found: budget ran out"

(* A prefix the config cannot produce must be rejected eagerly, not
   silently explored from a corrupt state. *)
let explore_rejects_bad_prefix () =
  let config = cfg ~crashes:0 ~fires:0 () in
  match Search.explore ~prefix:[ Trace.Crash { node = 0 } ] config with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "explored from a prefix the config cannot produce"

(* ----- replay determinism ----------------------------------------------- *)

(* explore -> shrink -> serialize -> replay, twice: identical trace
   hash, identical verdict kind. This is the contract that makes
   counterexample files durable artifacts rather than one-off logs. *)
let replay_is_deterministic () =
  let config = cfg ~protocol:Trace.Twopc ~crashes:1 ~fires:0 () in
  let r = Search.explore ~bounds:(bounds ()) config in
  match r.Search.outcome with
  | Search.Violated { shrunk; shrunk_violation; _ } ->
    let serialized = Trace.to_string ~config shrunk in
    let run () =
      match Trace.of_string serialized with
      | Error e -> Alcotest.failf "parse: %s" e
      | Ok (config', choices') -> (
        match Search.replay config' choices' with
        | Error e -> Alcotest.failf "replay: %s" e
        | Ok verdict -> (Trace.hash_hex choices', verdict))
    in
    let h1, v1 = run () in
    let h2, v2 = run () in
    Alcotest.(check string) "hashes agree across runs" h1 h2;
    Alcotest.(check string) "hash matches the explorer's" h1
      (Trace.hash_hex shrunk);
    (match (v1, v2) with
    | Some a, Some b ->
      Alcotest.(check bool) "verdict kind stable" true (Search.same_kind a b);
      Alcotest.(check bool) "verdict matches explorer" true
        (Search.same_kind a shrunk_violation)
    | _ -> Alcotest.fail "replay lost the violation")
  | _ -> Alcotest.fail "no counterexample to replay"

(* A trace replayed against the wrong config must fail loudly, not
   silently diverge. *)
let replay_rejects_wrong_config () =
  let config = cfg ~crashes:1 ~fires:0 () in
  let r = Search.explore ~bounds:(bounds ()) config in
  (match r.Search.outcome with
  | Search.Exhausted -> ()
  | _ -> Alcotest.fail "setup: expected exhaustion");
  (* A crash choice is never enabled under a zero crash budget. *)
  let no_crash = cfg ~crashes:0 ~fires:0 () in
  match Search.replay no_crash [ Trace.Crash { node = 1 } ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "replayed a choice outside the config's budgets"

(* ----- world-level invariants ------------------------------------------- *)

(* Enabled choices must be exactly the applicable ones: applying any
   enabled choice succeeds, and the enumeration is stable (the replay
   contract's total order). *)
let enabled_choices_are_applicable () =
  let config = cfg ~crashes:1 ~drops:1 ~fires:2 () in
  let w = World.create config in
  let en1 = World.enabled w in
  let en2 = World.enabled w in
  Alcotest.(check bool) "enumeration is stable" true (en1 = en2);
  Alcotest.(check bool) "initial state has choices" true (en1 <> []);
  List.iter
    (fun c ->
      let w' = World.create config in
      match World.apply w' c with
      | () -> ()
      | exception Invalid_argument msg ->
        Alcotest.failf "enabled choice %s failed to apply: %s"
          (Trace.choice_to_line c) msg)
    en1

let majority_is_preserved () =
  let config = cfg ~crashes:2 ~fires:0 () in
  (* 3 replicas: one crash keeps a majority (2 >= 2), a second would
     not — the world must never enable it. *)
  let w = World.create config in
  World.apply w (Trace.Crash { node = 0 });
  let crashes =
    List.filter
      (fun c -> match c with Trace.Crash _ -> true | _ -> false)
      (World.enabled w)
  in
  Alcotest.(check (list string)) "no second crash enabled" []
    (List.map Trace.choice_to_line crashes)

let suite =
  ( "explore",
    [
      Alcotest.test_case "trace round-trips" `Quick trace_round_trips;
      Alcotest.test_case "trace rejects garbage" `Quick trace_rejects_garbage;
      Alcotest.test_case "enabled choices are applicable" `Quick
        enabled_choices_are_applicable;
      Alcotest.test_case "crashes preserve majority" `Quick majority_is_preserved;
      Alcotest.test_case "1paxos exhausts with a crash" `Quick
        onepaxos_exhausts_with_a_crash;
      Alcotest.test_case "multipaxos exhausts with a crash" `Slow
        multipaxos_exhausts_with_a_crash;
      Alcotest.test_case "2pc blocks on any crash" `Quick twopc_blocks_on_any_crash;
      Alcotest.test_case "mencius blocks on any crash" `Quick
        mencius_blocks_on_any_crash;
      Alcotest.test_case "split-brain witness: fixed and re-seedable" `Quick
        split_brain_is_fixed;
      Alcotest.test_case "explorer finds the seeded split-brain" `Quick
        explorer_finds_seeded_split_brain;
      Alcotest.test_case "explore rejects bad prefix" `Quick
        explore_rejects_bad_prefix;
      Alcotest.test_case "replay is deterministic" `Quick replay_is_deterministic;
      Alcotest.test_case "replay rejects wrong config" `Quick
        replay_rejects_wrong_config;
    ] )

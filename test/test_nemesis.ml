(* Nemesis: fault schedules compiled onto the simulator, crash-recovery
   through the protocols' own [recover] entry points, and the failover
   observability built on top. The live-runtime half of the nemesis is
   exercised in [Test_runtime]. *)

module Sim_time = Ci_engine.Sim_time
module Runner = Ci_workload.Runner
module Consistency = Ci_rsm.Consistency
module Failover = Ci_obs.Failover
module Metrics = Ci_obs.Metrics

let base_spec protocol =
  let spec =
    Runner.default_spec ~protocol
      ~placement:(Runner.Dedicated { n_replicas = 3; n_clients = 3 })
  in
  {
    spec with
    Runner.duration = Sim_time.ms 30;
    warmup = Sim_time.ms 5;
    drain = Sim_time.ms 10;
  }

let with_nemesis spec faults =
  { spec with Runner.nemesis = { Ci_faults.seed = 7; faults } }

let check_consistent what (r : Runner.result) =
  Alcotest.(check bool)
    (what ^ ": consistent")
    true
    (Consistency.ok r.Runner.consistency);
  Alcotest.(check bool) (what ^ ": commits > 0") true (r.Runner.commits > 0)

(* A run must keep committing after the fault: the failover analysis
   sees completions on both sides of the onset and a finite first
   post-fault completion. *)
let check_recovers what (r : Runner.result) =
  check_consistent what r;
  match r.Runner.failover with
  | None -> Alcotest.fail (what ^ ": no failover analysis")
  | Some f ->
    Alcotest.(check bool)
      (what ^ ": completions before fault")
      true
      (f.Failover.completions_before > 0);
    Alcotest.(check bool)
      (what ^ ": resumes committing after fault")
      true
      (f.Failover.completions_after > 0);
    (match f.Failover.time_to_failover with
    | Some t ->
      Alcotest.(check bool) (what ^ ": finite time_to_failover") true (t >= 0)
    | None -> Alcotest.fail (what ^ ": time_to_failover is infinite"))

let crash_acceptor_1paxos () =
  let spec = base_spec Runner.Onepaxos in
  (* Replica 1 is the seeded active acceptor under dedicated placement. *)
  let spec =
    with_nemesis spec
      [
        Ci_faults.Crash
          { node = 1; at = Sim_time.ms 15; down_for = Some (Sim_time.ms 10) };
      ]
  in
  let r = Runner.run spec in
  check_recovers "crash acceptor" r;
  Alcotest.(check bool)
    "acceptor was replaced" true
    (r.Runner.acceptor_changes > 0);
  (* The failover metrics are published in the registry too. *)
  (match Metrics.find r.Runner.metrics "failover.time_to_failover_ns" with
  | Some _ -> ()
  | None -> Alcotest.fail "failover.time_to_failover_ns not in metrics")

let crash_leader_1paxos () =
  let spec = base_spec Runner.Onepaxos in
  let spec =
    with_nemesis spec
      [
        Ci_faults.Crash
          { node = 0; at = Sim_time.ms 15; down_for = Some (Sim_time.ms 10) };
      ]
  in
  let r = Runner.run spec in
  check_recovers "crash leader" r;
  Alcotest.(check bool)
    "leadership moved" true
    (r.Runner.leader_changes > 0)

let crash_leader_multipaxos () =
  let spec = base_spec Runner.Multipaxos in
  let spec =
    with_nemesis spec
      [
        Ci_faults.Crash
          { node = 0; at = Sim_time.ms 15; down_for = Some (Sim_time.ms 10) };
      ]
  in
  let r = Runner.run spec in
  check_recovers "crash mp leader" r

let crash_no_restart () =
  (* A crashed-forever acceptor: the other two replicas still form a
     majority for PaxosUtility, so 1Paxos replaces it and keeps going. *)
  let spec = base_spec Runner.Onepaxos in
  let spec =
    with_nemesis spec
      [ Ci_faults.Crash { node = 1; at = Sim_time.ms 15; down_for = None } ]
  in
  let r = Runner.run spec in
  check_recovers "crash without restart" r

let pause_leader_1paxos () =
  let spec = base_spec Runner.Onepaxos in
  let spec =
    with_nemesis spec
      [ Ci_faults.Pause { node = 0; from_ = Sim_time.ms 15; until_ = Sim_time.ms 22 } ]
  in
  let r = Runner.run spec in
  check_recovers "pause leader" r

let lossy_link () =
  let spec = base_spec Runner.Onepaxos in
  let spec =
    with_nemesis spec
      [
        Ci_faults.Drop
          { src = 0; dst = 1; from_ = Sim_time.ms 10; until_ = Sim_time.ms 25; p = 0.3 };
        Ci_faults.Duplicate
          { src = 1; dst = 0; from_ = Sim_time.ms 10; until_ = Sim_time.ms 25; p = 0.3 };
        Ci_faults.Delay
          { src = 0; dst = 2; from_ = Sim_time.ms 10; until_ = Sim_time.ms 25;
            extra = Sim_time.us 50 };
      ]
  in
  let r = Runner.run spec in
  check_recovers "lossy link" r;
  let dropped =
    match Metrics.find r.Runner.metrics "faults.dropped" with
    | Some (Metrics.Int n) -> n
    | _ -> 0
  in
  Alcotest.(check bool) "some messages dropped" true (dropped > 0)

let partition_heals () =
  (* Cut the leader off from both peers; nothing can commit during the
     cut (no acceptor reachable), and the run must converge after the
     heal — on either the old leader or a successor. *)
  let spec = base_spec Runner.Onepaxos in
  let spec =
    with_nemesis spec
      [
        Ci_faults.Partition
          { groups = [ [ 0 ]; [ 1; 2 ] ]; from_ = Sim_time.ms 15; until_ = Sim_time.ms 20 };
      ]
  in
  let r = Runner.run spec in
  check_recovers "partition" r

let empty_nemesis_is_identity () =
  (* The whole fault layer must be pay-per-use: a spec with the empty
     schedule reproduces the no-nemesis run exactly. *)
  let spec = base_spec Runner.Onepaxos in
  let plain = Runner.run spec in
  let empt = Runner.run { spec with Runner.nemesis = Ci_faults.empty } in
  Alcotest.(check int) "commits" plain.Runner.commits empt.Runner.commits;
  Alcotest.(check int) "messages" plain.Runner.messages_total empt.Runner.messages_total;
  Alcotest.(check int) "sim events" plain.Runner.sim_events empt.Runner.sim_events;
  Alcotest.(check bool) "no failover analysis" true (empt.Runner.failover = None)

let rejects_bad_schedules () =
  let spec = base_spec Runner.Onepaxos in
  let expect_invalid what faults =
    match Runner.run (with_nemesis spec faults) with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail (what ^ ": accepted")
  in
  expect_invalid "inverted window"
    [ Ci_faults.Pause { node = 0; from_ = Sim_time.ms 20; until_ = Sim_time.ms 10 } ];
  expect_invalid "node out of range"
    [ Ci_faults.Crash { node = 7; at = Sim_time.ms 10; down_for = None } ];
  expect_invalid "p out of range"
    [ Ci_faults.Drop { src = 0; dst = 1; from_ = 0; until_ = Sim_time.ms 1; p = 1.5 } ];
  expect_invalid "NaN factor"
    [ Ci_faults.Slow { core = 0; from_ = 0; until_ = Sim_time.ms 1; factor = Float.nan } ];
  expect_invalid "sub-1 factor"
    [ Ci_faults.Slow { core = 0; from_ = 0; until_ = Sim_time.ms 1; factor = 0.5 } ];
  expect_invalid "self link"
    [ Ci_faults.Drop { src = 1; dst = 1; from_ = 0; until_ = Sim_time.ms 1; p = 0.5 } ];
  (* Crash/pause needs a recoverable protocol and dedicated placement. *)
  (match
     Runner.run
       (with_nemesis (base_spec Runner.Twopc)
          [ Ci_faults.Crash { node = 1; at = Sim_time.ms 10; down_for = None } ])
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "2pc crash: accepted");
  match
    Runner.run
      (with_nemesis
         {
           (base_spec Runner.Onepaxos) with
           Runner.placement = Runner.Joint { n_nodes = 3 };
         }
         [ Ci_faults.Crash { node = 1; at = Sim_time.ms 10; down_for = None } ])
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "joint crash: accepted"

let fault_plan_validation () =
  let ok = function Ok () -> true | Error _ -> false in
  Alcotest.(check bool) "valid slow" true
    (ok
       (Ci_workload.Fault_plan.validate ~n_cores:48
          (Ci_workload.Fault_plan.Slow_core
             { core = 0; from_ = 0; until_ = 10; factor = 9. })));
  Alcotest.(check bool) "inverted window" false
    (ok
       (Ci_workload.Fault_plan.validate
          (Ci_workload.Fault_plan.Crash_core { core = 0; from_ = 10; until_ = 10 })));
  Alcotest.(check bool) "core range" false
    (ok
       (Ci_workload.Fault_plan.validate ~n_cores:4
          (Ci_workload.Fault_plan.Slow_core
             { core = 9; from_ = 0; until_ = 10; factor = 2. })));
  Alcotest.(check bool) "NaN factor" false
    (ok
       (Ci_workload.Fault_plan.validate
          (Ci_workload.Fault_plan.Slow_core
             { core = 0; from_ = 0; until_ = 10; factor = Float.nan })))

(* Randomized nemesis grid: every protocol stays consistent under every
   schedule [Ci_faults.random] can produce (crash/pause schedules are
   restricted to the protocols that support recovery). *)
let qcheck_nemesis_safety =
  let open QCheck in
  let horizon = Sim_time.ms 45 in
  let protocols =
    [
      Runner.Onepaxos; Runner.Multipaxos; Runner.Twopc; Runner.Mencius;
      Runner.Cheappaxos;
    ]
  in
  Test.make ~count:20 ~name:"nemesis grid: consistency under random schedules"
    (make
       Gen.(
         map2
           (fun s p -> (s, p))
           (int_bound 10_000)
           (oneofl protocols)))
    (fun (seed, protocol) ->
      let sched = Ci_faults.random ~seed ~n_nodes:3 ~horizon in
      let sched =
        match protocol with
        | Runner.Onepaxos | Runner.Multipaxos -> sched
        | _ ->
          {
            sched with
            Ci_faults.faults =
              List.filter
                (function
                  | Ci_faults.Crash _ | Ci_faults.Pause _ -> false
                  | _ -> true)
                sched.Ci_faults.faults;
          }
      in
      let spec = { (base_spec protocol) with Runner.nemesis = sched } in
      let r = Runner.run spec in
      Consistency.ok r.Runner.consistency)

(* ----- live runtime ------------------------------------------------------ *)

module Live = Ci_runtime.Live

let live_spec protocol =
  {
    (Live.default_spec ~protocol) with
    Live.duration_s = 1.2;
    drain_s = 0.3;
  }

let live_with_nemesis spec faults =
  { spec with Live.nemesis = { Ci_faults.seed = 11; faults } }

let check_live_recovers what (r : Live.result) =
  if not (Consistency.ok r.Live.consistency) then
    Alcotest.failf "%s: %a" what Consistency.pp r.Live.consistency;
  Alcotest.(check bool) (what ^ ": ops > 0") true (r.Live.ops > 0);
  match r.Live.failover with
  | None -> Alcotest.fail (what ^ ": no failover analysis")
  | Some f ->
    Alcotest.(check bool)
      (what ^ ": completions before fault")
      true
      (f.Failover.completions_before > 0);
    Alcotest.(check bool)
      (what ^ ": resumes committing after fault")
      true
      (f.Failover.completions_after > 0);
    if f.Failover.time_to_failover = None then
      Alcotest.fail (what ^ ": time_to_failover is infinite")

(* Kill the active acceptor mid-run on the real domains: the leader
   must replace it through the freshness handshake, commits must
   resume, and the restarted replica (rejoining via recover + learner
   sync) must not contradict the survivors. *)
let live_crash_acceptor () =
  let spec = live_spec Live.Onepaxos in
  let spec =
    live_with_nemesis spec
      [
        Ci_faults.Crash
          { node = 1; at = Sim_time.ms 400; down_for = Some (Sim_time.ms 300) };
      ]
  in
  let r = Live.run spec in
  check_live_recovers "live crash acceptor" r;
  Alcotest.(check bool)
    "acceptor was replaced" true
    (r.Live.acceptor_changes > 0)

let live_crash_mp_leader () =
  let spec = live_spec Live.Multipaxos in
  let spec =
    live_with_nemesis spec
      [
        Ci_faults.Crash
          { node = 0; at = Sim_time.ms 400; down_for = Some (Sim_time.ms 300) };
      ]
  in
  let r = Live.run spec in
  check_live_recovers "live crash mp leader" r;
  Alcotest.(check bool) "an election ran" true (r.Live.leader_changes > 0)

let live_pause_leader () =
  let spec = live_spec Live.Onepaxos in
  let spec =
    live_with_nemesis spec
      [
        Ci_faults.Pause
          { node = 0; from_ = Sim_time.ms 400; until_ = Sim_time.ms 700 };
      ]
  in
  let r = Live.run spec in
  check_live_recovers "live pause leader" r

(* A dead peer must not grow any sender's heap: with a crashed replica
   that never drains its rings, every sender's parked backlog stays
   within the configured cap. *)
let live_outbox_capped () =
  let cap = 64 in
  let spec =
    { (live_spec Live.Onepaxos) with Live.outbox_cap = cap; queue_slots = 2 }
  in
  let spec =
    live_with_nemesis spec
      [ Ci_faults.Crash { node = 1; at = Sim_time.ms 300; down_for = None } ]
  in
  let r = Live.run spec in
  if not (Consistency.ok r.Live.consistency) then
    Alcotest.failf "outbox cap: %a" Consistency.pp r.Live.consistency;
  Alcotest.(check bool) "ops" true (r.Live.ops > 0);
  Alcotest.(check bool)
    (Printf.sprintf "outbox peak %d <= cap %d" r.Live.queues.Live.q_outbox_peak
       cap)
    true
    (r.Live.queues.Live.q_outbox_peak <= cap)

let live_rejects_slow () =
  let spec =
    live_with_nemesis (live_spec Live.Onepaxos)
      [
        Ci_faults.Slow
          { core = 0; from_ = 0; until_ = Sim_time.ms 100; factor = 9. };
      ]
  in
  match Live.run spec with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "live accepted a Slow fault"

(* ----- regression pins ---------------------------------------------------- *)

(* Exact deterministic expectations so failover behaviour cannot drift
   silently: the fig11 slow-leader figure and the recovery-time metric
   of a fixed crash schedule. The simulator is deterministic, so any
   diff here is a real behaviour change — update a pin only together
   with an explanation of what moved it. *)
module E = Ci_workload.Experiments

let test_fig11_pins () =
  match E.fig11 ~duration:(Sim_time.ms 120) () with
  | [ faulty; baseline ] ->
    Alcotest.(check int) "faulty leader changes" 1 faulty.E.leader_changes;
    Alcotest.(check int) "faulty acceptor changes" 1 faulty.E.acceptor_changes;
    Alcotest.(check int) "baseline leader changes" 0 baseline.E.leader_changes;
    let sum = Array.fold_left ( +. ) 0. in
    Alcotest.(check (float 1.0)) "faulty rate mass" 1_993_400. (sum faulty.E.rates);
    Alcotest.(check (float 1.0)) "baseline rate mass" 2_028_500.
      (sum baseline.E.rates)
  | _ -> Alcotest.fail "expected two timelines"

let test_recovery_time_pin () =
  let spec = base_spec Runner.Onepaxos in
  let spec =
    with_nemesis spec
      [
        Ci_faults.Crash
          { node = 1; at = Sim_time.ms 15; down_for = Some (Sim_time.ms 10) };
      ]
  in
  let r = Runner.run spec in
  Alcotest.(check int) "commits" 4164 r.Runner.commits;
  match r.Runner.failover with
  | None -> Alcotest.fail "no failover analysis"
  | Some f ->
    (* 1150 ns: the reply already in flight when the acceptor dies — the
       interesting outage is the [unavailable_ns] gap, but the first
       post-fault completion is what the metric is defined as. *)
    Alcotest.(check (option int)) "time_to_failover_ns" (Some 1150)
      f.Failover.time_to_failover;
    Alcotest.(check int) "completions_after" 4163 f.Failover.completions_after

let suite =
  ( "nemesis",
    [
      Alcotest.test_case "crash active acceptor (1paxos)" `Quick
        crash_acceptor_1paxos;
      Alcotest.test_case "crash leader (1paxos)" `Quick crash_leader_1paxos;
      Alcotest.test_case "crash leader (multipaxos)" `Quick
        crash_leader_multipaxos;
      Alcotest.test_case "crash without restart" `Quick crash_no_restart;
      Alcotest.test_case "pause leader (1paxos)" `Quick pause_leader_1paxos;
      Alcotest.test_case "lossy, duplicating, laggy links" `Quick lossy_link;
      Alcotest.test_case "partition heals" `Quick partition_heals;
      Alcotest.test_case "empty schedule is the identity" `Quick
        empty_nemesis_is_identity;
      Alcotest.test_case "invalid schedules rejected" `Quick
        rejects_bad_schedules;
      Alcotest.test_case "fault plan validation" `Quick fault_plan_validation;
      Alcotest.test_case "regression pins: fig11" `Quick test_fig11_pins;
      Alcotest.test_case "regression pins: recovery time" `Quick
        test_recovery_time_pin;
      QCheck_alcotest.to_alcotest qcheck_nemesis_safety;
      Alcotest.test_case "live: crash active acceptor" `Slow
        live_crash_acceptor;
      Alcotest.test_case "live: crash multipaxos leader" `Slow
        live_crash_mp_leader;
      Alcotest.test_case "live: pause leader" `Slow live_pause_leader;
      Alcotest.test_case "live: dead peer cannot grow sender heap" `Slow
        live_outbox_capped;
      Alcotest.test_case "live: Slow faults rejected" `Quick live_rejects_slow;
    ] )

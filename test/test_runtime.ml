(* End-to-end tests of the live runtime: the same protocol cores the
   simulator drives, here on real domains over SPSC queues. Runs are
   kept short (a couple hundred ms) — the point is that every reply the
   clients saw checks out against the replicas' joined views, not the
   throughput number. *)

module Live = Ci_runtime.Live
module Runner = Ci_workload.Runner
module Consistency = Ci_rsm.Consistency

let short_spec protocol =
  {
    (Live.default_spec ~protocol) with
    Live.duration_s = 0.15;
    drain_s = 0.1;
  }

let check_live name (r : Live.result) =
  if not (Consistency.ok r.Live.consistency) then
    Alcotest.failf "%s: %a" name Consistency.pp r.Live.consistency;
  if r.Live.ops <= 0 then Alcotest.failf "%s: no operations completed" name;
  Alcotest.(check int) (name ^ ": latency samples") r.Live.ops
    r.Live.latency.Ci_stats.Summary.count

let test_live_onepaxos () =
  let r = Live.run (short_spec Live.Onepaxos) in
  check_live "1paxos" r;
  Alcotest.(check int) "no acceptor changes" 0 r.Live.acceptor_changes

let test_live_multipaxos () =
  let r = Live.run (short_spec Live.Multipaxos) in
  check_live "multipaxos" r

let test_live_five_replicas () =
  let r = Live.run { (short_spec Live.Onepaxos) with Live.n_replicas = 5 } in
  check_live "1paxos x5" r

let test_tiny_queues () =
  (* 1-slot rings force every send through the outbox fallback; the
     run must still complete and stay consistent. *)
  let r = Live.run { (short_spec Live.Onepaxos) with Live.queue_slots = 1 } in
  check_live "1paxos slots=1" r;
  Alcotest.(check bool) "peak bounded" true
    (r.Live.queues.Live.q_occupancy_peak <= 1)

(* Conformance: the identical protocol core, read workload and checker,
   once under the simulator and once on the metal. Both backends must
   commit work and pass the consistency check — the seam
   (Ci_engine.Node_env) is only honest if nothing protocol-visible
   depends on which backend is underneath. *)
let conformance protocol sim_protocol () =
  let live = Live.run { (short_spec protocol) with Live.read_ratio = 0.3 } in
  check_live "live backend" live;
  let sim =
    Runner.run
      {
        (Runner.default_spec ~protocol:sim_protocol
           ~placement:(Runner.Dedicated { n_replicas = 3; n_clients = 2 }))
        with
        Runner.read_ratio = 0.3;
      }
  in
  if not (Consistency.ok sim.Runner.consistency) then
    Alcotest.failf "sim backend: %a" Consistency.pp sim.Runner.consistency;
  if sim.Runner.commits <= 0 then Alcotest.fail "sim backend: no commits"

(* Sharded live runs: 2 groups x 2 replicas plus a router per group on
   real domains, 30% of commands cross-shard 2PC multi-puts. Both the
   per-group consistency check and the cross-shard atomicity check must
   sign off. *)
let sharded_spec protocol =
  {
    (Live.default_spec ~protocol) with
    Live.n_replicas = 2;
    n_clients = 2;
    groups = 2;
    cross_shard_ratio = 0.3;
    duration_s = 0.25;
    drain_s = 0.15;
  }

let check_sharded name (r : Live.result) =
  check_live name r;
  match r.Live.atomicity with
  | None -> Alcotest.fail (name ^ ": no atomicity report at groups=2")
  | Some a ->
    if not (Ci_rsm.Atomicity.ok a) then
      Alcotest.failf "%s: %a" name Ci_rsm.Atomicity.pp a;
    Alcotest.(check bool)
      (name ^ ": cross-shard txns resolved")
      true
      (a.Ci_rsm.Atomicity.committed + a.Ci_rsm.Atomicity.aborted > 0)

let test_live_sharded_onepaxos () =
  check_sharded "1paxos sharded" (Live.run (sharded_spec Live.Onepaxos))

let test_live_sharded_multipaxos () =
  check_sharded "multipaxos sharded" (Live.run (sharded_spec Live.Multipaxos))

(* The PR-3 allocation diet, extended to the live hot path: words
   allocated per committed op across the replica and router domains
   (Gc.allocated_bytes is domain-local), on a sharded run so the
   router/2PC path is included. The fixed-slot codec and the
   allocation-free event loop brought this from ~15k words/op down to
   ~800 on a 1-core host; the 8k bound keeps headroom for short
   oversubscribed runs (domain startup amortizes badly) while pinning
   the order of magnitude — a per-event closure or ref sneaking back
   into the loop blows straight through it. *)
let test_live_alloc_budget () =
  let r =
    Live.run { (sharded_spec Live.Onepaxos) with Live.duration_s = 0.4 }
  in
  check_sharded "alloc run" r;
  Alcotest.(check bool)
    (Printf.sprintf "%.0f words/op <= 8k budget" r.Live.alloc_words_per_op)
    true
    (r.Live.alloc_words_per_op > 0. && r.Live.alloc_words_per_op <= 8_000.)

(* Open-loop drivers and leader leases on real domains: the live halves
   of the lib/load subsystem (the simulator halves live in Test_load). *)

let open_loop_spec protocol =
  {
    (short_spec protocol) with
    Live.open_loop =
      Some
        {
          Runner.default_open_loop with
          Runner.arrival = Ci_load.Arrival.Fixed 5_000.;
          key_space = 1024;
          mix = { Ci_load.Open_client.reads = 0.6; cas = 0.05; ranges = 0.05 };
          sessions = 8;
        };
  }

let check_live_open name (r : Live.result) =
  if not (Consistency.ok r.Live.consistency) then
    Alcotest.failf "%s: %a" name Consistency.pp r.Live.consistency;
  let sink =
    match r.Live.load with
    | Some s -> s
    | None -> Alcotest.failf "%s: no load sink on an open-loop run" name
  in
  Alcotest.(check bool)
    (name ^ ": completions") true
    (Ci_load.Load_stats.completed sink > 0);
  Alcotest.(check int)
    (name ^ ": no stale session reads")
    0
    (Ci_load.Load_stats.stale_reads sink)

let test_live_open_loop () =
  List.iter
    (fun (name, protocol) ->
      check_live_open name (Live.run (open_loop_spec protocol)))
    [ ("1paxos", Live.Onepaxos); ("multipaxos", Live.Multipaxos) ]

let test_live_lease_reads () =
  List.iter
    (fun (name, protocol) ->
      let spec =
        {
          (open_loop_spec protocol) with
          Live.duration_s = 0.3;
          lease = 20_000_000 (* 20 ms *);
          lease_skew = 200_000;
        }
      in
      let r = Live.run spec in
      check_live_open name r;
      Alcotest.(check bool)
        (name ^ ": reads served under the lease")
        true
        (r.Live.lease_reads > 0))
    [ ("1paxos", Live.Onepaxos); ("multipaxos", Live.Multipaxos) ]

let test_validation () =
  let expect_invalid name spec =
    match Live.run spec with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: accepted a malformed spec" name
  in
  let ok = Live.default_spec ~protocol:Live.Onepaxos in
  expect_invalid "replicas" { ok with Live.n_replicas = 1 };
  expect_invalid "clients" { ok with Live.n_clients = 0 };
  expect_invalid "duration" { ok with Live.duration_s = 0. };
  expect_invalid "drain" { ok with Live.drain_s = -0.1 };
  expect_invalid "slots" { ok with Live.queue_slots = 0 };
  expect_invalid "slot size not a power of two" { ok with Live.slot_size = 96 };
  expect_invalid "slot size below minimum"
    { ok with Live.slot_size = Ci_runtime.Spsc_bytes.min_slot_size / 2 };
  expect_invalid "timeout" { ok with Live.client_timeout = 0 };
  expect_invalid "read ratio" { ok with Live.read_ratio = 1.5 };
  expect_invalid "groups" { ok with Live.groups = 0 };
  expect_invalid "cross-shard ratio < 0" { ok with Live.cross_shard_ratio = -0.1 };
  expect_invalid "cross-shard ratio > 1" { ok with Live.cross_shard_ratio = 1.1 };
  expect_invalid "socket transport with groups > 1"
    { ok with Live.transport = Live.Socket; groups = 2 };
  expect_invalid "negative lease" { ok with Live.lease = -1 };
  expect_invalid "lease skew >= lease"
    { ok with Live.lease = 100; lease_skew = 100 };
  expect_invalid "socket transport with the open-loop driver"
    {
      ok with
      Live.transport = Live.Socket;
      open_loop = Some Runner.default_open_loop;
    };
  expect_invalid "socket transport with a nemesis"
    {
      ok with
      Live.transport = Live.Socket;
      nemesis =
        {
          Ci_faults.seed = 1;
          faults = [ Ci_faults.Crash { node = 0; at = 1; down_for = None } ];
        };
    }

let test_protocol_names () =
  List.iter
    (fun (s, expect) ->
      Alcotest.(check (option string)) s expect
        (Option.map Live.protocol_name (Live.protocol_of_string s)))
    [
      ("onepaxos", Some "1paxos");
      ("1paxos", Some "1paxos");
      ("multipaxos", Some "multipaxos");
      ("multi-paxos", Some "multipaxos");
      ("2pc", None);
    ];
  List.iter
    (fun (s, expect) ->
      Alcotest.(check (option string)) s expect
        (Option.map Live.transport_name (Live.transport_of_string s)))
    [
      ("spsc", Some "spsc");
      ("rings", Some "spsc");
      ("socket", Some "socket");
      ("sockets", Some "socket");
      ("rdma", None);
    ]

(* Socket transport smoke: OCaml 5 refuses Unix.fork once a process has
   spawned any domain — and the suites before this one spawn plenty —
   so the run happens in a fresh process via the CLI (Sys.command goes
   through libc system(3), whose fork+exec never runs OCaml code in the
   child). Exit 0 means the run completed AND the consistency check
   signed off; exit 3 is the CLI's "sockets unavailable on this host"
   skip. *)
let test_socket_smoke () =
  let candidates =
    [ "../bin/consensus_sim.exe"; "_build/default/bin/consensus_sim.exe" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | None -> Printf.printf "consensus_sim.exe not found; skipping\n"
  | Some exe ->
    List.iter
      (fun protocol ->
        let cmd =
          Printf.sprintf
            "%s live -p %s --transport socket -d 0.2 --drain-s 0.1 >/dev/null"
            (Filename.quote exe) protocol
        in
        match Sys.command cmd with
        | 0 -> ()
        | 3 -> Printf.printf "sockets unavailable; skipping %s\n" protocol
        | rc -> Alcotest.failf "socket live %s: exit %d" protocol rc)
      [ "onepaxos"; "multipaxos" ]

let suite =
  ( "runtime",
    [
      Alcotest.test_case "live 1paxos: consistent, makes progress" `Quick
        test_live_onepaxos;
      Alcotest.test_case "live multipaxos: consistent, makes progress" `Quick
        test_live_multipaxos;
      Alcotest.test_case "live 1paxos, 5 replicas" `Quick test_live_five_replicas;
      Alcotest.test_case "1-slot rings: outbox fallback stays consistent" `Quick
        test_tiny_queues;
      Alcotest.test_case "sim vs runtime conformance (1paxos)" `Quick
        (conformance Live.Onepaxos Runner.Onepaxos);
      Alcotest.test_case "sim vs runtime conformance (multipaxos)" `Quick
        (conformance Live.Multipaxos Runner.Multipaxos);
      Alcotest.test_case "live sharded 1paxos: consistent and atomic" `Quick
        test_live_sharded_onepaxos;
      Alcotest.test_case "live sharded multipaxos: consistent and atomic" `Quick
        test_live_sharded_multipaxos;
      Alcotest.test_case "live alloc words/op budget (sharded hot path)" `Quick
        test_live_alloc_budget;
      Alcotest.test_case "live open-loop drivers: sessions read their writes"
        `Quick test_live_open_loop;
      Alcotest.test_case "live leases serve local reads" `Quick
        test_live_lease_reads;
      Alcotest.test_case "spec validation" `Quick test_validation;
      Alcotest.test_case "protocol and transport name parsing" `Quick
        test_protocol_names;
      Alcotest.test_case "socket transport: both protocols consistent" `Quick
        test_socket_smoke;
    ] )

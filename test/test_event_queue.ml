module Event_queue = Ci_engine.Event_queue

let drain q =
  let rec go acc =
    match Event_queue.pop q with
    | Some (t, v) -> go ((t, v) :: acc)
    | None -> List.rev acc
  in
  go []

let test_empty () =
  let q : int Event_queue.t = Event_queue.create () in
  Alcotest.(check bool) "is_empty" true (Event_queue.is_empty q);
  Alcotest.(check int) "length" 0 (Event_queue.length q);
  Alcotest.(check (option (pair int int))) "pop" None (Event_queue.pop q);
  Alcotest.(check (option int)) "peek" None (Event_queue.peek_time q)

let test_ordering () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:30 "c";
  Event_queue.push q ~time:10 "a";
  Event_queue.push q ~time:20 "b";
  Alcotest.(check (option int)) "peek earliest" (Some 10) (Event_queue.peek_time q);
  Alcotest.(check (list (pair int string)))
    "time order"
    [ (10, "a"); (20, "b"); (30, "c") ]
    (drain q)

let test_fifo_ties () =
  let q = Event_queue.create () in
  List.iter (fun v -> Event_queue.push q ~time:5 v) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check (list (pair int int)))
    "insertion order among equal timestamps"
    [ (5, 1); (5, 2); (5, 3); (5, 4); (5, 5) ]
    (drain q)

let test_interleaved () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:2 "a";
  Event_queue.push q ~time:1 "b";
  Alcotest.(check (option (pair int string))) "first" (Some (1, "b")) (Event_queue.pop q);
  Event_queue.push q ~time:0 "c";
  Event_queue.push q ~time:3 "d";
  Alcotest.(check (list (pair int string)))
    "remaining order"
    [ (0, "c"); (2, "a"); (3, "d") ]
    (drain q)

let test_clear () =
  let q = Event_queue.create () in
  for i = 1 to 10 do
    Event_queue.push q ~time:i i
  done;
  Event_queue.clear q;
  Alcotest.(check bool) "empty after clear" true (Event_queue.is_empty q);
  Event_queue.push q ~time:1 42;
  Alcotest.(check (option (pair int int))) "usable after clear" (Some (1, 42))
    (Event_queue.pop q)

let test_growth () =
  let q = Event_queue.create () in
  for i = 1000 downto 1 do
    Event_queue.push q ~time:i i
  done;
  Alcotest.(check int) "length" 1000 (Event_queue.length q);
  let out = drain q in
  Alcotest.(check int) "drained all" 1000 (List.length out);
  let times = List.map fst out in
  Alcotest.(check (list int)) "sorted" (List.init 1000 (fun i -> i + 1)) times

let test_cancel_token () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:1 "keep1";
  let tok = Event_queue.push_token q ~time:2 "dropped" in
  Event_queue.push q ~time:3 "keep2";
  Event_queue.cancel q tok;
  Alcotest.(check int) "length excludes cancelled" 2 (Event_queue.length q);
  Alcotest.(check (list (pair int string)))
    "cancelled event never pops"
    [ (1, "keep1"); (3, "keep2") ]
    (drain q)

let test_cancel_idempotent () =
  let q = Event_queue.create () in
  let tok = Event_queue.push_token q ~time:1 0 in
  Event_queue.cancel q tok;
  Event_queue.cancel q tok;
  Alcotest.(check int) "double cancel counted once" 0 (Event_queue.length q);
  Alcotest.(check (option (pair int int))) "empty" None (Event_queue.pop q)

let test_cancel_after_fire_is_noop () =
  let q = Event_queue.create () in
  let tok = Event_queue.push_token q ~time:1 "a" in
  Alcotest.(check (option (pair int string))) "fires" (Some (1, "a"))
    (Event_queue.pop q);
  (* The token is spent; cancelling it must not corrupt the counts for
     later pushes. *)
  Event_queue.cancel q tok;
  Event_queue.push q ~time:2 "b";
  Alcotest.(check int) "later push still counted" 1 (Event_queue.length q);
  Alcotest.(check (option (pair int string))) "later push pops" (Some (2, "b"))
    (Event_queue.pop q)

let test_cancelled_head_peek () =
  let q = Event_queue.create () in
  let tok = Event_queue.push_token q ~time:1 "dead" in
  Event_queue.push q ~time:2 "live";
  Event_queue.cancel q tok;
  Alcotest.(check (option int)) "peek skips the dead head" (Some 2)
    (Event_queue.peek_time q)

let test_clear_invalidates_tokens () =
  let q = Event_queue.create () in
  let tok = Event_queue.push_token q ~time:1 0 in
  Event_queue.clear q;
  Event_queue.push q ~time:5 1;
  (* A token from before [clear] must not cancel anything pushed after. *)
  Event_queue.cancel q tok;
  Alcotest.(check int) "post-clear push unaffected" 1 (Event_queue.length q);
  Alcotest.(check (option (pair int int))) "pops fine" (Some (5, 1))
    (Event_queue.pop q)

(* Property: cancelling an arbitrary subset leaves exactly the live
   events, still in stable (time, seq) order. *)
let prop_cancel_subset =
  QCheck.Test.make ~name:"cancelled subset never surfaces" ~count:200
    QCheck.(list (pair (int_bound 50) bool))
    (fun entries ->
      let q = Event_queue.create () in
      let toks =
        List.mapi
          (fun i (t, cancel) -> (Event_queue.push_token q ~time:t (t, i), cancel))
          entries
      in
      List.iter (fun (tok, cancel) -> if cancel then Event_queue.cancel q tok) toks;
      let expected =
        List.mapi (fun i (t, cancel) -> ((t, i), cancel)) entries
        |> List.filter (fun (_, cancel) -> not cancel)
        |> List.map fst
        |> List.stable_sort (fun (t1, s1) (t2, s2) -> compare (t1, s1) (t2, s2))
      in
      Event_queue.length q = List.length expected
      && List.map snd (drain q) = expected)

(* Property: popping yields a stable sort of the pushed (time, seq)
   pairs, for arbitrary push sequences. *)
let prop_stable_sort =
  QCheck.Test.make ~name:"heap pop = stable sort by time" ~count:200
    QCheck.(list (int_bound 50))
    (fun times ->
      let q = Event_queue.create () in
      List.iteri (fun i t -> Event_queue.push q ~time:t (t, i)) times;
      let popped = List.map snd (drain q) in
      let expected =
        List.mapi (fun i t -> (t, i)) times
        |> List.stable_sort (fun (t1, _) (t2, _) -> compare t1 t2)
      in
      popped = expected)

let prop_interleaved_push_pop =
  QCheck.Test.make ~name:"interleaved push/pop maintains order" ~count:200
    QCheck.(list (pair bool (int_bound 50)))
    (fun ops ->
      let q = Event_queue.create () in
      let ok = ref true in
      let last_popped = ref min_int in
      List.iter
        (fun (is_pop, t) ->
          if is_pop then
            match Event_queue.pop q with
            | Some (time, _) ->
              (* Monotonicity only holds when no smaller time was pushed
                 after a pop; just check against the heap's own peek. *)
              (match Event_queue.peek_time q with
               | Some next -> if next < time then ok := false
               | None -> ());
              last_popped := time
            | None -> ()
          else Event_queue.push q ~time:t t)
        ops;
      !ok)

(* Property: [snapshot] is a faithful oracle for the pop order — for
   any interleaved push/cancel/pop history, the snapshot taken at the
   end equals what repeated [pop] then returns, and both are the stable
   (time, insertion-sequence) order of the surviving events. This is
   the total order the explorer's replay contract depends on: two runs
   of the same schedule must enumerate enabled timers identically. *)
let prop_snapshot_oracle =
  (* op: (kind, time) with kind 0 = push, 1 = push_token+cancel later,
     2 = pop *)
  QCheck.Test.make ~name:"snapshot = pop order = stable (time, seq)"
    ~count:300
    QCheck.(list (pair (int_bound 2) (int_bound 30)))
    (fun ops ->
      let q = Event_queue.create () in
      (* Model the queue as a list of live ((time, seq), payload). *)
      let seq = ref 0 in
      let live = ref [] in
      let pending_cancels = ref [] in
      let model_sorted () =
        List.stable_sort (fun (k1, _) (k2, _) -> compare k1 k2) !live
      in
      let ok = ref true in
      List.iter
        (fun (kind, t) ->
          match kind with
          | 0 ->
            let i = !seq in
            incr seq;
            Event_queue.push q ~time:t (t, i);
            live := !live @ [ ((t, i), (t, i)) ]
          | 1 ->
            let i = !seq in
            incr seq;
            let tok = Event_queue.push_token q ~time:t (t, i) in
            live := !live @ [ ((t, i), (t, i)) ];
            (* Cancel every other tokened event, immediately. *)
            if i mod 2 = 0 then begin
              Event_queue.cancel q tok;
              live := List.filter (fun (k, _) -> k <> (t, i)) !live
            end
            else pending_cancels := (tok, (t, i)) :: !pending_cancels
          | _ -> (
            match Event_queue.pop q with
            | None -> if !live <> [] then ok := false
            | Some (time, payload) -> (
              match model_sorted () with
              | [] -> ok := false
              | (k, v) :: _ ->
                if (time, payload) <> (fst k, v) then ok := false;
                live := List.filter (fun (k', _) -> k' <> k) !live)))
        ops;
      (* Late cancels: spend the remaining tokens in reverse order (some
         may already have fired via pop — must be no-ops). *)
      List.iter
        (fun (tok, k) ->
          Event_queue.cancel q tok;
          live := List.filter (fun (k', _) -> k' <> k) !live)
        !pending_cancels;
      let snap = Event_queue.snapshot q in
      let expected =
        List.map (fun ((t, _), v) -> (t, v)) (model_sorted ())
      in
      (* snapshot must not modify the queue, must equal the model, and
         must equal the subsequent drain exactly. *)
      !ok && snap = expected
      && Event_queue.length q = List.length expected
      && drain q = expected)

let suite =
  ( "event_queue",
    [
      Alcotest.test_case "empty queue" `Quick test_empty;
      Alcotest.test_case "time ordering" `Quick test_ordering;
      Alcotest.test_case "FIFO tie-break" `Quick test_fifo_ties;
      Alcotest.test_case "interleaved push/pop" `Quick test_interleaved;
      Alcotest.test_case "clear" `Quick test_clear;
      Alcotest.test_case "growth to 1000" `Quick test_growth;
      Alcotest.test_case "cancel a token" `Quick test_cancel_token;
      Alcotest.test_case "cancel is idempotent" `Quick test_cancel_idempotent;
      Alcotest.test_case "cancel after fire" `Quick test_cancel_after_fire_is_noop;
      Alcotest.test_case "peek skips cancelled head" `Quick test_cancelled_head_peek;
      Alcotest.test_case "clear invalidates tokens" `Quick
        test_clear_invalidates_tokens;
      QCheck_alcotest.to_alcotest prop_stable_sort;
      QCheck_alcotest.to_alcotest prop_interleaved_push_pop;
      QCheck_alcotest.to_alcotest prop_cancel_subset;
      QCheck_alcotest.to_alcotest prop_snapshot_oracle;
    ] )

(* Single-decree Basic-Paxos (Synod) under honest and adversarial
   schedules: the reference safety surface for everything else. *)

module Machine = Ci_machine.Machine
module Topology = Ci_machine.Topology
module Net_params = Ci_machine.Net_params
module Sim_time = Ci_engine.Sim_time
module Wire = Ci_consensus.Wire
module Single_decree = Ci_consensus.Single_decree
module Command = Ci_rsm.Command

let value client = { Wire.client; req_id = 0; cmd = Command.Nop }

let mk_cluster ?(n = 3) ?(seed = 1) () =
  let machine : Wire.t Machine.t =
    Machine.create ~seed ~topology:(Topology.single_socket (n + 1))
      ~params:Net_params.multicore ()
  in
  let nodes = Array.init n (fun i -> Machine.add_node machine ~core:i) in
  let ids = Array.map Machine.node_id nodes in
  let parts =
    Array.map
      (fun node ->
        Single_decree.create ~env:(Machine.env node) ~peers:ids
          ~timeout:(Sim_time.us 400) ())
      nodes
  in
  Array.iteri
    (fun i node ->
      let p = parts.(i) in
      Machine.set_handler node (fun ~src msg -> Single_decree.handle p ~src msg))
    nodes;
  (machine, parts)

let decisions parts =
  Array.to_list parts |> List.filter_map Single_decree.decision

let check_agreement parts =
  match decisions parts with
  | [] -> Alcotest.fail "nothing decided"
  | d :: rest ->
    List.iter
      (fun d' ->
        if not (Wire.value_equal d d') then Alcotest.fail "learners disagree")
      rest

let test_single_proposer () =
  let machine, parts = mk_cluster () in
  Single_decree.propose parts.(0) (value 100);
  Machine.run_until machine ~time:(Sim_time.ms 5);
  Alcotest.(check int) "all three decide" 3 (List.length (decisions parts));
  check_agreement parts;
  match Single_decree.decision parts.(1) with
  | Some v -> Alcotest.(check int) "decided the proposal" 100 v.Wire.client
  | None -> Alcotest.fail "no decision"

let test_duelling_proposers () =
  let machine, parts = mk_cluster ~seed:7 () in
  Single_decree.propose parts.(0) (value 100);
  Single_decree.propose parts.(1) (value 200);
  Single_decree.propose parts.(2) (value 300);
  Machine.run_until machine ~time:(Sim_time.ms 50);
  Alcotest.(check int) "all decide" 3 (List.length (decisions parts));
  check_agreement parts;
  (* Non-triviality: the decision is one of the proposals. *)
  match decisions parts with
  | v :: _ ->
    Alcotest.(check bool) "decided value was proposed" true
      (List.mem v.Wire.client [ 100; 200; 300 ])
  | [] -> assert false

let test_progress_with_slow_minority () =
  let machine, parts = mk_cluster () in
  Machine.slow_core machine ~core:2 ~from_:0 ~until_:(Sim_time.ms 100) ~factor:infinity;
  Single_decree.propose parts.(0) (value 100);
  Machine.run_until machine ~time:(Sim_time.ms 20);
  let decided =
    [ parts.(0); parts.(1) ] |> List.filter_map Single_decree.decision
  in
  Alcotest.(check int) "healthy majority decides" 2 (List.length decided)

let test_no_progress_without_majority () =
  let machine, parts = mk_cluster () in
  Machine.slow_core machine ~core:1 ~from_:0 ~until_:(Sim_time.ms 100) ~factor:infinity;
  Machine.slow_core machine ~core:2 ~from_:0 ~until_:(Sim_time.ms 100) ~factor:infinity;
  Single_decree.propose parts.(0) (value 100);
  Machine.run_until machine ~time:(Sim_time.ms 50);
  Alcotest.(check (option bool)) "no decision without a majority" None
    (Option.map (fun _ -> true) (Single_decree.decision parts.(0)))

let test_recovery_after_majority_returns () =
  let machine, parts = mk_cluster () in
  Machine.slow_core machine ~core:1 ~from_:0 ~until_:(Sim_time.ms 30) ~factor:infinity;
  Machine.slow_core machine ~core:2 ~from_:0 ~until_:(Sim_time.ms 30) ~factor:infinity;
  Single_decree.propose parts.(0) (value 100);
  Machine.run_until machine ~time:(Sim_time.ms 100);
  Alcotest.(check bool) "decides once the majority is back" true
    (Single_decree.decision parts.(0) <> None);
  check_agreement parts

(* Property: for random proposer subsets, timings and one random slow
   node, all deciders agree and decide a proposed value. *)
let prop_agreement_under_slowdowns =
  QCheck.Test.make ~name:"single-decree agreement under random slowdowns"
    ~count:60
    QCheck.(triple (int_bound 1000) (int_range 1 7) (int_bound 2))
    (fun (seed, proposer_mask, slow) ->
      let machine, parts = mk_cluster ~seed () in
      Machine.slow_core machine ~core:slow ~from_:0
        ~until_:(Sim_time.us (200 + (seed mod 700)))
        ~factor:50.;
      Array.iteri
        (fun i p ->
          if (proposer_mask lsr i) land 1 = 1 then
            Single_decree.propose p (value (100 + i)))
        parts;
      Machine.run_until machine ~time:(Sim_time.ms 60);
      let ds = decisions parts in
      let proposed =
        List.filter_map
          (fun i ->
            if (proposer_mask lsr i) land 1 = 1 then Some (100 + i) else None)
          [ 0; 1; 2 ]
      in
      ds <> []
      && List.for_all (fun d -> Wire.value_equal d (List.hd ds)) ds
      && List.for_all (fun (d : Wire.value) -> List.mem d.Wire.client proposed) ds)

let suite =
  ( "single_decree",
    [
      Alcotest.test_case "single proposer decides" `Quick test_single_proposer;
      Alcotest.test_case "duelling proposers agree" `Quick test_duelling_proposers;
      Alcotest.test_case "progress with slow minority" `Quick
        test_progress_with_slow_minority;
      Alcotest.test_case "no progress without majority" `Quick
        test_no_progress_without_majority;
      Alcotest.test_case "recovery after majority returns" `Quick
        test_recovery_after_majority_returns;
      QCheck_alcotest.to_alcotest prop_agreement_under_slowdowns;
    ] )

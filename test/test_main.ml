let () =
  Alcotest.run "consensus_inside"
    [
      Test_sim_time.suite;
      Test_rng.suite;
      Test_event_queue.suite;
      Test_sim.suite;
      Test_trace.suite;
      Test_topology.suite;
      Test_cpu.suite;
      Test_channel.suite;
      Test_obs.suite;
      Test_machine.suite;
      Test_command.suite;
      Test_kv_store.suite;
      Test_session_table.suite;
      Test_op_log.suite;
      Test_consistency.suite;
      Test_pn.suite;
      Test_wire.suite;
      Test_replica_core.suite;
      Test_single_decree.suite;
      Test_paxos_utility.suite;
      Test_onepaxos.suite;
      Test_multipaxos.suite;
      Test_twopc.suite;
      Test_mencius.suite;
      Test_cheap_paxos.suite;
      Test_stats.suite;
      Test_client.suite;
      Test_runner.suite;
      Test_experiments.suite;
      Test_pool.suite;
      Test_props.suite;
      Test_report.suite;
      List.hd Test_smoke.suites;
    ]

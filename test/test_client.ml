(* The closed-loop client: retries, fail-over, think time, budgets. *)

module Machine = Ci_machine.Machine
module Topology = Ci_machine.Topology
module Net_params = Ci_machine.Net_params
module Sim_time = Ci_engine.Sim_time
module Wire = Ci_consensus.Wire
module Command = Ci_rsm.Command
module Client = Ci_workload.Client
module Run_stats = Ci_workload.Run_stats

(* An echo "replica" that replies [Done] to every request, optionally
   dropping the first [drop] requests it sees. *)
let echo_node machine ?(drop = 0) () =
  let node = Machine.add_node machine ~core:0 in
  let dropped = ref 0 in
  let served = ref 0 in
  Machine.set_handler node (fun ~src msg ->
      match msg with
      | Wire.Request { req_id; _ } ->
        if !dropped < drop then incr dropped
        else begin
          incr served;
          Machine.send node ~dst:src (Wire.Reply { req_id; result = Command.Done })
        end
      | _ -> ());
  (node, served)

let mk ?(drop = 0) ?(echo_cores = 1) policy_f =
  let machine : Wire.t Machine.t =
    Machine.create ~topology:(Topology.single_socket (echo_cores + 1))
      ~params:Net_params.multicore ()
  in
  let echo, served = echo_node machine ~drop () in
  let client_node = Machine.add_node machine ~core:echo_cores in
  let stats = Run_stats.create ~bucket:Sim_time.(ms 10) in
  let policy = policy_f (Client.default_policy ~targets:[| Machine.node_id echo |]) in
  let client = Client.create ~env:(Machine.env client_node) ~policy ~stats in
  Machine.set_handler client_node (fun ~src msg -> Client.handle client ~src msg);
  (machine, client, stats, served)

let test_closed_loop () =
  let machine, client, stats, served = mk (fun p -> p) in
  Client.start client;
  Machine.run_until machine ~time:(Sim_time.ms 1);
  Alcotest.(check bool) "many requests completed" true (Client.completed client > 10);
  (* At the horizon at most one reply may still be in flight. *)
  let gap = !served - Client.completed client in
  Alcotest.(check bool) "served ~ completed" true (gap >= 0 && gap <= 1);
  Alcotest.(check int) "stats agree" (Client.completed client) (Run_stats.completed stats)

let test_max_requests () =
  let machine, client, _, _ = mk (fun p -> { p with Client.max_requests = Some 7 }) in
  Client.start client;
  Machine.run_until machine ~time:(Sim_time.ms 10);
  Alcotest.(check int) "stops at the budget" 7 (Client.completed client)

let test_think_time () =
  let machine, client, _, _ =
    mk (fun p -> { p with Client.think = Sim_time.ms 1; max_requests = Some 5 })
  in
  Client.start client;
  Machine.run_until machine ~time:(Sim_time.ms 3);
  Alcotest.(check bool)
    (Printf.sprintf "think time paces requests (%d done)" (Client.completed client))
    true
    (Client.completed client <= 3);
  Machine.run_until machine ~time:(Sim_time.ms 20);
  Alcotest.(check int) "eventually all" 5 (Client.completed client)

let test_retry_on_timeout () =
  let machine, client, _, _ =
    mk ~drop:2
      (fun p -> { p with Client.timeout = Sim_time.us 100; max_requests = Some 1 })
  in
  Client.start client;
  Machine.run_until machine ~time:(Sim_time.ms 5);
  Alcotest.(check int) "completed despite drops" 1 (Client.completed client);
  Alcotest.(check int) "two retries recorded" 2 (Client.retries client)

let test_latency_counts_from_first_send () =
  let machine, client, stats, _ =
    mk ~drop:1
      (fun p -> { p with Client.timeout = Sim_time.us 500; max_requests = Some 1 })
  in
  Client.start client;
  Machine.run_until machine ~time:(Sim_time.ms 5);
  match Run_stats.samples stats with
  | [ s ] ->
    Alcotest.(check bool) "latency includes the retry wait" true
      (s.Run_stats.replied_at - s.Run_stats.sent_at >= Sim_time.us 500)
  | _ -> Alcotest.fail "expected one sample"

let test_issued_and_acked () =
  let machine, client, _, _ =
    mk (fun p -> { p with Client.max_requests = Some 4; read_ratio = 0. })
  in
  Client.start client;
  Machine.run_until machine ~time:(Sim_time.ms 5);
  Alcotest.(check int) "issued log" 4 (List.length (Client.issued client));
  Alcotest.(check int) "acked writes" 4 (List.length (Client.acked_writes client));
  List.iter
    (fun (client_id, _) ->
      Alcotest.(check int) "acks carry the node id" (Client.node_id client) client_id)
    (Client.acked_writes client)

let test_reads_not_acked () =
  let machine, client, _, _ =
    mk (fun p -> { p with Client.max_requests = Some 10; read_ratio = 1. })
  in
  Client.start client;
  Machine.run_until machine ~time:(Sim_time.ms 5);
  Alcotest.(check int) "all reads completed" 10 (Client.completed client);
  Alcotest.(check int) "reads never in the ack list" 0
    (List.length (Client.acked_writes client))

let test_failover_rotates_targets () =
  (* Two echo replicas; the first one drops everything: the client must
     succeed via the second. *)
  let machine : Wire.t Machine.t =
    Machine.create ~topology:(Topology.single_socket 4) ~params:Net_params.multicore ()
  in
  let dead = Machine.add_node machine ~core:0 in
  Machine.set_handler dead (fun ~src:_ _ -> ());
  let live2 = Machine.add_node machine ~core:1 in
  Machine.set_handler live2 (fun ~src msg ->
      match msg with
      | Wire.Request { req_id; _ } ->
        Machine.send live2 ~dst:src (Wire.Reply { req_id; result = Command.Done })
      | _ -> ());
  let client_node = Machine.add_node machine ~core:2 in
  let stats = Run_stats.create ~bucket:Sim_time.(ms 10) in
  let policy =
    {
      (Client.default_policy ~targets:[| Machine.node_id dead; Machine.node_id live2 |]) with
      Client.timeout = Sim_time.us 200;
      max_requests = Some 3;
    }
  in
  let client = Client.create ~env:(Machine.env client_node) ~policy ~stats in
  Machine.set_handler client_node (fun ~src msg -> Client.handle client ~src msg);
  Client.start client;
  Machine.run_until machine ~time:(Sim_time.ms 10);
  Alcotest.(check int) "completed via fail-over" 3 (Client.completed client);
  Alcotest.(check bool) "retried at least once" true (Client.retries client >= 1)

let test_empty_targets_rejected () =
  let machine : Wire.t Machine.t =
    Machine.create ~topology:(Topology.single_socket 2) ~params:Net_params.multicore ()
  in
  let node = Machine.add_node machine ~core:0 in
  let stats = Run_stats.create ~bucket:Sim_time.(ms 10) in
  try
    ignore
      (Client.create ~env:(Machine.env node)
         ~policy:(Client.default_policy ~targets:[||])
         ~stats);
    Alcotest.fail "empty targets accepted"
  with Invalid_argument _ -> ()

let suite =
  ( "client",
    [
      Alcotest.test_case "closed loop" `Quick test_closed_loop;
      Alcotest.test_case "max_requests budget" `Quick test_max_requests;
      Alcotest.test_case "think time" `Quick test_think_time;
      Alcotest.test_case "retry on timeout" `Quick test_retry_on_timeout;
      Alcotest.test_case "latency from first send" `Quick
        test_latency_counts_from_first_send;
      Alcotest.test_case "issued and acked bookkeeping" `Quick test_issued_and_acked;
      Alcotest.test_case "reads not acked" `Quick test_reads_not_acked;
      Alcotest.test_case "fail-over rotates targets" `Quick test_failover_rotates_targets;
      Alcotest.test_case "empty targets rejected" `Quick test_empty_targets_rejected;
    ] )

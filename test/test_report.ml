module E = Ci_workload.Experiments
module Report = Ci_workload.Report

let series =
  [
    {
      E.label = "alpha";
      points =
        [
          { E.x = 1; throughput = 100.; latency_us = 10.5; leader_util = 0.25 };
          { E.x = 2; throughput = 200.; latency_us = 11.25; leader_util = 0.5 };
        ];
    };
    {
      E.label = "beta, with comma";
      points =
        [ { E.x = 1; throughput = 50.; latency_us = 9.; leader_util = 0.125 } ];
    };
  ]

let lines s = String.split_on_char '\n' (String.trim s)

let test_series_csv () =
  let csv = Report.series_csv series in
  match lines csv with
  | [ header; r1; r2; r3 ] ->
    Alcotest.(check string) "header" "label,x,throughput_ops,latency_us,leader_util" header;
    Alcotest.(check string) "row 1" "alpha,1,100.0,10.50,0.250" r1;
    Alcotest.(check string) "row 2" "alpha,2,200.0,11.25,0.500" r2;
    Alcotest.(check string) "comma label quoted" "\"beta, with comma\",1,50.0,9.00,0.125" r3
  | other -> Alcotest.failf "expected 4 lines, got %d" (List.length other)

let test_bars_csv () =
  let csv =
    Report.bars_csv [ { E.label = "x"; clients = 3; throughput = 1234.5 } ]
  in
  Alcotest.(check (list string)) "rows"
    [ "label,clients,throughput_ops"; "x,3,1234.5" ]
    (lines csv)

let test_timelines_csv () =
  let csv =
    Report.timelines_csv
      [ { E.label = "t"; bucket_ms = 10.; rates = [| 5.; 15. |]; leader_changes = 0; acceptor_changes = 0 } ]
  in
  Alcotest.(check (list string)) "rows"
    [ "label,t_ms,ops_per_sec"; "t,0,5.0"; "t,10,15.0" ]
    (lines csv)

let test_netchar_csv () =
  let csv =
    Report.netchar_csv
      [ { E.setting = "mc"; trans_us = 0.5; ping_us = 1.7; prop_us = 0.35; ratio = 1.4286 } ]
  in
  Alcotest.(check (list string)) "rows"
    [ "setting,trans_us,ping_us,prop_us,ratio"; "mc,0.500,1.700,0.350,1.4286" ]
    (lines csv)

let test_latency_csv () =
  let csv =
    Report.latency_csv
      [
        {
          E.protocol = "1paxos";
          latency_us = 15.2;
          paper_latency_us = 16.;
          throughput_1c = 65800.;
          leader_util = 0.75;
        };
      ]
  in
  Alcotest.(check (list string)) "rows"
    [
      "protocol,latency_us,paper_latency_us,throughput_1c,leader_util";
      "1paxos,15.20,16.00,65800.0,0.750";
    ]
    (lines csv)

let contains haystack needle =
  let h = String.length haystack and n = String.length needle in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_gnuplot_series () =
  let gp = Report.gnuplot_series ~title:"fig8" ~xlabel:"clients" ~csv:"fig8.csv" series in
  Alcotest.(check bool) "mentions csv" true (contains gp "fig8.csv");
  Alcotest.(check bool) "mentions series" true (contains gp "alpha");
  Alcotest.(check bool) "plots columns 2:3" true (contains gp "using 2:3")

let test_write_file () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "ci_report_test" in
  let path = Report.write_file ~dir ~name:"x.csv" "a,b\n1,2\n" in
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Alcotest.(check string) "round trip" "a,b" line;
  Sys.remove path

let suite =
  ( "report",
    [
      Alcotest.test_case "series csv" `Quick test_series_csv;
      Alcotest.test_case "bars csv" `Quick test_bars_csv;
      Alcotest.test_case "timelines csv" `Quick test_timelines_csv;
      Alcotest.test_case "netchar csv" `Quick test_netchar_csv;
      Alcotest.test_case "latency csv" `Quick test_latency_csv;
      Alcotest.test_case "gnuplot script" `Quick test_gnuplot_series;
      Alcotest.test_case "write file" `Quick test_write_file;
    ] )

(* PaxosUtility: the configuration consensus of Sections 5.2/5.3. *)

module Machine = Ci_machine.Machine
module Topology = Ci_machine.Topology
module Net_params = Ci_machine.Net_params
module Sim_time = Ci_engine.Sim_time
module Wire = Ci_consensus.Wire
module Paxos_utility = Ci_consensus.Paxos_utility

let seed_entries =
  [
    Wire.Leader_change { leader = 0; acceptor = 1 };
    Wire.Acceptor_change { acceptor = 1; carried = [] };
  ]

let mk_cluster ?(n = 3) ?(seed = 1) ?(seed_log = seed_entries) () =
  let machine : Wire.t Machine.t =
    Machine.create ~seed ~topology:(Topology.single_socket (n + 1))
      ~params:Net_params.multicore ()
  in
  let nodes = Array.init n (fun i -> Machine.add_node machine ~core:i) in
  let ids = Array.map Machine.node_id nodes in
  let applied = Array.make n [] in
  let pus =
    Array.mapi
      (fun i node ->
        Paxos_utility.create ~env:(Machine.env node) ~peers:ids
          ~timeout:(Sim_time.us 400)
          ~seed:seed_log ~on_entry:(fun ~cseq entry ->
            applied.(i) <- (cseq, entry) :: applied.(i)))
      nodes
  in
  Array.iteri
    (fun i node ->
      let pu = pus.(i) in
      Machine.set_handler node (fun ~src msg ->
          ignore (Paxos_utility.handle pu ~src msg)))
    nodes;
  (machine, pus, applied)

let test_seeding () =
  let _, pus, applied = mk_cluster () in
  Array.iter
    (fun pu ->
      Alcotest.(check int) "next slot after seeds" 2 (Paxos_utility.next_cseq pu);
      Alcotest.(check (option int)) "leader" (Some 0) (Paxos_utility.current_leader pu);
      Alcotest.(check (option int)) "acceptor" (Some 1)
        (Paxos_utility.current_acceptor pu))
    pus;
  Array.iter
    (fun entries -> Alcotest.(check int) "on_entry fired per seed" 2 (List.length entries))
    applied

let test_propose_success () =
  let machine, pus, applied = mk_cluster () in
  let outcome = ref None in
  Paxos_utility.propose pus.(2)
    (Wire.Leader_change { leader = 2; acceptor = 1 })
    (fun ~ok -> outcome := Some ok);
  Machine.run_until machine ~time:(Sim_time.ms 5);
  Alcotest.(check (option bool)) "proposal succeeded" (Some true) !outcome;
  Array.iteri
    (fun i entries ->
      Alcotest.(check int)
        (Printf.sprintf "node %d applied the new entry" i)
        3 (List.length entries))
    applied;
  Array.iter
    (fun pu ->
      Alcotest.(check (option int)) "leader updated everywhere" (Some 2)
        (Paxos_utility.current_leader pu))
    pus

let test_competing_proposals () =
  let machine, pus, _ = mk_cluster ~seed:5 () in
  let ok1 = ref None and ok2 = ref None in
  Paxos_utility.propose pus.(1)
    (Wire.Leader_change { leader = 1; acceptor = 1 })
    (fun ~ok -> ok1 := Some ok);
  Paxos_utility.propose pus.(2)
    (Wire.Leader_change { leader = 2; acceptor = 1 })
    (fun ~ok -> ok2 := Some ok);
  Machine.run_until machine ~time:(Sim_time.ms 50);
  (match !ok1, !ok2 with
   | Some a, Some b ->
     Alcotest.(check bool) "exactly one slot winner" true (a <> b)
   | _ -> Alcotest.fail "competing proposals did not both resolve");
  (* The slot's decision is the same on every node. *)
  let entry_at pu = List.assoc_opt 2 (Paxos_utility.entries pu) in
  match Array.to_list pus |> List.filter_map entry_at with
  | e :: rest ->
    List.iter
      (fun e' ->
        Alcotest.(check bool) "agreement on slot 2" true (Wire.config_entry_equal e e'))
      rest
  | [] -> Alcotest.fail "slot 2 undecided"

let test_sequential_proposals () =
  let machine, pus, _ = mk_cluster () in
  let done2 = ref false in
  Paxos_utility.propose pus.(0)
    (Wire.Acceptor_change { acceptor = 2; carried = [] })
    (fun ~ok ->
      Alcotest.(check bool) "first ok" true ok;
      Paxos_utility.propose pus.(0)
        (Wire.Acceptor_change { acceptor = 1; carried = [] })
        (fun ~ok ->
          Alcotest.(check bool) "second ok" true ok;
          done2 := true));
  Machine.run_until machine ~time:(Sim_time.ms 10);
  Alcotest.(check bool) "both chosen" true !done2;
  Alcotest.(check int) "log advanced twice" 4 (Paxos_utility.next_cseq pus.(0))

let test_propose_while_proposing_rejected () =
  let machine, pus, _ = mk_cluster () in
  Paxos_utility.propose pus.(0)
    (Wire.Acceptor_change { acceptor = 2; carried = [] })
    (fun ~ok:_ -> ());
  Alcotest.(check bool) "proposing" true (Paxos_utility.proposing pus.(0));
  (try
     Paxos_utility.propose pus.(0)
       (Wire.Acceptor_change { acceptor = 0; carried = [] })
       (fun ~ok:_ -> ());
     Alcotest.fail "second in-flight proposal accepted"
   with Invalid_argument _ -> ());
  Machine.run_until machine ~time:(Sim_time.ms 5)

let test_sync_catches_up () =
  let machine, pus, applied = mk_cluster () in
  (* Freeze node 2 while a config change happens, then let it sync. *)
  Machine.slow_core machine ~core:2 ~from_:0 ~until_:(Sim_time.ms 10) ~factor:infinity;
  Paxos_utility.propose pus.(0)
    (Wire.Acceptor_change { acceptor = 2; carried = [] })
    (fun ~ok -> Alcotest.(check bool) "majority suffices" true ok);
  Machine.run_until machine ~time:(Sim_time.ms 15);
  let synced = ref false in
  Paxos_utility.sync pus.(2) (fun () -> synced := true);
  Machine.run_until machine ~time:(Sim_time.ms 25);
  Alcotest.(check bool) "sync completed" true !synced;
  Alcotest.(check (option int)) "node 2 caught up" (Some 2)
    (Paxos_utility.current_acceptor pus.(2));
  Alcotest.(check int) "on_entry fired in order" 3 (List.length applied.(2))

let test_progress_with_slow_minority () =
  let machine, pus, _ = mk_cluster () in
  Machine.slow_core machine ~core:1 ~from_:0 ~until_:(Sim_time.ms 100) ~factor:infinity;
  let outcome = ref None in
  Paxos_utility.propose pus.(0)
    (Wire.Leader_change { leader = 0; acceptor = 2 })
    (fun ~ok -> outcome := Some ok);
  Machine.run_until machine ~time:(Sim_time.ms 20);
  Alcotest.(check (option bool)) "chose despite one slow node" (Some true) !outcome

let test_entries_applied_in_order () =
  let machine, pus, applied = mk_cluster () in
  let rec chain i =
    if i < 5 then
      Paxos_utility.propose pus.(0)
        (Wire.Acceptor_change { acceptor = 1 + (i mod 2); carried = [] })
        (fun ~ok ->
          Alcotest.(check bool) "chain link chosen" true ok;
          chain (i + 1))
  in
  chain 0;
  Machine.run_until machine ~time:(Sim_time.ms 20);
  Array.iteri
    (fun i log ->
      let cseqs = List.rev_map fst log in
      Alcotest.(check (list int))
        (Printf.sprintf "node %d applied slots in order" i)
        [ 0; 1; 2; 3; 4; 5; 6 ] cseqs)
    applied

let suite =
  ( "paxos_utility",
    [
      Alcotest.test_case "seed entries applied" `Quick test_seeding;
      Alcotest.test_case "propose succeeds" `Quick test_propose_success;
      Alcotest.test_case "competing proposals: one winner" `Quick
        test_competing_proposals;
      Alcotest.test_case "sequential proposals" `Quick test_sequential_proposals;
      Alcotest.test_case "in-flight proposal exclusivity" `Quick
        test_propose_while_proposing_rejected;
      Alcotest.test_case "sync catches a frozen node up" `Quick test_sync_catches_up;
      Alcotest.test_case "progress with slow minority" `Quick
        test_progress_with_slow_minority;
      Alcotest.test_case "entries applied in slot order" `Quick
        test_entries_applied_in_order;
    ] )

(* The SPSC ring under its real contract: one producer domain, one
   consumer domain. The properties the runtime's correctness rests on —
   FIFO order, no loss, no duplication, occupancy never exceeding the
   slot count — must hold for every (slots, items) shape, so they are
   qcheck properties, not examples. *)

module Spsc = Ci_runtime.Spsc

(* ----- single-domain edge cases ------------------------------------------ *)

let test_create_rejects () =
  Alcotest.check_raises "slots=0" (Invalid_argument "Spsc.create: slots must be >= 1")
    (fun () -> ignore (Spsc.create ~slots:0));
  Alcotest.check_raises "slots=-3" (Invalid_argument "Spsc.create: slots must be >= 1")
    (fun () -> ignore (Spsc.create ~slots:(-3)))

let test_empty_pop () =
  let q = Spsc.create ~slots:4 in
  Alcotest.(check (option int)) "empty pop" None (Spsc.try_pop q);
  Alcotest.(check int) "length" 0 (Spsc.length q)

let test_full_push_fails () =
  let q = Spsc.create ~slots:3 in
  Alcotest.(check bool) "push 1" true (Spsc.try_push q 1);
  Alcotest.(check bool) "push 2" true (Spsc.try_push q 2);
  Alcotest.(check bool) "push 3" true (Spsc.try_push q 3);
  Alcotest.(check bool) "ring full" false (Spsc.try_push q 4);
  Alcotest.(check int) "length" 3 (Spsc.length q);
  Alcotest.(check int) "peak" 3 (Spsc.occupancy_peak q);
  Alcotest.(check (option int)) "fifo head" (Some 1) (Spsc.try_pop q);
  Alcotest.(check bool) "slot freed" true (Spsc.try_push q 4);
  Alcotest.(check (option int)) "then 2" (Some 2) (Spsc.try_pop q);
  Alcotest.(check (option int)) "then 3" (Some 3) (Spsc.try_pop q);
  Alcotest.(check (option int)) "then 4" (Some 4) (Spsc.try_pop q);
  Alcotest.(check (option int)) "empty again" None (Spsc.try_pop q)

let test_wraparound () =
  (* Cursors keep increasing past the slot count; the ring must stay
     FIFO across many wraps. *)
  let q = Spsc.create ~slots:2 in
  for i = 1 to 1_000 do
    assert (Spsc.try_push q i);
    Alcotest.(check (option int)) "wraps" (Some i) (Spsc.try_pop q)
  done;
  Alcotest.(check int) "pushes" 1_000 (Spsc.pushes q);
  Alcotest.(check int) "pops" 1_000 (Spsc.pops q)

(* ----- cross-domain properties ------------------------------------------- *)

(* Push [0 .. n-1] from a producer domain while this domain consumes;
   return everything popped, in order. Producers spin on a full ring
   (with cpu_relax) — the test must terminate because the consumer
   keeps draining. *)
let run_pair ~slots ~n ~consumer_stall =
  let q = Spsc.create ~slots in
  let producer =
    Domain.spawn (fun () ->
        for i = 0 to n - 1 do
          while not (Spsc.try_push q i) do
            Domain.cpu_relax ()
          done
        done)
  in
  let got = ref [] in
  let received = ref 0 in
  while !received < n do
    (match Spsc.try_pop q with
     | Some v ->
       got := v :: !got;
       incr received;
       (* An occasionally slow consumer forces the ring through full
          states, exercising the back-pressure path. *)
       if consumer_stall > 0 && !received mod 7 = 0 then
         for _ = 1 to consumer_stall do
           Domain.cpu_relax ()
         done
     | None -> Domain.cpu_relax ())
  done;
  Domain.join producer;
  (q, List.rev !got)

let pair_shape =
  QCheck.make
    ~print:(fun (slots, n, stall) ->
      Printf.sprintf "slots=%d items=%d stall=%d" slots n stall)
    QCheck.Gen.(
      let* slots = int_range 1 16 in
      let* n = int_range 0 400 in
      let* stall = int_bound 50 in
      return (slots, n, stall))

let prop_fifo_no_loss_no_dup =
  QCheck.Test.make ~name:"spsc: FIFO, lossless, duplicate-free across domains"
    ~count:25 pair_shape (fun (slots, n, stall) ->
      let q, got = run_pair ~slots ~n ~consumer_stall:stall in
      if got <> List.init n Fun.id then
        QCheck.Test.fail_reportf "order/loss/dup: got %d items"
          (List.length got);
      if Spsc.pushes q <> n || Spsc.pops q <> n then
        QCheck.Test.fail_reportf "counters: %d pushed, %d popped"
          (Spsc.pushes q) (Spsc.pops q);
      true)

let prop_bounded_occupancy =
  QCheck.Test.make ~name:"spsc: occupancy never exceeds the slot count"
    ~count:25 pair_shape (fun (slots, n, stall) ->
      let q, _ = run_pair ~slots ~n ~consumer_stall:stall in
      if Spsc.occupancy_peak q > slots then
        QCheck.Test.fail_reportf "peak %d > %d slots" (Spsc.occupancy_peak q)
          slots;
      if Spsc.length q <> 0 then
        QCheck.Test.fail_reportf "drained queue reports length %d"
          (Spsc.length q);
      true)

let suite =
  ( "spsc",
    [
      Alcotest.test_case "create rejects slots < 1" `Quick test_create_rejects;
      Alcotest.test_case "pop on empty" `Quick test_empty_pop;
      Alcotest.test_case "push on full fails, pop frees" `Quick test_full_push_fails;
      Alcotest.test_case "FIFO across many wraps" `Quick test_wraparound;
      QCheck_alcotest.to_alcotest prop_fifo_no_loss_no_dup;
      QCheck_alcotest.to_alcotest prop_bounded_occupancy;
    ] )

module Sim = Ci_engine.Sim
module Cpu = Ci_machine.Cpu
module Channel = Ci_machine.Channel

let mk ?(capacity = 7) ?(prop = 10) ?(send_cost = 5) ?(recv_cost = 5) deliver =
  let sim = Sim.create () in
  let src = Cpu.create sim ~id:0 and dst = Cpu.create sim ~id:1 in
  let ch =
    Channel.create sim ~capacity ~prop ~send_cost ~recv_cost ~src_cpu:src
      ~dst_cpu:dst ~deliver:(fun ~seq:_ v -> deliver sim v)
  in
  (sim, ch)

let test_delivery () =
  let got = ref [] in
  let sim, ch = mk (fun _ v -> got := v :: !got) in
  Channel.send ch ~seq:0 42;
  Sim.run sim;
  Alcotest.(check (list int)) "delivered" [ 42 ] !got;
  Alcotest.(check int) "sent counter" 1 (Channel.sent ch);
  Alcotest.(check int) "delivered counter" 1 (Channel.delivered ch)

let test_fifo () =
  let got = ref [] in
  let sim, ch = mk (fun _ v -> got := v :: !got) in
  for i = 1 to 20 do
    Channel.send ch ~seq:0 i
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "in order" (List.init 20 (fun i -> i + 1))
    (List.rev !got)

let test_delivery_timing () =
  (* One message: send completes at send_cost, arrives prop later, recv
     charges recv_cost: delivery at send+prop+recv. *)
  let at = ref (-1) in
  let sim, ch = mk ~send_cost:5 ~prop:10 ~recv_cost:7 (fun sim _ -> at := Sim.now sim) in
  Channel.send ch ~seq:0 1;
  Sim.run sim;
  Alcotest.(check int) "t = send + prop + recv" 22 !at

let test_blocking_capacity () =
  let sim, ch = mk ~capacity:2 (fun _ _ -> ()) in
  for i = 1 to 5 do
    Channel.send ch ~seq:0 i
  done;
  Alcotest.(check int) "sends beyond capacity blocked" 3 (Channel.blocked_events ch);
  Sim.run sim;
  Alcotest.(check int) "all delivered eventually" 5 (Channel.delivered ch);
  Alcotest.(check int) "outbox drained" 0 (Channel.outbox_length ch)

let test_ping_formula () =
  (* The Section 3 experiment: a 1-slot queue spaces consecutive sends
     by trans + prop + recv + prop = 2*trans + 2*prop when recv=trans. *)
  let trans = 500 and prop = 550 in
  let last = ref 0 in
  let k = 100 in
  let sim, ch =
    mk ~capacity:1 ~send_cost:trans ~recv_cost:trans ~prop (fun sim _ ->
        last := Sim.now sim)
  in
  for i = 1 to k do
    Channel.send ch ~seq:0 i
  done;
  Sim.run sim;
  let per_msg = float_of_int !last /. float_of_int k in
  let expected = float_of_int ((2 * trans) + (2 * prop)) in
  Alcotest.(check bool)
    (Printf.sprintf "per-message %.0f ≈ %.0f" per_msg expected)
    true
    (abs_float (per_msg -. expected) < expected *. 0.05)

let test_unbounded_rate () =
  (* With ample slots the sender is transmission-limited: messages
     complete transmission every send_cost. *)
  let sim, ch = mk ~capacity:1000 ~send_cost:5 (fun _ _ -> ()) in
  for i = 1 to 100 do
    Channel.send ch ~seq:0 i
  done;
  Sim.run sim;
  Alcotest.(check int) "all sent" 100 (Channel.sent ch);
  Alcotest.(check int) "no blocking" 0 (Channel.blocked_events ch)

let test_occupancy_peak () =
  let sim, ch = mk ~capacity:4 (fun _ _ -> ()) in
  Alcotest.(check int) "starts at zero" 0 (Channel.occupancy_peak ch);
  for i = 1 to 3 do
    Channel.send ch ~seq:0 i
  done;
  Sim.run sim;
  (* Three in-flight messages at most: the peak saw them, and it never
     exceeds the slot count. *)
  Alcotest.(check bool) "peak within [1, capacity]" true
    (Channel.occupancy_peak ch >= 1 && Channel.occupancy_peak ch <= 4)

let test_outbox_peak_and_stall () =
  let sim, ch = mk ~capacity:1 ~prop:50 (fun _ _ -> ()) in
  for i = 1 to 6 do
    Channel.send ch ~seq:0 i
  done;
  Alcotest.(check int) "backlog behind one slot" 5 (Channel.outbox_length ch);
  Sim.run sim;
  Alcotest.(check int) "peak recorded the worst backlog" 5 (Channel.outbox_peak ch);
  Alcotest.(check bool) "credit stalls accumulated" true (Channel.credit_stall_ns ch > 0);
  Alcotest.(check int) "all delivered" 6 (Channel.delivered ch)

let test_no_stall_when_uncontended () =
  let sim, ch = mk ~capacity:100 (fun _ _ -> ()) in
  for i = 1 to 5 do
    Channel.send ch ~seq:0 i
  done;
  Sim.run sim;
  Alcotest.(check int) "no credit stalls" 0 (Channel.credit_stall_ns ch);
  Alcotest.(check int) "no outbox backlog" 0 (Channel.outbox_peak ch)

let test_invalid_capacity () =
  try
    ignore (mk ~capacity:0 (fun _ _ -> ()));
    Alcotest.fail "capacity 0 accepted"
  with Invalid_argument _ -> ()

let suite =
  ( "channel",
    [
      Alcotest.test_case "basic delivery" `Quick test_delivery;
      Alcotest.test_case "FIFO order" `Quick test_fifo;
      Alcotest.test_case "delivery timing" `Quick test_delivery_timing;
      Alcotest.test_case "capacity back-pressure" `Quick test_blocking_capacity;
      Alcotest.test_case "1-slot ping = 2t+2p (Section 3)" `Quick test_ping_formula;
      Alcotest.test_case "unbounded transmission rate" `Quick test_unbounded_rate;
      Alcotest.test_case "occupancy peak" `Quick test_occupancy_peak;
      Alcotest.test_case "outbox peak and credit stall" `Quick
        test_outbox_peak_and_stall;
      Alcotest.test_case "no stall when uncontended" `Quick
        test_no_stall_when_uncontended;
      Alcotest.test_case "invalid capacity" `Quick test_invalid_capacity;
    ] )

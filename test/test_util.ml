(* Shared helpers for protocol-level tests: build a small cluster on a
   simulated machine, drive it with hand-injected client requests, and
   check the paper's safety properties at the end. *)

module Machine = Ci_machine.Machine
module Topology = Ci_machine.Topology
module Net_params = Ci_machine.Net_params
module Sim_time = Ci_engine.Sim_time
module Wire = Ci_consensus.Wire
module Command = Ci_rsm.Command
module Onepaxos = Ci_consensus.Onepaxos
module Multipaxos = Ci_consensus.Multipaxos
module Twopc = Ci_consensus.Twopc
module Replica_core = Ci_consensus.Replica_core
module Consistency = Ci_rsm.Consistency

type 'p harness = {
  machine : Wire.t Machine.t;
  replica_ids : int array;
  replicas : 'p array;
  client : Wire.t Machine.node;
  mutable replies : (int * Command.result * int) list; (* req, result, time *)
  issued : (int, Command.t) Hashtbl.t;
}

let reply_ids h = List.rev_map (fun (r, _, _) -> r) h.replies

let wait_replies h ~n ~upto =
  Machine.run_until h.machine ~time:upto;
  List.length h.replies >= n

let mk_harness ~n ~topology ~make ~handle ~seed =
  let machine = Machine.create ~seed ~topology ~params:Net_params.multicore () in
  let replica_nodes = Array.init n (fun i -> Machine.add_node machine ~core:i) in
  let replica_ids = Array.map Machine.node_id replica_nodes in
  let replicas = Array.map (fun node -> make node replica_ids) replica_nodes in
  Array.iteri
    (fun i node ->
      let r = replicas.(i) in
      Machine.set_handler node (fun ~src msg -> handle r ~src msg))
    replica_nodes;
  let client = Machine.add_node machine ~core:n in
  let h =
    { machine; replica_ids; replicas; client; replies = []; issued = Hashtbl.create 64 }
  in
  Machine.set_handler client (fun ~src:_ msg ->
      match msg with
      | Wire.Reply { req_id; result } ->
        h.replies <- (req_id, result, Machine.now machine) :: h.replies
      | _ -> ());
  h

let onepaxos_cluster ?(n = 3) ?(seed = 42) ?(tweak = fun c -> c) () =
  let replicas_ref = ref [||] in
  let h =
    mk_harness ~n ~topology:(Topology.single_socket (n + 2)) ~seed
      ~make:(fun node ids ->
        let config = tweak (Onepaxos.default_config ~replicas:ids) in
        Onepaxos.create ~env:(Machine.env node) ~config)
      ~handle:Onepaxos.handle
  in
  replicas_ref := h.replicas;
  Array.iter Onepaxos.start h.replicas;
  h

let multipaxos_cluster ?(n = 3) ?(seed = 42) ?(tweak = fun c -> c) () =
  let h =
    mk_harness ~n ~topology:(Topology.single_socket (n + 2)) ~seed
      ~make:(fun node ids ->
        let config = tweak (Multipaxos.default_config ~replicas:ids) in
        Multipaxos.create ~env:(Machine.env node) ~config)
      ~handle:Multipaxos.handle
  in
  Array.iter Multipaxos.start h.replicas;
  h

let twopc_cluster ?(n = 3) ?(seed = 42) ?(tweak = fun c -> c) () =
  mk_harness ~n ~topology:(Topology.single_socket (n + 2)) ~seed
    ~make:(fun node ids ->
      let config = tweak (Twopc.default_config ~replicas:ids) in
      Twopc.create ~env:(Machine.env node) ~config)
    ~handle:Twopc.handle

let send h ?(dst = 0) ?(relaxed = false) ~req_id cmd =
  Hashtbl.replace h.issued req_id cmd;
  Machine.send h.client ~dst:h.replica_ids.(dst)
    (Wire.Request { req_id; cmd; relaxed_read = relaxed })

let run_ms h ms = Machine.run_until h.machine ~time:(Sim_time.ms ms)

let slow_core h ~core ~from_ms ~until_ms ~factor =
  Machine.slow_core h.machine ~core ~from_:(Sim_time.ms from_ms)
    ~until_:(Sim_time.ms until_ms) ~factor

(* The paper's two safety properties across a harness run. *)
let check_safety ~cores h =
  let client_id = Machine.node_id h.client in
  let proposed (v : Wire.value) =
    Ci_consensus.Mencius.is_skip_value v
    || v.Wire.client = client_id
       &&
       match Hashtbl.find_opt h.issued v.Wire.req_id with
       | Some cmd -> Command.equal cmd v.Wire.cmd
       | None -> false
  in
  let views = List.map Replica_core.view (Array.to_list cores) in
  let report =
    Consistency.check ~equal:Wire.value_equal ~proposed
      ~acked:
        (List.filter_map
           (fun (req_id, _, _) ->
             match Hashtbl.find_opt h.issued req_id with
             | Some cmd when not (Command.is_read cmd) -> Some (client_id, req_id)
             | Some _ | None -> None)
           h.replies)
      ~key_of:Wire.value_key views
  in
  if not (Consistency.ok report) then
    Alcotest.failf "safety violated: %a" Consistency.pp report

let onepaxos_cores h = Array.map Onepaxos.replica_core h.replicas
let multipaxos_cores h = Array.map Multipaxos.replica_core h.replicas
let twopc_cores h = Array.map Twopc.replica_core h.replicas

module Mencius = Ci_consensus.Mencius
module Cheap_paxos = Ci_consensus.Cheap_paxos

let mencius_cluster ?(n = 3) ?(seed = 42) ?(tweak = fun c -> c) () =
  mk_harness ~n ~topology:(Topology.single_socket (n + 2)) ~seed
    ~make:(fun node ids ->
      let config = tweak (Mencius.default_config ~replicas:ids) in
      Mencius.create ~env:(Machine.env node) ~config)
    ~handle:Mencius.handle

let cheap_cluster ?(n = 3) ?(seed = 42) ?(tweak = fun c -> c) () =
  let h =
    mk_harness ~n ~topology:(Topology.single_socket (n + 2)) ~seed
      ~make:(fun node ids ->
        let config = tweak (Cheap_paxos.default_config ~replicas:ids) in
        Cheap_paxos.create ~env:(Machine.env node) ~config)
      ~handle:Cheap_paxos.handle
  in
  Array.iter Cheap_paxos.start h.replicas;
  h

let mencius_cores h = Array.map Mencius.replica_core h.replicas
let cheap_cores h = Array.map Cheap_paxos.replica_core h.replicas

module Pool = Ci_workload.Pool
module Runner = Ci_workload.Runner
module E = Ci_workload.Experiments
module Sim_time = Ci_engine.Sim_time

(* ----- parallel_map = Array.map ----------------------------------------- *)

let prop_matches_array_map jobs =
  QCheck.Test.make
    ~name:(Printf.sprintf "parallel_map = Array.map (jobs=%d)" jobs)
    ~count:100
    QCheck.(pair (list small_int) (int_range 1 4))
    (fun (xs, chunk) ->
      let xs = Array.of_list xs in
      let f x = (x * 7919) + 13 in
      Pool.parallel_map ~chunk ~jobs f xs = Array.map f xs)

exception Boom of int

let prop_exception_propagates jobs =
  QCheck.Test.make
    ~name:(Printf.sprintf "exceptions re-raised in caller (jobs=%d)" jobs)
    ~count:50
    QCheck.(int_range 1 40)
    (fun n ->
      (* Every element raises, so whichever worker finishes first the
         caller must observe some Boom payload from the input. *)
      let xs = Array.init n (fun i -> i) in
      match Pool.parallel_map ~jobs (fun i -> raise (Boom i)) xs with
      | _ -> false
      | exception Boom i -> i >= 0 && i < n)

let test_single_failure () =
  List.iter
    (fun jobs ->
      let xs = Array.init 64 (fun i -> i) in
      match
        Pool.parallel_map ~jobs
          (fun i -> if i = 37 then raise (Boom i) else i)
          xs
      with
      | _ -> Alcotest.failf "jobs=%d: exception swallowed" jobs
      | exception Boom 37 -> ())
    [ 1; 2; 8 ]

let test_invalid_args () =
  let xs = [| 1; 2 |] in
  (try
     ignore (Pool.parallel_map ~jobs:0 Fun.id xs);
     Alcotest.fail "jobs=0 accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Pool.parallel_map ~chunk:0 ~jobs:2 Fun.id xs);
    Alcotest.fail "chunk=0 accepted"
  with Invalid_argument _ -> ()

let test_empty_and_singleton () =
  Alcotest.(check (array int))
    "empty" [||]
    (Pool.parallel_map ~jobs:8 (fun x -> x + 1) [||]);
  Alcotest.(check (array int))
    "singleton" [| 42 |]
    (Pool.parallel_map ~jobs:8 (fun x -> x + 1) [| 41 |])

let test_default_jobs_env () =
  Alcotest.(check bool)
    "positive" true
    (Pool.default_jobs () >= 1)

(* ----- determinism across jobs ------------------------------------------- *)

(* The satellite requirement: a figures section's rendered report is
   byte-identical at jobs=1 vs jobs=4. latency_table is the cheapest
   section that still runs three full protocol simulations. *)
let test_figures_deterministic () =
  let render jobs =
    Format.asprintf "%a" E.pp_latency_table
      (E.latency_table ~jobs ~duration:(Sim_time.ms 5) ())
  in
  Alcotest.(check string) "latency section, jobs=1 vs jobs=4" (render 1) (render 4)

let test_parallel_runs_match_serial () =
  (* Same batch of real simulation specs through the pool at several
     job counts: the measured results must be identical, element by
     element, to the sequential run. *)
  let specs =
    Array.init 6 (fun i ->
        {
          (Runner.default_spec ~protocol:Runner.Onepaxos
             ~placement:(Runner.Dedicated { n_replicas = 3; n_clients = 3 }))
          with
          Runner.seed = 100 + i;
          duration = Sim_time.ms 5;
          warmup = Sim_time.ms 1;
          drain = Sim_time.ms 1;
        })
  in
  let fingerprint (r : Runner.result) =
    (r.Runner.sim_events, r.Runner.commits, r.Runner.messages, r.Runner.throughput)
  in
  let serial = Array.map (fun s -> fingerprint (Runner.run s)) specs in
  List.iter
    (fun jobs ->
      let got =
        Array.map fingerprint (Pool.parallel_map ~jobs Runner.run specs)
      in
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d matches serial" jobs)
        true (got = serial))
    [ 2; 4 ]

(* ----- allocation regression guard ---------------------------------------- *)

(* The engine self-benchmark's fixed run sat at ~58 words/event before
   the hot-path allocation diet (BENCH_engine.json baseline:
   10712473 words / 183436 events); the diet's acceptance floor is a
   >= 25% reduction, i.e. <= 44. Measured after: ~37. The budget leaves
   headroom for GC jitter while still failing if a boxing regression
   sneaks back into the per-event path. *)
let test_alloc_words_per_event_budget () =
  let spec =
    Runner.default_spec ~protocol:Runner.Onepaxos
      ~placement:(Runner.Dedicated { n_replicas = 3; n_clients = 13 })
  in
  (* Warm: first run pays one-off table/ring growth. *)
  ignore (Runner.run spec);
  let b0 = Gc.allocated_bytes () in
  let r = Runner.run spec in
  let bytes = Gc.allocated_bytes () -. b0 in
  let words_per_event =
    bytes /. float_of_int (Sys.word_size / 8) /. float_of_int r.Runner.sim_events
  in
  Alcotest.(check bool)
    (Printf.sprintf "%.1f words/event <= 44 budget" words_per_event)
    true
    (words_per_event <= 44.)

let suite =
  ( "pool",
    [
      QCheck_alcotest.to_alcotest (prop_matches_array_map 1);
      QCheck_alcotest.to_alcotest (prop_matches_array_map 2);
      QCheck_alcotest.to_alcotest (prop_matches_array_map 8);
      QCheck_alcotest.to_alcotest (prop_exception_propagates 1);
      QCheck_alcotest.to_alcotest (prop_exception_propagates 2);
      QCheck_alcotest.to_alcotest (prop_exception_propagates 8);
      Alcotest.test_case "single failing element" `Quick test_single_failure;
      Alcotest.test_case "invalid jobs/chunk" `Quick test_invalid_args;
      Alcotest.test_case "empty and singleton" `Quick test_empty_and_singleton;
      Alcotest.test_case "default_jobs positive" `Quick test_default_jobs_env;
      Alcotest.test_case "figures byte-identical jobs=1 vs 4" `Quick
        test_figures_deterministic;
      Alcotest.test_case "parallel runs match serial" `Quick
        test_parallel_runs_match_serial;
      Alcotest.test_case "alloc words/event budget" `Quick
        test_alloc_words_per_event_budget;
    ] )

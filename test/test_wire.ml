module Wire = Ci_consensus.Wire
module Pn = Ci_consensus.Pn
module Command = Ci_rsm.Command

let v ?(client = 1) ?(req_id = 2) cmd = { Wire.client; req_id; cmd }

let test_value_equal () =
  let a = v (Command.Put { key = 1; data = 2 }) in
  Alcotest.(check bool) "equal" true
    (Wire.value_equal a (v (Command.Put { key = 1; data = 2 })));
  Alcotest.(check bool) "different cmd" false
    (Wire.value_equal a (v (Command.Put { key = 1; data = 3 })));
  Alcotest.(check bool) "different req" false
    (Wire.value_equal a (v ~req_id:9 (Command.Put { key = 1; data = 2 })));
  Alcotest.(check bool) "different client" false
    (Wire.value_equal a (v ~client:9 (Command.Put { key = 1; data = 2 })))

let test_value_key () =
  Alcotest.(check (pair int int)) "key" (1, 2) (Wire.value_key (v Command.Nop))

let test_config_entry_equal () =
  let lc = Wire.Leader_change { leader = 1; acceptor = 2 } in
  Alcotest.(check bool) "lc equal" true
    (Wire.config_entry_equal lc (Leader_change { leader = 1; acceptor = 2 }));
  Alcotest.(check bool) "lc differs" false
    (Wire.config_entry_equal lc (Leader_change { leader = 2; acceptor = 2 }));
  let ac c = Wire.Acceptor_change { acceptor = 3; carried = c } in
  Alcotest.(check bool) "ac equal with carried" true
    (Wire.config_entry_equal (ac [ (0, v Command.Nop) ]) (ac [ (0, v Command.Nop) ]));
  Alcotest.(check bool) "ac differs in carried" false
    (Wire.config_entry_equal (ac [ (0, v Command.Nop) ]) (ac []));
  Alcotest.(check bool) "ac differs in carried value" false
    (Wire.config_entry_equal
       (ac [ (0, v Command.Nop) ])
       (ac [ (1, v Command.Nop) ]));
  Alcotest.(check bool) "lc <> ac" false (Wire.config_entry_equal lc (ac []))

let test_kind_total () =
  (* Every constructor renders and reports a distinct kind. *)
  let pn = Pn.make ~round:1 ~owner:0 in
  let value = v Command.Nop in
  let msgs =
    [
      Wire.Request { req_id = 1; cmd = Command.Nop; relaxed_read = false };
      Reply { req_id = 1; result = Command.Done };
      Forward { v = value };
      Op_prepare_request { pn; must_be_fresh = true };
      Op_prepare_response { pn; accepted = [] };
      Op_abandon { hpn = pn };
      Op_accept_request { inst = 0; pn; v = value };
      Op_learn { inst = 0; v = value };
      Op_accept_batch { base = 0; pn; vs = [| value |] };
      Op_learn_batch { base = 0; vs = [| value |] };
      Pu_prepare { cseq = 0; pn };
      Pu_promise { cseq = 0; pn; accepted = None; chosen_suffix = [] };
      Pu_reject { cseq = 0; pn; chosen_suffix = [] };
      Pu_accept { cseq = 0; pn; entry = Leader_change { leader = 0; acceptor = 1 } };
      Pu_accepted { cseq = 0; pn };
      Pu_nack { cseq = 0; pn };
      Pu_learn { cseq = 0; entry = Leader_change { leader = 0; acceptor = 1 } };
      Pu_read { token = 0; from_ = 0 };
      Pu_read_reply { token = 0; chosen_suffix = [] };
      Ls_req { token = 0; from_ = 0 };
      Ls_reply { token = 0; decisions = [] };
      Bp_prepare { inst = 0; pn };
      Bp_promise { inst = 0; pn; accepted = None };
      Bp_reject { inst = 0; pn };
      Bp_accept { inst = 0; pn; v = value };
      Bp_learn { inst = 0; pn; v = value };
      Mn_accept { inst = 0; v = Some value };
      Mn_learn { inst = 1; v = None };
      Cp_accept { epoch = 0; inst = 0; v = value };
      Cp_accepted { epoch = 0; inst = 0; v = value };
      Cp_learn { epoch = 0; inst = 0; v = value };
      Cp_state { epoch = 1; accepted = [ (0, value) ] };
      Mp_prepare { pn; low = 0 };
      Mp_promise { pn; accepted = [] };
      Mp_reject { pn };
      Mp_accept { inst = 0; pn; v = value };
      Mp_learn { inst = 0; pn; v = value };
      Mp_accept_batch { base = 0; pn; vs = [| value |] };
      Mp_learn_batch { base = 0; pn; vs = [| value |] };
      Tp_prepare { inst = 0; v = value };
      Tp_ack { inst = 0 };
      Tp_commit { inst = 0; v = value };
      Tp_commit_ack { inst = 0 };
      Tp_rollback { inst = 0 };
    ]
  in
  let kinds = List.map Wire.kind msgs in
  Alcotest.(check int) "all kinds distinct" (List.length msgs)
    (List.length (List.sort_uniq compare kinds));
  List.iter
    (fun m ->
      let s = Format.asprintf "%a" Wire.pp m in
      Alcotest.(check bool) "renders non-empty" true (String.length s > 0))
    msgs

let test_pp_value () =
  Alcotest.(check string) "value rendering" "c1#2:nop"
    (Format.asprintf "%a" Wire.pp_value (v Command.Nop))

let suite =
  ( "wire",
    [
      Alcotest.test_case "value equality" `Quick test_value_equal;
      Alcotest.test_case "value key" `Quick test_value_key;
      Alcotest.test_case "config entry equality" `Quick test_config_entry_equal;
      Alcotest.test_case "kinds total and distinct" `Quick test_kind_total;
      Alcotest.test_case "value printing" `Quick test_pp_value;
    ] )

(* Sharded multi-group consensus: the partition function, the
   cross-shard 2PC atomicity checker, and end-to-end sharded runs on
   the simulator — including one shard losing its active acceptor while
   the others keep committing. The live half is in [Test_runtime]. *)

module Shard = Ci_consensus.Shard
module Atomicity = Ci_rsm.Atomicity
module Command = Ci_rsm.Command
module Consistency = Ci_rsm.Consistency
module Runner = Ci_workload.Runner
module Sim_time = Ci_engine.Sim_time
module Failover = Ci_obs.Failover

(* ----- partition function -------------------------------------------------- *)

(* Totality + stability: every key lands in exactly one group in
   [0, groups), and the mapping is a pure function — same group on
   every call. That is the whole routing contract: replicas, routers
   and the checker all derive ownership independently, so they agree
   only because the function does. *)
let qcheck_partition_total_stable =
  QCheck.Test.make ~count:1000
    ~name:"group_of_key: total stable partition"
    QCheck.(pair (int_bound 1_000_000) (int_range 1 16))
    (fun (key, groups) ->
      let g = Shard.group_of_key ~groups key in
      g >= 0 && g < groups
      && Shard.group_of_key ~groups key = g
      && (groups <> 1 || g = 0))

let test_partition_spreads () =
  (* Not a uniformity proof, only an anti-degeneracy pin: over the
     first 1000 keys at 4 groups, every group owns something. *)
  let seen = Array.make 4 0 in
  for key = 0 to 999 do
    let g = Shard.group_of_key ~groups:4 key in
    seen.(g) <- seen.(g) + 1
  done;
  Array.iteri
    (fun g n ->
      Alcotest.(check bool)
        (Printf.sprintf "group %d owns some keys (got %d)" g n)
        true (n > 0))
    seen

let test_groups_of () =
  let groups = 4 in
  let key_in g =
    (* Find a key owned by group g. *)
    let rec go k =
      if Shard.group_of_key ~groups k = g then k else go (k + 1)
    in
    go 0
  in
  let a = key_in 1 and b = key_in 3 in
  Alcotest.(check (list int)) "single put" [ 1 ]
    (Shard.groups_of ~groups (Command.Put { key = a; data = 0 }));
  Alcotest.(check (list int)) "cross-shard mput, sorted distinct" [ 1; 3 ]
    (Shard.groups_of ~groups (Command.Mput { k1 = b; d1 = 0; k2 = a; d2 = 0 }));
  Alcotest.(check (list int)) "same-shard mput collapses" [ 1 ]
    (Shard.groups_of ~groups (Command.Mput { k1 = a; d1 = 0; k2 = a; d2 = 1 }));
  Alcotest.(check (list int)) "nop routes to 0" [ 0 ]
    (Shard.groups_of ~groups Command.Nop)

(* ----- atomicity checker (deterministic unit cases) ------------------------ *)

let txn ~txn:id ~outcome parts =
  {
    Atomicity.txn = id;
    client = 9;
    req_id = id;
    parts = List.map (fun (g, k) -> (g, k, 1)) parts;
    outcome;
  }

let prep ~txn:id ~key = Command.Prep { txn = id; key; data = 1 }
let fin ~txn:id ~key ~commit = Command.Fin { txn = id; key; commit }

let test_atomicity_commit_abort () =
  (* txn 1 committed on both groups, txn 2 aborted on both: clean. *)
  let decided =
    [
      ( 0,
        [
          prep ~txn:1 ~key:10;
          fin ~txn:1 ~key:10 ~commit:true;
          prep ~txn:2 ~key:11;
          fin ~txn:2 ~key:11 ~commit:false;
        ] );
      ( 1,
        [
          prep ~txn:1 ~key:20;
          fin ~txn:1 ~key:20 ~commit:true;
          fin ~txn:2 ~key:21 ~commit:false;
        ] );
    ]
  in
  let txns =
    [
      txn ~txn:1 ~outcome:Atomicity.Committed [ (0, 10); (1, 20) ];
      txn ~txn:2 ~outcome:Atomicity.Aborted [ (0, 11); (1, 21) ];
    ]
  in
  let r = Atomicity.check ~decided ~txns ~acked:[ (9, 1) ] in
  if not (Atomicity.ok r) then Alcotest.failf "clean run: %a" Atomicity.pp r;
  Alcotest.(check int) "committed" 1 r.Atomicity.committed;
  Alcotest.(check int) "aborted" 1 r.Atomicity.aborted;
  Alcotest.(check int) "checked" 2 r.Atomicity.checked_txns

let test_atomicity_violations () =
  let committed = txn ~txn:1 ~outcome:Atomicity.Committed [ (0, 10); (1, 20) ] in
  let violates name ~decided ~txns ~acked pred =
    let r = Atomicity.check ~decided ~txns ~acked in
    Alcotest.(check bool) (name ^ " flagged") true (not (Atomicity.ok r));
    Alcotest.(check bool)
      (name ^ " violation kind")
      true
      (List.exists pred r.Atomicity.violations)
  in
  (* One group commits, the other aborts: the atomicity breach. *)
  violates "mixed decision"
    ~decided:
      [
        (0, [ prep ~txn:1 ~key:10; fin ~txn:1 ~key:10 ~commit:true ]);
        (1, [ prep ~txn:1 ~key:20; fin ~txn:1 ~key:20 ~commit:false ]);
      ]
    ~txns:[ committed ] ~acked:[]
    (function Atomicity.Mixed_decision _ -> true | _ -> false);
  (* Coordinator says committed, a participating group never decided it. *)
  violates "missing commit"
    ~decided:
      [
        (0, [ prep ~txn:1 ~key:10; fin ~txn:1 ~key:10 ~commit:true ]);
        (1, [ prep ~txn:1 ~key:20 ]);
      ]
    ~txns:[ committed ] ~acked:[]
    (function Atomicity.Missing_commit { group = 1; _ } -> true | _ -> false);
  (* A commit decided without its prepare in the same log. *)
  violates "fin without prep"
    ~decided:
      [
        (0, [ prep ~txn:1 ~key:10; fin ~txn:1 ~key:10 ~commit:true ]);
        (1, [ fin ~txn:1 ~key:20 ~commit:true ]);
      ]
    ~txns:[ committed ] ~acked:[]
    (function Atomicity.Fin_without_prep { group = 1; _ } -> true | _ -> false);
  (* Client acked, but no coordinator resolved the transaction. *)
  violates "acked unresolved" ~decided:[ (0, []); (1, []) ]
    ~txns:[ txn ~txn:1 ~outcome:Atomicity.Unresolved [ (0, 10); (1, 20) ] ]
    ~acked:[ (9, 1) ]
    (function Atomicity.Acked_unresolved _ -> true | _ -> false);
  (* Unresolved but unacked: in flight at cutoff, never a violation. *)
  let r =
    Atomicity.check
      ~decided:[ (0, [ prep ~txn:1 ~key:10 ]); (1, []) ]
      ~txns:[ txn ~txn:1 ~outcome:Atomicity.Unresolved [ (0, 10); (1, 20) ] ]
      ~acked:[]
  in
  if not (Atomicity.ok r) then Alcotest.failf "unresolved tolerated: %a" Atomicity.pp r

(* ----- end-to-end sharded simulator runs ----------------------------------- *)

let sharded_spec protocol =
  {
    (Runner.default_spec ~protocol
       ~placement:(Runner.Dedicated { n_replicas = 3; n_clients = 4 }))
    with
    Runner.groups = 2;
    cross_shard_ratio = 0.2;
    duration = Sim_time.ms 20;
  }

let check_sharded what (r : Runner.result) =
  if not (Consistency.ok r.Runner.consistency) then
    Alcotest.failf "%s: %a" what Consistency.pp r.Runner.consistency;
  Alcotest.(check bool) (what ^ ": commits > 0") true (r.Runner.commits > 0);
  match r.Runner.atomicity with
  | None -> Alcotest.fail (what ^ ": no atomicity report at groups=2")
  | Some a ->
    if not (Atomicity.ok a) then Alcotest.failf "%s: %a" what Atomicity.pp a;
    Alcotest.(check bool)
      (what ^ ": cross-shard txns committed")
      true (a.Atomicity.committed > 0)

(* Deterministic (fixed seed, virtual time): both outcomes of the 2PC
   occur in one run — most transactions commit, and the lock-conflict
   abort path fires too — and the checker signs off on all of them. *)
let test_sim_sharded_commit_and_abort () =
  let r = Runner.run (sharded_spec Runner.Onepaxos) in
  check_sharded "1paxos sharded" r;
  match r.Runner.atomicity with
  | Some a ->
    Alcotest.(check bool)
      (Printf.sprintf "some txns aborted on lock conflicts (got %d)"
         a.Atomicity.aborted)
      true
      (a.Atomicity.aborted > 0)
  | None -> assert false

let test_sim_sharded_multipaxos () =
  check_sharded "multipaxos sharded" (Runner.run (sharded_spec Runner.Multipaxos))

(* Crash one shard's active acceptor mid-run: group 0's acceptor lives
   at node 1 (group-major placement, second member). The other shard
   must keep committing through the outage, and once the acceptor is
   replaced the whole deployment must come back — consistent per group
   and atomic across them. *)
let test_sim_shard_acceptor_crash () =
  let spec =
    {
      (sharded_spec Runner.Onepaxos) with
      Runner.duration = Sim_time.ms 40;
      nemesis =
        {
          Ci_faults.seed = 7;
          faults =
            [
              Ci_faults.Crash
                { node = 1; at = Sim_time.ms 15; down_for = Some (Sim_time.ms 10) };
            ];
        };
    }
  in
  let r = Runner.run spec in
  check_sharded "shard acceptor crash" r;
  Alcotest.(check bool) "acceptor was replaced" true (r.Runner.acceptor_changes > 0);
  match r.Runner.failover with
  | None -> Alcotest.fail "no failover analysis"
  | Some f ->
    (* Commits never stop globally: the unaffected shard rides through
       the other shard's outage. *)
    Alcotest.(check bool) "commits before fault" true (f.Failover.completions_before > 0);
    Alcotest.(check bool) "commits after fault" true (f.Failover.completions_after > 0)

(* A fault node index only valid under sharding: node 4 exists with
   groups=2 x 3 replicas (it is group 1's second member). *)
let test_sim_other_shard_acceptor_crash () =
  let spec =
    {
      (sharded_spec Runner.Onepaxos) with
      Runner.duration = Sim_time.ms 40;
      nemesis =
        {
          Ci_faults.seed = 7;
          faults =
            [
              Ci_faults.Crash
                { node = 4; at = Sim_time.ms 15; down_for = Some (Sim_time.ms 10) };
            ];
        };
    }
  in
  check_sharded "other shard's acceptor crash" (Runner.run spec)

(* ----- spec validation ------------------------------------------------------ *)

let test_validation () =
  let expect_invalid name spec =
    match Runner.run spec with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: accepted a malformed spec" name
  in
  let ok = sharded_spec Runner.Onepaxos in
  expect_invalid "groups = 0" { ok with Runner.groups = 0 };
  expect_invalid "ratio < 0" { ok with Runner.cross_shard_ratio = -0.1 };
  expect_invalid "ratio > 1" { ok with Runner.cross_shard_ratio = 1.5 };
  (* Sharding needs dedicated placement: joint has no spare nodes for
     routers. *)
  expect_invalid "joint placement"
    {
      (Runner.default_spec ~protocol:Runner.Onepaxos
         ~placement:(Runner.Joint { n_nodes = 6 }))
      with
      Runner.groups = 2;
    }

let suite =
  ( "shard",
    [
      QCheck_alcotest.to_alcotest qcheck_partition_total_stable;
      Alcotest.test_case "partition is not degenerate" `Quick test_partition_spreads;
      Alcotest.test_case "groups_of: sorted distinct owners" `Quick test_groups_of;
      Alcotest.test_case "atomicity checker: clean commit + abort" `Quick
        test_atomicity_commit_abort;
      Alcotest.test_case "atomicity checker: violations flagged" `Quick
        test_atomicity_violations;
      Alcotest.test_case "sim sharded 1paxos: commit and abort paths, atomic" `Quick
        test_sim_sharded_commit_and_abort;
      Alcotest.test_case "sim sharded multipaxos: consistent and atomic" `Quick
        test_sim_sharded_multipaxos;
      Alcotest.test_case "crash shard 0's acceptor: others keep committing" `Quick
        test_sim_shard_acceptor_crash;
      Alcotest.test_case "crash shard 1's acceptor: stays atomic" `Quick
        test_sim_other_shard_acceptor_crash;
      Alcotest.test_case "spec validation" `Quick test_validation;
    ] )

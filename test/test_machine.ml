module Machine = Ci_machine.Machine
module Topology = Ci_machine.Topology
module Net_params = Ci_machine.Net_params
module Sim_time = Ci_engine.Sim_time

let params =
  {
    Net_params.send_cost = 5;
    recv_cost = 5;
    handler_cost = 10;
    prop_intra = 20;
    prop_inter = 100;
    queue_slots = 7;
    coalesce = 1;
  }

let mk () : string Machine.t =
  Machine.create ~topology:Topology.opteron_48 ~params ()

let test_node_ids_sequential () =
  let m = mk () in
  let a = Machine.add_node m ~core:0 in
  let b = Machine.add_node m ~core:1 in
  Alcotest.(check int) "first id" 0 (Machine.node_id a);
  Alcotest.(check int) "second id" 1 (Machine.node_id b);
  Alcotest.(check int) "count" 2 (Machine.n_nodes m);
  Alcotest.(check int) "core of b" 1 (Machine.core_of b)

let test_send_and_receive () =
  let m = mk () in
  let a = Machine.add_node m ~core:0 in
  let b = Machine.add_node m ~core:1 in
  let got = ref [] in
  Machine.set_handler b (fun ~src msg -> got := (src, msg, Machine.now m) :: !got);
  Machine.send a ~dst:(Machine.node_id b) "hello";
  Machine.run m;
  match !got with
  | [ (src, msg, at) ] ->
    Alcotest.(check int) "src" 0 src;
    Alcotest.(check string) "payload" "hello" msg;
    (* send 5 + prop_intra 20 + recv 5 + handler 10 = 40 *)
    Alcotest.(check int) "intra-socket delivery time" 40 at
  | other -> Alcotest.failf "expected one delivery, got %d" (List.length other)

let test_inter_socket_slower () =
  let m = mk () in
  let a = Machine.add_node m ~core:0 in
  let b = Machine.add_node m ~core:6 (* next socket *) in
  let at = ref 0 in
  Machine.set_handler b (fun ~src:_ _ -> at := Machine.now m);
  Machine.send a ~dst:(Machine.node_id b) "x";
  Machine.run m;
  (* send 5 + prop_inter 100 + recv 5 + handler 10 = 120 *)
  Alcotest.(check int) "inter-socket delivery time" 120 !at

let test_self_send_charges_handler_only () =
  let m = mk () in
  let a = Machine.add_node m ~core:0 in
  let at = ref (-1) in
  Machine.set_handler a (fun ~src msg ->
      Alcotest.(check int) "src is self" 0 src;
      Alcotest.(check string) "payload" "loop" msg;
      at := Machine.now m);
  Machine.send a ~dst:0 "loop";
  Machine.run m;
  Alcotest.(check int) "handler cost only" 10 !at;
  Alcotest.(check int) "not a boundary-crossing message" 0 (Machine.total_messages m)

let test_counters () =
  let m = mk () in
  let a = Machine.add_node m ~core:0 in
  let b = Machine.add_node m ~core:1 in
  Machine.set_handler b (fun ~src:_ _ -> ());
  for _ = 1 to 5 do
    Machine.send a ~dst:1 "m"
  done;
  Machine.run m;
  Alcotest.(check int) "sent" 5 (Machine.messages_sent m ~node:0);
  Alcotest.(check int) "received" 5 (Machine.messages_received m ~node:1);
  Alcotest.(check int) "total" 5 (Machine.total_messages m);
  Alcotest.(check int) "b sent nothing" 0 (Machine.messages_sent m ~node:1)

let test_send_many_order () =
  let m = mk () in
  let a = Machine.add_node m ~core:0 in
  let b = Machine.add_node m ~core:1 in
  let c = Machine.add_node m ~core:2 in
  let arrivals = ref [] in
  let record name = fun ~src:_ _ -> arrivals := (name, Machine.now m) :: !arrivals in
  Machine.set_handler b (record "b");
  Machine.set_handler c (record "c");
  Machine.send_many a ~dsts:[ 1; 2 ] "m";
  Machine.run m;
  (match List.rev !arrivals with
   | [ ("b", tb); ("c", tc) ] ->
     (* The second transmission only starts after the first: staggered
        by one send cost. *)
     Alcotest.(check int) "staggered transmissions" 5 (tc - tb)
   | other ->
     Alcotest.failf "unexpected arrivals: %s"
       (String.concat "," (List.map fst other)))

let test_timers_and_compute () =
  let m = mk () in
  let a = Machine.add_node m ~core:0 in
  let log = ref [] in
  Machine.after a ~delay:100 (fun () -> log := ("timer", Machine.now m) :: !log);
  Machine.compute a ~cost:30 (fun () -> log := ("compute", Machine.now m) :: !log);
  Machine.run m;
  Alcotest.(check (list (pair string int)))
    "compute occupies the core; the timer is free"
    [ ("compute", 30); ("timer", 100) ]
    (List.rev !log)

let test_shared_core_serializes () =
  let m = mk () in
  let a = Machine.add_node m ~core:0 in
  let b = Machine.add_node m ~core:5 in
  let c = Machine.add_node m ~core:5 in
  (* b and c share core 5: their receptions serialize. *)
  let times = ref [] in
  Machine.set_handler b (fun ~src:_ _ -> times := Machine.now m :: !times);
  Machine.set_handler c (fun ~src:_ _ -> times := Machine.now m :: !times);
  Machine.send a ~dst:(Machine.node_id b) "x";
  Machine.send a ~dst:(Machine.node_id c) "y";
  Machine.run m;
  match List.rev !times with
  | [ t1; t2 ] ->
    (* Arrivals are staggered by the sender (5) and then serialized on
       the shared receiving core (recv 5 + handler 10 each). *)
    Alcotest.(check bool)
      (Printf.sprintf "second waits for first (%d then %d)" t1 t2)
      true
      (t2 - t1 >= 15)
  | other -> Alcotest.failf "expected 2 deliveries, got %d" (List.length other)

let test_slow_core_delays_handler () =
  let m = mk () in
  let a = Machine.add_node m ~core:0 in
  let b = Machine.add_node m ~core:1 in
  Machine.slow_core m ~core:1 ~from_:0 ~until_:10_000 ~factor:10.;
  let at = ref 0 in
  Machine.set_handler b (fun ~src:_ _ -> at := Machine.now m);
  Machine.send a ~dst:1 "x";
  Machine.run m;
  (* send 5 + prop 20 + 10x (recv 5 + handler 10) = 175 *)
  Alcotest.(check int) "reception stretched" 175 !at

let test_bad_core () =
  let m = mk () in
  try
    ignore (Machine.add_node m ~core:48);
    Alcotest.fail "out-of-range core accepted"
  with Invalid_argument _ -> ()

let test_tracer () =
  let m = mk () in
  let a = Machine.add_node m ~core:0 in
  let b = Machine.add_node m ~core:1 in
  Machine.set_handler b (fun ~src:_ _ -> ());
  let seen = ref [] in
  Machine.set_tracer m
    (Some (fun ~time ~src ~dst msg -> seen := (time, src, dst, msg) :: !seen));
  Machine.send a ~dst:1 "traced";
  Machine.send a ~dst:0 "local-not-traced";
  Machine.run m;
  (match !seen with
   | [ (t, 0, 1, "traced") ] ->
     Alcotest.(check bool) "at delivery time" true (t > 0)
   | other -> Alcotest.failf "expected 1 traced delivery, got %d" (List.length other));
  Machine.set_tracer m None;
  Machine.send a ~dst:1 "untraced";
  Machine.run m;
  Alcotest.(check int) "tracer cleared" 1 (List.length !seen)

let test_self_delivery_counters () =
  let m = mk () in
  let a = Machine.add_node m ~core:0 in
  let b = Machine.add_node m ~core:1 in
  Machine.set_handler a (fun ~src:_ _ -> ());
  Machine.set_handler b (fun ~src:_ _ -> ());
  Machine.send a ~dst:0 "self";
  Machine.send a ~dst:0 "self";
  Machine.send a ~dst:1 "remote";
  Machine.run m;
  Alcotest.(check int) "self counter per node" 2 (Machine.self_delivered m ~node:0);
  Alcotest.(check int) "none on the peer" 0 (Machine.self_delivered m ~node:1);
  Alcotest.(check int) "machine-wide self total" 2 (Machine.self_delivered_total m);
  (* Self-sends never leak into the boundary-crossing counters. *)
  Alcotest.(check int) "sent excludes self" 1 (Machine.messages_sent m ~node:0);
  Alcotest.(check int) "sent total excludes self" 1 (Machine.messages_sent_total m);
  Alcotest.(check int) "delivered excludes self" 1 (Machine.total_messages m);
  match Machine.io_snapshot m with
  | [| (1, 0, 2); (0, 1, 0) |] -> ()
  | snap ->
    Alcotest.failf "unexpected io snapshot: %s"
      (String.concat ";"
         (Array.to_list
            (Array.map (fun (s, r, f) -> Printf.sprintf "(%d,%d,%d)" s r f) snap)))

let test_observer_events () =
  let m = mk () in
  let a = Machine.add_node m ~core:0 in
  let b = Machine.add_node m ~core:1 in
  Machine.set_handler a (fun ~src:_ _ -> ());
  Machine.set_handler b (fun ~src:_ _ -> ());
  let ring = Ci_obs.Event.create_ring ~capacity:1024 () in
  Machine.set_observer ~msg_label:(fun s -> s) m (Some ring);
  Machine.send a ~dst:1 "ping";
  Machine.send a ~dst:0 "loop";
  Machine.after a ~delay:500 (fun () -> ());
  Machine.run m;
  let events = Ci_obs.Event.events ring in
  let find k = List.filter (fun e -> Ci_obs.Event.kind_name e = k) events in
  (match (find "send", find "recv") with
   | [ s ], [ r ] ->
     (match (s.Ci_obs.Event.kind, r.Ci_obs.Event.kind) with
      | Ci_obs.Event.Send { seq = s_seq; src = 0; dst = 1 },
        Ci_obs.Event.Recv { seq = r_seq; src = 0; dst = 1 } ->
        Alcotest.(check int) "seq links send to recv" s_seq r_seq
      | _ -> Alcotest.fail "wrong send/recv endpoints");
     Alcotest.(check string) "message label" "ping" s.Ci_obs.Event.label;
     Alcotest.(check int) "send on source core" 0 s.Ci_obs.Event.core;
     Alcotest.(check int) "recv on destination core" 1 r.Ci_obs.Event.core
   | s, r -> Alcotest.failf "expected 1 send + 1 recv, got %d + %d"
               (List.length s) (List.length r));
  Alcotest.(check int) "self event" 1 (List.length (find "self"));
  Alcotest.(check int) "timer event" 1 (List.length (find "timer"));
  Alcotest.(check bool) "busy spans recorded" true (List.length (find "busy") > 0);
  (* Detaching stops recording. *)
  Machine.set_observer m None;
  Ci_obs.Event.clear ring;
  Machine.send a ~dst:1 "silent";
  Machine.run m;
  Alcotest.(check int) "observer detached" 0 (Ci_obs.Event.length ring)

let test_note_phase () =
  let m = mk () in
  let a = Machine.add_node m ~core:0 in
  (* No observer: a silent no-op. *)
  Machine.note_phase a ~phase:"ignored";
  let ring = Ci_obs.Event.create_ring ~capacity:16 () in
  Machine.set_observer m (Some ring);
  Machine.note_phase a ~phase:"election";
  match Ci_obs.Event.events ring with
  | [ { Ci_obs.Event.kind = Ci_obs.Event.Phase { node = 0; phase = "election" }; _ } ] -> ()
  | l -> Alcotest.failf "expected one phase event, got %d" (List.length l)

(* Receive coalescing: with a budget > 1 a burst of messages to one
   node drains in fewer reception charges than messages, in arrival
   order, and the burst finishes sooner than uncoalesced. *)
let burst_finish_time ~coalesce =
  let m : string Machine.t =
    Machine.create ~topology:Topology.opteron_48
      ~params:{ params with Net_params.coalesce }
      ()
  in
  let a = Machine.add_node m ~core:0 in
  let b = Machine.add_node m ~core:1 in
  let got = ref [] in
  Machine.set_handler b (fun ~src:_ msg -> got := msg :: !got);
  for i = 1 to 8 do
    Machine.send a ~dst:(Machine.node_id b) (string_of_int i)
  done;
  Machine.run m;
  Alcotest.(check (list string))
    "all delivered in arrival order"
    (List.init 8 (fun i -> string_of_int (i + 1)))
    (List.rev !got);
  (Machine.now m, Machine.coalescing_totals m)

let test_coalescing_amortizes_receptions () =
  let t_off, (g_off, d_off) = burst_finish_time ~coalesce:1 in
  let t_on, (g_on, d_on) = burst_finish_time ~coalesce:8 in
  Alcotest.(check (pair int int)) "no ports at budget 1" (0, 0) (g_off, d_off);
  Alcotest.(check int) "port saw the whole burst" 8 d_on;
  Alcotest.(check bool)
    (Printf.sprintf "fewer reception charges than messages (%d groups)" g_on)
    true (g_on < 8);
  Alcotest.(check bool)
    (Printf.sprintf "burst finishes sooner coalesced (%d vs %d)" t_on t_off)
    true
    (t_on < t_off)

let test_coalescing_single_message_degenerates () =
  (* One lone message through a port costs exactly the uncoalesced
     recv + handler path. *)
  let m : string Machine.t =
    Machine.create ~topology:Topology.opteron_48
      ~params:{ params with Net_params.coalesce = 8 }
      ()
  in
  let a = Machine.add_node m ~core:0 in
  let b = Machine.add_node m ~core:1 in
  let at = ref (-1) in
  Machine.set_handler b (fun ~src:_ _ -> at := Machine.now m);
  Machine.send a ~dst:(Machine.node_id b) "solo";
  Machine.run m;
  (* send 5 + prop_intra 20 + recv 5 + handler 10 = 40, as uncoalesced *)
  Alcotest.(check int) "same cost as the legacy path" 40 !at;
  Alcotest.(check (pair int int)) "one group of one" (1, 1)
    (Machine.coalescing_totals m)

let suite =
  ( "machine",
    [
      Alcotest.test_case "sequential node ids" `Quick test_node_ids_sequential;
      Alcotest.test_case "send and receive with costs" `Quick test_send_and_receive;
      Alcotest.test_case "inter-socket propagation" `Quick test_inter_socket_slower;
      Alcotest.test_case "self-send charges handler only" `Quick
        test_self_send_charges_handler_only;
      Alcotest.test_case "message counters" `Quick test_counters;
      Alcotest.test_case "send_many staggering" `Quick test_send_many_order;
      Alcotest.test_case "timers and compute" `Quick test_timers_and_compute;
      Alcotest.test_case "shared core serializes" `Quick test_shared_core_serializes;
      Alcotest.test_case "slow core stretches reception" `Quick
        test_slow_core_delays_handler;
      Alcotest.test_case "invalid core rejected" `Quick test_bad_core;
      Alcotest.test_case "delivery tracer" `Quick test_tracer;
      Alcotest.test_case "self-delivery counters" `Quick test_self_delivery_counters;
      Alcotest.test_case "observer trace events" `Quick test_observer_events;
      Alcotest.test_case "note_phase" `Quick test_note_phase;
      Alcotest.test_case "coalescing amortizes receptions" `Quick
        test_coalescing_amortizes_receptions;
      Alcotest.test_case "coalescing solo message degenerates" `Quick
        test_coalescing_single_message_degenerates;
    ] )

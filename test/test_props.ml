(* Adversarial property tests: random fault schedules, client mixes and
   seeds must never violate the paper's safety properties (agreement,
   non-triviality, state convergence, session integrity), whatever they
   do to liveness. *)

module Runner = Ci_workload.Runner
module Fault_plan = Ci_workload.Fault_plan
module Sim_time = Ci_engine.Sim_time
module Consistency = Ci_rsm.Consistency

(* A random fault plan: up to three slowdown windows on arbitrary cores
   of the 8-core machine, various severities including full crashes. *)
let fault_gen =
  QCheck.Gen.(
    list_size (int_bound 3)
      (let* core = int_bound 7 in
       let* start_ms = int_range 1 25 in
       let* len_ms = int_range 1 40 in
       let* sev = int_bound 3 in
       let factor = [| 5.; 30.; 200.; infinity |].(sev) in
       return
         (Fault_plan.Slow_core
            {
              core;
              from_ = Sim_time.ms start_ms;
              until_ = Sim_time.ms (start_ms + len_ms);
              factor;
            })))

let scenario_gen =
  QCheck.Gen.(
    let* seed = int_bound 100_000 in
    let* faults = fault_gen in
    let* clients = int_range 1 5 in
    let* read_pct = int_bound 50 in
    return (seed, faults, clients, read_pct))

let scenario_print (seed, faults, clients, read_pct) =
  Format.asprintf "seed=%d clients=%d reads=%d%% faults=[%a]" seed clients
    read_pct
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f "; ") Fault_plan.pp)
    faults

let scenario = QCheck.make ~print:scenario_print scenario_gen

let run_scenario protocol (seed, faults, clients, read_pct) =
  let spec =
    {
      (Runner.default_spec ~protocol
         ~placement:(Runner.Dedicated { n_replicas = 3; n_clients = clients }))
      with
      Runner.topology = Ci_machine.Topology.opteron_8;
      duration = Sim_time.ms 40;
      warmup = Sim_time.ms 2;
      drain = Sim_time.ms 30;
      seed;
      read_ratio = float_of_int read_pct /. 100.;
      timeout = Sim_time.ms 1;
      faults;
    }
  in
  Runner.run spec

let safety_prop protocol name =
  QCheck.Test.make ~name ~count:40 scenario (fun sc ->
      let r = run_scenario protocol sc in
      if not (Consistency.ok r.Runner.consistency) then
        QCheck.Test.fail_reportf "%a" Consistency.pp r.Runner.consistency
      else true)

(* The batching layer must preserve every safety property at every
   (batch size, pipeline depth) point, under the same randomized fault
   schedules — including leadership changes that force the leader to
   requeue a half-full batch. *)
let batched_scenario_gen =
  QCheck.Gen.(
    let* sc = scenario_gen in
    let* batch = oneofl [ 1; 2; 4; 8 ] in
    let* pipeline = oneofl [ 0; 1; 2; 8 ] in
    let* coalesce = oneofl [ 1; 4 ] in
    return (sc, batch, pipeline, coalesce))

let batched_scenario =
  QCheck.make
    ~print:(fun (sc, batch, pipeline, coalesce) ->
      Printf.sprintf "%s batch=%d pipeline=%d coalesce=%d" (scenario_print sc)
        batch pipeline coalesce)
    batched_scenario_gen

let run_batched protocol ((seed, faults, clients, read_pct), batch, pipeline, coalesce)
    =
  let spec =
    {
      (Runner.default_spec ~protocol
         ~placement:(Runner.Dedicated { n_replicas = 3; n_clients = clients }))
      with
      Runner.topology = Ci_machine.Topology.opteron_8;
      duration = Sim_time.ms 40;
      warmup = Sim_time.ms 2;
      drain = Sim_time.ms 30;
      seed;
      read_ratio = float_of_int read_pct /. 100.;
      timeout = Sim_time.ms 1;
      faults;
      batch;
      pipeline;
      params =
        { Ci_machine.Net_params.multicore with Ci_machine.Net_params.coalesce };
    }
  in
  Runner.run spec

let batched_safety_prop protocol name =
  QCheck.Test.make ~name ~count:40 batched_scenario (fun sc ->
      let r = run_batched protocol sc in
      if not (Consistency.ok r.Runner.consistency) then
        QCheck.Test.fail_reportf "%a" Consistency.pp r.Runner.consistency
      else true)

(* Liveness under recoverable faults: if every fault window closes well
   before the end of the run and spares a majority... we assert the
   weaker, always-true property that commits made before the first
   fault are never lost (captured by session integrity) and that a
   fault-free tail lets 1Paxos commit again. *)
let recovery_prop =
  QCheck.Test.make ~name:"1paxos recovers after transient faults" ~count:25
    QCheck.(
      make
        ~print:(fun (seed, core) -> Printf.sprintf "seed=%d core=%d" seed core)
        Gen.(pair (int_bound 100_000) (int_bound 2)))
    (fun (seed, core) ->
      let spec =
        {
          (Runner.default_spec ~protocol:Runner.Onepaxos
             ~placement:(Runner.Dedicated { n_replicas = 3; n_clients = 3 }))
          with
          Runner.topology = Ci_machine.Topology.opteron_8;
          duration = Sim_time.ms 60;
          warmup = Sim_time.ms 2;
          drain = Sim_time.ms 5;
          seed;
          timeout = Sim_time.ms 1;
          faults =
            [
              Fault_plan.Crash_core
                { core; from_ = Sim_time.ms 5; until_ = Sim_time.ms 20 };
            ];
        }
      in
      let r = Runner.run spec in
      (* Commits in the post-recovery half of the window. *)
      let buckets = r.Runner.timeline in
      let tail_commits =
        Array.to_list buckets
        |> List.filteri (fun i _ -> i >= 3)
        |> List.fold_left ( +. ) 0.
      in
      Consistency.ok r.Runner.consistency && tail_commits > 0.)

(* Pinned scenarios that once violated agreement; kept as deterministic
   regressions. *)
let slow core from_ until_ factor =
  Fault_plan.Slow_core
    { core; from_ = Sim_time.ms from_; until_ = Sim_time.ms until_; factor }

(* A stale takeover attempt on replica 2 (its leadership lost while its
   acceptor adoption was still knocking) adopted a freshly installed
   acceptor and ran as a second concurrent leader, deciding a different
   value at an instance the configuration-log leader had already filled
   through the previous acceptor. *)
let regression_1paxos_stale_takeover () =
  let r =
    run_scenario Runner.Onepaxos
      (70649, [ slow 2 8 39 30.; slow 1 25 56 infinity; slow 3 4 8 infinity ], 2, 39)
  in
  if not (Consistency.ok r.Runner.consistency) then
    Alcotest.failf "%a" Consistency.pp r.Runner.consistency

(* An epoch whose leader never became operational vouched for history
   with an empty acceptor store, dropping decided instances across a
   reconfiguration (the chain-of-custody bug in Cheap Paxos). *)
let regression_cheap_paxos_empty_vouch () =
  let r =
    run_scenario Runner.Cheappaxos
      (71957, [ slow 2 20 53 infinity; slow 1 10 22 infinity ], 1, 34)
  in
  if not (Consistency.ok r.Runner.consistency) then
    Alcotest.failf "%a" Consistency.pp r.Runner.consistency

(* Determinism: identical scenarios give identical measurements. *)
let determinism_prop =
  QCheck.Test.make ~name:"scenarios are deterministic" ~count:10 scenario
    (fun sc ->
      let a = run_scenario Runner.Onepaxos sc in
      let b = run_scenario Runner.Onepaxos sc in
      a.Runner.commits = b.Runner.commits
      && a.Runner.messages = b.Runner.messages
      && a.Runner.retries = b.Runner.retries)

let suite =
  ( "properties",
    [
      QCheck_alcotest.to_alcotest (safety_prop Runner.Onepaxos "1paxos safety under random faults");
      QCheck_alcotest.to_alcotest
        (safety_prop Runner.Multipaxos "multipaxos safety under random faults");
      QCheck_alcotest.to_alcotest (safety_prop Runner.Twopc "2pc safety under random faults");
      QCheck_alcotest.to_alcotest
        (safety_prop Runner.Mencius "mencius safety under random faults");
      QCheck_alcotest.to_alcotest
        (safety_prop Runner.Cheappaxos "cheap paxos safety under random faults");
      QCheck_alcotest.to_alcotest
        (batched_safety_prop Runner.Onepaxos
           "1paxos safety across the (batch, pipeline) grid");
      QCheck_alcotest.to_alcotest
        (batched_safety_prop Runner.Multipaxos
           "multipaxos safety across the (batch, pipeline) grid");
      QCheck_alcotest.to_alcotest recovery_prop;
      QCheck_alcotest.to_alcotest determinism_prop;
      Alcotest.test_case "regression: 1paxos stale takeover split-brain" `Slow
        regression_1paxos_stale_takeover;
      Alcotest.test_case "regression: cheap paxos empty-store vouch" `Slow
        regression_cheap_paxos_empty_vouch;
    ] )

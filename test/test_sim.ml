module Sim = Ci_engine.Sim

let test_initial_state () =
  let sim = Sim.create () in
  Alcotest.(check int) "time starts at 0" 0 (Sim.now sim);
  Alcotest.(check int) "no events" 0 (Sim.pending sim)

let test_schedule_order () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.schedule sim ~delay:20 (fun () -> log := "b" :: !log);
  Sim.schedule sim ~delay:10 (fun () -> log := "a" :: !log);
  Sim.schedule sim ~delay:30 (fun () -> log := "c" :: !log);
  Sim.run sim;
  Alcotest.(check (list string)) "execution order" [ "a"; "b"; "c" ] (List.rev !log)

let test_clock_advances () =
  let sim = Sim.create () in
  let seen = ref (-1) in
  Sim.schedule sim ~delay:42 (fun () -> seen := Sim.now sim);
  Sim.run sim;
  Alcotest.(check int) "handler sees its own time" 42 !seen;
  Alcotest.(check int) "clock rests at last event" 42 (Sim.now sim)

let test_negative_delay_clamped () =
  let sim = Sim.create () in
  Sim.schedule sim ~delay:10 (fun () ->
      Sim.schedule sim ~delay:(-5) (fun () ->
          Alcotest.(check int) "clamped to now" 10 (Sim.now sim)));
  Sim.run sim

let test_schedule_at_past () =
  let sim = Sim.create () in
  let fired = ref false in
  Sim.schedule sim ~delay:10 (fun () ->
      Sim.schedule_at sim ~time:3 (fun () ->
          fired := true;
          Alcotest.(check int) "past time runs now" 10 (Sim.now sim)));
  Sim.run sim;
  Alcotest.(check bool) "fired" true !fired

let test_run_until () =
  let sim = Sim.create () in
  let fired = ref [] in
  List.iter
    (fun t -> Sim.schedule sim ~delay:t (fun () -> fired := t :: !fired))
    [ 10; 20; 30; 40 ];
  Sim.run_until sim ~time:25;
  Alcotest.(check (list int)) "only events <= 25" [ 10; 20 ] (List.rev !fired);
  Alcotest.(check int) "clock at horizon" 25 (Sim.now sim);
  Sim.run_until sim ~time:100;
  Alcotest.(check (list int)) "rest runs later" [ 10; 20; 30; 40 ] (List.rev !fired)

let test_run_until_exact_boundary () =
  let sim = Sim.create () in
  let fired = ref false in
  Sim.schedule sim ~delay:25 (fun () -> fired := true);
  Sim.run_until sim ~time:25;
  Alcotest.(check bool) "boundary event included" true !fired

let test_cascading_events () =
  let sim = Sim.create () in
  let count = ref 0 in
  let rec chain n =
    if n > 0 then
      Sim.schedule sim ~delay:1 (fun () ->
          incr count;
          chain (n - 1))
  in
  chain 100;
  Sim.run sim;
  Alcotest.(check int) "all chained events ran" 100 !count;
  Alcotest.(check int) "time advanced per link" 100 (Sim.now sim)

let test_stop () =
  let sim = Sim.create () in
  let count = ref 0 in
  for _ = 1 to 10 do
    Sim.schedule sim ~delay:1 (fun () ->
        incr count;
        if !count = 3 then Sim.stop sim)
  done;
  Sim.run sim;
  Alcotest.(check int) "stopped after third event" 3 !count;
  Sim.run sim;
  Alcotest.(check int) "resumable" 10 !count

let test_max_events () =
  let sim = Sim.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    Sim.schedule sim ~delay:i (fun () -> incr count)
  done;
  Sim.run ~max_events:4 sim;
  Alcotest.(check int) "budget respected" 4 !count

let test_same_time_fifo () =
  let sim = Sim.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Sim.schedule sim ~delay:7 (fun () -> log := i :: !log)
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "FIFO at equal instants" [ 1; 2; 3; 4; 5 ]
    (List.rev !log)

let test_cancellable_timer () =
  let sim = Sim.create () in
  let fired = ref [] in
  let t1 = Sim.schedule_cancellable sim ~delay:10 (fun () -> fired := 1 :: !fired) in
  let _t2 = Sim.schedule_cancellable sim ~delay:20 (fun () -> fired := 2 :: !fired) in
  Sim.cancel sim t1;
  Sim.run sim;
  Alcotest.(check (list int)) "only the live timer fires" [ 2 ] (List.rev !fired);
  Alcotest.(check int) "clock at the live timer" 20 (Sim.now sim)

let test_cancel_from_handler () =
  let sim = Sim.create () in
  let fired = ref false in
  let tm = Sim.schedule_cancellable sim ~delay:20 (fun () -> fired := true) in
  Sim.schedule sim ~delay:10 (fun () -> Sim.cancel sim tm);
  Sim.run sim;
  Alcotest.(check bool) "timer cancelled mid-run" false !fired

let test_events_fired_excludes_cancelled () =
  let sim = Sim.create () in
  Sim.schedule sim ~delay:1 ignore;
  Sim.schedule sim ~delay:2 ignore;
  let tm = Sim.schedule_cancellable sim ~delay:3 ignore in
  Sim.cancel sim tm;
  Sim.run sim;
  Alcotest.(check int) "two events executed" 2 (Sim.events_fired sim);
  Sim.schedule sim ~delay:1 ignore;
  Sim.run sim;
  Alcotest.(check int) "counter is cumulative" 3 (Sim.events_fired sim)

let test_pending_excludes_cancelled () =
  let sim = Sim.create () in
  let tm = Sim.schedule_cancellable sim ~delay:5 ignore in
  Sim.schedule sim ~delay:6 ignore;
  Alcotest.(check int) "both pending" 2 (Sim.pending sim);
  Sim.cancel sim tm;
  Alcotest.(check int) "cancelled not pending" 1 (Sim.pending sim)

let suite =
  ( "sim",
    [
      Alcotest.test_case "initial state" `Quick test_initial_state;
      Alcotest.test_case "schedule order" `Quick test_schedule_order;
      Alcotest.test_case "clock advances" `Quick test_clock_advances;
      Alcotest.test_case "negative delay clamped" `Quick test_negative_delay_clamped;
      Alcotest.test_case "schedule_at in the past" `Quick test_schedule_at_past;
      Alcotest.test_case "run_until horizon" `Quick test_run_until;
      Alcotest.test_case "run_until boundary inclusive" `Quick test_run_until_exact_boundary;
      Alcotest.test_case "cascading events" `Quick test_cascading_events;
      Alcotest.test_case "stop and resume" `Quick test_stop;
      Alcotest.test_case "max_events budget" `Quick test_max_events;
      Alcotest.test_case "same-instant FIFO" `Quick test_same_time_fifo;
      Alcotest.test_case "cancellable timer" `Quick test_cancellable_timer;
      Alcotest.test_case "cancel from a handler" `Quick test_cancel_from_handler;
      Alcotest.test_case "events_fired excludes cancelled" `Quick
        test_events_fired_excludes_cancelled;
      Alcotest.test_case "pending excludes cancelled" `Quick
        test_pending_excludes_cancelled;
    ] )

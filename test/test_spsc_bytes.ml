(* The byte-slot SPSC ring under its real contract: messages encoded
   into fixed slots by the producer, decoded back by the consumer, FIFO
   across the three slot classes (in-place, end-of-buffer pad, jumbo
   side ring). Distinct payloads per message so order violations and
   corruption show up as value mismatches, not just counts. *)

module Sb = Ci_runtime.Spsc_bytes
module Wire = Ci_consensus.Wire
module Codec = Ci_consensus.Codec
module Command = Ci_rsm.Command
module Pn = Ci_consensus.Pn

let value i =
  { Wire.client = 3; req_id = i; cmd = Command.Put { key = i; data = i * 7 } }

(* A small message (one 32-byte slot holds Reply at 10 bytes... not
   quite: value-bearing ones span a few) and a batch that spans many. *)
let small i = Wire.Reply { req_id = i; result = Command.Done }
let medium i = Wire.Op_learn { inst = i; v = value i }

let batch ?(len = 8) i =
  Wire.Op_accept_batch
    {
      base = i;
      pn = Pn.make ~round:1 ~owner:0;
      vs = Array.init len (fun j -> value (i + j));
    }

let msg_eq = Alcotest.testable (fun fmt m -> Fmt.string fmt (Wire.kind m)) ( = )

let test_create_rejects () =
  List.iter
    (fun (slots, slot_size) ->
      match Sb.create ~slots ~slot_size with
      | _ -> Alcotest.failf "accepted slots=%d slot_size=%d" slots slot_size
      | exception Invalid_argument _ -> ())
    [ (0, 64); (-1, 64); (4, 0); (4, 48); (4, Sb.min_slot_size / 2) ]

let test_fifo_mixed () =
  (* Mixed sizes through a small ring, popped in lockstep: every class
     of message must come back equal and in order. *)
  let q = Sb.create ~slots:8 ~slot_size:32 in
  let msgs =
    List.init 300 (fun i ->
        match i mod 3 with
        | 0 -> small i
        | 1 -> medium i
        | _ -> batch ~len:2 i)
  in
  List.iter
    (fun m ->
      Alcotest.(check bool) "push accepted" true (Sb.try_push q m);
      match Sb.try_pop q with
      | Some got -> Alcotest.check msg_eq "round trip" m got
      | None -> Alcotest.fail "pop after push returned nothing")
    msgs;
  Alcotest.(check int) "pushes" 300 (Sb.pushes q);
  Alcotest.(check int) "pops" 300 (Sb.pops q)

let test_spill_and_pad () =
  (* 2-slot spills through a 4-slot ring at every cursor offset: some
     pushes land at slot 3 and must pad to the physical start. FIFO
     must survive the skips. *)
  let q = Sb.create ~slots:4 ~slot_size:32 in
  for i = 0 to 199 do
    let m = medium i in
    assert (Codec.encoded_size m > 32);
    Alcotest.(check bool) "spill push" true (Sb.try_push q m);
    Alcotest.(check msg_eq) "spill pop" m
      (match Sb.try_pop q with Some g -> g | None -> Alcotest.fail "empty")
  done

let test_full_ring_rejects () =
  let q = Sb.create ~slots:2 ~slot_size:32 in
  Alcotest.(check bool) "fits" true (Sb.try_push q (small 1));
  Alcotest.(check bool) "fits" true (Sb.try_push q (small 2));
  Alcotest.(check bool) "full" false (Sb.try_push q (small 3));
  (match Sb.try_pop q with
  | Some m -> Alcotest.check msg_eq "head" (small 1) m
  | None -> Alcotest.fail "empty");
  Alcotest.(check bool) "freed" true (Sb.try_push q (small 3))

let test_jumbo () =
  (* A batch bigger than the whole ring takes the boxed side ring but
     keeps its place in FIFO order between slot-borne neighbours. *)
  let q = Sb.create ~slots:2 ~slot_size:32 in
  let big = batch ~len:64 1000 in
  assert (Codec.encoded_size big > 2 * 32);
  Alcotest.(check bool) "small first" true (Sb.try_push q (small 1));
  Alcotest.(check bool) "jumbo" true (Sb.try_push q big);
  Alcotest.(check int) "jumbo counted" 1 (Sb.jumbo_pushes q);
  (match Sb.try_pop q with
  | Some m -> Alcotest.check msg_eq "fifo: small" (small 1) m
  | None -> Alcotest.fail "empty");
  (match Sb.try_pop q with
  | Some m -> Alcotest.check msg_eq "fifo: jumbo" big m
  | None -> Alcotest.fail "empty");
  Alcotest.(check (option reject)) "drained"
    None
    (Option.map ignore (Sb.try_pop q))

(* Cross-domain: a producer domain pushes a deterministic mixed
   sequence (spinning on full), this domain consumes. Everything must
   arrive, in order, decoded equal — across thousands of wraps, pads
   and the occasional jumbo. *)
let test_cross_domain () =
  let n = 5_000 in
  let q = Sb.create ~slots:4 ~slot_size:32 in
  let mk i =
    match i mod 5 with
    | 0 -> small i
    | 1 | 2 -> medium i
    | 3 -> batch ~len:3 i
    | _ -> batch ~len:16 i (* > 4*32 bytes: jumbo *)
  in
  let producer =
    Domain.spawn (fun () ->
        for i = 0 to n - 1 do
          while not (Sb.try_push q (mk i)) do
            Domain.cpu_relax ()
          done
        done)
  in
  let got = ref 0 in
  while !got < n do
    match Sb.try_pop q with
    | Some m ->
      Alcotest.check msg_eq
        (Printf.sprintf "message %d" !got)
        (mk !got) m;
      incr got
    | None -> Domain.cpu_relax ()
  done;
  Domain.join producer;
  Alcotest.(check (option reject)) "no extras" None
    (Option.map ignore (Sb.try_pop q));
  Alcotest.(check bool) "saw jumbo traffic" true (Sb.jumbo_pushes q > 0)

let suite =
  ( "spsc_bytes",
    [
      Alcotest.test_case "create rejects bad shapes" `Quick test_create_rejects;
      Alcotest.test_case "fifo over mixed message sizes" `Quick test_fifo_mixed;
      Alcotest.test_case "spill slots pad at the buffer end" `Quick
        test_spill_and_pad;
      Alcotest.test_case "full ring rejects, pop frees" `Quick
        test_full_ring_rejects;
      Alcotest.test_case "jumbo messages keep fifo order" `Quick test_jumbo;
      Alcotest.test_case "producer/consumer domains, mixed traffic" `Quick
        test_cross_domain;
    ] )

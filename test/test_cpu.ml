module Sim = Ci_engine.Sim
module Cpu = Ci_machine.Cpu

let test_single_exec () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~id:0 in
  let done_at = ref (-1) in
  Cpu.exec cpu ~cost:100 (fun () -> done_at := Sim.now sim);
  Sim.run sim;
  Alcotest.(check int) "completion time" 100 !done_at;
  Alcotest.(check int) "busy accounted" 100 (Cpu.busy_total cpu)

let test_serialization () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~id:0 in
  let finishes = ref [] in
  for _ = 1 to 3 do
    Cpu.exec cpu ~cost:50 (fun () -> finishes := Sim.now sim :: !finishes)
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "back to back" [ 50; 100; 150 ] (List.rev !finishes)

let test_work_after_idle () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~id:0 in
  let finish = ref 0 in
  Sim.schedule sim ~delay:500 (fun () ->
      Cpu.exec cpu ~cost:10 (fun () -> finish := Sim.now sim));
  Sim.run sim;
  Alcotest.(check int) "starts at request time when idle" 510 !finish;
  Alcotest.(check int) "busy excludes idle gap" 10 (Cpu.busy_total cpu)

let test_zero_cost () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~id:0 in
  let ran = ref false in
  Cpu.exec cpu ~cost:0 (fun () -> ran := true);
  Sim.run sim;
  Alcotest.(check bool) "zero-cost work runs" true !ran;
  Alcotest.(check int) "at time zero" 0 (Sim.now sim)

let test_slowdown_factor_at () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~id:0 in
  Cpu.add_slowdown cpu ~from_:100 ~until_:200 ~factor:4.;
  Alcotest.(check (float 0.001)) "before" 1. (Cpu.factor_at cpu 50);
  Alcotest.(check (float 0.001)) "inside" 4. (Cpu.factor_at cpu 150);
  Alcotest.(check (float 0.001)) "at start (inclusive)" 4. (Cpu.factor_at cpu 100);
  Alcotest.(check (float 0.001)) "at end (exclusive)" 1. (Cpu.factor_at cpu 200)

let test_overlapping_windows_max () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~id:0 in
  Cpu.add_slowdown cpu ~from_:0 ~until_:100 ~factor:2.;
  Cpu.add_slowdown cpu ~from_:50 ~until_:150 ~factor:8.;
  Alcotest.(check (float 0.001)) "max wins" 8. (Cpu.factor_at cpu 75)

let test_slowdown_stretches_work () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~id:0 in
  Cpu.add_slowdown cpu ~from_:0 ~until_:1_000_000 ~factor:3.;
  let finish = ref 0 in
  Cpu.exec cpu ~cost:100 (fun () -> finish := Sim.now sim);
  Sim.run sim;
  Alcotest.(check int) "3x stretch" 300 !finish

let test_work_spanning_boundary () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~id:0 in
  (* 100 units of work start at 0; the first 50 instants are slowed 2x,
     accomplishing 25 units; the remaining 75 run at full speed. *)
  Cpu.add_slowdown cpu ~from_:0 ~until_:50 ~factor:2.;
  let finish = ref 0 in
  Cpu.exec cpu ~cost:100 (fun () -> finish := Sim.now sim);
  Sim.run sim;
  Alcotest.(check int) "piecewise integration" 125 !finish

let test_crash_window_resumes () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~id:0 in
  Cpu.add_slowdown cpu ~from_:10 ~until_:500 ~factor:infinity;
  let finish = ref 0 in
  (* 20 units: 10 complete before the crash, the rest only after it. *)
  Cpu.exec cpu ~cost:20 (fun () -> finish := Sim.now sim);
  Sim.run sim;
  Alcotest.(check int) "finishes after the window" 510 !finish

let test_queue_delay () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~id:0 in
  Alcotest.(check int) "idle" 0 (Cpu.queue_delay cpu);
  Cpu.exec cpu ~cost:100 (fun () -> ());
  Cpu.exec cpu ~cost:100 (fun () -> ());
  Alcotest.(check int) "backlog visible" 200 (Cpu.queue_delay cpu)

let test_busy_elapsed_mid_run () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~id:0 in
  Cpu.exec cpu ~cost:100 (fun () -> ());
  (* At t=0 all 100 ns are booked but none elapsed. *)
  Alcotest.(check int) "nothing elapsed yet" 0 (Cpu.busy_elapsed cpu);
  Sim.run_until sim ~time:40;
  Alcotest.(check int) "partial occupation elapsed" 40 (Cpu.busy_elapsed cpu);
  Sim.run sim;
  Alcotest.(check int) "fully elapsed" 100 (Cpu.busy_elapsed cpu);
  Alcotest.(check int) "agrees with busy_total when drained" (Cpu.busy_total cpu)
    (Cpu.busy_elapsed cpu)

let test_queue_depth_and_peak () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~id:0 in
  Alcotest.(check int) "idle depth" 0 (Cpu.queue_depth cpu);
  for _ = 1 to 4 do
    Cpu.exec cpu ~cost:10 (fun () -> ())
  done;
  Alcotest.(check int) "four queued" 4 (Cpu.queue_depth cpu);
  Alcotest.(check int) "peak tracks" 4 (Cpu.queue_peak cpu);
  Sim.run sim;
  Alcotest.(check int) "drained" 0 (Cpu.queue_depth cpu);
  Alcotest.(check int) "peak sticks" 4 (Cpu.queue_peak cpu)

let test_slowed_total () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~id:0 in
  Cpu.add_slowdown cpu ~from_:0 ~until_:50 ~factor:2.;
  (* 100 units: 50 wall-clock ns inside the window (2x = 25 units done),
     75 outside. *)
  Cpu.exec cpu ~cost:100 (fun () -> ());
  Sim.run sim;
  Alcotest.(check int) "impaired occupation counted" 50 (Cpu.slowed_total cpu);
  Alcotest.(check int) "total includes the stretch" 125 (Cpu.busy_total cpu)

let test_on_busy_hook () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~id:0 in
  let spans = ref [] in
  Cpu.set_on_busy cpu (Some (fun ~start ~finish -> spans := (start, finish) :: !spans));
  Cpu.exec cpu ~cost:30 (fun () -> ());
  Sim.schedule sim ~delay:100 (fun () -> Cpu.exec cpu ~cost:20 (fun () -> ()));
  Sim.run sim;
  Alcotest.(check (list (pair int int))) "span per occupation" [ (0, 30); (100, 120) ]
    (List.rev !spans);
  Cpu.set_on_busy cpu None;
  Cpu.exec cpu ~cost:10 (fun () -> ());
  Sim.run sim;
  Alcotest.(check int) "hook detached" 2 (List.length !spans)

let test_invalid_windows () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~id:0 in
  (try
     Cpu.add_slowdown cpu ~from_:10 ~until_:10 ~factor:2.;
     Alcotest.fail "empty window accepted"
   with Invalid_argument _ -> ());
  try
    Cpu.add_slowdown cpu ~from_:0 ~until_:10 ~factor:0.5;
    Alcotest.fail "speed-up accepted"
  with Invalid_argument _ -> ()

let suite =
  ( "cpu",
    [
      Alcotest.test_case "single exec" `Quick test_single_exec;
      Alcotest.test_case "serialization" `Quick test_serialization;
      Alcotest.test_case "idle start" `Quick test_work_after_idle;
      Alcotest.test_case "zero cost" `Quick test_zero_cost;
      Alcotest.test_case "factor_at windows" `Quick test_slowdown_factor_at;
      Alcotest.test_case "overlapping windows" `Quick test_overlapping_windows_max;
      Alcotest.test_case "slowdown stretches work" `Quick test_slowdown_stretches_work;
      Alcotest.test_case "work spanning boundary" `Quick test_work_spanning_boundary;
      Alcotest.test_case "crash window resumes" `Quick test_crash_window_resumes;
      Alcotest.test_case "queue delay" `Quick test_queue_delay;
      Alcotest.test_case "busy_elapsed mid-run" `Quick test_busy_elapsed_mid_run;
      Alcotest.test_case "queue depth and peak" `Quick test_queue_depth_and_peak;
      Alcotest.test_case "slowed occupation" `Quick test_slowed_total;
      Alcotest.test_case "on_busy hook" `Quick test_on_busy_hook;
      Alcotest.test_case "invalid windows" `Quick test_invalid_windows;
    ] )

(* The experiment runner: placements, measurement windows, faults. *)

module Runner = Ci_workload.Runner
module Fault_plan = Ci_workload.Fault_plan
module Sim_time = Ci_engine.Sim_time
module Topology = Ci_machine.Topology
module Net_params = Ci_machine.Net_params

let quick_spec ?(protocol = Runner.Onepaxos) ?(placement = Runner.Dedicated { n_replicas = 3; n_clients = 3 }) () =
  {
    (Runner.default_spec ~protocol ~placement) with
    Runner.duration = Sim_time.ms 10;
    warmup = Sim_time.ms 2;
    drain = Sim_time.ms 2;
  }

let test_throughput_consistent_with_commits () =
  let r = Runner.run (quick_spec ()) in
  let expected = float_of_int r.Runner.commits /. 0.010 in
  Alcotest.(check (float 1.0)) "throughput = commits / duration" expected
    r.Runner.throughput;
  Alcotest.(check bool) "window excludes warmup+drain replies" true
    (r.Runner.total_replies > r.Runner.commits)

let test_latency_summary_populated () =
  let r = Runner.run (quick_spec ()) in
  Alcotest.(check int) "one sample per commit" r.Runner.commits
    r.Runner.latency.Ci_stats.Summary.count;
  Alcotest.(check bool) "plausible latency" true
    (r.Runner.latency.Ci_stats.Summary.mean > 1_000.
     && r.Runner.latency.Ci_stats.Summary.mean < 1_000_000.)

let test_deterministic () =
  let r1 = Runner.run (quick_spec ()) in
  let r2 = Runner.run (quick_spec ()) in
  Alcotest.(check int) "same seed, same commits" r1.Runner.commits r2.Runner.commits;
  Alcotest.(check int) "same messages" r1.Runner.messages r2.Runner.messages;
  let r3 = Runner.run { (quick_spec ()) with Runner.seed = 99 } in
  ignore r3

let test_joint_placement () =
  let r =
    Runner.run (quick_spec ~placement:(Runner.Joint { n_nodes = 5 }) ())
  in
  Alcotest.(check bool) "joint commits" true (r.Runner.commits > 0);
  Alcotest.(check bool) "consistent" true (Ci_rsm.Consistency.ok r.Runner.consistency);
  Alcotest.(check int) "five replica views" 5
    r.Runner.consistency.Ci_rsm.Consistency.checked_replicas

let test_fault_applied () =
  let base = quick_spec ~protocol:Runner.Twopc () in
  let faulty =
    {
      base with
      Runner.faults =
        [
          Fault_plan.Slow_core
            { core = 0; from_ = Sim_time.ms 2; until_ = Sim_time.ms 20; factor = 1e9 };
        ];
    }
  in
  let healthy = Runner.run base and broken = Runner.run faulty in
  Alcotest.(check bool)
    (Printf.sprintf "slow coordinator kills 2PC (%d vs %d)" broken.Runner.commits
       healthy.Runner.commits)
    true
    (broken.Runner.commits * 10 < healthy.Runner.commits)

let test_crash_core_fault () =
  let r =
    Runner.run
      {
        (quick_spec ())
        with
        Runner.faults =
          [ Fault_plan.Crash_core { core = 1; from_ = Sim_time.ms 2; until_ = Sim_time.s 1 } ];
      }
  in
  (* Crashing the acceptor: 1Paxos replaces it and keeps committing. *)
  Alcotest.(check bool) "progress despite crashed acceptor" true (r.Runner.commits > 0);
  Alcotest.(check bool) "acceptor change recorded" true (r.Runner.acceptor_changes >= 1);
  Alcotest.(check bool) "consistent" true (Ci_rsm.Consistency.ok r.Runner.consistency)

let test_timeline_length () =
  let r = Runner.run (quick_spec ()) in
  (* window = 2ms warmup + 10ms duration + 2ms drain, bucket 10ms →
     ceil(14/10) + partial coverage: at least one bucket. *)
  Alcotest.(check bool) "timeline covers the run" true (Array.length r.Runner.timeline >= 1)

let test_invalid_placements () =
  let check_invalid name spec =
    try
      ignore (Runner.run spec);
      Alcotest.failf "%s accepted" name
    with Invalid_argument _ -> ()
  in
  check_invalid "zero replicas"
    (quick_spec ~placement:(Runner.Dedicated { n_replicas = 0; n_clients = 1 }) ());
  check_invalid "zero clients"
    (quick_spec ~placement:(Runner.Dedicated { n_replicas = 3; n_clients = 0 }) ());
  check_invalid "too many replicas"
    {
      (quick_spec ~placement:(Runner.Dedicated { n_replicas = 10; n_clients = 1 }) ())
      with
      Runner.topology = Topology.opteron_8;
    }

let test_colocated_acceptor_option () =
  let r = Runner.run { (quick_spec ()) with Runner.colocate_acceptor = true } in
  Alcotest.(check bool) "colocated config still commits" true (r.Runner.commits > 0);
  Alcotest.(check bool) "consistent" true (Ci_rsm.Consistency.ok r.Runner.consistency)

let test_protocol_names () =
  Alcotest.(check string) "1paxos" "1paxos" (Runner.protocol_name Runner.Onepaxos);
  Alcotest.(check string) "multipaxos" "multipaxos"
    (Runner.protocol_name Runner.Multipaxos);
  Alcotest.(check string) "2pc" "2pc" (Runner.protocol_name Runner.Twopc)

let test_window_split_sums () =
  let r = Runner.run (quick_spec ()) in
  let w = r.Runner.windows in
  let total f = f w.Runner.warmup_w + f w.Runner.measure_w + f w.Runner.drain_w in
  Alcotest.(check int) "windows partition deliveries" r.Runner.messages_total
    (total (fun c -> c.Runner.w_messages));
  Alcotest.(check int) "windows partition self-deliveries" r.Runner.self_delivered_total
    (total (fun c -> c.Runner.w_self));
  Alcotest.(check int) "windows partition retries" r.Runner.retries_total
    (total (fun c -> c.Runner.w_retries));
  Alcotest.(check int) "windows partition replies" r.Runner.total_replies
    (total (fun c -> c.Runner.w_replies));
  Alcotest.(check int) "measure window is the headline message count"
    r.Runner.messages w.Runner.measure_w.Runner.w_messages;
  Alcotest.(check int) "commits are the measure-window replies" r.Runner.commits
    w.Runner.measure_w.Runner.w_replies;
  Alcotest.(check bool) "warmup traffic is no longer misattributed" true
    (w.Runner.warmup_w.Runner.w_messages > 0)

(* The Section 4.3 message-count table, asserted on windowed counters: a
   commit costs 5 boundary-crossing messages under 1Paxos and 10 under
   Multi-Paxos and 2PC (request, 2(n-1) protocol messages with n = 3,
   reply — minus collapsed-role self-deliveries). *)
let messages_per_commit ?(batch = 1) ?(pipeline = 0) protocol =
  let spec =
    {
      (Runner.default_spec ~protocol
         ~placement:(Runner.Dedicated { n_replicas = 3; n_clients = 1 }))
      with
      Runner.duration = Sim_time.ms 20;
      warmup = Sim_time.ms 5;
      drain = Sim_time.ms 5;
      batch;
      pipeline;
    }
  in
  let r = Runner.run spec in
  Alcotest.(check bool)
    (Printf.sprintf "%s commits" (Runner.protocol_name protocol))
    true (r.Runner.commits > 100);
  float_of_int r.Runner.messages /. float_of_int r.Runner.commits

let check_ratio name expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.0f msgs/commit (got %.3f)" name expected actual)
    true
    (abs_float (actual -. expected) < 0.15)

let test_sec4_3_message_counts () =
  check_ratio "1paxos" 5. (messages_per_commit Runner.Onepaxos);
  check_ratio "multipaxos" 10. (messages_per_commit Runner.Multipaxos);
  check_ratio "2pc" 10. (messages_per_commit Runner.Twopc)

(* With the batching layer switched on but degenerate (one command per
   instance, pipeline depth 1) the wire cost must not change: the §4.3
   table still reads 5 and 10 messages per commit. *)
let test_sec4_3_pinned_under_batch_layer () =
  check_ratio "1paxos batch layer on"
    5. (messages_per_commit ~batch:1 ~pipeline:1 Runner.Onepaxos);
  check_ratio "multipaxos batch layer on"
    10. (messages_per_commit ~batch:1 ~pipeline:1 Runner.Multipaxos)

let test_batching_improves_throughput () =
  let spec batch pipeline coalesce =
    {
      (Runner.default_spec ~protocol:Runner.Onepaxos
         ~placement:(Runner.Dedicated { n_replicas = 3; n_clients = 44 }))
      with
      Runner.duration = Sim_time.ms 20;
      warmup = Sim_time.ms 4;
      batch;
      pipeline;
      params = { Net_params.multicore with Net_params.coalesce };
    }
  in
  let base = Runner.run (spec 1 0 1) in
  let batched = Runner.run (spec 8 8 16) in
  Alcotest.(check bool) "baseline consistent" true
    (Ci_rsm.Consistency.ok base.Runner.consistency);
  Alcotest.(check bool) "batched run consistent" true
    (Ci_rsm.Consistency.ok batched.Runner.consistency);
  Alcotest.(check bool)
    (Printf.sprintf "batch=8 at least 1.9x the legacy path (%.0f vs %.0f)"
       batched.Runner.throughput base.Runner.throughput)
    true
    (batched.Runner.throughput >= 1.9 *. base.Runner.throughput);
  Alcotest.(check bool) "engine event counter populated" true
    (batched.Runner.sim_events > 0);
  let module Metrics = Ci_obs.Metrics in
  Alcotest.(check int) "no coalescing groups without ports" 0
    (Metrics.get_int base.Runner.metrics "coalesce.groups");
  Alcotest.(check bool) "coalescing engaged when budget > 1" true
    (Metrics.get_int batched.Runner.metrics "coalesce.groups" > 0);
  Alcotest.(check bool) "coalescing amortized receptions" true
    (Metrics.get_int batched.Runner.metrics "coalesce.messages"
     > Metrics.get_int batched.Runner.metrics "coalesce.groups")

let test_core_usage_populated () =
  let r = Runner.run (quick_spec ()) in
  Alcotest.(check bool) "one entry per occupied core" true
    (List.length r.Runner.cores >= 4);
  let leader = List.find (fun u -> u.Runner.u_core = 0) r.Runner.cores in
  Alcotest.(check bool) "leader core worked" true (leader.Runner.u_busy_ns > 0);
  Alcotest.(check bool) "utilization in a sane range" true
    (leader.Runner.u_util > 0. && leader.Runner.u_util < 1.5);
  Alcotest.(check bool) "leader_util accessor agrees" true
    (Runner.leader_util r = leader.Runner.u_util);
  List.iter
    (fun (u : Runner.core_usage) ->
      Alcotest.(check bool) "peak depth positive on occupied cores" true
        (u.Runner.u_queue_peak >= 1))
    r.Runner.cores

let test_joint_self_deliveries () =
  (* Joint deployment collapses client and replica roles: leader-local
     commands must show up as self-deliveries, not messages. *)
  let r = Runner.run (quick_spec ~placement:(Runner.Joint { n_nodes = 5 }) ()) in
  Alcotest.(check bool) "self-deliveries recorded" true (r.Runner.self_delivered_total > 0);
  (* In the dedicated deployment the acceptor replica self-learns, but
     client nodes (ids 3..5) have no collapsed roles. *)
  let dedicated = Runner.run (quick_spec ()) in
  let module Metrics = Ci_obs.Metrics in
  List.iter
    (fun c ->
      List.iter
        (fun w ->
          Alcotest.(check int)
            (Printf.sprintf "client node%d never self-sends (%s)" c w)
            0
            (Metrics.get_int dedicated.Runner.metrics
               (Printf.sprintf "node%d.self.%s" c w)))
        [ "warmup"; "measure"; "drain" ])
    [ 3; 4; 5 ]

let test_change_counter_aggregates () =
  let r =
    Runner.run
      {
        (quick_spec ())
        with
        Runner.faults =
          [ Fault_plan.Crash_core { core = 1; from_ = Sim_time.ms 2; until_ = Sim_time.s 1 } ];
      }
  in
  Alcotest.(check bool) "sum dominates the per-replica max" true
    (r.Runner.acceptor_changes_sum >= r.Runner.acceptor_changes);
  Alcotest.(check bool) "max is positive after the crash" true
    (r.Runner.acceptor_changes >= 1);
  Alcotest.(check bool) "sum bounded by max * replicas" true
    (r.Runner.acceptor_changes_sum <= r.Runner.acceptor_changes * 3)

let test_metrics_registry_populated () =
  let ring = Ci_obs.Event.create_ring ~capacity:4096 () in
  let r = Runner.run { (quick_spec ()) with Runner.trace = Some ring } in
  let m = r.Runner.metrics in
  let module Metrics = Ci_obs.Metrics in
  Alcotest.(check int) "commits mirrored" r.Runner.commits
    (Metrics.get_int m "commits.measure");
  Alcotest.(check int) "measure messages mirrored" r.Runner.messages
    (Metrics.get_int m "measure.messages");
  Alcotest.(check int) "leader core busy mirrored"
    (List.find (fun u -> u.Runner.u_core = 0) r.Runner.cores).Runner.u_busy_ns
    (Metrics.get_int m "core0.busy_ns.measure");
  Alcotest.(check bool) "per-node counters present" true
    (Metrics.find m "node0.sent.measure" <> None);
  Alcotest.(check bool) "channel totals present" true
    (Metrics.get_int m "channels.count" > 0);
  Alcotest.(check int) "trace drop counter exported"
    (Ci_obs.Event.dropped ring)
    (Metrics.get_int m "trace.dropped");
  Alcotest.(check bool) "the ring saw traffic" true (Ci_obs.Event.length ring > 0)

let suite =
  ( "runner",
    [
      Alcotest.test_case "throughput arithmetic" `Quick
        test_throughput_consistent_with_commits;
      Alcotest.test_case "latency summary" `Quick test_latency_summary_populated;
      Alcotest.test_case "determinism" `Quick test_deterministic;
      Alcotest.test_case "joint placement" `Quick test_joint_placement;
      Alcotest.test_case "slow-core fault applied" `Quick test_fault_applied;
      Alcotest.test_case "crash-core fault" `Quick test_crash_core_fault;
      Alcotest.test_case "timeline present" `Quick test_timeline_length;
      Alcotest.test_case "invalid placements rejected" `Quick test_invalid_placements;
      Alcotest.test_case "colocated acceptor option" `Quick test_colocated_acceptor_option;
      Alcotest.test_case "protocol names" `Quick test_protocol_names;
      Alcotest.test_case "window split arithmetic" `Quick test_window_split_sums;
      Alcotest.test_case "4.3 messages per commit" `Quick test_sec4_3_message_counts;
      Alcotest.test_case "4.3 pinned under batch layer" `Quick
        test_sec4_3_pinned_under_batch_layer;
      Alcotest.test_case "batching raises peak throughput" `Quick
        test_batching_improves_throughput;
      Alcotest.test_case "core usage populated" `Quick test_core_usage_populated;
      Alcotest.test_case "joint self-deliveries" `Quick test_joint_self_deliveries;
      Alcotest.test_case "change counters: max vs sum" `Quick
        test_change_counter_aggregates;
      Alcotest.test_case "metrics registry populated" `Quick
        test_metrics_registry_populated;
    ] )

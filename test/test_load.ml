(* The open-loop load subsystem: arrival processes, key samplers, knee
   detection, the Open_client driver end-to-end on the simulator
   (read-your-writes sessions, Range routing, leader leases under the
   nemesis) — the lib/load half of ISSUE 9. The live-runtime driver is
   exercised in [Test_runtime]. *)

module Sim_time = Ci_engine.Sim_time
module Rng = Ci_engine.Rng
module Arrival = Ci_load.Arrival
module Key_dist = Ci_load.Key_dist
module Knee = Ci_load.Knee
module Load_stats = Ci_load.Load_stats
module Open_client = Ci_load.Open_client
module Runner = Ci_workload.Runner
module Consistency = Ci_rsm.Consistency

(* ---------- arrival processes ---------- *)

let fixed_arrival_is_a_metronome () =
  let t = Arrival.compile (Arrival.Fixed 50_000.) in
  let rng = Rng.create ~seed:1 in
  let g0 = Arrival.gap t rng in
  Alcotest.(check int) "1/rate in ns" 20_000 g0;
  for _ = 1 to 100 do
    Alcotest.(check int) "constant gap" g0 (Arrival.gap t rng)
  done;
  (* A metronome consumes no randomness: the rng is untouched. *)
  let a = Rng.create ~seed:9 and b = Rng.create ~seed:9 in
  ignore (Arrival.gap t a);
  Alcotest.(check int64) "no draws consumed" (Rng.bits64 a) (Rng.bits64 b)

let poisson_arrival_matches_rate_and_seed () =
  let spec = Arrival.Poisson 100_000. in
  let draw seed n =
    let t = Arrival.compile spec in
    let rng = Rng.create ~seed in
    List.init n (fun _ -> Arrival.gap t rng)
  in
  Alcotest.(check (list int)) "same seed, same gaps" (draw 5 1000) (draw 5 1000);
  Alcotest.(check bool)
    "different seed, different gaps" false
    (draw 5 1000 = draw 6 1000);
  let gaps = draw 7 20_000 in
  let mean =
    float_of_int (List.fold_left ( + ) 0 gaps) /. 20_000.
  in
  (* Mean gap within 5% of 1/rate = 10us. *)
  Alcotest.(check bool)
    (Printf.sprintf "mean gap %.0fns near 10000ns" mean)
    true
    (abs_float (mean -. 10_000.) < 500.)

let arrival_rejects_bad_rates () =
  List.iter
    (fun spec ->
      match Arrival.validate spec with
      | () -> Alcotest.failf "accepted %a" Arrival.pp_spec spec
      | exception Invalid_argument _ -> ())
    [ Arrival.Fixed 0.; Fixed (-1.); Fixed nan; Poisson 0.; Poisson infinity ]

(* ---------- key samplers ---------- *)

let counts spec ~key_space ~seed ~draws =
  let t = Key_dist.compile spec ~key_space in
  let rng = Rng.create ~seed in
  let c = Array.make key_space 0 in
  for _ = 1 to draws do
    let k = Key_dist.sample t rng in
    if k < 0 || k >= key_space then
      Alcotest.failf "sample %d outside [0,%d)" k key_space;
    c.(k) <- c.(k) + 1
  done;
  c

let decile c i =
  let n = Array.length c / 10 in
  let s = ref 0 in
  for k = i * n to ((i + 1) * n) - 1 do
    s := !s + c.(k)
  done;
  !s

let zipf_skews_toward_low_ranks () =
  let c = counts (Key_dist.Zipf 0.99) ~key_space:1000 ~seed:3 ~draws:50_000 in
  (* Rank order: every decile at least as popular as the one above it,
     with a big head-to-tail gap; key 0 dominates the last decile alone. *)
  for i = 0 to 8 do
    Alcotest.(check bool)
      (Printf.sprintf "decile %d >= decile %d" i (i + 1))
      true
      (decile c i >= decile c (i + 1))
  done;
  Alcotest.(check bool) "head 10x tail" true (decile c 0 > 10 * decile c 9);
  Alcotest.(check bool) "key 0 beats whole last decile" true (c.(0) > decile c 9)

let zipf_zero_degenerates_to_uniform () =
  let c = counts (Key_dist.Zipf 0.) ~key_space:1000 ~seed:3 ~draws:50_000 in
  for i = 0 to 9 do
    (* Each decile holds ~5000 draws; allow 4 sigma. *)
    Alcotest.(check bool)
      (Printf.sprintf "decile %d near uniform" i)
      true
      (abs (decile c i - 5000) < 300)
  done

let hotkey_respects_fractions () =
  let c =
    counts
      (Key_dist.Hotkey { hot = 0.8; spread = 0.1 })
      ~key_space:1000 ~seed:4 ~draws:50_000
  in
  let hot = decile c 0 in
  Alcotest.(check bool)
    (Printf.sprintf "%d of 50000 draws in the hot 10%%" hot)
    true
    (abs (hot - 40_000) < 1_000)

let sampler_prop =
  QCheck.Test.make ~name:"samplers: in bounds and seed-deterministic"
    ~count:200
    QCheck.(
      triple (int_range 2 5000) (int_range 0 1_000_000)
        (oneofl
           [
             Key_dist.Uniform;
             Key_dist.Zipf 0.5;
             Key_dist.Zipf 0.99;
             Key_dist.Zipf 1.3;
             Key_dist.Hotkey { hot = 0.9; spread = 0.05 };
           ]))
    (fun (key_space, seed, spec) ->
      let draw () =
        let t = Key_dist.compile spec ~key_space in
        let rng = Rng.create ~seed in
        List.init 64 (fun _ -> Key_dist.sample t rng)
      in
      let a = draw () in
      List.for_all (fun k -> k >= 0 && k < key_space) a && a = draw ())

let sampler_rejects_bad_specs () =
  List.iter
    (fun (spec, key_space) ->
      match Key_dist.validate spec ~key_space with
      | () -> Alcotest.failf "accepted %a" Key_dist.pp_spec spec
      | exception Invalid_argument _ -> ())
    [
      (Key_dist.Uniform, 0);
      (Key_dist.Zipf (-0.1), 10);
      (Key_dist.Zipf nan, 10);
      (Key_dist.Hotkey { hot = 1.5; spread = 0.1 }, 10);
      (Key_dist.Hotkey { hot = 0.5; spread = 0. }, 10);
    ]

(* ---------- knee detection ---------- *)

let knee_finds_the_elbow () =
  let curve = [| (10., 1.); (20., 1.1); (30., 1.3); (40., 8.); (50., 30.) |] in
  Alcotest.(check (option int)) "hockey stick" (Some 3) (Knee.detect curve)

let knee_needs_three_points_and_a_rise () =
  Alcotest.(check (option int))
    "two points" None
    (Knee.detect [| (1., 1.); (2., 100.) |]);
  Alcotest.(check (option int))
    "flat curve" None
    (Knee.detect [| (1., 10.); (2., 11.); (3., 12.); (4., 14.) |])

let knee_rejects_unsorted_load () =
  match Knee.detect [| (1., 1.); (3., 2.); (2., 3.) |] with
  | _ -> Alcotest.fail "accepted non-increasing offered load"
  | exception Invalid_argument _ -> ()

(* ---------- the driver end-to-end on the simulator ---------- *)

let open_spec ?(protocol = Runner.Onepaxos) ?(groups = 1) ?(rate = 40_000.)
    ?(poisson = false) ?(mix = { Open_client.reads = 0.5; cas = 0.1; ranges = 0.1 })
    ?(key_dist = Key_dist.Zipf 0.99) () =
  let spec =
    Runner.default_spec ~protocol
      ~placement:(Runner.Dedicated { n_replicas = 3; n_clients = 2 })
  in
  {
    spec with
    Runner.groups;
    duration = Sim_time.ms 30;
    warmup = Sim_time.ms 5;
    drain = Sim_time.ms 10;
    open_loop =
      Some
        {
          Runner.default_open_loop with
          Runner.arrival =
            (if poisson then Arrival.Poisson rate else Arrival.Fixed rate);
          key_dist;
          key_space = 4096;
          mix;
          sessions = 8;
        };
  }

let check_open what (r : Runner.result) =
  Alcotest.(check bool)
    (what ^ ": consistent")
    true
    (Consistency.ok r.Runner.consistency);
  let sink =
    match r.Runner.load with
    | Some s -> s
    | None -> Alcotest.failf "%s: no load sink on an open-loop run" what
  in
  Alcotest.(check bool)
    (what ^ ": completions") true
    (Load_stats.completed sink > 0);
  Alcotest.(check int) (what ^ ": no stale session reads") 0
    (Load_stats.stale_reads sink);
  sink |> ignore;
  sink

let open_loop_sessions_read_their_writes () =
  List.iter
    (fun (name, protocol) ->
      let r = Runner.run (open_spec ~protocol ()) in
      ignore (check_open name r))
    [ ("1paxos", Runner.Onepaxos); ("multipaxos", Runner.Multipaxos) ]

let open_loop_poisson_mencius () =
  (* A non-lease protocol under Poisson arrivals: the driver code path
     is protocol-agnostic. *)
  let r = Runner.run (open_spec ~protocol:Runner.Mencius ~poisson:true ()) in
  ignore (check_open "mencius poisson" r)

let open_loop_is_deterministic () =
  let run () =
    let r = Runner.run (open_spec ~poisson:true ()) in
    let s = Option.get r.Runner.load in
    ( Load_stats.issued s,
      Load_stats.completed s,
      Load_stats.latency_percentiles s,
      r.Runner.commits )
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "same seed, same measurements" true (a = b)

let router_rejects_cross_shard_ranges () =
  (* Two groups, Range-heavy mix over a hash-partitioned keyspace:
     nearly every span straddles both groups, so the router must
     answer [Rejected] (counted by the driver) and stay consistent —
     never silently route or wedge. *)
  let r =
    Runner.run
      (open_spec ~groups:2
         ~mix:{ Open_client.reads = 0.4; cas = 0.; ranges = 0.4 }
         ~key_dist:Key_dist.Uniform ())
  in
  let sink = check_open "sharded ranges" r in
  Alcotest.(check bool)
    "cross-shard ranges rejected" true
    (Load_stats.rejected sink > 0)

let single_group_serves_ranges () =
  let r =
    Runner.run
      (open_spec ~mix:{ Open_client.reads = 0.4; cas = 0.; ranges = 0.4 } ())
  in
  let sink = check_open "single-group ranges" r in
  Alcotest.(check int) "nothing rejected" 0 (Load_stats.rejected sink)

(* ---------- leader leases ---------- *)

let with_lease spec =
  { spec with Runner.lease = Sim_time.ms 2; lease_skew = Sim_time.us 20 }

let read_mix = { Open_client.reads = 0.9; cas = 0.; ranges = 0. }

let leases_serve_local_reads_faster () =
  List.iter
    (fun (name, protocol) ->
      let base = open_spec ~protocol ~mix:read_mix () in
      let plain = Runner.run base in
      let leased = Runner.run (with_lease base) in
      let p s = (Load_stats.latency_percentiles (Option.get s.Runner.load)).Load_stats.p50 in
      ignore (check_open (name ^ " consensus reads") plain);
      ignore (check_open (name ^ " lease reads") leased);
      Alcotest.(check int) (name ^ ": no lease reads without leases") 0
        plain.Runner.lease_reads;
      Alcotest.(check bool)
        (Printf.sprintf "%s: most reads served locally (%d)" name
           leased.Runner.lease_reads)
        true
        (leased.Runner.lease_reads > Load_stats.completed (Option.get leased.Runner.load) / 2);
      Alcotest.(check bool)
        (Printf.sprintf "%s: lease p50 %dns < consensus p50 %dns" name
           (p leased) (p plain))
        true
        (p leased < p plain))
    [ ("1paxos", Runner.Onepaxos); ("multipaxos", Runner.Multipaxos) ]

let lease_crash_never_serves_stale () =
  (* The regression the lease design must survive: crash the
     lease-holding leader mid-run. The successor must wait out the
     grants before its writes can commit, so no session may ever see a
     read-your-writes violation — from either the old or new leader. *)
  List.iter
    (fun (name, protocol) ->
      let spec =
        { (with_lease (open_spec ~protocol ~rate:20_000. ~mix:read_mix ())) with
          Runner.duration = Sim_time.ms 60;
          timeout = Sim_time.us 4000;
          nemesis =
            {
              Ci_faults.seed = 7;
              faults =
                [
                  Ci_faults.Crash
                    {
                      node = 0;
                      at = Sim_time.ms 20;
                      down_for = Some (Sim_time.ms 15);
                    };
                ];
            };
        }
      in
      let r = Runner.run spec in
      ignore (check_open (name ^ " lease crash") r);
      (* The lease was actually exercised before the crash... *)
      Alcotest.(check bool) (name ^ ": lease reads happened") true
        (r.Runner.lease_reads > 0);
      (* ...and the cluster kept committing after it. *)
      Alcotest.(check bool) (name ^ ": commits after crash") true
        (r.Runner.commits > 0))
    [ ("1paxos", Runner.Onepaxos); ("multipaxos", Runner.Multipaxos) ]

(* ----- sparse session store -------------------------------------------- *)

(* The packed-key store must behave exactly like the per-session
   newest-first history it replaces, at a population of one million
   logical clients, with memory proportional to touched sessions. *)
let session_store_holds_a_million_clients () =
  let module S = Ci_load.Session_store in
  let key_space = 64 in
  let s = S.create ~key_space in
  let population = 1_000_000 in
  (* Every logical client writes twice to one key; a scattered subset
     writes to a second key. Payloads are unique per (client, write). *)
  let key_of c = c mod key_space in
  for c = 0 to population - 1 do
    let k = key_of c in
    S.push s ~lclient:c ~key:k ((c * 4) + 1);
    S.push s ~lclient:c ~key:k ((c * 4) + 2);
    if c mod 17 = 0 then
      S.push s ~lclient:c ~key:((k + 1) mod key_space) ((c * 4) + 3)
  done;
  let expected_sessions = population + ((population + 16) / 17) in
  Alcotest.(check int) "distinct sessions" expected_sessions (S.sessions s);
  (* Spot-check histories across the population. *)
  for c = 0 to population - 1 do
    if c mod 9973 = 0 then begin
      let k = key_of c in
      Alcotest.(check (option int))
        "newest is the second write"
        (Some ((c * 4) + 2))
        (S.newest s ~lclient:c ~key:k);
      Alcotest.(check bool) "older write still present" true
        (S.mem s ~lclient:c ~key:k ((c * 4) + 1));
      Alcotest.(check bool) "foreign payload absent" false
        (S.mem s ~lclient:c ~key:k ((c * 4) + 5))
    end
  done;
  (* An untouched (client, key) pair reads empty even at full load. *)
  Alcotest.(check (option int))
    "untouched session is empty" None
    (S.newest s ~lclient:123_456 ~key:((key_of 123_456 + 2) mod key_space));
  (* Footprint: tables and arena only — far under what a boxed
     tuple-keyed Hashtbl of 2M+ entries would hold, and independent of
     population * key_space (which is 64M sessions). *)
  let writes = (2 * population) + ((population + 16) / 17) in
  Alcotest.(check bool)
    (Printf.sprintf "words %d bounded by sessions+writes" (S.words s))
    true
    (S.words s < 8 * (expected_sessions + writes))

let session_store_rejects_bad_keys () =
  let module S = Ci_load.Session_store in
  let s = S.create ~key_space:8 in
  Alcotest.check_raises "key out of range"
    (Invalid_argument "Session_store: key out of range") (fun () ->
      S.push s ~lclient:0 ~key:8 1);
  Alcotest.check_raises "negative lclient"
    (Invalid_argument "Session_store: lclient out of range") (fun () ->
      S.push s ~lclient:(-1) ~key:0 1);
  Alcotest.check_raises "key_space too small"
    (Invalid_argument "Session_store: key_space must be >= 1") (fun () ->
      ignore (S.create ~key_space:0))

let suite =
  ( "load",
    [
      Alcotest.test_case "fixed arrival is a metronome" `Quick
        fixed_arrival_is_a_metronome;
      Alcotest.test_case "poisson arrival: rate and determinism" `Quick
        poisson_arrival_matches_rate_and_seed;
      Alcotest.test_case "arrival spec validation" `Quick arrival_rejects_bad_rates;
      Alcotest.test_case "zipf skews toward low ranks" `Quick
        zipf_skews_toward_low_ranks;
      Alcotest.test_case "zipf 0 is uniform" `Quick zipf_zero_degenerates_to_uniform;
      Alcotest.test_case "hotkey respects fractions" `Quick hotkey_respects_fractions;
      Alcotest.test_case "sampler spec validation" `Quick sampler_rejects_bad_specs;
      QCheck_alcotest.to_alcotest sampler_prop;
      Alcotest.test_case "knee finds the elbow" `Quick knee_finds_the_elbow;
      Alcotest.test_case "knee needs three points and a rise" `Quick
        knee_needs_three_points_and_a_rise;
      Alcotest.test_case "knee rejects unsorted load" `Quick knee_rejects_unsorted_load;
      Alcotest.test_case "open-loop sessions read their writes" `Slow
        open_loop_sessions_read_their_writes;
      Alcotest.test_case "open loop over mencius, poisson arrivals" `Slow
        open_loop_poisson_mencius;
      Alcotest.test_case "open loop is deterministic" `Slow open_loop_is_deterministic;
      Alcotest.test_case "router rejects cross-shard ranges" `Slow
        router_rejects_cross_shard_ranges;
      Alcotest.test_case "single group serves ranges" `Slow single_group_serves_ranges;
      Alcotest.test_case "leases serve local reads faster" `Slow
        leases_serve_local_reads_faster;
      Alcotest.test_case "lease-holding leader crash: no stale reads" `Slow
        lease_crash_never_serves_stale;
      Alcotest.test_case "session store holds a million clients" `Slow
        session_store_holds_a_million_clients;
      Alcotest.test_case "session store validates keys" `Quick
        session_store_rejects_bad_keys;
    ] )

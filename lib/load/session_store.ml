(* Sparse per-(logical client, key) write-history store.

   The open-loop driver tracks, for every logical client and key it has
   written, the client's acked payloads (newest first) to judge
   read-your-writes. A boxed-tuple-keyed Hashtbl spends three words of
   key box plus a list cell per payload and hashes an allocated tuple on
   every probe. At open-loop populations (10^6 logical clients) that is
   both allocation-heavy and cache-hostile.

   This store packs the key into a single immediate int
   ([lclient * key_space + key]) and keeps everything in four unboxed
   int arrays:

   - an open-addressing table (linear probing, power-of-two capacity)
     from packed key to the head of that session's history chain;
   - an append-only arena of [(payload, next)] cells holding the
     histories as unboxed linked lists.

   No per-entry boxing, no tuple hashing, no GC pressure beyond the
   occasional array doubling. Memory is proportional to the number of
   *touched* sessions and acked writes, never to
   population * key_space. *)

type t = {
  key_space : int;
  mutable mask : int; (* capacity - 1; capacity is a power of two *)
  mutable keys : int array; (* packed key + 1; 0 = empty slot *)
  mutable heads : int array; (* arena index of newest cell; 0 = none *)
  mutable count : int; (* distinct sessions present *)
  mutable cell_data : int array; (* arena: payload of cell i *)
  mutable cell_next : int array; (* arena: older cell, 0 = end *)
  mutable cells : int; (* next free arena index; 0 is the nil sentinel *)
}

let initial_capacity = 16

let create ~key_space =
  if key_space < 1 then invalid_arg "Session_store: key_space must be >= 1";
  if key_space > max_int / 4096 then
    invalid_arg "Session_store: key_space too large to pack";
  {
    key_space;
    mask = initial_capacity - 1;
    keys = Array.make initial_capacity 0;
    heads = Array.make initial_capacity 0;
    count = 0;
    cell_data = Array.make initial_capacity 0;
    cell_next = Array.make initial_capacity 0;
    cells = 1;
  }

let pack t ~lclient ~key =
  if key < 0 || key >= t.key_space then
    invalid_arg "Session_store: key out of range";
  if lclient < 0 || lclient > (max_int - key) / t.key_space then
    invalid_arg "Session_store: lclient out of range";
  (lclient * t.key_space) + key

(* Fibonacci multiplicative mix; OCaml ints are 63-bit so the high bits
   the multiply produces are kept by masking after a right shift. *)
let hash k = (k * 0x2545F4914F6CDD1D) lsr 20

(* Index of [packed]'s slot, or of the empty slot where it belongs. *)
let find_slot keys mask packed =
  let stored = packed + 1 in
  let rec probe i =
    let k = Array.unsafe_get keys i in
    if k = 0 || k = stored then i else probe ((i + 1) land mask)
  in
  probe (hash packed land mask)

let grow t =
  let cap = (t.mask + 1) * 2 in
  let keys = Array.make cap 0 in
  let heads = Array.make cap 0 in
  let mask = cap - 1 in
  Array.iteri
    (fun i k ->
      if k <> 0 then begin
        let j = find_slot keys mask (k - 1) in
        keys.(j) <- k;
        heads.(j) <- t.heads.(i)
      end)
    t.keys;
  t.keys <- keys;
  t.heads <- heads;
  t.mask <- mask

let new_cell t ~data ~next =
  if t.cells >= Array.length t.cell_data then begin
    let cap = Array.length t.cell_data * 2 in
    let grow_arr a =
      let a' = Array.make cap 0 in
      Array.blit a 0 a' 0 (Array.length a);
      a'
    in
    t.cell_data <- grow_arr t.cell_data;
    t.cell_next <- grow_arr t.cell_next
  end;
  let i = t.cells in
  t.cells <- i + 1;
  t.cell_data.(i) <- data;
  t.cell_next.(i) <- next;
  i

let push t ~lclient ~key data =
  let packed = pack t ~lclient ~key in
  (* Keep load factor under 3/4 so linear probing stays short. *)
  if 4 * (t.count + 1) > 3 * (t.mask + 1) then grow t;
  let i = find_slot t.keys t.mask packed in
  if t.keys.(i) = 0 then begin
    t.keys.(i) <- packed + 1;
    t.count <- t.count + 1
  end;
  t.heads.(i) <- new_cell t ~data ~next:t.heads.(i)

let newest t ~lclient ~key =
  let i = find_slot t.keys t.mask (pack t ~lclient ~key) in
  if t.keys.(i) = 0 then None else Some t.cell_data.(t.heads.(i))

let mem t ~lclient ~key data =
  let i = find_slot t.keys t.mask (pack t ~lclient ~key) in
  if t.keys.(i) = 0 then false
  else begin
    let rec walk c =
      c <> 0 && (t.cell_data.(c) = data || walk t.cell_next.(c))
    in
    walk t.heads.(i)
  end

let sessions t = t.count

let words t =
  (* Live heap words held in the four arrays (headers excluded):
     table + arena, i.e. the store's actual footprint. *)
  (2 * (t.mask + 1)) + (2 * Array.length t.cell_data)

module Histogram = Ci_stats.Histogram

type t = {
  from_ : int;
  until_ : int;
  lat : Histogram.t;
  service : Histogram.t;
  mutable issued : int;
  mutable completed : int;
  mutable retries : int;
  mutable rejected : int;
  mutable stale_reads : int;
  mutable max_backlog : int;
}

let create ~from_ ~until_ =
  if until_ <= from_ then invalid_arg "Load_stats.create: empty window";
  {
    from_;
    until_;
    lat = Histogram.create ();
    service = Histogram.create ();
    issued = 0;
    completed = 0;
    retries = 0;
    rejected = 0;
    stale_reads = 0;
    max_backlog = 0;
  }

let in_window t at = at >= t.from_ && at < t.until_
let note_issued t ~at = if in_window t at then t.issued <- t.issued + 1
let note_retry t = t.retries <- t.retries + 1
let note_rejected t = t.rejected <- t.rejected + 1
let note_stale_read t = t.stale_reads <- t.stale_reads + 1
let note_backlog t n = if n > t.max_backlog then t.max_backlog <- n

let record t ~intended_at ~sent_at ~replied_at =
  if in_window t replied_at then begin
    t.completed <- t.completed + 1;
    Histogram.add t.lat (max 0 (replied_at - intended_at));
    Histogram.add t.service (max 0 (replied_at - sent_at))
  end

let issued t = t.issued
let completed t = t.completed
let retries t = t.retries
let rejected t = t.rejected
let stale_reads t = t.stale_reads
let max_backlog t = t.max_backlog
let latency t = t.lat
let service t = t.service

type percentiles = { p50 : int; p99 : int; p999 : int }

let percentiles_of h =
  {
    p50 = Histogram.quantile h 0.50;
    p99 = Histogram.quantile h 0.99;
    p999 = Histogram.quantile h 0.999;
  }

let latency_percentiles t = percentiles_of t.lat
let service_percentiles t = percentiles_of t.service

let throughput t =
  float_of_int t.completed /. (float_of_int (t.until_ - t.from_) /. 1e9)

let merge ~into src =
  Histogram.merge ~into:into.lat src.lat;
  Histogram.merge ~into:into.service src.service;
  into.issued <- into.issued + src.issued;
  into.completed <- into.completed + src.completed;
  into.retries <- into.retries + src.retries;
  into.rejected <- into.rejected + src.rejected;
  into.stale_reads <- into.stale_reads + src.stale_reads;
  into.max_backlog <- max into.max_backlog src.max_backlog

(** Open-loop arrival processes.

    The driver asks for the gap to the next {e intended} arrival; when
    its timer fires late it issues every overdue request immediately,
    still stamped with the intended instant — latency then charges the
    backlog to the system instead of silently thinning the schedule
    (coordinated omission). *)

type spec =
  | Fixed of float  (** Metronome at the given rate (requests/second). *)
  | Poisson of float
      (** Poisson process at the given mean rate: exponential gaps,
          memoryless bursts. *)

val rate : spec -> float
(** [rate spec] is the offered rate in requests/second. *)

type t
(** A compiled arrival process. *)

val validate : spec -> unit
(** Raises [Invalid_argument] as {!compile} would. *)

val compile : spec -> t
(** Validates ([Invalid_argument] on a non-positive or non-finite rate)
    and precomputes. *)

val gap : t -> Ci_engine.Rng.t -> Ci_engine.Sim_time.t
(** [gap t rng] is the nanoseconds between one intended arrival and the
    next (at least 1). [Fixed] consumes no draws; [Poisson] consumes
    one. *)

val pp_spec : Format.formatter -> spec -> unit

(** Open-loop workload driver.

    Unlike the closed-loop {!Ci_workload.Client} (one request in flight,
    next issued on reply), this driver follows an {!Arrival} schedule:
    requests enter at their {e intended} instants regardless of how the
    system is doing, multiplexing a large population of logical clients
    over a bounded number of concurrent sessions. Latency is measured
    from the intended arrival, so a saturated system shows its real
    queueing delay instead of silently throttling the offered load
    (coordinated omission).

    One driver instance lives on one client node of either backend (the
    simulator or the live runtime) behind the {!Ci_engine.Node_env}
    seam, exactly like the protocols it exercises. *)

type mix = { reads : float; cas : float; ranges : float }
(** Operation mix by fraction; the remainder are [Put]s. *)

type config = {
  targets : int array;  (** Replica node ids to address. *)
  primary : int;  (** Starting index into [targets]. *)
  failover : bool;  (** Rotate targets on timeout. *)
  timeout : Ci_engine.Sim_time.t;  (** Per-attempt retransmit timeout. *)
  arrival : Arrival.spec;  (** Offered-load schedule. *)
  key_dist : Key_dist.spec;  (** Key popularity. *)
  key_space : int;
  mix : mix;
  range_span : int;  (** Keys per [Range] ([lo, lo + range_span)). *)
  population : int;
      (** Logical clients multiplexed over the sessions; each request
          is attributed to one, for read-your-writes tracking. *)
  sessions : int;  (** Maximum concurrently in-flight requests. *)
  relaxed_reads : bool;
  stop_at : Ci_engine.Sim_time.t;
      (** No arrivals are scheduled at or past this instant. *)
}

val default_config : targets:int array -> config
(** 50k fixed ops/s, uniform keys, 50% reads, 100k logical clients over
    16 sessions. *)

val validate_config : config -> unit
(** Raises [Invalid_argument] on empty targets, non-positive timeout /
    keyspace / population / sessions, a mix that is negative or sums
    past 1, or invalid arrival / key-distribution parameters. *)

type t

val create :
  env:Ci_consensus.Wire.t Ci_engine.Node_env.t ->
  config:config ->
  stats:Load_stats.t ->
  t
(** [create ~env ~config ~stats] validates and attaches a driver to a
    node. Splits one child rng from the env at creation. *)

val start : t -> unit
(** Begins the arrival loop at the env's current instant. *)

val handle : t -> src:int -> Ci_consensus.Wire.t -> unit
(** Consumes [Reply] messages; everything else is ignored. *)

val node_id : t -> int
val completed : t -> int

val outstanding : t -> int
(** In-flight plus backlogged requests (drains to 0 after [stop_at]
    given enough quiet time). *)

val issued : t -> (int * Ci_rsm.Command.t) list
(** Every issued request as [(req_id, cmd)], oldest first — the
    consistency checker's proposed-commands input. *)

val acked_writes : t -> (int * int) list
(** [(node_id, req_id)] of every acknowledged write, oldest first. *)

(** Sparse per-(logical client, key) write-history store.

    Backs the open-loop driver's read-your-writes session tracking: for
    each logical client and key, the acked write payloads newest-first.
    Keys are packed into a single immediate int
    ([lclient * key_space + key]) over an open-addressing table with an
    unboxed cell arena, so memory and GC cost scale with the number of
    sessions actually touched — not with [population * key_space] — and
    probes hash an int, not an allocated tuple. Holds ~10^6 logical
    clients comfortably (see the load test suite). *)

type t

val create : key_space:int -> t
(** [create ~key_space] is an empty store for keys in
    [0 .. key_space - 1]. Raises [Invalid_argument] if [key_space < 1]
    or too large to pack. *)

val push : t -> lclient:int -> key:int -> int -> unit
(** [push t ~lclient ~key data] records [data] as the session's newest
    acked write payload. Raises [Invalid_argument] if [key] is outside
    [0 .. key_space - 1] or [lclient] is negative / unpackable. *)

val newest : t -> lclient:int -> key:int -> int option
(** Newest pushed payload of the session, if any. *)

val mem : t -> lclient:int -> key:int -> int -> bool
(** [mem t ~lclient ~key data] is true iff [data] was ever pushed for
    the session. *)

val sessions : t -> int
(** Number of distinct (logical client, key) sessions touched. *)

val words : t -> int
(** Heap words held by the store's arrays — the footprint the 1M-client
    test bounds. *)

module Wire = Ci_consensus.Wire
module Node_env = Ci_engine.Node_env
module Rng = Ci_engine.Rng
module Command = Ci_rsm.Command

type mix = { reads : float; cas : float; ranges : float }

type config = {
  targets : int array;
  primary : int;
  failover : bool;
  timeout : int;
  arrival : Arrival.spec;
  key_dist : Key_dist.spec;
  key_space : int;
  mix : mix;
  range_span : int;
  population : int;
  sessions : int;
  relaxed_reads : bool;
  stop_at : int;
}

let default_config ~targets =
  {
    targets;
    primary = 0;
    failover = true;
    timeout = Ci_engine.Sim_time.ms 2;
    arrival = Arrival.Fixed 50_000.;
    key_dist = Key_dist.Uniform;
    key_space = 64;
    mix = { reads = 0.5; cas = 0.; ranges = 0. };
    range_span = 8;
    population = 100_000;
    sessions = 16;
    relaxed_reads = false;
    stop_at = Ci_engine.Sim_time.ms 50;
  }

let validate_config cfg =
  if Array.length cfg.targets = 0 then
    invalid_arg "Open_client: empty target list";
  if cfg.timeout <= 0 then invalid_arg "Open_client: timeout must be > 0";
  if cfg.key_space < 1 then invalid_arg "Open_client: key_space must be >= 1";
  if cfg.population < 1 then
    invalid_arg "Open_client: population must be >= 1";
  if cfg.sessions < 1 then invalid_arg "Open_client: sessions must be >= 1";
  let m = cfg.mix in
  if
    m.reads < 0. || m.cas < 0. || m.ranges < 0.
    || m.reads +. m.cas +. m.ranges > 1. +. 1e-9
  then invalid_arg "Open_client: mix fractions must be >= 0 and sum <= 1";
  if m.ranges > 0. && cfg.range_span < 1 then
    invalid_arg "Open_client: range_span must be >= 1";
  Arrival.validate cfg.arrival;
  Key_dist.validate cfg.key_dist ~key_space:cfg.key_space

type inflight = {
  i_req : int;
  i_cmd : Command.t;
  i_lclient : int;
  i_intended : int;
  i_sent : int;
  mutable i_attempt : int;
  mutable i_timer : Node_env.timer option;
}

type pending = { p_lclient : int; p_cmd : Command.t; p_intended : int }

type t = {
  env : Wire.t Node_env.t;
  cfg : config;
  stats : Load_stats.t;
  rng : Rng.t;
  sampler : Key_dist.t;
  arrival : Arrival.t;
  mutable target_idx : int;
  mutable next_req : int;
  mutable next_intended : int;
  mutable next_data : int;
  backlog : pending Queue.t;
  inflight : (int, inflight) Hashtbl.t; (* req_id -> op *)
  (* Session tracker: per (logical client, key), that client's acked
     write payloads, newest first. Payloads are globally unique, so a
     read returning one of the client's *older* payloads proves the
     read serialized before an already-acked write — a read-your-writes
     violation no value coincidence can fake. *)
  own : Session_store.t;
  mutable log : (int * Command.t) list;
  mutable acked : (int * int) list;
  mutable n_done : int;
}

let now t = t.env.Node_env.now ()

(* Globally unique write payload: the driver's sequence number tagged
   with its node id, so concurrent drivers never mint the same value. *)
let fresh_data t =
  let d = (t.next_data * 1024) + (t.env.Node_env.id land 1023) in
  t.next_data <- t.next_data + 1;
  d

let own_newest t ~lclient ~key = Session_store.newest t.own ~lclient ~key
let own_push t ~lclient ~key d = Session_store.push t.own ~lclient ~key d

(* Draw order is fixed (logical client, key, op class, then payload
   draws) so a load point is reproducible from the run seed alone. *)
let pick t =
  let lclient = Rng.int t.rng t.cfg.population in
  let key = Key_dist.sample t.sampler t.rng in
  let u = Rng.float t.rng 1. in
  let m = t.cfg.mix in
  let cmd =
    if u < m.reads then Command.Get { key }
    else if u < m.reads +. m.ranges then
      Command.Range { lo = key; hi = key + t.cfg.range_span }
    else if u < m.reads +. m.ranges +. m.cas then
      let expect =
        match own_newest t ~lclient ~key with Some d -> d | None -> 0
      in
      Command.Cas { key; expect; data = fresh_data t }
    else Command.Put { key; data = fresh_data t }
  in
  (lclient, cmd)

let rec transmit t op =
  let dst = t.cfg.targets.(t.target_idx) in
  t.env.Node_env.send ~dst
    (Wire.Request
       { req_id = op.i_req; cmd = op.i_cmd; relaxed_read = t.cfg.relaxed_reads });
  op.i_attempt <- op.i_attempt + 1;
  let this_attempt = op.i_attempt in
  op.i_timer <-
    Some
      (t.env.Node_env.after_cancel ~delay:t.cfg.timeout (fun () ->
           op.i_timer <- None;
           if
             Hashtbl.mem t.inflight op.i_req
             && this_attempt = op.i_attempt
           then begin
             Load_stats.note_retry t.stats;
             if t.cfg.failover then
               t.target_idx <-
                 (t.target_idx + 1) mod Array.length t.cfg.targets;
             transmit t op
           end))

let send_op t (p : pending) =
  let req_id = t.next_req in
  t.next_req <- t.next_req + 1;
  t.log <- (req_id, p.p_cmd) :: t.log;
  let op =
    {
      i_req = req_id;
      i_cmd = p.p_cmd;
      i_lclient = p.p_lclient;
      i_intended = p.p_intended;
      i_sent = now t;
      i_attempt = 0;
      i_timer = None;
    }
  in
  Hashtbl.replace t.inflight req_id op;
  transmit t op

(* Bounded sessions: at most [sessions] requests in flight; the rest
   queue in the driver with their intended stamps intact, so the time
   spent waiting for a session is charged to the measured latency. *)
let pump t =
  while
    Hashtbl.length t.inflight < t.cfg.sessions
    && not (Queue.is_empty t.backlog)
  do
    send_op t (Queue.pop t.backlog)
  done;
  Load_stats.note_backlog t.stats (Queue.length t.backlog)

let enqueue t ~intended =
  let lclient, cmd = pick t in
  Load_stats.note_issued t.stats ~at:intended;
  Queue.push { p_lclient = lclient; p_cmd = cmd; p_intended = intended }
    t.backlog;
  pump t

(* The arrival loop: issue every op whose intended instant has passed
   (a late timer issues the whole backlog at once — catch-up, not
   omission), then sleep until the next intended arrival. *)
let rec tick t =
  let at = now t in
  while t.next_intended <= at && t.next_intended < t.cfg.stop_at do
    enqueue t ~intended:t.next_intended;
    t.next_intended <- t.next_intended + Arrival.gap t.arrival t.rng
  done;
  if t.next_intended < t.cfg.stop_at then
    t.env.Node_env.after
      ~delay:(max 1 (t.next_intended - at))
      (fun () -> tick t)

let start t = tick t

let cancel_op_timer op =
  match op.i_timer with
  | Some tm ->
    Node_env.cancel_timer tm;
    op.i_timer <- None
  | None -> ()

let check_ryw t op result =
  match (op.i_cmd, result) with
  | Command.Get { key }, Command.Found got -> (
    match own_newest t ~lclient:op.i_lclient ~key with
    | None -> ()
    | Some newest -> (
      match got with
      | None ->
        (* An acked write exists and nothing deletes: reading an empty
           cell is unconditionally stale. *)
        Load_stats.note_stale_read t.stats
      | Some d ->
        if
          d <> newest
          && Session_store.mem t.own ~lclient:op.i_lclient ~key d
        then Load_stats.note_stale_read t.stats))
  | _ -> ()

let note_write_acked t op result =
  match (op.i_cmd, result) with
  | Command.Put { key; data }, _ ->
    t.acked <- (t.env.Node_env.id, op.i_req) :: t.acked;
    own_push t ~lclient:op.i_lclient ~key data
  | Command.Cas { key; data; _ }, Command.Swapped true ->
    t.acked <- (t.env.Node_env.id, op.i_req) :: t.acked;
    own_push t ~lclient:op.i_lclient ~key data
  | Command.Cas _, _ ->
    (* The failed swap was still ordered: keep it in [acked] so the
       consistency checker demands its decision, like any write. *)
    t.acked <- (t.env.Node_env.id, op.i_req) :: t.acked
  | _ -> ()

let handle t ~src:_ msg =
  match msg with
  | Wire.Reply { req_id; result } -> (
    match Hashtbl.find_opt t.inflight req_id with
    | None -> () (* stale duplicate reply *)
    | Some op ->
      Hashtbl.remove t.inflight req_id;
      cancel_op_timer op;
      t.n_done <- t.n_done + 1;
      (match result with
      | Command.Rejected -> Load_stats.note_rejected t.stats
      | _ -> ());
      Load_stats.record t.stats ~intended_at:op.i_intended ~sent_at:op.i_sent
        ~replied_at:(now t);
      check_ryw t op result;
      note_write_acked t op result;
      pump t)
  | _ -> () (* drivers only consume replies *)

let node_id t = t.env.Node_env.id
let completed t = t.n_done
let outstanding t = Hashtbl.length t.inflight + Queue.length t.backlog
let issued t = List.rev t.log
let acked_writes t = List.rev t.acked

let create ~env ~config ~stats =
  validate_config config;
  let rng = Rng.split env.Node_env.rng in
  {
    env;
    cfg = config;
    stats;
    rng;
    sampler = Key_dist.compile config.key_dist ~key_space:config.key_space;
    arrival = Arrival.compile config.arrival;
    target_idx = config.primary mod Array.length config.targets;
    next_req = 0;
    next_intended = 0;
    next_data = 1;
    backlog = Queue.create ();
    inflight = Hashtbl.create 64;
    own = Session_store.create ~key_space:config.key_space;
    log = [];
    acked = [];
    n_done = 0;
  }

(** Saturation-knee detection for latency-vs-load curves. *)

val detect : (float * float) array -> int option
(** [detect points] is the index of the knee of a
    [(offered_load, latency)] curve — the last load point before
    queueing delay takes off — found by maximal distance below the
    diagonal of the normalized curve (the "kneedle" construction).
    [None] when fewer than 3 points, or when the curve never rises by
    at least 1.5x (no saturation in view). Raises [Invalid_argument]
    unless offered loads are strictly increasing. *)

(** Key samplers for the workload generator.

    A sampler is compiled once per run ([compile]) and then drawn from
    with no allocation: Zipfian sampling walks a precomputed CDF by
    binary search rather than evaluating powers per draw. *)

type spec =
  | Uniform  (** Every key equally likely. *)
  | Zipf of float
      (** Zipfian with the given exponent (theta); [0.] degenerates to
          uniform, [0.99] is the YCSB default skew. Key [0] is the most
          popular. *)
  | Hotkey of { hot : float; spread : float }
      (** A [hot] fraction of draws lands uniformly in the first
          [spread] fraction of the keyspace; the rest spread uniformly
          over the remaining keys. *)

type t
(** A compiled sampler. *)

val validate : spec -> key_space:int -> unit
(** Raises [Invalid_argument] as {!compile} would, without paying for
    the precomputation. *)

val compile : spec -> key_space:int -> t
(** [compile spec ~key_space] validates and precomputes. Raises
    [Invalid_argument] on a non-positive keyspace, negative or
    non-finite skew, or out-of-range hotkey fractions. *)

val sample : t -> Ci_engine.Rng.t -> int
(** [sample t rng] draws a key in [\[0, key_space)], consuming exactly
    one draw from [rng]. *)

val pp_spec : Format.formatter -> spec -> unit

(** Measurement sink for one open-loop load point.

    Latencies land in log-bucketed histograms (two of them: from the
    {e intended} arrival, and from the first transmission) so a
    million-request run costs a few hundred integers, not a sample
    list. Only completions inside the configured measurement window
    count — warmup and drain are excluded at record time. *)

type t

val create : from_:Ci_engine.Sim_time.t -> until_:Ci_engine.Sim_time.t -> t
(** [create ~from_ ~until_] measures completions in [\[from_, until_)].
    Raises [Invalid_argument] on an empty window. *)

val record :
  t ->
  intended_at:Ci_engine.Sim_time.t ->
  sent_at:Ci_engine.Sim_time.t ->
  replied_at:Ci_engine.Sim_time.t ->
  unit
(** Logs one completed request (ignored outside the window). *)

val note_issued : t -> at:Ci_engine.Sim_time.t -> unit
val note_retry : t -> unit
val note_rejected : t -> unit

val note_stale_read : t -> unit
(** A read-your-writes violation observed by the session tracker. *)

val note_backlog : t -> int -> unit
(** Tracks the high-water mark of the driver's not-yet-sent backlog. *)

val issued : t -> int
val completed : t -> int
val retries : t -> int
val rejected : t -> int
val stale_reads : t -> int
val max_backlog : t -> int

val latency : t -> Ci_stats.Histogram.t
(** Intended-arrival-to-reply latency histogram. *)

val service : t -> Ci_stats.Histogram.t
(** Send-to-reply (service) latency histogram. *)

type percentiles = { p50 : int; p99 : int; p999 : int }

val latency_percentiles : t -> percentiles
val service_percentiles : t -> percentiles

val throughput : t -> float
(** Completions per second over the measurement window. *)

val merge : into:t -> t -> unit
(** Pools another collector's counts and buckets (e.g. per-driver sinks
    into one run-level sink). Window bounds of [into] are kept. *)

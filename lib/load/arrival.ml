module Rng = Ci_engine.Rng

type spec = Fixed of float | Poisson of float

let rate = function Fixed r | Poisson r -> r

let validate spec =
  let r = rate spec in
  if not (Float.is_finite r) || r <= 0. then
    invalid_arg "Arrival: rate must be finite and > 0"

type t = T_fixed of int | T_poisson of float

let compile spec =
  validate spec;
  match spec with
  | Fixed r -> T_fixed (max 1 (int_of_float (1e9 /. r)))
  | Poisson r -> T_poisson (1e9 /. r)

(* Nanoseconds from one intended arrival to the next. Fixed is a
   metronome; Poisson draws exponential gaps (memoryless, so bursts
   occur at any offered rate — the harder, more realistic schedule). *)
let gap t rng =
  match t with
  | T_fixed g -> g
  | T_poisson mean -> max 1 (int_of_float (Rng.exponential rng ~mean))

let pp_spec fmt = function
  | Fixed r -> Format.fprintf fmt "fixed(%.0f/s)" r
  | Poisson r -> Format.fprintf fmt "poisson(%.0f/s)" r

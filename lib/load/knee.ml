(* Kneedle-style elbow detection on a latency-vs-offered-load curve.
   Normalize both axes to [0,1]; for the convex, increasing hockey
   stick this curve makes, the knee is the point furthest *below* the
   diagonal, i.e. argmax (x_n - y_n). Flat curves (no saturation in
   view) and short curves have no knee. *)

let detect points =
  let n = Array.length points in
  if n < 3 then None
  else begin
    for i = 1 to n - 1 do
      if fst points.(i) <= fst points.(i - 1) then
        invalid_arg "Knee.detect: offered loads must be strictly increasing"
    done;
    let x0 = fst points.(0) and x1 = fst points.(n - 1) in
    let ymin =
      Array.fold_left (fun m (_, y) -> Float.min m y) infinity points
    and ymax =
      Array.fold_left (fun m (_, y) -> Float.max m y) neg_infinity points
    in
    if ymax <= ymin *. 1.5 then None (* no saturation visible: flat *)
    else begin
      let best = ref (-1) and bestd = ref 0. in
      Array.iteri
        (fun i (x, y) ->
          let xn = (x -. x0) /. (x1 -. x0)
          and yn = (y -. ymin) /. (ymax -. ymin) in
          let d = xn -. yn in
          if d > !bestd then begin
            best := i;
            bestd := d
          end)
        points;
      if !best < 0 then None else Some !best
    end
  end

module Rng = Ci_engine.Rng

type spec =
  | Uniform
  | Zipf of float
  | Hotkey of { hot : float; spread : float }

type t =
  | T_uniform of int
  | T_cdf of float array (* cumulative mass per key; last entry = 1.0 *)
  | T_hotkey of { hot : float; hot_keys : int; key_space : int }

let validate spec ~key_space =
  if key_space < 1 then invalid_arg "Key_dist: key_space must be >= 1";
  match spec with
  | Uniform -> ()
  | Zipf theta ->
    if not (Float.is_finite theta) || theta < 0. then
      invalid_arg "Key_dist: Zipf exponent must be finite and >= 0"
  | Hotkey { hot; spread } ->
    if not (Float.is_finite hot && Float.is_finite spread) then
      invalid_arg "Key_dist: Hotkey parameters must be finite";
    if hot < 0. || hot > 1. then
      invalid_arg "Key_dist: Hotkey hot fraction must be in [0, 1]";
    if spread <= 0. || spread > 1. then
      invalid_arg "Key_dist: Hotkey spread must be in (0, 1]"

let compile spec ~key_space =
  validate spec ~key_space;
  match spec with
  | Uniform -> T_uniform key_space
  | Zipf theta ->
    (* Precomputed CDF: rank r (0-based) carries mass 1/(r+1)^theta.
       One O(key_space) pass at compile time buys O(log key_space)
       sampling with no per-draw [**] calls. *)
    let cdf = Array.make key_space 0. in
    let acc = ref 0. in
    for r = 0 to key_space - 1 do
      acc := !acc +. (1. /. Float.pow (float_of_int (r + 1)) theta);
      cdf.(r) <- !acc
    done;
    let total = !acc in
    for r = 0 to key_space - 1 do
      cdf.(r) <- cdf.(r) /. total
    done;
    cdf.(key_space - 1) <- 1.;
    T_cdf cdf
  | Hotkey { hot; spread } ->
    T_hotkey
      {
        hot;
        hot_keys = max 1 (int_of_float (spread *. float_of_int key_space));
        key_space;
      }

(* Smallest rank whose cumulative mass covers [u]. *)
let search cdf u =
  let n = Array.length cdf in
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo

let sample t rng =
  match t with
  | T_uniform n -> Rng.int rng n
  | T_cdf cdf -> search cdf (Rng.float rng 1.)
  | T_hotkey { hot; hot_keys; key_space } ->
    if hot_keys >= key_space || Rng.chance rng hot then Rng.int rng hot_keys
    else hot_keys + Rng.int rng (key_space - hot_keys)

let pp_spec fmt = function
  | Uniform -> Format.pp_print_string fmt "uniform"
  | Zipf theta -> Format.fprintf fmt "zipf(%.2f)" theta
  | Hotkey { hot; spread } ->
    Format.fprintf fmt "hotkey(%.0f%%->%.0f%%)" (hot *. 100.) (spread *. 100.)

(** Declarative, seeded fault schedules — the nemesis DSL.

    One schedule describes every fault a run will suffer, in one place,
    independent of the backend that executes it. The simulator compiles
    it to per-link filters, node down-gates and restart hooks
    ([Ci_workload.Nemesis]); the live runtime compiles it to a nemesis
    controller that kills, pauses and restarts replica domains and
    filters messages at the SPSC ring boundary ([Ci_runtime.Live]).

    All times are integer nanoseconds relative to the start of the run
    ({!Ci_engine.Sim_time}), on the backend's own clock (virtual in the
    simulator, monotonic in the live runtime).

    Physical readings of each fault:
    - {b Crash}: the process dies losing all volatile state; its durable
      state (the modeled fsynced registers: decided log, promises,
      accepted proposals, proposal-number round) survives. In-flight and
      arriving messages are lost while down. An optional restart brings
      the node back through the protocol's own [recover] entry point.
    - {b Pause}: SIGSTOP/SIGCONT — the node stops executing but loses
      nothing; inbound messages buffer and timers fire late.
    - {b Slow}: the core keeps running, [factor] times slower (the
      paper's "8 CPU-intensive processes on the victim core").
    - {b Drop}/{b Duplicate}/{b Delay}: lossy, duplicating or laggy
      links, applied per ordered (src, dst) pair during a window.
    - {b Partition}: drop everything between nodes in different groups
      for the window (symmetric; nodes in no group are unaffected). *)

type fault =
  | Crash of { node : int; at : int; down_for : int option }
      (** Kill [node] at [at]; restart it [down_for] ns later, or never
          ([None]). *)
  | Pause of { node : int; from_ : int; until_ : int }
      (** Stop [node] during the window; resume with state intact. *)
  | Slow of { core : int; from_ : int; until_ : int; factor : float }
      (** Multiply the cost of all work on [core] by [factor]
          (simulator only — the live runtime rejects it). *)
  | Drop of { src : int; dst : int; from_ : int; until_ : int; p : float }
      (** Lose each [src]->[dst] message with probability [p]. *)
  | Duplicate of { src : int; dst : int; from_ : int; until_ : int; p : float }
      (** Deliver each [src]->[dst] message twice with probability [p]. *)
  | Delay of { src : int; dst : int; from_ : int; until_ : int; extra : int }
      (** Add [extra] ns of propagation to each [src]->[dst] message
          (FIFO order is preserved). *)
  | Partition of { groups : int list list; from_ : int; until_ : int }
      (** Cut every link between nodes in different groups. *)

type t = { seed : int; faults : fault list }
(** A schedule: the faults plus the seed feeding every probabilistic
    decision (drop/duplicate coin flips), so a schedule replays
    identically. *)

val empty : t
(** No faults, seed 0. A run with [empty] must be byte-identical to a
    run without a nemesis at all. *)

val is_empty : t -> bool

val first_fault_at : t -> int option
(** Earliest fault onset in the schedule — the reference instant for
    {!Ci_obs.Failover} analysis. *)

val validate : ?n_cores:int -> n_nodes:int -> t -> (unit, string) result
(** [validate ~n_nodes t] rejects inverted/empty windows, out-of-range
    nodes or cores ([n_cores] defaults to [n_nodes]), NaN or sub-1
    slowdown factors, probabilities outside (0, 1], non-positive delays
    and overlapping partition groups, with a human-readable reason. *)

(** {1 Per-backend decompositions} *)

type link_kind = L_drop of float | L_dup of float | L_delay of int

type link_rule = {
  l_src : int;
  l_dst : int;
  l_from : int;
  l_until : int;
  l_kind : link_kind;
}

val link_rules : t -> link_rule list
(** All link-level faults as per-ordered-pair windows; partitions are
    expanded to [L_drop 1.] on every cut pair. *)

val partition_cuts : int list list -> (int * int) list
(** Ordered pairs separated by the grouping (both directions). *)

type crash_rule = { c_node : int; c_at : int; c_restart : int option }

val crashes : t -> crash_rule list

type pause_rule = { p_node : int; p_from : int; p_until : int }

val pauses : t -> pause_rule list

type slow_rule = { s_core : int; s_from : int; s_until : int; s_factor : float }

val slows : t -> slow_rule list

(** {1 Generation} *)

val random : seed:int -> n_nodes:int -> horizon:int -> t
(** [random ~seed ~n_nodes ~horizon] is a deterministic pseudo-random
    schedule of 1–3 faults: adversarial but recoverable — at most one
    crash/pause, every window inside [(horizon/5, 4*horizon/5)] so the
    run warms up first and converges after. Drives the qcheck safety
    grid and the CLI's random scenario. *)

val pp_fault : Format.formatter -> fault -> unit
val pp : Format.formatter -> t -> unit

module Sim_time = Ci_engine.Sim_time
module Rng = Ci_engine.Rng

type fault =
  | Crash of { node : int; at : int; down_for : int option }
  | Pause of { node : int; from_ : int; until_ : int }
  | Slow of { core : int; from_ : int; until_ : int; factor : float }
  | Drop of { src : int; dst : int; from_ : int; until_ : int; p : float }
  | Duplicate of { src : int; dst : int; from_ : int; until_ : int; p : float }
  | Delay of { src : int; dst : int; from_ : int; until_ : int; extra : int }
  | Partition of { groups : int list list; from_ : int; until_ : int }

type t = { seed : int; faults : fault list }

let empty = { seed = 0; faults = [] }
let is_empty t = t.faults = []

let onset = function
  | Crash { at; _ } -> at
  | Pause { from_; _ }
  | Slow { from_; _ }
  | Drop { from_; _ }
  | Duplicate { from_; _ }
  | Delay { from_; _ }
  | Partition { from_; _ } ->
    from_

let first_fault_at t =
  List.fold_left
    (fun acc f ->
      match acc with
      | None -> Some (onset f)
      | Some a -> Some (min a (onset f)))
    None t.faults

(* ----- validation ------------------------------------------------------- *)

let err fmt = Format.kasprintf (fun m -> Error m) fmt

let check_window ~what ~from_ ~until_ =
  if from_ < 0 then err "%s: window start %d is negative" what from_
  else if from_ >= until_ then
    err "%s: empty or inverted window [%d, %d)" what from_ until_
  else Ok ()

let check_node ~what ~n_nodes node =
  if node < 0 || node >= n_nodes then
    err "%s: node %d out of range [0, %d)" what node n_nodes
  else Ok ()

let check_p ~what p =
  if Float.is_nan p || p <= 0. || p > 1. then
    err "%s: probability %g outside (0, 1]" what p
  else Ok ()

let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e

let check_link ~what ~n_nodes ~src ~dst ~from_ ~until_ =
  let* () = check_window ~what ~from_ ~until_ in
  let* () = check_node ~what ~n_nodes src in
  let* () = check_node ~what ~n_nodes dst in
  if src = dst then
    err "%s: src = dst = %d (self-sends never cross a link)" what src
  else Ok ()

let validate_fault ~n_nodes ~n_cores = function
  | Crash { node; at; down_for } ->
    let what = "crash" in
    let* () = check_node ~what ~n_nodes node in
    if at < 0 then err "%s: time %d is negative" what at
    else (
      match down_for with
      | Some d when d <= 0 -> err "%s: down_for %d must be positive" what d
      | _ -> Ok ())
  | Pause { node; from_; until_ } ->
    let what = "pause" in
    let* () = check_node ~what ~n_nodes node in
    check_window ~what ~from_ ~until_
  | Slow { core; from_; until_; factor } ->
    let what = "slow" in
    let* () = check_window ~what ~from_ ~until_ in
    if core < 0 || core >= n_cores then
      err "%s: core %d out of range [0, %d)" what core n_cores
    else if Float.is_nan factor then err "%s: factor is NaN" what
    else if factor < 1. then err "%s: factor %g must be >= 1" what factor
    else Ok ()
  | Drop { src; dst; from_; until_; p } ->
    let what = "drop" in
    let* () = check_link ~what ~n_nodes ~src ~dst ~from_ ~until_ in
    check_p ~what p
  | Duplicate { src; dst; from_; until_; p } ->
    let what = "duplicate" in
    let* () = check_link ~what ~n_nodes ~src ~dst ~from_ ~until_ in
    check_p ~what p
  | Delay { src; dst; from_; until_; extra } ->
    let what = "delay" in
    let* () = check_link ~what ~n_nodes ~src ~dst ~from_ ~until_ in
    if extra <= 0 then err "%s: extra delay %d must be positive" what extra
    else Ok ()
  | Partition { groups; from_; until_ } ->
    let what = "partition" in
    let* () = check_window ~what ~from_ ~until_ in
    if List.length groups < 2 then
      err "%s: needs at least two groups to cut anything" what
    else if List.exists (fun g -> g = []) groups then
      err "%s: empty group" what
    else
      let seen = Hashtbl.create 8 in
      let rec nodes_ok = function
        | [] -> Ok ()
        | n :: rest ->
          let* () = check_node ~what ~n_nodes n in
          if Hashtbl.mem seen n then
            err "%s: node %d appears in more than one group" what n
          else (
            Hashtbl.add seen n ();
            nodes_ok rest)
      in
      nodes_ok (List.concat groups)

let validate ?n_cores ~n_nodes t =
  let n_cores = match n_cores with Some c -> c | None -> n_nodes in
  let rec go = function
    | [] -> Ok ()
    | f :: rest -> ( match validate_fault ~n_nodes ~n_cores f with
      | Ok () -> go rest
      | Error _ as e -> e)
  in
  go t.faults

(* ----- per-backend decompositions --------------------------------------- *)

type link_kind = L_drop of float | L_dup of float | L_delay of int

type link_rule = {
  l_src : int;
  l_dst : int;
  l_from : int;
  l_until : int;
  l_kind : link_kind;
}

(* Ordered pairs of nodes separated by the partition: every (a, b) with
   [a] and [b] in different groups, both directions. Nodes outside all
   groups keep full connectivity (they are not part of the partition). *)
let partition_cuts groups =
  let tagged =
    List.concat (List.mapi (fun gi g -> List.map (fun n -> (n, gi)) g) groups)
  in
  List.concat_map
    (fun (a, ga) ->
      List.filter_map
        (fun (b, gb) -> if ga <> gb then Some (a, b) else None)
        tagged)
    tagged

let link_rules t =
  List.concat_map
    (function
      | Crash _ | Pause _ | Slow _ -> []
      | Drop { src; dst; from_; until_; p } ->
        [ { l_src = src; l_dst = dst; l_from = from_; l_until = until_;
            l_kind = L_drop p } ]
      | Duplicate { src; dst; from_; until_; p } ->
        [ { l_src = src; l_dst = dst; l_from = from_; l_until = until_;
            l_kind = L_dup p } ]
      | Delay { src; dst; from_; until_; extra } ->
        [ { l_src = src; l_dst = dst; l_from = from_; l_until = until_;
            l_kind = L_delay extra } ]
      | Partition { groups; from_; until_ } ->
        List.map
          (fun (src, dst) ->
            { l_src = src; l_dst = dst; l_from = from_; l_until = until_;
              l_kind = L_drop 1. })
          (partition_cuts groups))
    t.faults

type crash_rule = { c_node : int; c_at : int; c_restart : int option }

let crashes t =
  List.filter_map
    (function
      | Crash { node; at; down_for } ->
        Some
          { c_node = node; c_at = at;
            c_restart = Option.map (fun d -> at + d) down_for }
      | _ -> None)
    t.faults

type pause_rule = { p_node : int; p_from : int; p_until : int }

let pauses t =
  List.filter_map
    (function
      | Pause { node; from_; until_ } ->
        Some { p_node = node; p_from = from_; p_until = until_ }
      | _ -> None)
    t.faults

type slow_rule = { s_core : int; s_from : int; s_until : int; s_factor : float }

let slows t =
  List.filter_map
    (function
      | Slow { core; from_; until_; factor } ->
        Some { s_core = core; s_from = from_; s_until = until_; s_factor = factor }
      | _ -> None)
    t.faults

(* ----- seeded random schedules ------------------------------------------ *)

(* Schedules that are adversarial but recoverable: every fault begins
   after [horizon/5] (so the run warms up), at most one node is crashed
   or paused at a time, and every window closes by [4*horizon/5] so the
   system has time to converge again. Used by the qcheck safety grid and
   the CLI's random scenario. *)
let random ~seed ~n_nodes ~horizon =
  let rng = Rng.create ~seed in
  let lo = horizon / 5 and hi = 4 * horizon / 5 in
  let window () =
    let a = Rng.int_in rng lo (hi - 1) in
    let b = Rng.int_in rng (a + 1) hi in
    (a, b)
  in
  let link () =
    let src = Rng.int rng n_nodes in
    let dst = (src + 1 + Rng.int rng (n_nodes - 1)) mod n_nodes in
    (src, dst)
  in
  let n_faults = 1 + Rng.int rng 3 in
  let faults = ref [] in
  let crashed = ref false in
  for _ = 1 to n_faults do
    let f =
      match Rng.int rng 5 with
      | 0 when not !crashed ->
        crashed := true;
        let at = Rng.int_in rng lo ((lo + hi) / 2) in
        let down = Rng.int_in rng (horizon / 20) (horizon / 5) in
        Crash { node = Rng.int rng n_nodes; at; down_for = Some down }
      | 1 when not !crashed ->
        crashed := true;
        let from_, until_ = window () in
        Pause { node = Rng.int rng n_nodes; from_; until_ }
      | 2 ->
        let src, dst = link () and from_, until_ = window () in
        Drop { src; dst; from_; until_; p = 0.05 +. Rng.float rng 0.9 }
      | 3 ->
        let src, dst = link () and from_, until_ = window () in
        Duplicate { src; dst; from_; until_; p = 0.05 +. Rng.float rng 0.9 }
      | _ ->
        let src, dst = link () and from_, until_ = window () in
        let extra = Rng.int_in rng (Sim_time.us 1) (Sim_time.us 200) in
        Delay { src; dst; from_; until_; extra }
    in
    faults := f :: !faults
  done;
  { seed; faults = List.rev !faults }

(* ----- printing --------------------------------------------------------- *)

let pp_fault fmt = function
  | Crash { node; at; down_for } -> (
    match down_for with
    | Some d ->
      Format.fprintf fmt "crash node %d at %a (down %a, then recover)" node
        Sim_time.pp at Sim_time.pp d
    | None -> Format.fprintf fmt "crash node %d at %a (forever)" node Sim_time.pp at)
  | Pause { node; from_; until_ } ->
    Format.fprintf fmt "pause node %d during [%a, %a)" node Sim_time.pp from_
      Sim_time.pp until_
  | Slow { core; from_; until_; factor } ->
    Format.fprintf fmt "slow core %d x%.1f during [%a, %a)" core factor
      Sim_time.pp from_ Sim_time.pp until_
  | Drop { src; dst; from_; until_; p } ->
    Format.fprintf fmt "drop %d->%d p=%.2f during [%a, %a)" src dst p
      Sim_time.pp from_ Sim_time.pp until_
  | Duplicate { src; dst; from_; until_; p } ->
    Format.fprintf fmt "duplicate %d->%d p=%.2f during [%a, %a)" src dst p
      Sim_time.pp from_ Sim_time.pp until_
  | Delay { src; dst; from_; until_; extra } ->
    Format.fprintf fmt "delay %d->%d +%a during [%a, %a)" src dst Sim_time.pp
      extra Sim_time.pp from_ Sim_time.pp until_
  | Partition { groups; from_; until_ } ->
    Format.fprintf fmt "partition {%a} during [%a, %a)"
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.fprintf fmt " | ")
         (fun fmt g ->
           Format.pp_print_list
             ~pp_sep:(fun fmt () -> Format.fprintf fmt ",")
             Format.pp_print_int fmt g))
      groups Sim_time.pp from_ Sim_time.pp until_

let pp fmt t =
  if is_empty t then Format.fprintf fmt "no faults"
  else
    Format.fprintf fmt "@[<v>%a@]"
      (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_fault)
      t.faults

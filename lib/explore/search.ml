module Consistency = Ci_rsm.Consistency

type bounds = { max_depth : int; max_states : int; closure_steps : int }

let default_bounds = { max_depth = 24; max_states = 50_000; closure_steps = 20_000 }

type violation =
  | Safety of Consistency.report
  | Livelock of { missing : (int * int) list }

let same_kind a b =
  match (a, b) with
  | Safety _, Safety _ | Livelock _, Livelock _ -> true
  | Safety _, Livelock _ | Livelock _, Safety _ -> false

let pp_violation fmt = function
  | Safety report -> Format.fprintf fmt "safety: %a" Consistency.pp report
  | Livelock { missing } ->
    Format.fprintf fmt "livelock: %d command(s) can never be acknowledged:"
      (List.length missing);
    List.iter (fun (c, r) -> Format.fprintf fmt " c%d#%d" c r) missing

type stats = {
  mutable states : int; (* states expanded (worlds checked) *)
  mutable executions : int; (* worlds rebuilt from scratch *)
  mutable choices_applied : int; (* total choices applied, replays included *)
  mutable branches : int; (* child edges descended into *)
  mutable dedup_hits : int; (* prefixes cut by the visited table *)
  mutable sleep_skips : int; (* enabled choices skipped by sleep sets *)
  mutable deepening_rounds : int;
  mutable truncated : bool; (* last round cut some path at the depth bound *)
  mutable closures : int; (* liveness closures run *)
}

let fresh_stats () =
  {
    states = 0;
    executions = 0;
    choices_applied = 0;
    branches = 0;
    dedup_hits = 0;
    sleep_skips = 0;
    deepening_rounds = 0;
    truncated = false;
    closures = 0;
  }

type outcome =
  | Exhausted
  | Bounded
  | Violated of {
      trace : Trace.choice list;
      violation : violation;
      shrunk : Trace.choice list;
      shrunk_violation : violation;
    }

type result = { outcome : outcome; stats : stats }

exception Found of Trace.choice list * violation
exception Budget

(* Stateless re-execution: protocol replicas hold closures (timers,
   handler continuations) and cannot be snapshotted, so reaching any
   state means replaying its choice prefix on a fresh world. The cost
   is O(depth) per state; the visited table and sleep sets are what
   keep the bill payable. *)
let build ?ring cfg stats prefix =
  let w = World.create ?ring cfg in
  stats.executions <- stats.executions + 1;
  List.iter
    (fun c ->
      World.apply w c;
      stats.choices_applied <- stats.choices_applied + 1)
    prefix;
  w

let check_state w prefix =
  let report = World.check w in
  if not (Consistency.ok report) then raise (Found (prefix, Safety report))

(* One depth-bounded DFS round. [visited] maps state digest -> greatest
   remaining depth it was expanded with: a revisit with no more depth
   left than before cannot reach anything new. [sleep] carries choices
   provably covered by an already-explored sibling interleaving
   (classic sleep sets over the static independence of {!World}). *)
let rec dfs cfg bounds stats visited prefix depth_left sleep =
  if stats.states >= bounds.max_states then raise Budget;
  let w = build cfg stats prefix in
  stats.states <- stats.states + 1;
  check_state w prefix;
  let dig = World.digest w in
  let skip =
    match Hashtbl.find_opt visited dig with
    | Some d when d >= depth_left ->
      stats.dedup_hits <- stats.dedup_hits + 1;
      true
    | Some _ | None ->
      Hashtbl.replace visited dig depth_left;
      false
  in
  if not skip then begin
    let choices = World.enabled w in
    (* Liveness exactly at quiescent states: only faults (if budget
       remains) could still run, so if the fault-free continuation of
       this state cannot acknowledge everything, no continuation can. *)
    if World.quiescent w && not (World.all_acked w) then begin
      stats.closures <- stats.closures + 1;
      match World.run_closure w ~max_steps:bounds.closure_steps with
      | `Live -> ()
      | `Livelock missing -> raise (Found (prefix, Livelock { missing }))
    end;
    if depth_left = 0 then begin
      if choices <> [] then stats.truncated <- true
    end
    else begin
      let explored = ref [] in
      List.iter
        (fun c ->
          if List.mem c sleep then
            stats.sleep_skips <- stats.sleep_skips + 1
          else begin
            let child_sleep =
              List.filter
                (fun s -> World.independent w s c)
                (sleep @ List.rev !explored)
            in
            stats.branches <- stats.branches + 1;
            dfs cfg bounds stats visited (prefix @ [ c ]) (depth_left - 1)
              child_sleep;
            explored := c :: !explored
          end)
        choices
    end
  end

(* ---- replay ---------------------------------------------------------- *)

let replay ?ring ?(closure_steps = default_bounds.closure_steps) cfg choices =
  let w = World.create ?ring cfg in
  let rec go applied = function
    | [] -> (
      match World.run_closure w ~max_steps:closure_steps with
      | `Live -> Ok None
      | `Livelock missing -> Ok (Some (Livelock { missing })))
    | c :: tl ->
      if not (World.is_enabled w c) then
        Error
          (Printf.sprintf "choice %d (%s) not enabled at replay" applied
             (Trace.choice_to_line c))
      else begin
        World.apply w c;
        let report = World.check w in
        if not (Consistency.ok report) then Ok (Some (Safety report))
        else go (applied + 1) tl
      end
  in
  go 0 choices

(* ---- shrinking ------------------------------------------------------- *)

let take k l = List.filteri (fun i _ -> i < k) l
let remove_nth k l = List.filteri (fun i _ -> i <> k) l

(* Minimize a counterexample to a locally 1-minimal schedule: first the
   shortest reproducing prefix, then repeated single-choice removal
   passes until no single choice can be dropped. A candidate reproduces
   if it replays with every choice enabled and ends in a violation of
   the same kind (safety / livelock) as the original. *)
let shrink cfg ~closure_steps ~violation trace =
  let reproduces cand =
    match replay ~closure_steps cfg cand with
    | Ok (Some v) when same_kind v violation -> Some v
    | Ok _ | Error _ -> None
  in
  let len = List.length trace in
  let rec trunc k =
    if k >= len then (trace, violation)
    else
      match reproduces (take k trace) with
      | Some v -> (take k trace, v)
      | None -> trunc (k + 1)
  in
  let cur, curv = trunc 0 in
  let cur = ref cur and curv = ref curv in
  let progress = ref true in
  while !progress do
    progress := false;
    let i = ref 0 in
    while !i < List.length !cur do
      match reproduces (remove_nth !i !cur) with
      | Some v ->
        cur := remove_nth !i !cur;
        curv := v;
        progress := true
      | None -> incr i
    done
  done;
  (!cur, !curv)

(* ---- driver ---------------------------------------------------------- *)

(* Iterative deepening: rounds at depth 8, 16, ... up to
   [bounds.max_depth], stopping early once a round completes without
   ever hitting its depth bound (the reachable space within budgets is
   then exhausted — deeper rounds would revisit exactly the same
   states). Shallow rounds also guarantee the first counterexample
   found is among the shortest, which keeps shrinking cheap. *)
let explore ?(bounds = default_bounds) ?(prefix = []) cfg =
  (match Trace.validate_config cfg with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Search.explore: " ^ msg));
  let stats = fresh_stats () in
  let finish outcome = { outcome; stats } in
  try
    (* A guided prefix roots the search mid-schedule. Validate it
       eagerly — a choice that is not enabled means the prefix belongs
       to a different config and silently exploring from a wrong state
       would be worse than failing — and safety-check each step so a
       violation inside the prefix itself is reported, not masked. *)
    if prefix <> [] then begin
      let w = World.create cfg in
      stats.executions <- stats.executions + 1;
      List.iteri
        (fun i c ->
          if not (World.is_enabled w c) then
            invalid_arg
              (Printf.sprintf "Search.explore: prefix choice %d (%s) not enabled"
                 i (Trace.choice_to_line c));
          World.apply w c;
          stats.choices_applied <- stats.choices_applied + 1;
          let report = World.check w in
          if not (Consistency.ok report) then
            raise (Found (take (i + 1) prefix, Safety report)))
        prefix
    end;
    let depth = ref (min 8 bounds.max_depth) in
    let continue = ref true in
    let outcome = ref Exhausted in
    while !continue do
      stats.deepening_rounds <- stats.deepening_rounds + 1;
      stats.truncated <- false;
      let visited = Hashtbl.create 4096 in
      dfs cfg bounds stats visited prefix !depth [];
      if stats.truncated && !depth < bounds.max_depth then
        depth := min (2 * !depth) bounds.max_depth
      else begin
        continue := false;
        outcome := if stats.truncated then Bounded else Exhausted
      end
    done;
    finish !outcome
  with
  | Budget -> finish Bounded
  | Found (trace, violation) ->
    let shrunk, shrunk_violation =
      shrink cfg ~closure_steps:bounds.closure_steps ~violation trace
    in
    finish (Violated { trace; violation; shrunk; shrunk_violation })

(** Bounded stateless model checking over {!World}.

    Iterative-deepening DFS over every scheduler choice (delivery
    order, timer fires) crossed with every fault placement within the
    config's budgets (link drops, majority-preserving crashes), for the
    small configurations {!Trace.validate_config} admits. Protocol
    state is not cloneable, so each state is reached by re-executing
    its choice prefix from the initial world (stateless exploration);
    a digest-keyed visited table and sleep-set partial-order reduction
    keep the re-execution bill bounded.

    Checked properties:
    - {b safety} — {!World.check} (agreement, non-triviality,
      convergence, session integrity) at {e every} explored state;
    - {b liveness} — at every quiescent state, the deterministic
      fault-free closure must acknowledge every submitted command;
      a lasso (state repetition without progress) or true quiescence
      with commands outstanding is a {!Livelock}.

    On a violation the driver shrinks the counterexample to a locally
    1-minimal replayable {!Trace.choice} schedule.

    Soundness caveats (deliberate, documented in DESIGN.md §14): digest
    pruning trusts a hash; sleep sets use conservative static
    independence but compose heuristically with the visited table; time
    is abstracted to relative deadlines. Within those caveats,
    [Exhausted] means no reachable violation at the configured budgets
    and depth. *)

type bounds = {
  max_depth : int;  (** Deepest choice prefix explored. *)
  max_states : int;  (** Total states expanded before giving up. *)
  closure_steps : int;  (** Step cap per liveness closure / replay. *)
}

val default_bounds : bounds
(** depth 24, 50k states, 20k closure steps. *)

type violation =
  | Safety of Ci_rsm.Consistency.report
      (** A consistency property failed; the report says which. *)
  | Livelock of { missing : (int * int) list }
      (** The fault-free continuation cannot acknowledge these
          [(client, req_id)] commands. *)

val same_kind : violation -> violation -> bool
val pp_violation : Format.formatter -> violation -> unit

type stats = {
  mutable states : int;
  mutable executions : int;
  mutable choices_applied : int;
  mutable branches : int;
  mutable dedup_hits : int;
  mutable sleep_skips : int;
  mutable deepening_rounds : int;
  mutable truncated : bool;
  mutable closures : int;
}

type outcome =
  | Exhausted
      (** Every reachable state within the budgets was explored; no
          violation. *)
  | Bounded
      (** The state or depth budget ran out first; no violation found
          within it. *)
  | Violated of {
      trace : Trace.choice list;  (** The schedule as first found. *)
      violation : violation;
      shrunk : Trace.choice list;  (** 1-minimal reproducing schedule. *)
      shrunk_violation : violation;
          (** The (same-kind) violation the shrunk schedule ends in. *)
    }

type result = { outcome : outcome; stats : stats }

val explore : ?bounds:bounds -> ?prefix:Trace.choice list -> Trace.config -> result
(** Run the checker. Raises [Invalid_argument] on a config rejected by
    {!Trace.validate_config}.

    [prefix] roots the search at the state reached by applying those
    choices in order (guided exploration — e.g. to dive back into the
    neighborhood of a previously found counterexample). Every prefix
    choice must be enabled when applied ([Invalid_argument] otherwise);
    safety is checked after each prefix step, so a violation inside the
    prefix itself is found and shrunk like any other. Depth and state
    budgets apply to the search beyond the prefix; violating traces and
    their shrunk forms are full schedules from the initial state,
    replayable with {!replay}. *)

val replay :
  ?ring:Ci_obs.Event.ring ->
  ?closure_steps:int ->
  Trace.config ->
  Trace.choice list ->
  (violation option, string) Stdlib.result
(** [replay cfg choices] re-executes a schedule deterministically:
    applies each choice (failing with [Error] if one is not enabled —
    the trace does not belong to this config), checking safety after
    each; then runs the liveness closure from the final state.
    [Ok (Some v)] is the reproduced violation, [Ok None] a clean,
    live execution. With [ring], the execution's typed events are
    emitted to it ({!World.create}). *)

val shrink :
  Trace.config ->
  closure_steps:int ->
  violation:violation ->
  Trace.choice list ->
  Trace.choice list * violation
(** [shrink cfg ~closure_steps ~violation trace] minimizes a
    reproducing schedule: shortest violating prefix, then repeated
    single-choice removals to a local 1-minimum. The result replays to
    a violation of the same kind. *)

(** Replayable exploration traces.

    A trace is the model checker's entire schedule for one execution: a
    world configuration (protocol, population, budgets, seed) plus the
    ordered list of scheduler choices taken from the initial state.
    Because the simulated world is deterministic given the
    configuration, a trace replays to a bit-identical execution — the
    counterexamples {!Search} shrinks are values of this type, and
    [consensus_sim explore --replay] consumes their serialized form.

    The serialization is deliberately line-oriented plain text
    ([deliver 0 1], [drop 0 2], [fire 2], [crash 1] under a one-line
    config header) so counterexamples can be read, edited and diffed by
    hand. *)

type protocol = Onepaxos | Multipaxos | Twopc | Mencius | Cheappaxos

val protocol_name : protocol -> string
(** CLI-facing name: "1paxos", "multipaxos", "2pc", "mencius",
    "cheappaxos" (matching the [run] subcommand's vocabulary). *)

val protocol_of_name : string -> protocol option

type config = {
  protocol : protocol;
  n_replicas : int;  (** Replica population (nodes [0 .. n-1]). *)
  n_clients : int;
      (** Closed-loop clients (nodes [n_replicas ..]), one outstanding
          command each. *)
  n_commands : int;  (** Commands each client submits in total. *)
  seed : int;  (** Seeds every per-node RNG; part of replay identity. *)
  drop_budget : int;  (** Maximum [Drop] choices per execution. *)
  crash_budget : int;
      (** Maximum [Crash] choices per execution; crashes that would
          destroy the replica majority are never enabled. *)
  fire_budget : int;
      (** Maximum [Fire] (timer) choices {e per node} per execution —
          bounds the depth contributed by self-rearming timers
          (failure detectors, client retries). *)
  unsafe_stale_adoption : bool;
      (** Forwarded to {!Ci_consensus.Onepaxos.config}: re-seeds the
          historical stale-adoption split-brain for checker tests. *)
}

val default_config : protocol:protocol -> config
(** 3 replicas, 1 client, 2 commands, seed 1, no fault budgets,
    fire budget 4 — the smallest configuration worth exhausting. *)

val validate_config : config -> (unit, string) result
(** Rejects populations and budgets outside the model checker's
    intended small-config envelope (2–7 replicas, 1–4 clients, 1–8
    commands). *)

type choice =
  | Deliver of { src : int; dst : int }
      (** Deliver the head of the [src]->[dst] FIFO link. *)
  | Drop of { src : int; dst : int }
      (** Discard the head of the [src]->[dst] link (costs budget). *)
  | Fire of { node : int }
      (** Fire [node]'s earliest pending timer, advancing the global
          clock to its deadline (costs per-node budget). *)
  | Crash of { node : int }
      (** Fail-stop [node] forever: volatile and durable state frozen,
          timers and inbound in-flight messages lost, future messages
          to it discarded (costs budget). *)

val choice_to_line : choice -> string
val choice_of_line : string -> choice option
val pp_choice : Format.formatter -> choice -> unit

val config_to_line : config -> string
(** The one-line [config k=v ...] header form. *)

val config_of_line : string -> config option

val to_string : config:config -> choice list -> string
(** Full serialized trace: magic header, config line, one choice per
    line. *)

val of_string : string -> (config * choice list, string) result
(** Inverse of {!to_string}; blank lines and [#] comments between
    choices are ignored. *)

val hash : choice list -> int64
(** FNV-1a (64-bit) over the serialized choices — the replay-identity
    fingerprint two runs of the same trace must agree on. *)

val hash_hex : choice list -> string
(** [hash] as 16 lowercase hex digits. *)

type protocol = Onepaxos | Multipaxos | Twopc | Mencius | Cheappaxos

let protocol_name = function
  | Onepaxos -> "1paxos"
  | Multipaxos -> "multipaxos"
  | Twopc -> "2pc"
  | Mencius -> "mencius"
  | Cheappaxos -> "cheappaxos"

let protocol_of_name = function
  | "1paxos" | "onepaxos" -> Some Onepaxos
  | "multipaxos" -> Some Multipaxos
  | "2pc" | "twopc" -> Some Twopc
  | "mencius" -> Some Mencius
  | "cheappaxos" -> Some Cheappaxos
  | _ -> None

type config = {
  protocol : protocol;
  n_replicas : int;
  n_clients : int;
  n_commands : int;
  seed : int;
  drop_budget : int;
  crash_budget : int;
  fire_budget : int;
  unsafe_stale_adoption : bool;
}

let default_config ~protocol =
  {
    protocol;
    n_replicas = 3;
    n_clients = 1;
    n_commands = 2;
    seed = 1;
    drop_budget = 0;
    crash_budget = 0;
    fire_budget = 4;
    unsafe_stale_adoption = false;
  }

let validate_config c =
  if c.n_replicas < 2 || c.n_replicas > 7 then
    Error "replicas must be in 2..7"
  else if c.n_clients < 1 || c.n_clients > 4 then Error "clients must be in 1..4"
  else if c.n_commands < 1 || c.n_commands > 8 then
    Error "commands must be in 1..8"
  else if c.drop_budget < 0 || c.crash_budget < 0 || c.fire_budget < 0 then
    Error "budgets must be non-negative"
  else Ok ()

type choice =
  | Deliver of { src : int; dst : int }
  | Drop of { src : int; dst : int }
  | Fire of { node : int }
  | Crash of { node : int }

let choice_to_line = function
  | Deliver { src; dst } -> Printf.sprintf "deliver %d %d" src dst
  | Drop { src; dst } -> Printf.sprintf "drop %d %d" src dst
  | Fire { node } -> Printf.sprintf "fire %d" node
  | Crash { node } -> Printf.sprintf "crash %d" node

let choice_of_line line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "deliver"; a; b ] -> (
    match (int_of_string_opt a, int_of_string_opt b) with
    | Some src, Some dst -> Some (Deliver { src; dst })
    | _ -> None)
  | [ "drop"; a; b ] -> (
    match (int_of_string_opt a, int_of_string_opt b) with
    | Some src, Some dst -> Some (Drop { src; dst })
    | _ -> None)
  | [ "fire"; a ] -> (
    match int_of_string_opt a with Some node -> Some (Fire { node }) | None -> None)
  | [ "crash"; a ] -> (
    match int_of_string_opt a with Some node -> Some (Crash { node }) | None -> None)
  | _ -> None

let pp_choice fmt c = Format.pp_print_string fmt (choice_to_line c)

let config_to_line c =
  Printf.sprintf
    "config proto=%s replicas=%d clients=%d commands=%d seed=%d drops=%d \
     crashes=%d fires=%d stale_adoption=%b"
    (protocol_name c.protocol)
    c.n_replicas c.n_clients c.n_commands c.seed c.drop_budget c.crash_budget
    c.fire_budget c.unsafe_stale_adoption

let config_of_line line =
  match String.split_on_char ' ' (String.trim line) with
  | "config" :: fields -> (
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun f ->
        match String.index_opt f '=' with
        | Some i ->
          Hashtbl.replace tbl
            (String.sub f 0 i)
            (String.sub f (i + 1) (String.length f - i - 1))
        | None -> ())
      fields;
    let int_field k = Option.bind (Hashtbl.find_opt tbl k) int_of_string_opt in
    let bool_field k = Option.bind (Hashtbl.find_opt tbl k) bool_of_string_opt in
    match
      ( Option.bind (Hashtbl.find_opt tbl "proto") protocol_of_name,
        int_field "replicas", int_field "clients", int_field "commands",
        int_field "seed", int_field "drops", int_field "crashes",
        int_field "fires", bool_field "stale_adoption" )
    with
    | ( Some protocol, Some n_replicas, Some n_clients, Some n_commands,
        Some seed, Some drop_budget, Some crash_budget, Some fire_budget,
        Some unsafe_stale_adoption ) ->
      Some
        { protocol; n_replicas; n_clients; n_commands; seed; drop_budget;
          crash_budget; fire_budget; unsafe_stale_adoption }
    | _ -> None)
  | _ -> None

let magic = "# consensus-explore trace v1"

let to_string ~config choices =
  let b = Buffer.create 256 in
  Buffer.add_string b magic;
  Buffer.add_char b '\n';
  Buffer.add_string b (config_to_line config);
  Buffer.add_char b '\n';
  List.iter
    (fun c ->
      Buffer.add_string b (choice_to_line c);
      Buffer.add_char b '\n')
    choices;
  Buffer.contents b

let of_string s =
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  match lines with
  | m :: cfg :: rest when m = magic -> (
    match config_of_line cfg with
    | None -> Error "unparseable config line"
    | Some config ->
      let rec go acc = function
        | [] -> Ok (config, List.rev acc)
        | l :: tl when String.length l > 0 && l.[0] = '#' -> go acc tl
        | l :: tl -> (
          match choice_of_line l with
          | Some c -> go (c :: acc) tl
          | None -> Error (Printf.sprintf "unparseable choice line %S" l))
      in
      go [] rest)
  | _ -> Error "missing trace header"

(* FNV-1a, 64-bit. Folded over the serialized choice lines so the hash
   is a pure function of the schedule, not of in-memory representation. *)
let hash choices =
  let fnv_prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  let feed_char c =
    h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime
  in
  List.iter
    (fun c ->
      String.iter feed_char (choice_to_line c);
      feed_char '\n')
    choices;
  !h

let hash_hex choices = Printf.sprintf "%016Lx" (hash choices)

(** The model checker's controlled world: one complete replicated
    system — protocol replicas, closed-loop clients, FIFO links, timer
    queues — whose every scheduling decision is an explicit
    {!Trace.choice} made by the caller, instead of the single
    (time, insertion)-ordered next event {!Ci_engine.Sim} would pop.

    A world is deterministic given its {!Trace.config}: the same choice
    sequence always reproduces the same execution (per-node RNGs are
    seeded from the config, all queues are FIFO, handler self-sends
    drain run-to-completion in order). Protocol state holds closures
    and is deliberately not cloneable, so {!Search} re-executes
    prefixes from [create] rather than snapshotting — stateless model
    checking.

    Time: deliveries are instantaneous; firing a timer advances the
    single global clock to that timer's deadline. Nodes therefore share
    one clock, an abstraction the digest preserves by hashing deadlines
    relative to it. *)

type t

val create : ?ring:Ci_obs.Event.ring -> Trace.config -> t
(** [create cfg] builds the initial state: replicas created and
    started, every client's first request already in flight. With
    [ring], sends, deliveries, timer fires, faults and protocol phases
    are emitted as typed {!Ci_obs.Event} records (the replay sidecar);
    without it observation costs nothing. Raises [Invalid_argument] on
    a config {!Trace.validate_config} rejects. *)

val config : t -> Trace.config

val clock : t -> Ci_engine.Sim_time.t
(** Current global virtual time (the maximum fired deadline so far). *)

val enabled : t -> Trace.choice list
(** All currently enabled choices, in the fixed deterministic order
    (deliveries by [(src, dst)], then timer fires by node, then drops,
    then crashes) that the DFS and trace shapes depend on. Crashes are
    never enabled when they would reduce live replicas below a
    majority; drops and crashes require remaining budget; fires require
    remaining per-node budget. *)

val is_enabled : t -> Trace.choice -> bool

val apply : t -> Trace.choice -> unit
(** Execute one choice: deliver (run the destination handler to
    completion, including its self-sends), drop, fire (advance the
    clock, run the thunk), or crash (fail-stop forever — timers and
    inbound in-flight messages lost, frozen state still checked).
    Raises [Invalid_argument] if the choice is not enabled. *)

val digest : t -> int
(** Structural fingerprint for the visited-state table: per-replica
    protocol digests, client progress, the in-flight message multiset
    per link, relative timer deadlines, liveness flags and remaining
    budgets. Equal states give equal digests; the documented
    abstractions (relative time, thunk-blind timers, unhashed RNG
    state, hash collisions) mean the converse can fail — see
    DESIGN.md §14 for why pruning on it is a soundness trade. *)

val check : t -> Ci_rsm.Consistency.report
(** The runner's end-of-run safety predicate (agreement,
    non-triviality, convergence, session integrity) evaluated on the
    {e current} state, crashed replicas' frozen views included. *)

val quiescent : t -> bool
(** No delivery and no (budgeted) timer fire is enabled — only faults,
    if any budget remains, could change the state. The explorer checks
    liveness exactly at these states. *)

val all_acked : t -> bool
(** Every client issued and got every command acknowledged. *)

val missing_acks : t -> (int * int) list
(** The [(client, req_id)] pairs not yet acknowledged (issued or not),
    sorted. *)

val acked : t -> (int * int) list
(** All acknowledged [(client, req_id)] pairs, sorted. *)

val run_closure : t -> max_steps:int -> [ `Live | `Livelock of (int * int) list ]
(** Destructive fault-free continuation for the liveness property:
    deliver every in-flight message (in link order), fire the earliest
    timer when none remain (ignoring fire budgets), inject no further
    faults. [`Live] once {!all_acked}; [`Livelock missing] on a lasso
    (digest repeats without new acks or decisions), on quiescence with
    commands outstanding, or on step-cap exhaustion. The world is
    unusable afterwards — callers re-execute their prefix. *)

val independent : t -> Trace.choice -> Trace.choice -> bool
(** Static footprint disjointness (node states, directed links, fault
    budgets) — the sleep-set reduction's commutation oracle.
    Conservative: [true] implies the two enabled choices commute and
    cannot disable each other. *)

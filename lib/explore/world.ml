module Node_env = Ci_engine.Node_env
module Event_queue = Ci_engine.Event_queue
module Sim_time = Ci_engine.Sim_time
module Rng = Ci_engine.Rng
module Wire = Ci_consensus.Wire
module Command = Ci_rsm.Command
module Consistency = Ci_rsm.Consistency
module Event = Ci_obs.Event

(* How long an explorer client waits for a [Reply] before retrying on
   the next replica. Only relative order within one node's timer queue
   matters to the explorer; 2 ms sits safely above every protocol
   timeout so a replica's own failure detector outruns client churn. *)
let retry_delay = Sim_time.ms 2

type replica = {
  r_handle : src:int -> Wire.t -> unit;
  r_digest : unit -> int;
  r_view : unit -> Wire.value Consistency.replica_view;
}

type client = {
  c_id : int;
  mutable c_next : int; (* next request index to issue *)
  mutable c_current : (int * Command.t) option;
  mutable c_target : int; (* replica currently addressed *)
  mutable c_attempt : int; (* transmission generation, as in Client *)
  mutable c_retry : Node_env.timer option;
  mutable c_acked : (int * int) list;
  mutable c_env : Wire.t Node_env.t option; (* set once at creation *)
}

type role = Replica of replica | Client of client

type t = {
  cfg : Trace.config;
  n : int; (* total nodes: replicas then clients *)
  mutable roles : role array;
  timers : (unit -> unit) Event_queue.t array;
  self_q : Wire.t Queue.t array;
  alive : bool array;
  fires_left : int array;
  links : (int * Wire.t) Queue.t array array; (* (send seq, msg) per (src, dst) *)
  mutable clock : Sim_time.t;
  mutable drops_left : int;
  mutable crashes_left : int;
  mutable seq : int; (* machine-wide send sequence, links Send to Recv *)
  issued : (int * int, Command.t) Hashtbl.t;
  ring : Event.ring option;
}

let config t = t.cfg
let clock t = t.clock
let emit t ev = match t.ring with Some r -> Event.emit r ev | None -> ()

let emit_kind t ~core ~label kind =
  if t.ring <> None then emit t { Event.time = t.clock; core; label; kind }

(* ---- message plumbing ------------------------------------------------ *)

(* A send from a node's handler. Self-sends bypass the link layer and
   queue for a run-to-completion drain after the handler returns — the
   [Node_env] contract ([send] never re-enters the caller's handler),
   and a deliberate reduction: the explorer never interleaves anything
   between a handler and its own local deliveries. Sends to dead nodes
   vanish silently (the network cannot address a dead process); they
   cost no drop budget. *)
let send t ~src ~dst msg =
  if dst = src then Queue.add msg t.self_q.(src)
  else if dst >= 0 && dst < t.n && t.alive.(dst) then begin
    t.seq <- t.seq + 1;
    if t.ring <> None then
      emit_kind t ~core:src
        ~label:(Format.asprintf "%a" Wire.pp msg)
        (Event.Send { src; dst; seq = t.seq });
    Queue.add (t.seq, msg) t.links.(src).(dst)
  end

let rec dispatch t i ~src msg =
  match t.roles.(i) with
  | Replica r -> r.r_handle ~src msg
  | Client c -> (
    match msg with
    | Wire.Reply { req_id; result = _ } -> (
      match c.c_current with
      | Some (r, _) when r = req_id ->
        c.c_current <- None;
        (match c.c_retry with
        | Some tm ->
          Node_env.cancel_timer tm;
          c.c_retry <- None
        | None -> ());
        c.c_acked <- (c.c_id, req_id) :: c.c_acked;
        client_issue t c
      | Some _ | None -> () (* stale or duplicate reply *))
    | _ -> ())

and client_issue t c =
  if c.c_next < t.cfg.Trace.n_commands then begin
    let req_id = c.c_next in
    c.c_next <- c.c_next + 1;
    (* Deterministic commands: distinct data per (client, request) so a
       disagreement between replicas is observable as differing
       values, over a two-key space so executions interleave state. *)
    let cmd =
      Command.Put { key = req_id mod 2; data = ((c.c_id + 1) * 1000) + req_id }
    in
    Hashtbl.replace t.issued (c.c_id, req_id) cmd;
    c.c_current <- Some (req_id, cmd);
    client_transmit t c
  end

and client_transmit t c =
  match (c.c_current, c.c_env) with
  | Some (req_id, cmd), Some env ->
    env.Node_env.send ~dst:c.c_target
      (Wire.Request { req_id; cmd; relaxed_read = false });
    c.c_attempt <- c.c_attempt + 1;
    let this = c.c_attempt in
    c.c_retry <-
      Some
        (env.Node_env.after_cancel ~delay:retry_delay (fun () ->
             c.c_retry <- None;
             match c.c_current with
             | Some (r, _) when r = req_id && this = c.c_attempt ->
               (* No reply: rotate to the next replica (the addressed
                  one may be deposed or dead) and resend. *)
               c.c_target <- (c.c_target + 1) mod t.cfg.Trace.n_replicas;
               client_transmit t c
             | Some _ | None -> ()))
  | _ -> ()

let rec drain_self t i =
  match Queue.take_opt t.self_q.(i) with
  | None -> ()
  | Some msg ->
    emit_kind t ~core:i ~label:"" (Event.Self_deliver { node = i });
    dispatch t i ~src:i msg;
    drain_self t i

(* ---- construction ---------------------------------------------------- *)

let env t i =
  {
    Node_env.id = i;
    send = (fun ~dst msg -> send t ~src:i ~dst msg);
    now = (fun () -> t.clock);
    after =
      (fun ~delay f ->
        let delay = if delay < 0 then 0 else delay in
        Event_queue.push t.timers.(i) ~time:(t.clock + delay) f);
    after_cancel =
      (fun ~delay f ->
        let delay = if delay < 0 then 0 else delay in
        let tok = Event_queue.push_token t.timers.(i) ~time:(t.clock + delay) f in
        { Node_env.cancel = (fun () -> Event_queue.cancel t.timers.(i) tok) });
    (* Fresh deterministic stream per (seed, node): the same choice
       sequence always replays to the same execution. *)
    rng = Rng.create ~seed:(Hashtbl.hash (t.cfg.Trace.seed, i, "explore-node"));
    note_phase =
      (fun ~phase -> emit_kind t ~core:i ~label:phase (Event.Phase { node = i; phase }));
  }

let make_replicas t =
  let module C = Ci_consensus in
  let replicas = Array.init t.cfg.Trace.n_replicas (fun i -> i) in
  let core_view core () = C.Replica_core.view core in
  match t.cfg.Trace.protocol with
  | Trace.Onepaxos ->
    let config =
      {
        (C.Onepaxos.default_config ~replicas) with
        C.Onepaxos.unsafe_stale_adoption = t.cfg.Trace.unsafe_stale_adoption;
      }
    in
    let rs =
      Array.map (fun i -> C.Onepaxos.create ~env:(env t i) ~config) replicas
    in
    let wrap r =
      Replica
        {
          r_handle = (fun ~src m -> C.Onepaxos.handle r ~src m);
          r_digest = (fun () -> C.Onepaxos.digest r);
          r_view = core_view (C.Onepaxos.replica_core r);
        }
    in
    (Array.map wrap rs, fun () -> Array.iter C.Onepaxos.start rs)
  | Trace.Multipaxos ->
    let config = C.Multipaxos.default_config ~replicas in
    let rs =
      Array.map (fun i -> C.Multipaxos.create ~env:(env t i) ~config) replicas
    in
    let wrap r =
      Replica
        {
          r_handle = (fun ~src m -> C.Multipaxos.handle r ~src m);
          r_digest = (fun () -> C.Multipaxos.digest r);
          r_view = core_view (C.Multipaxos.replica_core r);
        }
    in
    (Array.map wrap rs, fun () -> Array.iter C.Multipaxos.start rs)
  | Trace.Twopc ->
    let config = C.Twopc.default_config ~replicas in
    let rs =
      Array.map (fun i -> C.Twopc.create ~env:(env t i) ~config) replicas
    in
    let wrap r =
      Replica
        {
          r_handle = (fun ~src m -> C.Twopc.handle r ~src m);
          r_digest = (fun () -> C.Twopc.digest r);
          r_view = core_view (C.Twopc.replica_core r);
        }
    in
    (Array.map wrap rs, fun () -> ())
  | Trace.Mencius ->
    let config = C.Mencius.default_config ~replicas in
    let rs =
      Array.map (fun i -> C.Mencius.create ~env:(env t i) ~config) replicas
    in
    let wrap r =
      Replica
        {
          r_handle = (fun ~src m -> C.Mencius.handle r ~src m);
          r_digest = (fun () -> C.Mencius.digest r);
          r_view = core_view (C.Mencius.replica_core r);
        }
    in
    (Array.map wrap rs, fun () -> ())
  | Trace.Cheappaxos ->
    let config = C.Cheap_paxos.default_config ~replicas in
    let rs =
      Array.map (fun i -> C.Cheap_paxos.create ~env:(env t i) ~config) replicas
    in
    let wrap r =
      Replica
        {
          r_handle = (fun ~src m -> C.Cheap_paxos.handle r ~src m);
          r_digest = (fun () -> C.Cheap_paxos.digest r);
          r_view = core_view (C.Cheap_paxos.replica_core r);
        }
    in
    (Array.map wrap rs, fun () -> Array.iter C.Cheap_paxos.start rs)

let create ?ring cfg =
  (match Trace.validate_config cfg with
  | Ok () -> ()
  | Error msg -> invalid_arg ("World.create: " ^ msg));
  let n = cfg.Trace.n_replicas + cfg.Trace.n_clients in
  let t =
    {
      cfg;
      n;
      roles = [||];
      timers = Array.init n (fun _ -> Event_queue.create ());
      self_q = Array.init n (fun _ -> Queue.create ());
      alive = Array.make n true;
      fires_left = Array.make n cfg.Trace.fire_budget;
      links = Array.init n (fun _ -> Array.init n (fun _ -> Queue.create ()));
      clock = 0;
      drops_left = cfg.Trace.drop_budget;
      crashes_left = cfg.Trace.crash_budget;
      seq = 0;
      issued = Hashtbl.create 31;
      ring;
    }
  in
  let replicas, start = make_replicas t in
  let clients =
    Array.init cfg.Trace.n_clients (fun k ->
        let id = cfg.Trace.n_replicas + k in
        (* Mencius is leaderless, so spread clients across owners;
           every other protocol has a seeded leader/coordinator at
           replica 0. *)
        let primary =
          match cfg.Trace.protocol with
          | Trace.Mencius -> k mod cfg.Trace.n_replicas
          | _ -> 0
        in
        let c =
          {
            c_id = id;
            c_next = 0;
            c_current = None;
            c_target = primary;
            c_attempt = 0;
            c_retry = None;
            c_acked = [];
            c_env = None;
          }
        in
        c.c_env <- Some (env t id);
        Client c)
  in
  t.roles <- Array.append replicas clients;
  start ();
  Array.iter (function Client c -> client_issue t c | Replica _ -> ()) t.roles;
  for i = 0 to n - 1 do
    drain_self t i
  done;
  t

(* ---- enabled choices ------------------------------------------------- *)

let majority t = (t.cfg.Trace.n_replicas / 2) + 1

let alive_replicas t =
  let k = ref 0 in
  for i = 0 to t.cfg.Trace.n_replicas - 1 do
    if t.alive.(i) then incr k
  done;
  !k

let is_enabled t c =
  let valid i = i >= 0 && i < t.n in
  match c with
  | Trace.Deliver { src; dst } ->
    valid src && valid dst && src <> dst && t.alive.(dst)
    && not (Queue.is_empty t.links.(src).(dst))
  | Trace.Drop { src; dst } ->
    t.drops_left > 0 && valid src && valid dst && src <> dst && t.alive.(dst)
    && not (Queue.is_empty t.links.(src).(dst))
  | Trace.Fire { node } ->
    valid node && t.alive.(node)
    && t.fires_left.(node) > 0
    && Event_queue.length t.timers.(node) > 0
  | Trace.Crash { node } ->
    node >= 0
    && node < t.cfg.Trace.n_replicas
    && t.alive.(node) && t.crashes_left > 0
    && alive_replicas t - 1 >= majority t

(* The fixed enumeration order — delivers by (src, dst), then timer
   fires by node, then faults — is part of the replay contract: sibling
   order in the DFS, and hence trace shapes, depend on it. *)
let enabled t =
  let acc = ref [] in
  let add c = acc := c :: !acc in
  for src = 0 to t.n - 1 do
    for dst = 0 to t.n - 1 do
      if t.alive.(dst) && not (Queue.is_empty t.links.(src).(dst)) then
        add (Trace.Deliver { src; dst })
    done
  done;
  for node = 0 to t.n - 1 do
    if
      t.alive.(node)
      && t.fires_left.(node) > 0
      && Event_queue.length t.timers.(node) > 0
    then add (Trace.Fire { node })
  done;
  if t.drops_left > 0 then
    for src = 0 to t.n - 1 do
      for dst = 0 to t.n - 1 do
        if t.alive.(dst) && not (Queue.is_empty t.links.(src).(dst)) then
          add (Trace.Drop { src; dst })
      done
    done;
  if t.crashes_left > 0 && alive_replicas t - 1 >= majority t then
    for node = 0 to t.cfg.Trace.n_replicas - 1 do
      if t.alive.(node) then add (Trace.Crash { node })
    done;
  List.rev !acc

(* ---- applying choices ------------------------------------------------ *)

let do_deliver t ~src ~dst =
  let seq, msg = Queue.pop t.links.(src).(dst) in
  emit_kind t ~core:dst ~label:"" (Event.Recv { src; dst; seq });
  dispatch t dst ~src msg;
  drain_self t dst

(* [budgeted] is false only from the liveness closure, which continues
   fault-free past the per-node fire budgets. *)
let do_fire t ~budgeted node =
  match Event_queue.pop t.timers.(node) with
  | None -> invalid_arg "World: fire on empty timer queue"
  | Some (at, f) ->
    (* Deliveries are instantaneous; only timers advance the clock, to
       the fired deadline (deadlines pop in order per node, but a
       younger node's earlier timer may fire after an older node's
       later one — hence the max). *)
    if at > t.clock then t.clock <- at;
    if budgeted then t.fires_left.(node) <- t.fires_left.(node) - 1;
    emit_kind t ~core:node ~label:"" (Event.Timer { node });
    f ();
    drain_self t node

let do_apply t c =
  match c with
  | Trace.Deliver { src; dst } -> do_deliver t ~src ~dst
  | Trace.Drop { src; dst } ->
    ignore (Queue.pop t.links.(src).(dst));
    t.drops_left <- t.drops_left - 1;
    emit_kind t ~core:dst
      ~label:(Printf.sprintf "drop %d->%d" src dst)
      (Event.Fault { node = dst; fault = "drop" })
  | Trace.Fire { node } -> do_fire t ~budgeted:true node
  | Trace.Crash { node } ->
    t.alive.(node) <- false;
    t.crashes_left <- t.crashes_left - 1;
    (* Fail-stop forever: timers die with the process and in-flight
       messages addressed to it are lost (costing no drop budget);
       messages it already sent stay in the network. Its frozen state
       still participates in consistency checking — values it learned
       before dying must agree with the survivors'. *)
    Event_queue.clear t.timers.(node);
    Queue.clear t.self_q.(node);
    for src = 0 to t.n - 1 do
      Queue.clear t.links.(src).(node)
    done;
    emit_kind t ~core:node ~label:"crash"
      (Event.Fault { node; fault = "crash" })

let apply t c =
  if not (is_enabled t c) then
    invalid_arg
      (Printf.sprintf "World.apply: choice %S not enabled"
         (Trace.choice_to_line c));
  do_apply t c

(* ---- state digest ---------------------------------------------------- *)

(* Known abstractions, documented in DESIGN.md §14: the global clock is
   excluded and timer deadlines hashed relative to it (states differing
   only in absolute time collide — intended); pending timers are hashed
   by relative deadline only, not by what their thunks would do; the
   per-node RNG states are not observable and so not hashed. *)
let digest t =
  let role_digests =
    Array.map
      (function
        | Replica r -> r.r_digest ()
        | Client c ->
          Hashtbl.hash_param 1000 1000
            ( c.c_next, c.c_current, c.c_target,
              c.c_retry <> None,
              List.sort compare c.c_acked ))
      t.roles
  in
  let links = ref [] in
  for src = t.n - 1 downto 0 do
    for dst = t.n - 1 downto 0 do
      if not (Queue.is_empty t.links.(src).(dst)) then
        (* The machine-wide send seq is history, not state: two
           different pasts reaching the same in-flight multiset must
           collide, so only the messages are hashed. *)
        links :=
          (src, dst, List.map snd (List.of_seq (Queue.to_seq t.links.(src).(dst))))
          :: !links
    done
  done;
  let timers =
    Array.map
      (fun q -> List.map (fun (at, _) -> at - t.clock) (Event_queue.snapshot q))
      t.timers
  in
  Hashtbl.hash_param 4000 4000
    ( role_digests, !links, timers, t.alive, t.fires_left,
      (t.drops_left, t.crashes_left) )

(* ---- properties ------------------------------------------------------ *)

let acked t =
  Array.fold_left
    (fun acc -> function Client c -> List.rev_append c.c_acked acc | Replica _ -> acc)
    [] t.roles
  |> List.sort compare

let views t =
  Array.to_list t.roles
  |> List.filter_map (function Replica r -> Some (r.r_view ()) | Client _ -> None)

(* Safety, checked at every explored state: agreement, non-triviality,
   state convergence, session integrity — exactly the runner's
   end-of-run predicate, with Mencius skip placeholders exempt from
   non-triviality (they are proposed by the protocol, not a client). *)
let check t =
  let proposed (v : Wire.value) =
    Ci_consensus.Mencius.is_skip_value v
    ||
    match Hashtbl.find_opt t.issued (v.Wire.client, v.Wire.req_id) with
    | Some cmd -> Command.equal cmd v.Wire.cmd
    | None -> false
  in
  Consistency.check ~equal:Wire.value_equal ~proposed ~acked:(acked t)
    ~key_of:Wire.value_key (views t)

let all_acked t =
  Array.for_all
    (function
      | Client c -> c.c_next = t.cfg.Trace.n_commands && c.c_current = None
      | Replica _ -> true)
    t.roles

let missing_acks t =
  Array.fold_left
    (fun acc -> function
      | Replica _ -> acc
      | Client c ->
        let from_ = match c.c_current with Some (r, _) -> r | None -> c.c_next in
        let rec span i acc =
          if i >= t.cfg.Trace.n_commands then acc else span (i + 1) ((c.c_id, i) :: acc)
        in
        span from_ acc)
    [] t.roles
  |> List.sort compare

let quiescent t =
  let busy = ref false in
  for src = 0 to t.n - 1 do
    for dst = 0 to t.n - 1 do
      if t.alive.(dst) && not (Queue.is_empty t.links.(src).(dst)) then
        busy := true
    done
  done;
  for node = 0 to t.n - 1 do
    if
      t.alive.(node)
      && t.fires_left.(node) > 0
      && Event_queue.length t.timers.(node) > 0
    then busy := true
  done;
  not !busy

(* Deterministic fault-free continuation: deliver everything in (src,
   dst) order; once no deliveries remain, fire the globally earliest
   timer ignoring fire budgets; repeat. Destroys the world — callers
   rebuild from the prefix. [`Livelock] on a lasso (state digest
   repeats with no new acks or decisions — e.g. a client retrying into
   a 2PC whose coordinator is dead), on true quiescence with commands
   outstanding, or on step-cap exhaustion (conservative). *)
let run_closure t ~max_steps =
  let seen = Hashtbl.create 997 in
  let progress () =
    ( List.length (acked t),
      List.fold_left (fun a v -> a + List.length v.Consistency.decisions) 0 (views t) )
  in
  let first_deliver () =
    let found = ref None in
    (try
       for src = 0 to t.n - 1 do
         for dst = 0 to t.n - 1 do
           if t.alive.(dst) && not (Queue.is_empty t.links.(src).(dst)) then begin
             found := Some (src, dst);
             raise Exit
           end
         done
       done
     with Exit -> ());
    !found
  in
  let earliest_fire () =
    let best = ref None in
    for node = 0 to t.n - 1 do
      if t.alive.(node) then
        match Event_queue.peek_time t.timers.(node) with
        | Some at -> (
          match !best with
          | Some (bat, _) when bat <= at -> ()
          | _ -> best := Some (at, node))
        | None -> ()
    done;
    !best
  in
  let steps = ref 0 in
  let result = ref None in
  while !result = None do
    if all_acked t then result := Some `Live
    else if !steps >= max_steps then result := Some (`Livelock (missing_acks t))
    else begin
      let key = (digest t, progress ()) in
      if Hashtbl.mem seen key then result := Some (`Livelock (missing_acks t))
      else begin
        Hashtbl.add seen key ();
        match first_deliver () with
        | Some (src, dst) ->
          do_deliver t ~src ~dst;
          incr steps
        | None -> (
          match earliest_fire () with
          | Some (_, node) ->
            do_fire t ~budgeted:false node;
            incr steps
          | None -> result := Some (`Livelock (missing_acks t)))
      end
    end
  done;
  match !result with Some r -> r | None -> assert false

(* ---- independence ---------------------------------------------------- *)

(* Static footprints over abstract resources: node states, the two
   fault budgets, and each directed link split into a HEAD (pop) and a
   TAIL (append) resource. The split is what makes message chains
   reducible: popping the head of a non-empty FIFO commutes with
   appending to its tail, and only the link's source node ever appends
   — so two choices running different nodes' handlers write disjoint
   tails, and a delivery is independent of the (earlier) delivery that
   produced the message behind it. Conservative where it must be: any
   two choices executing the same node's handlers share that node's
   state resource, all drops share the drop budget, all crashes the
   crash budget. *)
let footprint t c =
  let n = t.n in
  let node i = i in
  let head s d = n + (s * n) + d in
  let tail s d = n + (n * n) + (s * n) + d in
  let drop_budget = n + (2 * n * n) and crash_budget = n + (2 * n * n) + 1 in
  let tails m = List.init n (fun x -> tail m x) in
  match c with
  | Trace.Deliver { src; dst } -> node dst :: head src dst :: tails dst
  | Trace.Fire { node = m } -> node m :: tails m
  | Trace.Drop { src; dst } -> [ head src dst; drop_budget ]
  | Trace.Crash { node = m } ->
    (* Clearing every inbound queue touches both ends of (x, m); the
       node resource covers its timers and frozen state. *)
    (node m :: crash_budget :: tails m)
    @ List.concat (List.init n (fun x -> [ head x m; tail x m ]))

let independent t c1 c2 =
  let f1 = footprint t c1 and f2 = footprint t c2 in
  not (List.exists (fun r -> List.mem r f2) f1)

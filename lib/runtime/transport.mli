(** Pluggable point-to-point transports for the live runtime.

    One endpoint per node, three operations — the contract the event
    loop in {!Live} runs against, whatever the bytes travel over:

    - [send ~dst msg]: hand a message to the transport. Never blocks.
      If the fast path is full (ring slots exhausted, kernel socket
      buffer full behind a pending frame) the message parks in a
      per-destination outbox; beyond [outbox_cap] parked messages it is
      dropped and counted, never held in an unbounded heap — exactly
      the back-pressure semantics {!Live} has always had.
    - [flush]: retry parked messages in FIFO order. Per-destination
      order is always send order; cross-destination order is not
      specified (as on a real NIC).
    - [drain f]: deliver every receivable message to [f ~src msg],
      budgeted per source so one chatty peer cannot starve the rest.

    Two implementations:

    - {e byte rings} ({!rings_mesh}/{!rings_endpoint}): one
      {!Spsc_bytes} ring per ordered pair of nodes in shared memory —
      messages cross domains as flat bytes in fixed slots, the paper's
      intra-machine transport. [send]/[flush]/[drain] on this backend
      allocate nothing beyond the decoded inbound messages.
    - {e sockets} ({!socket_endpoint}): one stream socket per pair of
      processes, frames length-prefixed (4-byte LE) with
      {!Ci_consensus.Codec} as the wire format — the same protocol
      cores on separate processes, the paper's machine-to-machine
      comparison point. Failure semantics: a peer that disappears
      reads as EOF/[EPIPE]; pending traffic to it is shed and counted
      like any over-cap outbox. *)

type t

val rings_mesh :
  n:int -> slots:int -> slot_size:int -> Spsc_bytes.t option array array
(** Full mesh for [n] nodes: [mesh.(dst).(src)] carries [src -> dst];
    the diagonal is [None]. *)

val rings_endpoint :
  Spsc_bytes.t option array array -> id:int -> outbox_cap:int -> t
(** Node [id]'s endpoint of a {!rings_mesh}: row [id] are its in-queues
    (it is their only consumer), column [id] its out-queues (only
    producer). *)

val socket_endpoint :
  id:int -> fds:Unix.file_descr option array -> outbox_cap:int -> t
(** Node [id]'s endpoint over [fds.(peer)], one connected stream socket
    per peer ([None] on the diagonal). The descriptors are switched to
    non-blocking and owned by the endpoint from here on. *)

val send : t -> dst:int -> Ci_consensus.Wire.t -> unit
(** @raise Invalid_argument on a destination with no link (including
    self — local delivery is the caller's business, not a transport's). *)

val flush : t -> int
(** Returns the number of parked messages that made it out. *)

val drain : t -> (src:int -> Ci_consensus.Wire.t -> unit) -> int
(** Returns the number of messages delivered to the handler. *)

val clear_outboxes : t -> unit
(** Drop every parked message — a crashing node's NIC loses its queue. *)

(** {2 Statistics}

    Owned by the endpoint's domain; read them after it has joined. *)

val blocked : t -> int
(** Sends that found the fast path full and fell back to the outbox. *)

val outbox_dropped : t -> int
val outbox_peak : t -> int

val full_by_kind : t -> (string * int) list
(** {!blocked}, attributed per {!Ci_consensus.Wire.kind} — the
    [live.ring.full.<kind>] metric source. *)

val sent : t -> int
(** Messages accepted onto the wire (socket endpoints; ring meshes
    count in the rings themselves). *)

val mesh_queue_count : Spsc_bytes.t option array array -> int
val mesh_msgs : Spsc_bytes.t option array array -> int
val mesh_occupancy_peak : Spsc_bytes.t option array array -> int
val mesh_jumbo : Spsc_bytes.t option array array -> int

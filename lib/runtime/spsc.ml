(* Monotonically increasing cursors: [tail] counts enqueues (producer-
   owned), [head] counts dequeues (consumer-owned); occupancy is their
   difference and slot index is [cursor mod slots]. Slot contents are
   plain (non-atomic) writes: the OCaml memory model makes the
   producer's slot write happen-before the consumer's slot read because
   the producer's [Atomic.set tail] (SC) follows the write and the
   consumer reads [tail] before the slot; symmetrically the consumer's
   slot clear happens-before the producer's reuse via [head]. *)

type 'a t = {
  ring : 'a option array;
  n_slots : int;
  head : int Atomic.t; (* consumer cursor *)
  tail : int Atomic.t; (* producer cursor *)
  (* Single-writer statistics; see .mli for the read discipline. *)
  mutable n_push : int;
  mutable n_pop : int;
  mutable occ_peak : int;
}

(* OCaml 5.1 has no [Atomic.make_contended]; pad by allocating filler
   between the two atomic boxes. Minor-heap allocation is sequential,
   so the boxes land at least a cache line apart (best effort — the
   major GC may compact, but in practice allocation order survives
   promotion). 15 words ≥ 64 bytes on 64-bit. *)
let pad () = ignore (Sys.opaque_identity (Array.make 15 0))

let create ~slots =
  if slots < 1 then invalid_arg "Spsc.create: slots must be >= 1";
  let ring = Array.make slots None in
  pad ();
  let head = Atomic.make 0 in
  pad ();
  let tail = Atomic.make 0 in
  pad ();
  { ring; n_slots = slots; head; tail; n_push = 0; n_pop = 0; occ_peak = 0 }

let slots q = q.n_slots

let try_push q x =
  let tail = Atomic.get q.tail in
  let occ = tail - Atomic.get q.head in
  if occ >= q.n_slots then false
  else begin
    q.ring.(tail mod q.n_slots) <- Some x;
    Atomic.set q.tail (tail + 1);
    q.n_push <- q.n_push + 1;
    if occ + 1 > q.occ_peak then q.occ_peak <- occ + 1;
    true
  end

let try_pop q =
  let head = Atomic.get q.head in
  if head >= Atomic.get q.tail then None
  else begin
    let i = head mod q.n_slots in
    let v = q.ring.(i) in
    q.ring.(i) <- None;
    Atomic.set q.head (head + 1);
    q.n_pop <- q.n_pop + 1;
    v
  end

let length q = max 0 (Atomic.get q.tail - Atomic.get q.head)
let pushes q = q.n_push
let pops q = q.n_pop
let occupancy_peak q = q.occ_peak

(** Per-domain timer wheel over the monotonic clock.

    The runtime's analogue of the simulator's event queue for {e timers
    only}: each domain owns one wheel, arms deadlines through its
    {!Ci_engine.Node_env} and fires whatever is due on every event-loop
    turn. Built on {!Ci_engine.Event_queue} (binary min-heap, FIFO
    tie-break, O(1) cancellation), which the simulator already trusts
    for exactly this job. Not thread-safe: owner domain only. *)

type t
(** One domain's pending timers. *)

type timer = Ci_engine.Event_queue.token
(** Cancellation handle for one armed timer. *)

val create : unit -> t

val at : t -> deadline:int -> (unit -> unit) -> unit
(** [at w ~deadline f] arms [f] to run once [now >= deadline] (ns). *)

val at_token : t -> deadline:int -> (unit -> unit) -> timer
(** [at_token] is {!at} but revocable via {!cancel}. *)

val cancel : t -> timer -> unit
(** [cancel w tm] revokes an armed timer; spent timers are a no-op. *)

val next_deadline : t -> int
(** [next_deadline w] is the earliest armed deadline, or
    {!Ci_engine.Event_queue.no_event} when none are armed. *)

val pending : t -> int
(** [pending w] is the number of armed (uncancelled) timers. *)

val run_due : t -> now:int -> int
(** [run_due w ~now] fires every timer with [deadline <= now], in
    deadline order (FIFO among equals), and returns how many fired.
    Fired thunks may arm new timers; newly armed timers already due are
    fired in the same call. *)

module Wire = Ci_consensus.Wire
module Codec = Ci_consensus.Codec

(* A peer link on the socket backend. [wbuf] holds at most one
   partially-written frame (bytes [wpos, wend)); while it is non-empty
   further sends park in the outbox, preserving frame order. [rbuf]
   accumulates the inbound stream; complete length-prefixed frames are
   decoded out of it, a partial tail is compacted to the front. *)
type peer = {
  fd : Unix.file_descr;
  mutable wbuf : Bytes.t;
  mutable wpos : int;
  mutable wend : int;
  mutable rbuf : Bytes.t;
  mutable rpos : int;
  mutable rend : int;
  mutable closed : bool;
}

type kind =
  | Rings of {
      inqs : Spsc_bytes.t option array; (* indexed by src *)
      outqs : Spsc_bytes.t option array; (* indexed by dst *)
    }
  | Socket of { peers : peer option array }

type t = {
  id : int;
  n : int;
  kind : kind;
  outbox : Wire.t Queue.t array;
  cap : int;
  mutable n_blocked : int;
  mutable n_outbox_dropped : int;
  mutable outbox_peak : int;
  mutable n_sent : int;
  full_kinds : (string, int ref) Hashtbl.t;
}

(* ---------- construction ---------- *)

let rings_mesh ~n ~slots ~slot_size =
  Array.init n (fun dst ->
      Array.init n (fun src ->
          if src = dst then None
          else Some (Spsc_bytes.create ~slots ~slot_size)))

let make ~id ~n ~outbox_cap kind =
  {
    id;
    n;
    kind;
    outbox = Array.init n (fun _ -> Queue.create ());
    cap = outbox_cap;
    n_blocked = 0;
    n_outbox_dropped = 0;
    outbox_peak = 0;
    n_sent = 0;
    full_kinds = Hashtbl.create 8;
  }

let rings_endpoint mesh ~id ~outbox_cap =
  let n = Array.length mesh in
  let inqs = mesh.(id) in
  let outqs = Array.init n (fun dst -> mesh.(dst).(id)) in
  make ~id ~n ~outbox_cap (Rings { inqs; outqs })

let frame_header = 4
let read_chunk = 65536
let max_frame = 1 lsl 26 (* 64 MB: no legitimate message comes close *)

let socket_endpoint ~id ~fds ~outbox_cap =
  let peers =
    Array.map
      (fun fd ->
        match fd with
        | None -> None
        | Some fd ->
          Unix.set_nonblock fd;
          Some
            {
              fd;
              wbuf = Bytes.create 4096;
              wpos = 0;
              wend = 0;
              rbuf = Bytes.create read_chunk;
              rpos = 0;
              rend = 0;
              closed = false;
            })
      fds
  in
  make ~id ~n:(Array.length fds) ~outbox_cap (Socket { peers })

(* ---------- socket plumbing ---------- *)

let sock_broken = function
  | Unix.EPIPE | Unix.ECONNRESET | Unix.ENOTCONN | Unix.EBADF -> true
  | _ -> false

(* Push [wbuf]'s pending bytes at the kernel; stop on a full buffer. *)
let rec write_pending p =
  if p.wpos < p.wend && not p.closed then
    match Unix.write p.fd p.wbuf p.wpos (p.wend - p.wpos) with
    | 0 -> ()
    | k ->
      p.wpos <- p.wpos + k;
      write_pending p
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (EINTR, _, _) -> write_pending p
    | exception Unix.Unix_error (e, _, _) when sock_broken e ->
      (* Peer is gone: shed the rest like a dead NIC. *)
      p.closed <- true;
      p.wpos <- 0;
      p.wend <- 0

(* Accepts [msg] iff the previous frame is fully out: frames the
   message into [wbuf] and starts writing. Local buffering counts as
   accepted — the kernel buffer is the back-pressure boundary. *)
let sock_try_send p msg =
  if p.closed then true
  else begin
    if p.wpos < p.wend then write_pending p;
    if p.wpos < p.wend then false
    else begin
      let size = Codec.encoded_size msg in
      if Bytes.length p.wbuf < frame_header + size then
        p.wbuf <- Bytes.create (frame_header + size);
      Bytes.set p.wbuf 0 (Char.unsafe_chr (size land 0xff));
      Bytes.set p.wbuf 1 (Char.unsafe_chr ((size lsr 8) land 0xff));
      Bytes.set p.wbuf 2 (Char.unsafe_chr ((size lsr 16) land 0xff));
      Bytes.set p.wbuf 3 (Char.unsafe_chr ((size lsr 24) land 0xff));
      ignore (Codec.encode msg p.wbuf ~pos:frame_header);
      p.wpos <- 0;
      p.wend <- frame_header + size;
      write_pending p;
      true
    end
  end

let sock_read p =
  if not p.closed then begin
    (* Compact, then make sure a whole chunk fits. *)
    if p.rpos > 0 then begin
      Bytes.blit p.rbuf p.rpos p.rbuf 0 (p.rend - p.rpos);
      p.rend <- p.rend - p.rpos;
      p.rpos <- 0
    end;
    if Bytes.length p.rbuf - p.rend < read_chunk then begin
      let bigger = Bytes.create (2 * (Bytes.length p.rbuf + read_chunk)) in
      Bytes.blit p.rbuf 0 bigger 0 p.rend;
      p.rbuf <- bigger
    end;
    match Unix.read p.fd p.rbuf p.rend (Bytes.length p.rbuf - p.rend) with
    | 0 -> p.closed <- true
    | k -> p.rend <- p.rend + k
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error (e, _, _) when sock_broken e -> p.closed <- true
  end

let frame_len p =
  let b i = Char.code (Bytes.get p.rbuf (p.rpos + i)) in
  b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)

let rec sock_deliver p f ~src acc =
  if p.rend - p.rpos < frame_header then acc
  else begin
    let len = frame_len p in
    if len < 1 || len > max_frame then
      raise (Codec.Error "socket frame: corrupt length");
    if p.rend - p.rpos - frame_header < len then acc
    else begin
      let msg = Codec.decode p.rbuf ~pos:(p.rpos + frame_header) ~len in
      p.rpos <- p.rpos + frame_header + len;
      f ~src msg;
      sock_deliver p f ~src (acc + 1)
    end
  end

(* ---------- the endpoint operations ---------- *)

(* The blocked path is the exception, so the per-kind attribution may
   allocate; the fast paths on the rings backend must not. *)
let note_full t msg =
  t.n_blocked <- t.n_blocked + 1;
  let k = Wire.kind msg in
  match Hashtbl.find_opt t.full_kinds k with
  | Some r -> incr r
  | None -> Hashtbl.add t.full_kinds k (ref 1)

let park t ~dst msg =
  note_full t msg;
  let ob = t.outbox.(dst) in
  let len = Queue.length ob in
  if len >= t.cap then t.n_outbox_dropped <- t.n_outbox_dropped + 1
  else begin
    Queue.push msg ob;
    if len + 1 > t.outbox_peak then t.outbox_peak <- len + 1
  end

let send t ~dst msg =
  if dst < 0 || dst >= t.n then invalid_arg "Transport.send: unknown node";
  match t.kind with
  | Rings { outqs; _ } -> (
    match outqs.(dst) with
    | None -> invalid_arg "Transport.send: no link to destination"
    | Some q ->
      if Queue.is_empty t.outbox.(dst) && Spsc_bytes.try_push q msg then ()
      else park t ~dst msg)
  | Socket { peers } -> (
    match peers.(dst) with
    | None -> invalid_arg "Transport.send: no link to destination"
    | Some p ->
      if Queue.is_empty t.outbox.(dst) && sock_try_send p msg then
        t.n_sent <- t.n_sent + 1
      else park t ~dst msg)

let rec flush_ring q ob acc =
  if Queue.is_empty ob then acc
  else if Spsc_bytes.try_push q (Queue.peek ob) then begin
    ignore (Queue.pop ob);
    flush_ring q ob (acc + 1)
  end
  else acc

let rec flush_rings t outqs dst acc =
  if dst >= t.n then acc
  else
    let acc =
      match outqs.(dst) with
      | None -> acc
      | Some q -> flush_ring q t.outbox.(dst) acc
    in
    flush_rings t outqs (dst + 1) acc

let rec flush_sock t p ob acc =
  if Queue.is_empty ob then acc
  else if sock_try_send p (Queue.peek ob) then begin
    ignore (Queue.pop ob);
    t.n_sent <- t.n_sent + 1;
    flush_sock t p ob (acc + 1)
  end
  else acc

let rec flush_socks t peers dst acc =
  if dst >= t.n then acc
  else
    let acc =
      match peers.(dst) with
      | None -> acc
      | Some p ->
        write_pending p;
        flush_sock t p t.outbox.(dst) acc
    in
    flush_socks t peers (dst + 1) acc

let flush t =
  match t.kind with
  | Rings { outqs; _ } -> flush_rings t outqs 0 0
  | Socket { peers } -> flush_socks t peers 0 0

let rec drain_ring q f ~src budget acc =
  if budget <= 0 then acc
  else
    match Spsc_bytes.try_pop q with
    | None -> acc
    | Some msg ->
      f ~src msg;
      drain_ring q f ~src (budget - 1) (acc + 1)

let rec drain_rings t inqs f src acc =
  if src >= t.n then acc
  else
    let acc =
      match inqs.(src) with
      | None -> acc
      | Some q ->
        (* At most one ring's worth per source per turn, so one chatty
           peer cannot starve the rest. *)
        drain_ring q f ~src (Spsc_bytes.slots q) acc
    in
    drain_rings t inqs f (src + 1) acc

let rec drain_socks t peers f src acc =
  if src >= t.n then acc
  else
    let acc =
      match peers.(src) with
      | None -> acc
      | Some p ->
        sock_read p;
        sock_deliver p f ~src acc
    in
    drain_socks t peers f (src + 1) acc

let drain t f =
  match t.kind with
  | Rings { inqs; _ } -> drain_rings t inqs f 0 0
  | Socket { peers } -> drain_socks t peers f 0 0

let clear_outboxes t = Array.iter Queue.clear t.outbox

(* ---------- statistics ---------- *)

let blocked t = t.n_blocked
let outbox_dropped t = t.n_outbox_dropped
let outbox_peak t = t.outbox_peak
let sent t = t.n_sent

let full_by_kind t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.full_kinds []
  |> List.sort compare

let fold_mesh f mesh acc =
  Array.fold_left
    (fun acc row ->
      Array.fold_left
        (fun acc q -> match q with None -> acc | Some q -> f acc q)
        acc row)
    acc mesh

let mesh_queue_count mesh = fold_mesh (fun acc _ -> acc + 1) mesh 0
let mesh_msgs mesh = fold_mesh (fun acc q -> acc + Spsc_bytes.pushes q) mesh 0

let mesh_occupancy_peak mesh =
  fold_mesh (fun acc q -> max acc (Spsc_bytes.occupancy_peak q)) mesh 0

let mesh_jumbo mesh =
  fold_mesh (fun acc q -> acc + Spsc_bytes.jumbo_pushes q) mesh 0

(** Single-producer single-consumer ring of fixed-size byte slots — the
    paper's QC-libtask mailbox made real.

    Where {!Spsc} moves boxed OCaml values (pointers into a shared
    heap), this ring owns a flat [Bytes.t] of [slots * slot_size] and
    moves {e copies}: the producer encodes a {!Ci_consensus.Wire.t}
    in place with {!Ci_consensus.Codec} (allocating nothing), the
    consumer decodes a fresh message out of its slots. The cursors are
    the same monotonically increasing single-writer atomics as {!Spsc},
    padded apart by allocation order; slot bytes and the per-slot
    length descriptors are plain writes ordered by the cursor
    publications.

    A message of [b] bytes occupies [ceil(b / slot_size)] {e
    consecutive} slots (the continuation-slot spill scheme for batch
    messages). Two in-band markers keep FIFO order exact:

    - a {e padding} marker when a spilled message would straddle the
      physical end of the buffer — the remaining tail slots are skipped
      and the message starts at slot 0;
    - a {e jumbo} marker when no contiguous placement exists at the
      current tail alignment, neither in place nor after a pad (in
      particular any message bigger than the whole ring, e.g. a
      catch-up [Ls_reply] carrying thousands of decisions): the boxed
      value takes a bounded {!Spsc} side ring and the marker holds its
      place in line. The tail only advances on successful pushes, so
      parking such a message would deadlock the link.

    [try_push] fails (returns [false]) exactly when the required slots
    (or the side ring) are not free — the caller's outbox fallback
    handles retry, as with {!Spsc}. *)

type t

val create : slots:int -> slot_size:int -> t
(** [slots] per ring (>= 1); [slot_size] bytes per slot — must be a
    power of two and at least {!min_slot_size}.
    @raise Invalid_argument otherwise. *)

val min_slot_size : int
(** Smallest accepted [slot_size] (32 bytes: a slot must comfortably
    exceed the biggest fixed field group so spill stays the exception). *)

val slots : t -> int
val slot_size : t -> int

val try_push : t -> Ci_consensus.Wire.t -> bool
(** Producer only. Encodes [msg] into the next free slots; [false] if
    they (or, for jumbo messages, the side ring) are full. Allocates
    nothing on the success path except for jumbo spills. *)

val try_pop : t -> Ci_consensus.Wire.t option
(** Consumer only. Decodes and frees the slots of the oldest message. *)

(** {2 Statistics}

    Single-writer counters, same read discipline as {!Spsc}: push-side
    numbers are exact from the producer's domain, pop-side from the
    consumer's; any domain may read them after the owners have joined. *)

val pushes : t -> int
val pops : t -> int
val occupancy_peak : t -> int
(** Worst slot occupancy observed at enqueue (in slots, not messages). *)

val jumbo_pushes : t -> int
(** Messages that overflowed to the boxed side ring. *)

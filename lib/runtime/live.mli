(** Run the protocol cores for real: OCaml 5 domains (or processes)
    over pluggable transports.

    The metal-side twin of {!Ci_workload.Runner}. Each replica and each
    closed-loop client gets its own domain; every ordered pair of nodes
    gets one bounded queue — by default a {!Spsc_bytes} ring moving
    encoded messages through fixed byte slots (the per-pair mesh
    QC-libtask builds in shared memory). Each node runs an event loop
    that flushes its parked sends, drains its in-queues and fires its
    {!Timer_wheel} off the monotonic clock. The protocol and client
    code is {e exactly} the code the simulator runs — both backends
    implement {!Ci_engine.Node_env}.

    The transport is pluggable (see {!Transport}): [Spsc] runs the
    mesh in-process over byte rings; [Socket] forks one {e process}
    per node and runs the same cores over stream sockets, with
    {!Ci_consensus.Codec} as the wire format — the paper's
    machine-to-machine comparison point, minus the network.

    A run has three phases: measure for [duration_s] (clients issue
    requests closed-loop), quiesce (clients stop consuming replies) for
    [drain_s] so in-flight commands settle, then stop and join. After
    the join, the same {!Ci_rsm.Consistency} checker the simulator uses
    is run over the live replicas' views. *)

type protocol = Onepaxos | Multipaxos

type transport = Spsc | Socket

type spec = {
  protocol : protocol;
  n_replicas : int;  (** Replica domains {e per group} (>= 2). *)
  n_clients : int;  (** Client domains (>= 1). *)
  groups : int;
      (** Independent consensus groups the keyspace is hash-partitioned
          over. [1] (the default) is the paper's single group. [> 1]
          spawns [groups * n_replicas] replica domains group-major plus
          one router domain per group; clients send to the routers,
          which forward single-shard commands and run cross-shard
          multi-puts as 2PC transactions over the owning groups.
          In-process transport only. *)
  cross_shard_ratio : float;
      (** Fraction of client commands that are cross-shard two-key
          multi-puts ([0.] leaves the workload untouched). *)
  duration_s : float;  (** Measured wall-clock phase. *)
  drain_s : float;  (** Quiesce phase before stopping the domains. *)
  transport : transport;
      (** [Spsc] (default): domains over {!Spsc_bytes} rings in shared
          memory. [Socket]: one forked process per node over stream
          sockets; requires [groups = 1] and an empty nemesis (process
          faults belong to the operating system on that backend).
          OCaml 5 refuses [Unix.fork] once a process has ever spawned a
          domain, so a [Socket] run must come before any [Spsc] run (or
          any other domain use) in the same process — the CLI satisfies
          this trivially, one run per invocation. *)
  queue_slots : int;  (** Ring capacity per ordered pair (in slots). *)
  slot_size : int;
      (** Bytes per ring slot — a power of two, at least
          {!Spsc_bytes.min_slot_size}. Every non-batch message fits one
          128-byte slot ({!Ci_consensus.Codec.max_fixed_size}); batch
          messages spill over consecutive slots. *)
  seed : int;  (** Per-node rng streams are derived from this. *)
  client_timeout : int;
      (** Client retry timeout (ns). Keep generous: on an oversubscribed
          host a GC pause or scheduling gap must not masquerade as a
          dead replica. *)
  think : int;  (** Client think time between requests (ns). *)
  read_ratio : float;  (** Fraction of [Get] commands. *)
  key_space : int;  (** Keys drawn from [0 .. key_space-1]. *)
  outbox_cap : int;
      (** Per-destination outbox bound: a peer that stops draining
          (dead, paused, wedged) costs a sender at most this many
          parked messages per destination — the overflow is dropped and
          counted, never held in an unbounded heap. *)
  lease : int;
      (** Leader-lease duration (ns): the leader answers reads from its
          local store while a majority's grants are provably unexpired
          (wall-clock leases over the monotonic clock), degrading to
          consensus reads otherwise. [0] (the default) disables the
          mechanism — no extra messages or timers. *)
  lease_skew : int;
      (** Clock-rate-skew margin (ns) subtracted from every grant's
          validity at the leader; must be < [lease] when leases are
          on. *)
  open_loop : Ci_workload.Runner.open_loop option;
      (** When set, client domains run open-loop {!Ci_load.Open_client}
          drivers instead of closed-loop clients: arrivals follow the
          offered schedule for the measured phase, latency is measured
          from the intended arrival, and the per-driver sinks are pooled
          into [result.load]. In-process transport only; [think],
          [read_ratio] and [key_space] are ignored. *)
  nemesis : Ci_faults.t;
      (** Declarative fault schedule ({!Ci_faults.empty} by default).
          Crash and pause transitions are evaluated by each replica
          domain's own event loop against the monotonic clock — a
          crashed replica keeps only its durable registers and rejoins
          through the protocol's [recover]; link faults act sender-side
          at the transport boundary. Node indices refer to replicas
          [0..groups*n_replicas-1]. [Slow] faults are simulator-only and
          rejected here. In-process transport only. *)
}

val default_spec : protocol:protocol -> spec
(** 3 replicas, 2 clients, 1 s measured + 0.2 s drain, in-process
    transport, 64-slot 128-byte rings, 150 ms client timeout,
    write-only workload, seed 42. *)

type queue_totals = {
  q_count : int;  (** Queues (links) in the mesh. *)
  q_msgs : int;  (** Messages that crossed any link. *)
  q_blocked : int;  (** Sends that found the fast path full (outbox fallback). *)
  q_occupancy_peak : int;
      (** Worst ring occupancy at enqueue, in slots (0 on the socket
          transport — the kernel owns that buffer). *)
  q_outbox_peak : int;  (** Worst parked-outbox depth over all nodes. *)
  q_outbox_dropped : int;
      (** Messages shed at the outbox cap (undrained peer). *)
}

type result = {
  spec : spec;
  cores : int;  (** [Domain.recommended_domain_count] at run time. *)
  wall_s : float;  (** Actual measured-phase length. *)
  ops : int;  (** Replies received within the measured phase. *)
  throughput : float;  (** [ops /. wall_s]. *)
  latency : Ci_stats.Summary.t;
      (** Request latency over the measured phase (first transmission to
          reply, as in the simulator). *)
  retries : int;  (** Client timeouts that fired. *)
  leader_changes : int;
      (** 1Paxos: applied [LeaderChange] entries (max over replicas).
          Multi-Paxos: elections initiated (sum). Should be 0 on a
          healthy no-fault run. *)
  acceptor_changes : int;  (** 1Paxos only; 0 for Multi-Paxos. *)
  timeline : float array;
      (** Commit rate (op/s) per 100 ms wall-clock bucket over the
          measured phase, full buckets only — the live twin of the
          simulator's [Runner.result.timeline], so failover figures can
          show both backends. *)
  queues : queue_totals;
  full_ring_sends : int array;
      (** Per node: sends that found the fast path full and fell back
          to the outbox — the back-pressure hotspot metric, also
          published as [live.node<i>.full_ring_sends] and attributed
          per message kind under [live.ring.full.<kind>]. Raise
          [queue_slots] to shrink it. *)
  alloc_words_per_op : float;
      (** Words allocated per committed op across the replica and router
          nodes ([Gc.allocated_bytes] is domain-local) — the live
          event loop's allocation guard, also published as
          [live.alloc.words_per_op]. *)
  lease_reads : int;
      (** Reads served from the leader's local store under an unexpired
          lease, summed over replicas ([0] when leases are off); also
          published as [live.lease.reads]. *)
  load : Ci_load.Load_stats.t option;
      (** Open-loop measurement sink pooled over the drivers ([Some]
          exactly when [spec.open_loop] was set on the in-process
          transport); also published under [live.load.*]. *)
  consistency : Ci_rsm.Consistency.report;
      (** The simulator's checker over the live replicas' views;
          per-group and merged under sharding. *)
  atomicity : Ci_rsm.Atomicity.report option;
      (** Cross-shard 2PC atomicity over the routers' transactions and
          the groups' decided logs; [Some] exactly when [groups > 1]. *)
  metrics : Ci_obs.Metrics.t;
      (** [live.*] counters (filled by the domains via atomic counters)
          plus post-run scalars. *)
  failover : Ci_obs.Failover.t option;
      (** Failover analysis around the nemesis schedule's first fault
          onset ([Some] exactly when the schedule is non-empty and its
          onset falls inside the measured phase); also published under
          [failover.*] metric keys. *)
}

val run : spec -> result
(** [run spec] executes one live run and joins every domain (or reaps
    every forked process) before returning. On hosts with fewer cores
    than nodes the event loops fall back from spinning to sleeping so
    oversubscribed runs still make progress. On the socket transport
    the usual [Unix.Unix_error] exceptions escape if the host cannot
    provide sockets or processes.
    @raise Invalid_argument on a malformed spec (see field docs). *)

val protocol_of_string : string -> protocol option
(** Accepts ["onepaxos"], ["1paxos"], ["multipaxos"], ["multi-paxos"]. *)

val protocol_name : protocol -> string
(** ["1paxos"] or ["multipaxos"]. *)

val transport_of_string : string -> transport option
(** Accepts ["spsc"], ["rings"], ["socket"], ["sockets"]. *)

val transport_name : transport -> string
(** ["spsc"] or ["socket"]. *)

(** Bounded single-producer single-consumer queue on [Atomic].

    The live runtime's analogue of one direction of
    {!Ci_machine.Channel}: a small fixed number of slots between exactly
    one producer domain and one consumer domain, mirroring QC-libtask's
    shared-memory channels. A full ring exerts back-pressure — in the
    runtime the producer parks overflow in a local outbox and retries,
    exactly as [Channel] queues sends in its outbox while awaiting
    credits.

    Lock-free and wait-free: [try_push]/[try_pop] are one atomic
    read-modify cycle each, with no CAS loop (single-writer cursors).
    The head and tail cursors are padded onto different cache lines so
    the two sides do not false-share.

    Ownership discipline (unchecked): at most one domain calls
    [try_push], at most one calls [try_pop]. The statistics accessors
    ({!pushes}, {!pops}, {!occupancy_peak}) read plain mutable fields
    owned by one side; read them from a third domain only after both
    sides have been joined. *)

type 'a t
(** A bounded queue carrying values of type ['a]. *)

val create : slots:int -> 'a t
(** [create ~slots] is an empty queue with [slots] capacity.
    @raise Invalid_argument if [slots < 1]. *)

val slots : 'a t -> int
(** [slots q] is the fixed capacity. *)

val try_push : 'a t -> 'a -> bool
(** [try_push q x] enqueues [x] and returns [true], or returns [false]
    without side effect when the ring is full. Producer side only. *)

val try_pop : 'a t -> 'a option
(** [try_pop q] dequeues the oldest element, or [None] when the ring is
    empty. Consumer side only. *)

val length : 'a t -> int
(** [length q] is a snapshot of the current occupancy (exact only from
    the producer or consumer; a racing reader may see a stale value). *)

val pushes : 'a t -> int
(** [pushes q] is how many elements were ever enqueued. *)

val pops : 'a t -> int
(** [pops q] is how many elements were ever dequeued. *)

val occupancy_peak : 'a t -> int
(** [occupancy_peak q] is the worst occupancy observed at enqueue time
    (the back-pressure signal, as {!Ci_machine.Channel.occupancy_peak}). *)

(** Monotonic wall-clock time for the live runtime.

    The runtime's analogue of {!Ci_engine.Sim.now}: integer nanoseconds
    from [CLOCK_MONOTONIC], unaffected by wall-clock adjustments.
    {!Ci_runtime.Live} subtracts a per-run origin so node-environment
    timestamps start near zero, like the simulator's. *)

val now_ns : unit -> int
(** [now_ns ()] is the current monotonic time in nanoseconds. *)

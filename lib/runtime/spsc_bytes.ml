module Wire = Ci_consensus.Wire
module Codec = Ci_consensus.Codec

(* Same cursor discipline as Spsc: [tail] counts enqueued slots
   (producer-owned), [head] dequeued slots (consumer-owned). Slot bytes
   and the [lens] descriptors are plain writes: the producer's
   [Atomic.set tail] (SC) after them makes every write visible to a
   consumer that read [tail] first, and the consumer's [Atomic.set head]
   after decoding releases the slots for reuse. *)

(* Per-slot descriptor values: >= 0 is the byte length of the message
   starting at this slot (spanning consecutive slots); [pad_marker]
   skips to the physical start of the buffer; [jumbo_marker] claims the
   next message from the boxed side ring. *)
let pad_marker = -1
let jumbo_marker = -2

let min_slot_size = 32

type t = {
  buf : Bytes.t;
  lens : int array;
  n_slots : int;
  slot_bytes : int;
  side : Wire.t Spsc.t; (* jumbo overflow, FIFO-linked via markers *)
  head : int Atomic.t; (* consumer cursor *)
  tail : int Atomic.t; (* producer cursor *)
  mutable n_push : int;
  mutable n_jumbo : int;
  mutable occ_peak : int;
  mutable n_pop : int;
}

let pad () = ignore (Sys.opaque_identity (Array.make 15 0))

let create ~slots ~slot_size =
  if slots < 1 then invalid_arg "Spsc_bytes.create: slots must be >= 1";
  if slot_size < min_slot_size || slot_size land (slot_size - 1) <> 0 then
    invalid_arg "Spsc_bytes.create: slot_size must be a power of two >= 32";
  let buf = Bytes.create (slots * slot_size) in
  let lens = Array.make slots 0 in
  let side = Spsc.create ~slots:(max 4 slots) in
  pad ();
  let head = Atomic.make 0 in
  pad ();
  let tail = Atomic.make 0 in
  pad ();
  {
    buf;
    lens;
    n_slots = slots;
    slot_bytes = slot_size;
    side;
    head;
    tail;
    n_push = 0;
    n_jumbo = 0;
    occ_peak = 0;
    n_pop = 0;
  }

let slots q = q.n_slots
let slot_size q = q.slot_bytes

let note_push q occ =
  q.n_push <- q.n_push + 1;
  if occ > q.occ_peak then q.occ_peak <- occ

let try_push q msg =
  let size = Codec.encoded_size msg in
  let k = (size + q.slot_bytes - 1) / q.slot_bytes in
  let tail = Atomic.get q.tail in
  let free = q.n_slots - (tail - Atomic.get q.head) in
  let ti = tail mod q.n_slots in
  if ti + k <= q.n_slots then
    if free < k then false
    else begin
      ignore (Codec.encode msg q.buf ~pos:(ti * q.slot_bytes));
      q.lens.(ti) <- size;
      Atomic.set q.tail (tail + k);
      note_push q (tail + k - Atomic.get q.head);
      true
    end
  else if k <= ti then begin
    (* The spill would straddle the physical end but fits from slot 0:
       pad out the tail slots and start there so the encoded bytes stay
       contiguous. *)
    let padding = q.n_slots - ti in
    if free < padding + k then false
    else begin
      ignore (Codec.encode msg q.buf ~pos:0);
      q.lens.(0) <- size;
      q.lens.(ti) <- pad_marker;
      Atomic.set q.tail (tail + padding + k);
      note_push q (tail + padding + k - Atomic.get q.head);
      true
    end
  end
  else if
    (* No contiguous placement exists at this tail alignment — neither
       in place nor after a pad — and the tail only moves on a
       successful push, so waiting would deadlock. Box the message
       through the side ring, leaving a marker slot in line. (Anything
       larger than the whole ring always lands here.) Side push must
       come first: a consumer that sees the published marker must find
       the value already there. *)
    free < 1 || not (Spsc.try_push q.side msg)
  then false
  else begin
    q.lens.(ti) <- jumbo_marker;
    Atomic.set q.tail (tail + 1);
    q.n_jumbo <- q.n_jumbo + 1;
    note_push q (tail + 1 - Atomic.get q.head);
    true
  end

let rec try_pop q =
  let head = Atomic.get q.head in
  if head >= Atomic.get q.tail then None
  else begin
    let hi = head mod q.n_slots in
    let len = q.lens.(hi) in
    if len = pad_marker then begin
      Atomic.set q.head (head + (q.n_slots - hi));
      try_pop q
    end
    else if len = jumbo_marker then begin
      match Spsc.try_pop q.side with
      | Some msg ->
        Atomic.set q.head (head + 1);
        q.n_pop <- q.n_pop + 1;
        Some msg
      | None ->
        (* The producer publishes the side value before the marker. *)
        assert false
    end
    else begin
      let msg = Codec.decode q.buf ~pos:(hi * q.slot_bytes) ~len in
      let k = (len + q.slot_bytes - 1) / q.slot_bytes in
      Atomic.set q.head (head + k);
      q.n_pop <- q.n_pop + 1;
      Some msg
    end
  end

let pushes q = q.n_push
let pops q = q.n_pop
let occupancy_peak q = q.occ_peak
let jumbo_pushes q = q.n_jumbo

module Wire = Ci_consensus.Wire
module Node_env = Ci_engine.Node_env
module Sim_time = Ci_engine.Sim_time
module Rng = Ci_engine.Rng
module Command = Ci_rsm.Command
module Consistency = Ci_rsm.Consistency
module Replica_core = Ci_consensus.Replica_core
module Client = Ci_workload.Client
module Run_stats = Ci_workload.Run_stats
module Metrics = Ci_obs.Metrics
module Summary = Ci_stats.Summary

type protocol = Onepaxos | Multipaxos

type spec = {
  protocol : protocol;
  n_replicas : int;
  n_clients : int;
  duration_s : float;
  drain_s : float;
  queue_slots : int;
  seed : int;
  client_timeout : int;
  think : int;
  read_ratio : float;
  key_space : int;
}

let default_spec ~protocol =
  {
    protocol;
    n_replicas = 3;
    n_clients = 2;
    duration_s = 1.0;
    drain_s = 0.2;
    queue_slots = 8;
    seed = 42;
    client_timeout = Sim_time.ms 150;
    think = 0;
    read_ratio = 0.;
    key_space = 64;
  }

let protocol_of_string = function
  | "onepaxos" | "1paxos" -> Some Onepaxos
  | "multipaxos" | "multi-paxos" -> Some Multipaxos
  | _ -> None

let protocol_name = function Onepaxos -> "1paxos" | Multipaxos -> "multipaxos"

type queue_totals = {
  q_count : int;
  q_msgs : int;
  q_blocked : int;
  q_occupancy_peak : int;
}

type result = {
  spec : spec;
  cores : int;
  wall_s : float;
  ops : int;
  throughput : float;
  latency : Summary.t;
  retries : int;
  leader_changes : int;
  acceptor_changes : int;
  queues : queue_totals;
  consistency : Consistency.report;
  metrics : Metrics.t;
}

(* Per-node runtime state. Everything here is owned by the node's
   domain once it is spawned; the main domain builds it beforehand and
   reads it back only after [Domain.join]. *)
type node_state = {
  id : int;
  inqs : Wire.t Spsc.t option array; (* indexed by src; [id] is None *)
  outqs : Wire.t Spsc.t option array; (* indexed by dst; [id] is None *)
  (* Unbounded per-destination outboxes, exactly Channel's outbox stage:
     a send that finds the ring full parks here and the event loop
     retries, so protocol handlers never block and two mutually full
     nodes cannot deadlock. *)
  outbox : Wire.t Queue.t array;
  selfq : Wire.t Queue.t; (* collapsed-role local deliveries *)
  timers : Timer_wheel.t;
  mutable handler : src:int -> Wire.t -> unit;
  mutable n_blocked : int;
}

let validate spec =
  if spec.n_replicas < 2 then invalid_arg "Live.run: need >= 2 replicas";
  if spec.n_clients < 1 then invalid_arg "Live.run: need >= 1 client";
  if spec.duration_s <= 0. then invalid_arg "Live.run: duration_s must be > 0";
  if spec.drain_s < 0. then invalid_arg "Live.run: drain_s must be >= 0";
  if spec.queue_slots < 1 then invalid_arg "Live.run: queue_slots must be >= 1";
  if spec.client_timeout <= 0 then
    invalid_arg "Live.run: client_timeout must be > 0";
  if spec.think < 0 then invalid_arg "Live.run: think must be >= 0";
  if not (spec.read_ratio >= 0. && spec.read_ratio <= 1.) then
    invalid_arg "Live.run: read_ratio must be in [0, 1]";
  if spec.key_space < 1 then invalid_arg "Live.run: key_space must be >= 1"

let env_for st ~t0 ~seed =
  let now () = Clock.now_ns () - t0 in
  {
    Node_env.id = st.id;
    send =
      (fun ~dst msg ->
        if dst = st.id then Queue.push msg st.selfq
        else
          match st.outqs.(dst) with
          | Some q ->
            (* Ring order must respect send order: once anything is
               parked in the outbox, later sends queue behind it. *)
            if Queue.is_empty st.outbox.(dst) && Spsc.try_push q msg then ()
            else begin
              st.n_blocked <- st.n_blocked + 1;
              Queue.push msg st.outbox.(dst)
            end
          | None -> invalid_arg "Live: send to unknown node");
    now;
    after = (fun ~delay f -> Timer_wheel.at st.timers ~deadline:(now () + delay) f);
    after_cancel =
      (fun ~delay f ->
        let tok = Timer_wheel.at_token st.timers ~deadline:(now () + delay) f in
        { Node_env.cancel = (fun () -> Timer_wheel.cancel st.timers tok) });
    rng = Rng.create ~seed;
    note_phase = (fun ~phase:_ -> ());
  }

(* How long to spin on an idle loop before yielding the core. On a host
   with fewer cores than domains (the 1-core CI box included) the
   [sleepf] arm is what lets the other domains run at all. *)
let spin_budget = 200
let idle_sleep_s = 50e-6

let event_loop st ~t0 ~stop ~m_work =
  let idle = ref 0 in
  while not (Atomic.get stop) do
    let work = ref 0 in
    (* 1. Flush outboxes into the rings (back-pressure retry). *)
    Array.iteri
      (fun dst ob ->
        if not (Queue.is_empty ob) then
          match st.outqs.(dst) with
          | Some q ->
            let blocked = ref false in
            while (not !blocked) && not (Queue.is_empty ob) do
              if Spsc.try_push q (Queue.peek ob) then begin
                ignore (Queue.pop ob);
                incr work
              end
              else blocked := true
            done
          | None -> ())
      st.outbox;
    (* 2. Collapsed-role self deliveries (free local calls). *)
    while not (Queue.is_empty st.selfq) do
      let msg = Queue.pop st.selfq in
      incr work;
      st.handler ~src:st.id msg
    done;
    (* 3. Drain in-queues round-robin, at most one ring's worth per
       queue per turn so one chatty peer cannot starve the rest. *)
    Array.iteri
      (fun src q ->
        match q with
        | None -> ()
        | Some q ->
          let budget = ref (Spsc.slots q) in
          let empty = ref false in
          while (not !empty) && !budget > 0 do
            match Spsc.try_pop q with
            | Some msg ->
              incr work;
              decr budget;
              st.handler ~src msg
            | None -> empty := true
          done)
      st.inqs;
    (* 4. Fire due timers off the monotonic clock. *)
    work := !work + Timer_wheel.run_due st.timers ~now:(Clock.now_ns () - t0);
    if !work > 0 then begin
      idle := 0;
      Metrics.add m_work !work
    end
    else begin
      incr idle;
      if !idle <= spin_budget then Domain.cpu_relax ()
      else Unix.sleepf idle_sleep_s
    end
  done

type replica = Op of Ci_consensus.Onepaxos.t | Mp of Ci_consensus.Multipaxos.t

let replica_core = function
  | Op p -> Ci_consensus.Onepaxos.replica_core p
  | Mp p -> Ci_consensus.Multipaxos.replica_core p

let run spec =
  validate spec;
  let n_replicas = spec.n_replicas and n_clients = spec.n_clients in
  let n = n_replicas + n_clients in
  let replica_ids = Array.init n_replicas Fun.id in
  (* The mesh: queues.(dst).(src) carries src -> dst. *)
  let queues =
    Array.init n (fun dst ->
        Array.init n (fun src ->
            if src = dst then None else Some (Spsc.create ~slots:spec.queue_slots)))
  in
  let states =
    Array.init n (fun id ->
        {
          id;
          inqs = queues.(id);
          outqs = Array.init n (fun dst -> queues.(dst).(id));
          outbox = Array.init n (fun _ -> Queue.create ());
          selfq = Queue.create ();
          timers = Timer_wheel.create ();
          handler = (fun ~src:_ _ -> ());
          n_blocked = 0;
        })
  in
  let metrics = Metrics.create () in
  (* Registered before the spawns; incremented from every domain. *)
  let m_work = Metrics.counter metrics "live.events" in
  let t0 = Clock.now_ns () in
  let stop = Atomic.make false in
  let quiesce = Atomic.make false in
  let env_of id = env_for states.(id) ~t0 ~seed:(spec.seed + ((id + 1) * 1_000_003)) in
  (* Failure-detection timeouts are wall-clock here: commits take
     microseconds, so these fire only when something is genuinely wedged
     — never because a GC pause or a scheduling gap delayed one reply. *)
  let ms = Sim_time.ms in
  let replicas =
    Array.init n_replicas (fun i ->
        let env = env_of i in
        match spec.protocol with
        | Onepaxos ->
          let d = Ci_consensus.Onepaxos.default_config ~replicas:replica_ids in
          let cfg =
            {
              d with
              Ci_consensus.Onepaxos.acceptor_timeout = ms 200;
              prepare_timeout = ms 200;
              check_period = ms 50;
              pu_timeout = ms 100;
            }
          in
          Op (Ci_consensus.Onepaxos.create ~env ~config:cfg)
        | Multipaxos ->
          let d = Ci_consensus.Multipaxos.default_config ~replicas:replica_ids in
          let cfg =
            { d with Ci_consensus.Multipaxos.election_timeout = ms 150 }
          in
          Mp (Ci_consensus.Multipaxos.create ~env ~config:cfg))
  in
  Array.iteri
    (fun i r ->
      states.(i).handler <-
        (match r with
         | Op p -> Ci_consensus.Onepaxos.handle p
         | Mp p -> Ci_consensus.Multipaxos.handle p))
    replicas;
  let client_stats =
    Array.init n_clients (fun _ -> Run_stats.create ~bucket:(ms 10))
  in
  let policy =
    {
      (Client.default_policy ~targets:replica_ids) with
      Client.timeout = spec.client_timeout;
      think = spec.think;
      read_ratio = spec.read_ratio;
      key_space = spec.key_space;
    }
  in
  let clients =
    Array.init n_clients (fun i ->
        Client.create ~env:(env_of (n_replicas + i)) ~policy
          ~stats:client_stats.(i))
  in
  Array.iteri
    (fun i c ->
      (* Quiesced clients stop consuming replies, so they issue nothing
         new and record nothing outside the measured phase. *)
      states.(n_replicas + i).handler <-
        (fun ~src msg ->
          if not (Atomic.get quiesce) then Client.handle c ~src msg))
    clients;
  let domains =
    Array.init n (fun i ->
        Domain.spawn (fun () ->
            (if i < n_replicas then
               match replicas.(i) with
               | Op p -> Ci_consensus.Onepaxos.start p
               | Mp p -> Ci_consensus.Multipaxos.start p
             else Client.start clients.(i - n_replicas));
            event_loop states.(i) ~t0 ~stop ~m_work))
  in
  Unix.sleepf spec.duration_s;
  let t_quiesce = Clock.now_ns () - t0 in
  Atomic.set quiesce true;
  Unix.sleepf spec.drain_s;
  Atomic.set stop true;
  Array.iter Domain.join domains;
  (* Everything below reads domain-owned state after the joins. *)
  let wall_s = float_of_int t_quiesce /. 1e9 in
  let ops =
    Array.fold_left
      (fun acc s -> acc + Run_stats.completed_in s ~from_:0 ~until_:t_quiesce)
      0 client_stats
  in
  let latencies =
    Array.to_list client_stats
    |> List.concat_map (fun s ->
           Array.to_list (Run_stats.latencies_in s ~from_:0 ~until_:t_quiesce))
    |> Array.of_list
  in
  let retries = Array.fold_left (fun acc c -> acc + Client.retries c) 0 clients in
  let leader_changes, acceptor_changes =
    Array.fold_left
      (fun (lc, ac) r ->
        match r with
        | Op p ->
          ( max lc (Ci_consensus.Onepaxos.leader_changes p),
            max ac (Ci_consensus.Onepaxos.acceptor_changes p) )
        | Mp p -> (lc + Ci_consensus.Multipaxos.elections p, ac))
      (0, 0) replicas
  in
  let queues_total =
    Array.fold_left
      (fun acc row ->
        Array.fold_left
          (fun acc q ->
            match q with
            | None -> acc
            | Some q ->
              {
                q_count = acc.q_count + 1;
                q_msgs = acc.q_msgs + Spsc.pushes q;
                q_blocked = acc.q_blocked;
                q_occupancy_peak =
                  max acc.q_occupancy_peak (Spsc.occupancy_peak q);
              })
          acc row)
      { q_count = 0; q_msgs = 0; q_blocked = 0; q_occupancy_peak = 0 }
      queues
  in
  let queues_total =
    {
      queues_total with
      q_blocked = Array.fold_left (fun acc s -> acc + s.n_blocked) 0 states;
    }
  in
  (* Consistency: same construction as Runner.run, over live views. *)
  let proposed_tbl = Hashtbl.create 4096 in
  Array.iter
    (fun c ->
      let id = Client.node_id c in
      List.iter
        (fun (req_id, cmd) -> Hashtbl.replace proposed_tbl (id, req_id) cmd)
        (Client.issued c))
    clients;
  let proposed (v : Wire.value) =
    match Hashtbl.find_opt proposed_tbl (v.Wire.client, v.Wire.req_id) with
    | Some cmd -> Command.equal cmd v.Wire.cmd
    | None -> false
  in
  let acked = Array.to_list clients |> List.concat_map Client.acked_writes in
  let views =
    Array.to_list (Array.map (fun r -> Replica_core.view (replica_core r)) replicas)
  in
  let consistency =
    Consistency.check ~equal:Wire.value_equal ~proposed ~acked
      ~key_of:Wire.value_key views
  in
  Metrics.set_int metrics "live.ops" ops;
  Metrics.set_int metrics "live.retries" retries;
  Metrics.set_int metrics "live.queue.msgs" queues_total.q_msgs;
  Metrics.set_int metrics "live.queue.blocked" queues_total.q_blocked;
  Metrics.set_int metrics "live.queue.occupancy_peak"
    queues_total.q_occupancy_peak;
  {
    spec;
    cores = Domain.recommended_domain_count ();
    wall_s;
    ops;
    throughput = (if wall_s > 0. then float_of_int ops /. wall_s else 0.);
    latency = Summary.of_samples latencies;
    retries;
    leader_changes;
    acceptor_changes;
    queues = queues_total;
    consistency;
    metrics;
  }

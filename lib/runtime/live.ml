module Wire = Ci_consensus.Wire
module Node_env = Ci_engine.Node_env
module Sim_time = Ci_engine.Sim_time
module Rng = Ci_engine.Rng
module Command = Ci_rsm.Command
module Consistency = Ci_rsm.Consistency
module Replica_core = Ci_consensus.Replica_core
module Client = Ci_workload.Client
module Run_stats = Ci_workload.Run_stats
module Metrics = Ci_obs.Metrics
module Summary = Ci_stats.Summary
module Shard = Ci_consensus.Shard
module Twopc = Ci_consensus.Twopc
module Atomicity = Ci_rsm.Atomicity

type protocol = Onepaxos | Multipaxos
type transport = Spsc | Socket

type spec = {
  protocol : protocol;
  n_replicas : int;
  n_clients : int;
  groups : int;
  cross_shard_ratio : float;
  duration_s : float;
  drain_s : float;
  transport : transport;
  queue_slots : int;
  slot_size : int;
  seed : int;
  client_timeout : int;
  think : int;
  read_ratio : float;
  key_space : int;
  outbox_cap : int;
  lease : int;
  lease_skew : int;
  open_loop : Ci_workload.Runner.open_loop option;
  nemesis : Ci_faults.t;
}

let default_spec ~protocol =
  {
    protocol;
    n_replicas = 3;
    n_clients = 2;
    groups = 1;
    cross_shard_ratio = 0.;
    duration_s = 1.0;
    drain_s = 0.2;
    transport = Spsc;
    queue_slots = 64;
    slot_size = 128;
    seed = 42;
    client_timeout = Sim_time.ms 150;
    think = 0;
    read_ratio = 0.;
    key_space = 64;
    outbox_cap = 4096;
    lease = 0;
    lease_skew = 0;
    open_loop = None;
    nemesis = Ci_faults.empty;
  }

let protocol_of_string = function
  | "onepaxos" | "1paxos" -> Some Onepaxos
  | "multipaxos" | "multi-paxos" -> Some Multipaxos
  | _ -> None

let protocol_name = function Onepaxos -> "1paxos" | Multipaxos -> "multipaxos"

let transport_of_string = function
  | "spsc" | "rings" -> Some Spsc
  | "socket" | "sockets" -> Some Socket
  | _ -> None

let transport_name = function Spsc -> "spsc" | Socket -> "socket"

type queue_totals = {
  q_count : int;
  q_msgs : int;
  q_blocked : int;
  q_occupancy_peak : int;
  q_outbox_peak : int;
  q_outbox_dropped : int;
}

type result = {
  spec : spec;
  cores : int;
  wall_s : float;
  ops : int;
  throughput : float;
  latency : Summary.t;
  retries : int;
  leader_changes : int;
  acceptor_changes : int;
  timeline : float array;
  queues : queue_totals;
  full_ring_sends : int array;
      (* per node: sends that found the destination ring full *)
  alloc_words_per_op : float;
      (* words allocated per committed op across replica+router domains *)
  lease_reads : int;
      (* reads served locally under an unexpired lease, summed *)
  load : Ci_load.Load_stats.t option;
      (* open-loop sink pooled over the drivers; Some iff spec.open_loop *)
  consistency : Consistency.report;
  atomicity : Atomicity.report option;
  metrics : Metrics.t;
  failover : Ci_obs.Failover.t option;
}

(* The node-local nemesis: a sorted transition timeline the node's own
   event loop evaluates against the monotonic clock. No controller
   thread, so crash, recovery and message processing can never race —
   the domain that owns the state is the only one that ever kills or
   revives it. *)
type nem_mode = Up | Paused | Down

type nem_ctl = {
  mutable transitions : (int * [ `Crash | `Restart | `Pause | `Resume ]) list;
  mutable mode : nem_mode;
  on_crash : unit -> unit;
      (** Capture the durable registers, discard everything volatile. *)
  on_restart : unit -> unit;
      (** Rebuild the replica through the protocol's [recover]. *)
}

(* Per-node runtime state. Everything here is owned by the node's
   domain (or, on the socket transport, its process) once spawned; the
   main domain builds it beforehand and reads it back only after the
   joins. All message traffic goes through [tr] — the endpoint hides
   whether the bytes cross SPSC slots or a kernel socket. *)
type node_state = {
  id : int;
  tr : Transport.t;
  selfq : Wire.t Queue.t; (* collapsed-role local deliveries *)
  mutable timers : Timer_wheel.t;
      (* Mutable so a crash can discard every armed timer by swapping in
         a fresh wheel (the environment reads the field per call). *)
  mutable handler : src:int -> Wire.t -> unit;
  (* Sender-side link faults: rules indexed by destination, coin flips
     from this node's own stream. [None] (the fault-free case) keeps the
     send path untouched. *)
  nem_links : Ci_faults.link_rule list array option;
  nem_rng : Rng.t;
  mutable nem : nem_ctl option;
  mutable n_fault_dropped : int;
  mutable n_fault_duplicated : int;
  mutable alloc_bytes : float;
      (* bytes this node's domain allocated over its lifetime, written
         by the domain itself just before it exits *)
}

let validate spec =
  if spec.n_replicas < 2 then invalid_arg "Live.run: need >= 2 replicas";
  if spec.n_clients < 1 then invalid_arg "Live.run: need >= 1 client";
  if spec.groups < 1 then invalid_arg "Live.run: groups must be >= 1";
  if not (spec.cross_shard_ratio >= 0. && spec.cross_shard_ratio <= 1.) then
    invalid_arg "Live.run: cross_shard_ratio must be in [0, 1]";
  if spec.duration_s <= 0. then invalid_arg "Live.run: duration_s must be > 0";
  if spec.drain_s < 0. then invalid_arg "Live.run: drain_s must be >= 0";
  if spec.queue_slots < 1 then invalid_arg "Live.run: queue_slots must be >= 1";
  if
    spec.slot_size < Spsc_bytes.min_slot_size
    || spec.slot_size land (spec.slot_size - 1) <> 0
  then
    invalid_arg
      (Printf.sprintf "Live.run: slot_size must be a power of two >= %d"
         Spsc_bytes.min_slot_size);
  if spec.client_timeout <= 0 then
    invalid_arg "Live.run: client_timeout must be > 0";
  if spec.think < 0 then invalid_arg "Live.run: think must be >= 0";
  if not (spec.read_ratio >= 0. && spec.read_ratio <= 1.) then
    invalid_arg "Live.run: read_ratio must be in [0, 1]";
  if spec.key_space < 1 then invalid_arg "Live.run: key_space must be >= 1";
  if spec.outbox_cap < 1 then invalid_arg "Live.run: outbox_cap must be >= 1";
  if spec.lease < 0 then invalid_arg "Live.run: lease must be >= 0";
  if spec.lease > 0 && spec.lease_skew >= spec.lease then
    invalid_arg "Live.run: lease_skew must be < lease";
  if spec.transport = Socket then begin
    if spec.groups > 1 then
      invalid_arg "Live.run: the socket transport does not shard yet (groups must be 1)";
    if not (Ci_faults.is_empty spec.nemesis) then
      invalid_arg
        "Live.run: nemesis is in-process only; the socket transport gets its \
         faults from the operating system";
    if spec.open_loop <> None then
      invalid_arg
        "Live.run: the open-loop driver is in-process only (socket children \
         run closed-loop clients)"
  end;
  if not (Ci_faults.is_empty spec.nemesis) then begin
    (match
       Ci_faults.validate ~n_nodes:(spec.groups * spec.n_replicas) spec.nemesis
     with
    | Ok () -> ()
    | Error e -> invalid_arg ("Live.run: nemesis: " ^ e));
    if Ci_faults.slows spec.nemesis <> [] then
      invalid_arg
        "Live.run: nemesis Slow faults are simulator-only (the live runtime \
         cannot throttle a real core); use Pause instead"
  end

let env_for st ~t0 ~seed =
  let now () = Clock.now_ns () - t0 in
  let raw_send ~dst msg = Transport.send st.tr ~dst msg in
  let send ~dst msg =
    if dst = st.id then Queue.push msg st.selfq
    else
      match st.nem_links with
      | None -> raw_send ~dst msg
      | Some rules -> (
        match if dst < Array.length rules then rules.(dst) else [] with
        | [] -> raw_send ~dst msg
        | rules ->
          let t = now () in
          let open Ci_faults in
          let in_window r = t >= r.l_from && t < r.l_until in
          let drop_p, dup_p, extra =
            List.fold_left
              (fun (dr, du, ex) r ->
                if not (in_window r) then (dr, du, ex)
                else
                  match r.l_kind with
                  | L_drop p -> (Float.max dr p, du, ex)
                  | L_dup p -> (dr, Float.max du p, ex)
                  | L_delay d -> (dr, du, ex + d))
              (0., 0., 0) rules
          in
          let deliver () =
            if extra > 0 then
              (* A laggy link holds the message back; timer-wheel order
                 is FIFO among equal deadlines, and real networks may
                 reorder anyway. *)
              Timer_wheel.at st.timers ~deadline:(t + extra) (fun () ->
                  raw_send ~dst msg)
            else raw_send ~dst msg
          in
          if drop_p >= 1. || (drop_p > 0. && Rng.chance st.nem_rng drop_p) then
            st.n_fault_dropped <- st.n_fault_dropped + 1
          else if dup_p >= 1. || (dup_p > 0. && Rng.chance st.nem_rng dup_p)
          then begin
            st.n_fault_duplicated <- st.n_fault_duplicated + 1;
            deliver ();
            deliver ()
          end
          else deliver ())
  in
  {
    Node_env.id = st.id;
    send;
    now;
    after = (fun ~delay f -> Timer_wheel.at st.timers ~deadline:(now () + delay) f);
    after_cancel =
      (fun ~delay f ->
        let tok = Timer_wheel.at_token st.timers ~deadline:(now () + delay) f in
        { Node_env.cancel = (fun () -> Timer_wheel.cancel st.timers tok) });
    rng = Rng.create ~seed;
    note_phase = (fun ~phase:_ -> ());
  }

(* How long to spin on an idle loop before yielding the core. On a host
   with fewer cores than domains (the 1-core CI box included) the
   [sleepf] arm is what lets the other domains run at all. *)
let spin_budget = 200
let idle_sleep_s = 50e-6

let rec nem_transitions ctl now =
  match ctl.transitions with
  | (t, tr) :: rest when t <= now ->
    ctl.transitions <- rest;
    (match tr with
    | `Crash ->
      ctl.mode <- Down;
      ctl.on_crash ()
    | `Restart ->
      ctl.mode <- Up;
      ctl.on_restart ()
    | `Pause -> if ctl.mode = Up then ctl.mode <- Paused
    | `Resume -> if ctl.mode = Paused then ctl.mode <- Up);
    nem_transitions ctl now
  | _ -> ()

let rec run_selfq st acc =
  if Queue.is_empty st.selfq then acc
  else begin
    let msg = Queue.pop st.selfq in
    st.handler ~src:st.id msg;
    run_selfq st (acc + 1)
  end

(* The hot loop. Deliberately allocation-free on its steady state —
   every helper it calls is a top-level tail-recursive function, the
   only heap traffic is the decoded inbound messages and the selfq
   cells. (The previous incarnation built closures and refs on every
   iteration; at spin rates that WAS the live runtime's allocation
   profile.) [ctl], when given, is polled every 256 iterations — the
   socket transport's out-of-band phase control. *)
let event_loop ?ctl st ~t0 ~stop ~m_work =
  let idle = ref 0 in
  let tick = ref 0 in
  while not (Atomic.get stop) do
    (match ctl with
    | Some f ->
      incr tick;
      if !tick land 255 = 0 then f ()
    | None -> ());
    (* Nemesis transitions due at this instant, applied by the owning
       domain itself — crash/restart never race the handler. *)
    (match st.nem with
    | None -> ()
    | Some ctl -> nem_transitions ctl (Clock.now_ns () - t0));
    match st.nem with
    | Some { mode = Down | Paused; _ } ->
      (* Dead or stopped: touch nothing — inbound queues fill up and the
         senders' capped outboxes absorb (then shed) the backlog, which
         is exactly what a peer of a dead process sees. Sleep instead of
         spinning; the only thing to watch for is the next transition. *)
      Unix.sleepf idle_sleep_s
    | _ ->
      (* 1. Retry parked sends; 2. collapsed-role self deliveries;
         3. drain inbound, budgeted per source; 4. due timers. *)
      let work = Transport.flush st.tr in
      let work = work + run_selfq st 0 in
      let work = work + Transport.drain st.tr st.handler in
      let work =
        work + Timer_wheel.run_due st.timers ~now:(Clock.now_ns () - t0)
      in
      if work > 0 then begin
        idle := 0;
        Metrics.add m_work work
      end
      else begin
        incr idle;
        if !idle <= spin_budget then Domain.cpu_relax ()
        else Unix.sleepf idle_sleep_s
      end
  done

type replica = Op of Ci_consensus.Onepaxos.t | Mp of Ci_consensus.Multipaxos.t

type stable_snap =
  | St_op of Ci_consensus.Onepaxos.stable
  | St_mp of Ci_consensus.Multipaxos.stable

let replica_core = function
  | Op p -> Ci_consensus.Onepaxos.replica_core p
  | Mp p -> Ci_consensus.Multipaxos.replica_core p

(* Failure-detection timeouts are wall-clock here: commits take
   microseconds, so these fire only when something is genuinely wedged
   — never because a GC pause or a scheduling gap delayed one reply. *)
let ms = Sim_time.ms

let op_cfg ~spec ~replicas () =
  let d = Ci_consensus.Onepaxos.default_config ~replicas in
  {
    d with
    Ci_consensus.Onepaxos.acceptor_timeout = ms 200;
    prepare_timeout = ms 200;
    check_period = ms 50;
    pu_timeout = ms 100;
    lease = spec.lease;
    lease_skew = spec.lease_skew;
  }

let mp_cfg ~spec ~replicas () =
  let d = Ci_consensus.Multipaxos.default_config ~replicas in
  {
    d with
    Ci_consensus.Multipaxos.election_timeout = ms 150;
    lease = spec.lease;
    lease_skew = spec.lease_skew;
  }

let fresh_state ~id ~tr ~nem_links ~nem_seed =
  {
    id;
    tr;
    selfq = Queue.create ();
    timers = Timer_wheel.create ();
    handler = (fun ~src:_ _ -> ());
    nem_links;
    nem_rng = Rng.create ~seed:nem_seed;
    nem = None;
    n_fault_dropped = 0;
    n_fault_duplicated = 0;
    alloc_bytes = 0.;
  }

(* Publish the endpoint-side counters under the metric keys both
   backends share; [full_by_kind] answers "which message kind hit the
   full ring" without a perf run. *)
let record_ring_metrics metrics states =
  let full_kinds = Hashtbl.create 8 in
  Array.iter
    (fun st ->
      Metrics.set_int metrics
        (Printf.sprintf "live.node%d.full_ring_sends" st.id)
        (Transport.blocked st.tr);
      List.iter
        (fun (k, c) ->
          Hashtbl.replace full_kinds k
            (c + Option.value (Hashtbl.find_opt full_kinds k) ~default:0))
        (Transport.full_by_kind st.tr))
    states;
  Hashtbl.iter
    (fun k c -> Metrics.set_int metrics ("live.ring.full." ^ k) c)
    full_kinds

(* ---------- in-process runner: domains over byte rings ---------- *)

let run_inproc spec =
  let n_replicas = spec.n_replicas and n_clients = spec.n_clients in
  (* Group-major node layout, like the sim runner: replicas of group g
     are nodes [g*R .. (g+1)*R-1], routers (sharded runs only) come
     next, clients last. *)
  let n_groups = spec.groups in
  let total_replicas = n_groups * n_replicas in
  let n_routers = if n_groups = 1 then 0 else n_groups in
  let client_base = total_replicas + n_routers in
  let n = client_base + n_clients in
  let replica_ids = Array.init total_replicas Fun.id in
  let router_ids = Array.init n_routers (fun j -> total_replicas + j) in
  let group_ids g = Array.sub replica_ids (g * n_replicas) n_replicas in
  let group_of_replica i = i / n_replicas in
  (* The mesh: mesh.(dst).(src) carries src -> dst as encoded bytes. *)
  let mesh =
    Transport.rings_mesh ~n ~slots:spec.queue_slots ~slot_size:spec.slot_size
  in
  (* Sender-side link rules, per source node. [None] for every node
     when the schedule carries none — the fault-free send path stays
     untouched. *)
  let link_rules_of =
    let all = Ci_faults.link_rules spec.nemesis in
    fun src ->
      if List.for_all (fun r -> r.Ci_faults.l_src <> src) all then None
      else begin
        let per_dst = Array.make n [] in
        List.iter
          (fun r ->
            if r.Ci_faults.l_src = src then
              per_dst.(r.Ci_faults.l_dst) <- r :: per_dst.(r.Ci_faults.l_dst))
          all;
        Array.map_inplace List.rev per_dst;
        Some per_dst
      end
  in
  let states =
    Array.init n (fun id ->
        fresh_state ~id
          ~tr:(Transport.rings_endpoint mesh ~id ~outbox_cap:spec.outbox_cap)
          ~nem_links:(link_rules_of id)
          ~nem_seed:(spec.nemesis.Ci_faults.seed + (id * 7919)))
  in
  let metrics = Metrics.create () in
  (* Registered before the spawns; incremented from every domain. *)
  let m_work = Metrics.counter metrics "live.events" in
  let t0 = Clock.now_ns () in
  let stop = Atomic.make false in
  let quiesce = Atomic.make false in
  let env_of id = env_for states.(id) ~t0 ~seed:(spec.seed + ((id + 1) * 1_000_003)) in
  let replicas =
    Array.init total_replicas (fun i ->
        let env = env_of i in
        let replicas = group_ids (group_of_replica i) in
        match spec.protocol with
        | Onepaxos ->
          Op (Ci_consensus.Onepaxos.create ~env ~config:(op_cfg ~spec ~replicas ()))
        | Multipaxos ->
          Mp (Ci_consensus.Multipaxos.create ~env ~config:(mp_cfg ~spec ~replicas ())))
  in
  (* Sharded runs put a 2PC participant in front of each group's entry
     replica — same wrapping as the sim runner; everything the
     participant does not consume falls through to the replica. *)
  let participants =
    Array.init
      (if n_groups = 1 then 0 else n_groups)
      (fun g -> Twopc.Participant.create ~env:(env_of (g * n_replicas)))
  in
  let base_handler = function
    | Op p -> Ci_consensus.Onepaxos.handle p
    | Mp p -> Ci_consensus.Multipaxos.handle p
  in
  let wrap_handler i h =
    if n_groups > 1 && i mod n_replicas = 0 then begin
      let p = participants.(group_of_replica i) in
      fun ~src msg -> if Twopc.Participant.handle p ~src msg then () else h ~src msg
    end
    else h
  in
  Array.iteri
    (fun i r -> states.(i).handler <- wrap_handler i (base_handler r))
    replicas;
  (* Routers: hash single-shard commands to their group's entry replica,
     run cross-shard multi-puts as 2PC transactions. *)
  let routers =
    Array.init n_routers (fun j ->
        let config =
          {
            Shard.Router.groups = n_groups;
            leader_of = Array.init n_groups (fun g -> g * n_replicas);
            retry_timeout = spec.client_timeout;
          }
        in
        let r =
          Shard.Router.create ~env:(env_of (total_replicas + j)) ~config
        in
        states.(total_replicas + j).handler <-
          (fun ~src msg -> Shard.Router.handle r ~src msg);
        r)
  in
  (* Nemesis crash/pause timelines, attached per affected replica. The
     closures run inside the replica's own domain (step 0 of its event
     loop); [replicas.(i)] rewritten by a restart is read by the main
     domain only after the joins. *)
  if not (Ci_faults.is_empty spec.nemesis) then begin
    let per_node = Hashtbl.create 4 in
    let add node t tr =
      Hashtbl.replace per_node node
        ((t, tr) :: Option.value (Hashtbl.find_opt per_node node) ~default:[])
    in
    List.iter
      (fun c ->
        add c.Ci_faults.c_node c.Ci_faults.c_at `Crash;
        Option.iter
          (fun d -> add c.c_node (c.c_at + d) `Restart)
          c.Ci_faults.c_restart)
      (Ci_faults.crashes spec.nemesis);
    List.iter
      (fun p ->
        add p.Ci_faults.p_node p.Ci_faults.p_from `Pause;
        add p.p_node p.Ci_faults.p_until `Resume)
      (Ci_faults.pauses spec.nemesis);
    Hashtbl.iter
      (fun i trs ->
        let st = states.(i) in
        let snap = ref None in
        let on_crash () =
          (* The durable registers survive (modeled fsync); the mailbox,
             parked sends, armed timers and the handler die with the
             process. *)
          (match replicas.(i) with
          | Op p -> snap := Some (St_op (Ci_consensus.Onepaxos.stable p))
          | Mp p -> snap := Some (St_mp (Ci_consensus.Multipaxos.stable p)));
          Queue.clear st.selfq;
          Transport.clear_outboxes st.tr;
          st.timers <- Timer_wheel.create ();
          st.handler <- (fun ~src:_ _ -> ())
        in
        let on_restart () =
          st.timers <- Timer_wheel.create ();
          let env = env_of i in
          let group = group_ids (group_of_replica i) in
          let r =
            match !snap with
            | Some (St_op s) ->
              Op
                (Ci_consensus.Onepaxos.recover ~env
                   ~config:(op_cfg ~spec ~replicas:group ())
                   ~stable:s)
            | Some (St_mp s) ->
              Mp
                (Ci_consensus.Multipaxos.recover ~env
                   ~config:(mp_cfg ~spec ~replicas:group ())
                   ~stable:s)
            | None -> assert false
          in
          replicas.(i) <- r;
          st.handler <- wrap_handler i (base_handler r)
        in
        st.nem <-
          Some
            { transitions = List.sort compare trs; mode = Up; on_crash; on_restart })
      per_node
  end;
  let client_stats =
    Array.init n_clients (fun _ -> Run_stats.create ~bucket:(ms 10))
  in
  let policy =
    {
      (Client.default_policy
         ~targets:(if n_routers = 0 then replica_ids else router_ids))
      with
      Client.timeout = spec.client_timeout;
      think = spec.think;
      read_ratio = spec.read_ratio;
      cross_shard_ratio = spec.cross_shard_ratio;
      groups = n_groups;
      key_space = spec.key_space;
    }
  in
  let clients =
    if spec.open_loop <> None then [||]
    else
      Array.init n_clients (fun i ->
          let policy =
            if n_routers > 0 then
              { policy with Client.primary = i mod n_routers }
            else policy
          in
          Client.create ~env:(env_of (client_base + i)) ~policy
            ~stats:client_stats.(i))
  in
  (* Open-loop drivers: one per client node, each with its own sink
     (each runs in its own domain; the sinks are merged after the
     joins). The measurement window is the whole measured phase. *)
  let duration_ns = int_of_float (spec.duration_s *. 1e9) in
  let load_sinks, drivers =
    match spec.open_loop with
    | None -> ([||], [||])
    | Some ol ->
      let sinks =
        Array.init n_clients (fun _ ->
            Ci_load.Load_stats.create ~from_:0 ~until_:duration_ns)
      in
      let drivers =
        Array.init n_clients (fun i ->
            let config =
              {
                Ci_load.Open_client.targets =
                  (if n_routers = 0 then replica_ids else router_ids);
                primary = (if n_routers > 0 then i mod n_routers else 0);
                failover = true;
                timeout = spec.client_timeout;
                arrival = ol.Ci_workload.Runner.arrival;
                key_dist = ol.Ci_workload.Runner.key_dist;
                key_space = ol.Ci_workload.Runner.key_space;
                mix = ol.Ci_workload.Runner.mix;
                range_span = ol.Ci_workload.Runner.range_span;
                population = ol.Ci_workload.Runner.population;
                sessions = ol.Ci_workload.Runner.sessions;
                relaxed_reads = false;
                stop_at = duration_ns;
              }
            in
            Ci_load.Open_client.create
              ~env:(env_of (client_base + i))
              ~config ~stats:sinks.(i))
      in
      (sinks, drivers)
  in
  Array.iteri
    (fun i c ->
      (* Quiesced clients stop consuming replies, so they issue nothing
         new and record nothing outside the measured phase. *)
      states.(client_base + i).handler <-
        (fun ~src msg ->
          if not (Atomic.get quiesce) then Client.handle c ~src msg))
    clients;
  Array.iteri
    (fun i d ->
      states.(client_base + i).handler <-
        (fun ~src msg ->
          if not (Atomic.get quiesce) then Ci_load.Open_client.handle d ~src msg))
    drivers;
  let domains =
    Array.init n (fun i ->
        Domain.spawn (fun () ->
            let a0 = Gc.allocated_bytes () in
            (if i < total_replicas then
               match replicas.(i) with
               | Op p -> Ci_consensus.Onepaxos.start p
               | Mp p -> Ci_consensus.Multipaxos.start p
             else if i >= client_base then
               if Array.length drivers > 0 then
                 Ci_load.Open_client.start drivers.(i - client_base)
               else Client.start clients.(i - client_base));
            event_loop states.(i) ~t0 ~stop ~m_work;
            (* [Gc.allocated_bytes] is domain-local; the delta is what
               this node's whole lifetime allocated, written before the
               join so the main domain can read it afterwards. *)
            states.(i).alloc_bytes <- Gc.allocated_bytes () -. a0))
  in
  Unix.sleepf spec.duration_s;
  let t_quiesce = Clock.now_ns () - t0 in
  Atomic.set quiesce true;
  Unix.sleepf spec.drain_s;
  Atomic.set stop true;
  Array.iter Domain.join domains;
  (* Everything below reads domain-owned state after the joins. *)
  let wall_s = float_of_int t_quiesce /. 1e9 in
  let load =
    if Array.length load_sinks = 0 then None
    else begin
      let pooled = Ci_load.Load_stats.create ~from_:0 ~until_:duration_ns in
      Array.iter (fun s -> Ci_load.Load_stats.merge ~into:pooled s) load_sinks;
      Some pooled
    end
  in
  let ops =
    Array.fold_left
      (fun acc s -> acc + Run_stats.completed_in s ~from_:0 ~until_:t_quiesce)
      0 client_stats
    + (match load with Some s -> Ci_load.Load_stats.completed s | None -> 0)
  in
  let latencies =
    Array.to_list client_stats
    |> List.concat_map (fun s ->
           Array.to_list (Run_stats.latencies_in s ~from_:0 ~until_:t_quiesce))
    |> Array.of_list
  in
  let retries =
    Array.fold_left (fun acc c -> acc + Client.retries c) 0 clients
    + (match load with Some s -> Ci_load.Load_stats.retries s | None -> 0)
  in
  let leader_changes, acceptor_changes =
    Array.fold_left
      (fun (lc, ac) r ->
        match r with
        | Op p ->
          ( max lc (Ci_consensus.Onepaxos.leader_changes p),
            max ac (Ci_consensus.Onepaxos.acceptor_changes p) )
        | Mp p -> (lc + Ci_consensus.Multipaxos.elections p, ac))
      (0, 0) replicas
  in
  let queues_total =
    {
      q_count = Transport.mesh_queue_count mesh;
      q_msgs = Transport.mesh_msgs mesh;
      q_blocked =
        Array.fold_left (fun acc s -> acc + Transport.blocked s.tr) 0 states;
      q_occupancy_peak = Transport.mesh_occupancy_peak mesh;
      q_outbox_peak =
        Array.fold_left (fun acc s -> max acc (Transport.outbox_peak s.tr)) 0 states;
      q_outbox_dropped =
        Array.fold_left
          (fun acc s -> acc + Transport.outbox_dropped s.tr)
          0 states;
    }
  in
  (* Consistency: same construction as Runner.run, over live views. *)
  let proposed_tbl = Hashtbl.create 4096 in
  Array.iter
    (fun c ->
      let id = Client.node_id c in
      List.iter
        (fun (req_id, cmd) -> Hashtbl.replace proposed_tbl (id, req_id) cmd)
        (Client.issued c))
    clients;
  Array.iter
    (fun d ->
      let id = Ci_load.Open_client.node_id d in
      List.iter
        (fun (req_id, cmd) -> Hashtbl.replace proposed_tbl (id, req_id) cmd)
        (Ci_load.Open_client.issued d))
    drivers;
  Array.iteri
    (fun g p ->
      let id = g * n_replicas in
      List.iter
        (fun (req_id, cmd) -> Hashtbl.replace proposed_tbl (id, req_id) cmd)
        (Twopc.Participant.issued p))
    participants;
  let proposed (v : Wire.value) =
    match Hashtbl.find_opt proposed_tbl (v.Wire.client, v.Wire.req_id) with
    | Some cmd -> Command.equal cmd v.Wire.cmd
    | None -> false
  in
  let acked =
    (Array.to_list clients |> List.concat_map Client.acked_writes)
    @ (Array.to_list drivers
      |> List.concat_map Ci_load.Open_client.acked_writes)
  in
  let views =
    Array.to_list (Array.map (fun r -> Replica_core.view (replica_core r)) replicas)
  in
  let consistency, atomicity =
    if n_groups = 1 then
      ( Consistency.check ~equal:Wire.value_equal ~proposed ~acked
          ~key_of:Wire.value_key views,
        None )
    else begin
      (* Per-group checks and cross-shard atomicity, exactly as in
         Runner.run: acked single-shard writes go to their owning
         group's session check, acked cross-shard writes to the
         atomicity checker. *)
      let cmd_of key = Hashtbl.find_opt proposed_tbl key in
      let is_cross key =
        match cmd_of key with
        | Some cmd -> List.length (Shard.groups_of ~groups:n_groups cmd) > 1
        | None -> false
      in
      let cross_acked, single_acked = List.partition is_cross acked in
      let acked_of g =
        List.filter
          (fun key ->
            match cmd_of key with
            | Some cmd -> Shard.group_of_cmd ~groups:n_groups cmd = g
            | None -> false)
          single_acked
      in
      let group_views g = List.filteri (fun i _ -> group_of_replica i = g) views in
      let reports =
        List.init n_groups (fun g ->
            Consistency.check ~equal:Wire.value_equal ~proposed
              ~acked:(acked_of g) ~key_of:Wire.value_key (group_views g))
      in
      let consistency =
        {
          Consistency.violations =
            List.concat_map
              (fun (r : Consistency.report) -> r.Consistency.violations)
              reports;
          checked_instances =
            List.fold_left
              (fun a (r : Consistency.report) ->
                a + r.Consistency.checked_instances)
              0 reports;
          checked_replicas =
            List.fold_left
              (fun a (r : Consistency.report) -> a + r.Consistency.checked_replicas)
              0 reports;
        }
      in
      let decided =
        List.init n_groups (fun g ->
            let cmds =
              List.concat_map
                (fun (rv : Wire.value Consistency.replica_view) ->
                  List.map
                    (fun (_, (v : Wire.value)) -> v.Wire.cmd)
                    rv.Consistency.decisions)
                (group_views g)
            in
            (g, cmds))
      in
      let txns =
        Array.to_list routers |> List.concat_map Shard.Router.txn_reports
      in
      (consistency, Some (Atomicity.check ~decided ~txns ~acked:cross_acked))
    end
  in
  let full_ring_sends = Array.map (fun s -> Transport.blocked s.tr) states in
  record_ring_metrics metrics states;
  Metrics.set_int metrics "live.queue.jumbo" (Transport.mesh_jumbo mesh);
  (* Allocation accounting covers the protocol-side domains (replicas
     and routers): the event-loop hot path the Gc guard pins. *)
  let alloc_words_per_op =
    let bytes = ref 0. in
    for i = 0 to client_base - 1 do
      bytes := !bytes +. states.(i).alloc_bytes
    done;
    let words = !bytes /. float_of_int (Sys.word_size / 8) in
    if ops > 0 then words /. float_of_int ops else 0.
  in
  Metrics.set_float metrics "live.alloc.words_per_op" alloc_words_per_op;
  if n_groups > 1 then begin
    let sum f = Array.fold_left (fun a r -> a + f r) 0 routers in
    Metrics.set_int metrics "live.shard.groups" n_groups;
    Metrics.set_int metrics "live.shard.forwarded" (sum Shard.Router.forwarded);
    Metrics.set_int metrics "live.shard.committed" (sum Shard.Router.committed);
    Metrics.set_int metrics "live.shard.aborted" (sum Shard.Router.aborted)
  end;
  let lease_reads =
    Array.fold_left
      (fun acc r ->
        acc
        +
        match r with
        | Op p -> Ci_consensus.Onepaxos.lease_reads p
        | Mp p -> Ci_consensus.Multipaxos.lease_reads p)
      0 replicas
  in
  if spec.lease > 0 then Metrics.set_int metrics "live.lease.reads" lease_reads;
  (match load with
  | Some s ->
    let lp = Ci_load.Load_stats.latency_percentiles s in
    let sp = Ci_load.Load_stats.service_percentiles s in
    Metrics.set_int metrics "live.load.issued" (Ci_load.Load_stats.issued s);
    Metrics.set_int metrics "live.load.completed"
      (Ci_load.Load_stats.completed s);
    Metrics.set_int metrics "live.load.rejected"
      (Ci_load.Load_stats.rejected s);
    Metrics.set_int metrics "live.load.stale_reads"
      (Ci_load.Load_stats.stale_reads s);
    Metrics.set_int metrics "live.load.max_backlog"
      (Ci_load.Load_stats.max_backlog s);
    Metrics.set_float metrics "live.load.throughput"
      (Ci_load.Load_stats.throughput s);
    Metrics.set_int metrics "live.load.p50" lp.Ci_load.Load_stats.p50;
    Metrics.set_int metrics "live.load.p99" lp.Ci_load.Load_stats.p99;
    Metrics.set_int metrics "live.load.p999" lp.Ci_load.Load_stats.p999;
    Metrics.set_int metrics "live.load.service_p50" sp.Ci_load.Load_stats.p50;
    Metrics.set_int metrics "live.load.service_p99" sp.Ci_load.Load_stats.p99;
    Metrics.set_int metrics "live.load.service_p999" sp.Ci_load.Load_stats.p999
  | None -> ());
  Metrics.set_int metrics "live.ops" ops;
  Metrics.set_int metrics "live.retries" retries;
  Metrics.set_int metrics "live.queue.msgs" queues_total.q_msgs;
  Metrics.set_int metrics "live.queue.blocked" queues_total.q_blocked;
  Metrics.set_int metrics "live.queue.occupancy_peak"
    queues_total.q_occupancy_peak;
  Metrics.set_int metrics "live.queue.outbox_peak" queues_total.q_outbox_peak;
  Metrics.set_int metrics "live.queue.outbox_dropped"
    queues_total.q_outbox_dropped;
  let completions =
    Array.to_list client_stats
    |> List.concat_map (fun s ->
           Array.to_list (Run_stats.completions_in s ~from_:0 ~until_:t_quiesce))
    |> Array.of_list
  in
  Array.sort compare completions;
  (* Wall-clock commit rates over the measured phase, 100 ms buckets
     (full buckets only) — the live twin of [Runner.result.timeline],
     so failover figures can overlay both backends. *)
  let timeline =
    let bucket = 100_000_000 in
    let counts = Array.make (t_quiesce / bucket) 0 in
    Array.iter
      (fun t ->
        let b = t / bucket in
        if b < Array.length counts then counts.(b) <- counts.(b) + 1)
      completions;
    Array.map (fun c -> float_of_int c *. 1e9 /. float_of_int bucket) counts
  in
  let failover =
    match Ci_faults.first_fault_at spec.nemesis with
    | Some fault_at when fault_at >= 0 && fault_at < t_quiesce ->
      Metrics.set_int metrics "live.faults.dropped"
        (Array.fold_left (fun acc s -> acc + s.n_fault_dropped) 0 states);
      Metrics.set_int metrics "live.faults.duplicated"
        (Array.fold_left (fun acc s -> acc + s.n_fault_duplicated) 0 states);
      let f =
        Ci_obs.Failover.analyze ~completions ~from_:0 ~fault_at
          ~until_:t_quiesce
      in
      Ci_obs.Failover.record metrics f;
      Some f
    | Some _ | None -> None
  in
  {
    spec;
    cores = Domain.recommended_domain_count ();
    wall_s;
    ops;
    throughput = (if wall_s > 0. then float_of_int ops /. wall_s else 0.);
    latency = Summary.of_samples latencies;
    retries;
    leader_changes;
    acceptor_changes;
    timeline;
    queues = queues_total;
    full_ring_sends;
    alloc_words_per_op;
    lease_reads;
    load;
    consistency;
    atomicity;
    metrics;
    failover;
  }

(* ---------- socket runner: processes over stream sockets ---------- *)

(* What a child process reports back over its control socket before
   exiting. Plain data throughout, so [Marshal] round-trips it. *)
type harvest = {
  h_view : Wire.value Consistency.replica_view option; (* replicas *)
  h_leader_changes : int;
  h_acceptor_changes : int;
  h_elections : int;
  h_lease_reads : int;
  h_client_node : int; (* clients: env node id *)
  h_issued : (int * Command.t) list;
  h_acked : (int * int) list;
  h_stats : Run_stats.t option;
  h_retries : int;
  h_events : int;
  h_blocked : int;
  h_outbox_dropped : int;
  h_outbox_peak : int;
  h_sent : int;
  h_full_kinds : (string * int) list;
  h_alloc_bytes : float;
}

(* One node of the mesh, running alone in a forked process: same
   node_state, same event loop, same protocol cores — only the
   transport and the phase control differ from the in-process runner.
   The parent drives phases with single control bytes ('q' quiesce,
   's' stop); the child answers with its marshalled harvest. *)
let socket_child spec ~id ~t0 ~fds ~ctl_fd =
  let n_replicas = spec.n_replicas in
  let client_base = n_replicas in
  let replica_ids = Array.init n_replicas Fun.id in
  let tr = Transport.socket_endpoint ~id ~fds ~outbox_cap:spec.outbox_cap in
  let st =
    fresh_state ~id ~tr ~nem_links:None
      ~nem_seed:(spec.nemesis.Ci_faults.seed + (id * 7919))
  in
  let env = env_for st ~t0 ~seed:(spec.seed + ((id + 1) * 1_000_003)) in
  let stop = Atomic.make false in
  let quiesce = Atomic.make false in
  Unix.set_nonblock ctl_fd;
  let ctl_buf = Bytes.create 1 in
  let ctl () =
    match Unix.read ctl_fd ctl_buf 0 1 with
    | 0 -> Atomic.set stop true (* parent died: shut down *)
    | _ -> (
      match Bytes.get ctl_buf 0 with
      | 'q' -> Atomic.set quiesce true
      | 's' -> Atomic.set stop true
      | _ -> ())
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  in
  let replica =
    if id < n_replicas then
      Some
        (match spec.protocol with
        | Onepaxos ->
          Op
            (Ci_consensus.Onepaxos.create ~env
               ~config:(op_cfg ~spec ~replicas:replica_ids ()))
        | Multipaxos ->
          Mp
            (Ci_consensus.Multipaxos.create ~env
               ~config:(mp_cfg ~spec ~replicas:replica_ids ())))
    else None
  in
  let stats = Run_stats.create ~bucket:(ms 10) in
  let client =
    if id >= client_base then begin
      let policy =
        {
          (Client.default_policy ~targets:replica_ids) with
          Client.timeout = spec.client_timeout;
          think = spec.think;
          read_ratio = spec.read_ratio;
          key_space = spec.key_space;
        }
      in
      Some (Client.create ~env ~policy ~stats)
    end
    else None
  in
  (match replica with
  | Some (Op p) -> st.handler <- Ci_consensus.Onepaxos.handle p
  | Some (Mp p) -> st.handler <- Ci_consensus.Multipaxos.handle p
  | None -> ());
  (match client with
  | Some c ->
    st.handler <-
      (fun ~src msg -> if not (Atomic.get quiesce) then Client.handle c ~src msg)
  | None -> ());
  let metrics = Metrics.create () in
  let m_work = Metrics.counter metrics "live.events" in
  let a0 = Gc.allocated_bytes () in
  (match replica with
  | Some (Op p) -> Ci_consensus.Onepaxos.start p
  | Some (Mp p) -> Ci_consensus.Multipaxos.start p
  | None -> Option.iter Client.start client);
  event_loop ~ctl st ~t0 ~stop ~m_work;
  st.alloc_bytes <- Gc.allocated_bytes () -. a0;
  let harvest =
    {
      h_view =
        Option.map (fun r -> Replica_core.view (replica_core r)) replica;
      h_leader_changes =
        (match replica with
        | Some (Op p) -> Ci_consensus.Onepaxos.leader_changes p
        | _ -> 0);
      h_acceptor_changes =
        (match replica with
        | Some (Op p) -> Ci_consensus.Onepaxos.acceptor_changes p
        | _ -> 0);
      h_elections =
        (match replica with
        | Some (Mp p) -> Ci_consensus.Multipaxos.elections p
        | _ -> 0);
      h_lease_reads =
        (match replica with
        | Some (Op p) -> Ci_consensus.Onepaxos.lease_reads p
        | Some (Mp p) -> Ci_consensus.Multipaxos.lease_reads p
        | None -> 0);
      h_client_node =
        (match client with Some c -> Client.node_id c | None -> -1);
      h_issued = (match client with Some c -> Client.issued c | None -> []);
      h_acked =
        (match client with Some c -> Client.acked_writes c | None -> []);
      h_stats = (match client with Some _ -> Some stats | None -> None);
      h_retries = (match client with Some c -> Client.retries c | None -> 0);
      h_events = Metrics.counter_value m_work;
      h_blocked = Transport.blocked tr;
      h_outbox_dropped = Transport.outbox_dropped tr;
      h_outbox_peak = Transport.outbox_peak tr;
      h_sent = Transport.sent tr;
      h_full_kinds = Transport.full_by_kind tr;
      h_alloc_bytes = st.alloc_bytes;
    }
  in
  Unix.clear_nonblock ctl_fd;
  let oc = Unix.out_channel_of_descr ctl_fd in
  Marshal.to_channel oc harvest [];
  flush oc

let run_socket spec =
  let n_replicas = spec.n_replicas and n_clients = spec.n_clients in
  let client_base = n_replicas in
  let n = n_replicas + n_clients in
  (* One stream socketpair per unordered pair of nodes, plus a control
     pair per node. All created before any fork, so every process
     inherits exactly the descriptors it needs and closes the rest. *)
  let mesh_fds = Array.init n (fun _ -> Array.make n None) in
  for i = 0 to n - 1 do
    for j = 0 to i - 1 do
      let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      mesh_fds.(i).(j) <- Some a;
      mesh_fds.(j).(i) <- Some b
    done
  done;
  let ctl = Array.init n (fun _ -> Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0) in
  let old_sigpipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let t0 = Clock.now_ns () in
  flush stdout;
  flush stderr;
  let pids =
    Array.init n (fun id ->
        match Unix.fork () with
        | 0 ->
          (try
             for i = 0 to n - 1 do
               if i <> id then
                 Array.iter (Option.iter Unix.close) mesh_fds.(i)
             done;
             Array.iteri
               (fun j (pfd, cfd) ->
                 Unix.close pfd;
                 if j <> id then Unix.close cfd)
               ctl;
             socket_child spec ~id ~t0 ~fds:mesh_fds.(id)
               ~ctl_fd:(snd ctl.(id))
           with _ -> Unix._exit 2);
          Unix._exit 0
        | pid -> pid)
  in
  Array.iter (fun row -> Array.iter (Option.iter Unix.close) row) mesh_fds;
  Array.iter (fun (_, cfd) -> Unix.close cfd) ctl;
  let phase_byte c =
    let b = Bytes.make 1 c in
    Array.iter
      (fun (pfd, _) ->
        try ignore (Unix.write pfd b 0 1)
        with Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _) -> ())
      ctl
  in
  Unix.sleepf spec.duration_s;
  let t_quiesce = Clock.now_ns () - t0 in
  phase_byte 'q';
  Unix.sleepf spec.drain_s;
  phase_byte 's';
  let harvests =
    Array.map
      (fun (pfd, _) ->
        let ic = Unix.in_channel_of_descr pfd in
        match (Marshal.from_channel ic : harvest) with
        | h -> h
        | exception End_of_file ->
          failwith "Live.run: a socket-transport child died before reporting")
      ctl
  in
  Array.iter (fun pid -> ignore (Unix.waitpid [] pid)) pids;
  Array.iter (fun (pfd, _) -> try Unix.close pfd with Unix.Unix_error _ -> ()) ctl;
  Sys.set_signal Sys.sigpipe old_sigpipe;
  (* Assembly: the same checks and shapes as the in-process runner,
     over the children's reports. *)
  let wall_s = float_of_int t_quiesce /. 1e9 in
  let client_harvests =
    Array.to_list harvests |> List.filteri (fun i _ -> i >= client_base)
  in
  let client_stats = List.filter_map (fun h -> h.h_stats) client_harvests in
  let ops =
    List.fold_left
      (fun acc s -> acc + Run_stats.completed_in s ~from_:0 ~until_:t_quiesce)
      0 client_stats
  in
  let latencies =
    List.concat_map
      (fun s ->
        Array.to_list (Run_stats.latencies_in s ~from_:0 ~until_:t_quiesce))
      client_stats
    |> Array.of_list
  in
  let retries =
    List.fold_left (fun acc h -> acc + h.h_retries) 0 client_harvests
  in
  let leader_changes, acceptor_changes =
    Array.fold_left
      (fun (lc, ac) h ->
        match spec.protocol with
        | Onepaxos -> (max lc h.h_leader_changes, max ac h.h_acceptor_changes)
        | Multipaxos -> (lc + h.h_elections, ac))
      (0, 0) harvests
  in
  let queues_total =
    {
      q_count = n * (n - 1);
      q_msgs = Array.fold_left (fun acc h -> acc + h.h_sent) 0 harvests;
      q_blocked = Array.fold_left (fun acc h -> acc + h.h_blocked) 0 harvests;
      q_occupancy_peak = 0; (* kernel-owned on this transport *)
      q_outbox_peak =
        Array.fold_left (fun acc h -> max acc h.h_outbox_peak) 0 harvests;
      q_outbox_dropped =
        Array.fold_left (fun acc h -> acc + h.h_outbox_dropped) 0 harvests;
    }
  in
  let proposed_tbl = Hashtbl.create 4096 in
  List.iter
    (fun h ->
      List.iter
        (fun (req_id, cmd) ->
          Hashtbl.replace proposed_tbl (h.h_client_node, req_id) cmd)
        h.h_issued)
    client_harvests;
  let proposed (v : Wire.value) =
    match Hashtbl.find_opt proposed_tbl (v.Wire.client, v.Wire.req_id) with
    | Some cmd -> Command.equal cmd v.Wire.cmd
    | None -> false
  in
  let acked = List.concat_map (fun h -> h.h_acked) client_harvests in
  let views =
    Array.to_list harvests |> List.filter_map (fun h -> h.h_view)
  in
  let consistency =
    Consistency.check ~equal:Wire.value_equal ~proposed ~acked
      ~key_of:Wire.value_key views
  in
  let metrics = Metrics.create () in
  let m_work = Metrics.counter metrics "live.events" in
  Metrics.add m_work (Array.fold_left (fun acc h -> acc + h.h_events) 0 harvests);
  let full_kinds = Hashtbl.create 8 in
  Array.iteri
    (fun i h ->
      Metrics.set_int metrics
        (Printf.sprintf "live.node%d.full_ring_sends" i)
        h.h_blocked;
      List.iter
        (fun (k, c) ->
          Hashtbl.replace full_kinds k
            (c + Option.value (Hashtbl.find_opt full_kinds k) ~default:0))
        h.h_full_kinds)
    harvests;
  Hashtbl.iter
    (fun k c -> Metrics.set_int metrics ("live.ring.full." ^ k) c)
    full_kinds;
  let alloc_words_per_op =
    let bytes = ref 0. in
    for i = 0 to client_base - 1 do
      bytes := !bytes +. harvests.(i).h_alloc_bytes
    done;
    let words = !bytes /. float_of_int (Sys.word_size / 8) in
    if ops > 0 then words /. float_of_int ops else 0.
  in
  Metrics.set_float metrics "live.alloc.words_per_op" alloc_words_per_op;
  Metrics.set_int metrics "live.ops" ops;
  Metrics.set_int metrics "live.retries" retries;
  Metrics.set_int metrics "live.queue.msgs" queues_total.q_msgs;
  Metrics.set_int metrics "live.queue.blocked" queues_total.q_blocked;
  Metrics.set_int metrics "live.queue.outbox_peak" queues_total.q_outbox_peak;
  Metrics.set_int metrics "live.queue.outbox_dropped"
    queues_total.q_outbox_dropped;
  let completions =
    List.concat_map
      (fun s ->
        Array.to_list (Run_stats.completions_in s ~from_:0 ~until_:t_quiesce))
      client_stats
    |> Array.of_list
  in
  Array.sort compare completions;
  let timeline =
    let bucket = 100_000_000 in
    let counts = Array.make (t_quiesce / bucket) 0 in
    Array.iter
      (fun t ->
        let b = t / bucket in
        if b < Array.length counts then counts.(b) <- counts.(b) + 1)
      completions;
    Array.map (fun c -> float_of_int c *. 1e9 /. float_of_int bucket) counts
  in
  {
    spec;
    cores = Domain.recommended_domain_count ();
    wall_s;
    ops;
    throughput = (if wall_s > 0. then float_of_int ops /. wall_s else 0.);
    latency = Summary.of_samples latencies;
    retries;
    leader_changes;
    acceptor_changes;
    timeline;
    queues = queues_total;
    full_ring_sends = Array.map (fun h -> h.h_blocked) harvests;
    alloc_words_per_op;
    lease_reads =
      Array.fold_left (fun acc h -> acc + h.h_lease_reads) 0 harvests;
    load = None;
    consistency;
    atomicity = None;
    metrics;
    failover = None;
  }

let run spec =
  validate spec;
  match spec.transport with Spsc -> run_inproc spec | Socket -> run_socket spec

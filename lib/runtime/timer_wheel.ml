module Event_queue = Ci_engine.Event_queue

type t = { q : (unit -> unit) Event_queue.t }
type timer = Event_queue.token

let create () = { q = Event_queue.create () }
let at w ~deadline f = Event_queue.push w.q ~time:deadline f
let at_token w ~deadline f = Event_queue.push_token w.q ~time:deadline f
let cancel w tm = Event_queue.cancel w.q tm
let next_deadline w = Event_queue.next_time w.q
let pending w = Event_queue.length w.q

let run_due w ~now =
  let fired = ref 0 in
  while Event_queue.next_time w.q <= now do
    let f = Event_queue.pop_payload w.q in
    incr fired;
    f ()
  done;
  !fired

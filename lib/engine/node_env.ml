type timer = { cancel : unit -> unit }

type 'msg t = {
  id : int;
  send : dst:int -> 'msg -> unit;
  now : unit -> Sim_time.t;
  after : delay:Sim_time.t -> (unit -> unit) -> unit;
  after_cancel : delay:Sim_time.t -> (unit -> unit) -> timer;
  rng : Rng.t;
  note_phase : phase:string -> unit;
}

let cancel_timer tm = tm.cancel ()

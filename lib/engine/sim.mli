(** Discrete-event simulator core.

    A simulator owns a virtual clock and an event queue of thunks. All
    higher layers (machine, channels, protocols) express behaviour by
    scheduling thunks at future instants. Execution is single-threaded
    and deterministic: events fire in [(time, insertion)] order. *)

type t
(** A simulator instance. *)

type timer
(** A handle for one scheduled event, allowing O(1) cancellation. *)

val create : unit -> t
(** [create ()] is a simulator at time 0 with no pending events. *)

val now : t -> Sim_time.t
(** [now sim] is the current virtual time. *)

val schedule : t -> delay:Sim_time.t -> (unit -> unit) -> unit
(** [schedule sim ~delay f] runs [f] at [now sim + delay]. A negative
    [delay] is clamped to zero. *)

val schedule_at : t -> time:Sim_time.t -> (unit -> unit) -> unit
(** [schedule_at sim ~time f] runs [f] at [time]; if [time] is in the
    past it runs at the current instant (after already-queued events of
    that instant). *)

val schedule_cancellable : t -> delay:Sim_time.t -> (unit -> unit) -> timer
(** [schedule_cancellable sim ~delay f] is {!schedule} but returns a
    timer with which the event can be revoked before it fires. *)

val cancel : t -> timer -> unit
(** [cancel sim timer] revokes a pending event in O(1). Cancelling an
    event that already fired, or cancelling twice, is a no-op. *)

val pending : t -> int
(** [pending sim] is the number of queued events (cancelled events are
    not counted). *)

val next_at : t -> Sim_time.t option
(** [next_at sim] is the timestamp of the next event {!run} would fire,
    without firing it — the simulator end of the controlled-scheduler
    seam. Events at equal timestamps fire in insertion order (the
    {!Event_queue} FIFO tie-break), so [(time, insertion order)] is a
    total, stable order over pending events; replayable exploration
    (Ci_explore) depends on it. *)

val events_fired : t -> int
(** [events_fired sim] is the cumulative count of events executed over
    the simulator's lifetime (cancelled events never execute). *)

val stop : t -> unit
(** [stop sim] makes the current [run]/[run_until] call return after the
    executing event completes. Further runs may be issued afterwards. *)

val run_until : t -> time:Sim_time.t -> unit
(** [run_until sim ~time] executes events with timestamp [<= time], then
    advances the clock to exactly [time]. Returns early on [stop]. *)

val run : ?max_events:int -> t -> unit
(** [run sim] executes events until the queue drains, [stop] is called,
    or [max_events] events have fired (default: unlimited). *)

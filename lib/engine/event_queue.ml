type token = { mutable live : bool }

(* Parallel-array binary min-heap ordered by (time, seq). Keeping the
   hot fields in unboxed [int array]s (rather than one array of cell
   records) makes [push]/[pop] allocation-free in the common
   tokenless case and halves the pointer chasing per sift step. *)
type 'a t = {
  mutable times : int array;
  mutable seqs : int array;
  mutable payloads : 'a array;
  mutable tokens : token option array;
  mutable size : int;
  mutable next_seq : int;
  mutable n_cancelled : int;
}

let create () =
  {
    times = [||];
    seqs = [||];
    payloads = [||];
    tokens = [||];
    size = 0;
    next_seq = 0;
    n_cancelled = 0;
  }

let length q = q.size - q.n_cancelled
let is_empty q = length q = 0

let grow q payload =
  let cap = Array.length q.times in
  let new_cap = if cap = 0 then 16 else cap * 2 in
  let nt = Array.make new_cap 0 in
  let ns = Array.make new_cap 0 in
  let np = Array.make new_cap payload in
  let nk = Array.make new_cap None in
  Array.blit q.times 0 nt 0 q.size;
  Array.blit q.seqs 0 ns 0 q.size;
  Array.blit q.payloads 0 np 0 q.size;
  Array.blit q.tokens 0 nk 0 q.size;
  q.times <- nt;
  q.seqs <- ns;
  q.payloads <- np;
  q.tokens <- nk

let push_opt q ~time tok payload =
  if q.size = Array.length q.times then grow q payload;
  let seq = q.next_seq in
  q.next_seq <- seq + 1;
  (* Sift up with a hole: shift larger parents down, write once. *)
  let i = ref q.size in
  q.size <- q.size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let p = (!i - 1) / 2 in
    if time < q.times.(p) || (time = q.times.(p) && seq < q.seqs.(p)) then begin
      q.times.(!i) <- q.times.(p);
      q.seqs.(!i) <- q.seqs.(p);
      q.payloads.(!i) <- q.payloads.(p);
      q.tokens.(!i) <- q.tokens.(p);
      i := p
    end
    else continue := false
  done;
  q.times.(!i) <- time;
  q.seqs.(!i) <- seq;
  q.payloads.(!i) <- payload;
  q.tokens.(!i) <- tok

let push q ~time payload = push_opt q ~time None payload

let push_token q ~time payload =
  let tok = { live = true } in
  push_opt q ~time (Some tok) payload;
  tok

let cancel q tok =
  if tok.live then begin
    tok.live <- false;
    q.n_cancelled <- q.n_cancelled + 1
  end

(* Physically remove the root. The freed tail slot keeps a stale
   payload reference until overwritten by a later push — bounded by
   capacity, fully released by [clear]. *)
let remove_root q =
  let n = q.size - 1 in
  q.size <- n;
  q.tokens.(0) <- None;
  if n > 0 then begin
    let time = q.times.(n) and seq = q.seqs.(n) in
    let payload = q.payloads.(n) and tok = q.tokens.(n) in
    q.tokens.(n) <- None;
    (* Sift the displaced tail element down from the root hole. *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 in
      if l >= n then continue := false
      else begin
        let r = l + 1 in
        let c =
          if
            r < n
            && (q.times.(r) < q.times.(l)
               || (q.times.(r) = q.times.(l) && q.seqs.(r) < q.seqs.(l)))
          then r
          else l
        in
        if q.times.(c) < time || (q.times.(c) = time && q.seqs.(c) < seq)
        then begin
          q.times.(!i) <- q.times.(c);
          q.seqs.(!i) <- q.seqs.(c);
          q.payloads.(!i) <- q.payloads.(c);
          q.tokens.(!i) <- q.tokens.(c);
          i := c
        end
        else continue := false
      end
    done;
    q.times.(!i) <- time;
    q.seqs.(!i) <- seq;
    q.payloads.(!i) <- payload;
    q.tokens.(!i) <- tok
  end

(* Lazily discard cancelled events sitting at the root. *)
let rec drop_dead q =
  if q.size > 0 then
    match q.tokens.(0) with
    | Some tok when not tok.live ->
      q.n_cancelled <- q.n_cancelled - 1;
      remove_root q;
      drop_dead q
    | _ -> ()

let pop q =
  drop_dead q;
  if q.size = 0 then None
  else begin
    let time = q.times.(0) and payload = q.payloads.(0) in
    (match q.tokens.(0) with Some tok -> tok.live <- false | None -> ());
    remove_root q;
    Some (time, payload)
  end

let peek_time q =
  drop_dead q;
  if q.size = 0 then None else Some q.times.(0)

let peek q =
  drop_dead q;
  if q.size = 0 then None else Some (q.times.(0), q.payloads.(0))

let snapshot q =
  let live = ref [] in
  for i = 0 to q.size - 1 do
    match q.tokens.(i) with
    | Some tok when not tok.live -> ()
    | Some _ | None -> live := (q.times.(i), q.seqs.(i), q.payloads.(i)) :: !live
  done;
  !live
  |> List.sort (fun (t1, s1, _) (t2, s2, _) ->
         match compare (t1 : int) t2 with 0 -> compare (s1 : int) s2 | c -> c)
  |> List.map (fun (t, _, p) -> (t, p))

(* Allocation-free variants of [peek_time]/[pop] for the simulator's
   run loop: an [option] (and the [pop] pair) costs 7 words per event,
   which dominates the engine's per-event budget once the rest of the
   path is allocation-free. *)

let no_event = max_int

let next_time q =
  drop_dead q;
  if q.size = 0 then no_event else q.times.(0)

let pop_payload q =
  drop_dead q;
  if q.size = 0 then invalid_arg "Event_queue.pop_payload: empty queue";
  let payload = q.payloads.(0) in
  (match q.tokens.(0) with Some tok -> tok.live <- false | None -> ());
  remove_root q;
  payload

let clear q =
  for i = 0 to q.size - 1 do
    match q.tokens.(i) with Some tok -> tok.live <- false | None -> ()
  done;
  q.size <- 0;
  q.n_cancelled <- 0;
  q.times <- [||];
  q.seqs <- [||];
  q.payloads <- [||];
  q.tokens <- [||]

type t = {
  queue : (unit -> unit) Event_queue.t;
  mutable clock : Sim_time.t;
  mutable stopped : bool;
  mutable fired : int;
}

type timer = Event_queue.token

let create () =
  { queue = Event_queue.create (); clock = 0; stopped = false; fired = 0 }

let now t = t.clock

let schedule_at t ~time f =
  let time = if time < t.clock then t.clock else time in
  Event_queue.push t.queue ~time f

let schedule t ~delay f =
  let delay = if delay < 0 then 0 else delay in
  schedule_at t ~time:(t.clock + delay) f

let schedule_cancellable t ~delay f =
  let delay = if delay < 0 then 0 else delay in
  Event_queue.push_token t.queue ~time:(t.clock + delay) f

let cancel t timer = Event_queue.cancel t.queue timer

let pending t = Event_queue.length t.queue

let events_fired t = t.fired

let stop t = t.stopped <- true

let run_until t ~time =
  t.stopped <- false;
  let continue = ref true in
  while !continue && not t.stopped do
    match Event_queue.peek_time t.queue with
    | Some ts when ts <= time ->
      (match Event_queue.pop t.queue with
       | Some (ts, f) ->
         t.clock <- ts;
         t.fired <- t.fired + 1;
         f ()
       | None -> continue := false)
    | Some _ | None -> continue := false
  done;
  if not t.stopped && t.clock < time then t.clock <- time

let run ?max_events t =
  t.stopped <- false;
  let fired = ref 0 in
  let budget_left () =
    match max_events with None -> true | Some m -> !fired < m
  in
  let continue = ref true in
  while !continue && not t.stopped && budget_left () do
    match Event_queue.pop t.queue with
    | Some (ts, f) ->
      t.clock <- ts;
      incr fired;
      t.fired <- t.fired + 1;
      f ()
    | None -> continue := false
  done

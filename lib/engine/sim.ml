type t = {
  queue : (unit -> unit) Event_queue.t;
  mutable clock : Sim_time.t;
  mutable stopped : bool;
  mutable fired : int;
}

type timer = Event_queue.token

let create () =
  { queue = Event_queue.create (); clock = 0; stopped = false; fired = 0 }

let now t = t.clock

let schedule_at t ~time f =
  let time = if time < t.clock then t.clock else time in
  Event_queue.push t.queue ~time f

let schedule t ~delay f =
  let delay = if delay < 0 then 0 else delay in
  schedule_at t ~time:(t.clock + delay) f

let schedule_cancellable t ~delay f =
  let delay = if delay < 0 then 0 else delay in
  Event_queue.push_token t.queue ~time:(t.clock + delay) f

let cancel t timer = Event_queue.cancel t.queue timer

let pending t = Event_queue.length t.queue
let next_at t = Event_queue.peek_time t.queue

let events_fired t = t.fired

let stop t = t.stopped <- true

(* Both loops use the allocation-free [next_time]/[pop_payload] pair:
   the option-and-pair API costs 7 words per event, which the engine
   self-benchmark shows dominating the per-event budget otherwise. *)
let run_until t ~time =
  t.stopped <- false;
  let continue = ref true in
  while !continue && not t.stopped do
    let ts = Event_queue.next_time t.queue in
    if ts <= time && ts <> Event_queue.no_event then begin
      let f = Event_queue.pop_payload t.queue in
      t.clock <- ts;
      t.fired <- t.fired + 1;
      f ()
    end
    else continue := false
  done;
  if not t.stopped && t.clock < time then t.clock <- time

let run ?max_events t =
  t.stopped <- false;
  let fired = ref 0 in
  let budget_left () =
    match max_events with None -> true | Some m -> !fired < m
  in
  let continue = ref true in
  while !continue && not t.stopped && budget_left () do
    let ts = Event_queue.next_time t.queue in
    if ts = Event_queue.no_event then continue := false
    else begin
      let f = Event_queue.pop_payload t.queue in
      t.clock <- ts;
      incr fired;
      t.fired <- t.fired + 1;
      f ()
    end
  done

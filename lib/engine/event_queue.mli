(** Priority queue of timestamped events.

    A binary min-heap ordered by [(time, sequence)]. The sequence number
    is assigned at insertion, so events scheduled for the same instant
    are delivered in insertion order (FIFO tie-break) — a property the
    machine model relies on for per-channel ordering.

    The heap stores its fields in parallel unboxed arrays, so the hot
    [push]/[pop] path allocates nothing. Events pushed with
    {!push_token} can be cancelled in O(1); cancelled events never fire
    and are reclaimed lazily when they reach the heap root. *)

type 'a t
(** A heap of events carrying payloads of type ['a]. *)

type token
(** A cancellation handle for one event. A token is {e spent} once its
    event fires or is cancelled; cancelling a spent token is a no-op. *)

val create : unit -> 'a t
(** [create ()] is an empty queue. *)

val length : 'a t -> int
(** [length q] is the number of pending events, excluding cancelled
    events not yet reclaimed. *)

val is_empty : 'a t -> bool
(** [is_empty q] is [length q = 0]. *)

val push : 'a t -> time:int -> 'a -> unit
(** [push q ~time payload] inserts an event. [time] may be in the past
    relative to previously popped events; ordering is the caller's
    concern. Does not allocate (outside occasional capacity doubling). *)

val push_token : 'a t -> time:int -> 'a -> token
(** [push_token q ~time payload] is {!push} but returns a token with
    which the event can be cancelled before it fires. *)

val cancel : 'a t -> token -> unit
(** [cancel q tok] prevents [tok]'s event from ever being returned by
    {!pop}, in O(1). [tok] must have been produced by [push_token] on
    [q]. Cancelling an event that already fired, or cancelling twice,
    is a no-op. The payload reference is released when the dead event
    is lazily reclaimed (at the latest on [clear]). *)

val pop : 'a t -> (int * 'a) option
(** [pop q] removes and returns the earliest non-cancelled event as
    [(time, payload)], or [None] when empty. Among equal times,
    insertion order wins. *)

val peek_time : 'a t -> int option
(** [peek_time q] is the timestamp of the earliest non-cancelled event,
    without removing it. *)

val peek : 'a t -> (int * 'a) option
(** [peek q] is the earliest non-cancelled event as [(time, payload)]
    without removing it — what {!pop} would return. Controlled
    schedulers (the model-checking explorer) use it to inspect the next
    event of a queue before committing to executing it. *)

val snapshot : 'a t -> (int * 'a) list
(** [snapshot q] is every pending non-cancelled event as
    [(time, payload)], in exactly the order {!pop} would return them:
    ascending [(time, insertion sequence)]. The queue is not modified.
    This is the enumeration seam for exhaustive exploration — the set of
    {e enabled} events rather than just the next one — and doubles as
    the oracle for the tie-break property test: for any push/cancel
    history, repeated [pop] must replay [snapshot] exactly. *)

val no_event : int
(** Sentinel returned by {!next_time} on an empty queue ([max_int]). *)

val next_time : 'a t -> int
(** [next_time q] is {!peek_time} without the option: the timestamp of
    the earliest non-cancelled event, or {!no_event} when the queue is
    empty. Does not allocate. *)

val pop_payload : 'a t -> 'a
(** [pop_payload q] removes the earliest non-cancelled event and returns
    just its payload (its timestamp is what {!next_time} returned).
    Does not allocate. @raise Invalid_argument on an empty queue. *)

val clear : 'a t -> unit
(** [clear q] discards all pending events, releases every payload
    reference held by the queue (including slots retained by lazy
    reclamation) and invalidates all outstanding tokens. The queue
    remains usable afterwards. *)

(** The node-environment seam between protocol cores and their host.

    A protocol replica (1Paxos, Multi-Paxos, PaxosUtility, ...) needs
    exactly six capabilities from whatever hosts it: an identity, a way
    to send a message to a peer, a clock, one-shot timers (cancellable
    or not), and a random stream. [Node_env] packages those as a record
    of closures, so the same protocol core runs unchanged on two
    backends:

    - {!Ci_machine.Machine.env}: the deterministic discrete-event model
      of a many-core machine (simulated nanoseconds);
    - [Ci_runtime]: real OCaml 5 domains exchanging messages over
      shared-memory SPSC queues (monotonic-clock nanoseconds).

    Times are always integer nanoseconds ({!Sim_time.t}); only their
    origin differs between backends. Implementations must be
    single-threaded per node: every closure is invoked only from the
    node's own execution context (simulator event or host domain), and
    handlers run to completion — [send] must never re-enter the
    caller's message handler. *)

type timer = { cancel : unit -> unit }
(** A handle for one pending {!t.after_cancel} timer. Calling [cancel]
    revokes the timer if it has not fired; cancelling a fired or
    already-cancelled timer is a no-op. *)

type 'msg t = {
  id : int;  (** The node's identity, as peers address it in [send]. *)
  send : dst:int -> 'msg -> unit;
      (** [send ~dst msg] transmits [msg] to node [dst]. Sending to
          [id] itself is a local delivery that skips the message layer
          (collapsed roles). Never blocks the caller's logic. *)
  now : unit -> Sim_time.t;
      (** Current time in nanoseconds (virtual or monotonic). *)
  after : delay:Sim_time.t -> (unit -> unit) -> unit;
      (** [after ~delay f] runs [f] on this node [delay] ns from now. *)
  after_cancel : delay:Sim_time.t -> (unit -> unit) -> timer;
      (** [after_cancel ~delay f] is [after] but revocable. *)
  rng : Rng.t;
      (** The host's random stream. Protocols that need their own
          stream derive one with {!Rng.split}, exactly once, at
          creation time — the draw order is part of an experiment's
          reproducibility contract. *)
  note_phase : phase:string -> unit;
      (** Records a protocol phase transition (election started,
          acceptor switched, ...) with the host's observability layer.
          May be a no-op. *)
}

val cancel_timer : timer -> unit
(** [cancel_timer tm] is [tm.cancel ()]. *)

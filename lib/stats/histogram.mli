(** Logarithmic latency histogram.

    Power-of-two buckets over nanosecond samples; cheap to fill during a
    run and compact to print. *)

type t
(** A mutable histogram. *)

val create : unit -> t
(** [create ()] is an empty histogram. *)

val add : t -> int -> unit
(** [add t sample] records a non-negative sample. *)

val count : t -> int
(** [count t] is the number of recorded samples. *)

val merge : into:t -> t -> unit
(** [merge ~into src] adds every bucket count of [src] into [into]. *)

val quantile : t -> float -> int
(** [quantile t q] is the nearest-rank [q]-quantile ([0 <= q <= 1])
    estimated from the buckets, linearly interpolated inside the
    winning bucket (relative error bounded by the bucket width, a
    factor under two). [0] on an empty histogram. *)

val buckets : t -> (int * int * int) list
(** [buckets t] is the non-empty buckets as [(lo, hi, count)] with
    [lo <= sample < hi], in increasing order. *)

val pp : Format.formatter -> t -> unit
(** Prints one line per non-empty bucket with a proportional bar. *)

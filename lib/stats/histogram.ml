type t = { slots : int array; mutable n : int }

let n_slots = 63

let create () = { slots = Array.make n_slots 0; n = 0 }

let slot_of sample =
  if sample <= 0 then 0
  else
    let rec go v acc = if v = 0 then acc else go (v lsr 1) (acc + 1) in
    min (n_slots - 1) (go sample 0)

let add t sample =
  if sample < 0 then invalid_arg "Histogram.add: negative sample";
  let s = slot_of sample in
  t.slots.(s) <- t.slots.(s) + 1;
  t.n <- t.n + 1

let count t = t.n

let bounds slot =
  if slot = 0 then (0, 1) else (1 lsl (slot - 1), 1 lsl slot)

let merge ~into src =
  Array.iteri (fun i c -> into.slots.(i) <- into.slots.(i) + c) src.slots;
  into.n <- into.n + src.n

(* Nearest-rank quantile, linearly interpolated inside the winning
   power-of-two bucket: exact enough for tail reporting (the error is
   bounded by the bucket's width, i.e. a factor < 2) without retaining
   raw samples. *)
let quantile t q =
  if t.n = 0 then 0
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let rank = max 1 (int_of_float (ceil (q *. float_of_int t.n))) in
    let rec go i seen =
      if i >= n_slots then snd (bounds (n_slots - 1)) - 1
      else
        let c = t.slots.(i) in
        if c > 0 && seen + c >= rank then begin
          let lo, hi = bounds i in
          let frac = float_of_int (rank - seen) /. float_of_int c in
          lo + int_of_float (frac *. float_of_int (hi - 1 - lo))
        end
        else go (i + 1) (seen + c)
    in
    go 0 0
  end

let buckets t =
  let acc = ref [] in
  for i = n_slots - 1 downto 0 do
    if t.slots.(i) > 0 then begin
      let lo, hi = bounds i in
      acc := (lo, hi, t.slots.(i)) :: !acc
    end
  done;
  !acc

let pp fmt t =
  let bs = buckets t in
  let maxc = List.fold_left (fun m (_, _, c) -> max m c) 1 bs in
  List.iter
    (fun (lo, hi, c) ->
      let bar = String.make (max 1 (c * 40 / maxc)) '#' in
      Format.fprintf fmt "%10d..%-10d %8d %s@." lo hi c bar)
    bs

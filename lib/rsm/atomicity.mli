(** Cross-shard atomicity checker for 2PC-over-consensus transactions.

    The sharded deployment turns one client [Mput] into a transaction:
    a {!Command.Prep} and a {!Command.Fin} decided in each
    participating shard's consensus log, driven by a router acting as
    two-phase-commit coordinator. This checker is the cross-shard twin
    of {!Consistency}: it takes each group's decided commands (union
    over that group's replicas), the coordinators' transaction records,
    and the client-acknowledged cross-shard writes, and verifies that
    every transaction was decided the same way everywhere. *)

type outcome =
  | Committed  (** Every shard acknowledged the commit finish. *)
  | Aborted  (** A shard refused the lock; acked finishes discarded it. *)
  | Unresolved  (** Still in flight when the run was cut off. *)

type txn = {
  txn : int;  (** Coordinator-unique transaction id. *)
  client : int;  (** Originating client node. *)
  req_id : int;  (** The client's request id for the [Mput]. *)
  parts : (int * int * int) list;  (** (group, key, data) per shard. *)
  outcome : outcome;
}
(** One coordinator-side transaction record. *)

type violation =
  | Mixed_decision of { txn : int; committed_in : int; aborted_in : int }
      (** A shard finalized the transaction with [commit=true] while
          another finalized it with [commit=false]. *)
  | Fin_without_prep of { txn : int; group : int }
      (** A group's log commits a transaction it never prepared. *)
  | Missing_commit of { txn : int; group : int }
      (** The coordinator reported the transaction committed, but a
          participating group never decided its commit finish. *)
  | Stray_commit of { txn : int; group : int }
      (** The coordinator reported the transaction aborted, but a
          group's log commits it. *)
  | Acked_unresolved of { client : int; req_id : int }
      (** A client saw a reply for a cross-shard write no coordinator
          resolved. *)

type report = {
  violations : violation list;
  checked_txns : int;
  committed : int;
  aborted : int;
}

val ok : report -> bool
(** [ok r] is whether no violation was found. *)

val check :
  decided:(int * Command.t list) list ->
  txns:txn list ->
  acked:(int * int) list ->
  report
(** [check ~decided ~txns ~acked] verifies cross-shard atomicity.
    [decided] pairs each group id with the commands decided in that
    group (union over its replicas); [txns] are the coordinators'
    records; [acked] the [(client, req_id)] pairs of client-acked
    cross-shard writes. Unresolved transactions (in flight at cutoff)
    are never violations, but an acked write must map to a resolved
    transaction. *)

val pp_violation : Format.formatter -> violation -> unit
val pp : Format.formatter -> report -> unit

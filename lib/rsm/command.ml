type t =
  | Put of { key : int; data : int }
  | Get of { key : int }
  | Cas of { key : int; expect : int; data : int }
  | Nop
  | Mput of { k1 : int; d1 : int; k2 : int; d2 : int }
  | Prep of { txn : int; key : int; data : int }
  | Fin of { txn : int; key : int; commit : bool }
  | Range of { lo : int; hi : int }

type result =
  | Done
  | Found of int option
  | Swapped of bool
  | Vals of (int * int) list
  | Rejected

let is_read = function
  | Get _ | Range _ -> true
  | Put _ | Cas _ | Nop | Mput _ | Prep _ | Fin _ -> false

let key_of = function
  | Put { key; _ } | Get { key } | Cas { key; _ } -> Some key
  | Mput { k1; _ } -> Some k1
  | Prep { key; _ } | Fin { key; _ } -> Some key
  | Range { lo; _ } -> Some lo
  | Nop -> None

let keys_of = function
  | Put { key; _ } | Get { key } | Cas { key; _ } -> [ key ]
  | Mput { k1; k2; _ } -> if k1 = k2 then [ k1 ] else [ k1; k2 ]
  | Prep { key; _ } | Fin { key; _ } -> [ key ]
  | Range { lo; hi } ->
    (* Every key the scan covers, so shard routing sees the span. *)
    if hi <= lo then []
    else List.init (hi - lo) (fun i -> lo + i)
  | Nop -> []

let equal a b =
  match a, b with
  | Put x, Put y -> x.key = y.key && x.data = y.data
  | Get x, Get y -> x.key = y.key
  | Cas x, Cas y -> x.key = y.key && x.expect = y.expect && x.data = y.data
  | Nop, Nop -> true
  | Mput x, Mput y ->
    x.k1 = y.k1 && x.d1 = y.d1 && x.k2 = y.k2 && x.d2 = y.d2
  | Prep x, Prep y -> x.txn = y.txn && x.key = y.key && x.data = y.data
  | Fin x, Fin y -> x.txn = y.txn && x.key = y.key && x.commit = y.commit
  | Range x, Range y -> x.lo = y.lo && x.hi = y.hi
  | (Put _ | Get _ | Cas _ | Nop | Mput _ | Prep _ | Fin _ | Range _), _ ->
    false

let equal_result a b =
  match a, b with
  | Done, Done -> true
  | Found x, Found y -> x = y
  | Swapped x, Swapped y -> x = y
  | Vals x, Vals y -> x = y
  | Rejected, Rejected -> true
  | (Done | Found _ | Swapped _ | Vals _ | Rejected), _ -> false

let pp fmt = function
  | Put { key; data } -> Format.fprintf fmt "put k%d=%d" key data
  | Get { key } -> Format.fprintf fmt "get k%d" key
  | Cas { key; expect; data } ->
    Format.fprintf fmt "cas k%d %d->%d" key expect data
  | Nop -> Format.pp_print_string fmt "nop"
  | Mput { k1; d1; k2; d2 } ->
    Format.fprintf fmt "mput k%d=%d k%d=%d" k1 d1 k2 d2
  | Prep { txn; key; data } -> Format.fprintf fmt "prep t%d k%d=%d" txn key data
  | Fin { txn; key; commit } ->
    Format.fprintf fmt "fin t%d k%d %s" txn key
      (if commit then "commit" else "abort")
  | Range { lo; hi } -> Format.fprintf fmt "range [k%d,k%d)" lo hi

let pp_result fmt = function
  | Done -> Format.pp_print_string fmt "done"
  | Found None -> Format.pp_print_string fmt "found -"
  | Found (Some v) -> Format.fprintf fmt "found %d" v
  | Swapped b -> Format.fprintf fmt "swapped %b" b
  | Vals kvs -> Format.fprintf fmt "vals %d" (List.length kvs)
  | Rejected -> Format.pp_print_string fmt "rejected"

(** Commands of the replicated state machine.

    The paper's agreement protocols order opaque client commands; the
    motivating use is replicated kernel/application state à la
    Barrelfish (capability tables, configuration). We use a small
    key-value command language rich enough to exercise ordering bugs
    (blind writes, reads, compare-and-swap).

    The sharded deployment adds three commands: [Mput], the
    client-visible atomic two-key write, and the [Prep]/[Fin] pair the
    cross-shard two-phase commit drives through each shard's own
    consensus log ([Prep] locks and stages the shard's half, [Fin]
    applies or discards it). *)

type t =
  | Put of { key : int; data : int }  (** Blind write. *)
  | Get of { key : int }  (** Read. *)
  | Cas of { key : int; expect : int; data : int }
      (** Conditional write: succeeds iff the key currently holds
          [expect]. Order-sensitive, so it catches divergent logs. *)
  | Nop  (** The paper's no-payload benchmark request. *)
  | Mput of { k1 : int; d1 : int; k2 : int; d2 : int }
      (** Atomic two-key write. Within one shard it executes as a single
          log entry; when the keys hash to different shards the router
          turns it into a [Prep]/[Fin] transaction per shard. *)
  | Prep of { txn : int; key : int; data : int }
      (** 2PC phase 1, replicated in one shard's log: lock [key] for
          [txn] and stage [data]. Result is [Swapped acquired] —
          [false] when another transaction holds the lock. Re-preparing
          the same [txn] is idempotent. *)
  | Fin of { txn : int; key : int; commit : bool }
      (** 2PC phase 2: if this shard holds [key] locked for [txn],
          apply the staged write (when [commit]) or discard it, then
          release the lock. Idempotent; unknown transactions are
          no-ops. *)
  | Range of { lo : int; hi : int }
      (** Read every live key in [[lo, hi)] (half-open). Single-shard
          only: when the span crosses shard boundaries the router
          answers [Rejected] instead of routing it. *)

type result =
  | Done  (** A write (or [Nop]) was applied. *)
  | Found of int option  (** A read's answer. *)
  | Swapped of bool  (** Whether a [Cas] succeeded / a [Prep] locked. *)
  | Vals of (int * int) list
      (** A [Range]'s answer: the live [(key, data)] pairs in the span,
          sorted by key. *)
  | Rejected
      (** The request was refused without executing (e.g. a cross-shard
          [Range]); the client should not retry it unchanged. *)

val is_read : t -> bool
(** [is_read c] is whether [c] leaves the store unchanged. *)

val key_of : t -> int option
(** [key_of c] is the primary datum [c] touches ([None] for [Nop];
    [k1] for [Mput]). *)

val keys_of : t -> int list
(** [keys_of c] is every distinct key [c] touches — the input to shard
    routing. Empty for [Nop]. *)

val equal : t -> t -> bool
(** Structural equality. *)

val equal_result : result -> result -> bool
(** Structural equality on results. *)

val pp : Format.formatter -> t -> unit
(** Prints a command, e.g. [put k3=7]. *)

val pp_result : Format.formatter -> result -> unit
(** Prints a result. *)

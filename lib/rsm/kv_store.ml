type t = {
  store : (int, int) Hashtbl.t;
  locks : (int, int) Hashtbl.t; (* key -> owning txn *)
  staged : (int, int) Hashtbl.t; (* key -> staged data, while locked *)
}

let create () =
  {
    store = Hashtbl.create 64;
    locks = Hashtbl.create 8;
    staged = Hashtbl.create 8;
  }

let range t ~lo ~hi =
  (* O(live keys), independent of the span width, so a scan over a
     sparse billion-key span costs what the store holds, not the span. *)
  Hashtbl.fold
    (fun k v acc -> if k >= lo && k < hi then (k, v) :: acc else acc)
    t.store []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let apply t (c : Command.t) : Command.result =
  match c with
  | Put { key; data } ->
    Hashtbl.replace t.store key data;
    Done
  | Get { key } -> Found (Hashtbl.find_opt t.store key)
  | Cas { key; expect; data } ->
    (match Hashtbl.find_opt t.store key with
     | Some v when v = expect ->
       Hashtbl.replace t.store key data;
       Swapped true
     | Some _ | None -> Swapped false)
  | Nop -> Done
  | Mput { k1; d1; k2; d2 } ->
    Hashtbl.replace t.store k1 d1;
    Hashtbl.replace t.store k2 d2;
    Done
  | Prep { txn; key; data } ->
    (* The 2PC lock lives in the replicated state, not in any node's
       volatile memory: every replica of the shard reaches the same
       lock table by executing the same log. Re-preparing under the
       same transaction is an idempotent retry. *)
    (match Hashtbl.find_opt t.locks key with
     | Some owner when owner <> txn -> Swapped false
     | Some _ | None ->
       Hashtbl.replace t.locks key txn;
       Hashtbl.replace t.staged key data;
       Swapped true)
  | Fin { txn; key; commit } ->
    (match Hashtbl.find_opt t.locks key with
     | Some owner when owner = txn ->
       (if commit then
          match Hashtbl.find_opt t.staged key with
          | Some data -> Hashtbl.replace t.store key data
          | None -> ());
       Hashtbl.remove t.locks key;
       Hashtbl.remove t.staged key;
       Done
     | Some _ | None -> Done (* duplicate or foreign finish: no-op *))
  | Range { lo; hi } -> Vals (range t ~lo ~hi)

let get t key = Hashtbl.find_opt t.store key

let size t = Hashtbl.length t.store

let locked_keys t = Hashtbl.length t.locks

let lock_owner t key = Hashtbl.find_opt t.locks key

(* Locks and staged writes are part of the replicated state, so they
   must be part of the fingerprint: two replicas that diverge only in
   their lock tables have executed different logs. Distinct salts keep
   a lock from cancelling against a store entry. *)
let fingerprint t =
  let fold salt tbl acc =
    Hashtbl.fold (fun k v acc -> acc lxor Hashtbl.hash (k, v, salt)) tbl acc
  in
  fold 0x9e3779b9 t.store 0
  |> fold 0x517cc1b7 t.locks
  |> fold 0x27220a95 t.staged

let snapshot t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.store []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

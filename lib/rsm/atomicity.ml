type outcome = Committed | Aborted | Unresolved

type txn = {
  txn : int;
  client : int;
  req_id : int;
  parts : (int * int * int) list;
  outcome : outcome;
}

type violation =
  | Mixed_decision of { txn : int; committed_in : int; aborted_in : int }
  | Fin_without_prep of { txn : int; group : int }
  | Missing_commit of { txn : int; group : int }
  | Stray_commit of { txn : int; group : int }
  | Acked_unresolved of { client : int; req_id : int }

type report = {
  violations : violation list;
  checked_txns : int;
  committed : int;
  aborted : int;
}

let ok r = r.violations = []

let check ~decided ~txns ~acked =
  let violations = ref [] in
  let add v = violations := v :: !violations in
  (* Per group: which transactions prepared, and which finished with
     which bit. Retries make duplicates legitimate; only contradicting
     bits for the same transaction are not. *)
  let preps = Hashtbl.create 256 in (* (group, txn) -> unit *)
  let fins = Hashtbl.create 256 in (* txn -> (group * commit) list *)
  List.iter
    (fun (group, cmds) ->
      List.iter
        (fun (c : Command.t) ->
          match c with
          | Command.Prep { txn; _ } -> Hashtbl.replace preps (group, txn) ()
          | Command.Fin { txn; commit; _ } ->
            let prev = Option.value (Hashtbl.find_opt fins txn) ~default:[] in
            if not (List.mem (group, commit) prev) then
              Hashtbl.replace fins txn ((group, commit) :: prev)
          | Command.Put _ | Command.Get _ | Command.Cas _ | Command.Nop
          | Command.Mput _ | Command.Range _ -> ())
        cmds)
    decided;
  Hashtbl.iter
    (fun txn bits ->
      (match
         ( List.find_opt (fun (_, c) -> c) bits,
           List.find_opt (fun (_, c) -> not c) bits )
       with
       | Some (gc, _), Some (ga, _) ->
         add (Mixed_decision { txn; committed_in = gc; aborted_in = ga })
       | _ -> ());
      List.iter
        (fun (group, commit) ->
          if commit && not (Hashtbl.mem preps (group, txn)) then
            add (Fin_without_prep { txn; group }))
        bits)
    fins;
  (* Coordinator outcomes against the shards' logs: a committed
     transaction finalized with [commit] in every participating shard;
     an aborted one committed nowhere. [Unresolved] transactions were
     in flight at the cutoff and prove nothing either way. *)
  let fin_bit txn group =
    match Hashtbl.find_opt fins txn with
    | None -> None
    | Some bits ->
      List.find_map (fun (g, c) -> if g = group then Some c else None) bits
  in
  let committed = ref 0 and aborted = ref 0 in
  List.iter
    (fun t ->
      match t.outcome with
      | Committed ->
        incr committed;
        List.iter
          (fun (group, _, _) ->
            if fin_bit t.txn group <> Some true then
              add (Missing_commit { txn = t.txn; group }))
          t.parts
      | Aborted ->
        incr aborted;
        List.iter
          (fun (group, _, _) ->
            if fin_bit t.txn group = Some true then
              add (Stray_commit { txn = t.txn; group }))
          t.parts
      | Unresolved -> ())
    txns;
  (* Session integrity for the cross-shard path: every acknowledged
     multi-put maps to a transaction the coordinator resolved. *)
  let resolved = Hashtbl.create 256 in
  List.iter
    (fun t ->
      if t.outcome <> Unresolved then
        Hashtbl.replace resolved (t.client, t.req_id) ())
    txns;
  List.iter
    (fun (client, req_id) ->
      if not (Hashtbl.mem resolved (client, req_id)) then
        add (Acked_unresolved { client; req_id }))
    acked;
  {
    violations = List.rev !violations;
    checked_txns = List.length txns;
    committed = !committed;
    aborted = !aborted;
  }

let pp_violation fmt = function
  | Mixed_decision { txn; committed_in; aborted_in } ->
    Format.fprintf fmt
      "transaction %d committed in group %d but aborted in group %d" txn
      committed_in aborted_in
  | Fin_without_prep { txn; group } ->
    Format.fprintf fmt
      "group %d committed transaction %d without a decided prepare" group txn
  | Missing_commit { txn; group } ->
    Format.fprintf fmt
      "transaction %d was committed but group %d never finalized it" txn group
  | Stray_commit { txn; group } ->
    Format.fprintf fmt "transaction %d was aborted but group %d committed it"
      txn group
  | Acked_unresolved { client; req_id } ->
    Format.fprintf fmt
      "client %d request %d was acknowledged but its transaction was never \
       resolved"
      client req_id

let pp fmt r =
  if ok r then
    Format.fprintf fmt "atomic (%d transactions: %d committed, %d aborted)"
      r.checked_txns r.committed r.aborted
  else begin
    Format.fprintf fmt "%d violation(s):@." (List.length r.violations);
    List.iter (fun v -> Format.fprintf fmt "  - %a@." pp_violation v) r.violations
  end

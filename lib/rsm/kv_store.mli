(** The replicated application state: an integer key-value store.

    Besides the plain map the store carries the cross-shard 2PC
    bookkeeping ({!Command.Prep} locks and staged writes). Both are
    replicated state — they are reached deterministically by executing
    the log and are covered by {!fingerprint}. *)

type t
(** A mutable store. *)

val create : unit -> t
(** [create ()] is an empty store. *)

val apply : t -> Command.t -> Command.result
(** [apply t c] executes [c] against the store and returns its
    result. *)

val get : t -> int -> int option
(** [get t key] is a direct read (used for relaxed local reads). *)

val range : t -> lo:int -> hi:int -> (int * int) list
(** [range t ~lo ~hi] is the live [(key, data)] pairs with
    [lo <= key < hi], sorted by key — a direct read, like {!get}. *)

val size : t -> int
(** [size t] is the number of live keys. *)

val locked_keys : t -> int
(** [locked_keys t] is how many keys are currently 2PC-locked. 0 on a
    quiesced store: every [Prep] was eventually finished. *)

val lock_owner : t -> int -> int option
(** [lock_owner t key] is the transaction holding [key], if any. *)

val fingerprint : t -> int
(** [fingerprint t] is an order-insensitive hash of the store contents,
    lock table and staged writes; two replicas that applied the same
    command sequence have equal fingerprints. *)

val snapshot : t -> (int * int) list
(** [snapshot t] is the map contents sorted by key (locks and staged
    writes excluded). *)

(** Recovery analysis of a faulted run.

    Figure 11's question in numbers: when the nemesis struck, how long
    until the system committed again, how wide was the worst outage
    window, and what did throughput look like on each side of the
    fault? Backend-agnostic — both the simulator and the live runtime
    feed it the sorted completion timestamps of their clients. *)

type t = {
  fault_at : int;  (** First fault onset (ns, backend clock). *)
  time_to_failover : int option;
      (** Delay from [fault_at] to the first completion at or after it;
          [None] when the run never committed again. *)
  unavailable_ns : int;
      (** Widest completion-free gap inside [\[fault_at, until_\]]
          (anchored at [fault_at] and [until_]). *)
  completions_before : int;  (** Completions in [\[from_, fault_at)]. *)
  completions_after : int;  (** Completions in [\[fault_at, until_\]]. *)
  rate_before : float;  (** Op/s over [\[from_, fault_at)]. *)
  rate_after : float;  (** Op/s over [\[fault_at, until_\]]. *)
}

val analyze : completions:int array -> from_:int -> fault_at:int -> until_:int -> t
(** [analyze ~completions ~from_ ~fault_at ~until_] over timestamps
    sorted ascending. Raises [Invalid_argument] if [fault_at] lies
    outside [\[from_, until_\]]. *)

val record : Metrics.t -> t -> unit
(** [record m t] publishes the analysis under [failover.*] keys
    ([time_to_failover_ns] is [infinity] when recovery never came). *)

val pp : Format.formatter -> t -> unit
(** One-line human rendering in milliseconds. *)

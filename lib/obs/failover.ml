type t = {
  fault_at : int;
  time_to_failover : int option;
  unavailable_ns : int;
  completions_before : int;
  completions_after : int;
  rate_before : float;
  rate_after : float;
}

let per_second count span_ns =
  if span_ns <= 0 then 0. else float_of_int count *. 1e9 /. float_of_int span_ns

let analyze ~completions ~from_ ~fault_at ~until_ =
  if fault_at < from_ || fault_at > until_ then
    invalid_arg "Failover.analyze: fault_at outside [from_, until_]";
  let n = Array.length completions in
  (* [completions] is sorted; find the first completion at or after the
     fault and count the window splits in one pass. *)
  let before = ref 0 and after = ref 0 in
  let first_after = ref None in
  let gap = ref 0 in
  let prev = ref fault_at in
  for i = 0 to n - 1 do
    let c = completions.(i) in
    if c >= from_ && c < fault_at then incr before
    else if c >= fault_at && c <= until_ then begin
      incr after;
      if !first_after = None then first_after := Some c;
      if c - !prev > !gap then gap := c - !prev;
      prev := c
    end
  done;
  if until_ - !prev > !gap then gap := until_ - !prev;
  {
    fault_at;
    time_to_failover = Option.map (fun c -> c - fault_at) !first_after;
    unavailable_ns = !gap;
    completions_before = !before;
    completions_after = !after;
    rate_before = per_second !before (fault_at - from_);
    rate_after = per_second !after (until_ - fault_at);
  }

let record metrics t =
  Metrics.set_int metrics "failover.fault_at_ns" t.fault_at;
  (match t.time_to_failover with
  | Some v -> Metrics.set_int metrics "failover.time_to_failover_ns" v
  | None -> Metrics.set_float metrics "failover.time_to_failover_ns" Float.infinity);
  Metrics.set_int metrics "failover.unavailable_ns" t.unavailable_ns;
  Metrics.set_int metrics "failover.completions_before" t.completions_before;
  Metrics.set_int metrics "failover.completions_after" t.completions_after;
  Metrics.set_float metrics "failover.rate_before" t.rate_before;
  Metrics.set_float metrics "failover.rate_after" t.rate_after

let pp fmt t =
  let ms ns = float_of_int ns /. 1e6 in
  Format.fprintf fmt
    "fault at %.1fms; time-to-failover %s; worst gap %.1fms; rate %.0f -> %.0f op/s"
    (ms t.fault_at)
    (match t.time_to_failover with
    | Some v -> Printf.sprintf "%.2fms" (ms v)
    | None -> "never (no completion after the fault)")
    (ms t.unavailable_ns) t.rate_before t.rate_after

type counter = int Atomic.t
type value = Int of int | Float of float

(* Counters live in a separate variant so the single-domain setters keep
   their allocation profile: [set_int] still boxes one [Int], never an
   [Atomic.t]. *)
type slot = Scalar of value | Counter of counter

type t = {
  tbl : (string, slot) Hashtbl.t;
  mutable order : string list; (* reversed insertion order *)
}

let create () = { tbl = Hashtbl.create 64; order = [] }

let set t key v =
  if not (Hashtbl.mem t.tbl key) then t.order <- key :: t.order;
  Hashtbl.replace t.tbl key (Scalar v)

let set_int t key v = set t key (Int v)
let set_float t key v = set t key (Float v)

let counter t key =
  match Hashtbl.find_opt t.tbl key with
  | Some (Counter c) -> c
  | Some (Scalar _) | None ->
    let c = Atomic.make 0 in
    if not (Hashtbl.mem t.tbl key) then t.order <- key :: t.order;
    Hashtbl.replace t.tbl key (Counter c);
    c

let incr c = Atomic.incr c
let add c n = ignore (Atomic.fetch_and_add c n)
let counter_value c = Atomic.get c

let read = function Scalar v -> v | Counter c -> Int (Atomic.get c)
let find t key = Option.map read (Hashtbl.find_opt t.tbl key)

let get_int t key =
  match find t key with
  | Some (Int v) -> v
  | Some (Float v) -> int_of_float v
  | None -> 0

let to_list t = List.rev_map (fun key -> (key, read (Hashtbl.find t.tbl key))) t.order
let length t = List.length t.order

let escape_key key =
  (* Keys are machine-generated dotted paths, but stay safe. *)
  String.concat "\\\"" (String.split_on_char '"' key)

let to_json t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{";
  List.iteri
    (fun i (key, v) ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b (Printf.sprintf {|"%s":|} (escape_key key));
      match v with
      | Int n -> Buffer.add_string b (string_of_int n)
      | Float x ->
        if Float.is_finite x then Buffer.add_string b (Printf.sprintf "%.6g" x)
        else Buffer.add_string b "null")
    (to_list t);
  Buffer.add_string b "}\n";
  Buffer.contents b

let pp fmt t =
  List.iter
    (fun (key, v) ->
      match v with
      | Int n -> Format.fprintf fmt "%s = %d@." key n
      | Float x -> Format.fprintf fmt "%s = %g@." key x)
    (to_list t)

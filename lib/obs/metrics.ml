type value = Int of int | Float of float

type t = {
  tbl : (string, value) Hashtbl.t;
  mutable order : string list; (* reversed insertion order *)
}

let create () = { tbl = Hashtbl.create 64; order = [] }

let set t key v =
  if not (Hashtbl.mem t.tbl key) then t.order <- key :: t.order;
  Hashtbl.replace t.tbl key v

let set_int t key v = set t key (Int v)
let set_float t key v = set t key (Float v)

let find t key = Hashtbl.find_opt t.tbl key

let get_int t key =
  match find t key with
  | Some (Int v) -> v
  | Some (Float v) -> int_of_float v
  | None -> 0

let to_list t = List.rev_map (fun key -> (key, Hashtbl.find t.tbl key)) t.order
let length t = List.length t.order

let escape_key key =
  (* Keys are machine-generated dotted paths, but stay safe. *)
  String.concat "\\\"" (String.split_on_char '"' key)

let to_json t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{";
  List.iteri
    (fun i (key, v) ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b (Printf.sprintf {|"%s":|} (escape_key key));
      match v with
      | Int n -> Buffer.add_string b (string_of_int n)
      | Float x ->
        if Float.is_finite x then Buffer.add_string b (Printf.sprintf "%.6g" x)
        else Buffer.add_string b "null")
    (to_list t);
  Buffer.add_string b "}\n";
  Buffer.contents b

let pp fmt t =
  List.iter
    (fun (key, v) ->
      match v with
      | Int n -> Format.fprintf fmt "%s = %d@." key n
      | Float x -> Format.fprintf fmt "%s = %g@." key x)
    (to_list t)

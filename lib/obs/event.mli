(** Typed trace events and their bounded sink.

    The paper's argument is quantitative — message counts per agreement,
    leader-core load, saturation points — so the simulator's story of a
    run must be machine-readable, not a ring of strings. Every
    observable action (a boundary-crossing send, its delivery, a
    collapsed-role self-delivery, a timer firing, a span of core
    occupancy, a protocol phase transition) becomes one typed event in a
    bounded ring, exportable as JSON-lines or as a Chrome trace-event
    file (loadable in [ui.perfetto.dev], one track per core, with flow
    arrows linking each send to its delivery). *)

type kind =
  | Send of { src : int; dst : int; seq : int }
      (** Node [src] handed message [seq] to the channel towards [dst].
          [seq] is machine-wide unique and links the matching [Recv]. *)
  | Recv of { src : int; dst : int; seq : int }
      (** Message [seq] from [src] was delivered to [dst] (after
          reception and handler costs were charged). *)
  | Self_deliver of { node : int }
      (** A collapsed-role local delivery: [node] sent to itself,
          skipping the message layer but occupying its core. *)
  | Timer of { node : int }  (** A timer armed by [node] fired. *)
  | Cpu_busy of { dur : int }
      (** The core was occupied for [dur] ns ending at the event
          time + 0 (the event's [time] is the span's start). *)
  | Phase of { node : int; phase : string }
      (** A protocol phase transition on [node] (election, leadership
          adoption, acceptor change, ...). *)
  | Fault of { node : int; fault : string }
      (** The nemesis acted on [node]: crash, pause, a dropped or
          duplicated message, ... — [fault] names the action. *)
  | Recover of { node : int }
      (** [node] restarted from durable state and is rejoining. *)

type t = {
  time : int;  (** Simulated time (ns) of the event (span start for {!Cpu_busy}). *)
  core : int;  (** Core (= Perfetto track) the event belongs to. *)
  label : string;  (** Free-form annotation: message kind, phase name, ... *)
  kind : kind;
}

val kind_name : t -> string
(** [kind_name e] is a short tag: "send", "recv", "self", "timer",
    "busy", "phase", "fault" or "recover". *)

val pp : Format.formatter -> t -> unit
(** One-line human rendering. *)

(** {1 Bounded sink} *)

type ring
(** A bounded FIFO of events; when full, the oldest are dropped (their
    number is reported by {!dropped}). *)

val create_ring : ?capacity:int -> unit -> ring
(** [create_ring ~capacity ()] is an empty ring retaining at most
    [capacity] events (default 262144). Raises [Invalid_argument] on a
    non-positive capacity. *)

val emit : ring -> t -> unit
(** [emit r e] appends [e], evicting the oldest event when full. *)

val events : ring -> t list
(** [events r] is the retained events, oldest first. *)

val length : ring -> int
(** [length r] is the number of retained events. *)

val dropped : ring -> int
(** [dropped r] is how many events were evicted due to capacity. *)

val clear : ring -> unit
(** [clear r] discards all events and resets the dropped counter. *)

(** {1 Exporters} *)

val to_jsonl : ring -> string
(** [to_jsonl r] renders one JSON object per line per event, oldest
    first — greppable and streamable. *)

val to_chrome : ring -> string
(** [to_chrome r] renders a Chrome trace-event JSON array: one thread
    (track) per core, named via metadata events; [Cpu_busy] spans as
    complete ("X") events; sends and deliveries as instants joined by
    flow arrows ("s"/"f" events sharing the message's [seq] id);
    timestamps in microseconds. Load the file in [chrome://tracing] or
    [ui.perfetto.dev] to follow a commit leader → acceptor → learners. *)

type kind =
  | Send of { src : int; dst : int; seq : int }
  | Recv of { src : int; dst : int; seq : int }
  | Self_deliver of { node : int }
  | Timer of { node : int }
  | Cpu_busy of { dur : int }
  | Phase of { node : int; phase : string }
  | Fault of { node : int; fault : string }
  | Recover of { node : int }

type t = { time : int; core : int; label : string; kind : kind }

let kind_name e =
  match e.kind with
  | Send _ -> "send"
  | Recv _ -> "recv"
  | Self_deliver _ -> "self"
  | Timer _ -> "timer"
  | Cpu_busy _ -> "busy"
  | Phase _ -> "phase"
  | Fault _ -> "fault"
  | Recover _ -> "recover"

let pp fmt e =
  Format.fprintf fmt "[%dns core%d] %s" e.time e.core (kind_name e);
  (match e.kind with
   | Send { src; dst; seq } | Recv { src; dst; seq } ->
     Format.fprintf fmt " %d->%d #%d" src dst seq
   | Self_deliver { node } | Timer { node } -> Format.fprintf fmt " n%d" node
   | Cpu_busy { dur } -> Format.fprintf fmt " %dns" dur
   | Phase { node; phase } -> Format.fprintf fmt " n%d %s" node phase
   | Fault { node; fault } -> Format.fprintf fmt " n%d %s" node fault
   | Recover { node } -> Format.fprintf fmt " n%d" node);
  if e.label <> "" then Format.fprintf fmt " (%s)" e.label

(* ----- bounded sink ------------------------------------------------------ *)

type ring = {
  capacity : int;
  mutable items : t array;
  mutable start : int;
  mutable count : int;
  mutable evicted : int;
}

let dummy = { time = 0; core = 0; label = ""; kind = Timer { node = 0 } }

let create_ring ?(capacity = 262_144) () =
  if capacity <= 0 then invalid_arg "Event.create_ring: capacity must be positive";
  { capacity; items = [||]; start = 0; count = 0; evicted = 0 }

let emit r e =
  if Array.length r.items = 0 then r.items <- Array.make r.capacity dummy;
  if r.count < r.capacity then begin
    r.items.((r.start + r.count) mod r.capacity) <- e;
    r.count <- r.count + 1
  end
  else begin
    r.items.(r.start) <- e;
    r.start <- (r.start + 1) mod r.capacity;
    r.evicted <- r.evicted + 1
  end

let events r = List.init r.count (fun i -> r.items.((r.start + i) mod r.capacity))
let length r = r.count
let dropped r = r.evicted

let clear r =
  r.start <- 0;
  r.count <- 0;
  r.evicted <- 0

let iter r f =
  for i = 0 to r.count - 1 do
    f r.items.((r.start + i) mod r.capacity)
  done

(* ----- exporters --------------------------------------------------------- *)

(* Labels are machine-generated (message kinds, phase names) but escape
   defensively so the output is always valid JSON. *)
let add_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let to_jsonl r =
  let b = Buffer.create (64 * (1 + length r)) in
  iter r (fun e ->
      Buffer.add_string b
        (Printf.sprintf {|{"ts":%d,"core":%d,"ev":"%s"|} e.time e.core (kind_name e));
      (match e.kind with
       | Send { src; dst; seq } | Recv { src; dst; seq } ->
         Buffer.add_string b (Printf.sprintf {|,"src":%d,"dst":%d,"seq":%d|} src dst seq)
       | Self_deliver { node } | Timer { node } ->
         Buffer.add_string b (Printf.sprintf {|,"node":%d|} node)
       | Cpu_busy { dur } -> Buffer.add_string b (Printf.sprintf {|,"dur":%d|} dur)
       | Phase { node; phase } ->
         Buffer.add_string b (Printf.sprintf {|,"node":%d,"phase":|} node);
         add_json_string b phase
       | Fault { node; fault } ->
         Buffer.add_string b (Printf.sprintf {|,"node":%d,"fault":|} node);
         add_json_string b fault
       | Recover { node } ->
         Buffer.add_string b (Printf.sprintf {|,"node":%d|} node));
      if e.label <> "" then begin
        Buffer.add_string b {|,"label":|};
        add_json_string b e.label
      end;
      Buffer.add_string b "}\n");
  Buffer.contents b

(* Chrome trace-event format. Timestamps are microseconds (floats);
   every record carries pid 0 and tid = core so Perfetto renders one
   track per core. A send/recv pair additionally emits a flow start /
   flow finish sharing the message seq as id, which Perfetto draws as an
   arrow between the two tracks. *)
let to_chrome r =
  let b = Buffer.create (128 * (8 + length r)) in
  Buffer.add_string b "[";
  let first = ref true in
  let record s =
    if !first then first := false else Buffer.add_string b ",\n";
    Buffer.add_string b s
  in
  let us ns = Printf.sprintf "%.3f" (float_of_int ns /. 1000.) in
  (* Track-name metadata for every core that appears. *)
  let cores = Hashtbl.create 16 in
  iter r (fun e -> Hashtbl.replace cores e.core ());
  Hashtbl.fold (fun c () acc -> c :: acc) cores []
  |> List.sort compare
  |> List.iter (fun c ->
         record
           (Printf.sprintf
              {|{"name":"thread_name","ph":"M","pid":0,"tid":%d,"args":{"name":"core %d"}}|}
              c c));
  let name_of e fallback = if e.label <> "" then e.label else fallback in
  let escaped s =
    let eb = Buffer.create (String.length s + 2) in
    add_json_string eb s;
    Buffer.contents eb
  in
  iter r (fun e ->
      match e.kind with
      | Send { src; dst; seq } ->
        record
          (Printf.sprintf
             {|{"name":%s,"cat":"send","ph":"i","s":"t","ts":%s,"pid":0,"tid":%d,"args":{"src":%d,"dst":%d,"seq":%d}}|}
             (escaped (name_of e "send")) (us e.time) e.core src dst seq);
        record
          (Printf.sprintf
             {|{"name":"m%d","cat":"msg","ph":"s","id":%d,"ts":%s,"pid":0,"tid":%d}|}
             seq seq (us e.time) e.core)
      | Recv { src; dst; seq } ->
        record
          (Printf.sprintf
             {|{"name":%s,"cat":"recv","ph":"i","s":"t","ts":%s,"pid":0,"tid":%d,"args":{"src":%d,"dst":%d,"seq":%d}}|}
             (escaped (name_of e "recv")) (us e.time) e.core src dst seq);
        record
          (Printf.sprintf
             {|{"name":"m%d","cat":"msg","ph":"f","bp":"e","id":%d,"ts":%s,"pid":0,"tid":%d}|}
             seq seq (us e.time) e.core)
      | Self_deliver { node } ->
        record
          (Printf.sprintf
             {|{"name":%s,"cat":"self","ph":"i","s":"t","ts":%s,"pid":0,"tid":%d,"args":{"node":%d}}|}
             (escaped (name_of e "self-deliver")) (us e.time) e.core node)
      | Timer { node } ->
        record
          (Printf.sprintf
             {|{"name":%s,"cat":"timer","ph":"i","s":"t","ts":%s,"pid":0,"tid":%d,"args":{"node":%d}}|}
             (escaped (name_of e "timer")) (us e.time) e.core node)
      | Cpu_busy { dur } ->
        record
          (Printf.sprintf
             {|{"name":"busy","cat":"cpu","ph":"X","ts":%s,"dur":%s,"pid":0,"tid":%d}|}
             (us e.time) (us dur) e.core)
      | Phase { node; phase } ->
        record
          (Printf.sprintf
             {|{"name":%s,"cat":"phase","ph":"i","s":"p","ts":%s,"pid":0,"tid":%d,"args":{"node":%d}}|}
             (escaped phase) (us e.time) e.core node)
      | Fault { node; fault } ->
        record
          (Printf.sprintf
             {|{"name":%s,"cat":"fault","ph":"i","s":"p","ts":%s,"pid":0,"tid":%d,"args":{"node":%d}}|}
             (escaped fault) (us e.time) e.core node)
      | Recover { node } ->
        record
          (Printf.sprintf
             {|{"name":%s,"cat":"fault","ph":"i","s":"p","ts":%s,"pid":0,"tid":%d,"args":{"node":%d}}|}
             (escaped (name_of e "recover")) (us e.time) e.core node));
  Buffer.add_string b "]\n";
  Buffer.contents b

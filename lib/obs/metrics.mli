(** A small metrics registry: named scalar measurements of one run.

    The runner fills one registry per experiment (per-node message
    counts split by measurement window, per-core utilization, channel
    back-pressure totals, ...) so the CLI and benchmarks can dump every
    number the paper's tables rest on without growing [Runner.result]
    a field per metric. Keys keep insertion order; setting an existing
    key overwrites it in place. *)

type value = Int of int | Float of float

type t
(** A mutable registry. *)

type counter
(** A domain-safe monotonic counter bound to one key: an [Atomic.t]
    that any domain may increment without tearing. The registry's other
    operations (registration, [set_int], reads) touch a plain [Hashtbl]
    and stay single-domain: register every counter {e before} spawning
    the domains that increment it, and read the registry after they are
    joined (or accept slightly stale counts). *)

val create : unit -> t
(** [create ()] is an empty registry. *)

val set_int : t -> string -> int -> unit
(** [set_int t key v] binds [key] to [Int v]. *)

val set_float : t -> string -> float -> unit
(** [set_float t key v] binds [key] to [Float v]. *)

val counter : t -> string -> counter
(** [counter t key] is the counter bound to [key], creating it at zero
    (and claiming [key]) on first use. A scalar previously bound to
    [key] is replaced. Call from the registry-owning domain only. *)

val incr : counter -> unit
(** [incr c] atomically adds one. Safe from any domain. *)

val add : counter -> int -> unit
(** [add c n] atomically adds [n]. Safe from any domain. *)

val counter_value : counter -> int
(** [counter_value c] is the current count (atomic load). *)

val find : t -> string -> value option
(** [find t key] is the current binding of [key], if any. *)

val get_int : t -> string -> int
(** [get_int t key] is the integer bound to [key]; [0] when unbound,
    truncating when a float is bound. *)

val to_list : t -> (string * value) list
(** [to_list t] is every binding in insertion order. *)

val length : t -> int
(** [length t] is the number of bindings. *)

val to_json : t -> string
(** [to_json t] is one flat JSON object, keys in insertion order. *)

val pp : Format.formatter -> t -> unit
(** [pp fmt t] prints one [key = value] line per binding. *)

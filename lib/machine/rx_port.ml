module Sim = Ci_engine.Sim

type t = {
  cpu : Cpu.t;
  recv_cost : int;
  handler_cost : int;
  budget : int;
  inbox : (unit -> unit) Queue.t;
  mutable draining : bool;
  mutable groups : int;
  mutable delivered : int;
}

let create ~cpu ~recv_cost ~handler_cost ~budget =
  if budget <= 0 then invalid_arg "Rx_port.create: budget must be positive";
  {
    cpu;
    recv_cost;
    handler_cost;
    budget;
    inbox = Queue.create ();
    draining = false;
    groups = 0;
    delivered = 0;
  }

(* One drain pass: charge the reception cost once, then take whatever
   accumulated in the inbox (up to the budget) and charge its combined
   handler work in a single stretch. Messages arriving while the
   reception charge is in progress join the same group — that backlog
   absorption is the amortization a vectored read provides. *)
let rec drain p =
  Cpu.exec p.cpu ~cost:p.recv_cost (fun () ->
      p.groups <- p.groups + 1;
      let k = min p.budget (Queue.length p.inbox) in
      let fins = Array.make k (fun () -> ()) in
      for i = 0 to k - 1 do
        fins.(i) <- Queue.pop p.inbox
      done;
      Cpu.exec p.cpu ~cost:(k * p.handler_cost) (fun () ->
          p.delivered <- p.delivered + k;
          Array.iter (fun fin -> fin ()) fins;
          if Queue.is_empty p.inbox then p.draining <- false else drain p))

let enqueue p fin =
  Queue.push fin p.inbox;
  if not p.draining then begin
    p.draining <- true;
    drain p
  end

let groups p = p.groups
let delivered p = p.delivered

(** Point-to-point bounded message queue.

    Models one direction of a QC-libtask channel pair (Section 6 of the
    paper): a single-producer single-consumer queue with a fixed number
    of slots. Writing charges the {e transmission} cost to the sender's
    core; the message becomes visible to the receiver one {e propagation}
    delay later; dequeuing charges the reception (+ handler) cost to the
    receiver's core; and the freed slot becomes visible to the sender
    another propagation delay after the dequeue completes — which is how
    the paper derives its [latency ≃ 2·trans + 2·prop] ping formula for
    a one-slot queue.

    Flow control is credit-based: the sender holds one credit per free
    slot; a full queue blocks further transmissions (the outbox) until a
    credit returns. *)

type 'a t
(** A unidirectional channel carrying values of type ['a]. *)

val create :
  ?port:Rx_port.t ->
  Ci_engine.Sim.t ->
  capacity:int ->
  prop:Ci_engine.Sim_time.t ->
  send_cost:Ci_engine.Sim_time.t ->
  recv_cost:Ci_engine.Sim_time.t ->
  src_cpu:Cpu.t ->
  dst_cpu:Cpu.t ->
  deliver:(seq:int -> 'a -> unit) ->
  'a t
(** [create sim ~capacity ~prop ~send_cost ~recv_cost ~src_cpu ~dst_cpu
    ~deliver] is a channel. [deliver ~seq v] is invoked on the receiver
    side after the reception cost has been charged, one message at a
    time, in send order, with the sequence tag the message was sent
    under. [capacity] must be positive. When [port] is given, reception
    costs are charged through the coalescing port (which may share one
    reception charge across several queued messages, possibly from
    other channels feeding the same port) instead of [recv_cost];
    credit return and delivery order per channel are unchanged. *)

val send : 'a t -> seq:int -> 'a -> unit
(** [send t ~seq v] queues [v] for transmission, tagged with the
    caller's sequence number [seq] (carried unboxed alongside the
    message and handed back to [deliver]). Returns immediately; the
    transmission cost is charged asynchronously on the sender's core,
    and delivery follows after propagation and reception. *)

val set_delay_fn : 'a t -> (Ci_engine.Sim_time.t -> Ci_engine.Sim_time.t) option -> unit
(** [set_delay_fn t f] installs a fault-injection delay: each message
    propagates for [prop + f now] where [now] is its
    transmission-completion instant ([None], the default, restores
    plain [prop] with zero overhead). Delivery order remains FIFO even
    across a window edge — extra delay can bunch deliveries, never
    reorder them. *)

val sent : 'a t -> int
(** [sent t] is how many messages have completed transmission. *)

val delivered : 'a t -> int
(** [delivered t] is how many messages have been delivered. *)

val blocked_events : 'a t -> int
(** [blocked_events t] counts sends that found no free slot and had to
    wait for a credit — a measure of back-pressure. *)

val outbox_length : 'a t -> int
(** [outbox_length t] is the number of messages waiting for
    transmission (queued behind slot exhaustion). *)

val occupancy_peak : 'a t -> int
(** [occupancy_peak t] is the high-water mark of slots simultaneously
    in use ([capacity - credits]) — how close the queue came to
    saturating. *)

val outbox_peak : 'a t -> int
(** [outbox_peak t] is the high-water mark of {!outbox_length} — the
    worst backlog that accumulated behind slot exhaustion. *)

val credit_stall_ns : 'a t -> Ci_engine.Sim_time.t
(** [credit_stall_ns t] is the cumulative time the outbox head spent
    waiting for a slot credit to return — the channel's contribution to
    sender-side back-pressure (includes any stall still in progress). *)

(** The simulated many-core machine: cores, channels and nodes.

    A machine hosts {e nodes} (actors): protocol replicas, clients, load
    managers. Each node is pinned to a core. Nodes exchange messages of
    a single type ['msg] over lazily created point-to-point bounded
    channels; every boundary-crossing message charges transmission time
    to the sender's core and reception + handler time to the receiver's
    core, with socket-dependent propagation in between. Messages a node
    sends to itself are free local calls, mirroring collapsed-role
    deployments where co-located Paxos roles skip the message layer. *)

type 'msg t
(** A machine whose nodes exchange values of type ['msg]. *)

type 'msg node
(** A node (actor) on some core of the machine. *)

val create :
  ?seed:int -> topology:Topology.t -> params:Net_params.t -> unit -> 'msg t
(** [create ~seed ~topology ~params ()] is a machine with no nodes.
    [seed] (default 42) determines every random draw made through
    [rng]. *)

val sim : 'msg t -> Ci_engine.Sim.t
(** [sim t] is the machine's simulator (clock and event queue). *)

val rng : 'msg t -> Ci_engine.Rng.t
(** [rng t] is the machine's deterministic random stream. *)

val topology : 'msg t -> Topology.t
(** [topology t] is the machine's core layout. *)

val params : 'msg t -> Net_params.t
(** [params t] is the machine's network cost parameters. *)

val now : 'msg t -> Ci_engine.Sim_time.t
(** [now t] is the current simulated time. *)

val add_node : 'msg t -> core:int -> 'msg node
(** [add_node t ~core] creates a node pinned to [core] (several nodes
    may share a core; they then compete for it). Node ids are assigned
    sequentially from 0. The node drops incoming messages until
    [set_handler]. *)

val node_id : 'msg node -> int
(** [node_id n] is the node's identifier. *)

val core_of : 'msg node -> int
(** [core_of n] is the core hosting [n]. *)

val machine_of : 'msg node -> 'msg t
(** [machine_of n] is the machine hosting [n]. *)

val set_handler : 'msg node -> (src:int -> 'msg -> unit) -> unit
(** [set_handler n f] installs the message handler. [f ~src msg] runs on
    [n]'s core after reception and handler costs have been charged. *)

val send : 'msg node -> dst:int -> 'msg -> unit
(** [send n ~dst msg] transmits [msg] to node [dst]. Costs are charged
    as described above; sending to [node_id n] itself skips the message
    layer but still charges the handler cost (collapsed roles avoid the
    channel, not the processing). Self-sends are counted under the
    distinct {!self_delivered} counters — never under the
    boundary-crossing message counters — and emit a [Self_deliver]
    trace event when an observer is installed. *)

val send_many : 'msg node -> dsts:int list -> 'msg -> unit
(** [send_many n ~dsts msg] sends [msg] to each destination in order
    (distinct unicast transmissions — the paper's framework has no
    hardware multicast). *)

val after : 'msg node -> delay:Ci_engine.Sim_time.t -> (unit -> unit) -> unit
(** [after n ~delay f] schedules [f] at [now + delay]. Timers charge no
    core time by themselves; work done inside [f] (sends, [compute])
    does. *)

type timer
(** A handle for one pending {!after_cancel} timer. *)

val after_cancel :
  'msg node -> delay:Ci_engine.Sim_time.t -> (unit -> unit) -> timer
(** [after_cancel n ~delay f] is {!after} but returns a handle with
    which the timer can be revoked before it fires. A cancelled timer
    never runs [f] and emits no trace event. *)

val cancel_timer : 'msg node -> timer -> unit
(** [cancel_timer n timer] revokes a pending timer in O(1). Cancelling
    a fired or already-cancelled timer is a no-op. *)

val compute : 'msg node -> cost:Ci_engine.Sim_time.t -> (unit -> unit) -> unit
(** [compute n ~cost f] charges [cost] of work on [n]'s core, then runs
    [f]. *)

val note_phase : 'msg node -> phase:string -> unit
(** [note_phase n ~phase] records a protocol phase transition (election
    started, leadership adopted, acceptor switched, ...) as a typed
    trace event on [n]'s core. A no-op when no observer is installed. *)

val env : 'msg node -> 'msg Ci_engine.Node_env.t
(** [env n] is the node-environment view of [n]: the simulator backend
    of the {!Ci_engine.Node_env} seam protocol cores are written
    against. Sends, timers and the clock go through [n]'s machine
    (charging the usual costs); [env n].rng is the machine's shared
    stream, so [Rng.split] draws made through the environment advance
    it exactly as direct splits did. *)

val slow_core :
  'msg t ->
  core:int ->
  from_:Ci_engine.Sim_time.t ->
  until_:Ci_engine.Sim_time.t ->
  factor:float ->
  unit
(** [slow_core t ~core ~from_ ~until_ ~factor] injects a slowdown window
    on [core] ([factor = infinity] crashes it for the window). *)

val cpu : 'msg t -> core:int -> Cpu.t
(** [cpu t ~core] exposes the core's serial resource (for metrics). *)

(** {1 Fault injection}

    The nemesis hooks ({!Ci_faults} schedules compile onto these). All
    of them are strictly pay-per-use: with no filter installed and no
    node down, the send and delivery paths cost one integer compare
    extra and the event schedule is unchanged. *)

val set_node_down : 'msg node -> bool -> unit
(** [set_node_down n true] marks [n] crashed: inbound deliveries and
    queued self-deliveries are counted into {!fault_dropped} instead of
    reaching the handler (messages already in flight to a dead process
    are lost). The caller is responsible for silencing the node's own
    activity (its timers and sends) — nothing runs on a dead node.
    [set_node_down n false] reopens delivery; emits [Fault]/[Recover]
    trace events on the transitions when an observer is installed. *)

val node_is_down : 'msg node -> bool

type link_action = Deliver | Drop | Duplicate

val set_link_filter :
  'msg t -> src:int -> dst:int -> (now:Ci_engine.Sim_time.t -> link_action) option -> unit
(** [set_link_filter t ~src ~dst (Some f)] consults [f ~now] for every
    boundary-crossing [src]->[dst] send: [Deliver] passes the message
    through, [Drop] loses it at the sender's NIC (no transmission
    charge, counted in {!fault_dropped}, [Fault] trace event),
    [Duplicate] transmits it twice (two distinct seqs). [None] removes
    the filter. One filter per ordered pair; installing replaces. *)

val set_link_delay :
  'msg t -> src:int -> dst:int ->
  (Ci_engine.Sim_time.t -> Ci_engine.Sim_time.t) option -> unit
(** [set_link_delay t ~src ~dst (Some f)] adds [f now] ns of propagation
    to each [src]->[dst] message at its transmission-completion instant
    (see {!Channel.set_delay_fn}; FIFO order preserved). Creates the
    channel if it does not exist yet. *)

val fault_dropped : 'msg t -> int
(** [fault_dropped t] counts messages lost to link filters or down
    nodes. *)

val fault_duplicated : 'msg t -> int
(** [fault_duplicated t] counts messages a link filter duplicated. *)

val n_nodes : 'msg t -> int
(** [n_nodes t] is how many nodes exist. *)

val messages_sent : 'msg t -> node:int -> int
(** [messages_sent t ~node] is how many boundary-crossing messages
    [node] has issued. *)

val messages_received : 'msg t -> node:int -> int
(** [messages_received t ~node] is how many boundary-crossing messages
    [node] has been delivered. *)

val total_messages : 'msg t -> int
(** [total_messages t] is the machine-wide count of boundary-crossing
    messages delivered. *)

val messages_sent_total : 'msg t -> int
(** [messages_sent_total t] is the machine-wide count of
    boundary-crossing messages handed to channels (it may exceed
    {!total_messages} while messages are in flight). *)

val self_delivered : 'msg t -> node:int -> int
(** [self_delivered t ~node] is how many self-sends [node] has executed
    (collapsed-role local deliveries, excluded from the
    boundary-crossing counters). *)

val self_delivered_total : 'msg t -> int
(** [self_delivered_total t] is the machine-wide count of executed
    self-deliveries. *)

val io_snapshot : 'msg t -> (int * int * int) array
(** [io_snapshot t] is, per node id, the current
    [(sent, received, self_delivered)] counters — cheap to sample at
    measurement-window boundaries. *)

type channel_stats = {
  ch_count : int;  (** Channels created so far. *)
  ch_blocked : int;  (** Total sends that found no free slot. *)
  ch_stall_ns : int;  (** Total outbox time spent waiting for credits. *)
  ch_occupancy_peak : int;  (** Worst slot occupancy over all channels. *)
  ch_outbox_peak : int;  (** Worst outbox backlog over all channels. *)
}

val channel_totals : 'msg t -> channel_stats
(** [channel_totals t] aggregates back-pressure metrics over every
    channel created so far. *)

val coalescing_totals : 'msg t -> int * int
(** [coalescing_totals t] is [(groups, messages)] summed over every
    coalescing receive port: how many reception charges were paid and
    how many messages they covered. [(0, 0)] unless
    [params.coalesce > 1] (see {!Net_params.t}). *)

val set_observer :
  ?msg_label:('msg -> string) -> 'msg t -> Ci_obs.Event.ring option -> unit
(** [set_observer ~msg_label t (Some ring)] starts recording typed trace
    events into [ring]: sends, deliveries, self-deliveries, timers,
    per-core busy spans and phase transitions. [msg_label] (default:
    constant [""]) annotates message events — pass [Wire.kind] to label
    them with constructor names. [set_observer t None] stops recording
    and detaches the per-core busy hooks. *)

val set_tracer :
  'msg t -> (time:Ci_engine.Sim_time.t -> src:int -> dst:int -> 'msg -> unit) option -> unit
(** [set_tracer t f] installs (or clears) a hook invoked at every
    boundary-crossing delivery, after costs are charged and before the
    handler runs. For debugging and trace-driven tests. *)

val run_until : 'msg t -> time:Ci_engine.Sim_time.t -> unit
(** [run_until t ~time] advances the simulation to [time]. *)

val run : ?max_events:int -> 'msg t -> unit
(** [run t] runs until the event queue drains (or [max_events]). *)

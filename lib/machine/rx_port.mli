(** Coalescing receive port.

    Models a vectored read ([epoll] + [readv]): when several messages
    destined for the same node have queued up — across any number of
    incoming channels — the receiver dequeues up to a {e budget} of
    them in one reception charge, instead of paying the per-message
    reception cost each time. Protocol handler work remains charged per
    message: coalescing amortizes the transport syscall, not the
    application logic.

    A port serializes receptions for one node: while a drain pass is in
    progress, newly arriving messages join the pending group and are
    picked up when the pass completes. With at most one message per
    pass the cost sequence degenerates to the uncoalesced
    [recv + handler] charge. *)

type t
(** A receive port bound to one node's core. *)

val create : cpu:Cpu.t -> recv_cost:int -> handler_cost:int -> budget:int -> t
(** [create ~cpu ~recv_cost ~handler_cost ~budget] is a port charging
    [recv_cost] once per drain group of up to [budget] messages, plus
    [handler_cost] per message. [budget] must be positive. *)

val enqueue : t -> (unit -> unit) -> unit
(** [enqueue p fin] hands one received message's completion action to
    the port. [fin] runs on the port's core after the group's reception
    and handler costs have been charged; completions run in arrival
    order. *)

val groups : t -> int
(** [groups p] is how many drain groups (reception charges) have been
    paid so far. *)

val delivered : t -> int
(** [delivered p] is how many message completions have run. The ratio
    [delivered / groups] is the achieved coalescing factor. *)

(** Network cost parameters.

    The paper's Section 3 distinguishes two delays: the {e transmission}
    delay (cycles the sending or receiving core spends putting a message
    on / taking it off the medium — this consumes core time and is the
    scalability bottleneck on a many-core) and the {e propagation} delay
    (wire/coherence time between cores — this consumes no core time).
    The presets below encode the paper's measured values: on the
    many-core both are ≈ 0.5 µs (ratio ≈ 1); on a LAN transmission is
    2 µs but propagation is 135 µs (ratio ≈ 0.015). *)

type t = {
  send_cost : Ci_engine.Sim_time.t;
      (** Core time charged to the sender per message (transmission). *)
  recv_cost : Ci_engine.Sim_time.t;
      (** Core time charged to the receiver per message dequeue. *)
  handler_cost : Ci_engine.Sim_time.t;
      (** Core time charged to the receiver for protocol processing of
          one message, on top of [recv_cost]. *)
  prop_intra : Ci_engine.Sim_time.t;
      (** Propagation delay between cores on the same socket. *)
  prop_inter : Ci_engine.Sim_time.t;
      (** Propagation delay between cores on different sockets. *)
  queue_slots : int;
      (** Capacity of each unidirectional point-to-point queue
          (QC-libtask uses seven 128-byte slots by default). *)
  coalesce : int;
      (** Receive-side coalescing budget: up to this many queued
          messages destined for the same node drain under a single
          [recv_cost] charge (modeling a vectored read), with
          [handler_cost] still charged per message. [1] (the default in
          every preset) disables coalescing and reproduces the paper's
          per-message reception cost exactly. *)
}

val multicore : t
(** Calibrated to the paper's 48-core Opteron measurements:
    transmission 0.5 µs, propagation ≈ 0.55 µs on average (0.35 µs
    intra-socket, 0.65 µs inter-socket), 7 queue slots. *)

val lan : t
(** Calibrated to the paper's Section 3 LAN channel measurements:
    transmission 2 µs, propagation 135 µs. *)

val lan_wide : t
(** The end-to-end LAN deployment of Figure 2: the paper's throughput
    curve there implies a per-request latency in the milliseconds (TCP
    and kernel scheduling on top of the raw channel), so this preset
    raises propagation to 1.3 ms. Use it to reproduce Figure 2's
    "Multi-Paxos LAN keeps scaling to a hundred clients" curve. *)

val rdma : t
(** The paper's concluding outlook: rack-scale RDMA — "multiple
    machines operate on a common address space, but there is no cache
    coherence protocol between them". One-sided writes cost little core
    time (300 ns) and cross-machine propagation is ≈ 2 µs, so the
    trans/prop ratio sits between the many-core and the LAN — the
    regime the paper argues 1Paxos will matter most in. Intra-"socket"
    here means within one machine of the rack. *)

val raw_channel : t -> t
(** [raw_channel t] is [t] with [handler_cost = 0]; used by the
    Section 3 micro-benchmarks where the receiver performs no protocol
    work. *)

val prop : t -> same_socket:bool -> Ci_engine.Sim_time.t
(** [prop t ~same_socket] selects the propagation delay for a core
    pair. *)

val pp : Format.formatter -> t -> unit
(** [pp fmt t] prints the parameter record. *)

module Sim = Ci_engine.Sim

type 'a t = {
  sim : Sim.t;
  capacity : int;
  prop : int;
  send_cost : int;
  recv_cost : int;
  src_cpu : Cpu.t;
  dst_cpu : Cpu.t;
  port : Rx_port.t option;
  deliver : 'a -> unit;
  outbox : 'a Queue.t;
  mutable credits : int;
  mutable sent_count : int;
  mutable delivered_count : int;
  mutable blocked_count : int;
  mutable occupancy_hwm : int; (* max slots simultaneously in use *)
  mutable outbox_hwm : int; (* max messages waiting behind slot exhaustion *)
  mutable stall_since : int option; (* outbox head began waiting for a credit *)
  mutable stall_ns : int; (* cumulative credit-stall time *)
}

let create ?port sim ~capacity ~prop ~send_cost ~recv_cost ~src_cpu ~dst_cpu
    ~deliver =
  if capacity <= 0 then invalid_arg "Channel.create: capacity must be positive";
  {
    sim;
    capacity;
    prop;
    send_cost;
    recv_cost;
    src_cpu;
    dst_cpu;
    port;
    deliver;
    outbox = Queue.create ();
    credits = capacity;
    sent_count = 0;
    delivered_count = 0;
    blocked_count = 0;
    occupancy_hwm = 0;
    outbox_hwm = 0;
    stall_since = None;
    stall_ns = 0;
  }

(* Receiver side: charge the reception cost, then return the slot credit
   (visible to the sender one propagation delay later) and hand the
   message to the application. With a coalescing port, the reception
   charge is paid (and possibly shared) by the port's drain pass; the
   per-channel completion below still runs once per message, in arrival
   order. *)
let rec receive t v =
  let fin () =
    Sim.schedule t.sim ~delay:t.prop (fun () ->
        t.credits <- t.credits + 1;
        (match t.stall_since with
         | Some since ->
           t.stall_ns <- t.stall_ns + (Sim.now t.sim - since);
           t.stall_since <- None
         | None -> ());
        pump t);
    t.delivered_count <- t.delivered_count + 1;
    t.deliver v
  in
  match t.port with
  | None -> Cpu.exec t.dst_cpu ~cost:t.recv_cost fin
  | Some p -> Rx_port.enqueue p fin

(* Sender side: while slots are free, charge the transmission cost for
   the next outbox message; on completion the message propagates to the
   receiver. *)
and pump t =
  while t.credits > 0 && not (Queue.is_empty t.outbox) do
    t.credits <- t.credits - 1;
    let occupied = t.capacity - t.credits in
    if occupied > t.occupancy_hwm then t.occupancy_hwm <- occupied;
    let v = Queue.pop t.outbox in
    Cpu.exec t.src_cpu ~cost:t.send_cost (fun () ->
        t.sent_count <- t.sent_count + 1;
        Sim.schedule t.sim ~delay:t.prop (fun () -> receive t v))
  done;
  if t.credits = 0 && (not (Queue.is_empty t.outbox)) && t.stall_since = None
  then t.stall_since <- Some (Sim.now t.sim)

let send t v =
  if t.credits = 0 then t.blocked_count <- t.blocked_count + 1;
  Queue.push v t.outbox;
  pump t;
  (* Measured after pumping: only messages genuinely waiting behind slot
     exhaustion count, not the transit through the outbox. *)
  let waiting = Queue.length t.outbox in
  if waiting > t.outbox_hwm then t.outbox_hwm <- waiting

let sent t = t.sent_count
let delivered t = t.delivered_count
let blocked_events t = t.blocked_count
let outbox_length t = Queue.length t.outbox
let occupancy_peak t = t.occupancy_hwm
let outbox_peak t = t.outbox_hwm

let credit_stall_ns t =
  match t.stall_since with
  | Some since -> t.stall_ns + (Sim.now t.sim - since)
  | None -> t.stall_ns

module Sim = Ci_engine.Sim

(* Growable FIFO ring holding a message and its machine-wide sequence
   number in parallel arrays (the int stays unboxed — previously each
   hop boxed a [(origin, seq, msg)] tuple plus a [Queue] cell per
   message). A popped slot keeps its payload reference until the slot
   is overwritten by a later push — bounded by capacity, exactly like
   the event queue's lazy slot reuse. *)
type 'a ring = {
  mutable r_seqs : int array;
  mutable r_vals : 'a array;
  mutable r_head : int;
  mutable r_len : int;
}

let ring_create () = { r_seqs = [||]; r_vals = [||]; r_head = 0; r_len = 0 }

let ring_push r ~seq v =
  let cap = Array.length r.r_seqs in
  if r.r_len = cap then begin
    let new_cap = if cap = 0 then 16 else 2 * cap in
    let ns = Array.make new_cap 0 and nv = Array.make new_cap v in
    for i = 0 to r.r_len - 1 do
      let j = (r.r_head + i) mod cap in
      ns.(i) <- r.r_seqs.(j);
      nv.(i) <- r.r_vals.(j)
    done;
    r.r_seqs <- ns;
    r.r_vals <- nv;
    r.r_head <- 0
  end;
  let slot = (r.r_head + r.r_len) mod Array.length r.r_seqs in
  r.r_seqs.(slot) <- seq;
  r.r_vals.(slot) <- v;
  r.r_len <- r.r_len + 1

let ring_head_seq r = r.r_seqs.(r.r_head)
let ring_head_val r = r.r_vals.(r.r_head)

let ring_drop r =
  r.r_head <- (r.r_head + 1) mod Array.length r.r_seqs;
  r.r_len <- r.r_len - 1

type 'a t = {
  sim : Sim.t;
  capacity : int;
  prop : int;
  send_cost : int;
  recv_cost : int;
  src_cpu : Cpu.t;
  dst_cpu : Cpu.t;
  port : Rx_port.t option;
  deliver : seq:int -> 'a -> unit;
  outbox : 'a ring; (* waiting for a slot credit *)
  transit : 'a ring; (* transmission started, not yet arrived *)
  rxq : 'a ring; (* arrived, reception cost being charged *)
  mutable credits : int;
  mutable sent_count : int;
  mutable delivered_count : int;
  mutable blocked_count : int;
  mutable occupancy_hwm : int; (* max slots simultaneously in use *)
  mutable outbox_hwm : int; (* max messages waiting behind slot exhaustion *)
  mutable stall_since : int option; (* outbox head began waiting for a credit *)
  mutable stall_ns : int; (* cumulative credit-stall time *)
  (* Fault injection: extra propagation delay as a function of the
     transmission-completion instant ([None] = the healthy channel,
     zero overhead). Delivery order stays FIFO regardless of the
     function — arrival pops the transit ring head — so a closing delay
     window can not reorder messages, only bunch them. *)
  mutable delay_fn : (int -> int) option;
  (* Per-message work is routed through these preallocated thunks; each
     stage is FIFO per channel (cpu occupations complete in enqueue
     order, propagation is constant), so the message travels through
     the rings above instead of a chain of per-message closures. *)
  mutable tx_done : unit -> unit;
  mutable arrive : unit -> unit;
  mutable rx_done : unit -> unit;
  mutable credit_back : unit -> unit;
}

let nop () = ()

(* Receiver side, final stage: return the slot credit (visible to the
   sender one propagation delay later) and hand the message to the
   application. With a coalescing port, the reception charge is paid
   (and possibly shared) by the port's drain pass; delivery still runs
   once per message, in arrival order. *)
let finish_delivery t ~seq v =
  Sim.schedule t.sim ~delay:t.prop t.credit_back;
  t.delivered_count <- t.delivered_count + 1;
  t.deliver ~seq v

(* Sender side: while slots are free, charge the transmission cost for
   the next outbox message; on completion the message propagates to the
   receiver. *)
let pump t =
  while t.credits > 0 && t.outbox.r_len > 0 do
    t.credits <- t.credits - 1;
    let occupied = t.capacity - t.credits in
    if occupied > t.occupancy_hwm then t.occupancy_hwm <- occupied;
    ring_push t.transit ~seq:(ring_head_seq t.outbox) (ring_head_val t.outbox);
    ring_drop t.outbox;
    Cpu.exec t.src_cpu ~cost:t.send_cost t.tx_done
  done;
  if t.credits = 0 && t.outbox.r_len > 0 && t.stall_since = None then
    t.stall_since <- Some (Sim.now t.sim)

let create ?port sim ~capacity ~prop ~send_cost ~recv_cost ~src_cpu ~dst_cpu
    ~deliver =
  if capacity <= 0 then invalid_arg "Channel.create: capacity must be positive";
  let t =
    {
      sim;
      capacity;
      prop;
      send_cost;
      recv_cost;
      src_cpu;
      dst_cpu;
      port;
      deliver;
      outbox = ring_create ();
      transit = ring_create ();
      rxq = ring_create ();
      credits = capacity;
      sent_count = 0;
      delivered_count = 0;
      blocked_count = 0;
      occupancy_hwm = 0;
      outbox_hwm = 0;
      stall_since = None;
      stall_ns = 0;
      delay_fn = None;
      tx_done = nop;
      arrive = nop;
      rx_done = nop;
      credit_back = nop;
    }
  in
  t.tx_done <-
    (fun () ->
      t.sent_count <- t.sent_count + 1;
      let prop =
        match t.delay_fn with
        | None -> t.prop
        | Some f -> t.prop + f (Sim.now t.sim)
      in
      Sim.schedule t.sim ~delay:prop t.arrive);
  t.arrive <-
    (fun () ->
      let seq = ring_head_seq t.transit and v = ring_head_val t.transit in
      ring_drop t.transit;
      match t.port with
      | None ->
        ring_push t.rxq ~seq v;
        Cpu.exec t.dst_cpu ~cost:t.recv_cost t.rx_done
      | Some p -> Rx_port.enqueue p (fun () -> finish_delivery t ~seq v));
  t.rx_done <-
    (fun () ->
      let seq = ring_head_seq t.rxq and v = ring_head_val t.rxq in
      ring_drop t.rxq;
      finish_delivery t ~seq v);
  t.credit_back <-
    (fun () ->
      t.credits <- t.credits + 1;
      (match t.stall_since with
       | Some since ->
         t.stall_ns <- t.stall_ns + (Sim.now t.sim - since);
         t.stall_since <- None
       | None -> ());
      pump t);
  t

let send t ~seq v =
  if t.credits = 0 then t.blocked_count <- t.blocked_count + 1;
  ring_push t.outbox ~seq v;
  pump t;
  (* Measured after pumping: only messages genuinely waiting behind slot
     exhaustion count, not the transit through the outbox. *)
  if t.outbox.r_len > t.outbox_hwm then t.outbox_hwm <- t.outbox.r_len

let set_delay_fn t f = t.delay_fn <- f

let sent t = t.sent_count
let delivered t = t.delivered_count
let blocked_events t = t.blocked_count
let outbox_length t = t.outbox.r_len
let occupancy_peak t = t.occupancy_hwm
let outbox_peak t = t.outbox_hwm

let credit_stall_ns t =
  match t.stall_since with
  | Some since -> t.stall_ns + (Sim.now t.sim - since)
  | None -> t.stall_ns

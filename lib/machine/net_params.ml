module Sim_time = Ci_engine.Sim_time

type t = {
  send_cost : Sim_time.t;
  recv_cost : Sim_time.t;
  handler_cost : Sim_time.t;
  prop_intra : Sim_time.t;
  prop_inter : Sim_time.t;
  queue_slots : int;
  coalesce : int;
}

let multicore =
  {
    send_cost = Sim_time.ns 500;
    recv_cost = Sim_time.ns 500;
    handler_cost = Sim_time.ns 2450;
    prop_intra = Sim_time.ns 350;
    prop_inter = Sim_time.ns 650;
    queue_slots = 7;
    coalesce = 1;
  }

let lan =
  {
    send_cost = Sim_time.us 2;
    recv_cost = Sim_time.us 2;
    handler_cost = Sim_time.ns 2450;
    prop_intra = Sim_time.us 135;
    prop_inter = Sim_time.us 135;
    queue_slots = 64;
    coalesce = 1;
  }

let lan_wide = { lan with prop_intra = Sim_time.us 1300; prop_inter = Sim_time.us 1300 }

let rdma =
  {
    send_cost = Sim_time.ns 300;
    recv_cost = Sim_time.ns 300;
    handler_cost = Sim_time.ns 2450;
    prop_intra = Sim_time.ns 650;
    prop_inter = Sim_time.us 2;
    queue_slots = 16;
    coalesce = 1;
  }

let raw_channel t = { t with handler_cost = 0 }

let prop t ~same_socket = if same_socket then t.prop_intra else t.prop_inter

let pp fmt t =
  Format.fprintf fmt
    "{send=%a; recv=%a; handler=%a; prop=%a/%a; slots=%d%s}" Sim_time.pp
    t.send_cost Sim_time.pp t.recv_cost Sim_time.pp t.handler_cost Sim_time.pp
    t.prop_intra Sim_time.pp t.prop_inter t.queue_slots
    (if t.coalesce > 1 then Printf.sprintf "; coalesce=%d" t.coalesce else "")

(** A core as a serial resource.

    Every piece of work a core performs — transmitting a message,
    receiving one, running a protocol handler, executing a command —
    occupies the core exclusively for a duration. Work requests queue up
    FIFO behind the core's current occupation, which is exactly the
    saturation mechanism the paper identifies: a leader core that must
    process many messages per agreement becomes the throughput
    bottleneck.

    Slowdown windows model the paper's "slow core" faults (a core
    starved by competing CPU-bound processes). During a window with
    factor [f], work proceeds at [1/f] speed; work spanning a window
    boundary is integrated piecewise, so a core slowed for 100 ms
    resumes full speed afterwards. A crash is a window with
    [factor = infinity]: no progress until the window closes. *)

type t
(** A simulated core. *)

val create : Ci_engine.Sim.t -> id:int -> t
(** [create sim ~id] is an idle core. [id] is echoed in errors and
    metrics. *)

val id : t -> int
(** [id t] is the core's identifier. *)

val add_slowdown :
  t -> from_:Ci_engine.Sim_time.t -> until_:Ci_engine.Sim_time.t -> factor:float -> unit
(** [add_slowdown t ~from_ ~until_ ~factor] makes work cost [factor]
    times more core time within the window. Windows may overlap: the
    largest applicable factor wins. [factor] must be [>= 1.] (or
    [infinity] for a crash window); requires [from_ < until_]. *)

val factor_at : t -> Ci_engine.Sim_time.t -> float
(** [factor_at t time] is the slowdown factor in effect at [time]
    ([1.] when unimpaired). *)

val exec : t -> cost:Ci_engine.Sim_time.t -> (unit -> unit) -> unit
(** [exec t ~cost k] enqueues [cost] nanoseconds of work on the core,
    serialized after all previously enqueued work, and calls [k] when it
    completes. The continuation runs at the completion instant; the cost
    is stretched through any slowdown windows it crosses. *)

val free_at : t -> Ci_engine.Sim_time.t
(** [free_at t] is the earliest instant at which newly enqueued work
    could begin. *)

val busy_total : t -> Ci_engine.Sim_time.t
(** [busy_total t] is the cumulative wall-clock time this core has been
    (or is scheduled to be) occupied, including slowdown stretching.
    Used for utilization metrics. *)

val busy_elapsed : t -> Ci_engine.Sim_time.t
(** [busy_elapsed t] is the occupation that has already elapsed at the
    current instant: {!busy_total} minus the booked-but-future backlog
    ([max 0 (free_at - now)]). Sampling it at two instants yields the
    core's utilization over the interval. *)

val queue_delay : t -> Ci_engine.Sim_time.t
(** [queue_delay t] is [max 0 (free_at t - now)] — how far behind the
    core currently is. *)

val queue_depth : t -> int
(** [queue_depth t] is the number of work items enqueued via {!exec}
    whose completion has not yet fired. *)

val queue_peak : t -> int
(** [queue_peak t] is the high-water mark of {!queue_depth} — the worst
    backlog the core ever accumulated. *)

val slowed_total : t -> Ci_engine.Sim_time.t
(** [slowed_total t] is the cumulative wall-clock occupation that fell
    inside slowdown windows (factor [> 1.]) — how long this core worked
    while impaired. Windows must be installed before the affected work
    is enqueued (fault plans are applied at setup). *)

val set_on_busy : t -> (start:Ci_engine.Sim_time.t -> finish:Ci_engine.Sim_time.t -> unit) option -> unit
(** [set_on_busy t f] installs (or clears) a hook invoked at the end of
    every non-empty occupation span with its bounds — the machine uses
    it to emit per-core busy trace events. *)

module Sim = Ci_engine.Sim
module Rng = Ci_engine.Rng
module Event = Ci_obs.Event

type link_action = Deliver | Drop | Duplicate

type 'msg node = {
  nid : int;
  ncore : int;
  owner : 'msg t;
  mutable handler : src:int -> 'msg -> unit;
  (* Outgoing channels indexed by destination node id: the per-send
     lookup was a [(src, dst)] hashtable probe that boxed a tuple key
     and a [Some] per message. *)
  mutable out : 'msg Channel.t option array;
  mutable down : bool;
      (* Crashed: inbound deliveries and self-deliveries are dropped
         (the process is gone; whatever the network still carries to it
         is lost). Outbound gating is the host's job — a dead process
         sends nothing because nothing runs. *)
}

and 'msg t = {
  sim : Sim.t;
  topo : Topology.t;
  net : Net_params.t;
  cpus : Cpu.t array;
  nodes : (int, 'msg node) Hashtbl.t;
  mutable all_channels : 'msg Channel.t list;
  ports : (int, Rx_port.t) Hashtbl.t; (* coalescing rx port per dst node *)
  (* Per-node I/O counters, dense by node id (ids are sequential). *)
  mutable sent_a : int array;
  mutable recv_a : int array;
  mutable self_a : int array;
  random : Rng.t;
  mutable next_id : int;
  mutable sent_total : int;
  mutable delivered_total : int;
  mutable self_total : int;
  mutable seq : int; (* machine-wide message sequence, links Send to Recv *)
  mutable tracer : (time:int -> src:int -> dst:int -> 'msg -> unit) option;
  mutable obs : Event.ring option;
  mutable msg_label : 'msg -> string;
  (* Fault injection. [n_filters = 0] guards the send hot path: a
     healthy machine takes one integer compare per boundary send and
     never probes the table. *)
  link_filters : (int * int, now:int -> link_action) Hashtbl.t;
  mutable n_filters : int;
  mutable fault_dropped : int; (* messages lost to filters or down nodes *)
  mutable fault_duplicated : int;
}

let create ?(seed = 42) ~topology ~params () =
  let sim = Sim.create () in
  {
    sim;
    topo = topology;
    net = params;
    cpus = Array.init (Topology.n_cores topology) (fun i -> Cpu.create sim ~id:i);
    nodes = Hashtbl.create 64;
    all_channels = [];
    ports = Hashtbl.create 64;
    sent_a = Array.make 64 0;
    recv_a = Array.make 64 0;
    self_a = Array.make 64 0;
    random = Rng.create ~seed;
    next_id = 0;
    sent_total = 0;
    delivered_total = 0;
    self_total = 0;
    seq = 0;
    tracer = None;
    obs = None;
    msg_label = (fun _ -> "");
    link_filters = Hashtbl.create 8;
    n_filters = 0;
    fault_dropped = 0;
    fault_duplicated = 0;
  }

let sim t = t.sim
let rng t = t.random
let topology t = t.topo
let params t = t.net
let now t = Sim.now t.sim

let emit t ~core ~label kind =
  match t.obs with
  | None -> ()
  | Some ring -> Event.emit ring { Event.time = Sim.now t.sim; core; label; kind }

let grow_counters t =
  let cap = Array.length t.sent_a in
  if t.next_id >= cap then begin
    let new_cap = 2 * cap in
    let grow a =
      let n = Array.make new_cap 0 in
      Array.blit a 0 n 0 cap;
      n
    in
    t.sent_a <- grow t.sent_a;
    t.recv_a <- grow t.recv_a;
    t.self_a <- grow t.self_a
  end

let add_node t ~core =
  if core < 0 || core >= Topology.n_cores t.topo then
    invalid_arg (Printf.sprintf "Machine.add_node: core %d out of range" core);
  grow_counters t;
  let node =
    {
      nid = t.next_id;
      ncore = core;
      owner = t;
      handler = (fun ~src:_ _ -> ());
      out = [||];
      down = false;
    }
  in
  t.next_id <- t.next_id + 1;
  Hashtbl.replace t.nodes node.nid node;
  node

let node_id n = n.nid
let core_of n = n.ncore
let machine_of n = n.owner

let set_handler n f = n.handler <- f

let find_node t id =
  match Hashtbl.find_opt t.nodes id with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Machine: unknown node %d" id)

(* Coalescing receive port for [dst], shared by every channel feeding
   that node. Only materialized when the coalesce budget exceeds 1 —
   the default budget of 1 keeps the per-channel reception path (and
   its exact event schedule) byte-identical to the paper model. *)
let port_for t dst_node =
  if t.net.Net_params.coalesce <= 1 then None
  else
    match Hashtbl.find_opt t.ports dst_node.nid with
    | Some p -> Some p
    | None ->
      let p =
        Rx_port.create
          ~cpu:t.cpus.(dst_node.ncore)
          ~recv_cost:t.net.Net_params.recv_cost
          ~handler_cost:t.net.Net_params.handler_cost
          ~budget:t.net.Net_params.coalesce
      in
      Hashtbl.add t.ports dst_node.nid p;
      Some p

let make_channel src_node dst =
  let t = src_node.owner in
  let src = src_node.nid in
  let dst_node = find_node t dst in
  let same_socket = Topology.same_socket t.topo src_node.ncore dst_node.ncore in
  let deliver ~seq msg =
    if dst_node.down then begin
      (* The process is gone: the message completed its journey and
         evaporates at the dead node's doorstep. *)
      t.fault_dropped <- t.fault_dropped + 1;
      (match t.obs with
       | None -> ()
       | Some ring ->
         Event.emit ring
           {
             Event.time = Sim.now t.sim;
             core = dst_node.ncore;
             label = t.msg_label msg;
             kind = Event.Fault { node = dst; fault = "lost: node down" };
           })
    end
    else begin
    t.recv_a.(dst) <- t.recv_a.(dst) + 1;
    t.delivered_total <- t.delivered_total + 1;
    (match t.obs with
     | None -> ()
     | Some ring ->
       Event.emit ring
         {
           Event.time = Sim.now t.sim;
           core = dst_node.ncore;
           label = t.msg_label msg;
           kind = Event.Recv { src; dst; seq };
         });
    (match t.tracer with
     | Some f -> f ~time:(Sim.now t.sim) ~src ~dst msg
     | None -> ());
    dst_node.handler ~src msg
    end
  in
  let c =
    Channel.create ?port:(port_for t dst_node) t.sim
      ~capacity:t.net.Net_params.queue_slots
      ~prop:(Net_params.prop t.net ~same_socket)
      ~send_cost:t.net.Net_params.send_cost
      ~recv_cost:(t.net.Net_params.recv_cost + t.net.Net_params.handler_cost)
      ~src_cpu:t.cpus.(src_node.ncore) ~dst_cpu:t.cpus.(dst_node.ncore)
      ~deliver
  in
  t.all_channels <- c :: t.all_channels;
  if dst >= Array.length src_node.out then begin
    let new_cap = max 16 (max (dst + 1) t.next_id) in
    let grown = Array.make new_cap None in
    Array.blit src_node.out 0 grown 0 (Array.length src_node.out);
    src_node.out <- grown
  end;
  src_node.out.(dst) <- Some c;
  c

let channel_for n dst =
  if dst < Array.length n.out then
    match n.out.(dst) with Some c -> c | None -> make_channel n dst
  else make_channel n dst

let transmit n ~dst msg =
  let t = n.owner in
  t.sent_a.(n.nid) <- t.sent_a.(n.nid) + 1;
  t.sent_total <- t.sent_total + 1;
  let seq = t.seq in
  t.seq <- seq + 1;
  (match t.obs with
   | None -> ()
   | Some ring ->
     Event.emit ring
       {
         Event.time = Sim.now t.sim;
         core = n.ncore;
         label = t.msg_label msg;
         kind = Event.Send { src = n.nid; dst; seq };
       });
  Channel.send (channel_for n dst) ~seq msg

let send n ~dst msg =
  let t = n.owner in
  if dst = n.nid then
    (* Local role-to-role communication on a collapsed node: skips the
       message layer (no transmission, reception or propagation) but the
       receiving role's processing still occupies the core. Counted
       separately from boundary-crossing traffic so that per-commit
       message figures (Section 4.3) stay comparable across collapsed
       and dedicated deployments. *)
    Cpu.exec t.cpus.(n.ncore) ~cost:t.net.Net_params.handler_cost (fun () ->
        if not n.down then begin
          t.self_a.(n.nid) <- t.self_a.(n.nid) + 1;
          t.self_total <- t.self_total + 1;
          (match t.obs with
           | None -> ()
           | Some ring ->
             Event.emit ring
               {
                 Event.time = Sim.now t.sim;
                 core = n.ncore;
                 label = t.msg_label msg;
                 kind = Event.Self_deliver { node = n.nid };
               });
          n.handler ~src:n.nid msg
        end)
  else if t.n_filters = 0 then transmit n ~dst msg
  else begin
    match Hashtbl.find_opt t.link_filters (n.nid, dst) with
    | None -> transmit n ~dst msg
    | Some f -> (
      match f ~now:(Sim.now t.sim) with
      | Deliver -> transmit n ~dst msg
      | Drop ->
        (* Lost at the sender's NIC: no transmission charge, no seq. *)
        t.fault_dropped <- t.fault_dropped + 1;
        emit t ~core:n.ncore ~label:(t.msg_label msg)
          (Event.Fault { node = n.nid; fault = Printf.sprintf "drop ->%d" dst })
      | Duplicate ->
        t.fault_duplicated <- t.fault_duplicated + 1;
        emit t ~core:n.ncore ~label:(t.msg_label msg)
          (Event.Fault { node = n.nid; fault = Printf.sprintf "dup ->%d" dst });
        transmit n ~dst msg;
        transmit n ~dst msg)
  end

let send_many n ~dsts msg = List.iter (fun dst -> send n ~dst msg) dsts

(* Timer trace events are only wrapped around the thunk when an
   observer is installed at scheduling time — the wrapper closure is
   pure overhead on the traced-off hot path. *)
let after n ~delay f =
  let t = n.owner in
  match t.obs with
  | None -> Sim.schedule t.sim ~delay f
  | Some _ ->
    Sim.schedule t.sim ~delay (fun () ->
        emit t ~core:n.ncore ~label:"" (Event.Timer { node = n.nid });
        f ())

type timer = Sim.timer

let after_cancel n ~delay f =
  let t = n.owner in
  match t.obs with
  | None -> Sim.schedule_cancellable t.sim ~delay f
  | Some _ ->
    Sim.schedule_cancellable t.sim ~delay (fun () ->
        emit t ~core:n.ncore ~label:"" (Event.Timer { node = n.nid });
        f ())

let cancel_timer n timer = Sim.cancel n.owner.sim timer

let compute n ~cost f = Cpu.exec n.owner.cpus.(n.ncore) ~cost f

let note_phase n ~phase =
  emit n.owner ~core:n.ncore ~label:phase (Event.Phase { node = n.nid; phase })

(* The simulator's implementation of the node-environment seam. The
   [rng] field is the machine's shared stream — NOT a pre-split child —
   so that protocol cores calling [Rng.split env.rng] at creation time
   draw in exactly the order they did when they split the machine rng
   directly. Figure output is byte-identical across the refactor only
   because of this. *)
let env n =
  {
    Ci_engine.Node_env.id = n.nid;
    send = (fun ~dst msg -> send n ~dst msg);
    now = (fun () -> Sim.now n.owner.sim);
    after = (fun ~delay f -> after n ~delay f);
    after_cancel =
      (fun ~delay f ->
        let tm = after_cancel n ~delay f in
        { Ci_engine.Node_env.cancel = (fun () -> cancel_timer n tm) });
    rng = n.owner.random;
    note_phase = (fun ~phase -> note_phase n ~phase);
  }

let slow_core t ~core ~from_ ~until_ ~factor =
  Cpu.add_slowdown t.cpus.(core) ~from_ ~until_ ~factor

(* ----- fault injection --------------------------------------------------- *)

let set_node_down n down =
  if n.down <> down then begin
    n.down <- down;
    let t = n.owner in
    emit t ~core:n.ncore ~label:""
      (if down then Event.Fault { node = n.nid; fault = "crash" }
       else Event.Recover { node = n.nid })
  end

let node_is_down n = n.down

let set_link_filter t ~src ~dst f =
  (match Hashtbl.find_opt t.link_filters (src, dst) with
  | Some _ ->
    Hashtbl.remove t.link_filters (src, dst);
    t.n_filters <- t.n_filters - 1
  | None -> ());
  match f with
  | None -> ()
  | Some f ->
    Hashtbl.replace t.link_filters (src, dst) f;
    t.n_filters <- t.n_filters + 1

let set_link_delay t ~src ~dst f =
  Channel.set_delay_fn (channel_for (find_node t src) dst) f

let fault_dropped t = t.fault_dropped
let fault_duplicated t = t.fault_duplicated

let cpu t ~core = t.cpus.(core)

let n_nodes t = t.next_id

let messages_sent t ~node = t.sent_a.(node)
let messages_received t ~node = t.recv_a.(node)
let self_delivered t ~node = t.self_a.(node)
let total_messages t = t.delivered_total
let messages_sent_total t = t.sent_total
let self_delivered_total t = t.self_total

let io_snapshot t =
  Array.init t.next_id (fun id -> (t.sent_a.(id), t.recv_a.(id), t.self_a.(id)))

type channel_stats = {
  ch_count : int;
  ch_blocked : int;
  ch_stall_ns : int;
  ch_occupancy_peak : int;
  ch_outbox_peak : int;
}

let channel_totals t =
  List.fold_left
    (fun acc c ->
      {
        ch_count = acc.ch_count + 1;
        ch_blocked = acc.ch_blocked + Channel.blocked_events c;
        ch_stall_ns = acc.ch_stall_ns + Channel.credit_stall_ns c;
        ch_occupancy_peak = max acc.ch_occupancy_peak (Channel.occupancy_peak c);
        ch_outbox_peak = max acc.ch_outbox_peak (Channel.outbox_peak c);
      })
    {
      ch_count = 0;
      ch_blocked = 0;
      ch_stall_ns = 0;
      ch_occupancy_peak = 0;
      ch_outbox_peak = 0;
    }
    t.all_channels

let coalescing_totals t =
  Hashtbl.fold
    (fun _ p (groups, delivered) ->
      (groups + Rx_port.groups p, delivered + Rx_port.delivered p))
    t.ports (0, 0)

let set_tracer t f = t.tracer <- f

let set_observer ?msg_label t ring =
  t.obs <- ring;
  (match msg_label with Some f -> t.msg_label <- f | None -> ());
  match ring with
  | None -> Array.iter (fun c -> Cpu.set_on_busy c None) t.cpus
  | Some r ->
    Array.iter
      (fun c ->
        let core = Cpu.id c in
        Cpu.set_on_busy c
          (Some
             (fun ~start ~finish ->
               Event.emit r
                 {
                   Event.time = start;
                   core;
                   label = "";
                   kind = Event.Cpu_busy { dur = finish - start };
                 })))
      t.cpus

let run_until t ~time = Sim.run_until t.sim ~time
let run ?max_events t = Sim.run ?max_events t.sim

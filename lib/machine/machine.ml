module Sim = Ci_engine.Sim
module Rng = Ci_engine.Rng
module Event = Ci_obs.Event

type 'msg node = {
  nid : int;
  ncore : int;
  owner : 'msg t;
  mutable handler : src:int -> 'msg -> unit;
}

and 'msg t = {
  sim : Sim.t;
  topo : Topology.t;
  net : Net_params.t;
  cpus : Cpu.t array;
  nodes : (int, 'msg node) Hashtbl.t;
  channels : (int * int, (int * int * 'msg) Channel.t) Hashtbl.t;
  ports : (int, Rx_port.t) Hashtbl.t; (* coalescing rx port per dst node *)
  sent_counts : (int, int ref) Hashtbl.t;
  recv_counts : (int, int ref) Hashtbl.t;
  self_counts : (int, int ref) Hashtbl.t;
  random : Rng.t;
  mutable next_id : int;
  mutable sent_total : int;
  mutable delivered_total : int;
  mutable self_total : int;
  mutable seq : int; (* machine-wide message sequence, links Send to Recv *)
  mutable tracer : (time:int -> src:int -> dst:int -> 'msg -> unit) option;
  mutable obs : Event.ring option;
  mutable msg_label : 'msg -> string;
}

let create ?(seed = 42) ~topology ~params () =
  let sim = Sim.create () in
  {
    sim;
    topo = topology;
    net = params;
    cpus = Array.init (Topology.n_cores topology) (fun i -> Cpu.create sim ~id:i);
    nodes = Hashtbl.create 64;
    channels = Hashtbl.create 256;
    ports = Hashtbl.create 64;
    sent_counts = Hashtbl.create 64;
    recv_counts = Hashtbl.create 64;
    self_counts = Hashtbl.create 64;
    random = Rng.create ~seed;
    next_id = 0;
    sent_total = 0;
    delivered_total = 0;
    self_total = 0;
    seq = 0;
    tracer = None;
    obs = None;
    msg_label = (fun _ -> "");
  }

let sim t = t.sim
let rng t = t.random
let topology t = t.topo
let params t = t.net
let now t = Sim.now t.sim

let counter table key =
  match Hashtbl.find_opt table key with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add table key r;
    r

let emit t ~core ~label kind =
  match t.obs with
  | None -> ()
  | Some ring -> Event.emit ring { Event.time = Sim.now t.sim; core; label; kind }

let add_node t ~core =
  if core < 0 || core >= Topology.n_cores t.topo then
    invalid_arg (Printf.sprintf "Machine.add_node: core %d out of range" core);
  let node =
    { nid = t.next_id; ncore = core; owner = t; handler = (fun ~src:_ _ -> ()) }
  in
  t.next_id <- t.next_id + 1;
  Hashtbl.replace t.nodes node.nid node;
  ignore (counter t.sent_counts node.nid);
  ignore (counter t.recv_counts node.nid);
  ignore (counter t.self_counts node.nid);
  node

let node_id n = n.nid
let core_of n = n.ncore
let machine_of n = n.owner

let set_handler n f = n.handler <- f

let find_node t id =
  match Hashtbl.find_opt t.nodes id with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Machine: unknown node %d" id)

(* Coalescing receive port for [dst], shared by every channel feeding
   that node. Only materialized when the coalesce budget exceeds 1 —
   the default budget of 1 keeps the per-channel reception path (and
   its exact event schedule) byte-identical to the paper model. *)
let port_for t dst_node =
  if t.net.Net_params.coalesce <= 1 then None
  else
    match Hashtbl.find_opt t.ports dst_node.nid with
    | Some p -> Some p
    | None ->
      let p =
        Rx_port.create
          ~cpu:t.cpus.(dst_node.ncore)
          ~recv_cost:t.net.Net_params.recv_cost
          ~handler_cost:t.net.Net_params.handler_cost
          ~budget:t.net.Net_params.coalesce
      in
      Hashtbl.add t.ports dst_node.nid p;
      Some p

let channel t ~src ~dst =
  match Hashtbl.find_opt t.channels (src, dst) with
  | Some c -> c
  | None ->
    let src_node = find_node t src and dst_node = find_node t dst in
    let same_socket = Topology.same_socket t.topo src_node.ncore dst_node.ncore in
    let deliver (origin, seq, msg) =
      incr (counter t.recv_counts dst);
      t.delivered_total <- t.delivered_total + 1;
      emit t ~core:dst_node.ncore ~label:(t.msg_label msg)
        (Event.Recv { src = origin; dst; seq });
      (match t.tracer with
       | Some f -> f ~time:(Sim.now t.sim) ~src:origin ~dst msg
       | None -> ());
      dst_node.handler ~src:origin msg
    in
    let c =
      Channel.create ?port:(port_for t dst_node) t.sim
        ~capacity:t.net.Net_params.queue_slots
        ~prop:(Net_params.prop t.net ~same_socket)
        ~send_cost:t.net.Net_params.send_cost
        ~recv_cost:(t.net.Net_params.recv_cost + t.net.Net_params.handler_cost)
        ~src_cpu:t.cpus.(src_node.ncore) ~dst_cpu:t.cpus.(dst_node.ncore)
        ~deliver
    in
    Hashtbl.replace t.channels (src, dst) c;
    c

let send n ~dst msg =
  let t = n.owner in
  if dst = n.nid then
    (* Local role-to-role communication on a collapsed node: skips the
       message layer (no transmission, reception or propagation) but the
       receiving role's processing still occupies the core. Counted
       separately from boundary-crossing traffic so that per-commit
       message figures (Section 4.3) stay comparable across collapsed
       and dedicated deployments. *)
    Cpu.exec t.cpus.(n.ncore) ~cost:t.net.Net_params.handler_cost (fun () ->
        incr (counter t.self_counts n.nid);
        t.self_total <- t.self_total + 1;
        emit t ~core:n.ncore ~label:(t.msg_label msg)
          (Event.Self_deliver { node = n.nid });
        n.handler ~src:n.nid msg)
  else begin
    incr (counter t.sent_counts n.nid);
    t.sent_total <- t.sent_total + 1;
    let seq = t.seq in
    t.seq <- t.seq + 1;
    emit t ~core:n.ncore ~label:(t.msg_label msg)
      (Event.Send { src = n.nid; dst; seq });
    Channel.send (channel t ~src:n.nid ~dst) (n.nid, seq, msg)
  end

let send_many n ~dsts msg = List.iter (fun dst -> send n ~dst msg) dsts

let after n ~delay f =
  Sim.schedule n.owner.sim ~delay (fun () ->
      emit n.owner ~core:n.ncore ~label:"" (Event.Timer { node = n.nid });
      f ())

type timer = Sim.timer

let after_cancel n ~delay f =
  Sim.schedule_cancellable n.owner.sim ~delay (fun () ->
      emit n.owner ~core:n.ncore ~label:"" (Event.Timer { node = n.nid });
      f ())

let cancel_timer n timer = Sim.cancel n.owner.sim timer

let compute n ~cost f = Cpu.exec n.owner.cpus.(n.ncore) ~cost f

let note_phase n ~phase =
  emit n.owner ~core:n.ncore ~label:phase (Event.Phase { node = n.nid; phase })

let slow_core t ~core ~from_ ~until_ ~factor =
  Cpu.add_slowdown t.cpus.(core) ~from_ ~until_ ~factor

let cpu t ~core = t.cpus.(core)

let n_nodes t = t.next_id

let messages_sent t ~node = !(counter t.sent_counts node)
let messages_received t ~node = !(counter t.recv_counts node)
let self_delivered t ~node = !(counter t.self_counts node)
let total_messages t = t.delivered_total
let messages_sent_total t = t.sent_total
let self_delivered_total t = t.self_total

let io_snapshot t =
  Array.init t.next_id (fun id ->
      ( !(counter t.sent_counts id),
        !(counter t.recv_counts id),
        !(counter t.self_counts id) ))

type channel_stats = {
  ch_count : int;
  ch_blocked : int;
  ch_stall_ns : int;
  ch_occupancy_peak : int;
  ch_outbox_peak : int;
}

let channel_totals t =
  Hashtbl.fold
    (fun _ c acc ->
      {
        ch_count = acc.ch_count + 1;
        ch_blocked = acc.ch_blocked + Channel.blocked_events c;
        ch_stall_ns = acc.ch_stall_ns + Channel.credit_stall_ns c;
        ch_occupancy_peak = max acc.ch_occupancy_peak (Channel.occupancy_peak c);
        ch_outbox_peak = max acc.ch_outbox_peak (Channel.outbox_peak c);
      })
    t.channels
    {
      ch_count = 0;
      ch_blocked = 0;
      ch_stall_ns = 0;
      ch_occupancy_peak = 0;
      ch_outbox_peak = 0;
    }

let coalescing_totals t =
  Hashtbl.fold
    (fun _ p (groups, delivered) ->
      (groups + Rx_port.groups p, delivered + Rx_port.delivered p))
    t.ports (0, 0)

let set_tracer t f = t.tracer <- f

let set_observer ?msg_label t ring =
  t.obs <- ring;
  (match msg_label with Some f -> t.msg_label <- f | None -> ());
  match ring with
  | None -> Array.iter (fun c -> Cpu.set_on_busy c None) t.cpus
  | Some r ->
    Array.iter
      (fun c ->
        let core = Cpu.id c in
        Cpu.set_on_busy c
          (Some
             (fun ~start ~finish ->
               Event.emit r
                 {
                   Event.time = start;
                   core;
                   label = "";
                   kind = Event.Cpu_busy { dur = finish - start };
                 })))
      t.cpus

let run_until t ~time = Sim.run_until t.sim ~time
let run ?max_events t = Sim.run ?max_events t.sim

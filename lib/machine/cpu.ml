module Sim = Ci_engine.Sim

type window = { from_ : int; until_ : int; factor : float }

let nop () = ()

type t = {
  sim : Sim.t;
  core_id : int;
  mutable windows : window list; (* sorted by from_ *)
  mutable free : int;
  mutable busy : int;
  mutable depth : int; (* work items enqueued but not yet completed *)
  mutable depth_peak : int;
  mutable slowed : int; (* wall-clock ns of occupation inside slowdown windows *)
  mutable on_busy : (start:int -> finish:int -> unit) option;
  (* Completion ring: occupations complete in enqueue order ([free] is
     monotone and the event queue breaks time ties in insertion order),
     so the continuation and its start instant live in a FIFO of
     unboxed slots and one preallocated completion thunk serves every
     [exec] — nothing is boxed per occupation. *)
  mutable rq_start : int array;
  mutable rq_k : (unit -> unit) array;
  mutable rq_head : int;
  mutable rq_len : int;
  mutable on_done : unit -> unit;
}

let create sim ~id =
  let t =
    {
      sim;
      core_id = id;
      windows = [];
      free = 0;
      busy = 0;
      depth = 0;
      depth_peak = 0;
      slowed = 0;
      on_busy = None;
      rq_start = Array.make 16 0;
      rq_k = Array.make 16 nop;
      rq_head = 0;
      rq_len = 0;
      on_done = nop;
    }
  in
  t.on_done <-
    (fun () ->
      let cap = Array.length t.rq_k in
      let i = t.rq_head in
      let start = t.rq_start.(i) and k = t.rq_k.(i) in
      t.rq_k.(i) <- nop;
      t.rq_head <- (i + 1) mod cap;
      t.rq_len <- t.rq_len - 1;
      t.depth <- t.depth - 1;
      (match t.on_busy with
       | Some f ->
         let finish = Sim.now t.sim in
         if finish > start then f ~start ~finish
       | None -> ());
      k ());
  t

let ring_push t start k =
  let cap = Array.length t.rq_k in
  if t.rq_len = cap then begin
    let new_cap = 2 * cap in
    let ns = Array.make new_cap 0 and nk = Array.make new_cap nop in
    for i = 0 to t.rq_len - 1 do
      let j = (t.rq_head + i) mod cap in
      ns.(i) <- t.rq_start.(j);
      nk.(i) <- t.rq_k.(j)
    done;
    t.rq_start <- ns;
    t.rq_k <- nk;
    t.rq_head <- 0
  end;
  let slot = (t.rq_head + t.rq_len) mod Array.length t.rq_k in
  t.rq_start.(slot) <- start;
  t.rq_k.(slot) <- k;
  t.rq_len <- t.rq_len + 1

let id t = t.core_id

let add_slowdown t ~from_ ~until_ ~factor =
  if from_ >= until_ then invalid_arg "Cpu.add_slowdown: empty window";
  if factor < 1. then invalid_arg "Cpu.add_slowdown: factor must be >= 1";
  let w = { from_; until_; factor } in
  t.windows <-
    List.sort (fun a b -> compare a.from_ b.from_) (w :: t.windows)

let factor_at t time =
  List.fold_left
    (fun acc w ->
      if time >= w.from_ && time < w.until_ then Float.max acc w.factor
      else acc)
    1. t.windows

(* The next instant after [time] at which the slowdown factor may
   change: the nearest window boundary strictly beyond [time]. *)
let next_boundary t time =
  List.fold_left
    (fun acc w ->
      let candidates = [ w.from_; w.until_ ] in
      List.fold_left
        (fun acc b ->
          if b > time then match acc with None -> Some b | Some a -> Some (min a b)
          else acc)
        acc candidates)
    None t.windows

(* Completion instant of [cost] units of work starting at [start],
   integrating piecewise through slowdown windows. *)
let finish_time t ~start ~cost =
  let rec go time remaining =
    if remaining <= 0. then time
    else
      let f = factor_at t time in
      match next_boundary t time with
      | None ->
        if Float.is_finite f then time + int_of_float (ceil (remaining *. f))
        else max_int / 2 (* crashed with no recovery boundary: never *)
      | Some b ->
        let span = float_of_int (b - time) in
        let capacity = if Float.is_finite f then span /. f else 0. in
        if capacity >= remaining then time + int_of_float (ceil (remaining *. f))
        else go b (remaining -. capacity)
  in
  go start (float_of_int cost)

(* Wall-clock overlap of the occupation [start, finish) with slowdown
   windows whose factor exceeds 1 — how much of this occupation ran
   impaired. Windows are known at enqueue time (fault plans are applied
   before the run starts). *)
let slowed_overlap t ~start ~finish =
  List.fold_left
    (fun acc w ->
      if w.factor > 1. then
        acc + max 0 (min finish w.until_ - max start w.from_)
      else acc)
    0 t.windows

let exec t ~cost k =
  let cost = if cost < 0 then 0 else cost in
  let start = max (Sim.now t.sim) t.free in
  let finish = finish_time t ~start ~cost in
  t.busy <- t.busy + (finish - start);
  t.slowed <- t.slowed + slowed_overlap t ~start ~finish;
  t.free <- finish;
  t.depth <- t.depth + 1;
  if t.depth > t.depth_peak then t.depth_peak <- t.depth;
  ring_push t start k;
  Sim.schedule_at t.sim ~time:finish t.on_done

let free_at t = t.free
let busy_total t = t.busy

(* [busy] books the full occupation at enqueue time; the part of it
   still ahead of the clock is exactly [free - now] (the core, if
   behind, is continuously occupied until it catches up). *)
let busy_elapsed t =
  let ahead = t.free - Sim.now t.sim in
  t.busy - max 0 ahead

let queue_delay t =
  let d = t.free - Sim.now t.sim in
  if d > 0 then d else 0

let queue_depth t = t.depth
let queue_peak t = t.depth_peak
let slowed_total t = t.slowed
let set_on_busy t f = t.on_busy <- f

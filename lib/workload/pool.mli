(** Fixed-size domain pool for independent simulation runs.

    Every experiment in this repository is a batch of independent,
    deterministic [Runner.run] invocations; this module fans such a
    batch out across OCaml 5 domains. There is deliberately no task
    queue, no futures and no dependencies: a chunked atomic cursor
    over the input array is the whole scheduler.

    Results are keyed by input index, so for a deterministic [f] the
    output is identical — byte for byte — at any [jobs] value. *)

val default_jobs : unit -> int
(** [default_jobs ()] is the [CI_JOBS] environment variable if set to a
    positive integer, otherwise [Domain.recommended_domain_count ()].
    This is the default the [--jobs] flags of [consensus_sim] and
    [bench/main.exe] resolve to. *)

val parallel_map : ?chunk:int -> jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map ~jobs f xs] is [Array.map f xs] computed by [jobs]
    worker domains ([jobs - 1] spawned, plus the calling domain; never
    more workers than elements). Input order is preserved: slot [i] of
    the result is [f xs.(i)] regardless of which domain computed it.

    Workers claim indices in chunks of [chunk] (default 1 — right for
    coarse jobs like whole simulation runs) from a shared atomic
    cursor, so uneven job costs load-balance themselves.

    If any [f xs.(i)] raises, the first exception (by completion time)
    is re-raised in the caller with its backtrace once every worker has
    stopped; remaining workers finish their current chunk and claim no
    further work. [f] must be safe to run concurrently with itself on
    distinct elements — true for [Runner.run] because a run owns all
    its mutable state (DESIGN.md §8).

    [jobs = 1] (or a batch of at most one element) degenerates to plain
    [Array.map] on the calling domain with no domain spawned.

    @raise Invalid_argument if [jobs < 1] or [chunk < 1]. *)

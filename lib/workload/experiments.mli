(** Per-figure experiment drivers.

    One function per table/figure of the paper's evaluation (and per
    ablation this reproduction adds); each returns plain data so the
    benchmark harness, the CLI and the test suite can share them. The
    mapping to the paper is indexed in DESIGN.md (E1–E9, A1–A3) and the
    measured-vs-paper comparison lives in EXPERIMENTS.md.

    Every driver takes [?jobs] (default {!Pool.default_jobs}): the
    independent simulation runs behind a figure are flattened into one
    batch and fanned out over that many domains with
    {!Pool.parallel_map}. Results are keyed by spec index and each run
    is deterministic and self-contained, so the returned data — and
    anything rendered from it — is byte-identical at any [jobs]. *)

(** {1 E1 — Section 3: network characteristics} *)

type netchar_row = {
  setting : string;  (** "multicore" or "lan". *)
  trans_us : float;  (** Measured transmission delay. *)
  ping_us : float;  (** One-slot-queue inter-send latency (≃ 2t+2p). *)
  prop_us : float;  (** Propagation derived as (ping − 2·trans)/2. *)
  ratio : float;  (** trans/prop. *)
}

val netchar : ?jobs:int -> unit -> netchar_row list
(** Reproduces the Section 3 micro-experiments on the raw channel. *)

(** {1 Generic sweep row} *)

type point = {
  x : int;  (** Sweep coordinate (clients or replicas). *)
  throughput : float;  (** op/s. *)
  latency_us : float;  (** Mean commit latency. *)
  leader_util : float;
      (** Leader-core (core 0) utilization inside the measurement
          window — the saturation evidence behind E4/E5. *)
}

type series = { label : string; points : point list }

(** {1 E2 — Figure 2: Multi-Paxos, LAN vs multicore} *)

val fig2 : ?jobs:int -> ?clients:int list -> ?duration:int -> unit -> series list

(** {1 E4 — Section 7.2: single-client latency table} *)

type latency_row = {
  protocol : string;
  latency_us : float;
  paper_latency_us : float;  (** The value the paper reports. *)
  throughput_1c : float;
  leader_util : float;  (** Leader-core utilization at one client. *)
}

val latency_table : ?jobs:int -> ?duration:int -> unit -> latency_row list

(** {1 E5 — Figure 8: latency vs throughput, 1..45 clients} *)

val fig8 : ?jobs:int -> ?clients:int list -> ?duration:int -> unit -> series list

(** {1 E6 — Figure 9: joint deployment, throughput vs replicas} *)

val fig9 : ?jobs:int -> ?nodes:int list -> ?duration:int -> unit -> series list

(** {1 E7 — Figure 10: 2PC-Joint read mixes vs 1Paxos} *)

type bar = { label : string; clients : int; throughput : float }

val fig10 : ?jobs:int -> ?duration:int -> unit -> bar list

(** {1 E3/E8 — slow-leader timelines (Section 2.2 / Figure 11)} *)

type timeline = {
  label : string;
  bucket_ms : float;
  rates : float array;  (** op/s per bucket. *)
  leader_changes : int;
      (** Per-replica maximum ([Runner.result.leader_changes]) — the
          count of global transitions, which is what the timeline
          annotations quote. *)
  acceptor_changes : int;  (** Per-replica maximum, as above. *)
}

val fig11 : ?jobs:int -> ?duration:int -> unit -> timeline list
(** 1Paxos with a slowed leader, plus the no-failure baseline
    (Figure 11). *)

val sec2_2 : ?jobs:int -> ?duration:int -> unit -> timeline list
(** 2PC with a slowed coordinator (the Section 2.2 experiment). *)

val failover : ?jobs:int -> ?duration:int -> unit -> timeline list
(** Figure 11's shape under a {e crash} instead of a slowdown: 1Paxos
    with the active acceptor (node 1) crash-restarted via the nemesis,
    the same for the leader (node 0), and the no-failure baseline.
    Crash at 40 ms, restart 30 ms later, recovery through the
    protocol's own [recover]/takeover machinery. *)

(** {1 E9 — Section 8: 1Paxos over an IP network} *)

val lan_1paxos : ?jobs:int -> ?clients:int list -> ?duration:int -> unit -> series list

(** {1 A1..A3 — ablations} *)

val ablation_placement : ?jobs:int -> ?duration:int -> unit -> series list
(** 1Paxos with the active acceptor colocated with the leader vs on a
    separate node (Section 5.4's placement rule), under a leader
    slowdown: colocation couples the two failure domains. *)

val ablation_slots : ?jobs:int -> ?duration:int -> unit -> series list
(** Channel slot count 1 / 7 / 64 (QC-libtask uses 7): back-pressure
    effect on 1Paxos throughput. *)

val ablation_ratio : ?jobs:int -> ?duration:int -> unit -> series list
(** 1Paxos vs Multi-Paxos peak throughput while propagation delay grows
    from multicore (ratio ≈ 1) towards IP-like (ratio ≈ 0.01): the
    message-count advantage is a transmission-delay phenomenon. *)

(** {1 A6..A8 — batching / pipelining / coalescing ablations} *)

val ablation_batch : ?jobs:int -> ?duration:int -> unit -> series list
(** 1Paxos and Multi-Paxos peak throughput vs leader batch size
    (x = commands per consensus instance, 1..32) at 44 clients on the
    48-core preset. The x = 1 row is the paper's untouched protocol
    (no batching, no window, no coalescing); every other row adds
    pipeline depth 8 and receive-coalescing budget 16. *)

val ablation_pipeline : ?jobs:int -> ?duration:int -> unit -> series list
(** 1Paxos throughput vs pipeline depth (x = max batches in flight at
    the leader) with batch size and coalescing held at 8/16: depth 1
    degenerates to stop-and-wait per batch. *)

val ablation_coalesce : ?jobs:int -> ?duration:int -> unit -> series list
(** 1Paxos throughput vs receive-coalescing budget (x = max messages
    drained per reception charge) with batch/pipeline held at 8/8:
    budget 1 is the uncoalesced one-reception-per-message model. *)

(** {1 A4 — related-protocol comparison (Section 8)} *)

val protocol_comparison :
  ?jobs:int ->
  ?duration:int ->
  ?params:Ci_machine.Net_params.t ->
  unit ->
  series list
(** All five implemented protocols (2PC, Multi-Paxos, Mencius, Cheap
    Paxos, 1Paxos) on the same 3-replica machine and client sweep — the
    quantitative backdrop to the paper's §8 discussion: Mencius spreads
    the leader's transmission load, Cheap Paxos cuts the per-agreement
    message count to six, 1Paxos to five. Pass [params] to rerun the
    comparison on another network (e.g. {!Ci_machine.Net_params.rdma},
    the paper's concluding rack-scale outlook). *)

(** {1 A5 — sharded multi-group scaling (ISSUE 7)} *)

val shards :
  ?jobs:int ->
  ?duration:int ->
  ?groups:int list ->
  ?cross_shard_ratio:float ->
  unit ->
  series list
(** 1Paxos and Multi-Paxos throughput vs group count (x = groups), one
    socket per group of 3 replicas plus two tail sockets for routers
    and clients; [cross_shard_ratio] of the workload (default 5%, 0 at
    one group) is cross-shard multi-puts run as 2PC transactions.
    Every point is consistency-checked per group and atomicity-checked
    across groups; raises [Failure] on any violation. *)

(** {1 A6 — open-loop service curves (ISSUE 9)} *)

type load_row = {
  l_label : string;  (** Curve name, e.g. ["1paxos"] or ["1paxos +lease"]. *)
  l_offered : float;  (** Total offered op/s over all drivers. *)
  l_achieved : float;  (** Completions/s inside the measurement window. *)
  l_p50_us : float;  (** Latency from the intended arrival. *)
  l_p99_us : float;
  l_p999_us : float;
  l_service_p99_us : float;  (** Latency from the first transmission. *)
  l_lease_reads : int;  (** Local lease reads served (0 with leases off). *)
  l_knee : bool;  (** This point is the curve's saturation knee. *)
}

val load_curve :
  ?jobs:int ->
  ?duration:int ->
  ?rates:float list ->
  ?read_ratio:float ->
  ?lease:int ->
  unit ->
  load_row list
(** 1Paxos and Multi-Paxos p50/p99/p999-vs-offered-load curves under
    the open-loop driver (two drivers, [rates] each, 90% reads by
    default), latency charged from the intended arrival so saturation
    shows queueing delay rather than shed load. The saturation knee of
    each p99 curve is flagged. Pass [lease] (ns) to serve leader-local
    linearizable reads under leader leases. Raises [Failure] on a
    consistency violation or any stale session read. *)

(** {1 Rendering} *)

val pp_netchar : Format.formatter -> netchar_row list -> unit
val pp_series : Format.formatter -> series list -> unit
val pp_latency_table : Format.formatter -> latency_row list -> unit
val pp_bars : Format.formatter -> bar list -> unit
val pp_load_table : Format.formatter -> load_row list -> unit
val pp_timelines : Format.formatter -> timeline list -> unit

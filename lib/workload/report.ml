(* CSV quoting: labels are machine-generated but may contain spaces or
   commas (e.g. "1Paxos - 0% read"); quote defensively. *)
let quote s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let buf_lines header rows =
  let b = Buffer.create 1024 in
  Buffer.add_string b header;
  Buffer.add_char b '\n';
  List.iter
    (fun row ->
      Buffer.add_string b row;
      Buffer.add_char b '\n')
    rows;
  Buffer.contents b

let series_csv (series : Experiments.series list) =
  buf_lines "label,x,throughput_ops,latency_us,leader_util"
    (List.concat_map
       (fun (s : Experiments.series) ->
         List.map
           (fun (p : Experiments.point) ->
             Printf.sprintf "%s,%d,%.1f,%.2f,%.3f" (quote s.Experiments.label)
               p.Experiments.x p.Experiments.throughput p.Experiments.latency_us
               p.Experiments.leader_util)
           s.Experiments.points)
       series)

let bars_csv (bars : Experiments.bar list) =
  buf_lines "label,clients,throughput_ops"
    (List.map
       (fun (b : Experiments.bar) ->
         Printf.sprintf "%s,%d,%.1f" (quote b.Experiments.label)
           b.Experiments.clients b.Experiments.throughput)
       bars)

let timelines_csv (ts : Experiments.timeline list) =
  buf_lines "label,t_ms,ops_per_sec"
    (List.concat_map
       (fun (t : Experiments.timeline) ->
         Array.to_list
           (Array.mapi
              (fun i rate ->
                Printf.sprintf "%s,%.0f,%.1f" (quote t.Experiments.label)
                  (float_of_int i *. t.Experiments.bucket_ms)
                  rate)
              t.Experiments.rates))
       ts)

let netchar_csv (rows : Experiments.netchar_row list) =
  buf_lines "setting,trans_us,ping_us,prop_us,ratio"
    (List.map
       (fun (r : Experiments.netchar_row) ->
         Printf.sprintf "%s,%.3f,%.3f,%.3f,%.4f" (quote r.Experiments.setting)
           r.Experiments.trans_us r.Experiments.ping_us r.Experiments.prop_us
           r.Experiments.ratio)
       rows)

let latency_csv (rows : Experiments.latency_row list) =
  buf_lines "protocol,latency_us,paper_latency_us,throughput_1c,leader_util"
    (List.map
       (fun (r : Experiments.latency_row) ->
         Printf.sprintf "%s,%.2f,%.2f,%.1f,%.3f" (quote r.Experiments.protocol)
           r.Experiments.latency_us r.Experiments.paper_latency_us
           r.Experiments.throughput_1c r.Experiments.leader_util)
       rows)

let load_csv (rows : Experiments.load_row list) =
  buf_lines
    "label,offered_ops,achieved_ops,p50_us,p99_us,p999_us,service_p99_us,lease_reads,knee"
    (List.map
       (fun (r : Experiments.load_row) ->
         Printf.sprintf "%s,%.1f,%.1f,%.2f,%.2f,%.2f,%.2f,%d,%d"
           (quote r.Experiments.l_label) r.Experiments.l_offered
           r.Experiments.l_achieved r.Experiments.l_p50_us r.Experiments.l_p99_us
           r.Experiments.l_p999_us r.Experiments.l_service_p99_us
           r.Experiments.l_lease_reads
           (if r.Experiments.l_knee then 1 else 0))
       rows)

let plot_preamble ~title =
  Printf.sprintf
    "set datafile separator ','\n\
     set title '%s'\n\
     set key outside right\n\
     set grid\n"
    title

let gnuplot_series ~title ~xlabel ~csv (series : Experiments.series list) =
  let b = Buffer.create 1024 in
  Buffer.add_string b (plot_preamble ~title);
  Buffer.add_string b (Printf.sprintf "set xlabel '%s'\n" xlabel);
  Buffer.add_string b "set ylabel 'throughput (op/s)'\n";
  Buffer.add_string b "plot \\\n";
  let plots =
    List.map
      (fun (s : Experiments.series) ->
        Printf.sprintf
          "  '< grep \"^%s,\" %s' using 2:3 with linespoints title '%s'"
          s.Experiments.label csv s.Experiments.label)
      series
  in
  Buffer.add_string b (String.concat ", \\\n" plots);
  Buffer.add_char b '\n';
  Buffer.contents b

let gnuplot_timelines ~title ~csv (ts : Experiments.timeline list) =
  let b = Buffer.create 1024 in
  Buffer.add_string b (plot_preamble ~title);
  Buffer.add_string b "set xlabel 'time (ms)'\nset ylabel 'commits (op/s)'\n";
  Buffer.add_string b "plot \\\n";
  let plots =
    List.map
      (fun (t : Experiments.timeline) ->
        Printf.sprintf "  '< grep \"^%s,\" %s' using 2:3 with steps title '%s'"
          t.Experiments.label csv t.Experiments.label)
      ts
  in
  Buffer.add_string b (String.concat ", \\\n" plots);
  Buffer.add_char b '\n';
  Buffer.contents b

let write_file ~dir ~name contents =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir name in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents);
  path

module Wire = Ci_consensus.Wire
module Node_env = Ci_engine.Node_env
module Rng = Ci_engine.Rng
module Command = Ci_rsm.Command

type policy = {
  targets : int array;
  primary : int;
  failover : bool;
  timeout : int;
  think : int;
  read_ratio : float;
  cross_shard_ratio : float;
  groups : int;
  relaxed_reads : bool;
  read_own_node : bool;
  key_space : int;
  max_requests : int option;
}

let default_policy ~targets =
  {
    targets;
    primary = 0;
    failover = true;
    timeout = Ci_engine.Sim_time.ms 2;
    think = 0;
    read_ratio = 0.;
    cross_shard_ratio = 0.;
    groups = 1;
    relaxed_reads = false;
    read_own_node = false;
    key_space = 64;
    max_requests = None;
  }

type t = {
  env : Wire.t Node_env.t;
  policy : policy;
  stats : Run_stats.t;
  rng : Rng.t;
  mutable target_idx : int;
  mutable next_req : int;
  mutable current : (int * Command.t * int) option; (* req_id, cmd, first sent *)
  mutable attempt : int; (* distinguishes timeout timers *)
  mutable retry_timer : Node_env.timer option;
  mutable done_count : int;
  mutable retry_count : int;
  mutable log : (int * Command.t) list;
  mutable acked : (int * int) list;
}

let now t = t.env.Node_env.now ()

(* A partner key for a cross-shard write: deterministic scan from the
   first key, so no extra rng draws perturb the stream; falls back to
   the next key when the keyspace cannot reach another group (groups =
   1, or fewer keys than groups need). *)
let partner_key t ~k1 =
  let ks = t.policy.key_space and groups = t.policy.groups in
  let g1 = Ci_consensus.Shard.group_of_key ~groups k1 in
  let rec scan k n =
    if n = 0 then (k1 + 1) mod ks
    else if k <> k1 && Ci_consensus.Shard.group_of_key ~groups k <> g1 then k
    else scan ((k + 1) mod ks) (n - 1)
  in
  scan ((k1 + 1) mod ks) ks

(* The cross-shard draw is guarded so a zero ratio consumes nothing
   from the stream: default workloads stay byte-identical. *)
let pick_command t =
  if
    t.policy.cross_shard_ratio > 0.
    && Rng.chance t.rng t.policy.cross_shard_ratio
  then begin
    let k1 = Rng.int t.rng t.policy.key_space in
    let d1 = Rng.int t.rng 1_000_000 and d2 = Rng.int t.rng 1_000_000 in
    Command.Mput { k1; d1; k2 = partner_key t ~k1; d2 }
  end
  else if Rng.chance t.rng t.policy.read_ratio then
    Command.Get { key = Rng.int t.rng t.policy.key_space }
  else
    Command.Put
      { key = Rng.int t.rng t.policy.key_space; data = Rng.int t.rng 1_000_000 }

let target_for t cmd =
  if t.policy.read_own_node && Command.is_read cmd then t.env.Node_env.id
  else t.policy.targets.(t.target_idx)

(* The timeout timer is cancelled on reply (each reply used to leave a
   stale timer in the event queue for its full 2 ms — hundreds of dead
   events per client at microsecond commit latencies). The [attempt]
   generation check stays as belt and braces: cancellation is an
   optimization, not a correctness requirement. *)
let rec transmit t ~req_id ~cmd =
  let dst = target_for t cmd in
  t.env.Node_env.send ~dst
    (Wire.Request { req_id; cmd; relaxed_read = t.policy.relaxed_reads });
  t.attempt <- t.attempt + 1;
  let this_attempt = t.attempt in
  t.retry_timer <-
    Some
      (t.env.Node_env.after_cancel ~delay:t.policy.timeout (fun () ->
           t.retry_timer <- None;
           match t.current with
           | Some (r, c, _) when r = req_id && this_attempt = t.attempt ->
             t.retry_count <- t.retry_count + 1;
             if t.policy.failover then
               t.target_idx <-
                 (t.target_idx + 1) mod Array.length t.policy.targets;
             transmit t ~req_id:r ~cmd:c
           | Some _ | None -> ()))

let cancel_retry_timer t =
  match t.retry_timer with
  | Some tm ->
    Node_env.cancel_timer tm;
    t.retry_timer <- None
  | None -> ()

let issue t =
  let limit_reached =
    match t.policy.max_requests with Some m -> t.done_count >= m | None -> false
  in
  if not limit_reached then begin
    let req_id = t.next_req in
    t.next_req <- t.next_req + 1;
    let cmd = pick_command t in
    t.log <- (req_id, cmd) :: t.log;
    t.current <- Some (req_id, cmd, now t);
    transmit t ~req_id ~cmd
  end

let start t = issue t

let handle t ~src:_ msg =
  match msg with
  | Wire.Reply { req_id; result = _ } ->
    (match t.current with
     | Some (r, cmd, sent_at) when r = req_id ->
       t.current <- None;
       cancel_retry_timer t;
       t.done_count <- t.done_count + 1;
       (* Closed loop: the request was intended the instant it was
          first sent, so both measures coincide. *)
       Run_stats.record t.stats ~intended_at:sent_at ~sent_at
         ~replied_at:(now t);
       if not (Command.is_read cmd) then
         t.acked <- (t.env.Node_env.id, req_id) :: t.acked;
       if t.policy.think > 0 then
         t.env.Node_env.after ~delay:t.policy.think (fun () -> issue t)
       else issue t
     | Some _ | None -> () (* stale duplicate reply *))
  | _ -> () (* clients only consume replies *)

let node_id t = t.env.Node_env.id
let completed t = t.done_count
let retries t = t.retry_count
let issued t = List.rev t.log
let acked_writes t = List.rev t.acked

let create ~env ~policy ~stats =
  if Array.length policy.targets = 0 then
    invalid_arg "Client.create: empty target list";
  {
    env;
    policy;
    stats;
    rng = Rng.split env.Node_env.rng;
    target_idx = policy.primary mod Array.length policy.targets;
    next_req = 0;
    current = None;
    attempt = 0;
    retry_timer = None;
    done_count = 0;
    retry_count = 0;
    log = [];
    acked = [];
  }

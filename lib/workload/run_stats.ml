type sample = { intended_at : int; sent_at : int; replied_at : int }

type t = { mutable acc : sample list; ts : Ci_stats.Timeseries.t; mutable n : int }

let create ~bucket = { acc = []; ts = Ci_stats.Timeseries.create ~bucket; n = 0 }

let record t ~intended_at ~sent_at ~replied_at =
  t.acc <- { intended_at; sent_at; replied_at } :: t.acc;
  t.n <- t.n + 1;
  Ci_stats.Timeseries.add t.ts ~time:replied_at

let samples t = List.rev t.acc
let timeline t = t.ts
let completed t = t.n

(* Reported latency runs from the *intended* arrival, not the first
   transmission: an open-loop driver that falls behind its schedule
   still charges the wait to the system (no coordinated omission).
   Closed-loop clients pass [intended_at = sent_at], so the two
   measures coincide there. *)
let latencies_in t ~from_ ~until_ =
  List.filter_map
    (fun s ->
      if s.replied_at >= from_ && s.replied_at < until_ then
        Some (s.replied_at - s.intended_at)
      else None)
    t.acc
  |> Array.of_list

let service_latencies_in t ~from_ ~until_ =
  List.filter_map
    (fun s ->
      if s.replied_at >= from_ && s.replied_at < until_ then
        Some (s.replied_at - s.sent_at)
      else None)
    t.acc
  |> Array.of_list

let completed_in t ~from_ ~until_ =
  List.fold_left
    (fun acc s -> if s.replied_at >= from_ && s.replied_at < until_ then acc + 1 else acc)
    0 t.acc

let completions_in t ~from_ ~until_ =
  let a =
    List.filter_map
      (fun s ->
        if s.replied_at >= from_ && s.replied_at < until_ then Some s.replied_at
        else None)
      t.acc
    |> Array.of_list
  in
  Array.sort compare a;
  a

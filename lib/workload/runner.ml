module Machine = Ci_machine.Machine
module Topology = Ci_machine.Topology
module Net_params = Ci_machine.Net_params
module Cpu = Ci_machine.Cpu
module Sim = Ci_engine.Sim
module Sim_time = Ci_engine.Sim_time
module Metrics = Ci_obs.Metrics
module Command = Ci_rsm.Command
module Consistency = Ci_rsm.Consistency
module Onepaxos = Ci_consensus.Onepaxos
module Multipaxos = Ci_consensus.Multipaxos
module Twopc = Ci_consensus.Twopc
module Replica_core = Ci_consensus.Replica_core
module Shard = Ci_consensus.Shard
module Atomicity = Ci_rsm.Atomicity
module Wire = Ci_consensus.Wire
module Node_env = Ci_engine.Node_env

type protocol = Onepaxos | Multipaxos | Twopc | Mencius | Cheappaxos

let protocol_name = function
  | Onepaxos -> "1paxos"
  | Multipaxos -> "multipaxos"
  | Twopc -> "2pc"
  | Mencius -> "mencius"
  | Cheappaxos -> "cheappaxos"

type placement =
  | Dedicated of { n_replicas : int; n_clients : int }
  | Joint of { n_nodes : int }

(* Open-loop workload knobs; everything deployment-shaped (targets,
   timeouts, the measurement window) is derived from the spec. *)
type open_loop = {
  arrival : Ci_load.Arrival.spec;
  key_dist : Ci_load.Key_dist.spec;
  key_space : int;
  mix : Ci_load.Open_client.mix;
  range_span : int;
  population : int;
  sessions : int;
}

let default_open_loop =
  {
    arrival = Ci_load.Arrival.Fixed 50_000.;
    key_dist = Ci_load.Key_dist.Uniform;
    key_space = 65_536;
    mix = { Ci_load.Open_client.reads = 0.5; cas = 0.; ranges = 0. };
    range_span = 16;
    population = 100_000;
    sessions = 16;
  }

type spec = {
  protocol : protocol;
  placement : placement;
  groups : int;
  cross_shard_ratio : float;
  topology : Topology.t;
  params : Net_params.t;
  duration : int;
  warmup : int;
  drain : int;
  seed : int;
  read_ratio : float;
  relaxed_reads : bool;
  local_reads : bool;
  think : int;
  timeout : int;
  max_requests : int option;
  faults : Fault_plan.t list;
  nemesis : Ci_faults.t;
  bucket : int;
  colocate_acceptor : bool;
  batch : int;
  batch_delay : int;
  pipeline : int;
  lease : int;
  lease_skew : int;
  open_loop : open_loop option;
  trace : Ci_obs.Event.ring option;
}

let default_spec ~protocol ~placement =
  {
    protocol;
    placement;
    groups = 1;
    cross_shard_ratio = 0.;
    topology = Topology.opteron_48;
    params = Net_params.multicore;
    duration = Sim_time.ms 50;
    warmup = Sim_time.ms 5;
    drain = Sim_time.ms 5;
    seed = 42;
    read_ratio = 0.;
    relaxed_reads = false;
    local_reads = false;
    think = 0;
    timeout = Sim_time.ms 2;
    max_requests = None;
    faults = [];
    nemesis = Ci_faults.empty;
    bucket = Sim_time.ms 10;
    colocate_acceptor = false;
    batch = 1;
    batch_delay = Sim_time.us 5;
    pipeline = 0;
    lease = 0;
    lease_skew = 0;
    open_loop = None;
    trace = None;
  }

type window_counts = {
  w_messages : int;
  w_sends : int;
  w_self : int;
  w_retries : int;
  w_replies : int;
}

type window_split = {
  warmup_w : window_counts;
  measure_w : window_counts;
  drain_w : window_counts;
}

type core_usage = {
  u_core : int;
  u_busy_ns : int;
  u_util : float;
  u_queue_peak : int;
  u_slowed_ns : int;
}

type result = {
  commits : int;
  total_replies : int;
  throughput : float;
  latency : Ci_stats.Summary.t;
  timeline : float array;
  messages : int;
  messages_total : int;
  self_delivered : int;
  self_delivered_total : int;
  retries : int;
  retries_total : int;
  windows : window_split;
  cores : core_usage list;
  leader_changes : int;
  leader_changes_sum : int;
  acceptor_changes : int;
  acceptor_changes_sum : int;
  sim_events : int;
  lease_reads : int;
  load : Ci_load.Load_stats.t option;
  metrics : Metrics.t;
  consistency : Consistency.report;
  atomicity : Ci_rsm.Atomicity.report option;
  failover : Ci_obs.Failover.t option;
}

(* One instant's view of every cumulative counter — taken at the window
   boundaries from inside the simulation. *)
type snap = {
  s_delivered : int;
  s_sent : int;
  s_self : int;
  s_retries : int;
  s_replies : int;
  s_io : (int * int * int) array; (* per node: sent, received, self *)
  s_busy : int array; (* per core: elapsed occupation ns *)
}

(* A protocol replica, uniformly. *)
type replica =
  | Op of Ci_consensus.Onepaxos.t
  | Mp of Ci_consensus.Multipaxos.t
  | Tp of Ci_consensus.Twopc.t
  | Mn of Ci_consensus.Mencius.t
  | Cp of Ci_consensus.Cheap_paxos.t

(* Per-replica nemesis bookkeeping. [alive] is the {e current}
   incarnation's liveness cell — a crash flips the cell the dead
   incarnation's timers were gated on, a restart installs a fresh cell,
   so stale timers can never act for their successor. *)
type stable_snap = St_op of Onepaxos.stable | St_mp of Multipaxos.stable

type nem_state = {
  mutable alive : bool ref;
  mutable paused : bool;
  pending : (unit -> unit) Queue.t;
      (** Messages and timer thunks deferred while paused, replayed in
          arrival order at resume (SIGCONT drains the backlog). *)
  mutable snap : stable_snap option;
      (** Durable registers captured at the crash instant. *)
}

(* Gate a node environment for one incarnation: timers of a dead
   incarnation never fire, timers of a paused one are deferred. Sends
   need no gate — they only originate from handlers and timers, both of
   which are gated. *)
let gate_env (base : Wire.t Node_env.t) st alive =
  let wrap f () =
    if !alive then if st.paused then Queue.add f st.pending else f ()
  in
  {
    base with
    Node_env.after = (fun ~delay f -> base.Node_env.after ~delay (wrap f));
    after_cancel = (fun ~delay f -> base.Node_env.after_cancel ~delay (wrap f));
  }

let replica_handle r ~src msg =
  match r with
  | Op x -> Ci_consensus.Onepaxos.handle x ~src msg
  | Mp x -> Ci_consensus.Multipaxos.handle x ~src msg
  | Tp x -> Ci_consensus.Twopc.handle x ~src msg
  | Mn x -> Ci_consensus.Mencius.handle x ~src msg
  | Cp x -> Ci_consensus.Cheap_paxos.handle x ~src msg

let replica_start = function
  | Op x -> Ci_consensus.Onepaxos.start x
  | Mp x -> Ci_consensus.Multipaxos.start x
  | Cp x -> Ci_consensus.Cheap_paxos.start x
  | Tp _ | Mn _ -> ()

let replica_core = function
  | Op x -> Ci_consensus.Onepaxos.replica_core x
  | Mp x -> Ci_consensus.Multipaxos.replica_core x
  | Tp x -> Ci_consensus.Twopc.replica_core x
  | Mn x -> Ci_consensus.Mencius.replica_core x
  | Cp x -> Ci_consensus.Cheap_paxos.replica_core x

let leader_changes_of = function
  | Op x -> Ci_consensus.Onepaxos.leader_changes x
  | Mp x -> Ci_consensus.Multipaxos.elections x
  | Cp x -> Ci_consensus.Cheap_paxos.reconfigs x
  | Tp _ | Mn _ -> 0

let acceptor_changes_of = function
  | Op x -> Ci_consensus.Onepaxos.acceptor_changes x
  | Mp _ | Tp _ | Mn _ | Cp _ -> 0

let run spec =
  let n_cores = Topology.n_cores spec.topology in
  let n_replicas, n_clients, joint =
    match spec.placement with
    | Dedicated { n_replicas; n_clients } -> (n_replicas, n_clients, false)
    | Joint { n_nodes } -> (n_nodes, n_nodes, true)
  in
  if n_replicas < 1 then invalid_arg "Runner.run: need at least one replica";
  if spec.groups < 1 then invalid_arg "Runner.run: groups must be >= 1";
  if not (spec.cross_shard_ratio >= 0. && spec.cross_shard_ratio <= 1.) then
    invalid_arg "Runner.run: cross_shard_ratio must be in [0, 1]";
  let n_groups = spec.groups in
  if n_groups > 1 then begin
    (match spec.protocol with
    | Onepaxos | Multipaxos -> ()
    | Twopc | Mencius | Cheappaxos ->
      invalid_arg
        "Runner.run: groups > 1 requires a shardable protocol (1paxos or \
         multipaxos)");
    if joint then
      invalid_arg "Runner.run: groups > 1 requires dedicated placement";
    if spec.relaxed_reads then
      invalid_arg "Runner.run: relaxed reads are not routed across shards"
  end;
  if spec.lease > 0 then begin
    (match spec.protocol with
    | Onepaxos | Multipaxos -> ()
    | Twopc | Mencius | Cheappaxos ->
      invalid_arg
        "Runner.run: leader leases require 1paxos or multipaxos");
    if spec.relaxed_reads then
      invalid_arg
        "Runner.run: leases and relaxed reads are mutually exclusive read \
         paths"
  end;
  if spec.open_loop <> None && joint then
    invalid_arg "Runner.run: open-loop load requires dedicated placement";
  (* [n_replicas] is per group; routers get their own nodes. *)
  let total_replicas = n_groups * n_replicas in
  let n_routers = if n_groups = 1 then 0 else n_groups in
  if total_replicas > n_cores then
    invalid_arg "Runner.run: more replicas than cores";
  if (not joint) && n_clients < 1 then invalid_arg "Runner.run: need clients";
  List.iter
    (fun f ->
      match Fault_plan.validate ~n_cores f with
      | Ok () -> ()
      | Error e -> invalid_arg ("Runner.run: fault plan: " ^ e))
    spec.faults;
  let has_crashpause =
    Ci_faults.crashes spec.nemesis <> [] || Ci_faults.pauses spec.nemesis <> []
  in
  if not (Ci_faults.is_empty spec.nemesis) then begin
    (match Ci_faults.validate ~n_cores ~n_nodes:total_replicas spec.nemesis with
    | Ok () -> ()
    | Error e -> invalid_arg ("Runner.run: nemesis: " ^ e));
    if has_crashpause then begin
      (match spec.protocol with
      | Onepaxos | Multipaxos -> ()
      | Twopc | Mencius | Cheappaxos ->
        invalid_arg
          "Runner.run: nemesis crash/pause requires a protocol with \
           crash-recovery (1paxos or multipaxos)");
      if joint then
        invalid_arg
          "Runner.run: nemesis crash/pause requires dedicated placement \
           (a joint node's client would die with its replica)"
    end
  end;
  let machine =
    Machine.create ~seed:spec.seed ~topology:spec.topology ~params:spec.params ()
  in
  (* Replicas occupy cores 0..R-1, like the paper's taskset layout.
     Sharded runs lay groups out group-major over the same contiguous
     range, so group g spans cores [g*R, (g+1)*R): with the Topology's
     socket structure, growing the socket count spreads whole groups
     across sockets — exactly what the shards figure sweeps. *)
  let replica_nodes =
    Array.init total_replicas (fun i -> Machine.add_node machine ~core:i)
  in
  let replica_ids = Array.map Machine.node_id replica_nodes in
  let group_ids g = Array.sub replica_ids (g * n_replicas) n_replicas in
  let group_of_replica i = i / n_replicas in
  (* Failure-detection and retry timeouts must exceed the network round
     trip: the multicore defaults would make LAN deployments suspect
     healthy peers forever. One hop costs send + prop + recv + handler. *)
  let hop =
    spec.params.Net_params.send_cost + spec.params.Net_params.prop_inter
    + spec.params.Net_params.recv_cost + spec.params.Net_params.handler_cost
  in
  let rtt = 2 * hop in
  let op_config ~replicas:replica_ids () =
    let d = Ci_consensus.Onepaxos.default_config ~replicas:replica_ids in
    {
      d with
      Ci_consensus.Onepaxos.relaxed_reads = spec.relaxed_reads;
      initial_acceptor =
        (if spec.colocate_acceptor then replica_ids.(0)
         else replica_ids.(1 mod Array.length replica_ids));
      acceptor_timeout = max d.Ci_consensus.Onepaxos.acceptor_timeout (4 * rtt);
      prepare_timeout = max d.Ci_consensus.Onepaxos.prepare_timeout (4 * rtt);
      check_period = max d.Ci_consensus.Onepaxos.check_period rtt;
      pu_timeout = max d.Ci_consensus.Onepaxos.pu_timeout (3 * rtt);
      max_batch = spec.batch;
      batch_delay = spec.batch_delay;
      window = spec.pipeline;
      lease = spec.lease;
      lease_skew = spec.lease_skew;
    }
  in
  let mp_config ~replicas:replica_ids () =
    let d = Ci_consensus.Multipaxos.default_config ~replicas:replica_ids in
    {
      d with
      Ci_consensus.Multipaxos.relaxed_reads = spec.relaxed_reads;
      election_timeout = max d.Ci_consensus.Multipaxos.election_timeout (3 * rtt);
      max_batch = spec.batch;
      batch_delay = spec.batch_delay;
      window = spec.pipeline;
      lease = spec.lease;
      lease_skew = spec.lease_skew;
    }
  in
  let make_replica ~group env =
    let replicas = group_ids group in
    match spec.protocol with
    | Onepaxos ->
      Op (Ci_consensus.Onepaxos.create ~env ~config:(op_config ~replicas ()))
    | Multipaxos ->
      Mp (Ci_consensus.Multipaxos.create ~env ~config:(mp_config ~replicas ()))
    | Twopc ->
      let cfg =
        {
          (Ci_consensus.Twopc.default_config ~replicas) with
          local_reads = spec.local_reads;
        }
      in
      Tp (Ci_consensus.Twopc.create ~env ~config:cfg)
    | Mencius ->
      let cfg =
        {
          (Ci_consensus.Mencius.default_config ~replicas) with
          relaxed_reads = spec.relaxed_reads;
        }
      in
      Mn (Ci_consensus.Mencius.create ~env ~config:cfg)
    | Cheappaxos ->
      let d = Ci_consensus.Cheap_paxos.default_config ~replicas in
      let cfg =
        {
          d with
          Ci_consensus.Cheap_paxos.acceptor_timeout =
            max d.Ci_consensus.Cheap_paxos.acceptor_timeout (4 * rtt);
          check_period = max d.Ci_consensus.Cheap_paxos.check_period rtt;
          reconfig_timeout = max d.Ci_consensus.Cheap_paxos.reconfig_timeout (4 * rtt);
        }
      in
      Cp (Ci_consensus.Cheap_paxos.create ~env ~config:cfg)
  in
  let nem =
    Array.init total_replicas (fun _ ->
        { alive = ref true; paused = false; pending = Queue.create (); snap = None })
  in
  (* Environments are wrapped only under a crash/pause schedule: the
     empty-nemesis path hands protocols the machine's own environment,
     untouched. *)
  let env_for i =
    let base = Machine.env replica_nodes.(i) in
    if has_crashpause then gate_env base nem.(i) nem.(i).alive else base
  in
  let replicas =
    Array.init total_replicas (fun i ->
        make_replica ~group:(group_of_replica i) (env_for i))
  in
  (* Routers (sharded runs) and clients share the cores after the
     replicas; at [groups = 1] there are no routers and the layout is
     the historical one. *)
  let tail_core i =
    let tail_cores = n_cores - total_replicas in
    if tail_cores < 1 then invalid_arg "Runner.run: no cores left for clients";
    total_replicas + (i mod tail_cores)
  in
  let router_nodes =
    Array.init n_routers (fun j -> Machine.add_node machine ~core:(tail_core j))
  in
  let router_ids = Array.map Machine.node_id router_nodes in
  let client_nodes =
    if joint then replica_nodes
    else
      Array.init n_clients (fun i ->
          Machine.add_node machine ~core:(tail_core (n_routers + i)))
  in
  let w0 = spec.warmup and w1 = spec.warmup + spec.duration in
  let horizon = w1 + spec.drain in
  let stats = Run_stats.create ~bucket:spec.bucket in
  let load_sink =
    match spec.open_loop with
    | None -> None
    | Some _ -> Some (Ci_load.Load_stats.create ~from_:w0 ~until_:w1)
  in
  let policy =
    {
      (Client.default_policy
         ~targets:(if n_routers = 0 then replica_ids else router_ids))
      with
      Client.failover = spec.protocol <> Twopc;
      timeout = spec.timeout;
      think = spec.think;
      read_ratio = spec.read_ratio;
      cross_shard_ratio = spec.cross_shard_ratio;
      groups = n_groups;
      relaxed_reads = spec.relaxed_reads;
      read_own_node = joint && (spec.local_reads || spec.relaxed_reads);
      max_requests = spec.max_requests;
    }
  in
  let clients =
    if spec.open_loop <> None then [||]
    else
      Array.mapi
        (fun i node ->
          (* Mencius distributes load by design: spread the clients over
             the leaders instead of pointing everyone at replica 0. *)
          let policy =
            if n_routers > 0 then { policy with Client.primary = i mod n_routers }
            else if spec.protocol = Mencius then
              { policy with Client.primary = i mod n_replicas }
            else policy
          in
          Client.create ~env:(Machine.env node) ~policy ~stats)
        client_nodes
  in
  (* Open-loop drivers replace the closed-loop clients on the same
     nodes: arrivals follow the offered schedule up to the measurement
     end, and the drain window lets the backlog play out. *)
  let drivers =
    match (spec.open_loop, load_sink) with
    | Some ol, Some sink ->
      Array.mapi
        (fun i node ->
          let config =
            {
              Ci_load.Open_client.targets =
                (if n_routers = 0 then replica_ids else router_ids);
              primary =
                (if n_routers > 0 then i mod n_routers
                 else if spec.protocol = Mencius then i mod n_replicas
                 else 0);
              failover = spec.protocol <> Twopc;
              timeout = spec.timeout;
              arrival = ol.arrival;
              key_dist = ol.key_dist;
              key_space = ol.key_space;
              mix = ol.mix;
              range_span = ol.range_span;
              population = ol.population;
              sessions = ol.sessions;
              relaxed_reads = spec.relaxed_reads;
              stop_at = w1;
            }
          in
          Ci_load.Open_client.create ~env:(Machine.env node) ~config
            ~stats:sink)
        client_nodes
    | _ -> [||]
  in
  (* Sharded runs put a 2PC participant in front of each group's entry
     replica: it consumes the router's prepare/commit messages and the
     consensus replies to its own self-requests; everything else falls
     through to the replica. *)
  let participants =
    Array.init
      (if n_groups = 1 then 0 else n_groups)
      (fun g -> Twopc.Participant.create ~env:(env_for (g * n_replicas)))
  in
  let part_of i =
    if n_groups > 1 && i mod n_replicas = 0 then
      Some participants.(group_of_replica i)
    else None
  in
  (* Handler wiring: replies go to the client half, everything else to
     the replica half (joint nodes host both). Under a crash/pause
     schedule the handler resolves [replicas.(i)] at delivery time (a
     restart swaps the incarnation in place) and buffers while
     paused. *)
  Array.iteri
    (fun i node ->
      let r = replicas.(i) in
      let deliver ~src msg =
        match part_of i with
        | Some p when Twopc.Participant.handle p ~src msg -> ()
        | Some _ | None -> replica_handle replicas.(i) ~src msg
      in
      if has_crashpause then
        let st = nem.(i) in
        Machine.set_handler node (fun ~src msg ->
            if st.paused then
              Queue.add (fun () -> deliver ~src msg) st.pending
            else deliver ~src msg)
      else if joint then
        let c = clients.(i) in
        Machine.set_handler node (fun ~src msg ->
            match msg with
            | Wire.Reply _ -> Client.handle c ~src msg
            | _ -> replica_handle r ~src msg)
      else
        Machine.set_handler node (fun ~src msg -> deliver ~src msg))
    replica_nodes;
  if not joint then
    Array.iteri
      (fun i node ->
        if Array.length drivers > 0 then
          let d = drivers.(i) in
          Machine.set_handler node (fun ~src msg ->
              Ci_load.Open_client.handle d ~src msg)
        else
          let c = clients.(i) in
          Machine.set_handler node (fun ~src msg -> Client.handle c ~src msg))
      client_nodes;
  (* Routers: hash single-shard commands to their group's entry replica,
     run cross-shard multi-puts as 2PC transactions. *)
  let routers =
    Array.map
      (fun node ->
        let config =
          {
            Shard.Router.groups = n_groups;
            leader_of =
              Array.init n_groups (fun g -> replica_ids.(g * n_replicas));
            retry_timeout = spec.timeout;
          }
        in
        let r = Shard.Router.create ~env:(Machine.env node) ~config in
        Machine.set_handler node (fun ~src msg -> Shard.Router.handle r ~src msg);
        r)
      router_nodes
  in
  (* Typed observability: record trace events when the caller supplied a
     ring, labelling message events with their wire constructor names. *)
  Machine.set_observer ~msg_label:Wire.kind machine spec.trace;
  (* Faults, protocol bootstrap, load. *)
  List.iter (fun f -> Fault_plan.apply f machine) spec.faults;
  let do_crash ~node:i =
    let st = nem.(i) in
    st.snap <-
      Some
        (match replicas.(i) with
        | Op x -> St_op (Ci_consensus.Onepaxos.stable x)
        | Mp x -> St_mp (Ci_consensus.Multipaxos.stable x)
        | Tp _ | Mn _ | Cp _ -> assert false);
    st.alive := false;
    st.paused <- false;
    Queue.clear st.pending;
    Machine.set_node_down replica_nodes.(i) true
  in
  let do_restart ~node:i =
    let st = nem.(i) in
    Machine.set_node_down replica_nodes.(i) false;
    let alive = ref true in
    st.alive <- alive;
    let env = gate_env (Machine.env replica_nodes.(i)) st alive in
    let r =
      match st.snap with
      | Some (St_op s) ->
        Op
          (Ci_consensus.Onepaxos.recover ~env
             ~config:(op_config ~replicas:(group_ids (group_of_replica i)) ())
             ~stable:s)
      | Some (St_mp s) ->
        Mp
          (Ci_consensus.Multipaxos.recover ~env
             ~config:(mp_config ~replicas:(group_ids (group_of_replica i)) ())
             ~stable:s)
      | None -> assert false
    in
    replicas.(i) <- r
  in
  let do_pause ~node:i =
    nem.(i).paused <- true;
    Machine.note_phase replica_nodes.(i) ~phase:"paused"
  in
  let do_resume ~node:i =
    let st = nem.(i) in
    if st.paused then begin
      st.paused <- false;
      Machine.note_phase replica_nodes.(i) ~phase:"resumed";
      while not (Queue.is_empty st.pending) do
        (Queue.pop st.pending) ()
      done
    end
  in
  Nemesis.install machine ~nemesis:spec.nemesis ~crash:do_crash
    ~restart:do_restart ~pause:do_pause ~resume:do_resume;
  Array.iter replica_start replicas;
  Array.iter Client.start clients;
  Array.iter Ci_load.Open_client.start drivers;
  (* Counter snapshots at the window boundaries, taken from inside the
     simulation so every count is confined to its window (previously
     [messages] and [retries] covered the whole run while [commits]
     covered only [w0, w1) — the window-skew bug). *)
  let take_snap () =
    {
      s_delivered = Machine.total_messages machine;
      s_sent = Machine.messages_sent_total machine;
      s_self = Machine.self_delivered_total machine;
      s_retries =
        Array.fold_left (fun acc c -> acc + Client.retries c) 0 clients
        + (match load_sink with
          | Some s -> Ci_load.Load_stats.retries s
          | None -> 0);
      s_replies =
        Run_stats.completed stats
        + (match load_sink with
          | Some s -> Ci_load.Load_stats.completed s
          | None -> 0);
      s_io = Machine.io_snapshot machine;
      s_busy =
        Array.init n_cores (fun c -> Cpu.busy_elapsed (Machine.cpu machine ~core:c));
    }
  in
  let snap0 = ref None and snap1 = ref None in
  let sim = Machine.sim machine in
  Sim.schedule_at sim ~time:w0 (fun () -> snap0 := Some (take_snap ()));
  Sim.schedule_at sim ~time:w1 (fun () -> snap1 := Some (take_snap ()));
  Machine.run_until machine ~time:horizon;
  (* Measurements. *)
  let n_nodes = Machine.n_nodes machine in
  let zero_snap =
    {
      s_delivered = 0;
      s_sent = 0;
      s_self = 0;
      s_retries = 0;
      s_replies = 0;
      s_io = Array.make n_nodes (0, 0, 0);
      s_busy = Array.make n_cores 0;
    }
  in
  let s_end = take_snap () in
  let s0 = Option.value !snap0 ~default:s_end in
  let s1 = Option.value !snap1 ~default:s_end in
  let window_diff a b =
    {
      w_messages = b.s_delivered - a.s_delivered;
      w_sends = b.s_sent - a.s_sent;
      w_self = b.s_self - a.s_self;
      w_retries = b.s_retries - a.s_retries;
      w_replies = b.s_replies - a.s_replies;
    }
  in
  let windows =
    {
      warmup_w = window_diff zero_snap s0;
      measure_w = window_diff s0 s1;
      drain_w = window_diff s1 s_end;
    }
  in
  let used_cores =
    let tbl = Hashtbl.create 16 in
    Array.iter (fun n -> Hashtbl.replace tbl (Machine.core_of n) ()) replica_nodes;
    Array.iter (fun n -> Hashtbl.replace tbl (Machine.core_of n) ()) router_nodes;
    Array.iter (fun n -> Hashtbl.replace tbl (Machine.core_of n) ()) client_nodes;
    Hashtbl.fold (fun c () acc -> c :: acc) tbl [] |> List.sort compare
  in
  let cores =
    List.map
      (fun c ->
        let cpu = Machine.cpu machine ~core:c in
        let busy = s1.s_busy.(c) - s0.s_busy.(c) in
        {
          u_core = c;
          u_busy_ns = busy;
          u_util = float_of_int busy /. float_of_int spec.duration;
          u_queue_peak = Cpu.queue_peak cpu;
          u_slowed_ns = Cpu.slowed_total cpu;
        })
      used_cores
  in
  let lat = Run_stats.latencies_in stats ~from_:w0 ~until_:w1 in
  let commits =
    Run_stats.completed_in stats ~from_:w0 ~until_:w1
    + (match load_sink with
      | Some s -> Ci_load.Load_stats.completed s
      | None -> 0)
  in
  let throughput =
    float_of_int commits /. Sim_time.to_s_float spec.duration
  in
  (* Metrics registry: every number the tables rest on, keyed
     hierarchically. *)
  let metrics = Metrics.create () in
  let set_window prefix w =
    Metrics.set_int metrics (prefix ^ ".messages") w.w_messages;
    Metrics.set_int metrics (prefix ^ ".sends") w.w_sends;
    Metrics.set_int metrics (prefix ^ ".self") w.w_self;
    Metrics.set_int metrics (prefix ^ ".retries") w.w_retries;
    Metrics.set_int metrics (prefix ^ ".replies") w.w_replies
  in
  Metrics.set_int metrics "commits.measure" commits;
  Metrics.set_float metrics "throughput.ops" throughput;
  set_window "warmup" windows.warmup_w;
  set_window "measure" windows.measure_w;
  set_window "drain" windows.drain_w;
  Metrics.set_int metrics "messages.total" s_end.s_delivered;
  Metrics.set_int metrics "self.total" s_end.s_self;
  Metrics.set_int metrics "retries.total" s_end.s_retries;
  for id = 0 to n_nodes - 1 do
    let sent_of (s, _, _) = s and recv_of (_, r, _) = r and self_of (_, _, x) = x in
    let win name f =
      Metrics.set_int metrics (Printf.sprintf "node%d.%s.warmup" id name) (f s0.s_io.(id));
      Metrics.set_int metrics
        (Printf.sprintf "node%d.%s.measure" id name)
        (f s1.s_io.(id) - f s0.s_io.(id));
      Metrics.set_int metrics
        (Printf.sprintf "node%d.%s.drain" id name)
        (f s_end.s_io.(id) - f s1.s_io.(id))
    in
    win "sent" sent_of;
    win "recv" recv_of;
    win "self" self_of
  done;
  List.iter
    (fun u ->
      Metrics.set_int metrics (Printf.sprintf "core%d.busy_ns.measure" u.u_core) u.u_busy_ns;
      Metrics.set_float metrics (Printf.sprintf "core%d.util.measure" u.u_core) u.u_util;
      Metrics.set_int metrics (Printf.sprintf "core%d.queue_peak" u.u_core) u.u_queue_peak;
      Metrics.set_int metrics (Printf.sprintf "core%d.slowed_ns" u.u_core) u.u_slowed_ns)
    cores;
  let ch = Machine.channel_totals machine in
  Metrics.set_int metrics "channels.count" ch.Machine.ch_count;
  Metrics.set_int metrics "channels.blocked" ch.Machine.ch_blocked;
  Metrics.set_int metrics "channels.stall_ns" ch.Machine.ch_stall_ns;
  Metrics.set_int metrics "channels.occupancy_peak" ch.Machine.ch_occupancy_peak;
  Metrics.set_int metrics "channels.outbox_peak" ch.Machine.ch_outbox_peak;
  let coalesce_groups, coalesce_messages = Machine.coalescing_totals machine in
  Metrics.set_int metrics "coalesce.groups" coalesce_groups;
  Metrics.set_int metrics "coalesce.messages" coalesce_messages;
  let sim_events = Ci_engine.Sim.events_fired (Machine.sim machine) in
  Metrics.set_int metrics "sim.events" sim_events;
  (match spec.trace with
   | Some ring -> Metrics.set_int metrics "trace.dropped" (Ci_obs.Event.dropped ring)
   | None -> ());
  (* Consistency. *)
  let proposed_tbl = Hashtbl.create 4096 in
  Array.iter
    (fun c ->
      let id = Client.node_id c in
      List.iter
        (fun (req_id, cmd) -> Hashtbl.replace proposed_tbl (id, req_id) cmd)
        (Client.issued c))
    clients;
  Array.iter
    (fun d ->
      let id = Ci_load.Open_client.node_id d in
      List.iter
        (fun (req_id, cmd) -> Hashtbl.replace proposed_tbl (id, req_id) cmd)
        (Ci_load.Open_client.issued d))
    drivers;
  (* Participants propose [Prep]/[Fin] as self-requests under their own
     node's identity — as much client input as the clients' commands. *)
  Array.iteri
    (fun g p ->
      let id = replica_ids.(g * n_replicas) in
      List.iter
        (fun (req_id, cmd) -> Hashtbl.replace proposed_tbl (id, req_id) cmd)
        (Twopc.Participant.issued p))
    participants;
  let proposed (v : Wire.value) =
    (* Mencius skip placeholders are protocol no-ops, not client input. *)
    Ci_consensus.Mencius.is_skip_value v
    ||
    match Hashtbl.find_opt proposed_tbl (v.Wire.client, v.Wire.req_id) with
    | Some cmd -> Command.equal cmd v.Wire.cmd
    | None -> false
  in
  let acked =
    (Array.to_list clients |> List.concat_map Client.acked_writes)
    @ (Array.to_list drivers
      |> List.concat_map Ci_load.Open_client.acked_writes)
  in
  let views =
    Array.to_list (Array.map (fun r -> Replica_core.view (replica_core r)) replicas)
  in
  let consistency, atomicity =
    if n_groups = 1 then
      ( Consistency.check ~equal:Wire.value_equal ~proposed ~acked
          ~key_of:Wire.value_key views,
        None )
    else begin
      (* Each group is an independent consensus: agreement and state
         convergence hold within a group, never across groups. An acked
         single-shard write must be learned by its owning group; an
         acked cross-shard write commits under the router's identity
         (no group ever learns the client's own (client, req_id)), so
         it belongs to the atomicity checker instead. *)
      let cmd_of key = Hashtbl.find_opt proposed_tbl key in
      let is_cross key =
        match cmd_of key with
        | Some cmd -> List.length (Shard.groups_of ~groups:n_groups cmd) > 1
        | None -> false
      in
      let cross_acked, single_acked = List.partition is_cross acked in
      let acked_of g =
        List.filter
          (fun key ->
            match cmd_of key with
            | Some cmd -> Shard.group_of_cmd ~groups:n_groups cmd = g
            | None -> false)
          single_acked
      in
      let group_views g = List.filteri (fun i _ -> group_of_replica i = g) views in
      let reports =
        List.init n_groups (fun g ->
            Consistency.check ~equal:Wire.value_equal ~proposed
              ~acked:(acked_of g) ~key_of:Wire.value_key (group_views g))
      in
      let consistency =
        {
          Consistency.violations =
            List.concat_map
              (fun (r : Consistency.report) -> r.Consistency.violations)
              reports;
          checked_instances =
            List.fold_left
              (fun a (r : Consistency.report) ->
                a + r.Consistency.checked_instances)
              0 reports;
          checked_replicas =
            List.fold_left
              (fun a (r : Consistency.report) -> a + r.Consistency.checked_replicas)
              0 reports;
        }
      in
      (* The atomicity check reads each group's decided commands off the
         union of its replicas' logs (agreement inside the group was
         just checked, so the union is one consistent sequence). *)
      let decided =
        List.init n_groups (fun g ->
            let cmds =
              List.concat_map
                (fun (rv : Wire.value Consistency.replica_view) ->
                  List.map
                    (fun (_, (v : Wire.value)) -> v.Wire.cmd)
                    rv.Consistency.decisions)
                (group_views g)
            in
            (g, cmds))
      in
      let txns =
        Array.to_list routers |> List.concat_map Shard.Router.txn_reports
      in
      (consistency, Some (Atomicity.check ~decided ~txns ~acked:cross_acked))
    end
  in
  if n_groups > 1 then begin
    let sum f = Array.fold_left (fun a r -> a + f r) 0 routers in
    Metrics.set_int metrics "shard.groups" n_groups;
    Metrics.set_int metrics "shard.forwarded" (sum Shard.Router.forwarded);
    Metrics.set_int metrics "shard.committed" (sum Shard.Router.committed);
    Metrics.set_int metrics "shard.aborted" (sum Shard.Router.aborted)
  end;
  let leader_changes =
    Array.fold_left (fun acc r -> max acc (leader_changes_of r)) 0 replicas
  in
  let leader_changes_sum =
    Array.fold_left (fun acc r -> acc + leader_changes_of r) 0 replicas
  in
  let acceptor_changes =
    Array.fold_left (fun acc r -> max acc (acceptor_changes_of r)) 0 replicas
  in
  let acceptor_changes_sum =
    Array.fold_left (fun acc r -> acc + acceptor_changes_of r) 0 replicas
  in
  Metrics.set_int metrics "leader_changes.max" leader_changes;
  Metrics.set_int metrics "leader_changes.sum" leader_changes_sum;
  Metrics.set_int metrics "acceptor_changes.max" acceptor_changes;
  Metrics.set_int metrics "acceptor_changes.sum" acceptor_changes_sum;
  let lease_reads =
    Array.fold_left
      (fun acc r ->
        acc
        +
        match r with
        | Op x -> Ci_consensus.Onepaxos.lease_reads x
        | Mp x -> Ci_consensus.Multipaxos.lease_reads x
        | Tp _ | Mn _ | Cp _ -> 0)
      0 replicas
  in
  (* Lease and load metric keys exist only when the feature is on, so
     default-spec metric dumps are unchanged. *)
  if spec.lease > 0 then Metrics.set_int metrics "lease.reads" lease_reads;
  (match load_sink with
  | Some s ->
    let lp = Ci_load.Load_stats.latency_percentiles s in
    let sp = Ci_load.Load_stats.service_percentiles s in
    Metrics.set_int metrics "load.issued" (Ci_load.Load_stats.issued s);
    Metrics.set_int metrics "load.completed" (Ci_load.Load_stats.completed s);
    Metrics.set_int metrics "load.rejected" (Ci_load.Load_stats.rejected s);
    Metrics.set_int metrics "load.stale_reads"
      (Ci_load.Load_stats.stale_reads s);
    Metrics.set_int metrics "load.max_backlog"
      (Ci_load.Load_stats.max_backlog s);
    Metrics.set_float metrics "load.throughput"
      (Ci_load.Load_stats.throughput s);
    Metrics.set_int metrics "load.p50" lp.Ci_load.Load_stats.p50;
    Metrics.set_int metrics "load.p99" lp.Ci_load.Load_stats.p99;
    Metrics.set_int metrics "load.p999" lp.Ci_load.Load_stats.p999;
    Metrics.set_int metrics "load.service_p50" sp.Ci_load.Load_stats.p50;
    Metrics.set_int metrics "load.service_p99" sp.Ci_load.Load_stats.p99;
    Metrics.set_int metrics "load.service_p999" sp.Ci_load.Load_stats.p999
  | None -> ());
  (* Failover shape around the schedule's first fault. Fault metric keys
     exist only under a non-empty nemesis, so fault-free metric dumps
     are unchanged. *)
  let failover =
    match Ci_faults.first_fault_at spec.nemesis with
    | Some fault_at when fault_at >= 0 && fault_at < horizon ->
      Metrics.set_int metrics "faults.dropped" (Machine.fault_dropped machine);
      Metrics.set_int metrics "faults.duplicated"
        (Machine.fault_duplicated machine);
      let completions = Run_stats.completions_in stats ~from_:0 ~until_:horizon in
      let f =
        Ci_obs.Failover.analyze ~completions ~from_:0 ~fault_at ~until_:horizon
      in
      Ci_obs.Failover.record metrics f;
      Some f
    | Some _ | None -> None
  in
  {
    commits;
    total_replies = s_end.s_replies;
    throughput;
    latency = Ci_stats.Summary.of_samples lat;
    timeline = Ci_stats.Timeseries.rates_per_sec (Run_stats.timeline stats) ~upto:(w1 + spec.drain);
    messages = windows.measure_w.w_messages;
    messages_total = s_end.s_delivered;
    self_delivered = windows.measure_w.w_self;
    self_delivered_total = s_end.s_self;
    retries = windows.measure_w.w_retries;
    retries_total = s_end.s_retries;
    windows;
    cores;
    leader_changes;
    leader_changes_sum;
    acceptor_changes;
    acceptor_changes_sum;
    sim_events;
    lease_reads;
    load = load_sink;
    metrics;
    consistency;
    atomicity;
    failover;
  }

let leader_util r =
  match List.find_opt (fun u -> u.u_core = 0) r.cores with
  | Some u -> u.u_util
  | None -> 0.

let pp_window fmt w =
  Format.fprintf fmt "msgs=%d sends=%d self=%d retries=%d replies=%d"
    w.w_messages w.w_sends w.w_self w.w_retries w.w_replies

let pp_result fmt r =
  Format.fprintf fmt
    "commits=%d throughput=%.0f op/s latency: %a; msgs=%d/%d self=%d/%d \
     retries=%d/%d lc=%d(sum %d) ac=%d(sum %d) leader-util=%.2f; %a"
    r.commits r.throughput Ci_stats.Summary.pp r.latency r.messages
    r.messages_total r.self_delivered r.self_delivered_total r.retries
    r.retries_total r.leader_changes r.leader_changes_sum r.acceptor_changes
    r.acceptor_changes_sum (leader_util r) Consistency.pp r.consistency

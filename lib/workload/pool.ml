(* Dependency-free domain pool for embarrassingly parallel simulation
   batches (sweep points, figure sections, bench workloads).

   A [parallel_map] call spawns [jobs - 1] worker domains (the calling
   domain is the last worker), all pulling index chunks from one atomic
   cursor — a chunked work queue with no locks and no channels. Each
   job writes only its own result slot, so the only cross-domain
   communication is the cursor, the failure cell and the final joins.

   The simulations themselves are safe to run concurrently because a
   run owns every piece of mutable state it touches (see DESIGN.md §8,
   "Run isolation"): the pool adds no synchronization around [f]. *)

let default_jobs () =
  match Sys.getenv_opt "CI_JOBS" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n when n >= 1 -> n
     | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let parallel_map ?(chunk = 1) ~jobs f xs =
  if jobs < 1 then invalid_arg "Pool.parallel_map: jobs must be >= 1";
  if chunk < 1 then invalid_arg "Pool.parallel_map: chunk must be >= 1";
  let n = Array.length xs in
  if jobs = 1 || n <= 1 then Array.map f xs
  else begin
    let results = Array.make n None in
    let cursor = Atomic.make 0 in
    let failure = Atomic.make None in
    let worker () =
      let continue = ref true in
      while !continue do
        let lo = Atomic.fetch_and_add cursor chunk in
        if lo >= n || Atomic.get failure <> None then continue := false
        else begin
          let hi = min n (lo + chunk) in
          try
            for i = lo to hi - 1 do
              results.(i) <- Some (f xs.(i))
            done
          with e ->
            (* First failure wins; the rest of the fleet drains its
               current chunk and stops claiming new work. *)
            let bt = Printexc.get_raw_backtrace () in
            ignore (Atomic.compare_and_set failure None (Some (e, bt)));
            continue := false
        end
      done
    in
    let domains =
      Array.init (min jobs n - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    Array.iter Domain.join domains;
    (match Atomic.get failure with
     | Some (e, bt) -> Printexc.raise_with_backtrace e bt
     | None -> ());
    Array.map
      (function
        | Some y -> y
        | None -> assert false (* no failure implies every slot was filled *))
      results
  end

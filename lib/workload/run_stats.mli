(** Shared measurement sink for one simulation run. *)

type sample = { intended_at : int; sent_at : int; replied_at : int }
(** One completed request: scheduled arrival, first transmission and
    reply instants. A closed-loop client has [intended_at = sent_at];
    an open-loop driver stamps [intended_at] with the instant the
    request {e should} have entered the system, even when the driver
    fell behind its own schedule. *)

type t
(** A mutable collector shared by all clients of a run. *)

val create : bucket:int -> t
(** [create ~bucket] is an empty collector; commits are also counted
    into a time series with the given bucket width (ns). *)

val record : t -> intended_at:int -> sent_at:int -> replied_at:int -> unit
(** [record t ~intended_at ~sent_at ~replied_at] logs one completed
    request. *)

val samples : t -> sample list
(** [samples t] is every completed request, in completion order. *)

val timeline : t -> Ci_stats.Timeseries.t
(** [timeline t] is the commit-time series. *)

val completed : t -> int
(** [completed t] is the number of recorded requests. *)

val latencies_in : t -> from_:int -> until_:int -> int array
(** [latencies_in t ~from_ ~until_] is the latencies (ns) of requests
    completed within the window, measured from the {e intended} arrival
    — the coordinated-omission-aware number a load generator must
    report. *)

val service_latencies_in : t -> from_:int -> until_:int -> int array
(** [service_latencies_in t ~from_ ~until_] is the send-to-reply
    latencies (ns) of requests completed within the window — the old,
    omission-biased measure, kept for comparison against it. *)

val completed_in : t -> from_:int -> until_:int -> int
(** [completed_in t ~from_ ~until_] counts requests completed within the
    window. *)

val completions_in : t -> from_:int -> until_:int -> int array
(** [completions_in t ~from_ ~until_] is the completion instants (ns)
    of requests completed within the window, sorted ascending — the
    input {!Ci_obs.Failover.analyze} expects. *)

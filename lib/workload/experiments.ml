module Machine = Ci_machine.Machine
module Topology = Ci_machine.Topology
module Net_params = Ci_machine.Net_params
module Sim_time = Ci_engine.Sim_time

(* ----- E1: Section 3 network characteristics --------------------------- *)

type netchar_row = {
  setting : string;
  trans_us : float;
  ping_us : float;
  prop_us : float;
  ratio : float;
}

(* Transmission delay: a sender pushes [k] messages into an effectively
   unbounded queue; the average core time per send approximates the
   transmission delay (the paper's first experiment). *)
let measure_trans ?(peer_core = 1) ~params ~topology k =
  let raw = { (Net_params.raw_channel params) with Net_params.queue_slots = k + 1 } in
  let m : int Machine.t = Machine.create ~topology ~params:raw () in
  let a = Machine.add_node m ~core:0 and b = Machine.add_node m ~core:peer_core in
  Machine.set_handler b (fun ~src:_ _ -> ());
  for i = 1 to k do
    Machine.send a ~dst:(Machine.node_id b) i
  done;
  Machine.run m;
  let busy = Ci_machine.Cpu.busy_total (Machine.cpu m ~core:0) in
  float_of_int busy /. float_of_int k /. 1000.

(* Propagation delay: with a single-slot queue the sender stalls until
   the head pointer comes back, so consecutive sends are spaced by
   2*trans + 2*prop (the paper's second experiment). *)
let measure_ping ?(peer_core = 1) ~params ~topology k =
  let raw = { (Net_params.raw_channel params) with Net_params.queue_slots = 1 } in
  let m : int Machine.t = Machine.create ~topology ~params:raw () in
  let a = Machine.add_node m ~core:0 and b = Machine.add_node m ~core:peer_core in
  let received = ref 0 and last = ref 0 in
  Machine.set_handler b (fun ~src:_ _ ->
      incr received;
      last := Machine.now m);
  for i = 1 to k do
    Machine.send a ~dst:(Machine.node_id b) i
  done;
  Machine.run m;
  assert (!received = k);
  float_of_int !last /. float_of_int k /. 1000.

let netchar ?jobs () =
  let jobs = match jobs with Some j -> j | None -> Pool.default_jobs () in
  let k = 1000 in
  let row (setting, peer_core, params, topology) =
    let trans_us = measure_trans ~peer_core ~params ~topology k in
    let ping_us = measure_ping ~peer_core ~params ~topology k in
    let prop_us = Float.max 0. ((ping_us -. (2. *. trans_us)) /. 2.) in
    let ratio = if prop_us > 0. then trans_us /. prop_us else infinity in
    { setting; trans_us; ping_us; prop_us; ratio }
  in
  Array.to_list
    (Pool.parallel_map ~jobs row
       [|
         (* Cores 0 and 1 share the 48-core machine's first socket; core 6
            sits on the next one — Figure 1's non-uniformity. *)
         ("mc-shared-llc", 1, Net_params.multicore, Topology.opteron_48);
         ("mc-cross-socket", 6, Net_params.multicore, Topology.opteron_48);
         ("lan", 1, Net_params.lan, Topology.create ~sockets:2 ~cores_per_socket:1);
       |])

(* ----- generic sweeps ---------------------------------------------------- *)

type point = {
  x : int;
  throughput : float;
  latency_us : float;
  leader_util : float;
}

type series = { label : string; points : point list }

let point_of_result x (r : Runner.result) =
  {
    x;
    throughput = r.Runner.throughput;
    latency_us = r.Runner.latency.Ci_stats.Summary.mean /. 1000.;
    leader_util = Runner.leader_util r;
  }

let guard_consistent context (r : Runner.result) =
  if not (Ci_rsm.Consistency.ok r.Runner.consistency) then
    Format.kasprintf failwith "%s: consistency violated: %a" context
      Ci_rsm.Consistency.pp r.Runner.consistency

let resolve_jobs = function Some j -> j | None -> Pool.default_jobs ()

(* Every experiment batch funnels through one [Pool.parallel_map] over
   the flattened spec array. Results are keyed by input index, and each
   run owns all its mutable state (DESIGN.md §8), so the rendered
   output is byte-identical at any job count. *)
let run_all ~jobs specs = Pool.parallel_map ~jobs Runner.run specs

(* Run several labelled sweeps as a single parallel batch so the pool
   load-balances across series, then regroup the results by index. *)
let sweep_group ~jobs (groups : (string * (int * Runner.spec) list) list) :
    series list =
  let specs =
    Array.of_list (List.concat_map (fun (_, xs) -> List.map snd xs) groups)
  in
  let results = run_all ~jobs specs in
  let i = ref 0 in
  List.map
    (fun (label, xs) ->
      let points =
        List.map
          (fun (x, _) ->
            let r = results.(!i) in
            incr i;
            guard_consistent label r;
            point_of_result x r)
          xs
      in
      { label; points })
    groups

let sweep ~jobs ~label ~make_spec xs : series =
  match
    sweep_group ~jobs [ (label, List.map (fun x -> (x, make_spec x)) xs) ]
  with
  | [ s ] -> s
  | _ -> assert false

(* ----- E2: Figure 2 ------------------------------------------------------ *)

let lan_topology n = Topology.create ~sockets:n ~cores_per_socket:1

let fig2 ?jobs ?(clients = [ 1; 2; 3; 5; 10; 20; 35; 50; 75; 100 ]) ?duration () =
  let jobs = resolve_jobs jobs in
  let multicore_clients = List.filter (fun c -> c <= 45) clients in
  let mc_spec c =
    let s =
      Runner.default_spec ~protocol:Runner.Multipaxos
        ~placement:(Runner.Dedicated { n_replicas = 3; n_clients = c })
    in
    match duration with Some d -> { s with Runner.duration = d } | None -> s
  in
  let lan_spec c =
    let s =
      Runner.default_spec ~protocol:Runner.Multipaxos
        ~placement:(Runner.Dedicated { n_replicas = 3; n_clients = c })
    in
    {
      s with
      Runner.topology = lan_topology (c + 4);
      params = Net_params.lan_wide;
      duration = (match duration with Some d -> d * 10 | None -> Sim_time.ms 500);
      warmup = Sim_time.ms 50;
      drain = Sim_time.ms 50;
      timeout = Sim_time.ms 40;
    }
  in
  sweep_group ~jobs
    [
      ( "Multi-Paxos multicore",
        List.map (fun c -> (c, mc_spec c)) multicore_clients );
      ("Multi-Paxos LAN", List.map (fun c -> (c, lan_spec c)) clients);
    ]

(* ----- E4: Section 7.2 latency table ------------------------------------- *)

type latency_row = {
  protocol : string;
  latency_us : float;
  paper_latency_us : float;
  throughput_1c : float;
  leader_util : float;
}

let latency_table ?jobs ?duration () =
  let jobs = resolve_jobs jobs in
  let rows =
    [| (Runner.Onepaxos, 16.0); (Runner.Multipaxos, 19.6); (Runner.Twopc, 21.4) |]
  in
  let spec proto =
    let s =
      Runner.default_spec ~protocol:proto
        ~placement:(Runner.Dedicated { n_replicas = 3; n_clients = 1 })
    in
    match duration with Some d -> { s with Runner.duration = d } | None -> s
  in
  let results = run_all ~jobs (Array.map (fun (p, _) -> spec p) rows) in
  Array.to_list
    (Array.mapi
       (fun i (proto, paper_latency_us) ->
         let r = results.(i) in
         guard_consistent "latency_table" r;
         {
           protocol = Runner.protocol_name proto;
           latency_us = r.Runner.latency.Ci_stats.Summary.mean /. 1000.;
           paper_latency_us;
           throughput_1c = r.Runner.throughput;
           leader_util = Runner.leader_util r;
         })
       rows)

(* ----- E5: Figure 8 ------------------------------------------------------- *)

let fig8 ?jobs ?(clients = [ 1; 2; 3; 5; 7; 10; 13; 17; 21; 26; 31; 38; 45 ]) ?duration () =
  let jobs = resolve_jobs jobs in
  let spec proto c =
    let s =
      Runner.default_spec ~protocol:proto
        ~placement:(Runner.Dedicated { n_replicas = 3; n_clients = c })
    in
    match duration with Some d -> { s with Runner.duration = d } | None -> s
  in
  let group proto =
    (Runner.protocol_name proto, List.map (fun c -> (c, spec proto c)) clients)
  in
  sweep_group ~jobs
    [ group Runner.Twopc; group Runner.Multipaxos; group Runner.Onepaxos ]

(* ----- E6: Figure 9 (joint deployment) ------------------------------------ *)

let fig9 ?jobs ?(nodes = [ 3; 5; 9; 13; 17; 21; 25; 29; 35; 41; 47 ]) ?duration () =
  let jobs = resolve_jobs jobs in
  let spec proto n =
    let s =
      Runner.default_spec ~protocol:proto ~placement:(Runner.Joint { n_nodes = n })
    in
    {
      s with
      Runner.think = Sim_time.ms 2;
      duration = (match duration with Some d -> d | None -> Sim_time.ms 200);
      warmup = Sim_time.ms 20;
      timeout = Sim_time.ms 8;
    }
  in
  let group proto =
    ( Runner.protocol_name proto ^ "-joint",
      List.map (fun n -> (n, spec proto n)) nodes )
  in
  sweep_group ~jobs
    [ group Runner.Twopc; group Runner.Multipaxos; group Runner.Onepaxos ]

(* ----- E7: Figure 10 (read workload) --------------------------------------- *)

type bar = { label : string; clients : int; throughput : float }

let fig10 ?jobs ?duration () =
  let jobs = resolve_jobs jobs in
  let dur = match duration with Some d -> d | None -> Sim_time.ms 50 in
  let onepaxos c =
    let s =
      Runner.default_spec ~protocol:Runner.Onepaxos
        ~placement:(Runner.Dedicated { n_replicas = 3; n_clients = c })
    in
    { s with Runner.duration = dur }
  in
  let twopc_joint c ratio =
    let s =
      Runner.default_spec ~protocol:Runner.Twopc ~placement:(Runner.Joint { n_nodes = c })
    in
    { s with Runner.duration = dur; read_ratio = ratio; local_reads = true }
  in
  let cases =
    List.concat_map
      (fun c ->
        [
          ("1Paxos - 0% read", c, onepaxos c);
          ("2PC-Joint - 0% read", c, twopc_joint c 0.0);
          ("2PC-Joint - 10% read", c, twopc_joint c 0.10);
          ("2PC-Joint - 75% read", c, twopc_joint c 0.75);
        ])
      [ 3; 5 ]
  in
  let results =
    run_all ~jobs (Array.of_list (List.map (fun (_, _, s) -> s) cases))
  in
  List.mapi
    (fun i (label, clients, _) ->
      let r = results.(i) in
      guard_consistent "fig10" r;
      { label; clients; throughput = r.Runner.throughput })
    cases

(* ----- E3/E8: slow-leader timelines ----------------------------------------- *)

type timeline = {
  label : string;
  bucket_ms : float;
  rates : float array;
  leader_changes : int;
  acceptor_changes : int;
}

let slow_leader_spec proto ~dur ~fault =
  let s =
    Runner.default_spec ~protocol:proto
      ~placement:(Runner.Dedicated { n_replicas = 3; n_clients = 5 })
  in
  {
    s with
    Runner.topology = Topology.opteron_8;
    duration = dur;
    warmup = Sim_time.ms 10;
    drain = Sim_time.ms 10;
    bucket = Sim_time.ms 10;
    faults =
      (if fault then
         [
           Fault_plan.Slow_core
             {
               core = 0;
               from_ = Sim_time.ms 40;
               until_ = dur + Sim_time.ms 20;
               factor = 60.;
             };
         ]
       else []);
  }

(* Labelled (case, spec) pairs run as one parallel batch, results
   rebuilt in case order. *)
let slow_leader_timelines ~jobs cases =
  let results = run_all ~jobs (Array.of_list (List.map snd cases)) in
  List.mapi
    (fun i (label, _) ->
      let r = results.(i) in
      guard_consistent label r;
      {
        label;
        bucket_ms = 10.;
        rates = r.Runner.timeline;
        leader_changes = r.Runner.leader_changes;
        acceptor_changes = r.Runner.acceptor_changes;
      })
    cases

let fig11 ?jobs ?duration () =
  let jobs = resolve_jobs jobs in
  let dur = match duration with Some d -> d | None -> Sim_time.ms 150 in
  slow_leader_timelines ~jobs
    [
      ("1Paxos - slow leader", slow_leader_spec Runner.Onepaxos ~dur ~fault:true);
      ("1Paxos - no failure", slow_leader_spec Runner.Onepaxos ~dur ~fault:false);
    ]

let sec2_2 ?jobs ?duration () =
  let jobs = resolve_jobs jobs in
  let dur = match duration with Some d -> d | None -> Sim_time.ms 150 in
  slow_leader_timelines ~jobs
    [
      ("2PC - slow leader", slow_leader_spec Runner.Twopc ~dur ~fault:true);
      ("2PC - no failure", slow_leader_spec Runner.Twopc ~dur ~fault:false);
    ]

(* ----- E10: failover timelines (nemesis crash, Figure 11's shape) ----------- *)

(* Figure 11 again, but with the fault the paper could not inject on
   real hardware: a hard crash instead of a slowdown. Node 1 hosts the
   initial active acceptor, node 0 the leader; each is killed at 40ms
   (losing all volatile state) and restarted 30ms later through the
   protocol's [recover] path. The same dip-and-recover shape should
   appear, driven by acceptor relocation resp. leader takeover rather
   than by the failure detector outrunning a slow core. *)
let failover ?jobs ?duration () =
  let jobs = resolve_jobs jobs in
  let dur = match duration with Some d -> d | None -> Sim_time.ms 150 in
  let base = slow_leader_spec Runner.Onepaxos ~dur ~fault:false in
  let crash node =
    {
      base with
      Runner.nemesis =
        {
          Ci_faults.seed = 42;
          faults =
            [
              Ci_faults.Crash
                { node; at = Sim_time.ms 40; down_for = Some (Sim_time.ms 30) };
            ];
        };
    }
  in
  slow_leader_timelines ~jobs
    [
      ("1Paxos - crashed acceptor", crash 1);
      ("1Paxos - crashed leader", crash 0);
      ("1Paxos - no failure", base);
    ]

(* ----- E9: 1Paxos over an IP network ----------------------------------------- *)

let lan_1paxos ?jobs ?(clients = [ 1; 2; 5; 10; 20; 40; 60 ]) ?duration () =
  let jobs = resolve_jobs jobs in
  let spec proto c =
    let s =
      Runner.default_spec ~protocol:proto
        ~placement:(Runner.Dedicated { n_replicas = 3; n_clients = c })
    in
    {
      s with
      Runner.topology = lan_topology (c + 4);
      params = Net_params.lan;
      duration = (match duration with Some d -> d | None -> Sim_time.ms 300);
      warmup = Sim_time.ms 30;
      drain = Sim_time.ms 30;
      timeout = Sim_time.ms 20;
    }
  in
  let group proto =
    ( Runner.protocol_name proto ^ " LAN",
      List.map (fun c -> (c, spec proto c)) clients )
  in
  sweep_group ~jobs [ group Runner.Multipaxos; group Runner.Onepaxos ]

(* ----- ablations --------------------------------------------------------------- *)

let ablation_placement ?jobs ?duration () =
  let jobs = resolve_jobs jobs in
  let dur = match duration with Some d -> d | None -> Sim_time.ms 120 in
  let case colocate =
    let s = slow_leader_spec Runner.Onepaxos ~dur ~fault:true in
    (* Measure from fault onset: how much work completes while the
       leader core is starved, given the acceptor placement. *)
    { s with Runner.warmup = Sim_time.ms 40; colocate_acceptor = colocate }
  in
  let cases =
    [ ("acceptor colocated with leader", true);
      ("acceptor on separate node", false) ]
  in
  let results =
    run_all ~jobs (Array.of_list (List.map (fun (_, c) -> case c) cases))
  in
  List.mapi
    (fun i (label, colocate) ->
      let r = results.(i) in
      guard_consistent label r;
      ({ label; points = [ point_of_result (if colocate then 1 else 0) r ] }
        : series))
    cases

let ablation_slots ?jobs ?duration () =
  let jobs = resolve_jobs jobs in
  let clients = [ 1; 5; 13; 30 ] in
  let spec slots c =
    let s =
      Runner.default_spec ~protocol:Runner.Onepaxos
        ~placement:(Runner.Dedicated { n_replicas = 3; n_clients = c })
    in
    let s = match duration with Some d -> { s with Runner.duration = d } | None -> s in
    { s with Runner.params = { s.Runner.params with Net_params.queue_slots = slots } }
  in
  sweep_group ~jobs
    (List.map
       (fun slots ->
         ( Printf.sprintf "1Paxos, %d queue slot(s)" slots,
           List.map (fun c -> (c, spec slots c)) clients ))
       [ 1; 7; 64 ])

let ablation_ratio ?jobs ?duration () =
  let jobs = resolve_jobs jobs in
  let props_us = [ 1; 5; 20; 135 ] in
  let spec proto prop_us =
    let s =
      Runner.default_spec ~protocol:proto
        ~placement:(Runner.Dedicated { n_replicas = 3; n_clients = 13 })
    in
    let s = match duration with Some d -> { s with Runner.duration = d } | None -> s in
    {
      s with
      Runner.params =
        {
          s.Runner.params with
          Net_params.prop_intra = Sim_time.us prop_us;
          prop_inter = Sim_time.us prop_us;
        };
      timeout = Sim_time.ms 20;
    }
  in
  let group proto =
    ( Runner.protocol_name proto,
      List.map (fun p -> (p, spec proto p)) props_us )
  in
  sweep_group ~jobs [ group Runner.Multipaxos; group Runner.Onepaxos ]

(* ----- A6..A8: batching / pipelining / coalescing ablations ------------- *)

(* 44 clients saturate the leader on the 48-core preset (3 replica cores
   + 44 client cores + 1 idle), which is where amortizing per-message
   cost pays: below saturation batching only trades latency for nothing. *)
let batch_spec ?duration ~protocol ~batch ~pipeline ~coalesce () =
  let s =
    Runner.default_spec ~protocol
      ~placement:(Runner.Dedicated { n_replicas = 3; n_clients = 44 })
  in
  let s = match duration with Some d -> { s with Runner.duration = d } | None -> s in
  {
    s with
    Runner.batch;
    pipeline;
    params = { s.Runner.params with Net_params.coalesce };
  }

let ablation_batch ?jobs ?duration () =
  let jobs = resolve_jobs jobs in
  let batches = [ 1; 2; 4; 8; 16; 32 ] in
  let spec proto b =
    (* The b = 1 baseline is the paper's untouched protocol: no
       batching, no pipelining window, no coalescing. *)
    if b = 1 then
      batch_spec ?duration ~protocol:proto ~batch:1 ~pipeline:0 ~coalesce:1 ()
    else batch_spec ?duration ~protocol:proto ~batch:b ~pipeline:8 ~coalesce:16 ()
  in
  let group proto =
    (Runner.protocol_name proto, List.map (fun b -> (b, spec proto b)) batches)
  in
  sweep_group ~jobs [ group Runner.Multipaxos; group Runner.Onepaxos ]

let ablation_pipeline ?jobs ?duration () =
  let jobs = resolve_jobs jobs in
  let windows = [ 1; 2; 4; 8; 16 ] in
  [
    sweep ~jobs ~label:"1paxos, batch=8, coalesce=16"
      ~make_spec:(fun w ->
        batch_spec ?duration ~protocol:Runner.Onepaxos ~batch:8 ~pipeline:w
          ~coalesce:16 ())
      windows;
  ]

let ablation_coalesce ?jobs ?duration () =
  let jobs = resolve_jobs jobs in
  let budgets = [ 1; 2; 4; 8; 16; 32 ] in
  [
    sweep ~jobs ~label:"1paxos, batch=8, pipeline=8"
      ~make_spec:(fun k ->
        batch_spec ?duration ~protocol:Runner.Onepaxos ~batch:8 ~pipeline:8
          ~coalesce:k ())
      budgets;
  ]

let protocol_comparison ?jobs ?duration ?(params = Net_params.multicore) () =
  let jobs = resolve_jobs jobs in
  let clients = [ 1; 3; 8; 13; 21; 34 ] in
  let spec proto c =
    let s =
      Runner.default_spec ~protocol:proto
        ~placement:(Runner.Dedicated { n_replicas = 3; n_clients = c })
    in
    let s = match duration with Some d -> { s with Runner.duration = d } | None -> s in
    { s with Runner.params = params }
  in
  let group proto =
    (Runner.protocol_name proto, List.map (fun c -> (c, spec proto c)) clients)
  in
  sweep_group ~jobs
    (List.map group
       [ Runner.Twopc; Runner.Multipaxos; Runner.Mencius; Runner.Cheappaxos;
         Runner.Onepaxos ])

(* ----- shards: multi-group scaling (ISSUE 7) ----------------------------- *)

let guard_atomic context (r : Runner.result) =
  match r.Runner.atomicity with
  | None -> ()
  | Some a ->
    if not (Ci_rsm.Atomicity.ok a) then
      Format.kasprintf failwith "%s: atomicity violated: %a" context
        Ci_rsm.Atomicity.pp a

(* Throughput versus group count, one socket per group so growing the
   shard count grows the machine the way the paper's taskset would:
   group g's replicas fill socket g, routers and clients take the two
   sockets after the last group. Every point is consistency-checked per
   group and, at groups > 1, cross-shard 2PC atomicity-checked. *)
let shards ?jobs ?duration ?(groups = [ 1; 2; 4; 8 ])
    ?(cross_shard_ratio = 0.05) () =
  let jobs = resolve_jobs jobs in
  let spec proto g =
    let s =
      Runner.default_spec ~protocol:proto
        ~placement:(Runner.Dedicated { n_replicas = 3; n_clients = 6 })
    in
    let s =
      match duration with Some d -> { s with Runner.duration = d } | None -> s
    in
    {
      s with
      Runner.groups = g;
      cross_shard_ratio = (if g = 1 then 0. else cross_shard_ratio);
      topology = Topology.create ~sockets:(g + 2) ~cores_per_socket:3;
    }
  in
  let specs =
    Array.of_list
      (List.concat_map
         (fun proto -> List.map (spec proto) groups)
         [ Runner.Onepaxos; Runner.Multipaxos ])
  in
  let results = run_all ~jobs specs in
  let i = ref 0 in
  List.map
    (fun proto ->
      let label = Runner.protocol_name proto ^ " sharded" in
      let points =
        List.map
          (fun g ->
            let r = results.(!i) in
            incr i;
            guard_consistent label r;
            guard_atomic label r;
            point_of_result g r)
          groups
      in
      { label; points })
    [ Runner.Onepaxos; Runner.Multipaxos ]

(* ----- E10: open-loop service curves (latency vs offered load) -------------- *)

type load_row = {
  l_label : string;
  l_offered : float;  (* total offered op/s over all drivers *)
  l_achieved : float;  (* completions/s inside the window *)
  l_p50_us : float;  (* from the intended arrival *)
  l_p99_us : float;
  l_p999_us : float;
  l_service_p99_us : float;  (* from the first transmission *)
  l_lease_reads : int;
  l_knee : bool;  (* this point is the curve's saturation knee *)
}

(* One protocol's latency-vs-load curve: a fixed driver population is
   asked for increasing offered rates; latency is charged from each
   request's intended arrival, so points past saturation show queueing
   delay instead of silently shedding load. The knee is flagged on the
   p99 curve. *)
let load_curve ?jobs ?duration ?(rates = [ 20_000.; 60_000.; 120_000.; 240_000. ])
    ?(read_ratio = 0.9) ?(lease = 0) () =
  let jobs = resolve_jobs jobs in
  let n_clients = 2 in
  let spec proto rate =
    let s =
      Runner.default_spec ~protocol:proto
        ~placement:(Runner.Dedicated { n_replicas = 3; n_clients })
    in
    let s =
      match duration with Some d -> { s with Runner.duration = d } | None -> s
    in
    {
      s with
      Runner.open_loop =
        Some
          {
            Runner.default_open_loop with
            Runner.arrival = Ci_load.Arrival.Fixed rate;
            mix =
              { Ci_load.Open_client.reads = read_ratio; cas = 0.02; ranges = 0.02 };
          };
      lease;
      lease_skew = (if lease > 0 then lease / 100 else 0);
    }
  in
  let protos = [ Runner.Onepaxos; Runner.Multipaxos ] in
  let specs =
    Array.of_list (List.concat_map (fun p -> List.map (spec p) rates) protos)
  in
  let results = run_all ~jobs specs in
  let i = ref 0 in
  List.concat_map
    (fun proto ->
      let label =
        Runner.protocol_name proto ^ if lease > 0 then " +lease" else ""
      in
      let rows =
        List.map
          (fun rate ->
            let r = results.(!i) in
            incr i;
            guard_consistent label r;
            let s = Option.get r.Runner.load in
            if Ci_load.Load_stats.stale_reads s > 0 then
              Format.kasprintf failwith "%s: %d stale session reads" label
                (Ci_load.Load_stats.stale_reads s);
            let lp = Ci_load.Load_stats.latency_percentiles s in
            let sp = Ci_load.Load_stats.service_percentiles s in
            let us v = float_of_int v /. 1e3 in
            {
              l_label = label;
              l_offered = rate *. float_of_int n_clients;
              l_achieved = Ci_load.Load_stats.throughput s;
              l_p50_us = us lp.Ci_load.Load_stats.p50;
              l_p99_us = us lp.Ci_load.Load_stats.p99;
              l_p999_us = us lp.Ci_load.Load_stats.p999;
              l_service_p99_us = us sp.Ci_load.Load_stats.p99;
              l_lease_reads = r.Runner.lease_reads;
              l_knee = false;
            })
          rates
      in
      let pts =
        Array.of_list (List.map (fun row -> (row.l_offered, row.l_p99_us)) rows)
      in
      match Ci_load.Knee.detect pts with
      | Some k ->
        List.mapi (fun j row -> if j = k then { row with l_knee = true } else row) rows
      | None -> rows)
    protos

(* ----- rendering ------------------------------------------------------------------ *)

let pp_netchar fmt rows =
  Format.fprintf fmt "%-10s %10s %10s %10s %12s@." "setting" "trans(us)"
    "ping(us)" "prop(us)" "trans/prop";
  List.iter
    (fun r ->
      Format.fprintf fmt "%-10s %10.2f %10.2f %10.2f %12.3f@." r.setting
        r.trans_us r.ping_us r.prop_us r.ratio)
    rows

let pp_series fmt series =
  List.iter
    (fun (s : series) ->
      Format.fprintf fmt "-- %s@." s.label;
      Format.fprintf fmt "   %6s %14s %14s %12s@." "x" "op/s" "latency(us)"
        "leader-util";
      List.iter
        (fun p ->
          Format.fprintf fmt "   %6d %14.0f %14.1f %12.2f@." p.x p.throughput
            p.latency_us p.leader_util)
        s.points)
    series

let pp_latency_table fmt rows =
  Format.fprintf fmt "%-12s %14s %16s %14s %12s@." "protocol" "latency(us)"
    "paper(us)" "1-client op/s" "leader-util";
  List.iter
    (fun r ->
      Format.fprintf fmt "%-12s %14.1f %16.1f %14.0f %12.2f@." r.protocol
        r.latency_us r.paper_latency_us r.throughput_1c r.leader_util)
    rows

let pp_bars fmt bars =
  Format.fprintf fmt "%-22s %8s %14s@." "configuration" "clients" "op/s";
  List.iter
    (fun (b : bar) -> Format.fprintf fmt "%-22s %8d %14.0f@." b.label b.clients b.throughput)
    bars

let pp_load_table fmt rows =
  Format.fprintf fmt "%-20s %12s %12s %10s %10s %10s %12s %6s@." "curve"
    "offered" "achieved" "p50(us)" "p99(us)" "p999(us)" "svc-p99(us)" "knee";
  List.iter
    (fun r ->
      Format.fprintf fmt "%-20s %12.0f %12.0f %10.1f %10.1f %10.1f %12.1f %6s@."
        r.l_label r.l_offered r.l_achieved r.l_p50_us r.l_p99_us r.l_p999_us
        r.l_service_p99_us
        (if r.l_knee then "<--" else ""))
    rows

let pp_timelines fmt ts =
  List.iter
    (fun (t : timeline) ->
      Format.fprintf fmt "-- %s (leader changes %d, acceptor changes %d)@."
        t.label t.leader_changes t.acceptor_changes;
      Format.fprintf fmt "   t(ms):  ";
      Array.iteri
        (fun i _ -> Format.fprintf fmt "%6.0f" (float_of_int i *. t.bucket_ms))
        t.rates;
      Format.fprintf fmt "@.   kop/s:  ";
      Array.iter (fun r -> Format.fprintf fmt "%6.1f" (r /. 1000.)) t.rates;
      Format.fprintf fmt "@.")
    ts

(** Simulator-side compiler for {!Ci_faults} schedules.

    Installs the machine-level mechanisms — per-link drop/duplicate
    filters (coin flips drawn from the schedule's own seeded stream,
    never the machine's), extra link delays, slow-core windows — and
    schedules the crash/pause transition timeline. Node-level
    orchestration (capturing durable state, calling the protocol's
    [recover], buffering a paused node's input) is supplied by the
    caller as callbacks; {!Runner} provides them. With an empty
    schedule this is a guaranteed no-op: nothing is installed and the
    event schedule is untouched. *)

val install :
  'msg Ci_machine.Machine.t ->
  nemesis:Ci_faults.t ->
  crash:(node:int -> unit) ->
  restart:(node:int -> unit) ->
  pause:(node:int -> unit) ->
  resume:(node:int -> unit) ->
  unit
(** [install machine ~nemesis ~crash ~restart ~pause ~resume] compiles
    the schedule onto the machine. The four callbacks fire at the
    scheduled transition instants, once per transition; [restart] fires
    only for crashes carrying a [down_for]. Validate the schedule
    ({!Ci_faults.validate}) before installing. *)

(** Closed-loop client.

    The paper's load generator: each client sends one request, waits for
    the commit acknowledgement, optionally thinks, and sends the next
    (§7.1; Figure 9's joint experiment adds a 2 ms think time). On
    timeout the client retries the same request — against the next
    replica when [failover] is on (which is how slow leaders are
    detected and takeovers triggered), or against the same node when off
    (2PC has no recovery to trigger).

    Latency is measured from the {e first} transmission of a request to
    its reply, so retries during a leader change surface as latency, not
    as lost work. *)

type policy = {
  targets : int array;
      (** Replica node ids in failover order; requests start at
          [targets.(primary)]. *)
  primary : int;  (** Index into [targets]. *)
  failover : bool;  (** Advance to the next target on timeout. *)
  timeout : int;  (** Retry timeout (ns). *)
  think : int;  (** Pause between a reply and the next request (ns). *)
  read_ratio : float;  (** Fraction of [Get] commands. *)
  cross_shard_ratio : float;
      (** Fraction of [Mput] commands whose two keys live on different
          shards (sharded deployments; 0 disables and leaves the rng
          stream untouched). *)
  groups : int;
      (** Shard count the partner-key scan routes against (1 outside
          sharded deployments). *)
  relaxed_reads : bool;  (** Mark reads as allowing stale local answers. *)
  read_own_node : bool;
      (** Send reads to this client's own node (joint deployments where
          the local replica may answer them). *)
  key_space : int;  (** Keys are drawn from [0 .. key_space-1]. *)
  max_requests : int option;  (** Stop after this many replies. *)
}

val default_policy : targets:int array -> policy
(** Write-only closed loop without think time, 2 ms timeout, with
    fail-over, 64-key space, unbounded. *)

type t
(** One client. *)

val create :
  env:Ci_consensus.Wire.t Ci_engine.Node_env.t ->
  policy:policy ->
  stats:Run_stats.t ->
  t
(** [create ~env ~policy ~stats] prepares a client on the node behind
    [env] (simulated or live). The caller routes [Reply] messages to
    {!handle}. *)

val start : t -> unit
(** [start t] issues the first request. *)

val handle : t -> src:int -> Ci_consensus.Wire.t -> unit
(** [handle t ~src msg] processes a reply (other messages are
    ignored). *)

val node_id : t -> int
(** [node_id t] is the node this client runs on — the [client]
    field of every value it proposes. *)

val completed : t -> int
(** [completed t] is the number of acknowledged requests. *)

val retries : t -> int
(** [retries t] is how many timeouts fired. *)

val issued : t -> (int * Ci_rsm.Command.t) list
(** [issued t] is every [(req_id, command)] this client proposed — the
    ground truth for the non-triviality check. *)

val acked_writes : t -> (int * int) list
(** [acked_writes t] is the [(client_node, req_id)] pairs of
    acknowledged {e write} requests — the ground truth for the
    session-integrity check (reads are excluded: they may legitimately
    be served without being learned). *)

module Machine = Ci_machine.Machine
module Sim_time = Ci_engine.Sim_time

type t =
  | Slow_core of { core : int; from_ : int; until_ : int; factor : float }
  | Crash_core of { core : int; from_ : int; until_ : int }

let paper_slowdown = 9.

let validate ?n_cores fault =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let check_window ~from_ ~until_ =
    if from_ < 0 then err "fault window starts before 0 (%d)" from_
    else if until_ <= from_ then
      err "fault window [%d, %d] is empty or inverted" from_ until_
    else Ok ()
  in
  let check_core core =
    match n_cores with
    | Some n when core < 0 || core >= n ->
      err "core %d out of range [0, %d)" core n
    | Some _ | None -> if core < 0 then err "core %d negative" core else Ok ()
  in
  let ( let* ) = Result.bind in
  match fault with
  | Slow_core { core; from_; until_; factor } ->
    let* () = check_window ~from_ ~until_ in
    let* () = check_core core in
    if Float.is_nan factor then err "slowdown factor is NaN"
    else if factor < 1. then err "slowdown factor %g < 1" factor
    else Ok ()
  | Crash_core { core; from_; until_ } ->
    let* () = check_window ~from_ ~until_ in
    check_core core

let apply fault machine =
  match fault with
  | Slow_core { core; from_; until_; factor } ->
    Machine.slow_core machine ~core ~from_ ~until_ ~factor
  | Crash_core { core; from_; until_ } ->
    Machine.slow_core machine ~core ~from_ ~until_ ~factor:infinity

let pp fmt = function
  | Slow_core { core; from_; until_; factor } ->
    Format.fprintf fmt "slow core %d x%.1f during [%a, %a]" core factor
      Sim_time.pp from_ Sim_time.pp until_
  | Crash_core { core; from_; until_ } ->
    Format.fprintf fmt "crash core %d during [%a, %a]" core Sim_time.pp from_
      Sim_time.pp until_

module Machine = Ci_machine.Machine
module Sim = Ci_engine.Sim
module Rng = Ci_engine.Rng

(* Compile a fault schedule onto a simulated machine.

   Mechanism/orchestration split: this module owns everything that is
   machine-level — link filters (drop/duplicate coin flips from the
   schedule's own seeded stream, so fault randomness never perturbs the
   machine's stream), extra link delays, slow-core windows, and the
   schedule_at timeline of crash/pause transitions. Node-level
   orchestration (capturing durable state, silencing a dead
   incarnation, calling the protocol's recover, buffering a paused
   node's input) needs the runner's view of the replicas, so it arrives
   here as four callbacks. *)

let install machine ~nemesis ~crash ~restart ~pause ~resume =
  if not (Ci_faults.is_empty nemesis) then begin
    let sim = Machine.sim machine in
    (* Link rules: one filter closure per ordered pair, evaluating every
       window for that pair against the delivery instant. Drop wins over
       duplicate when both windows are open (a lossy link can't also
       double-deliver the message it lost). *)
    let rng = Rng.create ~seed:nemesis.Ci_faults.seed in
    let by_pair = Hashtbl.create 16 in
    let delays = Hashtbl.create 16 in
    List.iter
      (fun r ->
        let key = (r.Ci_faults.l_src, r.Ci_faults.l_dst) in
        match r.Ci_faults.l_kind with
        | Ci_faults.L_delay extra ->
          let prev = Option.value (Hashtbl.find_opt delays key) ~default:[] in
          Hashtbl.replace delays key ((r.l_from, r.l_until, extra) :: prev)
        | Ci_faults.L_drop _ | Ci_faults.L_dup _ ->
          let prev = Option.value (Hashtbl.find_opt by_pair key) ~default:[] in
          Hashtbl.replace by_pair key (r :: prev))
      (Ci_faults.link_rules nemesis);
    Hashtbl.iter
      (fun (src, dst) rules ->
        let rules = List.rev rules in
        let filter ~now =
          let open Ci_faults in
          let in_window r = now >= r.l_from && now < r.l_until in
          let drop_p =
            List.fold_left
              (fun acc r ->
                match r.l_kind with
                | L_drop p when in_window r -> Float.max acc p
                | _ -> acc)
              0. rules
          and dup_p =
            List.fold_left
              (fun acc r ->
                match r.l_kind with
                | L_dup p when in_window r -> Float.max acc p
                | _ -> acc)
              0. rules
          in
          (* p = 1 draws nothing: partitions stay deterministic. *)
          if drop_p >= 1. then Machine.Drop
          else if drop_p > 0. && Rng.chance rng drop_p then Machine.Drop
          else if dup_p >= 1. then Machine.Duplicate
          else if dup_p > 0. && Rng.chance rng dup_p then Machine.Duplicate
          else Machine.Deliver
        in
        Machine.set_link_filter machine ~src ~dst (Some filter))
      by_pair;
    Hashtbl.iter
      (fun (src, dst) windows ->
        let windows = List.rev windows in
        let delay_of now =
          List.fold_left
            (fun acc (from_, until_, extra) ->
              if now >= from_ && now < until_ then acc + extra else acc)
            0 windows
        in
        Machine.set_link_delay machine ~src ~dst (Some delay_of))
      delays;
    (* Slow cores reuse the existing contention mechanism. *)
    List.iter
      (fun s ->
        Machine.slow_core machine ~core:s.Ci_faults.s_core
          ~from_:s.Ci_faults.s_from ~until_:s.Ci_faults.s_until
          ~factor:s.Ci_faults.s_factor)
      (Ci_faults.slows nemesis);
    (* Crash / pause timelines. *)
    List.iter
      (fun c ->
        let node = c.Ci_faults.c_node in
        Sim.schedule_at sim ~time:c.Ci_faults.c_at (fun () -> crash ~node);
        match c.Ci_faults.c_restart with
        | None -> ()
        | Some down_for ->
          Sim.schedule_at sim ~time:(c.c_at + down_for) (fun () ->
              restart ~node))
      (Ci_faults.crashes nemesis);
    List.iter
      (fun p ->
        let node = p.Ci_faults.p_node in
        Sim.schedule_at sim ~time:p.Ci_faults.p_from (fun () -> pause ~node);
        Sim.schedule_at sim ~time:p.Ci_faults.p_until (fun () -> resume ~node))
      (Ci_faults.pauses nemesis)
  end

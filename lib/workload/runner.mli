(** Experiment runner: build a machine, deploy a protocol and clients,
    inject faults, run, measure, and check consistency.

    Two deployments mirror the paper's:
    - {b Dedicated} (§7.1–7.3): replicas on cores [0..R-1], each client
      on its own core after them, requests to the leader (core 0), with
      fail-over on timeout;
    - {b Joint} (§7.4–7.5): every node is both replica and client; all
      commands are forwarded to the leader. *)

type protocol = Onepaxos | Multipaxos | Twopc | Mencius | Cheappaxos

val protocol_name : protocol -> string
(** Short lowercase name ("1paxos", "multipaxos", "2pc", "mencius",
    "cheappaxos"). *)

type placement =
  | Dedicated of { n_replicas : int; n_clients : int }
  | Joint of { n_nodes : int }

type open_loop = {
  arrival : Ci_load.Arrival.spec;
      (** Offered-load schedule {e per driver node} — total offered load
          is [rate × n_clients]. *)
  key_dist : Ci_load.Key_dist.spec;
  key_space : int;
  mix : Ci_load.Open_client.mix;
  range_span : int;  (** Keys per [Range] command. *)
  population : int;  (** Logical clients multiplexed per driver. *)
  sessions : int;  (** Concurrent in-flight requests per driver. *)
}
(** Workload knobs for the open-loop driver; deployment shape (targets,
    timeouts, the measurement window) comes from the {!spec}. *)

val default_open_loop : open_loop
(** 50k fixed ops/s per driver, uniform keys over 64Ki, 50% reads,
    100k logical clients over 16 sessions. *)

type spec = {
  protocol : protocol;
  placement : placement;
  groups : int;
      (** Independent consensus groups the keyspace is hash-partitioned
          over (sharding, ISSUE 7). [1] (the default) is the paper's
          single group and is byte-identical to the pre-sharding
          runner. [> 1] requires 1Paxos or Multi-Paxos under dedicated
          placement without relaxed reads; [placement.n_replicas] is
          then {e per group} (group [g] spans cores
          [g*R .. (g+1)*R-1]), one router node per group is added after
          the replicas, and clients send to the routers. *)
  cross_shard_ratio : float;
      (** Fraction of client commands that are cross-shard two-key
          multi-puts, routed through 2PC over the owning groups'
          consensus. [0.] (the default) leaves the workload — and the
          client rng stream — untouched. *)
  topology : Ci_machine.Topology.t;
  params : Ci_machine.Net_params.t;
  duration : int;  (** Measurement window length (ns). *)
  warmup : int;  (** Discarded start-up period (ns). *)
  drain : int;  (** Extra time simulated after the window (ns). *)
  seed : int;
  read_ratio : float;
  relaxed_reads : bool;  (** 1Paxos/Multi-Paxos relaxed local reads. *)
  local_reads : bool;  (** 2PC-Joint quiescent local reads. *)
  think : int;  (** Client think time (ns). *)
  timeout : int;  (** Client retry timeout (ns). *)
  max_requests : int option;  (** Per-client request budget. *)
  faults : Fault_plan.t list;
  nemesis : Ci_faults.t;
      (** Declarative fault schedule ({!Ci_faults.empty} by default —
          the empty schedule is guaranteed not to perturb the run).
          Link faults and slowdowns work for every protocol; crash and
          pause faults require 1Paxos or Multi-Paxos (the protocols
          with a [recover] entry point) under dedicated placement, and
          their node indices refer to replicas [0..R-1]. Invalid or
          unsupported schedules raise [Invalid_argument]. *)
  bucket : int;  (** Throughput time-series bucket (ns). *)
  colocate_acceptor : bool;
      (** 1Paxos only: place the initial active acceptor on the leader's
          node instead of a separate one (violating Section 5.4's
          placement rule) — used by the placement ablation. *)
  batch : int;
      (** 1Paxos/Multi-Paxos leader-side command batching: commands per
          consensus instance. [1] (the default) keeps the paper's
          one-command-per-instance protocol byte-identical. *)
  batch_delay : int;
      (** How long (ns) the leader holds a partial batch hoping for
          more commands before flushing it anyway. *)
  pipeline : int;
      (** 1Paxos/Multi-Paxos pipeline depth: maximum batches in flight
          at the leader. [0] (the default) leaves it unbounded as in
          the paper; setting it also activates the batching layer. *)
  lease : int;
      (** Leader-lease duration (ns) for 1Paxos/Multi-Paxos: the leader
          serves linearizable reads locally while a majority's grants
          are provably unexpired, degrading to consensus reads
          otherwise. [0] (the default) disables the mechanism entirely
          — no extra messages, timers, or rng draws — and is required
          for the other protocols. Mutually exclusive with
          [relaxed_reads]. *)
  lease_skew : int;
      (** Clock-rate-skew safety margin (ns) subtracted from every
          grant's validity at the leader; must be < [lease] when leases
          are on. *)
  open_loop : open_loop option;
      (** When set, client nodes run open-loop {!Ci_load.Open_client}
          drivers instead of closed-loop clients: arrivals follow the
          offered schedule until the measurement window ends, latency is
          measured from the intended arrival (coordinated-omission
          aware), and the per-run histograms land in [result.load].
          Requires dedicated placement. [read_ratio], [think] and
          [max_requests] are ignored. *)
  trace : Ci_obs.Event.ring option;
      (** When set, the run records typed trace events (sends,
          deliveries, self-deliveries, timers, busy spans, phases) into
          the ring, message events labelled with wire constructor
          names. *)
}

val default_spec : protocol:protocol -> placement:placement -> spec
(** Multicore parameters on the 48-core topology, 50 ms window after
    5 ms warm-up, write-only workload, no faults. *)

type window_counts = {
  w_messages : int;  (** Boundary-crossing messages delivered. *)
  w_sends : int;  (** Boundary-crossing messages handed to channels. *)
  w_self : int;  (** Collapsed-role self-deliveries executed. *)
  w_retries : int;  (** Client timeouts. *)
  w_replies : int;  (** Replies received by clients. *)
}
(** Event counts confined to one measurement window. *)

type window_split = {
  warmup_w : window_counts;  (** [0, warmup). *)
  measure_w : window_counts;  (** [warmup, warmup + duration). *)
  drain_w : window_counts;  (** [warmup + duration, horizon). *)
}

type core_usage = {
  u_core : int;  (** Core id. *)
  u_busy_ns : int;  (** Occupation inside the measurement window. *)
  u_util : float;  (** [u_busy_ns / duration]; can exceed 1 transiently
                       when booked work from the warmup window completes
                       inside the measurement window. *)
  u_queue_peak : int;  (** Worst work-queue depth over the whole run. *)
  u_slowed_ns : int;  (** Occupation inside slowdown windows, whole run. *)
}

type result = {
  commits : int;  (** Replies inside the measurement window. *)
  total_replies : int;  (** Replies over the whole run. *)
  throughput : float;  (** Commits per second inside the window. *)
  latency : Ci_stats.Summary.t;  (** Latency summary inside the window. *)
  timeline : float array;  (** Commit rate per bucket over the run. *)
  messages : int;
      (** Boundary-crossing messages delivered {e inside the measurement
          window} — aligned with [commits], so per-commit message ratios
          (Section 4.3) are consistent. *)
  messages_total : int;  (** Same, over the whole run. *)
  self_delivered : int;
      (** Collapsed-role self-deliveries inside the window (excluded
          from [messages]). *)
  self_delivered_total : int;  (** Same, over the whole run. *)
  retries : int;  (** Client timeouts inside the measurement window. *)
  retries_total : int;  (** Client timeouts over the whole run. *)
  windows : window_split;  (** Full warmup/measure/drain split. *)
  cores : core_usage list;
      (** Utilization for every core hosting a node, ascending core id;
          the leader's core is [u_core = 0]. *)
  leader_changes : int;
      (** Per-replica {e maximum} of applied leader-change entries — the
          number of global leadership transitions as seen by the most
          caught-up replica. This is the figure the experiment tables
          and timelines (E6/E7) quote. *)
  leader_changes_sum : int;
      (** Sum over replicas of applied leader-change entries (≈ max ×
          replicas when all replicas observe every change) — useful for
          spotting replicas that missed configuration entries. *)
  acceptor_changes : int;  (** Per-replica maximum, as above. *)
  acceptor_changes_sum : int;  (** Sum over replicas, as above. *)
  sim_events : int;
      (** Discrete events the engine executed over the whole run — the
          denominator of the events/sec engine self-benchmark. *)
  lease_reads : int;
      (** Reads served from the leader's local store under an unexpired
          lease, summed over replicas ([0] when leases are off). *)
  load : Ci_load.Load_stats.t option;
      (** Open-loop measurement sink — intended-arrival and service
          latency histograms, issued/completed/rejected/stale-read
          counts — pooled over the drivers; [Some] exactly when
          [spec.open_loop] was set. *)
  metrics : Ci_obs.Metrics.t;
      (** Flat registry of every measurement: per-node
          [node<i>.{sent,recv,self}.{warmup,measure,drain}], per-core
          [core<c>.{busy_ns.measure,util.measure,queue_peak,slowed_ns}],
          channel back-pressure totals, window totals, and
          [trace.dropped] when tracing. *)
  consistency : Ci_rsm.Consistency.report;
      (** Per-group under sharding: each group is checked independently
          (agreement is meaningless across groups) and the reports are
          merged — violations concatenated, counts summed. *)
  atomicity : Ci_rsm.Atomicity.report option;
      (** Cross-shard 2PC atomicity over the routers' transactions and
          the groups' decided logs; [Some] exactly when [groups > 1]. *)
  failover : Ci_obs.Failover.t option;
      (** Failover analysis around the nemesis schedule's first fault
          onset, over the whole run ([Some] exactly when the schedule
          is non-empty and its onset falls inside the run); also
          published under [failover.*] metric keys. *)
}

val run : spec -> result
(** [run spec] executes the experiment and returns its measurements.
    Raises [Invalid_argument] on nonsensical placements (more replicas
    than cores, joint with fewer than two nodes, ...). *)

val leader_util : result -> float
(** [leader_util r] is core 0's measurement-window utilization ([0.]
    when no node lives there). *)

val pp_window : Format.formatter -> window_counts -> unit
(** One-line rendering of one window's counts. *)

val pp_result : Format.formatter -> result -> unit
(** One-paragraph human-readable rendering. *)

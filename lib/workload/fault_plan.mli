(** Fault injection plans.

    The paper's faults are {e slow cores}: a core loaded with competing
    CPU-bound processes (its Section 2.2 / 7.6 experiments run eight
    busy-loop scripts on the victim core, roughly a 9× slowdown). A
    crash is the limit case of an unbounded slowdown. *)

type t =
  | Slow_core of { core : int; from_ : int; until_ : int; factor : float }
      (** Multiply the cost of all work on [core] by [factor] during the
          window. *)
  | Crash_core of { core : int; from_ : int; until_ : int }
      (** No progress on [core] during the window. *)

val paper_slowdown : float
(** The calibrated factor for "8 CPU-intensive processes sharing the
    core": the victim gets roughly 1/9 of the cycles, so 9. *)

val validate : ?n_cores:int -> t -> (unit, string) result
(** [validate ?n_cores fault] rejects empty or inverted windows,
    negative (or, when [n_cores] is given, out-of-range) cores, and NaN
    or sub-1 slowdown factors, with a human-readable reason. *)

val apply : t -> 'msg Ci_machine.Machine.t -> unit
(** [apply fault machine] installs the fault on the machine. *)

val pp : Format.formatter -> t -> unit
(** Prints the fault description. *)

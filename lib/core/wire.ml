module Command = Ci_rsm.Command

type value = { client : int; req_id : int; cmd : Command.t }

let value_equal a b =
  a.client = b.client && a.req_id = b.req_id && Command.equal a.cmd b.cmd

let value_key v = (v.client, v.req_id)

let pp_value fmt v =
  Format.fprintf fmt "c%d#%d:%a" v.client v.req_id Command.pp v.cmd

type config_entry =
  | Leader_change of { leader : int; acceptor : int }
  | Acceptor_change of { acceptor : int; carried : (int * value) list }
  | Epoch_change of { actives : int list }

let config_entry_equal a b =
  match a, b with
  | Leader_change x, Leader_change y ->
    x.leader = y.leader && x.acceptor = y.acceptor
  | Acceptor_change x, Acceptor_change y ->
    x.acceptor = y.acceptor
    && List.length x.carried = List.length y.carried
    && List.for_all2
         (fun (i, v) (j, w) -> i = j && value_equal v w)
         x.carried y.carried
  | Epoch_change x, Epoch_change y -> x.actives = y.actives
  | (Leader_change _ | Acceptor_change _ | Epoch_change _), _ -> false

let pp_config_entry fmt = function
  | Leader_change { leader; acceptor } ->
    Format.fprintf fmt "leader:=%d(acc %d)" leader acceptor
  | Acceptor_change { acceptor; carried } ->
    Format.fprintf fmt "acceptor:=%d(+%d carried)" acceptor (List.length carried)
  | Epoch_change { actives } ->
    Format.fprintf fmt "actives:=[%s]"
      (String.concat ";" (List.map string_of_int actives))

type t =
  | Request of { req_id : int; cmd : Command.t; relaxed_read : bool }
  | Reply of { req_id : int; result : Command.result }
  | Forward of { v : value }
  | Op_prepare_request of { pn : Pn.t; must_be_fresh : bool }
  | Op_prepare_response of { pn : Pn.t; accepted : (int * (Pn.t * value)) list }
  | Op_abandon of { hpn : Pn.t }
  | Op_accept_request of { inst : int; pn : Pn.t; v : value }
  | Op_learn of { inst : int; v : value }
  | Op_accept_batch of { base : int; pn : Pn.t; vs : value array }
  | Op_learn_batch of { base : int; vs : value array }
  | Pu_prepare of { cseq : int; pn : Pn.t }
  | Pu_promise of {
      cseq : int;
      pn : Pn.t;
      accepted : (Pn.t * config_entry) option;
      chosen_suffix : (int * config_entry) list;
    }
  | Pu_reject of { cseq : int; pn : Pn.t; chosen_suffix : (int * config_entry) list }
  | Pu_accept of { cseq : int; pn : Pn.t; entry : config_entry }
  | Pu_accepted of { cseq : int; pn : Pn.t }
  | Pu_nack of { cseq : int; pn : Pn.t }
  | Pu_learn of { cseq : int; entry : config_entry }
  | Pu_read of { token : int; from_ : int }
  | Pu_read_reply of { token : int; chosen_suffix : (int * config_entry) list }
  | Ls_req of { token : int; from_ : int }
  | Ls_reply of { token : int; decisions : (int * value) list }
  | Bp_prepare of { inst : int; pn : Pn.t }
  | Bp_promise of { inst : int; pn : Pn.t; accepted : (Pn.t * value) option }
  | Bp_reject of { inst : int; pn : Pn.t }
  | Bp_accept of { inst : int; pn : Pn.t; v : value }
  | Bp_learn of { inst : int; pn : Pn.t; v : value }
  | Mp_prepare of { pn : Pn.t; low : int }
  | Mp_promise of { pn : Pn.t; accepted : (int * (Pn.t * value)) list }
  | Mp_reject of { pn : Pn.t }
  | Mp_accept of { inst : int; pn : Pn.t; v : value }
  | Mp_learn of { inst : int; pn : Pn.t; v : value }
  | Mp_accept_batch of { base : int; pn : Pn.t; vs : value array }
  | Mp_learn_batch of { base : int; pn : Pn.t; vs : value array }
  | Mn_accept of { inst : int; v : value option }
  | Mn_learn of { inst : int; v : value option }
  | Cp_accept of { epoch : int; inst : int; v : value }
  | Cp_accepted of { epoch : int; inst : int; v : value }
  | Cp_learn of { epoch : int; inst : int; v : value }
  | Cp_state of { epoch : int; accepted : (int * value) list }
  | Tp_prepare of { inst : int; v : value }
  | Tp_ack of { inst : int }
  | Tp_commit of { inst : int; v : value }
  | Tp_commit_ack of { inst : int }
  | Tp_rollback of { inst : int }
  | Tp_nack of { inst : int }
  | Le_renew of { pn : Pn.t; sent : int }
      (** Leader -> replicas: extend my read lease. [sent] is the
          leader's own clock at transmission; the grant echoes it so the
          leader never compares clocks across nodes. *)
  | Le_grant of { pn : Pn.t; sent : int }
      (** Replica -> leader: granted. The grantee promises not to help
          elect another leader until [lease] after its own receipt. *)

let pp fmt = function
  | Request { req_id; cmd; relaxed_read } ->
    Format.fprintf fmt "request#%d %a%s" req_id Command.pp cmd
      (if relaxed_read then " (relaxed)" else "")
  | Reply { req_id; result } ->
    Format.fprintf fmt "reply#%d %a" req_id Command.pp_result result
  | Forward { v } -> Format.fprintf fmt "forward %a" pp_value v
  | Op_prepare_request { pn; must_be_fresh } ->
    Format.fprintf fmt "op.prepare pn=%a fresh=%b" Pn.pp pn must_be_fresh
  | Op_prepare_response { pn; accepted } ->
    Format.fprintf fmt "op.prepare-resp pn=%a |ap|=%d" Pn.pp pn
      (List.length accepted)
  | Op_abandon { hpn } -> Format.fprintf fmt "op.abandon hpn=%a" Pn.pp hpn
  | Op_accept_request { inst; pn; v } ->
    Format.fprintf fmt "op.accept i=%d pn=%a %a" inst Pn.pp pn pp_value v
  | Op_learn { inst; v } ->
    Format.fprintf fmt "op.learn i=%d %a" inst pp_value v
  | Op_accept_batch { base; pn; vs } ->
    Format.fprintf fmt "op.accept-batch i=%d..%d pn=%a" base
      (base + Array.length vs - 1)
      Pn.pp pn
  | Op_learn_batch { base; vs } ->
    Format.fprintf fmt "op.learn-batch i=%d..%d" base
      (base + Array.length vs - 1)
  | Pu_prepare { cseq; pn } ->
    Format.fprintf fmt "pu.prepare c=%d pn=%a" cseq Pn.pp pn
  | Pu_promise { cseq; pn; accepted; chosen_suffix } ->
    Format.fprintf fmt "pu.promise c=%d pn=%a acc=%b suffix=%d" cseq Pn.pp pn
      (accepted <> None)
      (List.length chosen_suffix)
  | Pu_reject { cseq; pn; chosen_suffix } ->
    Format.fprintf fmt "pu.reject c=%d pn=%a suffix=%d" cseq Pn.pp pn
      (List.length chosen_suffix)
  | Pu_accept { cseq; pn; entry } ->
    Format.fprintf fmt "pu.accept c=%d pn=%a %a" cseq Pn.pp pn pp_config_entry
      entry
  | Pu_accepted { cseq; pn } ->
    Format.fprintf fmt "pu.accepted c=%d pn=%a" cseq Pn.pp pn
  | Pu_nack { cseq; pn } -> Format.fprintf fmt "pu.nack c=%d pn=%a" cseq Pn.pp pn
  | Pu_learn { cseq; entry } ->
    Format.fprintf fmt "pu.learn c=%d %a" cseq pp_config_entry entry
  | Pu_read { token; from_ } -> Format.fprintf fmt "pu.read t=%d from=%d" token from_
  | Pu_read_reply { token; chosen_suffix } ->
    Format.fprintf fmt "pu.read-reply t=%d suffix=%d" token
      (List.length chosen_suffix)
  | Ls_req { token; from_ } -> Format.fprintf fmt "ls.req t=%d from=%d" token from_
  | Ls_reply { token; decisions } ->
    Format.fprintf fmt "ls.reply t=%d |d|=%d" token (List.length decisions)
  | Bp_prepare { inst; pn } -> Format.fprintf fmt "bp.prepare i=%d pn=%a" inst Pn.pp pn
  | Bp_promise { inst; pn; accepted } ->
    Format.fprintf fmt "bp.promise i=%d pn=%a acc=%b" inst Pn.pp pn (accepted <> None)
  | Bp_reject { inst; pn } -> Format.fprintf fmt "bp.reject i=%d pn=%a" inst Pn.pp pn
  | Bp_accept { inst; pn; v } ->
    Format.fprintf fmt "bp.accept i=%d pn=%a %a" inst Pn.pp pn pp_value v
  | Bp_learn { inst; pn; v } ->
    Format.fprintf fmt "bp.learn i=%d pn=%a %a" inst Pn.pp pn pp_value v
  | Mp_prepare { pn; low } -> Format.fprintf fmt "mp.prepare pn=%a low=%d" Pn.pp pn low
  | Mp_promise { pn; accepted } ->
    Format.fprintf fmt "mp.promise pn=%a |ap|=%d" Pn.pp pn (List.length accepted)
  | Mp_reject { pn } -> Format.fprintf fmt "mp.reject pn=%a" Pn.pp pn
  | Mp_accept { inst; pn; v } ->
    Format.fprintf fmt "mp.accept i=%d pn=%a %a" inst Pn.pp pn pp_value v
  | Mp_learn { inst; pn; v } ->
    Format.fprintf fmt "mp.learn i=%d pn=%a %a" inst Pn.pp pn pp_value v
  | Mp_accept_batch { base; pn; vs } ->
    Format.fprintf fmt "mp.accept-batch i=%d..%d pn=%a" base
      (base + Array.length vs - 1)
      Pn.pp pn
  | Mp_learn_batch { base; pn; vs } ->
    Format.fprintf fmt "mp.learn-batch i=%d..%d pn=%a" base
      (base + Array.length vs - 1)
      Pn.pp pn
  | Mn_accept { inst; v = Some v } ->
    Format.fprintf fmt "mn.accept i=%d %a" inst pp_value v
  | Mn_accept { inst; v = None } -> Format.fprintf fmt "mn.accept i=%d skip" inst
  | Mn_learn { inst; v = Some v } ->
    Format.fprintf fmt "mn.learn i=%d %a" inst pp_value v
  | Mn_learn { inst; v = None } -> Format.fprintf fmt "mn.learn i=%d skip" inst
  | Cp_accept { epoch; inst; v } ->
    Format.fprintf fmt "cp.accept e=%d i=%d %a" epoch inst pp_value v
  | Cp_accepted { epoch; inst; v } ->
    Format.fprintf fmt "cp.accepted e=%d i=%d %a" epoch inst pp_value v
  | Cp_learn { epoch; inst; v } ->
    Format.fprintf fmt "cp.learn e=%d i=%d %a" epoch inst pp_value v
  | Cp_state { epoch; accepted } ->
    Format.fprintf fmt "cp.state e=%d |acc|=%d" epoch (List.length accepted)
  | Tp_prepare { inst; v } ->
    Format.fprintf fmt "2pc.prepare i=%d %a" inst pp_value v
  | Tp_ack { inst } -> Format.fprintf fmt "2pc.ack i=%d" inst
  | Tp_commit { inst; v } -> Format.fprintf fmt "2pc.commit i=%d %a" inst pp_value v
  | Tp_commit_ack { inst } -> Format.fprintf fmt "2pc.commit-ack i=%d" inst
  | Tp_rollback { inst } -> Format.fprintf fmt "2pc.rollback i=%d" inst
  | Tp_nack { inst } -> Format.fprintf fmt "2pc.nack i=%d" inst
  | Le_renew { pn; sent } ->
    Format.fprintf fmt "le.renew pn=%a sent=%d" Pn.pp pn sent
  | Le_grant { pn; sent } ->
    Format.fprintf fmt "le.grant pn=%a sent=%d" Pn.pp pn sent

let kind = function
  | Request _ -> "Request"
  | Reply _ -> "Reply"
  | Forward _ -> "Forward"
  | Op_prepare_request _ -> "Op_prepare_request"
  | Op_prepare_response _ -> "Op_prepare_response"
  | Op_abandon _ -> "Op_abandon"
  | Op_accept_request _ -> "Op_accept_request"
  | Op_learn _ -> "Op_learn"
  | Op_accept_batch _ -> "Op_accept_batch"
  | Op_learn_batch _ -> "Op_learn_batch"
  | Pu_prepare _ -> "Pu_prepare"
  | Pu_promise _ -> "Pu_promise"
  | Pu_reject _ -> "Pu_reject"
  | Pu_accept _ -> "Pu_accept"
  | Pu_accepted _ -> "Pu_accepted"
  | Pu_nack _ -> "Pu_nack"
  | Pu_learn _ -> "Pu_learn"
  | Pu_read _ -> "Pu_read"
  | Pu_read_reply _ -> "Pu_read_reply"
  | Ls_req _ -> "Ls_req"
  | Ls_reply _ -> "Ls_reply"
  | Bp_prepare _ -> "Bp_prepare"
  | Bp_promise _ -> "Bp_promise"
  | Bp_reject _ -> "Bp_reject"
  | Bp_accept _ -> "Bp_accept"
  | Bp_learn _ -> "Bp_learn"
  | Mp_prepare _ -> "Mp_prepare"
  | Mp_promise _ -> "Mp_promise"
  | Mp_reject _ -> "Mp_reject"
  | Mp_accept _ -> "Mp_accept"
  | Mp_learn _ -> "Mp_learn"
  | Mp_accept_batch _ -> "Mp_accept_batch"
  | Mp_learn_batch _ -> "Mp_learn_batch"
  | Mn_accept _ -> "Mn_accept"
  | Mn_learn _ -> "Mn_learn"
  | Cp_accept _ -> "Cp_accept"
  | Cp_accepted _ -> "Cp_accepted"
  | Cp_learn _ -> "Cp_learn"
  | Cp_state _ -> "Cp_state"
  | Tp_prepare _ -> "Tp_prepare"
  | Tp_ack _ -> "Tp_ack"
  | Tp_commit _ -> "Tp_commit"
  | Tp_commit_ack _ -> "Tp_commit_ack"
  | Tp_rollback _ -> "Tp_rollback"
  | Tp_nack _ -> "Tp_nack"
  | Le_renew _ -> "Le_renew"
  | Le_grant _ -> "Le_grant"

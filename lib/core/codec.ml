module Command = Ci_rsm.Command
open Wire

exception Error of string

let err msg = raise (Error msg)

(* ---------- sizes ---------- *)

(* Integers are 8 bytes, counts 4, tags/bools/discriminants 1. All the
   size functions below are tag-inclusive for the construct they
   describe and allocation-free (accumulator recursion, no closures) so
   [encoded_size] can run on the transport hot path. *)

let cmd_size = function
  | Command.Put _ -> 17
  | Command.Get _ -> 9
  | Command.Cas _ -> 25
  | Command.Nop -> 1
  | Command.Mput _ -> 33
  | Command.Prep _ -> 25
  | Command.Fin _ -> 18
  | Command.Range _ -> 17

let result_size = function
  | Command.Done -> 1
  | Command.Found None -> 1
  | Command.Found (Some _) -> 9
  | Command.Swapped _ -> 2
  | Command.Vals kvs -> 5 + (16 * List.length kvs)
  | Command.Rejected -> 1

let value_size v = 16 + cmd_size v.cmd

let pn_size = 16

let rec iv_size acc = function
  | [] -> acc
  | (_, v) :: rest -> iv_size (acc + 8 + value_size v) rest

let rec ipnv_size acc = function
  | [] -> acc
  | (_, (_, v)) :: rest -> ipnv_size (acc + 8 + pn_size + value_size v) rest

let entry_size = function
  | Leader_change _ -> 17
  | Acceptor_change { carried; _ } -> 13 + iv_size 0 carried
  | Epoch_change { actives } -> 5 + (8 * List.length actives)

let rec ie_size acc = function
  | [] -> acc
  | (_, e) :: rest -> ie_size (acc + 8 + entry_size e) rest

let rec varr_size vs i acc =
  if i >= Array.length vs then acc
  else varr_size vs (i + 1) (acc + value_size (Array.unsafe_get vs i))

let encoded_size = function
  | Request { cmd; _ } -> 10 + cmd_size cmd
  | Reply { result; _ } -> 9 + result_size result
  | Forward { v } -> 1 + value_size v
  | Op_prepare_request _ -> 18
  | Op_prepare_response { accepted; _ } -> 21 + ipnv_size 0 accepted
  | Op_abandon _ -> 17
  | Op_accept_request { v; _ } -> 25 + value_size v
  | Op_learn { v; _ } -> 9 + value_size v
  | Op_accept_batch { vs; _ } -> 29 + varr_size vs 0 0
  | Op_learn_batch { vs; _ } -> 13 + varr_size vs 0 0
  | Pu_prepare _ -> 25
  | Pu_promise { accepted; chosen_suffix; _ } ->
    let acc =
      match accepted with None -> 0 | Some (_, e) -> pn_size + entry_size e
    in
    30 + acc + ie_size 0 chosen_suffix
  | Pu_reject { chosen_suffix; _ } -> 29 + ie_size 0 chosen_suffix
  | Pu_accept { entry; _ } -> 25 + entry_size entry
  | Pu_accepted _ -> 25
  | Pu_nack _ -> 25
  | Pu_learn { entry; _ } -> 9 + entry_size entry
  | Pu_read _ -> 17
  | Pu_read_reply { chosen_suffix; _ } -> 13 + ie_size 0 chosen_suffix
  | Ls_req _ -> 17
  | Ls_reply { decisions; _ } -> 13 + iv_size 0 decisions
  | Bp_prepare _ -> 25
  | Bp_promise { accepted; _ } ->
    let acc =
      match accepted with None -> 0 | Some (_, v) -> pn_size + value_size v
    in
    26 + acc
  | Bp_reject _ -> 25
  | Bp_accept { v; _ } -> 25 + value_size v
  | Bp_learn { v; _ } -> 25 + value_size v
  | Mp_prepare _ -> 25
  | Mp_promise { accepted; _ } -> 21 + ipnv_size 0 accepted
  | Mp_reject _ -> 17
  | Mp_accept { v; _ } -> 25 + value_size v
  | Mp_learn { v; _ } -> 25 + value_size v
  | Mp_accept_batch { vs; _ } -> 29 + varr_size vs 0 0
  | Mp_learn_batch { vs; _ } -> 29 + varr_size vs 0 0
  | Mn_accept { v; _ } ->
    10 + (match v with None -> 0 | Some v -> value_size v)
  | Mn_learn { v; _ } ->
    10 + (match v with None -> 0 | Some v -> value_size v)
  | Cp_accept { v; _ } -> 17 + value_size v
  | Cp_accepted { v; _ } -> 17 + value_size v
  | Cp_learn { v; _ } -> 17 + value_size v
  | Cp_state { accepted; _ } -> 13 + iv_size 0 accepted
  | Tp_prepare { v; _ } -> 9 + value_size v
  | Tp_ack _ -> 9
  | Tp_commit { v; _ } -> 9 + value_size v
  | Tp_commit_ack _ -> 9
  | Tp_rollback _ -> 9
  | Tp_nack _ -> 9
  | Le_renew _ -> 25
  | Le_grant _ -> 25

(* Max over the constructors with no list/array payload: Bp_promise with
   accepted = Some (pn, {cmd = Mput _}) at 26 + 16 + 49. *)
let max_fixed_size = 91

(* ---------- encode ---------- *)

(* Manual little-endian byte writes: [Bytes.set_int64_le] would go
   through boxed [Int64.of_int]. [Char.unsafe_chr] is safe under the
   [land 0xff] mask; [Bytes.set] itself stays bounds-checked. *)

let put_byte b pos x =
  Bytes.set b pos (Char.unsafe_chr (x land 0xff));
  pos + 1

let put_int b pos x =
  Bytes.set b pos (Char.unsafe_chr (x land 0xff));
  Bytes.set b (pos + 1) (Char.unsafe_chr ((x asr 8) land 0xff));
  Bytes.set b (pos + 2) (Char.unsafe_chr ((x asr 16) land 0xff));
  Bytes.set b (pos + 3) (Char.unsafe_chr ((x asr 24) land 0xff));
  Bytes.set b (pos + 4) (Char.unsafe_chr ((x asr 32) land 0xff));
  Bytes.set b (pos + 5) (Char.unsafe_chr ((x asr 40) land 0xff));
  Bytes.set b (pos + 6) (Char.unsafe_chr ((x asr 48) land 0xff));
  Bytes.set b (pos + 7) (Char.unsafe_chr ((x asr 56) land 0xff));
  pos + 8

let put_bool b pos v = put_byte b pos (if v then 1 else 0)

let put_count b pos n =
  if n < 0 || n > 0x3FFF_FFFF then err "encode: element count out of range";
  Bytes.set b pos (Char.unsafe_chr (n land 0xff));
  Bytes.set b (pos + 1) (Char.unsafe_chr ((n asr 8) land 0xff));
  Bytes.set b (pos + 2) (Char.unsafe_chr ((n asr 16) land 0xff));
  Bytes.set b (pos + 3) (Char.unsafe_chr ((n asr 24) land 0xff));
  pos + 4

let put_cmd b pos = function
  | Command.Put { key; data } ->
    let pos = put_byte b pos 0 in
    let pos = put_int b pos key in
    put_int b pos data
  | Command.Get { key } ->
    let pos = put_byte b pos 1 in
    put_int b pos key
  | Command.Cas { key; expect; data } ->
    let pos = put_byte b pos 2 in
    let pos = put_int b pos key in
    let pos = put_int b pos expect in
    put_int b pos data
  | Command.Nop -> put_byte b pos 3
  | Command.Mput { k1; d1; k2; d2 } ->
    let pos = put_byte b pos 4 in
    let pos = put_int b pos k1 in
    let pos = put_int b pos d1 in
    let pos = put_int b pos k2 in
    put_int b pos d2
  | Command.Prep { txn; key; data } ->
    let pos = put_byte b pos 5 in
    let pos = put_int b pos txn in
    let pos = put_int b pos key in
    put_int b pos data
  | Command.Fin { txn; key; commit } ->
    let pos = put_byte b pos 6 in
    let pos = put_int b pos txn in
    let pos = put_int b pos key in
    put_bool b pos commit
  | Command.Range { lo; hi } ->
    let pos = put_byte b pos 7 in
    let pos = put_int b pos lo in
    put_int b pos hi

let rec put_kvs b pos = function
  | [] -> pos
  | (k, v) :: rest ->
    let pos = put_int b pos k in
    let pos = put_int b pos v in
    put_kvs b pos rest

let put_result b pos = function
  | Command.Done -> put_byte b pos 0
  | Command.Found None -> put_byte b pos 1
  | Command.Found (Some x) ->
    let pos = put_byte b pos 2 in
    put_int b pos x
  | Command.Swapped ok ->
    let pos = put_byte b pos 3 in
    put_bool b pos ok
  | Command.Vals kvs ->
    let pos = put_byte b pos 4 in
    let pos = put_count b pos (List.length kvs) in
    put_kvs b pos kvs
  | Command.Rejected -> put_byte b pos 5

let put_value b pos v =
  let pos = put_int b pos v.client in
  let pos = put_int b pos v.req_id in
  put_cmd b pos v.cmd

let put_pn b pos (pn : Pn.t) =
  let pos = put_int b pos pn.round in
  put_int b pos pn.owner

let rec put_iv b pos = function
  | [] -> pos
  | (i, v) :: rest ->
    let pos = put_int b pos i in
    let pos = put_value b pos v in
    put_iv b pos rest

let rec put_ipnv b pos = function
  | [] -> pos
  | (i, (pn, v)) :: rest ->
    let pos = put_int b pos i in
    let pos = put_pn b pos pn in
    let pos = put_value b pos v in
    put_ipnv b pos rest

let rec put_ints b pos = function
  | [] -> pos
  | i :: rest ->
    let pos = put_int b pos i in
    put_ints b pos rest

let put_entry b pos = function
  | Leader_change { leader; acceptor } ->
    let pos = put_byte b pos 0 in
    let pos = put_int b pos leader in
    put_int b pos acceptor
  | Acceptor_change { acceptor; carried } ->
    let pos = put_byte b pos 1 in
    let pos = put_int b pos acceptor in
    let pos = put_count b pos (List.length carried) in
    put_iv b pos carried
  | Epoch_change { actives } ->
    let pos = put_byte b pos 2 in
    let pos = put_count b pos (List.length actives) in
    put_ints b pos actives

let rec put_ie b pos = function
  | [] -> pos
  | (i, e) :: rest ->
    let pos = put_int b pos i in
    let pos = put_entry b pos e in
    put_ie b pos rest

let rec put_varr b pos vs i =
  if i >= Array.length vs then pos
  else
    let pos = put_value b pos (Array.unsafe_get vs i) in
    put_varr b pos vs (i + 1)

let encode m b ~pos =
  let size = encoded_size m in
  if pos < 0 || pos + size > Bytes.length b then
    err "encode: buffer too small";
  let fin =
    match m with
    | Request { req_id; cmd; relaxed_read } ->
      let p = put_byte b pos 0 in
      let p = put_int b p req_id in
      let p = put_cmd b p cmd in
      put_bool b p relaxed_read
    | Reply { req_id; result } ->
      let p = put_byte b pos 1 in
      let p = put_int b p req_id in
      put_result b p result
    | Forward { v } ->
      let p = put_byte b pos 2 in
      put_value b p v
    | Op_prepare_request { pn; must_be_fresh } ->
      let p = put_byte b pos 3 in
      let p = put_pn b p pn in
      put_bool b p must_be_fresh
    | Op_prepare_response { pn; accepted } ->
      let p = put_byte b pos 4 in
      let p = put_pn b p pn in
      let p = put_count b p (List.length accepted) in
      put_ipnv b p accepted
    | Op_abandon { hpn } ->
      let p = put_byte b pos 5 in
      put_pn b p hpn
    | Op_accept_request { inst; pn; v } ->
      let p = put_byte b pos 6 in
      let p = put_int b p inst in
      let p = put_pn b p pn in
      put_value b p v
    | Op_learn { inst; v } ->
      let p = put_byte b pos 7 in
      let p = put_int b p inst in
      put_value b p v
    | Op_accept_batch { base; pn; vs } ->
      let p = put_byte b pos 8 in
      let p = put_int b p base in
      let p = put_pn b p pn in
      let p = put_count b p (Array.length vs) in
      put_varr b p vs 0
    | Op_learn_batch { base; vs } ->
      let p = put_byte b pos 9 in
      let p = put_int b p base in
      let p = put_count b p (Array.length vs) in
      put_varr b p vs 0
    | Pu_prepare { cseq; pn } ->
      let p = put_byte b pos 10 in
      let p = put_int b p cseq in
      put_pn b p pn
    | Pu_promise { cseq; pn; accepted; chosen_suffix } ->
      let p = put_byte b pos 11 in
      let p = put_int b p cseq in
      let p = put_pn b p pn in
      let p =
        match accepted with
        | None -> put_byte b p 0
        | Some (apn, entry) ->
          let p = put_byte b p 1 in
          let p = put_pn b p apn in
          put_entry b p entry
      in
      let p = put_count b p (List.length chosen_suffix) in
      put_ie b p chosen_suffix
    | Pu_reject { cseq; pn; chosen_suffix } ->
      let p = put_byte b pos 12 in
      let p = put_int b p cseq in
      let p = put_pn b p pn in
      let p = put_count b p (List.length chosen_suffix) in
      put_ie b p chosen_suffix
    | Pu_accept { cseq; pn; entry } ->
      let p = put_byte b pos 13 in
      let p = put_int b p cseq in
      let p = put_pn b p pn in
      put_entry b p entry
    | Pu_accepted { cseq; pn } ->
      let p = put_byte b pos 14 in
      let p = put_int b p cseq in
      put_pn b p pn
    | Pu_nack { cseq; pn } ->
      let p = put_byte b pos 15 in
      let p = put_int b p cseq in
      put_pn b p pn
    | Pu_learn { cseq; entry } ->
      let p = put_byte b pos 16 in
      let p = put_int b p cseq in
      put_entry b p entry
    | Pu_read { token; from_ } ->
      let p = put_byte b pos 17 in
      let p = put_int b p token in
      put_int b p from_
    | Pu_read_reply { token; chosen_suffix } ->
      let p = put_byte b pos 18 in
      let p = put_int b p token in
      let p = put_count b p (List.length chosen_suffix) in
      put_ie b p chosen_suffix
    | Ls_req { token; from_ } ->
      let p = put_byte b pos 19 in
      let p = put_int b p token in
      put_int b p from_
    | Ls_reply { token; decisions } ->
      let p = put_byte b pos 20 in
      let p = put_int b p token in
      let p = put_count b p (List.length decisions) in
      put_iv b p decisions
    | Bp_prepare { inst; pn } ->
      let p = put_byte b pos 21 in
      let p = put_int b p inst in
      put_pn b p pn
    | Bp_promise { inst; pn; accepted } ->
      let p = put_byte b pos 22 in
      let p = put_int b p inst in
      let p = put_pn b p pn in
      (match accepted with
       | None -> put_byte b p 0
       | Some (apn, v) ->
         let p = put_byte b p 1 in
         let p = put_pn b p apn in
         put_value b p v)
    | Bp_reject { inst; pn } ->
      let p = put_byte b pos 23 in
      let p = put_int b p inst in
      put_pn b p pn
    | Bp_accept { inst; pn; v } ->
      let p = put_byte b pos 24 in
      let p = put_int b p inst in
      let p = put_pn b p pn in
      put_value b p v
    | Bp_learn { inst; pn; v } ->
      let p = put_byte b pos 25 in
      let p = put_int b p inst in
      let p = put_pn b p pn in
      put_value b p v
    | Mp_prepare { pn; low } ->
      let p = put_byte b pos 26 in
      let p = put_pn b p pn in
      put_int b p low
    | Mp_promise { pn; accepted } ->
      let p = put_byte b pos 27 in
      let p = put_pn b p pn in
      let p = put_count b p (List.length accepted) in
      put_ipnv b p accepted
    | Mp_reject { pn } ->
      let p = put_byte b pos 28 in
      put_pn b p pn
    | Mp_accept { inst; pn; v } ->
      let p = put_byte b pos 29 in
      let p = put_int b p inst in
      let p = put_pn b p pn in
      put_value b p v
    | Mp_learn { inst; pn; v } ->
      let p = put_byte b pos 30 in
      let p = put_int b p inst in
      let p = put_pn b p pn in
      put_value b p v
    | Mp_accept_batch { base; pn; vs } ->
      let p = put_byte b pos 31 in
      let p = put_int b p base in
      let p = put_pn b p pn in
      let p = put_count b p (Array.length vs) in
      put_varr b p vs 0
    | Mp_learn_batch { base; pn; vs } ->
      let p = put_byte b pos 32 in
      let p = put_int b p base in
      let p = put_pn b p pn in
      let p = put_count b p (Array.length vs) in
      put_varr b p vs 0
    | Mn_accept { inst; v } ->
      let p = put_byte b pos 33 in
      let p = put_int b p inst in
      (match v with
       | None -> put_byte b p 0
       | Some v ->
         let p = put_byte b p 1 in
         put_value b p v)
    | Mn_learn { inst; v } ->
      let p = put_byte b pos 34 in
      let p = put_int b p inst in
      (match v with
       | None -> put_byte b p 0
       | Some v ->
         let p = put_byte b p 1 in
         put_value b p v)
    | Cp_accept { epoch; inst; v } ->
      let p = put_byte b pos 35 in
      let p = put_int b p epoch in
      let p = put_int b p inst in
      put_value b p v
    | Cp_accepted { epoch; inst; v } ->
      let p = put_byte b pos 36 in
      let p = put_int b p epoch in
      let p = put_int b p inst in
      put_value b p v
    | Cp_learn { epoch; inst; v } ->
      let p = put_byte b pos 37 in
      let p = put_int b p epoch in
      let p = put_int b p inst in
      put_value b p v
    | Cp_state { epoch; accepted } ->
      let p = put_byte b pos 38 in
      let p = put_int b p epoch in
      let p = put_count b p (List.length accepted) in
      put_iv b p accepted
    | Tp_prepare { inst; v } ->
      let p = put_byte b pos 39 in
      let p = put_int b p inst in
      put_value b p v
    | Tp_ack { inst } ->
      let p = put_byte b pos 40 in
      put_int b p inst
    | Tp_commit { inst; v } ->
      let p = put_byte b pos 41 in
      let p = put_int b p inst in
      put_value b p v
    | Tp_commit_ack { inst } ->
      let p = put_byte b pos 42 in
      put_int b p inst
    | Tp_rollback { inst } ->
      let p = put_byte b pos 43 in
      put_int b p inst
    | Tp_nack { inst } ->
      let p = put_byte b pos 44 in
      put_int b p inst
    | Le_renew { pn; sent } ->
      let p = put_byte b pos 45 in
      let p = put_pn b p pn in
      put_int b p sent
    | Le_grant { pn; sent } ->
      let p = put_byte b pos 46 in
      let p = put_pn b p pn in
      put_int b p sent
  in
  if fin - pos <> size then err "encode: size invariant broken";
  size

(* ---------- decode ---------- *)

type cur = { buf : Bytes.t; limit : int; mutable pos : int }

let need c n = if c.limit - c.pos < n then err "decode: truncated message"

let get_byte c =
  need c 1;
  let x = Char.code (Bytes.get c.buf c.pos) in
  c.pos <- c.pos + 1;
  x

let get_int c =
  need c 8;
  let p = c.pos in
  let byte i = Char.code (Bytes.get c.buf (p + i)) in
  c.pos <- p + 8;
  byte 0
  lor (byte 1 lsl 8)
  lor (byte 2 lsl 16)
  lor (byte 3 lsl 24)
  lor (byte 4 lsl 32)
  lor (byte 5 lsl 40)
  lor (byte 6 lsl 48)
  lor (byte 7 lsl 56)

let get_bool c =
  match get_byte c with
  | 0 -> false
  | 1 -> true
  | _ -> err "decode: bad boolean"

(* Element counts are validated against the bytes actually remaining
   ([min_elem] is a per-element lower bound), so a garbage count can
   never trigger an allocation larger than the input buffer itself. *)
let get_count c ~min_elem =
  need c 4;
  let p = c.pos in
  let byte i = Char.code (Bytes.get c.buf (p + i)) in
  c.pos <- p + 4;
  let n =
    byte 0 lor (byte 1 lsl 8) lor (byte 2 lsl 16) lor (byte 3 lsl 24)
  in
  if n * min_elem > c.limit - c.pos then err "decode: bad element count";
  n

let rec get_list c n f =
  if n = 0 then []
  else
    let x = f c in
    x :: get_list c (n - 1) f

let get_cmd c =
  match get_byte c with
  | 0 ->
    let key = get_int c in
    let data = get_int c in
    Command.Put { key; data }
  | 1 ->
    let key = get_int c in
    Command.Get { key }
  | 2 ->
    let key = get_int c in
    let expect = get_int c in
    let data = get_int c in
    Command.Cas { key; expect; data }
  | 3 -> Command.Nop
  | 4 ->
    let k1 = get_int c in
    let d1 = get_int c in
    let k2 = get_int c in
    let d2 = get_int c in
    Command.Mput { k1; d1; k2; d2 }
  | 5 ->
    let txn = get_int c in
    let key = get_int c in
    let data = get_int c in
    Command.Prep { txn; key; data }
  | 6 ->
    let txn = get_int c in
    let key = get_int c in
    let commit = get_bool c in
    Command.Fin { txn; key; commit }
  | 7 ->
    let lo = get_int c in
    let hi = get_int c in
    Command.Range { lo; hi }
  | _ -> err "decode: bad command tag"

let get_kv c =
  let k = get_int c in
  let v = get_int c in
  (k, v)

let get_result c =
  match get_byte c with
  | 0 -> Command.Done
  | 1 -> Command.Found None
  | 2 ->
    let x = get_int c in
    Command.Found (Some x)
  | 3 ->
    let ok = get_bool c in
    Command.Swapped ok
  | 4 ->
    let n = get_count c ~min_elem:16 in
    let kvs = get_list c n get_kv in
    Command.Vals kvs
  | 5 -> Command.Rejected
  | _ -> err "decode: bad result tag"

let get_value c =
  let client = get_int c in
  let req_id = get_int c in
  let cmd = get_cmd c in
  { client; req_id; cmd }

let get_pn c : Pn.t =
  let round = get_int c in
  let owner = get_int c in
  { round; owner }

let get_iv c =
  let i = get_int c in
  let v = get_value c in
  (i, v)

let get_ipnv c =
  let i = get_int c in
  let pn = get_pn c in
  let v = get_value c in
  (i, (pn, v))

let get_entry c =
  match get_byte c with
  | 0 ->
    let leader = get_int c in
    let acceptor = get_int c in
    Leader_change { leader; acceptor }
  | 1 ->
    let acceptor = get_int c in
    let n = get_count c ~min_elem:25 in
    let carried = get_list c n get_iv in
    Acceptor_change { acceptor; carried }
  | 2 ->
    let n = get_count c ~min_elem:8 in
    let actives = get_list c n get_int in
    Epoch_change { actives }
  | _ -> err "decode: bad config-entry tag"

let get_ie c =
  let i = get_int c in
  let e = get_entry c in
  (i, e)

let get_varr c =
  let n = get_count c ~min_elem:17 in
  if n = 0 then [||]
  else begin
    let first = get_value c in
    let vs = Array.make n first in
    for i = 1 to n - 1 do
      vs.(i) <- get_value c
    done;
    vs
  end

let get_msg c =
  match get_byte c with
  | 0 ->
    let req_id = get_int c in
    let cmd = get_cmd c in
    let relaxed_read = get_bool c in
    Request { req_id; cmd; relaxed_read }
  | 1 ->
    let req_id = get_int c in
    let result = get_result c in
    Reply { req_id; result }
  | 2 ->
    let v = get_value c in
    Forward { v }
  | 3 ->
    let pn = get_pn c in
    let must_be_fresh = get_bool c in
    Op_prepare_request { pn; must_be_fresh }
  | 4 ->
    let pn = get_pn c in
    let n = get_count c ~min_elem:41 in
    let accepted = get_list c n get_ipnv in
    Op_prepare_response { pn; accepted }
  | 5 ->
    let hpn = get_pn c in
    Op_abandon { hpn }
  | 6 ->
    let inst = get_int c in
    let pn = get_pn c in
    let v = get_value c in
    Op_accept_request { inst; pn; v }
  | 7 ->
    let inst = get_int c in
    let v = get_value c in
    Op_learn { inst; v }
  | 8 ->
    let base = get_int c in
    let pn = get_pn c in
    let vs = get_varr c in
    Op_accept_batch { base; pn; vs }
  | 9 ->
    let base = get_int c in
    let vs = get_varr c in
    Op_learn_batch { base; vs }
  | 10 ->
    let cseq = get_int c in
    let pn = get_pn c in
    Pu_prepare { cseq; pn }
  | 11 ->
    let cseq = get_int c in
    let pn = get_pn c in
    let accepted =
      match get_byte c with
      | 0 -> None
      | 1 ->
        let apn = get_pn c in
        let entry = get_entry c in
        Some (apn, entry)
      | _ -> err "decode: bad option tag"
    in
    let n = get_count c ~min_elem:13 in
    let chosen_suffix = get_list c n get_ie in
    Pu_promise { cseq; pn; accepted; chosen_suffix }
  | 12 ->
    let cseq = get_int c in
    let pn = get_pn c in
    let n = get_count c ~min_elem:13 in
    let chosen_suffix = get_list c n get_ie in
    Pu_reject { cseq; pn; chosen_suffix }
  | 13 ->
    let cseq = get_int c in
    let pn = get_pn c in
    let entry = get_entry c in
    Pu_accept { cseq; pn; entry }
  | 14 ->
    let cseq = get_int c in
    let pn = get_pn c in
    Pu_accepted { cseq; pn }
  | 15 ->
    let cseq = get_int c in
    let pn = get_pn c in
    Pu_nack { cseq; pn }
  | 16 ->
    let cseq = get_int c in
    let entry = get_entry c in
    Pu_learn { cseq; entry }
  | 17 ->
    let token = get_int c in
    let from_ = get_int c in
    Pu_read { token; from_ }
  | 18 ->
    let token = get_int c in
    let n = get_count c ~min_elem:13 in
    let chosen_suffix = get_list c n get_ie in
    Pu_read_reply { token; chosen_suffix }
  | 19 ->
    let token = get_int c in
    let from_ = get_int c in
    Ls_req { token; from_ }
  | 20 ->
    let token = get_int c in
    let n = get_count c ~min_elem:25 in
    let decisions = get_list c n get_iv in
    Ls_reply { token; decisions }
  | 21 ->
    let inst = get_int c in
    let pn = get_pn c in
    Bp_prepare { inst; pn }
  | 22 ->
    let inst = get_int c in
    let pn = get_pn c in
    let accepted =
      match get_byte c with
      | 0 -> None
      | 1 ->
        let apn = get_pn c in
        let v = get_value c in
        Some (apn, v)
      | _ -> err "decode: bad option tag"
    in
    Bp_promise { inst; pn; accepted }
  | 23 ->
    let inst = get_int c in
    let pn = get_pn c in
    Bp_reject { inst; pn }
  | 24 ->
    let inst = get_int c in
    let pn = get_pn c in
    let v = get_value c in
    Bp_accept { inst; pn; v }
  | 25 ->
    let inst = get_int c in
    let pn = get_pn c in
    let v = get_value c in
    Bp_learn { inst; pn; v }
  | 26 ->
    let pn = get_pn c in
    let low = get_int c in
    Mp_prepare { pn; low }
  | 27 ->
    let pn = get_pn c in
    let n = get_count c ~min_elem:41 in
    let accepted = get_list c n get_ipnv in
    Mp_promise { pn; accepted }
  | 28 ->
    let pn = get_pn c in
    Mp_reject { pn }
  | 29 ->
    let inst = get_int c in
    let pn = get_pn c in
    let v = get_value c in
    Mp_accept { inst; pn; v }
  | 30 ->
    let inst = get_int c in
    let pn = get_pn c in
    let v = get_value c in
    Mp_learn { inst; pn; v }
  | 31 ->
    let base = get_int c in
    let pn = get_pn c in
    let vs = get_varr c in
    Mp_accept_batch { base; pn; vs }
  | 32 ->
    let base = get_int c in
    let pn = get_pn c in
    let vs = get_varr c in
    Mp_learn_batch { base; pn; vs }
  | 33 ->
    let inst = get_int c in
    let v =
      match get_byte c with
      | 0 -> None
      | 1 -> Some (get_value c)
      | _ -> err "decode: bad option tag"
    in
    Mn_accept { inst; v }
  | 34 ->
    let inst = get_int c in
    let v =
      match get_byte c with
      | 0 -> None
      | 1 -> Some (get_value c)
      | _ -> err "decode: bad option tag"
    in
    Mn_learn { inst; v }
  | 35 ->
    let epoch = get_int c in
    let inst = get_int c in
    let v = get_value c in
    Cp_accept { epoch; inst; v }
  | 36 ->
    let epoch = get_int c in
    let inst = get_int c in
    let v = get_value c in
    Cp_accepted { epoch; inst; v }
  | 37 ->
    let epoch = get_int c in
    let inst = get_int c in
    let v = get_value c in
    Cp_learn { epoch; inst; v }
  | 38 ->
    let epoch = get_int c in
    let n = get_count c ~min_elem:25 in
    let accepted = get_list c n get_iv in
    Cp_state { epoch; accepted }
  | 39 ->
    let inst = get_int c in
    let v = get_value c in
    Tp_prepare { inst; v }
  | 40 ->
    let inst = get_int c in
    Tp_ack { inst }
  | 41 ->
    let inst = get_int c in
    let v = get_value c in
    Tp_commit { inst; v }
  | 42 ->
    let inst = get_int c in
    Tp_commit_ack { inst }
  | 43 ->
    let inst = get_int c in
    Tp_rollback { inst }
  | 44 ->
    let inst = get_int c in
    Tp_nack { inst }
  | 45 ->
    let pn = get_pn c in
    let sent = get_int c in
    Le_renew { pn; sent }
  | 46 ->
    let pn = get_pn c in
    let sent = get_int c in
    Le_grant { pn; sent }
  | _ -> err "decode: unknown message tag"

let decode buf ~pos ~len =
  if pos < 0 || len < 1 || pos + len > Bytes.length buf then
    err "decode: bad bounds";
  let c = { buf; limit = pos + len; pos } in
  let m = get_msg c in
  if c.pos <> c.limit then err "decode: trailing bytes";
  m

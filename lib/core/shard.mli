(** Keyspace sharding across independent consensus groups.

    The paper's single 1Paxos group serializes every update through one
    leader and one active acceptor; throughput is capped no matter how
    many cores the machine has. The standard answer (Mencius §8; see
    also PAPERS.md on parallel state-machine replication) is to
    partition the keyspace over N {e independent} groups, each with its
    own leader and acceptor on distinct cores, plus routers that hash
    commands to their owning group. Single-shard commands are forwarded
    untouched; a cross-shard {!Ci_rsm.Command.Mput} becomes a
    two-phase-commit transaction driven by the router (coordinator)
    over the shards' own logs ({!Twopc.Participant} on each shard's
    entry replica).

    Everything here is written against {!Ci_engine.Node_env}, so the
    identical router runs on both the simulator and the live runtime. *)

val group_of_key : groups:int -> int -> int
(** [group_of_key ~groups key] is the shard owning [key]: a pure,
    stable hash partition — every key maps to exactly one group in
    [0 .. groups-1], and the same group on every call, run, and
    backend. [groups <= 1] always yields group 0. *)

val group_of_cmd : groups:int -> Ci_rsm.Command.t -> int
(** Owning group of a command's primary key ([Nop] routes to 0). *)

val groups_of : groups:int -> Ci_rsm.Command.t -> int list
(** Sorted distinct groups a command touches ([[0]] for [Nop]). A
    two-element result marks a cross-shard command. *)

(** The router: hashes client commands to groups, forwards single-shard
    commands to the owning group's entry replica (whose reply goes
    straight back to the client), and coordinates cross-shard [Mput]s
    as 2PC transactions with per-phase retransmission. *)
module Router : sig
  type config = {
    groups : int;  (** Shard count (>= 1). *)
    leader_of : int array;
        (** Node id of each group's entry replica (initial leader);
            one per group. *)
    retry_timeout : int;
        (** Retransmit period for unanswered 2PC phases (ns). *)
  }

  type t
  (** One router. *)

  val create : env:Wire.t Ci_engine.Node_env.t -> config:config -> t
  (** [create ~env ~config] prepares a router on the node behind [env].
      @raise Invalid_argument on a malformed config. *)

  val handle : t -> src:int -> Wire.t -> unit
  (** [handle t ~src msg] processes a client [Request] or a 2PC
      response ([Tp_ack]/[Tp_nack]/[Tp_commit_ack]); everything else is
      ignored. *)

  val forwarded : t -> int
  (** Single-shard commands forwarded. *)

  val committed : t -> int
  (** Cross-shard transactions committed. *)

  val aborted : t -> int
  (** Cross-shard transactions aborted (a shard refused the lock). *)

  val txn_reports : t -> Ci_rsm.Atomicity.txn list
  (** Every transaction this router coordinated, with its outcome —
      the coordinator-side input to {!Ci_rsm.Atomicity.check}. *)
end

(** PaxosUtility: the configuration consensus inside 1Paxos.

    Sections 5.2–5.4 of the paper delegate agreement on {e configuration
    changes} — "node X is now the leader", "node Y is now the active
    acceptor (carrying these uncommitted proposals)" — to "a separate
    basic implementation of Paxos", run by the same nodes as 1Paxos.
    This module is that implementation: a majority-quorum Basic-Paxos
    over a totally ordered sequence of {!Wire.config_entry} values.

    Each node hosts one instance of this component; it plays proposer,
    acceptor and learner for the configuration sequence. [propose]
    targets exactly one sequence slot (the proposer's current first
    gap): it succeeds only if {e our} entry is chosen there, and fails
    if another proposer's entry wins the slot — the caller then
    re-reads the log and re-decides what to do, exactly as the
    pseudo-code's [PaxosUtility.propose] failure path prescribes. *)

type t
(** Per-node PaxosUtility state. *)

val create :
  env:Wire.t Ci_engine.Node_env.t ->
  peers:int array ->
  timeout:Ci_engine.Sim_time.t ->
  seed:Wire.config_entry list ->
  on_entry:(cseq:int -> Wire.config_entry -> unit) ->
  t
(** [create ~env ~peers ~timeout ~seed ~on_entry] attaches the
    component to a host node. [peers] are the node ids of
    all participants (including this node). [seed] entries are
    pre-chosen at the head of the sequence on every node — the paper's
    initialization step in which the smallest-id node inserts the
    initial [LeaderChange] and [AcceptorChange] (Appendix B); seeding
    them identically everywhere is equivalent and deterministic.
    [on_entry] fires exactly once per chosen entry, in sequence order,
    as this node learns them (including the seeds). *)

val handle : t -> src:int -> Wire.t -> bool
(** [handle t ~src msg] processes [msg] if it is a PaxosUtility message
    ([Pu_*]); returns whether it was consumed. *)

val propose : t -> Wire.config_entry -> (ok:bool -> unit) -> unit
(** [propose t entry k] runs consensus for [entry] at this node's next
    free sequence slot. [k ~ok:true] once [entry] is chosen at that
    slot; [k ~ok:false] once a {e different} entry is chosen there.
    Proposal-number conflicts and unresponsive peers are retried
    internally with backoff, so [k] may be delayed arbitrarily while a
    majority is unreachable — mirroring Paxos liveness. At most one
    proposal may be in flight per node ([Invalid_argument] otherwise). *)

val proposing : t -> bool
(** [proposing t] is whether a proposal is in flight. *)

val sync : t -> (unit -> unit) -> unit
(** [sync t k] refreshes this node's view of the chosen sequence by
    reading from a majority of peers, then calls [k]. This is the
    "inquire a majority of the nodes" step of Section 5.3. Multiple
    syncs may be in flight. *)

val entries : t -> (int * Wire.config_entry) list
(** [entries t] is the contiguously known chosen prefix (plus any
    out-of-order learned entries), sorted by slot. *)

val next_cseq : t -> int
(** [next_cseq t] is the first slot this node does not know to be
    decided. *)

val helped_elect_other : t -> from_cseq:int -> leader:int -> bool
(** [helped_elect_other t ~from_cseq ~leader] is whether this node's
    acceptor registers or chosen log contain, at any slot [>= from_cseq],
    an entry naming a leader other than [leader]. A lease grantee uses
    it to refuse a renewer whose deposition it may already have helped
    commit — the accepted-but-not-yet-learned window where the renewer's
    own log cannot warn it. *)

val applied_upto : t -> int
(** [applied_upto t] is the first slot [on_entry] has not yet fired
    for. *)

val current_leader : t -> int option
(** [current_leader t] is the leader per the last applied
    [Leader_change], if any. *)

val current_acceptor : t -> int option
(** [current_acceptor t] is the active acceptor per the last applied
    configuration entry. *)

(** {1 Crash-recovery} *)

type stable
(** The durable registers a real deployment fsyncs: the chosen log, the
    per-slot promise/accepted registers, and the proposal-round
    counter. Volatile state (in-flight attempt, pending reads, backoff
    streak) is excluded — the protocol re-derives it after a restart. *)

val stable : t -> stable
(** [stable t] snapshots the durable registers. *)

val recover :
  env:Wire.t Ci_engine.Node_env.t ->
  peers:int array ->
  timeout:Ci_engine.Sim_time.t ->
  stable:stable ->
  on_entry:(cseq:int -> Wire.config_entry -> unit) ->
  t
(** [recover ~env ~peers ~timeout ~stable ~on_entry] rebuilds the
    component from its durable registers after a crash. [on_entry]
    replays, in order, every entry that was chosen-and-contiguous
    before the crash (the caller rebuilds its derived configuration
    view from the replay), and the round counter resumes past its
    pre-crash value so recovered proposals can never reuse a proposal
    number. *)

val digest : t -> int
(** [digest t] is a structural fingerprint of the configuration-log
    state (log, acceptor registers, in-progress attempt, derived view)
    for the explorer's visited-state table. Hashtables are hashed in
    sorted key order. *)

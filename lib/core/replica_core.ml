module Op_log = Ci_rsm.Op_log
module Kv_store = Ci_rsm.Kv_store
module Session_table = Ci_rsm.Session_table
module Command = Ci_rsm.Command

type executed = { inst : int; v : Wire.value; result : Ci_rsm.Command.result }

type t = {
  replica : int;
  log : Wire.value Op_log.t;
  store : Kv_store.t;
  sessions : Session_table.t;
  mutable executed_upto : int; (* first unexecuted instance *)
}

let create ~replica =
  {
    replica;
    log = Op_log.create ~equal:Wire.value_equal ();
    store = Kv_store.create ();
    sessions = Session_table.create ();
    executed_upto = 0;
  }

(* Execute one decided value with at-most-once client semantics. *)
let execute t (v : Wire.value) =
  match Session_table.find t.sessions ~client:v.client ~req_id:v.req_id with
  | Some cached -> cached
  | None ->
    let result = Kv_store.apply t.store v.cmd in
    Session_table.record t.sessions ~client:v.client ~req_id:v.req_id result;
    result

let learn t ~inst v =
  match Op_log.decide t.log ~inst v with
  | `Duplicate | `Conflict _ -> []
  | `New ->
    let fresh = ref [] in
    let next =
      Op_log.iter_prefix t.log ~from_:t.executed_upto (fun inst v ->
          let result = execute t v in
          fresh := { inst; v; result } :: !fresh)
    in
    t.executed_upto <- next;
    List.rev !fresh

let is_decided t ~inst = Op_log.is_decided t.log ~inst
let decided_value t ~inst = Op_log.get t.log ~inst
let first_gap t = Op_log.first_gap t.log
let highest_decided t = Op_log.highest_decided t.log

let decisions_from t ~from_ =
  List.filter (fun (i, _) -> i >= from_) (Op_log.to_list t.log)

let cached_result t ~client ~req_id =
  Session_table.find t.sessions ~client ~req_id

let local_get t ~key = Kv_store.get t.store key

let local_read t (cmd : Command.t) : Command.result option =
  match cmd with
  | Command.Get { key } -> Some (Command.Found (Kv_store.get t.store key))
  | Command.Range { lo; hi } ->
    Some (Command.Vals (Kv_store.range t.store ~lo ~hi))
  | Command.Put _ | Command.Cas _ | Command.Nop | Command.Mput _
  | Command.Prep _ | Command.Fin _ -> None

let commits t = t.executed_upto

let view t =
  {
    Ci_rsm.Consistency.replica = t.replica;
    decisions = Op_log.to_list t.log;
    fingerprint = Kv_store.fingerprint t.store;
    executed_prefix = t.executed_upto;
  }

(* Structural fingerprint for the explorer's visited-state table. The
   view already covers the decided log, the store contents and the
   executed prefix; the session table is a function of the executed
   prefix and need not be hashed separately. [hash_param] with a large
   meaningful-node budget so small model-checked states hash in full. *)
let digest t = Hashtbl.hash_param 1000 1000 (view t)
